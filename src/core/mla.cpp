#include "core/mla.hpp"

#include <algorithm>
#include <stdexcept>

#include "netlist/cone.hpp"

namespace cwatpg::core {
namespace {

/// Edge lists are threaded through the recursion already restricted to the
/// current vertex set (original ids), so each level only touches its own
/// edges — O(|E| log n) total instead of rescanning the full graph.
using EdgeList = std::vector<std::vector<net::NodeId>>;

/// Exact subset-DP MLA on a small hypergraph; returns the order only.
Ordering exact_order(const net::Hypergraph& hg) {
  const std::size_t n = hg.num_vertices;
  if (n == 0) return {};
  if (n > 22) throw std::invalid_argument("exact_mla: too many vertices");
  const std::size_t full = std::size_t{1} << n;

  // cut(S): number of edges with a vertex inside S and a vertex outside.
  // Evaluated per subset from per-edge membership masks.
  std::vector<std::uint32_t> edge_mask(hg.edges.size(), 0);
  for (std::size_t e = 0; e < hg.edges.size(); ++e)
    for (net::NodeId v : hg.edges[e])
      edge_mask[e] |= 1u << v;

  auto cut_of = [&](std::size_t s) {
    std::uint32_t c = 0;
    for (std::uint32_t m : edge_mask) {
      const std::uint32_t inside = m & static_cast<std::uint32_t>(s);
      if (inside != 0 && inside != m) ++c;
    }
    return c;
  };

  constexpr std::uint32_t kInf = static_cast<std::uint32_t>(-1);
  std::vector<std::uint32_t> dp(full, kInf);
  std::vector<std::uint8_t> last(full, 0xff);
  dp[0] = 0;
  for (std::size_t s = 1; s < full; ++s) {
    const std::uint32_t cut_s = cut_of(s);
    for (std::size_t v = 0; v < n; ++v) {
      if (!(s & (std::size_t{1} << v))) continue;
      const std::uint32_t prev = dp[s ^ (std::size_t{1} << v)];
      if (prev == kInf) continue;
      const std::uint32_t cost = std::max(prev, cut_s);
      if (cost < dp[s]) {
        dp[s] = cost;
        last[s] = static_cast<std::uint8_t>(v);
      }
    }
  }

  Ordering order(n);
  std::size_t s = full - 1;
  for (std::size_t i = n; i-- > 0;) {
    const std::uint8_t v = last[s];
    order[i] = static_cast<net::NodeId>(v);
    s ^= std::size_t{1} << v;
  }
  return order;
}

/// Recursive bisection. `verts` are original ids; `edges` are already
/// restricted to `verts` (each with >= 2 members). Appends the computed
/// arrangement of `verts` to `out`. `local_of` is scratch (all -1 between
/// calls).
void arrange(std::vector<net::NodeId> verts, EdgeList edges,
             const MlaConfig& config, std::vector<std::uint32_t>& local_of,
             Ordering& out) {
  if (verts.empty()) return;
  for (std::uint32_t i = 0; i < verts.size(); ++i)
    local_of[verts[i]] = i;
  net::Hypergraph sub;
  sub.num_vertices = verts.size();
  sub.edges.reserve(edges.size());
  for (const auto& e : edges) {
    std::vector<net::NodeId> local;
    local.reserve(e.size());
    for (net::NodeId v : e) local.push_back(local_of[v]);
    sub.edges.push_back(std::move(local));
  }

  if (verts.size() <= std::max<std::size_t>(config.exact_threshold, 2)) {
    for (net::NodeId v : verts) local_of[v] = static_cast<std::uint32_t>(-1);
    const Ordering local = exact_order(sub);
    for (net::NodeId lv : local) out.push_back(verts[lv]);
    return;
  }

  const part::Bisection cut = part::multilevel_bisect(sub, config.partition);
  std::vector<net::NodeId> left, right;
  left.reserve(verts.size() / 2 + 1);
  right.reserve(verts.size() / 2 + 1);
  for (std::uint32_t i = 0; i < verts.size(); ++i)
    (cut.side[i] ? right : left).push_back(verts[i]);
  if (left.empty() || right.empty()) {
    // Partitioner degenerated (tiny/irregular graph): fall back to halving.
    left.assign(verts.begin(),
                verts.begin() + static_cast<std::ptrdiff_t>(verts.size() / 2));
    right.assign(verts.begin() + static_cast<std::ptrdiff_t>(verts.size() / 2),
                 verts.end());
    for (std::uint32_t i = 0; i < verts.size(); ++i)
      local_of[verts[i]] = i < verts.size() / 2 ? 0u : 1u;
  } else {
    for (std::uint32_t i = 0; i < verts.size(); ++i)
      local_of[verts[i]] = cut.side[i];
  }

  // Split edges by side; parts of size < 2 vanish.
  EdgeList left_edges, right_edges;
  std::vector<net::NodeId> part0, part1;
  for (auto& e : edges) {
    part0.clear();
    part1.clear();
    for (net::NodeId v : e) (local_of[v] ? part1 : part0).push_back(v);
    if (part0.size() >= 2) left_edges.push_back(part0);
    if (part1.size() >= 2) right_edges.push_back(part1);
  }
  edges.clear();
  edges.shrink_to_fit();
  for (net::NodeId v : verts) local_of[v] = static_cast<std::uint32_t>(-1);

  arrange(std::move(left), std::move(left_edges), config, local_of, out);
  arrange(std::move(right), std::move(right_edges), config, local_of, out);
}

}  // namespace

MlaResult mla(const net::Hypergraph& hg, const MlaConfig& config) {
  if (config.exact_threshold > 16)
    throw std::invalid_argument("mla: exact_threshold too large");
  MlaResult result;
  std::vector<net::NodeId> verts(hg.num_vertices);
  for (std::size_t i = 0; i < verts.size(); ++i)
    verts[i] = static_cast<net::NodeId>(i);
  EdgeList edges;
  edges.reserve(hg.edges.size());
  for (const auto& e : hg.edges)
    if (e.size() >= 2) edges.push_back(e);
  std::vector<std::uint32_t> local_of(hg.num_vertices,
                                      static_cast<std::uint32_t>(-1));
  result.order.reserve(hg.num_vertices);
  arrange(std::move(verts), std::move(edges), config, local_of, result.order);
  if (config.refine_passes > 0 && hg.num_vertices >= 2) {
    RefineConfig refine_cfg;
    refine_cfg.max_passes = config.refine_passes;
    result.order =
        refine_ordering(hg, std::move(result.order), refine_cfg).order;
  }
  result.width = cut_width(hg, result.order);
  return result;
}

MlaResult mla(const net::Network& netw, const MlaConfig& config) {
  return mla(net::to_hypergraph(netw), config);
}

MlaResult exact_mla(const net::Hypergraph& hg) {
  MlaResult result;
  result.order = exact_order(hg);
  result.width = cut_width(hg, result.order);
  return result;
}

MultiOutputWidth mla_multi_output(const net::Network& netw,
                                  const MlaConfig& config) {
  MultiOutputWidth result;
  for (net::NodeId po : netw.outputs()) {
    const net::SubCircuit cone = net::output_cone(netw, po);
    const MlaResult cone_mla = mla(cone.circuit, config);
    result.width = std::max(result.width, cone_mla.width);
    result.max_cone_size =
        std::max(result.max_cone_size, cone.circuit.node_count());
    result.cones.push_back(
        ConeWidth{cone.circuit.node_count(), cone_mla.width});
  }
  return result;
}

}  // namespace cwatpg::core
