#include "core/bounds.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cwatpg::core {

double lemma41_log2_bound(std::size_t k_fo, std::uint32_t cut_size) {
  return 2.0 * static_cast<double>(k_fo) * static_cast<double>(cut_size);
}

double theorem41_log2_bound(std::size_t n, std::size_t k_fo,
                            std::uint32_t width) {
  return std::log2(static_cast<double>(std::max<std::size_t>(n, 1))) +
         lemma41_log2_bound(k_fo, width);
}

double eq45_log2_bound(std::size_t p, std::size_t n_max, std::size_t k_fo,
                       std::uint32_t width) {
  return std::log2(static_cast<double>(std::max<std::size_t>(p, 1))) +
         theorem41_log2_bound(n_max, k_fo, width);
}

double lemma52_rhs(std::size_t k, std::size_t n) {
  if (k < 2 || n < 2) return 1.0;
  return static_cast<double>(k - 1) * std::log2(static_cast<double>(n));
}

bool is_tree_circuit(const net::Network& netw) {
  for (net::NodeId id = 0; id < netw.node_count(); ++id)
    if (netw.fanouts(id).size() > 1) return false;
  return true;
}

namespace {

struct SubtreeOrder {
  std::uint32_t width = 0;
  std::vector<net::NodeId> order;  // subtree nodes, root last
};

/// Post-order arrangement: children sorted by decreasing width, each
/// placed contiguously, root last. While the i-th child block (0-based) is
/// being traversed, the open nets are its internal cut (<= width_i) plus
/// the i edges from already-placed earlier children to this root — whence
/// width(v) = max_i(width_i + i), and <= (k-1)log2(n) for k-ary trees.
SubtreeOrder arrange_subtree(const net::Network& netw, net::NodeId v) {
  std::vector<SubtreeOrder> children;
  for (net::NodeId fi : netw.fanins(v))
    children.push_back(arrange_subtree(netw, fi));
  std::sort(children.begin(), children.end(),
            [](const SubtreeOrder& a, const SubtreeOrder& b) {
              return a.width > b.width;
            });
  SubtreeOrder out;
  for (std::size_t i = 0; i < children.size(); ++i) {
    out.width = std::max(out.width,
                         children[i].width + static_cast<std::uint32_t>(i));
    out.order.insert(out.order.end(), children[i].order.begin(),
                     children[i].order.end());
  }
  // The gap just before the root keeps all child->root nets open.
  out.width = std::max(out.width, static_cast<std::uint32_t>(children.size()));
  out.order.push_back(v);
  return out;
}

}  // namespace

Ordering tree_ordering(const net::Network& netw) {
  if (!is_tree_circuit(netw))
    throw std::invalid_argument("tree_ordering: circuit is not a tree");
  Ordering order;
  order.reserve(netw.node_count());
  // Roots: nodes with no fanout (kOutput markers, or dangling gates).
  for (net::NodeId id = 0; id < netw.node_count(); ++id) {
    if (!netw.fanouts(id).empty()) continue;
    const SubtreeOrder sub = arrange_subtree(netw, id);
    order.insert(order.end(), sub.order.begin(), sub.order.end());
  }
  if (order.size() != netw.node_count())
    throw std::logic_error("tree_ordering: nodes unaccounted for");
  return order;
}

}  // namespace cwatpg::core
