#include "core/kbounded.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace cwatpg::core {
namespace {

/// Distinct directed block-DAG edges (a -> b), a != b.
std::vector<std::pair<std::uint32_t, std::uint32_t>> block_edges(
    const net::Network& netw, const BlockPartition& part) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (net::NodeId v = 0; v < netw.node_count(); ++v)
    for (net::NodeId f : netw.fanins(v))
      if (part.block_of[f] != part.block_of[v])
        edges.emplace_back(part.block_of[f], part.block_of[v]);
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

void check_partition_shape(const net::Network& netw,
                           const BlockPartition& part) {
  if (part.block_of.size() != netw.node_count())
    throw std::invalid_argument("BlockPartition: size mismatch");
  for (std::uint32_t b : part.block_of)
    if (b >= part.num_blocks)
      throw std::invalid_argument("BlockPartition: block id out of range");
}

}  // namespace

std::vector<std::uint32_t> block_input_counts(const net::Network& netw,
                                              const BlockPartition& part) {
  check_partition_shape(netw, part);
  // Distinct (consumer block, driver net) pairs with the driver outside.
  std::vector<std::pair<std::uint32_t, net::NodeId>> pairs;
  for (net::NodeId v = 0; v < netw.node_count(); ++v)
    for (net::NodeId f : netw.fanins(v))
      if (part.block_of[f] != part.block_of[v])
        pairs.emplace_back(part.block_of[v], f);
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  std::vector<std::uint32_t> counts(part.num_blocks, 0);
  for (const auto& [b, f] : pairs) ++counts[b];
  return counts;
}

bool block_dag_is_reconvergence_free(const net::Network& netw,
                                     const BlockPartition& part) {
  check_partition_shape(netw, part);
  const auto edges = block_edges(netw, part);
  std::vector<std::vector<std::uint32_t>> succ(part.num_blocks);
  std::vector<std::uint32_t> indegree(part.num_blocks, 0);
  for (const auto& [a, b] : edges) {
    succ[a].push_back(b);
    ++indegree[b];
  }
  // Topological order (Kahn); a cycle disqualifies the partition outright.
  std::vector<std::uint32_t> topo;
  std::queue<std::uint32_t> ready;
  for (std::uint32_t b = 0; b < part.num_blocks; ++b)
    if (indegree[b] == 0) ready.push(b);
  {
    std::vector<std::uint32_t> remaining = indegree;
    while (!ready.empty()) {
      const std::uint32_t b = ready.front();
      ready.pop();
      topo.push_back(b);
      for (std::uint32_t s : succ[b])
        if (--remaining[s] == 0) ready.push(s);
    }
  }
  if (topo.size() != part.num_blocks) return false;  // cyclic block graph

  // From every source, count paths capped at 2.
  std::vector<std::uint32_t> paths(part.num_blocks, 0);
  for (std::uint32_t source = 0; source < part.num_blocks; ++source) {
    std::fill(paths.begin(), paths.end(), 0u);
    paths[source] = 1;
    for (std::uint32_t b : topo) {
      if (paths[b] == 0) continue;
      for (std::uint32_t s : succ[b]) {
        paths[s] = std::min<std::uint32_t>(2, paths[s] + paths[b]);
        if (s != source && paths[s] > 1) return false;
      }
    }
  }
  return true;
}

bool is_kbounded(const net::Network& netw, const BlockPartition& part,
                 std::uint32_t k) {
  const auto inputs = block_input_counts(netw, part);
  for (std::uint32_t c : inputs)
    if (c > k) return false;
  return block_dag_is_reconvergence_free(netw, part);
}

std::optional<BlockPartition> find_kbounded_partition(
    const net::Network& netw, std::uint32_t k, std::size_t max_block_size) {
  // Maximal fanout-free cones: a node with exactly one fanout joins its
  // consumer's block. Assign block representatives top-down (decreasing
  // id), so every node's consumer is already placed.
  BlockPartition part;
  part.block_of.assign(netw.node_count(), 0);
  std::vector<net::NodeId> rep(netw.node_count());
  for (net::NodeId v = netw.node_count(); v-- > 0;) {
    const auto fos = netw.fanouts(v);
    rep[v] = fos.size() == 1 ? rep[fos[0]] : v;
  }
  // Renumber representatives densely.
  std::vector<std::uint32_t> id_of(netw.node_count(),
                                   static_cast<std::uint32_t>(-1));
  for (net::NodeId v = 0; v < netw.node_count(); ++v) {
    const net::NodeId r = rep[v];
    if (id_of[r] == static_cast<std::uint32_t>(-1))
      id_of[r] = part.num_blocks++;
    part.block_of[v] = id_of[r];
  }
  std::vector<std::size_t> block_size(part.num_blocks, 0);
  for (std::uint32_t b : part.block_of) ++block_size[b];
  for (std::size_t size : block_size)
    if (size > max_block_size) return std::nullopt;
  if (!is_kbounded(netw, part, k)) return std::nullopt;
  return part;
}

namespace {

struct BlockArrangement {
  std::uint32_t width_estimate = 0;
  std::vector<std::uint32_t> blocks;  // subtree blocks, root last
};

BlockArrangement arrange_block_tree(
    const std::vector<std::vector<std::uint32_t>>& adjacency,
    std::uint32_t root, std::uint32_t parent,
    std::vector<bool>& visited) {
  visited[root] = true;
  std::vector<BlockArrangement> children;
  for (std::uint32_t nb : adjacency[root]) {
    if (nb == parent) continue;
    if (visited[nb])
      throw std::invalid_argument(
          "kbounded_ordering: block graph is not a forest");
    children.push_back(arrange_block_tree(adjacency, nb, root, visited));
  }
  std::sort(children.begin(), children.end(),
            [](const BlockArrangement& a, const BlockArrangement& b) {
              return a.width_estimate > b.width_estimate;
            });
  BlockArrangement out;
  for (std::size_t i = 0; i < children.size(); ++i) {
    out.width_estimate =
        std::max(out.width_estimate,
                 children[i].width_estimate + static_cast<std::uint32_t>(i));
    out.blocks.insert(out.blocks.end(), children[i].blocks.begin(),
                      children[i].blocks.end());
  }
  out.width_estimate = std::max(
      out.width_estimate, static_cast<std::uint32_t>(children.size()));
  out.blocks.push_back(root);
  return out;
}

}  // namespace

Ordering kbounded_ordering(const net::Network& netw,
                           const BlockPartition& part, std::uint32_t k) {
  if (!is_kbounded(netw, part, k))
    throw std::invalid_argument("kbounded_ordering: partition not k-bounded");

  // Undirected block adjacency (must be a forest).
  const auto edges = block_edges(netw, part);
  std::vector<std::vector<std::uint32_t>> adjacency(part.num_blocks);
  for (const auto& [a, b] : edges) {
    adjacency[a].push_back(b);
    adjacency[b].push_back(a);
  }
  for (auto& adj : adjacency) {
    std::sort(adj.begin(), adj.end());
    adj.erase(std::unique(adj.begin(), adj.end()), adj.end());
  }

  // Prefer rooting at sink blocks (no block-DAG successors).
  std::vector<bool> has_succ(part.num_blocks, false);
  for (const auto& [a, b] : edges) has_succ[a] = true;

  std::vector<bool> visited(part.num_blocks, false);
  std::vector<std::uint32_t> block_sequence;
  auto arrange_component = [&](std::uint32_t root) {
    const BlockArrangement arr =
        arrange_block_tree(adjacency, root, static_cast<std::uint32_t>(-1),
                           visited);
    block_sequence.insert(block_sequence.end(), arr.blocks.begin(),
                          arr.blocks.end());
  };
  for (std::uint32_t b = 0; b < part.num_blocks; ++b)
    if (!visited[b] && !has_succ[b]) arrange_component(b);
  for (std::uint32_t b = 0; b < part.num_blocks; ++b)
    if (!visited[b]) arrange_component(b);

  // Emit nodes: per block, in topological (id) order.
  std::vector<std::vector<net::NodeId>> members(part.num_blocks);
  for (net::NodeId v = 0; v < netw.node_count(); ++v)
    members[part.block_of[v]].push_back(v);
  Ordering order;
  order.reserve(netw.node_count());
  for (std::uint32_t b : block_sequence)
    order.insert(order.end(), members[b].begin(), members[b].end());
  return order;
}

}  // namespace cwatpg::core
