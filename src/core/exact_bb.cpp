#include "core/exact_bb.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace cwatpg::core {

std::uint32_t cutwidth_lower_bound(const net::Hypergraph& hg) {
  std::vector<std::uint32_t> degree(hg.num_vertices, 0);
  for (const auto& e : hg.edges)
    if (e.size() >= 2)
      for (net::NodeId v : e) ++degree[v];
  std::uint32_t max_degree = 0;
  for (std::uint32_t d : degree) max_degree = std::max(max_degree, d);
  return (max_degree + 1) / 2;
}

namespace {

class BbSearch {
 public:
  BbSearch(const net::Hypergraph& hg, const ExactBbConfig& config)
      : hg_(hg), config_(config) {
    const std::size_t n = hg.num_vertices;
    incident_.resize(n);
    edge_size_.reserve(hg.edges.size());
    for (std::uint32_t e = 0; e < hg.edges.size(); ++e) {
      if (hg.edges[e].size() < 2) {
        edge_size_.push_back(0);  // never crosses
        continue;
      }
      edge_size_.push_back(static_cast<std::uint32_t>(hg.edges[e].size()));
      for (net::NodeId v : hg.edges[e]) incident_[v].push_back(e);
    }
    inside_.assign(hg.edges.size(), 0);
    lower_bound_ = cutwidth_lower_bound(hg);
  }

  std::optional<ExactBbResult> run() {
    const std::size_t n = hg_.num_vertices;
    best_width_ = config_.initial_upper_bound > 0
                      ? config_.initial_upper_bound
                      : static_cast<std::uint32_t>(hg_.edges.size() + 1);
    // A trivial incumbent: identity order.
    {
      const Ordering identity = identity_ordering(n);
      const std::uint32_t w = cut_width(hg_, identity);
      if (w < best_width_ || best_order_.empty()) {
        best_width_ = std::min(best_width_, w);
        best_order_ = identity;
      }
    }
    prefix_.clear();
    aborted_ = false;
    dfs(0, 0, 0);
    if (aborted_) return std::nullopt;
    ExactBbResult result;
    result.order = best_order_;
    result.width = best_width_;
    result.nodes = nodes_;
    return result;
  }

 private:
  void dfs(std::uint64_t placed, std::uint32_t crossing,
           std::uint32_t running_max) {
    if (aborted_) return;
    if (++nodes_ > config_.max_nodes) {
      aborted_ = true;
      return;
    }
    const std::size_t n = hg_.num_vertices;
    if (prefix_.size() == n) {
      if (running_max < best_width_) {
        best_width_ = running_max;
        best_order_ = prefix_;
      }
      return;
    }
    // Dominance memo: a previous visit of this set with <= running_max
    // subsumes this branch.
    const auto it = memo_.find(placed);
    if (it != memo_.end() && it->second <= running_max) return;
    memo_[placed] = running_max;

    for (net::NodeId v = 0; v < n; ++v) {
      if (placed & (1ULL << v)) continue;
      // Incremental crossing update for placing v next.
      std::uint32_t delta_plus = 0, delta_minus = 0;
      for (std::uint32_t e : incident_[v]) {
        if (inside_[e] == 0) ++delta_plus;  // edge starts crossing
        if (inside_[e] + 1 == edge_size_[e]) ++delta_minus;  // fully inside
      }
      const std::uint32_t new_crossing = crossing + delta_plus - delta_minus;
      const std::uint32_t new_max = std::max(running_max, new_crossing);
      if (new_max >= best_width_) continue;  // prune
      for (std::uint32_t e : incident_[v]) ++inside_[e];
      prefix_.push_back(v);
      dfs(placed | (1ULL << v), new_crossing, new_max);
      prefix_.pop_back();
      for (std::uint32_t e : incident_[v]) --inside_[e];
      if (aborted_) return;
      if (best_width_ <= lower_bound_) return;  // provably optimal
    }
  }

  const net::Hypergraph& hg_;
  const ExactBbConfig& config_;
  std::vector<std::vector<std::uint32_t>> incident_;
  std::vector<std::uint32_t> edge_size_;
  std::vector<std::uint32_t> inside_;
  std::unordered_map<std::uint64_t, std::uint32_t> memo_;
  Ordering prefix_;
  Ordering best_order_;
  std::uint32_t best_width_ = 0;
  std::uint32_t lower_bound_ = 0;
  std::uint64_t nodes_ = 0;
  bool aborted_ = false;
};

}  // namespace

std::optional<ExactBbResult> exact_cutwidth_bb(const net::Hypergraph& hg,
                                               const ExactBbConfig& config) {
  if (hg.num_vertices > config.max_vertices || hg.num_vertices > 63)
    throw std::invalid_argument("exact_cutwidth_bb: too many vertices");
  if (hg.num_vertices == 0) return ExactBbResult{};
  BbSearch search(hg, config);
  return search.run();
}

}  // namespace cwatpg::core
