#include "core/cutwidth.hpp"

#include <algorithm>
#include <stdexcept>

namespace cwatpg::core {

std::vector<std::uint32_t> positions_of(const Ordering& order,
                                        std::size_t num_vertices) {
  if (order.size() != num_vertices)
    throw std::invalid_argument("positions_of: ordering size mismatch");
  std::vector<std::uint32_t> pos(num_vertices, static_cast<std::uint32_t>(-1));
  for (std::uint32_t i = 0; i < order.size(); ++i) {
    const net::NodeId v = order[i];
    if (v >= num_vertices || pos[v] != static_cast<std::uint32_t>(-1))
      throw std::invalid_argument("positions_of: not a permutation");
    pos[v] = i;
  }
  return pos;
}

std::vector<std::uint32_t> cut_profile(const net::Hypergraph& hg,
                                       const Ordering& order) {
  const auto pos = positions_of(order, hg.num_vertices);
  if (hg.num_vertices < 2) return {};
  // Edge e spans gaps [min pos, max pos): difference array + prefix sum.
  std::vector<std::int32_t> delta(hg.num_vertices + 1, 0);
  for (const auto& e : hg.edges) {
    std::uint32_t lo = static_cast<std::uint32_t>(-1);
    std::uint32_t hi = 0;
    for (net::NodeId v : e) {
      lo = std::min(lo, pos[v]);
      hi = std::max(hi, pos[v]);
    }
    if (lo < hi) {
      ++delta[lo];
      --delta[hi];
    }
  }
  std::vector<std::uint32_t> profile(hg.num_vertices - 1, 0);
  std::int32_t running = 0;
  for (std::size_t i = 0; i + 1 < hg.num_vertices; ++i) {
    running += delta[i];
    profile[i] = static_cast<std::uint32_t>(running);
  }
  return profile;
}

std::uint32_t cut_width(const net::Hypergraph& hg, const Ordering& order) {
  const auto profile = cut_profile(hg, order);
  std::uint32_t w = 0;
  for (std::uint32_t c : profile) w = std::max(w, c);
  return w;
}

std::uint32_t cut_width(const net::Network& netw, const Ordering& order) {
  return cut_width(net::to_hypergraph(netw), order);
}

Ordering identity_ordering(std::size_t num_vertices) {
  Ordering order(num_vertices);
  for (std::size_t i = 0; i < num_vertices; ++i)
    order[i] = static_cast<net::NodeId>(i);
  return order;
}

}  // namespace cwatpg::core
