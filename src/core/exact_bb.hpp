// Exact minimum cut-width by branch and bound.
//
// The subset DP in mla.hpp is exact but memory-bound at ~22 vertices.
// This prefix-ordering branch and bound reaches moderately larger graphs
// (~30+ vertices, topology-dependent) and provides ground truth for
// auditing the MLA approximation in tests and ablations. Pruning:
//   * running max-cut >= incumbent  -> cut the branch;
//   * degree lower bound: ceil(max vertex degree / 2) caps what any
//     ordering can achieve — used both to stop early when the incumbent
//     is provably optimal and to prune;
//   * memoization on (placed-vertex set): the best achievable completion
//     depends only on the set, so a revisit with a worse running max is
//     pruned (dominance).
#pragma once

#include <optional>

#include "core/cutwidth.hpp"

namespace cwatpg::core {

struct ExactBbConfig {
  /// Hard cap on branch-and-bound nodes; returns nullopt when exceeded.
  std::uint64_t max_nodes = 20'000'000;
  /// Vertex-count guard (the memo table is keyed by 64-bit subsets).
  std::size_t max_vertices = 40;
  /// Optional starting incumbent (e.g. an MLA result) to prune from the
  /// first node; 0 means "none".
  std::uint32_t initial_upper_bound = 0;
};

struct ExactBbResult {
  Ordering order;
  std::uint32_t width = 0;
  std::uint64_t nodes = 0;  ///< branch-and-bound nodes explored
};

/// Exact minimum cut-width of `hg`; nullopt when the node budget is
/// exhausted first. Throws std::invalid_argument above max_vertices.
std::optional<ExactBbResult> exact_cutwidth_bb(const net::Hypergraph& hg,
                                               const ExactBbConfig& config = {});

/// Cheap lower bound valid for every ordering: ceil(maxdeg / 2), where
/// maxdeg counts distinct hyperedges incident to a vertex (every edge at a
/// vertex crosses one of the two gaps beside it).
std::uint32_t cutwidth_lower_bound(const net::Hypergraph& hg);

}  // namespace cwatpg::core
