// Theoretical bound calculators (Lemma 4.1, Theorem 4.1, Eq. 4.5,
// Lemmas 4.2/4.3/5.2) and the tree-ordering construction behind Lemma 5.2.
//
// All bounds are returned in log2 space: the quantities (2^(2*k_fo*W)) are
// astronomically large for modest widths, and every consumer (benches and
// property tests) compares measured tree sizes against the bound in log
// space anyway.
#pragma once

#include <cstdint>

#include "core/cutwidth.hpp"

namespace cwatpg::core {

/// Lemma 4.1: log2 of the bound on the number of distinct consistent
/// sub-formulas generated across a cut of size `cut_size`:
/// F <= 2^(2*k_fo*cut). Returns 2*k_fo*cut.
double lemma41_log2_bound(std::size_t k_fo, std::uint32_t cut_size);

/// Theorem 4.1: log2 of the running-time bound of Algorithm 1 on
/// CIRCUIT-SAT(f(C)) under ordering h: O(n * 2^(2*k_fo*W)).
double theorem41_log2_bound(std::size_t n, std::size_t k_fo,
                            std::uint32_t width);

/// Equation 4.5 (multi-output): O(p * n_max * 2^(2*k_fo*W(C,H))).
double eq45_log2_bound(std::size_t p, std::size_t n_max, std::size_t k_fo,
                       std::uint32_t width);

/// Lemma 4.2 / 4.3 right-hand side: 2*W + 2.
constexpr std::uint32_t lemma42_rhs(std::uint32_t width) {
  return 2 * width + 2;
}

/// Lemma 5.2 right-hand side for a k-ary tree with n vertices:
/// (k-1) * log2(n).
double lemma52_rhs(std::size_t k, std::size_t n);

/// True iff the circuit's signal hypergraph is a forest when each
/// multi-terminal net is viewed as a clique-free star (i.e. every node has
/// at most one fanout and nets are two-point) — the shape Lemma 5.2 is
/// stated for.
bool is_tree_circuit(const net::Network& net);

/// The Lemma 5.2 ordering for a tree circuit: children subtrees of every
/// node are arranged in decreasing order of their (recursively computed)
/// arrangement width, each subtree contiguously, the root last. Achieves
/// W(T,h) <= (k-1)*log2(n) for k-ary trees. Throws std::invalid_argument
/// if `net` is not a tree circuit.
Ordering tree_ordering(const net::Network& net);

}  // namespace cwatpg::core
