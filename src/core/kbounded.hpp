// k-bounded circuits (Fujiwara [10], §3.2) and their connection to
// log-bounded-width circuits (Theorem 5.1).
//
// A circuit is k-bounded if its nodes partition into disjoint blocks such
// that every block has at most k inputs (nets entering from outside the
// block) and the block-level DAG has no reconvergent paths (at most one
// directed path between any two blocks). All reconvergence is then local —
// confined inside blocks.
#pragma once

#include <optional>
#include <vector>

#include "core/cutwidth.hpp"

namespace cwatpg::core {

/// A partition of the circuit's nodes into blocks 0..num_blocks-1.
struct BlockPartition {
  std::vector<std::uint32_t> block_of;  // one entry per NodeId
  std::uint32_t num_blocks = 0;
};

/// Number of distinct input nets of each block (signals driven outside the
/// block and consumed inside it).
std::vector<std::uint32_t> block_input_counts(const net::Network& net,
                                              const BlockPartition& part);

/// True iff the block-level DAG has at most one directed path between any
/// pair of blocks (no reconvergent paths). Path counts are capped at 2.
bool block_dag_is_reconvergence_free(const net::Network& net,
                                     const BlockPartition& part);

/// Full k-boundedness check of a candidate partition.
bool is_kbounded(const net::Network& net, const BlockPartition& part,
                 std::uint32_t k);

/// Heuristic recognizer: partitions the circuit into maximal fanout-free
/// cones (every single-fanout node merges into its consumer's block) and
/// returns the partition iff it witnesses k-boundedness with no block
/// larger than `max_block_size`. The size cap keeps the answer meaningful:
/// without it the one-block partition of any fanout-free circuit would
/// "witness" k-boundedness vacuously (zero block inputs). Returns nullopt
/// when the cone partition violates a condition — the circuit may still be
/// k-bounded under another partition; recognition in general is hard, and
/// the classic families ship with constructive witnesses in
/// gen/kbounded_gen.hpp instead.
std::optional<BlockPartition> find_kbounded_partition(
    const net::Network& net, std::uint32_t k,
    std::size_t max_block_size = 32);

/// Theorem 5.1 ordering construction for a k-bounded circuit whose block
/// DAG is a forest: blocks are arranged by the Lemma 5.2 tree rule
/// (subtrees in decreasing width order, root block last), nodes within a
/// block contiguously in topological order. The resulting cut-width is
/// O((k + max block size) * log #blocks) — logarithmic in circuit size for
/// constant-size blocks, witnessing log-bounded width. Throws
/// std::invalid_argument if the partition is invalid or the block DAG is
/// not a forest.
Ordering kbounded_ordering(const net::Network& net,
                           const BlockPartition& part, std::uint32_t k);

}  // namespace cwatpg::core
