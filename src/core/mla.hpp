// Min-cut linear arrangement (MLA) approximation (§5.2.1).
//
// The minimum cut-width of a circuit is the max-cut value under an optimal
// MLA — an NP-complete problem — so, exactly like the paper, we approximate:
// "a placement based on recursive mincut bipartitioning, until the
// partitions are sufficiently small, and then ... an exact MLA for each of
// these partitions." Bipartitioning is our multilevel FM (src/partition,
// the hMETIS stand-in); leaves of at most `exact_threshold` vertices are
// ordered optimally by a subset DP:
//     dp[S] = min over v in S of max(dp[S \ v], cut(S)),
// where cut(S) counts induced edges spanning S and its complement.
#pragma once

#include "core/cutwidth.hpp"
#include "core/refine.hpp"
#include "partition/multilevel.hpp"

namespace cwatpg::core {

struct MlaConfig {
  /// Leaf size at which recursion switches to the exact subset DP
  /// (2..16; the DP is O(2^k * k * |E|)).
  std::size_t exact_threshold = 10;
  part::MultilevelConfig partition;
  /// Adjacent-swap post-refinement sweeps (0 disables). Monotone: can only
  /// tighten the width estimate.
  std::size_t refine_passes = 4;
};

struct MlaResult {
  Ordering order;        ///< permutation of the graph's vertices
  std::uint32_t width = 0;  ///< W(G, order)
};

/// Approximates a minimum cut-width ordering of `hg`.
MlaResult mla(const net::Hypergraph& hg, const MlaConfig& config = {});

/// Convenience: MLA over a circuit's signal hypergraph. This is the
/// "approximate cut-width of the circuit" measurement used for every
/// Figure 8 data point.
MlaResult mla(const net::Network& net, const MlaConfig& config = {});

/// Exact minimum cut-width by subset DP — exponential, for graphs of at
/// most ~20 vertices. Used by tests to gauge the approximation and by the
/// leaf solver. Throws std::invalid_argument above `max_vertices` = 22.
MlaResult exact_mla(const net::Hypergraph& hg);

/// Multi-output circuit cut-width W(C,H) per Equation 4.4: MLA is run on
/// each primary-output cone independently and the maximum width returned.
struct MultiOutputWidth {
  std::uint32_t width = 0;              ///< W(C,H) = max over cones
  std::size_t max_cone_size = 0;        ///< n_max of Equation 4.5
  std::vector<ConeWidth> cones;         ///< per-cone (size, width)
};
MultiOutputWidth mla_multi_output(const net::Network& net,
                                  const MlaConfig& config = {});

}  // namespace cwatpg::core
