#include "core/refine.hpp"

#include <algorithm>

namespace cwatpg::core {

RefineResult refine_ordering(const net::Hypergraph& hg, Ordering order,
                             const RefineConfig& config) {
  RefineResult result;
  result.width_before = cut_width(hg, order);

  const std::size_t n = hg.num_vertices;
  auto pos = positions_of(order, n);

  // Incidence lists.
  std::vector<std::vector<std::uint32_t>> incident(n);
  for (std::uint32_t e = 0; e < hg.edges.size(); ++e)
    for (net::NodeId v : hg.edges[e]) incident[v].push_back(e);

  // Does edge e cross gap g under the current positions?
  auto crosses = [&](std::uint32_t e, std::size_t gap) {
    std::uint32_t lo = static_cast<std::uint32_t>(-1), hi = 0;
    for (net::NodeId v : hg.edges[e]) {
      lo = std::min(lo, pos[v]);
      hi = std::max(hi, pos[v]);
    }
    return lo <= gap && gap < hi;
  };

  for (std::size_t pass = 0; pass < config.max_passes && n >= 2; ++pass) {
    bool improved = false;
    for (std::size_t gap = 0; gap + 1 < n; ++gap) {
      const net::NodeId u = order[gap];
      const net::NodeId w = order[gap + 1];
      // Candidate edges: those incident to u or w (all others see the same
      // bipartition of vertices around this gap either way).
      std::vector<std::uint32_t> edges;
      edges.insert(edges.end(), incident[u].begin(), incident[u].end());
      edges.insert(edges.end(), incident[w].begin(), incident[w].end());
      std::sort(edges.begin(), edges.end());
      edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

      std::int32_t before = 0;
      for (std::uint32_t e : edges)
        if (crosses(e, gap)) ++before;
      // Trial swap.
      std::swap(pos[u], pos[w]);
      std::int32_t after = 0;
      for (std::uint32_t e : edges)
        if (crosses(e, gap)) ++after;
      if (after < before) {
        std::swap(order[gap], order[gap + 1]);
        ++result.swaps_accepted;
        improved = true;
      } else {
        std::swap(pos[u], pos[w]);  // revert
      }
    }
    if (!improved) break;
  }

  result.width_after = cut_width(hg, order);
  result.order = std::move(order);
  return result;
}

}  // namespace cwatpg::core
