// Local-search refinement of linear arrangements.
//
// The recursive-bisection MLA gives good global structure but leaves local
// slack. Adjacent-swap hill climbing tightens it: swapping the vertices on
// either side of gap g changes the crossing count of gap g only (every
// other gap sees the same vertex sets on its two sides), so a swap that
// strictly reduces that one count strictly reduces the profile sum and can
// never increase the width. Sweeps repeat until a fixed point or the pass
// budget runs out — O(passes * n * local-degree) total.
//
// Used as an optional post-pass on MLA orderings and as an ablation axis.
#pragma once

#include "core/cutwidth.hpp"

namespace cwatpg::core {

struct RefineConfig {
  /// Maximum full sweeps (each sweep visits every gap once).
  std::size_t max_passes = 8;
};

struct RefineResult {
  Ordering order;
  std::uint32_t width_before = 0;
  std::uint32_t width_after = 0;
  std::size_t swaps_accepted = 0;
};

/// Improves `order` for `hg` by adjacent swaps; monotone in the cut
/// profile, so width_after <= width_before always.
RefineResult refine_ordering(const net::Hypergraph& hg, Ordering order,
                             const RefineConfig& config = {});

}  // namespace cwatpg::core
