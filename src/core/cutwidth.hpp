// Circuit cut-width (Definition 4.1) and its multi-output extension (§4.3).
//
// Given a hypergraph G(V,E) and an ordering h of its vertices, the
// cut-width W(G,h) is the maximum over gaps i of the number of hyperedges
// with one endpoint at position <= i and another at position > i. For
// circuits, G is the signal hypergraph of net::to_hypergraph, so W measures
// how many nets a sweep through the ordering must "hold open" — the
// quantity Theorem 4.1 ties to the backtracking-tree size.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/hypergraph.hpp"
#include "netlist/network.hpp"

namespace cwatpg::core {

/// An ordering is a sequence of vertices; position of v = index of v in the
/// sequence. Must be a permutation of 0..n-1 for the functions below.
using Ordering = std::vector<net::NodeId>;

/// Inverse of an ordering: position[v] = index of v. Throws
/// std::invalid_argument if `order` is not a permutation of 0..n-1.
std::vector<std::uint32_t> positions_of(const Ordering& order,
                                        std::size_t num_vertices);

/// Cut profile: profile[i] = number of hyperedges crossing the gap between
/// positions i and i+1 (i in 0..n-2). Empty for n < 2.
std::vector<std::uint32_t> cut_profile(const net::Hypergraph& hg,
                                       const Ordering& order);

/// W(G, h): max of the cut profile (0 for trivial graphs).
std::uint32_t cut_width(const net::Hypergraph& hg, const Ordering& order);

/// Cut-width of a circuit under an ordering of its nodes (builds the signal
/// hypergraph internally).
std::uint32_t cut_width(const net::Network& net, const Ordering& order);

/// Identity ordering 0..n-1. For our networks this is a topological order.
Ordering identity_ordering(std::size_t num_vertices);

/// Multi-output cut-width W(C,H) (Equation 4.4): the max over output cones
/// C_i of W(C_i, h_i). `orderings[i]` orders the nodes of the i-th cone
/// (cone node ids, i.e. the SubCircuit id space of net::output_cone).
/// Exposed pieces: callers usually use core::mla_multi_output instead.
struct ConeWidth {
  std::size_t cone_size = 0;      ///< |V_{C_i}|
  std::uint32_t width = 0;        ///< W(C_i, h_i)
};

}  // namespace cwatpg::core
