// Combinational equivalence checking (CEC) by SAT.
//
// The paper's introduction lists verification ([3] Brand, [17] Verity) as
// a major consumer of ATPG/SAT techniques; this module is that
// application: a miter of two networks (pairwise XOR of outputs, shared
// inputs) handed to the CDCL solver. UNSAT proves equivalence; SAT yields
// a distinguishing input vector. The same cut-width reasoning applies —
// miters of structurally similar circuits inherit their cut-width, which
// is why practical CEC is tractable too.
#pragma once

#include <optional>
#include <vector>

#include "netlist/network.hpp"
#include "sat/solver.hpp"

namespace cwatpg::verify {

struct CecResult {
  bool equivalent = false;
  /// A distinguishing input assignment when !equivalent (over a's PIs,
  /// matched to b's by position).
  std::vector<bool> counterexample;
  sat::SolverStats stats;
};

/// Checks functional equivalence of `a` and `b`. Inputs and outputs are
/// matched by position; throws std::invalid_argument when the interface
/// shapes differ. Verified counterexample: the returned vector provably
/// drives some output pair apart (rechecked by simulation before
/// returning; a mismatch would be an internal error).
CecResult check_equivalence(const net::Network& a, const net::Network& b,
                            sat::SolverConfig solver = {});

/// Builds the CEC miter network itself (useful for width analysis of
/// verification instances): inputs of `a`, both circuits, XOR per output
/// pair as the miter's outputs.
net::Network build_cec_miter(const net::Network& a, const net::Network& b);

}  // namespace cwatpg::verify
