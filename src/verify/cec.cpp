#include "verify/cec.hpp"

#include <stdexcept>

#include "sat/encode.hpp"

namespace cwatpg::verify {

net::Network build_cec_miter(const net::Network& a, const net::Network& b) {
  if (a.inputs().size() != b.inputs().size())
    throw std::invalid_argument("cec: input counts differ");
  if (a.outputs().size() != b.outputs().size())
    throw std::invalid_argument("cec: output counts differ");

  net::Network miter;
  miter.set_name(a.name() + "_vs_" + b.name());

  // Shared primary inputs.
  std::vector<net::NodeId> pis;
  pis.reserve(a.inputs().size());
  for (net::NodeId pi : a.inputs())
    pis.push_back(miter.add_input(a.name_of(pi)));

  // Copies a network into the miter; returns the signal feeding each PO.
  auto copy_into = [&](const net::Network& src,
                       const char* suffix) -> std::vector<net::NodeId> {
    std::vector<net::NodeId> map(src.node_count(), net::kNullNode);
    for (std::size_t i = 0; i < src.inputs().size(); ++i)
      map[src.inputs()[i]] = pis[i];
    std::vector<net::NodeId> po_signals;
    for (net::NodeId id = 0; id < src.node_count(); ++id) {
      const auto& node = src.node(id);
      switch (node.type) {
        case net::GateType::kInput:
          break;  // mapped above
        case net::GateType::kConst0:
        case net::GateType::kConst1:
          map[id] = miter.add_const(node.type == net::GateType::kConst1);
          break;
        case net::GateType::kOutput:
          po_signals.push_back(map[node.fanins[0]]);
          break;
        default: {
          std::vector<net::NodeId> fis;
          fis.reserve(node.fanins.size());
          for (net::NodeId fi : node.fanins) fis.push_back(map[fi]);
          map[id] = miter.add_gate(node.type, std::move(fis),
                                   src.name_of(id) + suffix);
          break;
        }
      }
    }
    return po_signals;
  };

  const auto a_pos = copy_into(a, "_a");
  const auto b_pos = copy_into(b, "_b");
  for (std::size_t o = 0; o < a_pos.size(); ++o) {
    const net::NodeId x = miter.add_gate(net::GateType::kXor,
                                         {a_pos[o], b_pos[o]});
    miter.add_output(x, "diff" + std::to_string(o));
  }
  miter.validate();
  return miter;
}

CecResult check_equivalence(const net::Network& a, const net::Network& b,
                            sat::SolverConfig solver_config) {
  const net::Network miter = build_cec_miter(a, b);
  const sat::Cnf cnf = sat::encode_circuit_sat(miter);
  const sat::SolveResult r = sat::solve_cnf(cnf, solver_config);

  CecResult result;
  result.stats = r.stats;
  if (r.status == sat::SolveStatus::kUnsat) {
    result.equivalent = true;
    return result;
  }
  if (r.status == sat::SolveStatus::kUnknown)
    throw std::runtime_error("cec: solver budget exhausted");

  result.counterexample.resize(miter.inputs().size());
  for (std::size_t i = 0; i < miter.inputs().size(); ++i)
    result.counterexample[i] = r.model[miter.inputs()[i]];

  // Paranoid recheck: the counterexample must actually distinguish.
  const auto va = a.eval(result.counterexample);
  const auto vb = b.eval(result.counterexample);
  bool differs = false;
  for (std::size_t o = 0; o < a.outputs().size(); ++o)
    differs = differs || va[a.outputs()[o]] != vb[b.outputs()[o]];
  if (!differs)
    throw std::logic_error("cec: counterexample failed to distinguish");
  return result;
}

}  // namespace cwatpg::verify
