#include "partition/multilevel.hpp"

#include <algorithm>
#include <map>
#include <numeric>

namespace cwatpg::part {

WeightedHg coarsen(const WeightedHg& hg, Rng& rng,
                   std::vector<std::uint32_t>& match_out) {
  const std::size_t n = hg.num_vertices();
  std::vector<std::vector<std::uint32_t>> incident(n);
  for (std::size_t e = 0; e < hg.edges.size(); ++e)
    for (std::uint32_t v : hg.edges[e])
      incident[v].push_back(static_cast<std::uint32_t>(e));

  // Randomized matching: for each unmatched vertex, pair it with an
  // unmatched neighbour reached through its smallest incident edge
  // (heavy-edge heuristic: small edges are the ones a cut should not split).
  std::vector<std::uint32_t> mate(n, static_cast<std::uint32_t>(-1));
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  for (std::size_t i = n; i > 1; --i)
    std::swap(order[i - 1], order[rng.below(i)]);

  for (std::uint32_t v : order) {
    if (mate[v] != static_cast<std::uint32_t>(-1)) continue;
    std::uint32_t best = static_cast<std::uint32_t>(-1);
    double best_score = -1.0;
    for (std::uint32_t e : incident[v]) {
      const double score = static_cast<double>(hg.edge_weight[e]) /
                           static_cast<double>(hg.edges[e].size());
      for (std::uint32_t u : hg.edges[e]) {
        if (u == v || mate[u] != static_cast<std::uint32_t>(-1)) continue;
        if (score > best_score) {
          best_score = score;
          best = u;
        }
        break;  // one candidate per edge keeps this linear
      }
    }
    if (best != static_cast<std::uint32_t>(-1)) {
      mate[v] = best;
      mate[best] = v;
    } else {
      mate[v] = v;  // stays single
    }
  }

  // Assign coarse ids.
  match_out.assign(n, static_cast<std::uint32_t>(-1));
  std::uint32_t next = 0;
  for (std::uint32_t v = 0; v < n; ++v) {
    if (match_out[v] != static_cast<std::uint32_t>(-1)) continue;
    match_out[v] = next;
    if (mate[v] != v) match_out[mate[v]] = next;
    ++next;
  }

  WeightedHg coarse;
  coarse.vertex_weight.assign(next, 0);
  for (std::uint32_t v = 0; v < n; ++v)
    coarse.vertex_weight[match_out[v]] += hg.vertex_weight[v];

  // Rebuild edges; merge duplicates, drop singletons.
  std::map<std::vector<std::uint32_t>, std::uint32_t> merged;
  std::vector<std::uint32_t> tmp;
  for (std::size_t e = 0; e < hg.edges.size(); ++e) {
    tmp.clear();
    for (std::uint32_t v : hg.edges[e]) tmp.push_back(match_out[v]);
    std::sort(tmp.begin(), tmp.end());
    tmp.erase(std::unique(tmp.begin(), tmp.end()), tmp.end());
    if (tmp.size() < 2) continue;
    merged[tmp] += hg.edge_weight[e];
  }
  for (auto& [verts, weight] : merged) {
    coarse.edges.push_back(verts);
    coarse.edge_weight.push_back(weight);
  }
  return coarse;
}

Bisection multilevel_bisect(const WeightedHg& hg,
                            const MultilevelConfig& config) {
  Rng rng(config.fm.seed ^ 0xc0a2537fULL);

  // Build the coarsening hierarchy.
  std::vector<WeightedHg> levels{hg};
  std::vector<std::vector<std::uint32_t>> matches;
  while (levels.back().num_vertices() > config.coarsest_size) {
    std::vector<std::uint32_t> match;
    WeightedHg coarse = coarsen(levels.back(), rng, match);
    if (static_cast<double>(coarse.num_vertices()) >
        config.min_shrink * static_cast<double>(levels.back().num_vertices()))
      break;  // matching stalled (e.g. star topologies)
    matches.push_back(std::move(match));
    levels.push_back(std::move(coarse));
  }

  // Initial solution at the coarsest level.
  Bisection part = fm_bisect(levels.back(), config.fm);

  // Project up and refine.
  for (std::size_t lvl = matches.size(); lvl-- > 0;) {
    Bisection fine;
    fine.side.resize(levels[lvl].num_vertices());
    for (std::uint32_t v = 0; v < fine.side.size(); ++v)
      fine.side[v] = part.side[matches[lvl][v]];
    FmConfig refine_cfg = config.fm;
    refine_cfg.num_starts = 1;
    part = fm_refine(levels[lvl], std::move(fine), refine_cfg, rng);
  }
  return part;
}

Bisection multilevel_bisect(const net::Hypergraph& hg,
                            const MultilevelConfig& config) {
  return multilevel_bisect(WeightedHg::from(hg), config);
}

}  // namespace cwatpg::part
