#include "partition/fm.hpp"

#include <algorithm>
#include <array>
#include <numeric>
#include <optional>
#include <queue>
#include <stdexcept>

namespace cwatpg::part {

WeightedHg WeightedHg::from(const net::Hypergraph& hg) {
  WeightedHg w;
  w.vertex_weight.assign(hg.num_vertices, 1);
  w.edges = hg.edges;
  w.edge_weight.assign(w.edges.size(), 1);
  return w;
}

std::uint64_t cut_cost(const WeightedHg& hg,
                       std::span<const std::uint8_t> side) {
  std::uint64_t cut = 0;
  for (std::size_t e = 0; e < hg.edges.size(); ++e) {
    bool has0 = false, has1 = false;
    for (std::uint32_t v : hg.edges[e]) (side[v] ? has1 : has0) = true;
    if (has0 && has1) cut += hg.edge_weight[e];
  }
  return cut;
}

namespace {

/// One FM pass state: pin counts per edge side, per-vertex gains, and a
/// lazy max-priority queue (entries are invalidated by a version stamp).
class FmPass {
 public:
  FmPass(const WeightedHg& hg, std::vector<std::uint8_t>& side,
         std::uint64_t lo, std::uint64_t hi)
      : hg_(hg), side_(side), lo_(lo), hi_(hi) {
    const std::size_t n = hg.num_vertices();
    pins_.resize(hg.edges.size());
    incident_.resize(n);
    for (std::size_t e = 0; e < hg_.edges.size(); ++e) {
      for (std::uint32_t v : hg_.edges[e]) {
        ++pins_[e][side_[v]];
        incident_[v].push_back(static_cast<std::uint32_t>(e));
      }
    }
    side_weight_[0] = side_weight_[1] = 0;
    for (std::size_t v = 0; v < n; ++v)
      side_weight_[side_[v]] += hg_.vertex_weight[v];
    gain_.assign(n, 0);
    stamp_.assign(n, 0);
    locked_.assign(n, false);
    for (std::uint32_t v = 0; v < n; ++v) {
      gain_[v] = compute_gain(v);
      queue_.push({gain_[v], v, 0});
    }
  }

  /// Runs the pass; returns the cut *improvement* achieved (>= 0) after
  /// rolling back to the best prefix of moves.
  std::int64_t run(std::uint64_t initial_cut) {
    std::int64_t best_delta = 0;
    std::int64_t delta = 0;
    std::size_t best_prefix = 0;
    std::vector<std::uint32_t> moves;
    (void)initial_cut;

    while (auto v = pop_best()) {
      delta -= gain_[*v];  // gain reduces the cut
      apply_move(*v);
      moves.push_back(*v);
      // Prefer strictly better cuts; among equals prefer better balance
      // implicitly by taking the earliest prefix.
      if (delta < best_delta && balanced()) {
        best_delta = delta;
        best_prefix = moves.size();
      }
    }
    // Roll back moves after the best prefix.
    for (std::size_t i = moves.size(); i-- > best_prefix;)
      apply_move(moves[i]);  // moving again undoes it
    return -best_delta;
  }

 private:
  std::int64_t compute_gain(std::uint32_t v) const {
    std::int64_t g = 0;
    const std::uint8_t s = side_[v];
    for (std::uint32_t e : incident_[v]) {
      const auto& p = pins_[e];
      if (p[s] == 1 && p[1 - s] > 0) g += hg_.edge_weight[e];
      if (p[1 - s] == 0) g -= hg_.edge_weight[e];
    }
    return g;
  }

  bool balanced() const {
    return side_weight_[0] >= lo_ && side_weight_[0] <= hi_ &&
           side_weight_[1] >= lo_ && side_weight_[1] <= hi_;
  }

  bool move_feasible(std::uint32_t v) const {
    const std::uint8_t s = side_[v];
    const std::uint64_t w = hg_.vertex_weight[v];
    const std::uint64_t to = side_weight_[1 - s] + w;
    if (to <= hi_) return true;
    // Permit imbalance-reducing moves even past the bound (repair path for
    // infeasible starts on coarse graphs with heavy vertices).
    return side_weight_[s] > side_weight_[1 - s] + w;
  }

  struct Entry {
    std::int64_t gain;
    std::uint32_t vertex;
    std::uint32_t stamp;
    bool operator<(const Entry& o) const { return gain < o.gain; }
  };

  std::optional<std::uint32_t> pop_best() {
    std::vector<Entry> skipped;
    std::optional<std::uint32_t> found;
    while (!queue_.empty()) {
      const Entry top = queue_.top();
      queue_.pop();
      if (locked_[top.vertex] || top.stamp != stamp_[top.vertex])
        continue;  // stale
      if (!move_feasible(top.vertex)) {
        skipped.push_back(top);  // balance-blocked now, maybe later
        continue;
      }
      found = top.vertex;
      break;
    }
    for (const Entry& e : skipped) queue_.push(e);
    return found;
  }

  void refresh(std::uint32_t v) {
    gain_[v] = compute_gain(v);
    ++stamp_[v];
    if (!locked_[v]) queue_.push({gain_[v], v, stamp_[v]});
  }

  void apply_move(std::uint32_t v) {
    const std::uint8_t from = side_[v];
    const std::uint8_t to = 1 - from;
    side_[v] = to;
    locked_[v] = true;
    side_weight_[from] -= hg_.vertex_weight[v];
    side_weight_[to] += hg_.vertex_weight[v];
    for (std::uint32_t e : incident_[v]) {
      --pins_[e][from];
      ++pins_[e][to];
      // Neighbor gains change only when an edge becomes/ceases critical;
      // recomputing all members of touched edges is simple and, with the
      // lazy queue, still near-linear per pass for bounded-degree circuits.
      for (std::uint32_t u : hg_.edges[e])
        if (u != v && !locked_[u]) refresh(u);
    }
  }

  const WeightedHg& hg_;
  std::vector<std::uint8_t>& side_;
  std::uint64_t lo_, hi_;
  std::vector<std::array<std::uint32_t, 2>> pins_;
  std::vector<std::vector<std::uint32_t>> incident_;
  std::uint64_t side_weight_[2];
  std::vector<std::int64_t> gain_;
  std::vector<std::uint32_t> stamp_;
  std::vector<bool> locked_;
  std::priority_queue<Entry> queue_;
};

std::uint64_t total_weight(const WeightedHg& hg) {
  return std::accumulate(hg.vertex_weight.begin(), hg.vertex_weight.end(),
                         std::uint64_t{0});
}

}  // namespace

Bisection fm_refine(const WeightedHg& hg, Bisection start,
                    const FmConfig& config, Rng& rng) {
  (void)rng;
  if (start.side.size() != hg.num_vertices())
    throw std::invalid_argument("fm_refine: side size mismatch");
  const std::uint64_t total = total_weight(hg);
  const auto dev = static_cast<std::uint64_t>(
      config.balance * static_cast<double>(total));
  const std::uint64_t half = (total + 1) / 2;
  const std::uint64_t slack = std::max<std::uint64_t>(dev, 1);
  const std::uint64_t hi = half + slack;
  const std::uint64_t lo = half > slack ? half - slack : 0;

  start.cut = cut_cost(hg, start.side);
  for (int pass = 0; pass < config.max_passes; ++pass) {
    FmPass fm(hg, start.side, lo, hi);
    const std::int64_t improvement = fm.run(start.cut);
    if (improvement <= 0) break;
    start.cut -= static_cast<std::uint64_t>(improvement);
  }
  start.cut = cut_cost(hg, start.side);
  return start;
}

Bisection fm_bisect(const WeightedHg& hg, const FmConfig& config) {
  const std::size_t n = hg.num_vertices();
  Bisection best;
  best.cut = static_cast<std::uint64_t>(-1);
  Rng rng(config.seed);

  for (int s = 0; s < std::max(1, config.num_starts); ++s) {
    // Random balanced start: shuffle vertices, fill side 0 to half weight.
    std::vector<std::uint32_t> perm(n);
    std::iota(perm.begin(), perm.end(), 0u);
    for (std::size_t i = n; i > 1; --i)
      std::swap(perm[i - 1], perm[rng.below(i)]);
    const std::uint64_t total = total_weight(hg);
    Bisection cand;
    cand.side.assign(n, 1);
    std::uint64_t acc = 0;
    for (std::uint32_t v : perm) {
      if (acc >= total / 2) break;
      cand.side[v] = 0;
      acc += hg.vertex_weight[v];
    }
    cand = fm_refine(hg, std::move(cand), config, rng);
    if (cand.cut < best.cut) best = std::move(cand);
  }
  return best;
}

}  // namespace cwatpg::part
