// Fiduccia–Mattheyses hypergraph bipartitioning.
//
// The paper estimates cut-width with "a placement based on recursive mincut
// bipartitioning" using hMETIS; this module is our from-scratch stand-in.
// It implements classic FM with gain buckets on *weighted* hypergraphs
// (weights arise from multilevel coarsening, see multilevel.hpp): repeated
// passes of locked single-vertex moves with rollback to the best prefix.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/hypergraph.hpp"
#include "util/rng.hpp"

namespace cwatpg::part {

/// Hypergraph with vertex and edge weights. `edges[e]` lists distinct
/// vertices; cut cost of a bisection is the weight-sum of edges spanning
/// both sides.
struct WeightedHg {
  std::vector<std::vector<std::uint32_t>> edges;
  std::vector<std::uint32_t> edge_weight;    // parallel to edges
  std::vector<std::uint32_t> vertex_weight;  // one per vertex

  std::size_t num_vertices() const { return vertex_weight.size(); }

  /// Wraps an unweighted circuit hypergraph (all weights 1).
  static WeightedHg from(const net::Hypergraph& hg);
};

struct FmConfig {
  /// Allowed deviation of one side's weight from half the total, as a
  /// fraction of total weight (0.1 => sides in [0.4, 0.6] of total).
  double balance = 0.1;
  /// Independent random starts; best result wins.
  int num_starts = 4;
  /// FM passes per start (stops earlier when a pass yields no gain).
  int max_passes = 16;
  std::uint64_t seed = 1;
};

struct Bisection {
  std::vector<std::uint8_t> side;  // 0 or 1 per vertex
  std::uint64_t cut = 0;           // weighted cut of `side`
};

/// Weighted cut of a given side assignment.
std::uint64_t cut_cost(const WeightedHg& hg, std::span<const std::uint8_t> side);

/// Runs FM refinement passes from `start` until no pass improves the cut.
/// The returned bisection is balance-feasible whenever `start` is (a
/// wildly infeasible start is first repaired greedily).
Bisection fm_refine(const WeightedHg& hg, Bisection start,
                    const FmConfig& config, Rng& rng);

/// Full flat FM: random balanced starts + refinement, best of
/// `config.num_starts`.
Bisection fm_bisect(const WeightedHg& hg, const FmConfig& config);

}  // namespace cwatpg::part
