// Multilevel hypergraph bisection (heavy-edge coarsening + FM refinement).
//
// This is the hMETIS-shaped driver the paper relies on ([16]): match
// vertices along hyperedges to build a hierarchy of shrinking weighted
// hypergraphs, bisect the coarsest level with multi-start FM, then project
// the bisection back up, refining with FM at every level. For small graphs
// it degrades gracefully to flat FM.
#pragma once

#include "partition/fm.hpp"

namespace cwatpg::part {

struct MultilevelConfig {
  FmConfig fm;
  /// Stop coarsening when this few vertices remain.
  std::size_t coarsest_size = 64;
  /// Stop coarsening when a level shrinks by less than this factor.
  double min_shrink = 0.9;
};

/// Bisects `hg`; the result is balance-feasible w.r.t. config.fm.balance.
Bisection multilevel_bisect(const WeightedHg& hg,
                            const MultilevelConfig& config = {});

/// Convenience overload for circuit hypergraphs (unit weights).
Bisection multilevel_bisect(const net::Hypergraph& hg,
                            const MultilevelConfig& config = {});

/// One coarsening step (exposed for tests): matches vertices along
/// hyperedges (preferring small, heavy edges), merges matched pairs, and
/// rebuilds edges with weights (parallel reduced edges combine; singleton
/// edges vanish). `match_out[v]` receives the coarse vertex of v.
WeightedHg coarsen(const WeightedHg& hg, Rng& rng,
                   std::vector<std::uint32_t>& match_out);

}  // namespace cwatpg::part
