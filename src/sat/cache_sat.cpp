#include "sat/cache_sat.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace cwatpg::sat {
namespace {

constexpr std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

constexpr std::uint64_t lit_key(Lit l) {
  return mix64((static_cast<std::uint64_t>(l.code()) + 1) *
               0x9e3779b97f4a7c15ULL);
}

/// Algorithm 1 engine. One-shot: construct, run(), discard.
class CacheSatEngine {
 public:
  CacheSatEngine(const Cnf& f, std::span<const Var> order,
                 const CacheSatConfig& config)
      : f_(f), order_(order.begin(), order.end()), config_(config) {
    const Var n = f.num_vars();
    if (order_.size() != n)
      throw std::invalid_argument("cache_sat: order must cover all variables");
    std::vector<bool> seen(n, false);
    for (Var v : order_) {
      if (v >= n || seen[v])
        throw std::invalid_argument("cache_sat: order is not a permutation");
      seen[v] = true;
    }

    assign_.assign(n, kUndef);
    occurrences_.resize(n);
    const auto m = f.num_clauses();
    n_true_.assign(m, 0);
    n_unassigned_.assign(m, 0);
    residual_sum_.assign(m, 0);
    for (std::size_t ci = 0; ci < m; ++ci) {
      for (Lit l : f.clause(ci)) {
        occurrences_[l.var()].push_back({static_cast<std::uint32_t>(ci), l});
        ++n_unassigned_[ci];
        residual_sum_[ci] += lit_key(l);
      }
    }
    active_count_ = m;
    formula_hash_ = 0;
    for (std::size_t ci = 0; ci < m; ++ci) formula_hash_ += fingerprint(ci);
  }

  void finalize_dcsf() {
    if (!config_.track_dcsf) return;
    stats_.dcsf_per_level.clear();
    for (const auto& level : dcsf_sets_)
      stats_.dcsf_per_level.push_back(level.size());
  }

  CacheSatResult run() {
    CacheSatResult result;
    if (f_.num_clauses() == 0) {
      result.status = SolveStatus::kSat;
      result.model.assign(f_.num_vars(), false);
      result.stats = stats_;
      return result;
    }
    if (order_.empty()) {
      // Clauses but no variables cannot happen (clauses are nonempty).
      result.status = SolveStatus::kUnsat;
      result.stats = stats_;
      return result;
    }
    // procedure Sat: try v_first = 0, then v_first = 1.
    for (int b = 0; b <= 1; ++b) {
      const Outcome out = search(b != 0);
      if (out == Outcome::kSat) {
        result.status = SolveStatus::kSat;
        result.model.resize(f_.num_vars());
        for (Var v = 0; v < f_.num_vars(); ++v)
          result.model[v] = assign_[v] == kTrue;
        finalize_dcsf();
        result.stats = stats_;
        return result;
      }
      if (out == Outcome::kAborted) {
        result.status = SolveStatus::kUnknown;
        finalize_dcsf();
        result.stats = stats_;
        return result;
      }
    }
    result.status = SolveStatus::kUnsat;
    finalize_dcsf();
    result.stats = stats_;
    return result;
  }

 private:
  static constexpr std::uint8_t kFalse = 0, kTrue = 1, kUndef = 2;

  enum class Outcome : std::uint8_t { kSat, kUnsat, kAborted };
  enum class Phase : std::uint8_t { kEnter, kChild0Done, kChild1Done };

  struct Occurrence {
    std::uint32_t clause;
    Lit lit;
  };

  struct Frame {
    std::uint32_t depth;  // index into order_
    std::uint8_t value;   // assignment tried at this node
    Phase phase;
  };

  std::uint64_t fingerprint(std::size_t ci) const {
    // Identical residual clauses (same remaining literal set) must agree,
    // independent of clause index.
    return mix64(residual_sum_[ci] * 0x2545f4914f6cdd1dULL +
                 n_unassigned_[ci] + 0x9e3779b97f4a7c15ULL);
  }

  void assign(Var v, bool value) {
    assign_[v] = value ? kTrue : kFalse;
    for (const Occurrence& occ : occurrences_[v]) {
      const std::size_t ci = occ.clause;
      const bool was_active = n_true_[ci] == 0;
      if (was_active) formula_hash_ -= fingerprint(ci);
      if (occ.lit.negated() != value) {
        // Literal became true.
        if (was_active) --active_count_;
        ++n_true_[ci];
      } else {
        --n_unassigned_[ci];
        residual_sum_[ci] -= lit_key(occ.lit);
        if (was_active && n_unassigned_[ci] == 0) ++null_count_;
      }
      if (n_true_[ci] == 0) formula_hash_ += fingerprint(ci);
    }
  }

  void unassign(Var v) {
    const bool value = assign_[v] == kTrue;
    assign_[v] = kUndef;
    for (const Occurrence& occ : occurrences_[v]) {
      const std::size_t ci = occ.clause;
      const bool was_active = n_true_[ci] == 0;
      if (was_active) formula_hash_ -= fingerprint(ci);
      if (occ.lit.negated() != value) {
        --n_true_[ci];
        if (n_true_[ci] == 0) ++active_count_;
      } else {
        if (was_active && n_unassigned_[ci] == 0) --null_count_;
        ++n_unassigned_[ci];
        residual_sum_[ci] += lit_key(occ.lit);
      }
      if (n_true_[ci] == 0) formula_hash_ += fingerprint(ci);
    }
  }

  /// Canonical residual: sorted set of reduced clauses, each a sorted list
  /// of literal codes, flattened with length prefixes. Only computed in
  /// verify_exact mode.
  std::vector<std::uint32_t> canonical_residual() const {
    std::vector<std::vector<std::uint32_t>> reduced;
    for (std::size_t ci = 0; ci < f_.num_clauses(); ++ci) {
      if (n_true_[ci] != 0) continue;
      std::vector<std::uint32_t> lits;
      for (Lit l : f_.clause(ci))
        if (assign_[l.var()] == kUndef) lits.push_back(l.code());
      std::sort(lits.begin(), lits.end());
      reduced.push_back(std::move(lits));
    }
    std::sort(reduced.begin(), reduced.end());
    reduced.erase(std::unique(reduced.begin(), reduced.end()), reduced.end());
    std::vector<std::uint32_t> flat;
    for (const auto& c : reduced) {
      flat.push_back(static_cast<std::uint32_t>(c.size()));
      flat.insert(flat.end(), c.begin(), c.end());
    }
    return flat;
  }

  bool cache_lookup() {
    if (!config_.use_cache) return false;
    if (!config_.verify_exact) return table_.count(formula_hash_) != 0;
    const auto it = exact_table_.find(formula_hash_);
    if (it == exact_table_.end()) return false;
    const auto canon = canonical_residual();
    for (const auto& stored : it->second)
      if (stored == canon) return true;
    ++stats_.hash_collisions;
    return false;
  }

  void cache_insert() {
    if (!config_.use_cache) return;
    ++stats_.cache_insertions;
    if (!config_.verify_exact) {
      table_.insert(formula_hash_);
    } else {
      exact_table_[formula_hash_].push_back(canonical_residual());
    }
  }

  enum class Enter : std::uint8_t { kSat, kPrune, kExpand, kAborted };

  Enter enter(std::uint32_t depth, bool value) {
    ++stats_.nodes;
    stats_.max_depth = std::max<std::uint64_t>(stats_.max_depth, depth + 1);
    if (stats_.nodes > config_.max_nodes) return Enter::kAborted;
    assign(order_[depth], value);
    if (config_.track_dcsf && null_count_ == 0) {
      if (dcsf_sets_.size() <= depth) dcsf_sets_.resize(depth + 1);
      dcsf_sets_[depth].insert(formula_hash_);
    }
    if (null_count_ > 0) {
      ++stats_.null_prunes;
      return Enter::kPrune;
    }
    if (cache_lookup()) {
      ++stats_.cache_hits;
      return Enter::kPrune;
    }
    if (config_.early_sat && active_count_ == 0) return Enter::kSat;
    if (depth + 1 == order_.size())
      // Fully assigned with no NULL clause: every clause is satisfied.
      return Enter::kSat;
    return Enter::kExpand;
  }

  Outcome search(bool root_value) {
    std::vector<Frame> stack;
    stack.push_back({0, root_value ? std::uint8_t{1} : std::uint8_t{0},
                     Phase::kEnter});
    while (!stack.empty()) {
      Frame& frame = stack.back();
      switch (frame.phase) {
        case Phase::kEnter: {
          const Enter action = enter(frame.depth, frame.value != 0);
          if (action == Enter::kSat) return Outcome::kSat;
          if (action == Enter::kAborted) {
            // Leave assignments; caller aborts the whole run.
            return Outcome::kAborted;
          }
          if (action == Enter::kPrune) {
            unassign(order_[frame.depth]);
            stack.pop_back();
            break;
          }
          frame.phase = Phase::kChild0Done;
          stack.push_back({frame.depth + 1, 0, Phase::kEnter});
          break;
        }
        case Phase::kChild0Done: {
          // Child with value 0 returned UNSAT (SAT exits the loop).
          frame.phase = Phase::kChild1Done;
          stack.push_back({frame.depth + 1, 1, Phase::kEnter});
          break;
        }
        case Phase::kChild1Done: {
          // Both subtrees UNSAT: cache this sub-formula, backtrack.
          cache_insert();
          unassign(order_[frame.depth]);
          stack.pop_back();
          break;
        }
      }
    }
    return Outcome::kUnsat;
  }

  const Cnf& f_;
  std::vector<Var> order_;
  CacheSatConfig config_;

  std::vector<std::uint8_t> assign_;
  std::vector<std::vector<Occurrence>> occurrences_;
  std::vector<std::uint32_t> n_true_;
  std::vector<std::uint32_t> n_unassigned_;
  std::vector<std::uint64_t> residual_sum_;
  std::uint64_t formula_hash_ = 0;
  std::size_t active_count_ = 0;
  std::size_t null_count_ = 0;

  std::unordered_set<std::uint64_t> table_;
  std::vector<std::unordered_set<std::uint64_t>> dcsf_sets_;
  std::unordered_map<std::uint64_t, std::vector<std::vector<std::uint32_t>>>
      exact_table_;

  CacheSatStats stats_;
};

}  // namespace

CacheSatResult cache_sat(const Cnf& f, std::span<const Var> order,
                         CacheSatConfig config) {
  CacheSatEngine engine(f, order, config);
  return engine.run();
}

std::vector<Var> identity_order(const Cnf& f) {
  std::vector<Var> order(f.num_vars());
  for (Var v = 0; v < f.num_vars(); ++v) order[v] = v;
  return order;
}

}  // namespace cwatpg::sat
