#include "sat/implications.hpp"

#include <algorithm>
#include <set>

namespace cwatpg::sat {

bool unit_propagate(const Cnf& f, std::span<const Lit> assumptions,
                    std::vector<Lit>& implied_out) {
  implied_out.clear();
  // 0 = unassigned, 1 = true, 2 = false (per variable).
  std::vector<std::uint8_t> value(f.num_vars(), 0);
  std::vector<Lit> queue;
  auto assign = [&](Lit l) -> bool {
    const std::uint8_t want = l.negated() ? 2 : 1;
    std::uint8_t& slot = value[l.var()];
    if (slot == want) return true;
    if (slot != 0) return false;  // conflict
    slot = want;
    queue.push_back(l);
    return true;
  };
  for (Lit a : assumptions)
    if (!assign(a)) return false;
  const std::size_t num_assumptions = queue.size();

  // Naive BCP: rescan clauses until fixpoint. Fine at preprocessing scale.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Clause& c : f.clauses()) {
      Lit unassigned;
      std::size_t free_count = 0;
      bool satisfied = false;
      for (Lit l : c) {
        const std::uint8_t v = value[l.var()];
        if (v == 0) {
          unassigned = l;
          ++free_count;
        } else if ((v == 1) != l.negated()) {
          satisfied = true;
          break;
        }
      }
      if (satisfied) continue;
      if (free_count == 0) return false;  // empty clause
      if (free_count == 1) {
        if (!assign(unassigned)) return false;
        changed = true;
      }
    }
  }
  implied_out.assign(queue.begin() + static_cast<std::ptrdiff_t>(num_assumptions),
                     queue.end());
  return true;
}

Cnf add_static_implications(const Cnf& f, ImplicationStats* stats_out,
                            const ImplicationConfig& config) {
  ImplicationStats stats;
  Cnf out = f;

  // Existing binary clauses, for the skip_direct filter.
  std::set<std::pair<std::uint32_t, std::uint32_t>> binaries;
  for (const Clause& c : f.clauses()) {
    if (c.size() == 2)
      binaries.insert({std::min(c[0].code(), c[1].code()),
                       std::max(c[0].code(), c[1].code())});
  }

  std::vector<Lit> implied;
  std::size_t learned = 0;
  for (Var v = 0; v < f.num_vars() && learned < config.max_learned; ++v) {
    bool failed[2] = {false, false};
    for (int sign = 0; sign < 2; ++sign) {
      const Lit l(v, sign == 1);
      ++stats.literals_tested;
      const Lit assumption[] = {l};
      if (!unit_propagate(f, assumption, implied)) {
        failed[sign] = true;
        ++stats.failed_literals;
        out.add_clause({~l});
        ++learned;
        continue;
      }
      for (Lit m : implied) {
        if (learned >= config.max_learned) break;
        const Lit a = ~l;
        const auto key = std::make_pair(std::min(a.code(), m.code()),
                                        std::max(a.code(), m.code()));
        if (config.skip_direct && binaries.count(key)) continue;
        if (a.var() == m.var()) continue;  // tautology or unit, skip
        out.add_clause({a, m});
        binaries.insert(key);
        ++stats.binaries_added;
        ++learned;
      }
    }
    if (failed[0] && failed[1]) stats.proved_unsat = true;
  }
  if (stats_out) *stats_out = stats;
  return out;
}

}  // namespace cwatpg::sat
