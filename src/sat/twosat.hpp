// Linear-time 2-SAT via implication-graph strongly-connected components
// (Aspvall–Plass–Tarjan).
//
// Substrate for the §3.1 class recognizers: hidden-Horn detection reduces
// to a 2-SAT instance over renaming variables. Also independently useful —
// 2-SAT is one of the polynomial classes the paper examines.
#pragma once

#include <optional>
#include <vector>

#include "sat/cnf.hpp"

namespace cwatpg::sat {

/// Dedicated 2-SAT solver. Clauses of size 1 and 2 only.
class TwoSat {
 public:
  explicit TwoSat(Var num_vars);

  Var num_vars() const { return num_vars_; }

  /// Adds (a ∨ b).
  void add_or(Lit a, Lit b);
  /// Adds a unit clause (a).
  void add_unit(Lit a) { add_or(a, a); }
  /// Adds an implication a -> b (same as (~a ∨ b)).
  void add_implies(Lit a, Lit b) { add_or(~a, b); }

  /// Solves; returns a model or nullopt when unsatisfiable.
  /// O(vars + clauses) via Tarjan SCC.
  std::optional<std::vector<bool>> solve() const;

 private:
  Var num_vars_;
  std::vector<std::vector<std::uint32_t>> implications_;  // by Lit::code()
};

/// True iff every clause has at most 2 literals.
bool is_2sat(const Cnf& f);

/// Solves a CNF all of whose clauses have <= 2 literals; throws
/// std::invalid_argument otherwise.
std::optional<std::vector<bool>> solve_2sat(const Cnf& f);

}  // namespace cwatpg::sat
