#include "sat/classes.hpp"

#include <stdexcept>

#include "sat/twosat.hpp"
#include "util/lp.hpp"

namespace cwatpg::sat {

bool is_horn(const Cnf& f) {
  for (const Clause& c : f.clauses()) {
    std::size_t positives = 0;
    for (Lit l : c)
      if (!l.negated()) ++positives;
    if (positives > 1) return false;
  }
  return true;
}

bool is_reverse_horn(const Cnf& f) {
  for (const Clause& c : f.clauses()) {
    std::size_t negatives = 0;
    for (Lit l : c)
      if (l.negated()) ++negatives;
    if (negatives > 1) return false;
  }
  return true;
}

std::optional<std::vector<bool>> hidden_horn_renaming(const Cnf& f) {
  // Renaming variable r_v == true means "complement v". After renaming,
  // literal l is positive iff (l positive) xor flip(l.var()). Horn-ness
  // demands every clause keep at most one positive literal: for every
  // pair (l1, l2) in a clause, not both positive after renaming:
  //   (posAfter(l1) -> ~posAfter(l2)),
  // where posAfter(pos x) == ~r_x and posAfter(neg x) == r_x — a 2-SAT
  // constraint (~p1 ∨ ~p2) over renaming literals.
  TwoSat two_sat(f.num_vars());
  auto pos_after = [](Lit l) {
    // The renaming literal that is TRUE exactly when l is positive after
    // renaming.
    return l.negated() ? pos(l.var()) : neg(l.var());
  };
  for (const Clause& c : f.clauses()) {
    for (std::size_t i = 0; i < c.size(); ++i)
      for (std::size_t j = i + 1; j < c.size(); ++j) {
        if (c[i].var() == c[j].var()) continue;
        two_sat.add_or(~pos_after(c[i]), ~pos_after(c[j]));
      }
  }
  return two_sat.solve();
}

QHorn q_horn(const Cnf& f, std::size_t max_vars) {
  if (f.num_vars() > max_vars)
    throw std::invalid_argument("q_horn: instance exceeds max_vars");
  const std::size_t n = f.num_vars();
  std::vector<std::vector<double>> a;
  std::vector<double> b;
  a.reserve(f.num_clauses());
  b.reserve(f.num_clauses());
  for (const Clause& c : f.clauses()) {
    std::vector<double> row(n, 0.0);
    double rhs = 1.0;
    for (Lit l : c) {
      if (l.negated()) {
        row[l.var()] -= 1.0;
        rhs -= 1.0;
      } else {
        row[l.var()] += 1.0;
      }
    }
    a.push_back(std::move(row));
    b.push_back(rhs);
  }
  QHorn result;
  if (auto x = lp_feasible(a, b, std::vector<double>(n, 1.0))) {
    result.is_qhorn = true;
    result.alpha = std::move(*x);
  }
  return result;
}

ClassReport classify(const Cnf& f, std::size_t qhorn_max_vars) {
  ClassReport report;
  report.horn = is_horn(f);
  report.reverse_horn = is_reverse_horn(f);
  report.two_sat = is_2sat(f);
  report.hidden_horn = hidden_horn_renaming(f).has_value();
  if (f.num_vars() <= qhorn_max_vars) {
    report.qhorn_checked = true;
    report.qhorn = q_horn(f, qhorn_max_vars).is_qhorn;
  }
  return report;
}

std::string to_string(const ClassReport& r) {
  std::string s;
  auto append = [&s](const char* name) {
    if (!s.empty()) s += ",";
    s += name;
  };
  if (r.horn) append("horn");
  if (r.reverse_horn) append("rev-horn");
  if (r.two_sat) append("2sat");
  if (r.hidden_horn) append("hidden-horn");
  if (r.qhorn_checked && r.qhorn) append("q-horn");
  if (!r.qhorn_checked) append("q-horn?");
  return s.empty() ? "none" : s;
}

}  // namespace cwatpg::sat
