// Conflict-driven clause-learning SAT solver.
//
// This is the production solver behind the TEGUS-style ATPG engine
// (src/fault/tegus) and the Figure 1 experiment. The paper models SAT
// solvers abstractly by Algorithm 1 (see cache_sat.hpp); this class is the
// *practical* counterpart — the CAD-literature solvers it cites ([23]
// GRASP, [24] TEGUS) "provide some feature to reduce conflicts during
// backtracking", which here is 1UIP clause learning.
//
// Feature set: two-watched-literal propagation, first-UIP conflict
// analysis, VSIDS-style decision activities, phase saving, Luby restarts.
// No clause deletion (ATPG-SAT instances are small and easy; learnt sets
// stay tiny).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sat/cnf.hpp"
#include "util/budget.hpp"

namespace cwatpg::sat {

enum class SolveStatus : std::uint8_t { kSat, kUnsat, kUnknown };

struct SolverStats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t learnt_clauses = 0;
  std::uint64_t learnt_literals = 0;
  std::uint64_t restarts = 0;
  /// Implications whose reason clause was learnt by an EARLIER solve()
  /// call on the same Solver — the incremental engine's clause-reuse
  /// signal. Always 0 for a one-shot solver (there is no earlier call),
  /// so per-fault stats are unaffected by the field's existence.
  std::uint64_t reused_implications = 0;
  /// Why the last solve() returned kUnknown (kNone after kSat/kUnsat):
  /// conflict cap vs. propagation cap vs. deadline vs. cancellation.
  /// "Gave up" and "proven" are different results; this says which one
  /// happened and why — the escalation ladder keys off it.
  StopReason stop_reason = StopReason::kNone;

  /// Aggregation across solves (per-worker rollups, RunReports): counters
  /// add; stop_reason keeps the most recent firing — `other`'s reason wins
  /// when it is not kNone, so a rollup remembers that *some* solve in the
  /// batch was cut short (the per-reason breakdown belongs in a histogram,
  /// not here).
  SolverStats& operator+=(const SolverStats& other) {
    decisions += other.decisions;
    propagations += other.propagations;
    conflicts += other.conflicts;
    learnt_clauses += other.learnt_clauses;
    learnt_literals += other.learnt_literals;
    restarts += other.restarts;
    reused_implications += other.reused_implications;
    if (other.stop_reason != StopReason::kNone)
      stop_reason = other.stop_reason;
    return *this;
  }

  bool operator==(const SolverStats&) const = default;
};

struct SolverConfig {
  /// Abort with kUnknown after this many conflicts in one solve() call.
  /// The cap is per-call: an incremental solver that has already spent
  /// conflicts on earlier queries still gets the full cap on the next one
  /// (identical to the old cumulative reading for one-shot solvers).
  std::uint64_t max_conflicts = std::uint64_t(-1);
  /// VSIDS decay applied per conflict.
  double activity_decay = 0.95;
  /// Conflicts per Luby restart unit.
  std::uint64_t restart_unit = 64;
  /// Optional external resource budget (deadline, hard effort caps,
  /// cooperative cancellation). Not owned; must outlive every solve()
  /// call. The solver honors min(max_conflicts, budget->max_conflicts)
  /// and polls the asynchronous conditions (deadline, cancel) every
  /// budget_poll_interval propagations, so solve() returns kUnknown
  /// promptly — within one poll interval — when the budget fires.
  /// Polling never influences the search itself: with a budget that never
  /// fires, results are bit-identical to running without one.
  const Budget* budget = nullptr;
  /// Propagations between polls of budget deadline/cancellation. Smaller
  /// values abort more promptly at slightly more clock-read overhead.
  std::uint64_t budget_poll_interval = 1024;
};

// Thread-safe: per-instance. A Solver owns all of its mutable state (no
// globals, no statics, no shared caches), so distinct instances may run
// concurrently on distinct threads — this is the contract the fault-
// parallel ATPG engine relies on, one private Solver per in-flight fault.
// A single instance is NOT internally synchronized: never call solve()/
// model()/stats() on the same instance from two threads at once. The input
// Cnf is only read during construction and need not outlive the Solver.
// Determinism: solve() is a pure function of (cnf, config, call history) —
// no timing, addresses, or randomness feed the search — so concurrent and
// serial runs return bit-identical models and stats.
class Solver {
 public:
  explicit Solver(const Cnf& cnf, SolverConfig config = {});

  /// Solves the instance. Repeat calls re-run the search from the root
  /// (learnt clauses are kept, so a second call is cheap).
  SolveStatus solve() { return solve({}); }

  /// Solves under assumptions (MiniSat-style): each assumption is placed
  /// as a decision before the free search begins. kUnsat then means
  /// "unsatisfiable under these assumptions" — unless the instance is
  /// globally UNSAT, a later call with different assumptions may be kSat.
  /// Learnt clauses are consequences of the clause database alone, so
  /// they persist soundly across calls; this is what makes repeated
  /// queries against one encoding cheap (incremental SAT). Conflict and
  /// propagation caps apply per call, and query_stats() reports the
  /// call's own effort — for a fresh solver's single call both reduce to
  /// the cumulative behavior, bit for bit.
  SolveStatus solve(std::span<const Lit> assumptions);

  /// Model after a kSat result: value per variable. Variables that were
  /// never constrained get `false`.
  const std::vector<bool>& model() const { return model_; }

  const SolverStats& stats() const { return stats_; }

  /// Stats of the most recent solve() call alone (cumulative deltas since
  /// its entry, stop_reason included). What the incremental engine
  /// attributes to each fault; for a fresh solver's first call it equals
  /// stats().
  SolverStats query_stats() const {
    SolverStats d;
    d.decisions = stats_.decisions - query_base_.decisions;
    d.propagations = stats_.propagations - query_base_.propagations;
    d.conflicts = stats_.conflicts - query_base_.conflicts;
    d.learnt_clauses = stats_.learnt_clauses - query_base_.learnt_clauses;
    d.learnt_literals = stats_.learnt_literals - query_base_.learnt_literals;
    d.restarts = stats_.restarts - query_base_.restarts;
    d.reused_implications =
        stats_.reused_implications - query_base_.reused_implications;
    d.stop_reason = stats_.stop_reason;
    return d;
  }

  /// Adjusts the conflict cap for subsequent solve() calls. The cap is
  /// per-call (see solve()), so an incremental caller can retry one hard
  /// query with a grown cap without rebuilding the solver.
  void set_max_conflicts(std::uint64_t cap) { config_.max_conflicts = cap; }

  /// The Luby restart sequence, 0-indexed: 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8…
  /// Public because it is a pure function worth pinning in tests: the
  /// original subtractive implementation underflowed on subsequence
  /// boundaries (first at i == 3) and could spin forever.
  static std::uint64_t luby(std::uint64_t i);

 private:
  // Truth values use 0 = false, 1 = true, 2 = unassigned.
  static constexpr std::uint8_t kFalse = 0, kTrue = 1, kUndef = 2;
  static constexpr std::uint32_t kNoReason = static_cast<std::uint32_t>(-1);

  struct Watcher {
    std::uint32_t clause = 0;
    Lit blocker;
  };

  std::uint8_t value(Lit l) const {
    const std::uint8_t v = assign_[l.var()];
    return v == kUndef ? kUndef : static_cast<std::uint8_t>(v ^ (l.negated() ? 1 : 0));
  }
  std::uint32_t level(Var v) const { return level_[v]; }

  bool enqueue(Lit l, std::uint32_t reason);
  std::uint32_t propagate();  // returns conflicting clause index or kNoReason
  void analyze(std::uint32_t conflict, Clause& learnt,
               std::uint32_t& backtrack_level);
  void backtrack_to(std::uint32_t target_level);
  void bump(Var v);
  void attach(std::uint32_t clause_index);
  std::uint32_t add_internal_clause(Clause c);

  // Indexed max-heap over activity_ for decision picking.
  void heap_swap(std::size_t a, std::size_t b);
  void heap_up(std::size_t i);
  void heap_down(std::size_t i);
  void heap_insert(Var v);
  Var heap_pop();
  static constexpr std::size_t kNotInHeap = static_cast<std::size_t>(-1);

  SolverConfig config_;
  std::vector<Clause> clauses_;
  std::vector<std::vector<Watcher>> watches_;  // indexed by Lit::code()
  std::vector<std::uint8_t> assign_;
  std::vector<std::uint32_t> level_;
  std::vector<std::uint32_t> reason_;
  std::vector<Lit> trail_;
  std::vector<std::uint32_t> trail_limits_;
  std::size_t propagate_head_ = 0;

  std::vector<double> activity_;
  double activity_increment_ = 1.0;
  std::vector<bool> polarity_;  // saved phases
  std::vector<std::uint8_t> seen_;
  std::vector<Var> heap_;
  std::vector<std::size_t> heap_pos_;

  std::vector<bool> model_;
  SolverStats stats_;
  /// Snapshot of stats_ at the current solve()'s entry: query_stats()
  /// subtracts it, and the conflict/propagation caps compare against the
  /// delta so every call gets a full budget of its own.
  SolverStats query_base_;
  /// clauses_.size() after construction / at the current solve()'s entry.
  /// A propagation whose reason index lies in [num_problem_clauses_,
  /// query_begin_clauses_) was driven by a clause learnt on an earlier
  /// call — that is the reused_implications counting rule.
  std::size_t num_problem_clauses_ = 0;
  std::size_t query_begin_clauses_ = 0;
  bool root_conflict_ = false;
};

/// One-shot convenience wrapper.
/// Thread-safe: yes; builds a private Solver per call.
struct SolveResult {
  SolveStatus status = SolveStatus::kUnknown;
  std::vector<bool> model;
  SolverStats stats;
};
SolveResult solve_cnf(const Cnf& cnf, SolverConfig config = {});

}  // namespace cwatpg::sat
