#include "sat/average_case.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

namespace cwatpg::sat {

InstanceParams measure_params(const Cnf& f) {
  InstanceParams params;
  params.v = f.num_vars();
  params.t = f.num_clauses();
  params.mean_length =
      params.t == 0 ? 0.0
                    : static_cast<double>(f.num_literals()) /
                          static_cast<double>(params.t);
  params.p = params.v == 0
                 ? 0.0
                 : params.mean_length / (2.0 * static_cast<double>(params.v));
  return params;
}

namespace {

/// Shared log-sum-exp evaluation of sum_i 2^i * (1 - q_i)^t given a
/// callable producing q_i (probability one clause is emptied at level i).
template <typename QFn>
double log2_tree_expectation(std::size_t v, std::size_t t, QFn q_at) {
  double max_term = -1e300;
  std::vector<double> terms;
  terms.reserve(v + 1);
  for (std::size_t i = 0; i <= v; ++i) {
    const double q = q_at(i);
    const double ln_survive =
        q >= 1.0 ? -1e300 : (q < 1e-14 ? -q : std::log1p(-q));
    const double log2_term =
        static_cast<double>(i) +
        static_cast<double>(t) * ln_survive / std::numbers::ln2;
    terms.push_back(log2_term);
    max_term = std::max(max_term, log2_term);
  }
  if (max_term <= -1e299) return 0.0;
  double sum = 0.0;
  for (double term : terms) sum += std::exp2(term - max_term);
  return max_term + std::log2(sum);
}

}  // namespace

double log2_expected_nodes(std::size_t v, std::size_t t, double p) {
  if (v == 0) return 0.0;
  p = std::clamp(p, 1e-12, 1.0 - 1e-12);
  const double log1mp = std::log1p(-p);
  return log2_tree_expectation(v, t, [&](std::size_t i) {
    // q_i = (1-p)^(2v-i): the clause contains only falsified literals
    // (possibly none at all — the model permits empty clauses).
    return std::exp(static_cast<double>(2 * v - i) * log1mp);
  });
}

double log2_expected_nodes_nonempty(std::size_t v, std::size_t t, double p) {
  if (v == 0) return 0.0;
  p = std::clamp(p, 1e-12, 1.0 - 1e-12);
  const double log1mp = std::log1p(-p);
  const double p_nonempty =
      -std::expm1(static_cast<double>(2 * v) * log1mp);  // 1-(1-p)^(2v)
  return log2_tree_expectation(v, t, [&](std::size_t i) {
    // q_i = P(emptied | non-empty) =
    //   (1-p)^(2v-i) * (1 - (1-p)^i) / (1 - (1-p)^(2v)).
    const double subset =
        std::exp(static_cast<double>(2 * v - i) * log1mp);
    const double some_literal =
        -std::expm1(static_cast<double>(i) * log1mp);
    return p_nonempty <= 0 ? 0.0 : subset * some_literal / p_nonempty;
  });
}

double log2_expected_nodes_nonempty(const InstanceParams& params) {
  return log2_expected_nodes_nonempty(params.v, params.t, params.p);
}

double log2_expected_nodes(const InstanceParams& params) {
  return log2_expected_nodes(params.v, params.t, params.p);
}

double average_case_degree(const InstanceParams& params, double factor) {
  if (params.v == 0 || factor <= 1.0) return 0.0;
  const double base = log2_expected_nodes(params);
  const auto scaled_v =
      static_cast<std::size_t>(static_cast<double>(params.v) * factor);
  const auto scaled_t =
      static_cast<std::size_t>(static_cast<double>(params.t) * factor);
  // Mean clause length fixed => p scales as 1/v.
  const double scaled_p =
      params.mean_length / (2.0 * static_cast<double>(scaled_v));
  const double scaled = log2_expected_nodes(scaled_v, scaled_t, scaled_p);
  return (scaled - base) / std::log2(factor);
}

}  // namespace cwatpg::sat
