// Static global implications (the TEGUS preprocessing of §4.1).
//
// "Most popular backtracking based algorithms ... provide some feature to
// reduce conflicts during backtracking. This may be in the form of a
// pre-processed set of global implications [TEGUS] or ... conflict-induced
// clauses [GRASP]." Algorithm 1's cache models the effect; this module
// implements the TEGUS half literally, so the bench can compare all three
// mechanisms on the same instances:
//   * for every literal l, unit-propagate {l}: each implied literal m that
//     is not a direct consequence of an existing binary clause yields the
//     learned binary clause (~l ∨ m);
//   * a propagation conflict proves the *failed literal* l, adding the
//     unit clause (~l).
#pragma once

#include <cstdint>

#include "sat/cnf.hpp"

namespace cwatpg::sat {

struct ImplicationStats {
  std::size_t literals_tested = 0;
  std::size_t failed_literals = 0;   ///< units learned
  std::size_t binaries_added = 0;    ///< (~l ∨ m) clauses learned
  bool proved_unsat = false;         ///< both l and ~l failed for some v
};

struct ImplicationConfig {
  /// Stop after learning this many clauses (guards quadratic blowup).
  std::size_t max_learned = 100'000;
  /// Skip implications already expressible by one existing binary clause.
  bool skip_direct = true;
};

/// Returns `f` augmented with the learned units/binaries; `stats_out`
/// (optional) receives the accounting. The result is equisatisfiable with
/// (in fact logically equivalent to) `f`.
Cnf add_static_implications(const Cnf& f,
                            ImplicationStats* stats_out = nullptr,
                            const ImplicationConfig& config = {});

/// Plain unit propagation on a clause list from the given assumptions.
/// Returns false on conflict; `implied_out` receives the implied literals
/// (assumptions excluded) in propagation order.
bool unit_propagate(const Cnf& f, std::span<const Lit> assumptions,
                    std::vector<Lit>& implied_out);

}  // namespace cwatpg::sat
