#include "sat/solver.hpp"

#include <algorithm>
#include <cmath>
#include <new>
#include <stdexcept>

#include "util/failpoint.hpp"

namespace cwatpg::sat {

// ---------------------------------------------------------------------------
// Indexed max-heap over variable activities (decision ordering).

void Solver::heap_swap(std::size_t a, std::size_t b) {
  std::swap(heap_[a], heap_[b]);
  heap_pos_[heap_[a]] = a;
  heap_pos_[heap_[b]] = b;
}

void Solver::heap_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (activity_[heap_[parent]] >= activity_[heap_[i]]) break;
    heap_swap(parent, i);
    i = parent;
  }
}

void Solver::heap_down(std::size_t i) {
  for (;;) {
    const std::size_t l = 2 * i + 1;
    const std::size_t r = 2 * i + 2;
    std::size_t best = i;
    if (l < heap_.size() && activity_[heap_[l]] > activity_[heap_[best]])
      best = l;
    if (r < heap_.size() && activity_[heap_[r]] > activity_[heap_[best]])
      best = r;
    if (best == i) break;
    heap_swap(i, best);
    i = best;
  }
}

void Solver::heap_insert(Var v) {
  if (heap_pos_[v] != kNotInHeap) return;
  heap_pos_[v] = heap_.size();
  heap_.push_back(v);
  heap_up(heap_.size() - 1);
}

Var Solver::heap_pop() {
  const Var top = heap_[0];
  heap_swap(0, heap_.size() - 1);
  heap_.pop_back();
  heap_pos_[top] = kNotInHeap;
  if (!heap_.empty()) heap_down(0);
  return top;
}

// ---------------------------------------------------------------------------

Solver::Solver(const Cnf& cnf, SolverConfig config) : config_(config) {
  const Var n = cnf.num_vars();
  watches_.resize(static_cast<std::size_t>(n) * 2);
  assign_.assign(n, kUndef);
  level_.assign(n, 0);
  reason_.assign(n, kNoReason);
  activity_.assign(n, 0.0);
  polarity_.assign(n, false);
  seen_.assign(n, 0);
  model_.assign(n, false);
  heap_pos_.assign(n, kNotInHeap);
  heap_.reserve(n);
  for (Var v = 0; v < n; ++v) heap_insert(v);

  for (const Clause& c : cnf.clauses()) {
    // Strip root-falsified literals; drop root-satisfied clauses. (Units
    // may already be on the trail from earlier clauses.)
    Clause reduced;
    bool satisfied = false;
    for (Lit l : c) {
      const std::uint8_t v = value(l);
      if (v == kTrue) {
        satisfied = true;
        break;
      }
      if (v == kUndef) reduced.push_back(l);
    }
    if (satisfied) continue;
    if (reduced.empty()) {
      root_conflict_ = true;
      return;
    }
    if (reduced.size() == 1) {
      if (!enqueue(reduced[0], kNoReason) || propagate() != kNoReason) {
        root_conflict_ = true;
        return;
      }
      continue;
    }
    add_internal_clause(std::move(reduced));
  }
  num_problem_clauses_ = clauses_.size();
  query_begin_clauses_ = clauses_.size();
}

std::uint32_t Solver::add_internal_clause(Clause c) {
  const auto index = static_cast<std::uint32_t>(clauses_.size());
  clauses_.push_back(std::move(c));
  attach(index);
  return index;
}

void Solver::attach(std::uint32_t clause_index) {
  const Clause& c = clauses_[clause_index];
  watches_[(~c[0]).code()].push_back({clause_index, c[1]});
  watches_[(~c[1]).code()].push_back({clause_index, c[0]});
}

bool Solver::enqueue(Lit l, std::uint32_t reason) {
  const std::uint8_t v = value(l);
  if (v != kUndef) return v == kTrue;
  // An implication driven by a clause learnt on an EARLIER solve() call
  // is reused knowledge — the incremental engine's payoff signal. The
  // range is empty for a one-shot solver, so this never fires there.
  if (reason != kNoReason && reason >= num_problem_clauses_ &&
      reason < query_begin_clauses_)
    ++stats_.reused_implications;
  assign_[l.var()] = l.negated() ? kFalse : kTrue;
  level_[l.var()] = static_cast<std::uint32_t>(trail_limits_.size());
  reason_[l.var()] = reason;
  trail_.push_back(l);
  return true;
}

std::uint32_t Solver::propagate() {
  while (propagate_head_ < trail_.size()) {
    const Lit p = trail_[propagate_head_++];
    ++stats_.propagations;
    auto& watch_list = watches_[p.code()];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < watch_list.size(); ++i) {
      const Watcher w = watch_list[i];
      if (value(w.blocker) == kTrue) {
        watch_list[keep++] = w;
        continue;
      }
      Clause& c = clauses_[w.clause];
      const Lit not_p = ~p;
      // Invariant: while a clause is some variable's reason, its implied
      // literal sits in slot 0 and is true, so this swap (which requires
      // c[0] false) never disturbs a locked reason clause.
      if (c[0] == not_p) std::swap(c[0], c[1]);
      if (value(c[0]) == kTrue) {
        watch_list[keep++] = {w.clause, c[0]};
        continue;
      }
      bool moved = false;
      for (std::size_t k = 2; k < c.size(); ++k) {
        if (value(c[k]) != kFalse) {
          std::swap(c[1], c[k]);
          watches_[(~c[1]).code()].push_back({w.clause, c[0]});
          moved = true;
          break;
        }
      }
      if (moved) continue;
      watch_list[keep++] = {w.clause, c[0]};
      if (value(c[0]) == kFalse) {
        for (std::size_t j = i + 1; j < watch_list.size(); ++j)
          watch_list[keep++] = watch_list[j];
        watch_list.resize(keep);
        propagate_head_ = trail_.size();
        return w.clause;
      }
      enqueue(c[0], w.clause);
    }
    watch_list.resize(keep);
  }
  return kNoReason;
}

void Solver::bump(Var v) {
  activity_[v] += activity_increment_;
  if (activity_[v] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    activity_increment_ *= 1e-100;
    // Rebuild heap order under the rescaled activities (order unchanged by
    // uniform scaling, so positions remain valid).
  }
  if (heap_pos_[v] != kNotInHeap) heap_up(heap_pos_[v]);
}

void Solver::analyze(std::uint32_t conflict, Clause& learnt,
                     std::uint32_t& backtrack_level) {
  learnt.clear();
  learnt.push_back(Lit());  // slot 0 reserved for the asserting literal
  const auto current_level = static_cast<std::uint32_t>(trail_limits_.size());
  std::uint32_t counter = 0;
  std::size_t trail_index = trail_.size();
  Lit p;
  bool have_p = false;
  std::uint32_t clause_index = conflict;

  for (;;) {
    const Clause& c = clauses_[clause_index];
    // For reason clauses the implied literal is c[0] (see propagate);
    // skip it when expanding a reason.
    for (std::size_t k = (have_p ? 1 : 0); k < c.size(); ++k) {
      const Lit q = c[k];
      if (seen_[q.var()] || level(q.var()) == 0) continue;
      seen_[q.var()] = 1;
      bump(q.var());
      if (level(q.var()) >= current_level) {
        ++counter;
      } else {
        learnt.push_back(q);
      }
    }
    do {
      --trail_index;
      p = trail_[trail_index];
    } while (!seen_[p.var()]);
    have_p = true;
    seen_[p.var()] = 0;
    --counter;
    if (counter == 0) break;
    clause_index = reason_[p.var()];
  }
  learnt[0] = ~p;

  // Local clause minimization: a non-asserting literal is redundant when
  // every other literal of its reason clause is level-0 or already marked.
  std::vector<Lit> marked(learnt.begin() + 1, learnt.end());
  auto redundant = [&](Lit q) {
    const std::uint32_t r = reason_[q.var()];
    if (r == kNoReason) return false;
    for (Lit x : clauses_[r]) {
      if (x.var() == q.var()) continue;
      if (level(x.var()) == 0 || seen_[x.var()]) continue;
      return false;
    }
    return true;
  };
  std::size_t keep = 1;
  for (std::size_t i = 1; i < learnt.size(); ++i)
    if (!redundant(learnt[i])) learnt[keep++] = learnt[i];
  learnt.resize(keep);
  for (Lit q : marked) seen_[q.var()] = 0;

  backtrack_level = 0;
  std::size_t max_index = 1;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    if (level(learnt[i].var()) > backtrack_level) {
      backtrack_level = level(learnt[i].var());
      max_index = i;
    }
  }
  if (learnt.size() > 1) std::swap(learnt[1], learnt[max_index]);
}

void Solver::backtrack_to(std::uint32_t target_level) {
  if (trail_limits_.size() <= target_level) return;
  const std::uint32_t boundary = trail_limits_[target_level];
  for (std::size_t i = trail_.size(); i-- > boundary;) {
    const Var v = trail_[i].var();
    polarity_[v] = assign_[v] == kTrue;
    assign_[v] = kUndef;
    reason_[v] = kNoReason;
    heap_insert(v);
  }
  trail_.resize(boundary);
  trail_limits_.resize(target_level);
  propagate_head_ = trail_.size();
}

std::uint64_t Solver::luby(std::uint64_t i) {
  // Knuth-style descent: find the smallest complete binary subsequence
  // (of length 2^(seq+1) - 1) containing index i, then recurse into the
  // copy i falls in via modulo. The naive subtractive variant underflows
  // whenever i lands exactly on a subsequence boundary during descent
  // (first at i == 3), so the remainder MUST be taken modulo the child
  // size, not by subtraction.
  std::uint64_t size = 1, seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) / 2;
    --seq;
    i %= size;
  }
  return 1ULL << seq;
}

SolveStatus Solver::solve(std::span<const Lit> assumptions) {
  // Failpoint: a solve that cannot allocate its working state. Thrown
  // here, before any search mutates clause or trail state, so the solver
  // object stays reusable and callers see a clean bad_alloc — the engines
  // (and the service's `internal` error path) must absorb it.
  if (CWATPG_FAILPOINT("sat.solver.alloc")) throw std::bad_alloc();
  stats_.stop_reason = StopReason::kNone;
  // Per-call baselines: effort caps and query_stats() measure from here.
  query_base_ = stats_;
  query_begin_clauses_ = clauses_.size();
  if (root_conflict_) return SolveStatus::kUnsat;
  for (Lit a : assumptions)
    if (a.var() >= assign_.size())
      throw std::invalid_argument("solve: assumption variable out of range");

  // Budget plumbing: the conflict cap is the tighter of the config's and
  // the budget's; deadline/cancellation are polled every
  // budget_poll_interval propagations (an atomic load + one clock read, so
  // the poll is invisible to the search unless it fires).
  const Budget* budget = config_.budget;
  std::uint64_t conflict_cap = config_.max_conflicts;
  if (budget != nullptr && budget->max_conflicts < conflict_cap)
    conflict_cap = budget->max_conflicts;
  std::uint64_t next_poll = Budget::kUnlimited;
  if (budget != nullptr) {
    const StopReason r = budget->poll();
    if (r != StopReason::kNone) {
      stats_.stop_reason = r;
      return SolveStatus::kUnknown;
    }
    next_poll = stats_.propagations + config_.budget_poll_interval;
  }

  backtrack_to(0);
  if (propagate() != kNoReason) {
    root_conflict_ = true;
    return SolveStatus::kUnsat;
  }

  std::uint64_t conflicts_until_restart =
      config_.restart_unit * luby(stats_.restarts);
  Clause learnt;

  // The poll trigger watches loop iterations as well as propagations:
  // propagations can stall (e.g. a long restart phase re-deciding saved
  // phases), and a deadline must still fire while the search treads water.
  std::uint64_t iterations = 0;
  std::uint64_t next_poll_iteration = config_.budget_poll_interval;
  for (;;) {
    ++iterations;
    if (budget != nullptr && (stats_.propagations >= next_poll ||
                              iterations >= next_poll_iteration)) {
      next_poll = stats_.propagations + config_.budget_poll_interval;
      next_poll_iteration = iterations + config_.budget_poll_interval;
      if (stats_.propagations - query_base_.propagations >=
          budget->max_propagations) {
        stats_.stop_reason = StopReason::kPropagationLimit;
        return SolveStatus::kUnknown;
      }
      const StopReason r = budget->poll();
      if (r != StopReason::kNone) {
        stats_.stop_reason = r;
        return SolveStatus::kUnknown;
      }
      // Failpoint: spurious budget expiry — the solve gives up as if its
      // deadline passed even though it did not. Exercises every caller's
      // undetermined/escalation handling without waiting on a clock.
      if (CWATPG_FAILPOINT("sat.solver.spurious_budget")) {
        stats_.stop_reason = StopReason::kDeadline;
        return SolveStatus::kUnknown;
      }
    }
    const std::uint32_t conflict = propagate();
    if (conflict != kNoReason) {
      ++stats_.conflicts;
      if (trail_limits_.empty()) {
        root_conflict_ = true;
        return SolveStatus::kUnsat;
      }
      if (stats_.conflicts - query_base_.conflicts >= conflict_cap) {
        stats_.stop_reason = StopReason::kConflictLimit;
        return SolveStatus::kUnknown;
      }

      std::uint32_t backtrack_level = 0;
      analyze(conflict, learnt, backtrack_level);
      backtrack_to(backtrack_level);
      if (learnt.size() == 1) {
        enqueue(learnt[0], kNoReason);
      } else {
        const std::uint32_t ci = add_internal_clause(learnt);
        ++stats_.learnt_clauses;
        stats_.learnt_literals += learnt.size();
        enqueue(learnt[0], ci);
      }
      activity_increment_ /= config_.activity_decay;
      if (conflicts_until_restart > 0) --conflicts_until_restart;
      continue;
    }

    if (conflicts_until_restart == 0 &&
        trail_limits_.size() > assumptions.size()) {
      ++stats_.restarts;
      conflicts_until_restart = config_.restart_unit * luby(stats_.restarts);
      // Keep the assumption levels; restart the free search only.
      backtrack_to(static_cast<std::uint32_t>(assumptions.size()));
      continue;
    }

    // Place pending assumptions as decisions.
    if (trail_limits_.size() < assumptions.size()) {
      const Lit a = assumptions[trail_limits_.size()];
      const std::uint8_t v = value(a);
      if (v == kFalse) return SolveStatus::kUnsat;  // under assumptions
      trail_limits_.push_back(static_cast<std::uint32_t>(trail_.size()));
      if (v == kUndef) enqueue(a, kNoReason);
      continue;
    }

    // Pick the unassigned variable of highest activity.
    Var decision_var = kNullVar;
    while (!heap_.empty()) {
      const Var v = heap_pop();
      if (assign_[v] == kUndef) {
        decision_var = v;
        break;
      }
    }
    if (decision_var == kNullVar) {
      for (Var v = 0; v < assign_.size(); ++v)
        model_[v] = assign_[v] == kTrue;
      return SolveStatus::kSat;
    }
    ++stats_.decisions;
    trail_limits_.push_back(static_cast<std::uint32_t>(trail_.size()));
    enqueue(Lit(decision_var, !polarity_[decision_var]), kNoReason);
  }
}

SolveResult solve_cnf(const Cnf& cnf, SolverConfig config) {
  Solver solver(cnf, config);
  SolveResult result;
  result.status = solver.solve();
  result.model = solver.model();
  result.stats = solver.stats();
  return result;
}

}  // namespace cwatpg::sat
