// CNF formula representation (§2 of the paper).
//
// A formula is a set of clauses; a clause a set of literals; a literal a
// variable or its complement. Variables are dense 0-based indices — for
// formulas built by sat::encode_circuit_sat, variable v *is* network NodeId
// v, which is what lets circuit orderings (cut-width orderings, Lemma 4.2
// transfers) be used directly as SAT variable orderings.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace cwatpg::sat {

using Var = std::uint32_t;
inline constexpr Var kNullVar = static_cast<Var>(-1);

/// Literal: variable with sign, encoded as 2*var + (negated ? 1 : 0).
class Lit {
 public:
  constexpr Lit() = default;
  constexpr Lit(Var var, bool negated)
      : code_(var * 2 + (negated ? 1u : 0u)) {}

  constexpr Var var() const { return code_ / 2; }
  constexpr bool negated() const { return (code_ & 1u) != 0; }
  constexpr Lit operator~() const { return from_code(code_ ^ 1u); }
  constexpr std::uint32_t code() const { return code_; }

  friend constexpr bool operator==(Lit a, Lit b) = default;
  friend constexpr auto operator<=>(Lit a, Lit b) = default;

  static constexpr Lit from_code(std::uint32_t code) {
    Lit l;
    l.code_ = code;
    return l;
  }

 private:
  std::uint32_t code_ = 0;
};

/// Positive literal of v.
constexpr Lit pos(Var v) { return Lit(v, false); }
/// Negative literal of v.
constexpr Lit neg(Var v) { return Lit(v, true); }

using Clause = std::vector<Lit>;

/// CNF formula. Clauses are stored in insertion order; semantic identity is
/// as a set (the cache-based solver canonicalizes where needed).
class Cnf {
 public:
  Cnf() = default;
  explicit Cnf(Var num_vars) : num_vars_(num_vars) {}

  Var num_vars() const { return num_vars_; }
  std::size_t num_clauses() const { return clauses_.size(); }
  std::span<const Clause> clauses() const { return clauses_; }
  const Clause& clause(std::size_t i) const { return clauses_[i]; }

  /// Ensures variables up to v exist.
  void grow_to(Var v) {
    if (v >= num_vars_) num_vars_ = v + 1;
  }
  /// Allocates and returns a fresh variable.
  Var new_var() { return num_vars_++; }

  /// Adds a clause; deduplicates repeated literals, drops tautologies
  /// (x ∨ ¬x). Returns false if the clause was a tautology (not added).
  /// Throws std::invalid_argument on out-of-range variables or an empty
  /// clause (an empty clause makes the formula trivially UNSAT — callers
  /// encode that state explicitly instead).
  bool add_clause(Clause clause);

  /// Evaluates the formula under a complete assignment.
  bool eval(const std::vector<bool>& assignment) const;

  /// Total literal count across clauses.
  std::size_t num_literals() const;

  /// DIMACS-style rendering for debugging and golden tests.
  std::string to_dimacs() const;

 private:
  Var num_vars_ = 0;
  std::vector<Clause> clauses_;
};

}  // namespace cwatpg::sat
