// Polynomial-time SAT class recognizers (§3.1).
//
// The paper examines whether ATPG-SAT instances land in one of the known
// tractable CNF classes — Horn, reverse Horn, 2-SAT, hidden (renamable)
// Horn, and the q-Horn superclass of Boros–Crama–Hammer — and exhibits
// circuits whose ATPG-SAT formulas are not even q-Horn, ruling this
// approach out as an explanation. These recognizers let the bench
// (bench_sat_classes) regenerate that argument on live instances.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sat/cnf.hpp"

namespace cwatpg::sat {

/// Every clause has at most one positive literal.
bool is_horn(const Cnf& f);

/// Every clause has at most one negative literal.
bool is_reverse_horn(const Cnf& f);

/// Hidden (renamable) Horn: a set of variables can be complemented so the
/// formula becomes Horn. Returns the renaming (flip[v] == true) or nullopt.
/// Linear-time via the classic 2-SAT reduction (Lewis 1978).
std::optional<std::vector<bool>> hidden_horn_renaming(const Cnf& f);

/// q-Horn (Boros–Crama–Hammer): there is a in [0,1]^n with, for every
/// clause, sum_{x in C} a_x + sum_{~x in C} (1-a_x) <= 1. Subsumes Horn
/// (a=0), reverse Horn (a=1), 2-SAT (a=1/2) and hidden Horn.
struct QHorn {
  bool is_qhorn = false;
  /// Witness valuation when is_qhorn (the LP's feasible point).
  std::vector<double> alpha;
};
/// Decides membership by LP feasibility (dense simplex). Intended for
/// instances up to a few hundred variables; throws std::invalid_argument
/// beyond `max_vars` to protect against accidental O(n^2 m) blowups.
QHorn q_horn(const Cnf& f, std::size_t max_vars = 400);

/// Summary used by the bench: which classes a formula belongs to.
struct ClassReport {
  bool horn = false;
  bool reverse_horn = false;
  bool two_sat = false;
  bool hidden_horn = false;
  bool qhorn = false;
  bool qhorn_checked = false;  ///< false when the formula exceeded max_vars
};
ClassReport classify(const Cnf& f, std::size_t qhorn_max_vars = 400);

/// Human-readable one-liner ("horn,hidden-horn,q-horn" or "none").
std::string to_string(const ClassReport& report);

}  // namespace cwatpg::sat
