#include "sat/dimacs.hpp"

#include <istream>
#include <sstream>

namespace cwatpg::sat {

Cnf read_dimacs(std::istream& in) {
  std::string line;
  std::size_t lineno = 0;
  bool have_header = false;
  long declared_vars = 0, declared_clauses = 0;
  Cnf cnf;
  Clause current;
  std::size_t clauses_read = 0;

  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (line[0] == 'c' || line[0] == '%') continue;
    std::istringstream ss(line);
    if (line[0] == 'p') {
      if (have_header)
        throw DimacsError(lineno, "duplicate header '" + line + "'");
      std::string p, fmt;
      ss >> p >> fmt >> declared_vars >> declared_clauses;
      if (!ss || fmt != "cnf" || declared_vars < 0 || declared_clauses < 0)
        throw DimacsError(lineno, "malformed header '" + line +
                                      "' (expected 'p cnf <vars> <clauses>')");
      have_header = true;
      cnf = Cnf(static_cast<Var>(declared_vars));
      continue;
    }
    if (!have_header) {
      std::string first;
      ss >> first;
      throw DimacsError(lineno, "token '" + first +
                                    "' before the 'p cnf' header");
    }
    long literal;
    while (ss >> literal) {
      if (literal == 0) {
        if (current.empty())
          throw DimacsError(lineno, "empty clause (a bare '0')");
        cnf.add_clause(current);  // may drop tautologies
        current.clear();
        ++clauses_read;
        continue;
      }
      const long magnitude = literal < 0 ? -literal : literal;
      if (magnitude > declared_vars)
        throw DimacsError(lineno,
                          "literal " + std::to_string(literal) +
                              " out of range (header declares " +
                              std::to_string(declared_vars) + " vars)");
      current.push_back(
          Lit(static_cast<Var>(magnitude - 1), literal < 0));
    }
    if (!ss.eof() && ss.fail()) {
      // Non-numeric garbage on a clause line.
      std::string word;
      ss.clear();
      ss >> word;
      if (!word.empty())
        throw DimacsError(lineno, "unexpected token '" + word +
                                      "' (expected a literal or 0)");
    }
  }
  if (!have_header) throw DimacsError(lineno, "missing 'p cnf' header");
  if (!current.empty())
    throw DimacsError(lineno,
                      "unterminated clause (missing 0 after literal " +
                          std::to_string(current.back().negated()
                                             ? -long(current.back().var()) - 1
                                             : long(current.back().var()) + 1) +
                          ")");
  if (clauses_read != static_cast<std::size_t>(declared_clauses))
    throw DimacsError(lineno, "clause count mismatch: header says " +
                                  std::to_string(declared_clauses) +
                                  ", file has " +
                                  std::to_string(clauses_read));
  return cnf;
}

Cnf read_dimacs_string(const std::string& text) {
  std::istringstream ss(text);
  return read_dimacs(ss);
}

}  // namespace cwatpg::sat
