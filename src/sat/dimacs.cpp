#include "sat/dimacs.hpp"

#include <istream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace cwatpg::sat {

namespace {

/// Plausibility cap on `p cnf <vars> <clauses>`: a header demanding more
/// variables than any real instance carries is hostile or corrupt input,
/// and honoring it would turn a parse into a giant allocation. Also keeps
/// the count safely inside Var's 32-bit range.
constexpr long kMaxDeclaredVars = 100'000'000;

}  // namespace

Cnf read_dimacs(std::istream& in) {
  std::string line;
  std::size_t lineno = 0;
  bool have_header = false;
  long declared_vars = 0, declared_clauses = 0;
  Cnf cnf;
  Clause current;
  std::size_t clauses_read = 0;

  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (line[0] == 'c' || line[0] == '%') continue;
    std::istringstream ss(line);
    if (line[0] == 'p') {
      if (have_header)
        throw DimacsError(lineno, "duplicate header '" + line + "'");
      std::string p, fmt;
      ss >> p >> fmt >> declared_vars >> declared_clauses;
      if (!ss || fmt != "cnf" || declared_vars < 0 || declared_clauses < 0)
        throw DimacsError(lineno, "malformed header '" + line +
                                      "' (expected 'p cnf <vars> <clauses>')");
      if (declared_vars > kMaxDeclaredVars)
        throw DimacsError(lineno,
                          "header declares " + std::to_string(declared_vars) +
                              " variables, above the supported cap (" +
                              std::to_string(kMaxDeclaredVars) + ")");
      have_header = true;
      cnf = Cnf(static_cast<Var>(declared_vars));
      continue;
    }
    if (!have_header) {
      std::string first;
      ss >> first;
      throw DimacsError(lineno, "token '" + first +
                                    "' before the 'p cnf' header");
    }
    // Tokenize and convert by hand: istream's `>> long` consumes an
    // overflowing numeral and poisons the stream, which can let a
    // garbage tail slip through silently. stol reports overflow as a
    // line-numbered error instead.
    std::string token;
    while (ss >> token) {
      long literal = 0;
      try {
        std::size_t used = 0;
        literal = std::stol(token, &used);
        if (used != token.size())
          throw std::invalid_argument("trailing characters");
      } catch (const std::exception&) {
        throw DimacsError(lineno, "unexpected token '" + token +
                                      "' (expected a literal or 0)");
      }
      if (literal == 0) {
        if (current.empty())
          throw DimacsError(lineno, "empty clause (a bare '0')");
        cnf.add_clause(current);  // may drop tautologies
        current.clear();
        ++clauses_read;
        continue;
      }
      const long magnitude = literal < 0 ? -literal : literal;
      if (magnitude > declared_vars)
        throw DimacsError(lineno,
                          "literal " + std::to_string(literal) +
                              " out of range (header declares " +
                              std::to_string(declared_vars) + " vars)");
      current.push_back(
          Lit(static_cast<Var>(magnitude - 1), literal < 0));
    }
  }
  // End-of-input diagnostics: an empty file has read zero lines, but the
  // error contract is 1-based line numbers.
  const std::size_t eof_line = lineno == 0 ? 1 : lineno;
  if (!have_header) throw DimacsError(eof_line, "missing 'p cnf' header");
  if (!current.empty())
    throw DimacsError(eof_line,
                      "unterminated clause (missing 0 after literal " +
                          std::to_string(current.back().negated()
                                             ? -long(current.back().var()) - 1
                                             : long(current.back().var()) + 1) +
                          ")");
  if (clauses_read != static_cast<std::size_t>(declared_clauses))
    throw DimacsError(eof_line, "clause count mismatch: header says " +
                                    std::to_string(declared_clauses) +
                                    ", file has " +
                                    std::to_string(clauses_read));
  return cnf;
}

Cnf read_dimacs_string(const std::string& text) {
  std::istringstream ss(text);
  return read_dimacs(ss);
}

}  // namespace cwatpg::sat
