// Algorithm 1 of the paper: caching-based simple backtracking for SAT.
//
// Simple backtracking over a *fixed static variable order* h, except that
// whenever the search backtracks out of an unsatisfiable sub-formula, the
// sub-formula (the residual clause set) is cached; before expanding any
// node the residual is looked up and, if present, the branch is pruned
// without further work (§4.1, Figure 5).
//
// Sub-formula identity follows the paper exactly: a sub-formula is the set
// of not-yet-satisfied clauses, each reduced to its unassigned literals
// (footnote 2: no functional equivalence, set equality only). Residuals are
// fingerprinted with an incrementally maintained 64-bit commutative hash;
// `verify_exact` additionally stores canonical forms and compares them on
// every hit, so hash collisions can be detected (none are expected — the
// test suite runs both modes).
//
// Soundness of the cache at any depth: satisfiability of a clause set does
// not depend on which prefix assignment produced it, so "this residual was
// UNSAT once" is a valid proof of UNSAT wherever the same residual recurs.
//
// The solver doubles as the measurement instrument for Theorem 4.1: the
// number of Cache_Sat invocations is the size of the backtracking tree,
// which the theorem bounds by O(n * 2^(2*k_fo*W(C,h))).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sat/cnf.hpp"
#include "sat/solver.hpp"

namespace cwatpg::sat {

struct CacheSatConfig {
  /// Disable to obtain plain "simple backtracking" (the ablation baseline).
  bool use_cache = true;
  /// Count the distinct consistent sub-formulas (DCSFs) per assignment
  /// level — the quantity Lemma 4.1 bounds by 2^(2*k_fo*cut). Adds one
  /// hash-set insert per tree node.
  bool track_dcsf = false;
  /// Store canonical residuals and compare exactly on every hash hit.
  bool verify_exact = false;
  /// Abort with kUnknown after this many backtracking-tree nodes.
  std::uint64_t max_nodes = std::uint64_t(-1);
  /// Stop a branch as SAT as soon as every clause is satisfied (rather than
  /// assigning the remaining variables). Matches practical backtracking;
  /// turn off to model the textbook full-assignment tree.
  bool early_sat = true;
};

struct CacheSatStats {
  std::uint64_t nodes = 0;        ///< Cache_Sat calls == backtracking-tree size
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_insertions = 0;
  std::uint64_t null_prunes = 0;  ///< branches cut by an empty (NULL) clause
  std::uint64_t max_depth = 0;
  std::uint64_t hash_collisions = 0;  ///< only counted with verify_exact
  /// With track_dcsf: dcsf_per_level[i] = number of distinct consistent
  /// sub-formulas observed after assigning order[0..i] (per Lemma 4.1,
  /// bounded by 2^(2*k_fo*cut_i)).
  std::vector<std::uint64_t> dcsf_per_level;
};

struct CacheSatResult {
  SolveStatus status = SolveStatus::kUnknown;
  std::vector<bool> model;  ///< complete assignment when kSat
  CacheSatStats stats;
};

/// Runs Algorithm 1 on `f` with static variable order `order`.
/// `order` must be a permutation of 0..f.num_vars()-1 (every variable
/// appears exactly once); throws std::invalid_argument otherwise.
CacheSatResult cache_sat(const Cnf& f, std::span<const Var> order,
                         CacheSatConfig config = {});

/// Identity order 0..n-1 (for encodings where variable == NodeId this is
/// the circuit's construction/topological order).
std::vector<Var> identity_order(const Cnf& f);

}  // namespace cwatpg::sat
