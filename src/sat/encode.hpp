// CIRCUIT-SAT encoding (Figure 2 + the output clause of §2).
//
// f(C) has one variable per signal net; we allocate one variable per
// network node (variable v == NodeId v — kOutput markers get a variable
// constrained equal to their fanin, matching the hypergraph view where
// outputs are nodes). Each gate contributes the characteristic clauses of
// Figure 2; finally one clause asserts that at least one primary output
// is 1.
#pragma once

#include "netlist/network.hpp"
#include "sat/cnf.hpp"

namespace cwatpg::sat {

/// Clauses for one gate: output variable `z`, fanin variables `ins`.
/// Supports AND/NAND/OR/NOR/NOT/BUF of any arity and 2-input XOR/XNOR
/// (wider XORs must be decomposed first; throws std::invalid_argument).
void add_gate_clauses(Cnf& cnf, net::GateType type, Var z,
                      std::span<const Var> ins);

/// Encodes CIRCUIT-SAT(C): all gate clauses, unit clauses for constants,
/// equality clauses for kOutput markers, plus the clause (o1 ∨ … ∨ op).
/// Throws std::invalid_argument if the circuit has no primary output.
Cnf encode_circuit_sat(const net::Network& net);

/// Gate clauses only — no output clause. Used when the caller adds its own
/// objective (e.g. a specific output forced to a value).
Cnf encode_constraints(const net::Network& net);

}  // namespace cwatpg::sat
