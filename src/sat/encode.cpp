#include "sat/encode.hpp"

#include <stdexcept>

namespace cwatpg::sat {

void add_gate_clauses(Cnf& cnf, net::GateType type, Var z,
                      std::span<const Var> ins) {
  using net::GateType;
  switch (type) {
    case GateType::kBuf: {
      cnf.add_clause({pos(ins[0]), neg(z)});
      cnf.add_clause({neg(ins[0]), pos(z)});
      return;
    }
    case GateType::kNot: {
      cnf.add_clause({pos(ins[0]), pos(z)});
      cnf.add_clause({neg(ins[0]), neg(z)});
      return;
    }
    case GateType::kAnd:
    case GateType::kNand: {
      const Lit zt = type == GateType::kAnd ? pos(z) : neg(z);
      // Each input low forces output "false"; all inputs high force "true".
      Clause all;
      for (Var a : ins) {
        cnf.add_clause({pos(a), ~zt});
        all.push_back(neg(a));
      }
      all.push_back(zt);
      cnf.add_clause(std::move(all));
      return;
    }
    case GateType::kOr:
    case GateType::kNor: {
      const Lit zt = type == GateType::kOr ? pos(z) : neg(z);
      Clause all;
      for (Var a : ins) {
        cnf.add_clause({neg(a), zt});
        all.push_back(pos(a));
      }
      all.push_back(~zt);
      cnf.add_clause(std::move(all));
      return;
    }
    case GateType::kXor:
    case GateType::kXnor: {
      if (ins.size() != 2)
        throw std::invalid_argument(
            "add_gate_clauses: XOR/XNOR must be 2-input (decompose first)");
      const bool inv = type == GateType::kXnor;
      const Var a = ins[0];
      const Var b = ins[1];
      const Lit zp = inv ? neg(z) : pos(z);
      cnf.add_clause({neg(a), neg(b), ~zp});
      cnf.add_clause({pos(a), pos(b), ~zp});
      cnf.add_clause({neg(a), pos(b), zp});
      cnf.add_clause({pos(a), neg(b), zp});
      return;
    }
    default:
      throw std::invalid_argument(
          "add_gate_clauses: type has no gate function");
  }
}

Cnf encode_constraints(const net::Network& netw) {
  Cnf cnf(static_cast<Var>(netw.node_count()));
  std::vector<Var> ins;
  for (net::NodeId id = 0; id < netw.node_count(); ++id) {
    const auto& n = netw.node(id);
    switch (n.type) {
      case net::GateType::kInput:
        break;  // free variable
      case net::GateType::kConst0:
        cnf.add_clause({neg(id)});
        break;
      case net::GateType::kConst1:
        cnf.add_clause({pos(id)});
        break;
      case net::GateType::kOutput:
        add_gate_clauses(cnf, net::GateType::kBuf, id, {{n.fanins[0]}});
        break;
      default: {
        ins.assign(n.fanins.begin(), n.fanins.end());
        add_gate_clauses(cnf, n.type, id, ins);
        break;
      }
    }
  }
  return cnf;
}

Cnf encode_circuit_sat(const net::Network& netw) {
  if (netw.outputs().empty())
    throw std::invalid_argument("encode_circuit_sat: circuit has no outputs");
  Cnf cnf = encode_constraints(netw);
  Clause objective;
  for (net::NodeId po : netw.outputs()) objective.push_back(pos(po));
  cnf.add_clause(std::move(objective));
  return cnf;
}

}  // namespace cwatpg::sat
