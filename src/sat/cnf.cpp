#include "sat/cnf.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace cwatpg::sat {

bool Cnf::add_clause(Clause clause) {
  if (clause.empty())
    throw std::invalid_argument("Cnf::add_clause: empty clause");
  std::sort(clause.begin(), clause.end());
  clause.erase(std::unique(clause.begin(), clause.end()), clause.end());
  for (std::size_t i = 0; i + 1 < clause.size(); ++i)
    if (clause[i].var() == clause[i + 1].var()) return false;  // tautology
  if (clause.back().var() >= num_vars_)
    throw std::invalid_argument("Cnf::add_clause: variable out of range");
  clauses_.push_back(std::move(clause));
  return true;
}

bool Cnf::eval(const std::vector<bool>& assignment) const {
  if (assignment.size() < num_vars_)
    throw std::invalid_argument("Cnf::eval: assignment too short");
  for (const Clause& c : clauses_) {
    bool sat = false;
    for (Lit l : c) {
      if (assignment[l.var()] != l.negated()) {
        sat = true;
        break;
      }
    }
    if (!sat) return false;
  }
  return true;
}

std::size_t Cnf::num_literals() const {
  std::size_t n = 0;
  for (const Clause& c : clauses_) n += c.size();
  return n;
}

std::string Cnf::to_dimacs() const {
  std::ostringstream os;
  os << "p cnf " << num_vars_ << ' ' << clauses_.size() << '\n';
  for (const Clause& c : clauses_) {
    for (Lit l : c)
      os << (l.negated() ? -static_cast<long>(l.var()) - 1
                         : static_cast<long>(l.var()) + 1)
         << ' ';
    os << "0\n";
  }
  return os.str();
}

}  // namespace cwatpg::sat
