#include "sat/twosat.hpp"

#include <algorithm>
#include <stdexcept>

namespace cwatpg::sat {

TwoSat::TwoSat(Var num_vars) : num_vars_(num_vars) {
  implications_.resize(static_cast<std::size_t>(num_vars) * 2);
}

void TwoSat::add_or(Lit a, Lit b) {
  if (a.var() >= num_vars_ || b.var() >= num_vars_)
    throw std::invalid_argument("TwoSat: variable out of range");
  implications_[(~a).code()].push_back(b.code());
  implications_[(~b).code()].push_back(a.code());
}

namespace {

/// Iterative Tarjan SCC over the implication graph.
class Tarjan {
 public:
  explicit Tarjan(const std::vector<std::vector<std::uint32_t>>& graph)
      : graph_(graph),
        index_(graph.size(), kUnvisited),
        lowlink_(graph.size(), 0),
        on_stack_(graph.size(), false),
        component_(graph.size(), kUnvisited) {}

  void run() {
    for (std::uint32_t v = 0; v < graph_.size(); ++v)
      if (index_[v] == kUnvisited) strongconnect(v);
  }

  /// Component ids are assigned in reverse topological order: an SCC gets
  /// a *smaller* id than the SCCs it can reach.
  std::uint32_t component(std::uint32_t v) const { return component_[v]; }

 private:
  static constexpr std::uint32_t kUnvisited = static_cast<std::uint32_t>(-1);

  void strongconnect(std::uint32_t root) {
    struct Frame {
      std::uint32_t vertex;
      std::size_t next_edge;
    };
    std::vector<Frame> call_stack{{root, 0}};
    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      const std::uint32_t v = frame.vertex;
      if (frame.next_edge == 0) {
        index_[v] = lowlink_[v] = counter_++;
        scc_stack_.push_back(v);
        on_stack_[v] = true;
      }
      bool descended = false;
      while (frame.next_edge < graph_[v].size()) {
        const std::uint32_t w = graph_[v][frame.next_edge++];
        if (index_[w] == kUnvisited) {
          call_stack.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack_[w]) lowlink_[v] = std::min(lowlink_[v], index_[w]);
      }
      if (descended) continue;
      if (lowlink_[v] == index_[v]) {
        std::uint32_t w;
        do {
          w = scc_stack_.back();
          scc_stack_.pop_back();
          on_stack_[w] = false;
          component_[w] = num_components_;
        } while (w != v);
        ++num_components_;
      }
      call_stack.pop_back();
      if (!call_stack.empty()) {
        const std::uint32_t parent = call_stack.back().vertex;
        lowlink_[parent] = std::min(lowlink_[parent], lowlink_[v]);
      }
    }
  }

  const std::vector<std::vector<std::uint32_t>>& graph_;
  std::vector<std::uint32_t> index_, lowlink_;
  std::vector<bool> on_stack_;
  std::vector<std::uint32_t> component_;
  std::vector<std::uint32_t> scc_stack_;
  std::uint32_t counter_ = 0;
  std::uint32_t num_components_ = 0;
};

}  // namespace

std::optional<std::vector<bool>> TwoSat::solve() const {
  Tarjan tarjan(implications_);
  tarjan.run();
  std::vector<bool> model(num_vars_);
  for (Var v = 0; v < num_vars_; ++v) {
    const std::uint32_t pos_comp = tarjan.component(pos(v).code());
    const std::uint32_t neg_comp = tarjan.component(neg(v).code());
    if (pos_comp == neg_comp) return std::nullopt;
    // Tarjan finalizes reachable SCCs first, so reachable SCCs have
    // smaller ids; satisfying the literal with the smaller component id
    // respects every implication (if ~x -> x then comp(x) < comp(~x)).
    model[v] = pos_comp < neg_comp;
  }
  return model;
}

bool is_2sat(const Cnf& f) {
  for (const Clause& c : f.clauses())
    if (c.size() > 2) return false;
  return true;
}

std::optional<std::vector<bool>> solve_2sat(const Cnf& f) {
  if (!is_2sat(f))
    throw std::invalid_argument("solve_2sat: clause with > 2 literals");
  TwoSat solver(f.num_vars());
  for (const Clause& c : f.clauses()) {
    if (c.size() == 1)
      solver.add_unit(c[0]);
    else
      solver.add_or(c[0], c[1]);
  }
  return solver.solve();
}

}  // namespace cwatpg::sat
