// DIMACS CNF reader (the writer is Cnf::to_dimacs).
//
// Interop with external SAT tooling: ATPG-SAT instances exported by this
// library can be fed to any solver, and external benchmark formulas can be
// run through Algorithm 1 / the CDCL solver / the class recognizers.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "sat/cnf.hpp"

namespace cwatpg::sat {

/// Error with 1-based line context.
class DimacsError : public std::runtime_error {
 public:
  DimacsError(std::size_t line, const std::string& what)
      : std::runtime_error("dimacs line " + std::to_string(line) + ": " +
                           what),
        line_(line) {}
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// Parses DIMACS CNF: optional 'c' comment lines, one 'p cnf V C' header,
/// then clauses as 0-terminated literal lists (free-form whitespace,
/// clauses may span lines). Tautological clauses are dropped (matching
/// Cnf::add_clause); an empty clause or a literal out of range raises
/// DimacsError, as does a clause count mismatch. Every error message
/// carries the 1-based line number and the offending token, so malformed
/// external CNF files fail with an actionable diagnosis.
Cnf read_dimacs(std::istream& in);

/// Convenience overload for string literals.
Cnf read_dimacs_string(const std::string& text);

}  // namespace cwatpg::sat
