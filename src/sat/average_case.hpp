// Purdom–Brown average-time analysis of backtracking (§3.3).
//
// Purdom and Brown model random CNF by (v, t, p): t clauses over v
// variables, each of the 2v literals joining a clause independently with
// probability p. For *simple backtracking* the expected number of
// consistent nodes at level i has a closed form — a partial assignment of
// i variables falsifies a random clause entirely with probability
// (1-p)^(2v-i) (every literal must be absent or falsified, and exactly the
// i assigned variables' falsified literals are "allowed"):
//
//     E[nodes] = sum_{i=0..v} 2^i * (1 - (1-p)^(2v-i))^t .
//
// Mapping a concrete ATPG-SAT instance into the model via its measured
// (v, t, mean clause length => p = len/(2v)) and evaluating how E[nodes]
// scales as the instance family grows reproduces the paper's §3.3
// argument: the parameters of ATPG-SAT formulas land in a regime that is
// polynomial on average — while the paper cautions (and the bench prints)
// that this covers the *class*, not the ATPG subset, so it only suggests
// easiness.
#pragma once

#include <cstddef>

#include "sat/cnf.hpp"

namespace cwatpg::sat {

/// The random-clause model parameters of a concrete formula.
struct InstanceParams {
  std::size_t v = 0;       ///< variables
  std::size_t t = 0;       ///< clauses
  double mean_length = 0;  ///< average literals per clause
  double p = 0;            ///< implied literal probability len/(2v)
};

InstanceParams measure_params(const Cnf& f);

/// log2 of the Purdom–Brown expected backtracking-tree size for (v, t, p).
/// Computed stably in log space.
double log2_expected_nodes(std::size_t v, std::size_t t, double p);
double log2_expected_nodes(const InstanceParams& params);

/// Same expectation with every clause conditioned on being non-empty
/// (real encodings never emit empty clauses, so this variant mirrors
/// structured instances more closely; the unconditioned model is dominated
/// by trivially-UNSAT formulas at ATPG-like parameters).
double log2_expected_nodes_nonempty(std::size_t v, std::size_t t, double p);
double log2_expected_nodes_nonempty(const InstanceParams& params);

/// Empirical polynomial degree of the family through (v, t, p): scales the
/// instance by `factor` in v and t (holding mean clause length fixed, so
/// p shrinks as 1/v — the shape circuit-derived families follow) and
/// returns d such that E[nodes] ~ v^d, i.e.
///     d = (log2E(scaled) - log2E(base)) / log2(factor).
/// Small d (and not growing with factor) is the §3.3 "polynomial average
/// time" indication.
double average_case_degree(const InstanceParams& params, double factor = 4.0);

}  // namespace cwatpg::sat
