#include "net/listener.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace cwatpg::netio {

Listener::Listener(const std::string& host, std::uint16_t port,
                   int backlog) {
  ::addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  ::addrinfo* res = nullptr;
  const std::string port_str = std::to_string(port);
  if (const int rc = ::getaddrinfo(host.c_str(), port_str.c_str(), &hints,
                                   &res);
      rc != 0)
    throw std::runtime_error("cannot resolve " + host + ": " +
                             ::gai_strerror(rc));

  std::string last_error = "no addresses";
  for (::addrinfo* ai = res; ai != nullptr && fd_ < 0; ai = ai->ai_next) {
    const int s = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (s < 0) {
      last_error = std::string("socket: ") + std::strerror(errno);
      continue;
    }
    const int one = 1;
    ::setsockopt(s, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(s, ai->ai_addr, ai->ai_addrlen) != 0 ||
        ::listen(s, backlog) != 0) {
      last_error = std::string("bind/listen: ") + std::strerror(errno);
      ::close(s);
      continue;
    }
    fd_ = s;
  }
  ::freeaddrinfo(res);
  if (fd_ < 0)
    throw std::runtime_error("cannot listen on " + host + ":" + port_str +
                             " (" + last_error + ")");

  // Nonblocking listen fd: the event loop polls it alongside connections;
  // a spurious wakeup (peer reset between poll and accept) must not wedge
  // the whole loop in accept(2).
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  ::fcntl(fd_, F_SETFD, FD_CLOEXEC);

  // Report the port the kernel actually bound (meaningful for port 0).
  ::sockaddr_storage addr{};
  ::socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<::sockaddr*>(&addr), &len) == 0) {
    if (addr.ss_family == AF_INET)
      port_ = ntohs(reinterpret_cast<::sockaddr_in*>(&addr)->sin_port);
    else if (addr.ss_family == AF_INET6)
      port_ = ntohs(reinterpret_cast<::sockaddr_in6*>(&addr)->sin6_port);
  }
  if (port_ == 0) port_ = port;
}

Listener::~Listener() {
  if (fd_ >= 0) ::close(fd_);
}

int Listener::accept_connection() {
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      // Accepted fds are blocking on purpose: SocketTransport (the
      // single-client paths) wants blocking semantics, and NetServer
      // flips its own connections to nonblocking itself.
      const int flags = ::fcntl(fd, F_GETFL, 0);
      ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
      ::fcntl(fd, F_SETFD, FD_CLOEXEC);
      return fd;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED)
      return -1;
    throw std::runtime_error(std::string("accept failed: ") +
                             std::strerror(errno));
  }
}

int Listener::accept_one_blocking() {
  for (;;) {
    const int fd = accept_connection();
    if (fd >= 0) return fd;
    ::pollfd pfd{fd_, POLLIN, 0};
    while (::poll(&pfd, 1, -1) < 0 && errno == EINTR) {
    }
  }
}

}  // namespace cwatpg::netio
