// TCP listening socket: bind/listen plus nonblocking accept.
//
// Deliberately small — the interesting state machine (connection
// multiplexing) lives in NetServer; the Listener owns exactly the
// listening fd, reports the port the kernel actually bound (so tests and
// smoke scripts can ask for ":0" and read the ephemeral port back), and
// hands out accepted fds.
//
// Thread-safe: NO — one owner (the NetServer event loop or a
// single-client accept helper).
#pragma once

#include <cstdint>
#include <string>

namespace cwatpg::netio {

class Listener {
 public:
  /// Binds and listens on host:port (SO_REUSEADDR; port 0 = ephemeral).
  /// Throws std::runtime_error on resolve/bind/listen failure.
  Listener(const std::string& host, std::uint16_t port, int backlog = 64);
  ~Listener();

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// The bound port — the kernel's pick when constructed with port 0.
  std::uint16_t port() const { return port_; }
  int fd() const { return fd_; }

  /// Accepts one pending connection; the returned fd is blocking and
  /// close-on-exec. Returns -1 when none is pending (the listening fd is
  /// nonblocking — poll it for readability first). Throws
  /// std::runtime_error on a hard accept failure.
  int accept_connection();

  /// Accepts one connection, blocking until a peer arrives (poll +
  /// accept). The single-client convenience used by `--listen` front ends
  /// that serve exactly one session (cwatpg_cluster).
  int accept_one_blocking();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace cwatpg::netio
