// POSIX TCP building blocks for the cwatpg.rpc/1 serving stack.
//
// SocketTransport is a svc::Transport over one connected stream socket —
// the same frame contract the stdio, in-memory and fd transports obey, so
// the client, server, cluster coordinator, failpoints and journal all work
// across a network boundary unchanged. It is the BLOCKING side of the net
// layer: the svc::Client in a coordinator, a remote worker attachment, or
// a test harness owns the socket and reads frames synchronously (with an
// optional per-read timeout). The nonblocking, many-connection side lives
// in net_server.hpp.
//
// Thread-safe: write() from any thread (mutex-serialized, frames atomic);
// read() single-consumer — the svc::Transport contract.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "svc/supervisor.hpp"
#include "svc/transport.hpp"

namespace cwatpg::netio {

/// Splits "host:port" (host may be empty → "0.0.0.0"). Throws
/// std::runtime_error on a missing ':' or an out-of-range port.
void parse_host_port(const std::string& spec, std::string* host,
                     std::uint16_t* port);

/// Dials host:port (numeric or resolvable loopback names) with a bounded
/// connect. `timeout_seconds` <= 0 means the OS default. Returns a
/// connected blocking fd; throws std::runtime_error on failure. TCP_NODELAY
/// is set: frames are latency-bound request/response units, not bulk.
int tcp_connect(const std::string& host, std::uint16_t port,
                double timeout_seconds = 0.0);

/// tcp_connect under the service layer's bounded retry-with-backoff: how
/// `--connect` tolerates a worker daemon that has not finished booting
/// (or is restarting) when the coordinator dials it. Each attempt gets
/// `timeout_seconds`; between attempts the svc::RetryOptions backoff
/// schedule sleeps (seeded jitter, so the schedule is replayable in
/// tests). Throws std::runtime_error carrying the LAST attempt's error
/// once all attempts fail.
int tcp_connect_retry(const std::string& host, std::uint16_t port,
                      double timeout_seconds,
                      const svc::RetryOptions& retry);

/// svc::Transport over a connected socket fd (takes ownership).
///
/// read() delivers whole frames, looping over short reads; a peer that
/// vanishes cleanly (FIN — including a kill -9'd process, whose kernel
/// sends FIN on its behalf) is end-of-stream at a frame boundary and a
/// ProtocolError inside one. close() shuts down the write side so the
/// peer's read() drains in-flight frames and then sees EOF — the same
/// half-close discipline the pipe transports get from ::close.
///
/// Failpoints: `net.read.short` (arg K caps bytes per recv pass, driving
/// the reassembly loop) and `net.conn.reset` (read throws as if the
/// connection were reset) — both count under the caller's fp domain.
class SocketTransport final : public svc::Transport {
 public:
  explicit SocketTransport(int fd);
  ~SocketTransport() override;

  bool read(obs::Json& frame) override;
  void write(const obs::Json& frame) override;
  void close() override;

  /// Bounds each read() at `seconds` (poll-based; 0 disables). A timeout
  /// surfaces as ProtocolError("read timed out…"), which svc::Client
  /// records as a transport error. Always supported: returns true.
  bool set_read_timeout(double seconds) override;

 private:
  /// Blocks (honoring read_timeout_) for up to `max` bytes. Returns 0 on
  /// EOF; throws ProtocolError on error, reset, or timeout.
  std::size_t recv_some(char* dst, std::size_t max);

  int fd_ = -1;
  double read_timeout_seconds_ = 0.0;  ///< single-consumer, like read()
  std::string inbuf_;                  ///< bytes received, not yet framed
  std::size_t inbuf_pos_ = 0;          ///< consumed prefix of inbuf_
  std::mutex write_mutex_;
  bool write_closed_ = false;  ///< guarded by write_mutex_
};

}  // namespace cwatpg::netio
