#include "net/socket.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "svc/proto.hpp"
#include "util/failpoint.hpp"

namespace cwatpg::netio {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

void set_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl(F_GETFL)");
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, want) < 0) throw_errno("fcntl(F_SETFL)");
}

}  // namespace

void parse_host_port(const std::string& spec, std::string* host,
                     std::uint16_t* port) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos)
    throw std::runtime_error("expected host:port, got \"" + spec + "\"");
  const std::string host_part = spec.substr(0, colon);
  const std::string port_part = spec.substr(colon + 1);
  if (port_part.empty() ||
      port_part.find_first_not_of("0123456789") != std::string::npos)
    throw std::runtime_error("bad port in \"" + spec + "\"");
  const unsigned long p = std::stoul(port_part);
  if (p > 65535)
    throw std::runtime_error("port " + port_part + " out of range");
  *host = host_part.empty() ? std::string("0.0.0.0") : host_part;
  *port = static_cast<std::uint16_t>(p);
}

int tcp_connect(const std::string& host, std::uint16_t port,
                double timeout_seconds) {
  ::addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  ::addrinfo* res = nullptr;
  const std::string port_str = std::to_string(port);
  if (const int rc = ::getaddrinfo(host.c_str(), port_str.c_str(), &hints,
                                   &res);
      rc != 0)
    throw std::runtime_error("cannot resolve " + host + ": " +
                             ::gai_strerror(rc));

  std::string last_error = "no addresses";
  int fd = -1;
  for (::addrinfo* ai = res; ai != nullptr && fd < 0; ai = ai->ai_next) {
    const int s = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (s < 0) {
      last_error = std::string("socket: ") + std::strerror(errno);
      continue;
    }
    // Nonblocking connect + poll: the only portable way to bound the
    // three-way handshake (a blocking connect can hang for minutes on a
    // black-holed route, which is exactly what a coordinator dialing a
    // dead worker must not do).
    bool ok = false;
    try {
      if (timeout_seconds > 0) set_nonblocking(s, true);
      if (::connect(s, ai->ai_addr, ai->ai_addrlen) == 0) {
        ok = true;
      } else if (timeout_seconds > 0 && errno == EINPROGRESS) {
        ::pollfd pfd{s, POLLOUT, 0};
        const int timeout_ms =
            static_cast<int>(std::max(1.0, timeout_seconds * 1000.0));
        const int pr = ::poll(&pfd, 1, timeout_ms);
        if (pr > 0) {
          int soerr = 0;
          ::socklen_t len = sizeof(soerr);
          ::getsockopt(s, SOL_SOCKET, SO_ERROR, &soerr, &len);
          if (soerr == 0) {
            ok = true;
          } else {
            last_error = std::string("connect: ") + std::strerror(soerr);
          }
        } else {
          last_error = pr == 0 ? "connect timed out"
                               : std::string("poll: ") + std::strerror(errno);
        }
      } else {
        last_error = std::string("connect: ") + std::strerror(errno);
      }
      if (ok && timeout_seconds > 0) set_nonblocking(s, false);
    } catch (const std::exception& e) {
      last_error = e.what();
      ok = false;
    }
    if (ok) {
      fd = s;
    } else {
      ::close(s);
    }
  }
  ::freeaddrinfo(res);
  if (fd < 0)
    throw std::runtime_error("tcp_connect " + host + ":" + port_str +
                             " failed (" + last_error + ")");
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

int tcp_connect_retry(const std::string& host, std::uint16_t port,
                      double timeout_seconds,
                      const svc::RetryOptions& retry) {
  int fd = -1;
  std::string last_error = "no attempts made";
  const bool ok = svc::retry_with_backoff(retry, [&](std::size_t) {
    try {
      fd = tcp_connect(host, port, timeout_seconds);
      return true;
    } catch (const std::exception& e) {
      last_error = e.what();
      return false;
    }
  });
  if (!ok)
    throw std::runtime_error(
        "tcp_connect " + host + ":" + std::to_string(port) + ": all " +
        std::to_string(std::max<std::size_t>(1, retry.max_attempts)) +
        " attempts failed; last: " + last_error);
  return fd;
}

SocketTransport::SocketTransport(int fd) : fd_(fd) {
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

SocketTransport::~SocketTransport() {
  close();
  if (fd_ >= 0) ::close(fd_);
}

bool SocketTransport::set_read_timeout(double seconds) {
  read_timeout_seconds_ = seconds > 0 ? seconds : 0.0;
  return true;
}

std::size_t SocketTransport::recv_some(char* dst, std::size_t max) {
  // Failpoint: cap one pass at @K bytes so every reassembly path (header
  // split across packets, payload trickling in) is exercised on demand.
  if (const int k = CWATPG_FAILPOINT_ARG("net.read.short"); k >= 0)
    max = std::min<std::size_t>(max,
                                static_cast<std::size_t>(std::max(1, k)));
  if (CWATPG_FAILPOINT("net.conn.reset"))
    throw svc::ProtocolError("connection reset by peer (injected: "
                             "net.conn.reset)");
  for (;;) {
    if (read_timeout_seconds_ > 0) {
      ::pollfd pfd{fd_, POLLIN, 0};
      const int timeout_ms = static_cast<int>(
          std::max(1.0, read_timeout_seconds_ * 1000.0));
      const int pr = ::poll(&pfd, 1, timeout_ms);
      if (pr == 0)
        throw svc::ProtocolError(
            "read timed out after " + std::to_string(read_timeout_seconds_) +
            "s");
      if (pr < 0) {
        if (errno == EINTR) continue;
        throw svc::ProtocolError(std::string("poll failed: ") +
                                 std::strerror(errno));
      }
    }
    const ssize_t n = ::recv(fd_, dst, max, 0);
    if (n > 0) return static_cast<std::size_t>(n);
    if (n == 0) return 0;  // orderly FIN
    if (errno == EINTR) continue;
    throw svc::ProtocolError(std::string("recv failed: ") +
                             std::strerror(errno));
  }
}

bool SocketTransport::read(obs::Json& frame) {
  if (fd_ < 0) return false;
  // One fixed-size refill buffer feeds the incremental header parser and
  // the payload in turn; leftover bytes (the next frame's prefix) stay in
  // inbuf_ between calls. read() is single-consumer, so no lock.
  svc::FrameLengthParser header;
  std::string payload;
  std::size_t payload_filled = 0;
  bool in_payload = false;
  for (;;) {
    while (inbuf_pos_ < inbuf_.size()) {
      if (!in_payload) {
        if (header.feed(inbuf_[inbuf_pos_++])) {
          in_payload = true;
          payload.resize(header.length());
          if (payload.empty()) break;
        }
      } else {
        const std::size_t take = std::min(payload.size() - payload_filled,
                                          inbuf_.size() - inbuf_pos_);
        std::memcpy(payload.data() + payload_filled,
                    inbuf_.data() + inbuf_pos_, take);
        payload_filled += take;
        inbuf_pos_ += take;
        if (payload_filled == payload.size()) break;
      }
    }
    if (in_payload && payload_filled == payload.size()) break;
    // Buffer exhausted mid-frame (or before one): refill.
    inbuf_.resize(64 * 1024);
    inbuf_pos_ = 0;
    const std::size_t n = recv_some(inbuf_.data(), inbuf_.size());
    if (n == 0) {
      inbuf_.clear();
      if (!in_payload && header.digits() == 0)
        return false;  // clean EOF at a frame boundary
      throw svc::ProtocolError("peer closed mid-frame");
    }
    inbuf_.resize(n);
  }
  frame = svc::parse_frame_payload(payload);
  return true;
}

void SocketTransport::write(const obs::Json& frame) {
  const std::string payload = frame.dump();
  const std::string header = std::to_string(payload.size()) + "\n";
  std::lock_guard<std::mutex> lock(write_mutex_);
  if (write_closed_ || fd_ < 0) return;  // closed: drop, per the contract
  for (const std::string* part : {&header, &payload}) {
    std::size_t put = 0;
    while (put < part->size()) {
      const ssize_t w = ::send(fd_, part->data() + put, part->size() - put,
                               MSG_NOSIGNAL);
      if (w >= 0) {
        put += static_cast<std::size_t>(w);
        continue;
      }
      if (errno == EINTR) continue;
      // Peer gone (EPIPE/ECONNRESET): our next read() reports it; a write
      // error here would double the signal, so drop the rest quietly.
      return;
    }
  }
}

void SocketTransport::close() {
  std::lock_guard<std::mutex> lock(write_mutex_);
  if (write_closed_ || fd_ < 0) return;
  write_closed_ = true;
  // Half-close: FIN the write side only. The peer drains buffered frames
  // and sees EOF; our own read() keeps working until the peer closes too.
  ::shutdown(fd_, SHUT_WR);
}

}  // namespace cwatpg::netio
