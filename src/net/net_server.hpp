// NetServer: the poll-driven TCP front end that multiplexes N concurrent
// client connections onto ONE svc::Server.
//
// One thread runs the event loop: accept, per-connection frame
// reassembly (the shared FrameLengthParser), and outbox flushing. Job
// execution stays where it always was — the Server's dispatcher and
// thread pool — and worker threads deliver responses by appending
// serialized frames to the owning connection's bounded outbox and waking
// the loop through a self-pipe. The loop is the only thread that touches
// socket fds, which is what makes connection teardown race-free: once a
// connection dies, its svc session is closed (queued jobs cancelled,
// running budgets fired) and any late terminal is dropped at the session
// table, never written to a dead — possibly reused — fd.
//
// Connection lifecycle (see ARCHITECTURE.md "Network serving"):
//
//   accept ──▶ OPEN ──frame──▶ [svc::Server session]
//     │          │ read EOF / reset / idle timeout / outbox overflow
//     │          ▼
//     │        CLOSED: close_session → cancel jobs, drop late terminals
//     │ at max-connections / net.accept.fail
//     ▼
//   REJECTED: `overloaded` error frame (id 0), flush, close
//
// Backpressure: each connection's outbox is bounded
// (outbox_limit_bytes); a peer that stops reading while responses pile
// up overflows it and is reset — protecting the daemon's memory, exactly
// like queue admission protects its CPU. `shutdown` from any client
// drains the whole daemon: accepting stops, in-flight terminals flush to
// their owners, every shutdown requester gets the final drained
// response, then every connection is flushed and closed.
//
// Observability: net.* metrics land in the svc::Server's registry
// (conns accepted/active/rejected/closed, bytes in/out, outbox
// high-water), so one `status` frame reports the whole stack. Failpoint
// sites: net.accept.fail, net.read.short, net.write.stall,
// net.conn.reset.
//
// Thread-safe: construct, run() and port() from one owner thread;
// stop() may be called from any thread or a signal handler.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/listener.hpp"
#include "svc/server.hpp"

namespace cwatpg::netio {

struct NetServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; read back via port()
  /// Admission cap: connection max_connections+1 is answered with an
  /// `overloaded` error frame (id 0) and closed.
  std::size_t max_connections = 64;
  /// Per-connection outbox byte bound; overflow resets the connection.
  std::size_t outbox_limit_bytes = std::size_t(8) << 20;
  /// Reset a connection with no read/write progress for this long
  /// (0 = never). Long-running jobs count as progress when their
  /// responses flush, so only a truly silent peer is reaped.
  double idle_timeout_seconds = 0.0;
};

class NetServer {
 public:
  /// Binds the listener immediately (so port() is valid before run()).
  NetServer(svc::Server& server, const NetServerOptions& options = {});
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  std::uint16_t port() const { return port_; }

  /// Runs the event loop until a client's `shutdown` completes its drain
  /// or stop() is called. The svc::Server is drained either way; like
  /// Server::serve, a NetServer serves once.
  void run();

  /// Requests loop exit from any thread (async-signal-safe: one atomic
  /// store and one pipe write). Connections are closed without flushing;
  /// the server still drains before run() returns.
  void stop();

 private:
  struct WakePipe;
  struct Outbox;
  class ConnTransport;
  struct Conn;

  void accept_ready();
  void read_ready(Conn& conn);
  void flush_ready(Conn& conn);
  void teardown(Conn& conn, const char* why);
  void begin_drain();
  void finish_drain();

  svc::Server& server_;
  NetServerOptions options_;
  std::unique_ptr<Listener> listener_;  ///< closed when draining begins
  std::uint16_t port_ = 0;
  std::shared_ptr<WakePipe> wake_;
  std::vector<std::unique_ptr<Conn>> conns_;

  std::atomic<bool> stop_requested_{false};
  bool ran_ = false;
  bool draining_ = false;        ///< a shutdown request arrived
  bool drain_done_seen_ = false; ///< responses enqueued, flushing out
  std::shared_ptr<std::atomic<bool>> drain_done_ =
      std::make_shared<std::atomic<bool>>(false);
  std::thread drain_thread_;
  /// (session, request id) of every shutdown requester — each gets the
  /// final drained response.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> shutdown_reqs_;
};

}  // namespace cwatpg::netio
