#include "net/net_server.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <stdexcept>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "svc/proto.hpp"
#include "util/failpoint.hpp"

namespace cwatpg::netio {

namespace {

using Clock = std::chrono::steady_clock;

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// How long a connection marked close-after-flush may sit with an
/// unflushed outbox before it is reset anyway — bounds shutdown against a
/// peer that stops reading.
constexpr double kFlushGraceSeconds = 5.0;

}  // namespace

// Self-pipe: worker threads (and signal handlers, via stop()) wake the
// poll loop by writing one byte to the nonblocking write end.
struct NetServer::WakePipe {
  int fds[2] = {-1, -1};
  WakePipe() {
    if (::pipe(fds) != 0)
      throw std::runtime_error(std::string("pipe failed: ") +
                               std::strerror(errno));
    for (const int fd : fds) {
      set_nonblocking(fd);
      ::fcntl(fd, F_SETFD, FD_CLOEXEC);
    }
  }
  ~WakePipe() {
    ::close(fds[0]);
    ::close(fds[1]);
  }
  void wake() {
    const char b = 'w';
    // A full pipe already guarantees a pending wakeup; EAGAIN is success.
    [[maybe_unused]] const ssize_t n = ::write(fds[1], &b, 1);
  }
  void drain() {
    char buf[256];
    while (::read(fds[0], buf, sizeof buf) > 0) {
    }
  }
};

// The bounded per-connection response buffer. Worker threads append
// serialized frames; only the event loop removes bytes (flush) or closes
// it. An append that would exceed `limit` marks the outbox overflowed
// instead of growing — the loop resets the connection, because a peer
// that is not reading responses has broken the conversation and buffering
// for it without bound would let one slow client exhaust the daemon.
struct NetServer::Outbox {
  std::mutex mutex;
  std::string buf;
  std::size_t limit = 0;
  bool closed = false;      ///< connection torn down; drop appends
  bool overflowed = false;  ///< limit hit; loop will reset the conn
  obs::Gauge* high_water = nullptr;  ///< net.outbox.high_water
};

// The svc::Transport the Server writes session responses through: write()
// serializes the frame into the outbox and wakes the loop. read() is
// never used (inbound frames arrive through the event loop's own
// nonblocking reassembly) and reports end-of-stream.
class NetServer::ConnTransport final : public svc::Transport {
 public:
  ConnTransport(std::shared_ptr<Outbox> outbox,
                std::shared_ptr<WakePipe> wake)
      : outbox_(std::move(outbox)), wake_(std::move(wake)) {}

  bool read(obs::Json&) override { return false; }

  void write(const obs::Json& frame) override {
    const std::string payload = frame.dump();
    const std::string header = std::to_string(payload.size()) + "\n";
    {
      std::lock_guard<std::mutex> lock(outbox_->mutex);
      if (outbox_->closed) return;  // dead connection: drop, per contract
      if (outbox_->buf.size() + header.size() + payload.size() >
          outbox_->limit) {
        outbox_->overflowed = true;
      } else {
        outbox_->buf += header;
        outbox_->buf += payload;
        if (outbox_->high_water)
          outbox_->high_water->max_in(
              static_cast<double>(outbox_->buf.size()));
      }
    }
    wake_->wake();
  }

  void close() override {
    std::lock_guard<std::mutex> lock(outbox_->mutex);
    outbox_->closed = true;
  }

 private:
  std::shared_ptr<Outbox> outbox_;
  std::shared_ptr<WakePipe> wake_;
};

struct NetServer::Conn {
  int fd = -1;
  svc::Server::SessionId session = 0;  ///< 0 = rejected (no svc session)
  std::shared_ptr<Outbox> outbox;
  std::shared_ptr<ConnTransport> transport;

  // Inbound frame reassembly (the loop is the only reader).
  svc::FrameLengthParser header;
  std::string payload;
  std::size_t payload_filled = 0;
  bool in_payload = false;

  bool torn = false;  ///< framing lost: stop reading, flush the error, close
  bool close_after_flush = false;
  Clock::time_point flush_deadline{};  ///< armed with close_after_flush
  Clock::time_point last_activity = Clock::now();
  bool dead = false;  ///< swept at the end of the loop pass
};

NetServer::NetServer(svc::Server& server, const NetServerOptions& options)
    : server_(server),
      options_(options),
      listener_(std::make_unique<Listener>(options.host, options.port)),
      wake_(std::make_shared<WakePipe>()) {
  port_ = listener_->port();
}

NetServer::~NetServer() {
  if (drain_thread_.joinable()) drain_thread_.join();
}

void NetServer::stop() {
  stop_requested_.store(true, std::memory_order_relaxed);
  wake_->wake();
}

void NetServer::begin_drain() {
  if (draining_) return;
  draining_ = true;
  // Release the address immediately: new clients get a connection refusal
  // (a clear, retriable signal) instead of queueing in a backlog no one
  // will ever accept from.
  listener_.reset();
  auto done = drain_done_;
  auto wake = wake_;
  svc::Server* server = &server_;
  drain_thread_ = std::thread([server, done, wake] {
    server->drain();
    done->store(true, std::memory_order_release);
    wake->wake();
  });
}

void NetServer::finish_drain() {
  drain_thread_.join();
  drain_done_seen_ = true;
  // Every shutdown requester gets the final drained response; everyone
  // else just sees their last terminals flush and then EOF.
  for (const auto& [session, id] : shutdown_reqs_) {
    for (auto& conn : conns_) {
      if (!conn->dead && conn->session == session) {
        conn->transport->write(server_.shutdown_response(id));
        break;
      }
    }
  }
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(kFlushGraceSeconds));
  for (auto& conn : conns_) {
    conn->close_after_flush = true;
    conn->flush_deadline = deadline;
  }
}

void NetServer::teardown(Conn& conn, const char* why) {
  if (conn.dead) return;
  conn.dead = true;
  if (conn.session != 0) {
    // Cancels the connection's queued and running jobs and drops any late
    // terminal at the session table — never at this (soon reused) fd.
    server_.close_session(conn.session);
    conn.session = 0;
  }
  {
    std::lock_guard<std::mutex> lock(conn.outbox->mutex);
    conn.outbox->closed = true;
    conn.outbox->buf.clear();
  }
  // Count before closing: close() is what the peer observes (EOF or RST),
  // so counting after it would let a client read the metrics snapshot
  // before the close shows up there.
  server_.metrics().counter(std::string("net.conns.closed.") + why).add();
  server_.metrics().counter("net.conns.closed").add();
  ::close(conn.fd);
  conn.fd = -1;
}

void NetServer::accept_ready() {
  auto& accepted = server_.metrics().counter("net.conns.accepted");
  auto& rejected = server_.metrics().counter("net.conns.rejected");
  auto& hw = server_.metrics().gauge("net.outbox.high_water");
  for (;;) {
    const int fd = listener_ ? listener_->accept_connection() : -1;
    if (fd < 0) break;
    if (CWATPG_FAILPOINT("net.accept.fail")) {
      ::close(fd);
      rejected.add();
      continue;
    }
    set_nonblocking(fd);
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->outbox = std::make_shared<Outbox>();
    conn->outbox->limit = options_.outbox_limit_bytes;
    conn->outbox->high_water = &hw;
    conn->transport = std::make_shared<ConnTransport>(conn->outbox, wake_);

    std::size_t live = 0;
    for (const auto& c : conns_)
      if (!c->dead && !c->close_after_flush) ++live;
    if (live >= options_.max_connections) {
      // Admission control at the socket layer, same shape as the queue's:
      // answer `overloaded` (id 0 — no request to correlate with), flush,
      // close. No svc session exists, so nothing to clean up later.
      conn->transport->write(svc::make_error(
          0, svc::ErrorCode::kOverloaded,
          "connection limit reached (" +
              std::to_string(options_.max_connections) + "); retry later"));
      conn->close_after_flush = true;
      conn->flush_deadline =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(
                                 kFlushGraceSeconds));
      rejected.add();
    } else {
      conn->session = server_.open_session(conn->transport);
      accepted.add();
    }
    conns_.push_back(std::move(conn));
  }
}

void NetServer::read_ready(Conn& conn) {
  if (conn.torn || conn.close_after_flush) return;
  char buf[64 * 1024];
  std::size_t cap = sizeof buf;
  if (const int k = CWATPG_FAILPOINT_ARG("net.read.short"); k >= 0)
    cap = std::min<std::size_t>(cap,
                                static_cast<std::size_t>(std::max(1, k)));
  if (CWATPG_FAILPOINT("net.conn.reset")) {
    teardown(conn, "reset");
    return;
  }
  ssize_t n;
  for (;;) {
    n = ::recv(conn.fd, buf, cap, 0);
    if (n >= 0 || errno != EINTR) break;
  }
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    teardown(conn, "error");
    return;
  }
  if (n == 0) {  // peer FIN: the disconnect that cancels this conn's jobs
    teardown(conn, "eof");
    return;
  }
  server_.metrics().counter("net.bytes.in").add(static_cast<std::uint64_t>(n));
  conn.last_activity = Clock::now();

  // Reassemble frames with the shared header parser. A framing violation
  // poisons the rest of the stream, so it is answered once (`bad_request`,
  // id 0) and the connection is torn down after the error flushes.
  std::size_t i = 0;
  while (i < static_cast<std::size_t>(n)) {
    try {
      if (!conn.in_payload) {
        if (conn.header.feed(buf[i++])) {
          conn.in_payload = true;
          conn.payload.assign(conn.header.length(), '\0');
          conn.payload_filled = 0;
        }
        if (!conn.in_payload || !conn.payload.empty()) continue;
      } else if (conn.payload_filled < conn.payload.size()) {
        const std::size_t take =
            std::min(conn.payload.size() - conn.payload_filled,
                     static_cast<std::size_t>(n) - i);
        std::memcpy(conn.payload.data() + conn.payload_filled, buf + i, take);
        conn.payload_filled += take;
        i += take;
        if (conn.payload_filled < conn.payload.size()) continue;
      }
      // One whole frame.
      const obs::Json frame = svc::parse_frame_payload(conn.payload);
      conn.header.reset();
      conn.in_payload = false;
      conn.payload.clear();
      if (conn.session != 0) {
        if (const auto shutdown_id =
                server_.handle_session_frame(conn.session, frame)) {
          shutdown_reqs_.emplace_back(conn.session, *shutdown_id);
          begin_drain();
        }
      }
    } catch (const svc::ProtocolError& e) {
      conn.transport->write(
          svc::make_error(0, svc::ErrorCode::kBadRequest, e.what()));
      if (conn.session != 0) {
        server_.close_session(conn.session);
        conn.session = 0;
      }
      conn.torn = true;
      conn.close_after_flush = true;
      conn.flush_deadline =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(
                                 kFlushGraceSeconds));
      return;
    }
  }
}

void NetServer::flush_ready(Conn& conn) {
  // Failpoint: pretend the socket buffer is full for one pass, so tests
  // can pile bytes into the outbox and exercise backpressure/overflow.
  if (CWATPG_FAILPOINT("net.write.stall")) return;
  for (;;) {
    std::unique_lock<std::mutex> lock(conn.outbox->mutex);
    if (conn.outbox->buf.empty()) return;
    ssize_t w;
    for (;;) {
      w = ::send(conn.fd, conn.outbox->buf.data(), conn.outbox->buf.size(),
                 MSG_NOSIGNAL);
      if (w >= 0 || errno != EINTR) break;
    }
    if (w < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      lock.unlock();
      teardown(conn, "error");
      return;
    }
    conn.outbox->buf.erase(0, static_cast<std::size_t>(w));
    lock.unlock();
    server_.metrics().counter("net.bytes.out")
        .add(static_cast<std::uint64_t>(w));
    conn.last_activity = Clock::now();
  }
}

void NetServer::run() {
  if (ran_) throw std::logic_error("net::NetServer::run is single-use");
  ran_ = true;
  server_.start();
  fp::DomainScope fp_domain("net.loop");
  auto& active_gauge = server_.metrics().gauge("net.conns.active");

  std::vector<::pollfd> pfds;
  std::vector<Conn*> pfd_conns;  // parallel to pfds[2..]
  while (true) {
    pfds.clear();
    pfd_conns.clear();
    pfds.push_back({wake_->fds[0], POLLIN, 0});
    if (listener_) pfds.push_back({listener_->fd(), POLLIN, 0});
    const std::size_t conns_base = pfds.size();
    for (auto& conn : conns_) {
      if (conn->dead) continue;
      short events = 0;
      if (!conn->torn && !conn->close_after_flush) events |= POLLIN;
      {
        std::lock_guard<std::mutex> lock(conn->outbox->mutex);
        if (!conn->outbox->buf.empty()) events |= POLLOUT;
      }
      pfds.push_back({conn->fd, events, 0});
      pfd_conns.push_back(conn.get());
    }

    // Timed ticks only when a timer could fire; otherwise sleep until a
    // socket or the self-pipe wakes us.
    int timeout_ms = -1;
    if (options_.idle_timeout_seconds > 0 || draining_ || drain_done_seen_)
      timeout_ms = 100;
    const int pr = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (pr < 0 && errno != EINTR)
      throw std::runtime_error(std::string("poll failed: ") +
                               std::strerror(errno));

    if (pfds[0].revents & POLLIN) wake_->drain();
    if (stop_requested_.load(std::memory_order_relaxed)) break;
    if (!drain_done_seen_ && drain_done_->load(std::memory_order_acquire))
      finish_drain();
    if (listener_ && conns_base == 2 && (pfds[1].revents & POLLIN))
      accept_ready();

    for (std::size_t k = 0; k < pfd_conns.size(); ++k) {
      Conn& conn = *pfd_conns[k];
      const short re = pfds[conns_base + k].revents;
      if (conn.dead) continue;
      if (re & (POLLERR | POLLNVAL)) {
        teardown(conn, "error");
        continue;
      }
      if (re & POLLIN) read_ready(conn);
      if (conn.dead) continue;
      if (re & (POLLOUT | POLLIN)) flush_ready(conn);
      if (conn.dead) continue;
      // POLLHUP with no readable data left: the peer is fully gone.
      if ((re & POLLHUP) && !(re & POLLIN)) teardown(conn, "eof");
    }

    // Timers and deferred state, after I/O.
    const auto now = Clock::now();
    for (auto& conn : conns_) {
      if (conn->dead) continue;
      bool overflowed, flushed;
      {
        std::lock_guard<std::mutex> lock(conn->outbox->mutex);
        overflowed = conn->outbox->overflowed;
        flushed = conn->outbox->buf.empty();
      }
      if (overflowed) {
        teardown(*conn, "overflow");
        continue;
      }
      if (conn->close_after_flush) {
        if (flushed)
          teardown(*conn, "flushed");
        else if (now >= conn->flush_deadline)
          teardown(*conn, "flush_timeout");
        continue;
      }
      if (options_.idle_timeout_seconds > 0 &&
          std::chrono::duration<double>(now - conn->last_activity).count() >
              options_.idle_timeout_seconds)
        teardown(*conn, "idle");
    }
    std::erase_if(conns_, [](const auto& c) { return c->dead; });
    active_gauge.set(static_cast<double>(conns_.size()));

    if (drain_done_seen_ && conns_.empty()) return;  // graceful exit
  }

  // stop() path: no flushing — close every connection (cancelling its
  // jobs) so the drain below cannot block on work nobody will read.
  for (auto& conn : conns_) teardown(*conn, "stopped");
  conns_.clear();
  active_gauge.set(0.0);
  listener_.reset();
  if (drain_thread_.joinable())
    drain_thread_.join();
  else
    server_.drain();
}

}  // namespace cwatpg::netio
