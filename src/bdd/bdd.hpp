// Reduced ordered binary decision diagrams (§6).
//
// The paper contrasts its cut-width bound on backtracking trees with the
// Berman/McMillan circuit-width bounds on BDD sizes: both a BDD and a
// backtracking tree represent the Boolean space of the function, but the
// bounds behave differently (single- vs double-exponential in the
// respective widths). This package is a compact ROBDD implementation —
// hash-consed unique table, ITE with memoization, circuit composition —
// sufficient to build output BDDs of mid-size circuits under arbitrary
// input orders and measure their size against the bounds
// (bench_bdd_bounds).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <span>
#include <unordered_map>
#include <vector>

#include "netlist/network.hpp"

namespace cwatpg::bdd {

/// Node reference with complement edges NOT used (plain ROBDD): 0 and 1
/// are the terminal nodes.
using Ref = std::uint32_t;
inline constexpr Ref kFalse = 0;
inline constexpr Ref kTrue = 1;

class Manager {
 public:
  /// `num_vars` decision variables with fixed order: variable 0 is tested
  /// first (topmost).
  explicit Manager(std::uint32_t num_vars, std::size_t node_limit = 5'000'000);

  std::uint32_t num_vars() const { return num_vars_; }

  /// The projection function for variable v.
  Ref var(std::uint32_t v);

  Ref ite(Ref f, Ref g, Ref h);
  Ref apply_and(Ref f, Ref g) { return ite(f, g, kFalse); }
  Ref apply_or(Ref f, Ref g) { return ite(f, kTrue, g); }
  Ref apply_xor(Ref f, Ref g) { return ite(f, negate(g), g); }
  Ref negate(Ref f) { return ite(f, kFalse, kTrue); }

  /// Number of distinct nodes reachable from `f`, terminals included.
  std::size_t size(Ref f) const;
  /// Total nodes ever created (live table size).
  std::size_t table_size() const { return nodes_.size(); }

  /// Evaluates under a complete variable assignment.
  bool eval(Ref f, std::span<const bool> assignment) const;

  /// Number of satisfying assignments over all num_vars variables.
  double sat_count(Ref f) const;

  /// Thrown by ite when node_limit is exceeded.
  struct NodeLimitExceeded : std::runtime_error {
    NodeLimitExceeded() : std::runtime_error("bdd: node limit exceeded") {}
  };

 private:
  struct Node {
    std::uint32_t level;  // variable index; terminals use num_vars_
    Ref lo, hi;
  };

  Ref make_node(std::uint32_t level, Ref lo, Ref hi);
  std::uint32_t level_of(Ref f) const { return nodes_[f].level; }

  std::uint32_t num_vars_;
  std::size_t node_limit_;
  std::vector<Node> nodes_;
  std::unordered_map<std::uint64_t, Ref> unique_;
  std::unordered_map<std::uint64_t, Ref> ite_cache_;
};

/// Builds the BDDs of every primary output of `net` in one pass.
/// `input_order[i]` gives the BDD level of net.inputs()[i] (must be a
/// permutation of 0..#PI-1); an empty span means identity order.
/// Throws Manager::NodeLimitExceeded when the circuit is too wide for the
/// limit — exactly the blowup §6's bounds are about.
std::vector<Ref> build_output_bdds(Manager& manager, const net::Network& net,
                                   std::span<const std::uint32_t> input_order = {});

/// Directed widths of a circuit under a linear arrangement of its nodes
/// (Berman / McMillan, §6): for every gap, count signal edges
/// driver->sink running forward (driver before the gap, sink after) and
/// reverse. Returns (max forward width w_f, max reverse width w_r).
struct DirectedWidths {
  std::uint32_t forward = 0;
  std::uint32_t reverse = 0;
};
DirectedWidths directed_widths(const net::Network& net,
                               std::span<const net::NodeId> order);

/// log2 of McMillan's BDD size bound n * 2^(w_f * 2^(w_r)) — double
/// exponential in the reverse width (clamped to 1e9 to stay finite).
double mcmillan_log2_bound(std::size_t n, const DirectedWidths& widths);

}  // namespace cwatpg::bdd
