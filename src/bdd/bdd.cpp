#include "bdd/bdd.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cwatpg::bdd {
namespace {

constexpr std::uint64_t key3(std::uint32_t a, std::uint32_t b,
                             std::uint32_t c) {
  std::uint64_t h = a;
  h = h * 0x9e3779b97f4a7c15ULL + b;
  h = h * 0x9e3779b97f4a7c15ULL + c;
  return h;
}

}  // namespace

Manager::Manager(std::uint32_t num_vars, std::size_t node_limit)
    : num_vars_(num_vars), node_limit_(node_limit) {
  // Terminals live at level num_vars_ (below every variable).
  nodes_.push_back({num_vars_, kFalse, kFalse});  // 0
  nodes_.push_back({num_vars_, kTrue, kTrue});    // 1
}

Ref Manager::make_node(std::uint32_t level, Ref lo, Ref hi) {
  if (lo == hi) return lo;
  const std::uint64_t key = key3(level, lo, hi);
  const auto it = unique_.find(key);
  if (it != unique_.end()) {
    const Node& n = nodes_[it->second];
    if (n.level == level && n.lo == lo && n.hi == hi) return it->second;
    // 64-bit key collision: extremely unlikely; fall through to linear
    // probing with salted keys.
    std::uint64_t salted = key;
    for (;;) {
      salted = salted * 0x2545f4914f6cdd1dULL + 1;
      const auto it2 = unique_.find(salted);
      if (it2 == unique_.end()) {
        break;
      }
      const Node& n2 = nodes_[it2->second];
      if (n2.level == level && n2.lo == lo && n2.hi == hi)
        return it2->second;
    }
    if (nodes_.size() >= node_limit_) throw NodeLimitExceeded();
    const Ref ref = static_cast<Ref>(nodes_.size());
    nodes_.push_back({level, lo, hi});
    unique_.emplace(salted, ref);
    return ref;
  }
  if (nodes_.size() >= node_limit_) throw NodeLimitExceeded();
  const Ref ref = static_cast<Ref>(nodes_.size());
  nodes_.push_back({level, lo, hi});
  unique_.emplace(key, ref);
  return ref;
}

Ref Manager::var(std::uint32_t v) {
  if (v >= num_vars_)
    throw std::invalid_argument("bdd: variable out of range");
  return make_node(v, kFalse, kTrue);
}

Ref Manager::ite(Ref f, Ref g, Ref h) {
  // Terminal cases.
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;

  const std::uint64_t key = key3(f, g, h) ^ 0xa5a5a5a5a5a5a5a5ULL;
  const auto it = ite_cache_.find(key);
  if (it != ite_cache_.end()) return it->second;

  const std::uint32_t top = std::min(
      {level_of(f), level_of(g), level_of(h)});
  auto cofactor = [&](Ref r, bool which) {
    if (level_of(r) != top) return r;
    return which ? nodes_[r].hi : nodes_[r].lo;
  };
  const Ref lo = ite(cofactor(f, false), cofactor(g, false),
                     cofactor(h, false));
  const Ref hi = ite(cofactor(f, true), cofactor(g, true),
                     cofactor(h, true));
  const Ref result = make_node(top, lo, hi);
  ite_cache_.emplace(key, result);
  return result;
}

std::size_t Manager::size(Ref f) const {
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<Ref> stack{f};
  std::size_t count = 0;
  while (!stack.empty()) {
    const Ref r = stack.back();
    stack.pop_back();
    if (seen[r]) continue;
    seen[r] = true;
    ++count;
    if (nodes_[r].level < num_vars_) {
      stack.push_back(nodes_[r].lo);
      stack.push_back(nodes_[r].hi);
    }
  }
  return count;
}

bool Manager::eval(Ref f, std::span<const bool> assignment) const {
  if (assignment.size() < num_vars_)
    throw std::invalid_argument("bdd::eval: assignment too short");
  while (nodes_[f].level < num_vars_)
    f = assignment[nodes_[f].level] ? nodes_[f].hi : nodes_[f].lo;
  return f == kTrue;
}

double Manager::sat_count(Ref f) const {
  std::unordered_map<Ref, double> memo;
  // count(r) = #assignments of variables BELOW r's level satisfying r.
  // Defined recursively with level-gap scaling.
  std::vector<Ref> order;  // topological via DFS
  {
    std::vector<Ref> stack{f};
    std::vector<bool> seen(nodes_.size(), false);
    while (!stack.empty()) {
      const Ref r = stack.back();
      stack.pop_back();
      if (seen[r]) continue;
      seen[r] = true;
      order.push_back(r);
      if (nodes_[r].level < num_vars_) {
        stack.push_back(nodes_[r].lo);
        stack.push_back(nodes_[r].hi);
      }
    }
  }
  std::sort(order.begin(), order.end(), [&](Ref a, Ref b) {
    return nodes_[a].level > nodes_[b].level;
  });
  for (Ref r : order) {
    if (nodes_[r].level == num_vars_) {
      memo[r] = r == kTrue ? 1.0 : 0.0;
      continue;
    }
    const Node& n = nodes_[r];
    auto below = [&](Ref child) {
      const double gap = static_cast<double>(
          (nodes_[child].level) - (n.level + 1));
      return memo.at(child) * std::exp2(gap);
    };
    memo[r] = below(n.lo) + below(n.hi);
  }
  return memo.at(f) * std::exp2(static_cast<double>(nodes_[f].level));
}

std::vector<Ref> build_output_bdds(Manager& manager, const net::Network& netw,
                                   std::span<const std::uint32_t> input_order) {
  const std::size_t pis = netw.inputs().size();
  if (manager.num_vars() < pis)
    throw std::invalid_argument("build_output_bdds: manager too small");
  std::vector<std::uint32_t> order(pis);
  if (input_order.empty()) {
    for (std::size_t i = 0; i < pis; ++i)
      order[i] = static_cast<std::uint32_t>(i);
  } else {
    if (input_order.size() != pis)
      throw std::invalid_argument("build_output_bdds: order size mismatch");
    order.assign(input_order.begin(), input_order.end());
  }

  std::vector<Ref> node_bdd(netw.node_count(), kFalse);
  for (std::size_t i = 0; i < pis; ++i)
    node_bdd[netw.inputs()[i]] = manager.var(order[i]);

  for (net::NodeId id = 0; id < netw.node_count(); ++id) {
    const auto& node = netw.node(id);
    switch (node.type) {
      case net::GateType::kInput:
        break;
      case net::GateType::kConst0:
        node_bdd[id] = kFalse;
        break;
      case net::GateType::kConst1:
        node_bdd[id] = kTrue;
        break;
      case net::GateType::kOutput:
      case net::GateType::kBuf:
        node_bdd[id] = node_bdd[node.fanins[0]];
        break;
      case net::GateType::kNot:
        node_bdd[id] = manager.negate(node_bdd[node.fanins[0]]);
        break;
      case net::GateType::kAnd:
      case net::GateType::kNand:
      case net::GateType::kOr:
      case net::GateType::kNor:
      case net::GateType::kXor:
      case net::GateType::kXnor: {
        Ref acc = node_bdd[node.fanins[0]];
        for (std::size_t k = 1; k < node.fanins.size(); ++k) {
          const Ref operand = node_bdd[node.fanins[k]];
          switch (node.type) {
            case net::GateType::kAnd:
            case net::GateType::kNand:
              acc = manager.apply_and(acc, operand);
              break;
            case net::GateType::kOr:
            case net::GateType::kNor:
              acc = manager.apply_or(acc, operand);
              break;
            default:
              acc = manager.apply_xor(acc, operand);
              break;
          }
        }
        if (node.type == net::GateType::kNand ||
            node.type == net::GateType::kNor ||
            node.type == net::GateType::kXnor)
          acc = manager.negate(acc);
        node_bdd[id] = acc;
        break;
      }
    }
  }

  std::vector<Ref> outputs;
  outputs.reserve(netw.outputs().size());
  for (net::NodeId po : netw.outputs()) outputs.push_back(node_bdd[po]);
  return outputs;
}

DirectedWidths directed_widths(const net::Network& netw,
                               std::span<const net::NodeId> order) {
  if (order.size() != netw.node_count())
    throw std::invalid_argument("directed_widths: order size mismatch");
  std::vector<std::uint32_t> pos(netw.node_count());
  std::vector<bool> seen(netw.node_count(), false);
  for (std::uint32_t i = 0; i < order.size(); ++i) {
    if (order[i] >= netw.node_count() || seen[order[i]])
      throw std::invalid_argument("directed_widths: not a permutation");
    seen[order[i]] = true;
    pos[order[i]] = i;
  }
  const std::size_t n = netw.node_count();
  if (n < 2) return {};
  // Signal edge driver -> each sink; forward if pos(driver) < pos(sink).
  std::vector<std::int32_t> fwd(n + 1, 0), rev(n + 1, 0);
  for (net::NodeId d = 0; d < n; ++d) {
    for (net::NodeId s : netw.fanouts(d)) {
      const auto a = std::min(pos[d], pos[s]);
      const auto b = std::max(pos[d], pos[s]);
      if (a == b) continue;
      auto& lane = pos[d] < pos[s] ? fwd : rev;
      ++lane[a];
      --lane[b];
    }
  }
  DirectedWidths w;
  std::int32_t running_f = 0, running_r = 0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    running_f += fwd[i];
    running_r += rev[i];
    w.forward = std::max(w.forward, static_cast<std::uint32_t>(running_f));
    w.reverse = std::max(w.reverse, static_cast<std::uint32_t>(running_r));
  }
  return w;
}

double mcmillan_log2_bound(std::size_t n, const DirectedWidths& widths) {
  const double inner =
      std::min(1e9, std::exp2(static_cast<double>(widths.reverse)));
  return std::log2(static_cast<double>(std::max<std::size_t>(n, 1))) +
         static_cast<double>(widths.forward) * inner;
}

}  // namespace cwatpg::bdd
