#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace cwatpg::obs {

namespace {

[[noreturn]] void type_error(const char* want, Json::Type got) {
  static const char* const names[] = {"null",   "bool",  "int",   "uint",
                                      "double", "string", "array", "object"};
  throw std::logic_error(std::string("json: expected ") + want + ", have " +
                         names[static_cast<int>(got)]);
}

}  // namespace

bool Json::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

double Json::as_double() const {
  switch (type_) {
    case Type::kDouble:
      return double_;
    case Type::kInt:
      return static_cast<double>(int_);
    case Type::kUint:
      return static_cast<double>(uint_);
    default:
      type_error("number", type_);
  }
}

std::int64_t Json::as_i64() const {
  switch (type_) {
    case Type::kInt:
      return int_;
    case Type::kUint:
      if (uint_ > static_cast<std::uint64_t>(
                      std::numeric_limits<std::int64_t>::max()))
        throw std::logic_error("json: uint value overflows int64");
      return static_cast<std::int64_t>(uint_);
    case Type::kDouble:
      if (double_ != std::floor(double_))
        throw std::logic_error("json: non-integral double read as int64");
      return static_cast<std::int64_t>(double_);
    default:
      type_error("number", type_);
  }
}

std::uint64_t Json::as_u64() const {
  switch (type_) {
    case Type::kUint:
      return uint_;
    case Type::kInt:
      if (int_ < 0)
        throw std::logic_error("json: negative value read as uint64");
      return static_cast<std::uint64_t>(int_);
    case Type::kDouble:
      if (double_ < 0 || double_ != std::floor(double_))
        throw std::logic_error("json: non-integral double read as uint64");
      return static_cast<std::uint64_t>(double_);
    default:
      type_error("number", type_);
  }
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return string_;
}

void Json::push_back(Json v) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray) type_error("array", type_);
  values_.push_back(std::move(v));
}

const Json& Json::operator[](std::size_t i) const {
  if (type_ != Type::kArray) type_error("array", type_);
  if (i >= values_.size()) throw std::out_of_range("json: array index");
  return values_[i];
}

Json& Json::operator[](std::string_view key) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) type_error("object", type_);
  for (std::size_t i = 0; i < keys_.size(); ++i)
    if (keys_[i] == key) return values_[i];
  keys_.emplace_back(key);
  values_.emplace_back();
  return values_.back();
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (std::size_t i = 0; i < keys_.size(); ++i)
    if (keys_[i] == key) return &values_[i];
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  const Json* v = find(key);
  if (v == nullptr)
    throw std::out_of_range("json: missing key \"" + std::string(key) + "\"");
  return *v;
}

bool Json::operator==(const Json& other) const {
  if (is_number() && other.is_number()) {
    // Numbers compare by value across flavors, so a parsed report (which
    // may re-type an integral field) still equals the one it came from.
    if (type_ == Type::kDouble || other.type_ == Type::kDouble)
      return as_double() == other.as_double();
    if (type_ == Type::kUint || other.type_ == Type::kUint) {
      if ((type_ == Type::kInt && int_ < 0) ||
          (other.type_ == Type::kInt && other.int_ < 0))
        return false;
      return as_u64() == other.as_u64();
    }
    return int_ == other.int_;
  }
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kString:
      return string_ == other.string_;
    case Type::kArray:
      return values_ == other.values_;
    case Type::kObject:
      return keys_ == other.keys_ && values_ == other.values_;
    default:
      return false;  // numbers handled above
  }
}

void write_json_string(std::ostream& out, std::string_view text) {
  out << '"';
  for (const char c : text) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\r':
        out << "\\r";
        break;
      case '\t':
        out << "\\t";
        break;
      case '\b':
        out << "\\b";
        break;
      case '\f':
        out << "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void Json::dump_impl(std::ostream& out, int indent, int depth) const {
  const auto newline_pad = [&](int d) {
    if (indent < 0) return;
    out << '\n';
    for (int i = 0; i < indent * d; ++i) out << ' ';
  };
  switch (type_) {
    case Type::kNull:
      out << "null";
      break;
    case Type::kBool:
      out << (bool_ ? "true" : "false");
      break;
    case Type::kInt:
      out << int_;
      break;
    case Type::kUint:
      out << uint_;
      break;
    case Type::kDouble: {
      if (!std::isfinite(double_)) {
        out << "null";  // JSON has no Inf/NaN; null is the least-bad spelling
        break;
      }
      char buf[32];
      const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, double_);
      (void)ec;
      out << std::string_view(buf, static_cast<std::size_t>(end - buf));
      break;
    }
    case Type::kString:
      write_json_string(out, string_);
      break;
    case Type::kArray:
      out << '[';
      for (std::size_t i = 0; i < values_.size(); ++i) {
        if (i > 0) out << ',';
        newline_pad(depth + 1);
        values_[i].dump_impl(out, indent, depth + 1);
      }
      if (!values_.empty()) newline_pad(depth);
      out << ']';
      break;
    case Type::kObject:
      out << '{';
      for (std::size_t i = 0; i < keys_.size(); ++i) {
        if (i > 0) out << ',';
        newline_pad(depth + 1);
        write_json_string(out, keys_[i]);
        out << (indent < 0 ? ":" : ": ");
        values_[i].dump_impl(out, indent, depth + 1);
      }
      if (!keys_.empty()) newline_pad(depth);
      out << '}';
      break;
  }
}

void Json::dump(std::ostream& out, int indent) const {
  dump_impl(out, indent, 0);
}

std::string Json::dump(int indent) const {
  std::ostringstream out;
  dump(out, indent);
  return out.str();
}

// ---- parser --------------------------------------------------------------

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::size_t max_depth)
      : text_(text), max_depth_(max_depth) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Json(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json(nullptr);
      default:
        return parse_number();
    }
  }

  // Containers recurse through parse_value(); the depth guard bounds that
  // recursion so stack use is O(max_depth) no matter what the input says.
  void enter_container() {
    if (++depth_ > max_depth_)
      fail("nesting exceeds depth limit of " + std::to_string(max_depth_));
  }
  void leave_container() { --depth_; }

  Json parse_object() {
    expect('{');
    enter_container();
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      leave_container();
      return obj;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[key] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      leave_container();
      return obj;
    }
  }

  Json parse_array() {
    expect('[');
    enter_container();
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      leave_container();
      return arr;
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      leave_container();
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9')
              code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad hex digit in \\u escape");
          }
          // UTF-8 encode the code point (surrogate pairs are not combined;
          // trace payloads and reports are ASCII in practice).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("bad escape character");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") fail("bad number");

    const bool integral =
        token.find('.') == std::string_view::npos &&
        token.find('e') == std::string_view::npos &&
        token.find('E') == std::string_view::npos;
    if (integral) {
      if (token[0] == '-') {
        std::int64_t value = 0;
        const auto [p, ec] =
            std::from_chars(token.data(), token.data() + token.size(), value);
        if (ec == std::errc() && p == token.data() + token.size())
          return Json(value);
      } else {
        std::uint64_t value = 0;
        const auto [p, ec] =
            std::from_chars(token.data(), token.data() + token.size(), value);
        if (ec == std::errc() && p == token.data() + token.size())
          return Json(value);
      }
      // fall through to double on overflow
    }
    double value = 0;
    const auto [p, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc() || p != token.data() + token.size())
      fail("bad number");
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t max_depth_;
  std::size_t depth_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text, std::size_t max_depth) {
  return Parser(text, max_depth).parse_document();
}

}  // namespace cwatpg::obs
