// Metrics registry: named atomic counters, gauges and fixed-bucket
// histograms.
//
// The quantitative backbone of the observability subsystem. Engines and
// kernels take an optional `MetricsRegistry*` (nullptr by default); when
// one is supplied they record what they did — solves, drops, conflicts,
// phase times, queue depths — and the caller snapshots the registry into a
// RunReport or bench JSON afterwards. When none is supplied the
// instrumentation costs one pointer test per site, which is the
// zero-overhead-when-disabled contract the benches rely on.
//
// Hot-path discipline: look the instrument up ONCE (counter()/gauge()/
// histogram() take a registration mutex), keep the reference, and bump it
// in the loop — a bump is a single relaxed atomic RMW. References returned
// by the registry are stable for the registry's lifetime (instruments live
// in node-stable deques and are never erased).
//
// Thread-safe: fully. Registration is mutex-guarded; updates are lock-free
// atomics; snapshot() may race with updates and sees each instrument's
// current value (counters monotone, so a snapshot is a consistent
// lower bound). Worker-local registries can be combined with merge():
// counters and histograms add, gauges keep the maximum — the convention
// that makes "peak queue depth" and friends merge meaningfully.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"

namespace cwatpg::obs {

/// Monotone event count. add() is a relaxed fetch_add — safe from any
/// thread, meaningful to read only via value()/snapshot.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written level (double). set() overwrites; max_in() raises. Merge
/// semantics across registries take the maximum (see MetricsRegistry).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  /// Raises the gauge to at least `v` (CAS loop; races keep the max).
  void max_in(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `bounds` are inclusive upper edges of the first
/// N buckets plus an implicit +inf bucket, so counts.size() ==
/// bounds.size() + 1. observe() is two relaxed RMWs plus a linear scan of
/// the (small, fixed) bound list.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double x) {
    std::size_t b = 0;
    while (b < bounds_.size() && x > bounds_[b]) ++b;
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    // C++20 atomic<double>::fetch_add.
    sum_.fetch_add(x, std::memory_order_relaxed);
  }

  const std::vector<double>& bounds() const { return bounds_; }

 private:
  friend class MetricsRegistry;
  std::vector<double> bounds_;
  std::deque<std::atomic<std::uint64_t>> buckets_;  ///< bounds_.size() + 1
  std::atomic<double> sum_{0.0};
};

struct HistogramSnapshot {
  std::vector<double> bounds;          ///< upper edges (last bucket = +inf)
  std::vector<std::uint64_t> counts;   ///< bounds.size() + 1 entries
  std::uint64_t total = 0;             ///< sum of counts
  double sum = 0.0;                    ///< sum of observed values

  HistogramSnapshot& operator+=(const HistogramSnapshot& other);
  bool operator==(const HistogramSnapshot&) const = default;
};

/// Point-in-time copy of a registry: plain values, ordered by name. The
/// unit handed to reports and serialized as JSON.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Counters and histograms add; gauges keep the maximum. Histograms with
  /// the same name must share bucket bounds (std::logic_error otherwise).
  MetricsSnapshot& operator+=(const MetricsSnapshot& other);

  /// {"counters":{...},"gauges":{...},"histograms":{name:{bounds,counts,
  /// sum}}}. from_json() inverts it.
  Json to_json() const;
  static MetricsSnapshot from_json(const Json& j);

  bool operator==(const MetricsSnapshot&) const = default;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates the named instrument. References stay valid for the
  /// registry's lifetime. histogram() ignores `upper_bounds` when the name
  /// already exists (first registration wins).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name,
                       std::span<const double> upper_bounds);

  /// Plain-value copy of every instrument; may race with concurrent
  /// updates (counters are monotone, so the copy is internally coherent).
  MetricsSnapshot snapshot() const;

  /// Folds a snapshot into this registry: counters/histogram buckets add,
  /// gauges take max — how per-worker registries combine after a join.
  void merge(const MetricsSnapshot& other);

 private:
  mutable std::mutex mutex_;  ///< guards the name maps, not the instruments
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

/// Shared bucket edges for solve-time histograms, in milliseconds:
/// 0.01, 0.1, 1, 10, 100, 1000 (+inf implicit) — the decades of the
/// paper's Figure-1 claim ("over 90% below 10 ms").
std::span<const double> solve_time_bounds_ms();

}  // namespace cwatpg::obs
