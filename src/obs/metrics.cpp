#include "obs/metrics.hpp"

#include <array>
#include <stdexcept>

namespace cwatpg::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    if (!(bounds_[i - 1] < bounds_[i]))
      throw std::logic_error("Histogram: bounds must be strictly increasing");
  // bounds_.size() + 1 buckets; emplace one by one — atomics cannot be
  // copy-constructed into a sized container.
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_.emplace_back(0);
}

HistogramSnapshot& HistogramSnapshot::operator+=(
    const HistogramSnapshot& other) {
  if (bounds.empty() && counts.empty()) {
    *this = other;
    return *this;
  }
  if (bounds != other.bounds)
    throw std::logic_error(
        "HistogramSnapshot: cannot merge histograms with different bounds");
  for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
  total += other.total;
  sum += other.sum;
  return *this;
}

MetricsSnapshot& MetricsSnapshot::operator+=(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [name, value] : other.gauges) {
    auto [it, inserted] = gauges.try_emplace(name, value);
    if (!inserted && value > it->second) it->second = value;
  }
  for (const auto& [name, hist] : other.histograms) histograms[name] += hist;
  return *this;
}

Json MetricsSnapshot::to_json() const {
  Json j = Json::object();
  Json& c = j["counters"] = Json::object();
  for (const auto& [name, value] : counters) c[name] = value;
  Json& g = j["gauges"] = Json::object();
  for (const auto& [name, value] : gauges) g[name] = value;
  Json& h = j["histograms"] = Json::object();
  for (const auto& [name, hist] : histograms) {
    Json& entry = h[name] = Json::object();
    Json& bounds = entry["bounds"] = Json::array();
    for (const double b : hist.bounds) bounds.push_back(b);
    Json& counts = entry["counts"] = Json::array();
    for (const std::uint64_t n : hist.counts) counts.push_back(n);
    entry["total"] = hist.total;
    entry["sum"] = hist.sum;
  }
  return j;
}

MetricsSnapshot MetricsSnapshot::from_json(const Json& j) {
  MetricsSnapshot snap;
  if (const Json* c = j.find("counters")) {
    for (std::size_t i = 0; i < c->keys().size(); ++i)
      snap.counters[c->keys()[i]] = c->items()[i].as_u64();
  }
  if (const Json* g = j.find("gauges")) {
    for (std::size_t i = 0; i < g->keys().size(); ++i)
      snap.gauges[g->keys()[i]] = g->items()[i].as_double();
  }
  if (const Json* h = j.find("histograms")) {
    for (std::size_t i = 0; i < h->keys().size(); ++i) {
      const Json& entry = h->items()[i];
      HistogramSnapshot hist;
      for (const Json& b : entry.at("bounds").items())
        hist.bounds.push_back(b.as_double());
      for (const Json& n : entry.at("counts").items())
        hist.counts.push_back(n.as_u64());
      hist.total = entry.at("total").as_u64();
      hist.sum = entry.at("sum").as_double();
      snap.histograms[h->keys()[i]] = std::move(hist);
    }
  }
  return snap;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.try_emplace(std::string(name)).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.try_emplace(std::string(name)).first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::span<const double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_
      .try_emplace(std::string(name),
                   std::vector<double>(upper_bounds.begin(),
                                       upper_bounds.end()))
      .first->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c.value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g.value();
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hist;
    hist.bounds = h.bounds_;
    hist.counts.reserve(h.buckets_.size());
    for (const auto& bucket : h.buckets_) {
      const std::uint64_t n = bucket.load(std::memory_order_relaxed);
      hist.counts.push_back(n);
      hist.total += n;
    }
    hist.sum = h.sum_.load(std::memory_order_relaxed);
    snap.histograms[name] = std::move(hist);
  }
  return snap;
}

void MetricsRegistry::merge(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) counter(name).add(value);
  for (const auto& [name, value] : other.gauges) gauge(name).max_in(value);
  for (const auto& [name, hist] : other.histograms) {
    Histogram& h = histogram(name, hist.bounds);
    std::lock_guard<std::mutex> lock(mutex_);
    if (h.bounds_ != hist.bounds)
      throw std::logic_error(
          "MetricsRegistry::merge: histogram bounds mismatch for " + name);
    for (std::size_t i = 0; i < hist.counts.size(); ++i)
      h.buckets_[i].fetch_add(hist.counts[i], std::memory_order_relaxed);
    h.sum_.fetch_add(hist.sum, std::memory_order_relaxed);
  }
}

std::span<const double> solve_time_bounds_ms() {
  static constexpr std::array<double, 6> kBounds = {0.01, 0.1, 1.0,
                                                    10.0, 100.0, 1000.0};
  return kBounds;
}

}  // namespace cwatpg::obs
