// Structured trace events and scoped spans.
//
// The event layer answers "what happened, when, on which thread" — the
// signal the metrics registry aggregates away. An EventSink receives
// (name, key/value fields); concrete sinks stamp each event with a
// monotonic timestamp and a small per-thread id. JsonlSink writes one JSON
// object per line (JSONL), the format every log/trace toolchain ingests.
//
// Disabled-by-default contract: every instrumentation site takes an
// `EventSink*` that defaults to nullptr, and Span/event emission begins
// with a null test — one predictable branch, nothing allocated, no clock
// read. Defining CWATPG_OBS_NO_TRACE compiles Span and CWATPG_OBS_EVENT
// out entirely for builds that must not carry even the branch.
//
// Thread-safe: sinks must accept concurrent event() calls (JsonlSink
// serializes under a mutex; NullSink is trivially safe). Span is used by
// one thread at a time, like any stack object.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

namespace cwatpg::obs {

/// One key/value payload entry. Keys are expected to be string literals
/// (the sink consumes fields before event() returns, so any lifetime that
/// spans the call works).
struct Field {
  enum class Kind : std::uint8_t { kUint, kInt, kDouble, kBool, kString };

  std::string_view key;
  Kind kind = Kind::kUint;
  std::uint64_t u64 = 0;
  std::int64_t i64 = 0;
  double f64 = 0.0;
  bool boolean = false;
  std::string_view str;

  Field(std::string_view k, std::uint64_t v)
      : key(k), kind(Kind::kUint), u64(v) {}
  Field(std::string_view k, std::uint32_t v)
      : Field(k, static_cast<std::uint64_t>(v)) {}
  Field(std::string_view k, std::int64_t v)
      : key(k), kind(Kind::kInt), i64(v) {}
  Field(std::string_view k, int v)
      : Field(k, static_cast<std::int64_t>(v)) {}
  Field(std::string_view k, double v)
      : key(k), kind(Kind::kDouble), f64(v) {}
  Field(std::string_view k, bool v)
      : key(k), kind(Kind::kBool), boolean(v) {}
  Field(std::string_view k, std::string_view v)
      : key(k), kind(Kind::kString), str(v) {}
  Field(std::string_view k, const char* v)
      : Field(k, std::string_view(v)) {}
};

/// Receiver of structured events. Implementations stamp thread id and
/// timestamp themselves so call sites stay one-liners.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void event(std::string_view name,
                     std::span<const Field> fields) = 0;

  /// Convenience: event("x", {{"k", 1}, ...}).
  void event(std::string_view name, std::initializer_list<Field> fields) {
    event(name, std::span<const Field>(fields.begin(), fields.size()));
  }
};

/// Swallows everything. Exists for call sites that want a non-null sink
/// object (e.g. measuring instrumentation overhead itself); passing a
/// nullptr EventSink* is the cheaper and idiomatic "off" state.
class NullSink final : public EventSink {
 public:
  using EventSink::event;
  void event(std::string_view, std::span<const Field>) override {}
};

/// Writes one JSON object per event, one event per line:
///   {"ts_ns":152332,"tid":0,"name":"atpg.solve","fault":17,"ms":0.42}
/// ts_ns is monotonic (steady_clock) nanoseconds since sink construction;
/// tid is a small dense id assigned per distinct thread in arrival order.
/// All writes are serialized under one mutex — JSONL lines never interleave.
class JsonlSink final : public EventSink {
 public:
  /// Streams to `out` (not owned; must outlive the sink).
  explicit JsonlSink(std::ostream& out);
  /// Opens `path` for writing (std::runtime_error when the open fails).
  explicit JsonlSink(const std::string& path);
  ~JsonlSink() override;

  using EventSink::event;
  void event(std::string_view name, std::span<const Field> fields) override;

  /// Events written so far.
  std::uint64_t events_written() const;

 private:
  std::unique_ptr<std::ostream> owned_;  ///< set for the path constructor
  std::ostream& out_;
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::unordered_map<std::thread::id, std::uint32_t> thread_ids_;
  std::uint64_t events_ = 0;
};

#if !defined(CWATPG_OBS_NO_TRACE)

/// Scoped timer: emits `name` with a "dur_ns" field (plus any note()-ed
/// fields) when it goes out of scope. With a null sink the constructor and
/// destructor are a pointer test each — no clock read, no allocation.
class Span {
 public:
  Span(EventSink* sink, std::string_view name) : sink_(sink), name_(name) {
    if (sink_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { finish(); }

  /// Attaches a field reported with the closing event. Values are captured
  /// now; string values must outlive the span (use literals).
  void note(Field field) {
    if (sink_ != nullptr) notes_.push_back(field);
  }

  /// Emits the closing event early (idempotent; the destructor becomes a
  /// no-op afterwards).
  void finish();

 private:
  EventSink* sink_;
  std::string_view name_;
  std::chrono::steady_clock::time_point start_{};
  std::vector<Field> notes_;
};

#else  // CWATPG_OBS_NO_TRACE: spans compile to nothing

class Span {
 public:
  Span(EventSink*, std::string_view) {}
  void note(Field) {}
  void finish() {}
};

#endif

}  // namespace cwatpg::obs
