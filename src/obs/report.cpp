#include "obs/report.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/budget.hpp"

namespace cwatpg::obs {

namespace {

/// Every enum value appears in the report maps even at count zero, so the
/// schema is stable across runs and diffs never churn on missing keys.
constexpr fault::FaultStatus kAllStatuses[] = {
    fault::FaultStatus::kDetected,      fault::FaultStatus::kUntestable,
    fault::FaultStatus::kDroppedBySim,  fault::FaultStatus::kDroppedRandom,
    fault::FaultStatus::kAborted,       fault::FaultStatus::kUnreachable,
    fault::FaultStatus::kUndetermined,
};
constexpr fault::SolveEngine kAllEngines[] = {
    fault::SolveEngine::kNone,
    fault::SolveEngine::kSat,
    fault::SolveEngine::kSatRetry,
    fault::SolveEngine::kPodem,
    fault::SolveEngine::kIncremental,
};
constexpr StopReason kAllStopReasons[] = {
    StopReason::kNone,     StopReason::kConflictLimit,
    StopReason::kPropagationLimit, StopReason::kDeadline,
    StopReason::kCancelled,
};

Json map_to_json(const std::map<std::string, std::uint64_t>& m) {
  Json j = Json::object();
  for (const auto& [k, v] : m) j[k] = v;
  return j;
}

std::map<std::string, std::uint64_t> map_from_json(const Json& j) {
  std::map<std::string, std::uint64_t> m;
  for (std::size_t i = 0; i < j.keys().size(); ++i)
    m[j.keys()[i]] = j.items()[i].as_u64();
  return m;
}

}  // namespace

RunReport build_run_report(const net::Network& net,
                           const fault::AtpgResult& result,
                           const ReportOptions& options) {
  RunReport report;
  report.label = options.label;
  report.circuit = net.name();
  report.gates = net.gate_count();
  report.inputs = net.inputs().size();
  report.outputs = net.outputs().size();
  report.engine = options.engine;
  report.threads = options.threads;
  report.seed = options.seed;

  report.faults = result.outcomes.size();
  for (const fault::FaultStatus s : kAllStatuses)
    report.status_counts[fault::to_string(s)] = 0;
  for (const fault::SolveEngine e : kAllEngines)
    report.engine_counts[fault::to_string(e)] = 0;
  for (const StopReason r : kAllStopReasons)
    report.stop_reasons[to_string(r)] = 0;

  for (const fault::FaultOutcome& o : result.outcomes) {
    ++report.status_counts[fault::to_string(o.status)];
    ++report.engine_counts[fault::to_string(o.engine)];
    ++report.stop_reasons[to_string(o.solver_stats.stop_reason)];
    report.solver += o.solver_stats;
    report.attempts += o.attempts;
    report.solve_seconds += o.solve_seconds;
    if (o.sat_vars > 0) {
      ++report.sat_instances;
      if (o.sat_vars > report.max_sat_vars) report.max_sat_vars = o.sat_vars;
      if (o.sat_clauses > report.max_sat_clauses)
        report.max_sat_clauses = o.sat_clauses;
    }
  }
  // The summed stop_reason is meaningless; the histogram carries it.
  report.solver.stop_reason = StopReason::kNone;

  report.num_tests = result.tests.size();
  report.num_escalated = result.num_escalated;
  report.interrupted = result.interrupted;
  report.fault_coverage = result.fault_coverage();
  report.fault_efficiency = result.fault_efficiency();
  report.wall_seconds =
      options.wall_seconds >= 0 ? options.wall_seconds : result.wall_seconds;

  if (options.parallel != nullptr) {
    const fault::ParallelStats& ps = *options.parallel;
    report.dispatched = ps.dispatched;
    report.committed = ps.committed;
    report.wasted = ps.wasted;
    report.max_in_flight = ps.max_in_flight;
    report.workers.reserve(ps.workers.size());
    for (const fault::WorkerStats& w : ps.workers) {
      WorkerReport wr;
      wr.solved = w.solved;
      wr.steals = w.steals;
      wr.solve_seconds = w.solve_seconds;
      report.workers.push_back(wr);
    }
    if (report.threads <= 1 && !ps.workers.empty())
      report.threads = ps.workers.size();
  }
  if (options.metrics != nullptr) report.metrics = *options.metrics;
  return report;
}

Json RunReport::to_json() const {
  Json j = Json::object();
  j["schema"] = schema;
  if (!label.empty()) j["label"] = label;

  Json& c = j["circuit"] = Json::object();
  c["name"] = circuit;
  c["gates"] = static_cast<std::uint64_t>(gates);
  c["inputs"] = static_cast<std::uint64_t>(inputs);
  c["outputs"] = static_cast<std::uint64_t>(outputs);

  Json& e = j["engine"] = Json::object();
  e["name"] = engine;
  e["threads"] = static_cast<std::uint64_t>(threads);
  e["seed"] = seed;

  Json& f = j["faults"] = Json::object();
  f["total"] = static_cast<std::uint64_t>(faults);
  f["status"] = map_to_json(status_counts);
  f["solve_engine"] = map_to_json(engine_counts);
  f["tests"] = static_cast<std::uint64_t>(num_tests);
  f["escalated"] = static_cast<std::uint64_t>(num_escalated);
  f["interrupted"] = interrupted;
  f["coverage"] = fault_coverage;
  f["efficiency"] = fault_efficiency;

  Json& s = j["solver"] = Json::object();
  s["decisions"] = solver.decisions;
  s["propagations"] = solver.propagations;
  s["conflicts"] = solver.conflicts;
  s["learnt_clauses"] = solver.learnt_clauses;
  s["learnt_literals"] = solver.learnt_literals;
  s["restarts"] = solver.restarts;
  s["reused_implications"] = solver.reused_implications;

  j["stop_reasons"] = map_to_json(stop_reasons);
  j["attempts"] = attempts;

  Json& i = j["sat_instances"] = Json::object();
  i["count"] = static_cast<std::uint64_t>(sat_instances);
  i["max_vars"] = static_cast<std::uint64_t>(max_sat_vars);
  i["max_clauses"] = static_cast<std::uint64_t>(max_sat_clauses);

  j["solve_seconds"] = solve_seconds;
  j["wall_seconds"] = wall_seconds;

  if (engine == "parallel" || dispatched > 0 || !workers.empty()) {
    Json& p = j["parallel"] = Json::object();
    p["dispatched"] = dispatched;
    p["committed"] = committed;
    p["wasted"] = wasted;
    p["max_in_flight"] = max_in_flight;
    Json& w = p["workers"] = Json::array();
    for (const WorkerReport& wr : workers) {
      Json entry = Json::object();
      entry["solved"] = wr.solved;
      entry["steals"] = wr.steals;
      entry["solve_seconds"] = wr.solve_seconds;
      w.push_back(std::move(entry));
    }
  }

  if (!metrics.counters.empty() || !metrics.gauges.empty() ||
      !metrics.histograms.empty())
    j["metrics"] = metrics.to_json();
  return j;
}

RunReport RunReport::from_json(const Json& j) {
  const Json* schema = j.find("schema");
  if (schema == nullptr || schema->as_string() != kRunReportSchema)
    throw std::runtime_error(
        "RunReport::from_json: missing or unsupported schema (want " +
        std::string(kRunReportSchema) + ")");

  RunReport r;
  if (const Json* label = j.find("label")) r.label = label->as_string();

  const Json& c = j.at("circuit");
  r.circuit = c.at("name").as_string();
  r.gates = c.at("gates").as_u64();
  r.inputs = c.at("inputs").as_u64();
  r.outputs = c.at("outputs").as_u64();

  const Json& e = j.at("engine");
  r.engine = e.at("name").as_string();
  r.threads = e.at("threads").as_u64();
  r.seed = e.at("seed").as_u64();

  const Json& f = j.at("faults");
  r.faults = f.at("total").as_u64();
  r.status_counts = map_from_json(f.at("status"));
  r.engine_counts = map_from_json(f.at("solve_engine"));
  r.num_tests = f.at("tests").as_u64();
  r.num_escalated = f.at("escalated").as_u64();
  r.interrupted = f.at("interrupted").as_bool();
  r.fault_coverage = f.at("coverage").as_double();
  r.fault_efficiency = f.at("efficiency").as_double();

  const Json& s = j.at("solver");
  r.solver.decisions = s.at("decisions").as_u64();
  r.solver.propagations = s.at("propagations").as_u64();
  r.solver.conflicts = s.at("conflicts").as_u64();
  r.solver.learnt_clauses = s.at("learnt_clauses").as_u64();
  r.solver.learnt_literals = s.at("learnt_literals").as_u64();
  r.solver.restarts = s.at("restarts").as_u64();
  // Tolerant read: reports written before the incremental engine existed
  // have no reuse counter.
  if (const Json* reused = s.find("reused_implications"))
    r.solver.reused_implications = reused->as_u64();

  r.stop_reasons = map_from_json(j.at("stop_reasons"));
  r.attempts = j.at("attempts").as_u64();

  const Json& i = j.at("sat_instances");
  r.sat_instances = i.at("count").as_u64();
  r.max_sat_vars = i.at("max_vars").as_u64();
  r.max_sat_clauses = i.at("max_clauses").as_u64();

  r.solve_seconds = j.at("solve_seconds").as_double();
  r.wall_seconds = j.at("wall_seconds").as_double();

  if (const Json* p = j.find("parallel")) {
    r.dispatched = p->at("dispatched").as_u64();
    r.committed = p->at("committed").as_u64();
    r.wasted = p->at("wasted").as_u64();
    r.max_in_flight = p->at("max_in_flight").as_u64();
    for (const Json& entry : p->at("workers").items()) {
      WorkerReport wr;
      wr.solved = entry.at("solved").as_u64();
      wr.steals = entry.at("steals").as_u64();
      wr.solve_seconds = entry.at("solve_seconds").as_double();
      r.workers.push_back(wr);
    }
  }
  if (const Json* m = j.find("metrics"))
    r.metrics = MetricsSnapshot::from_json(*m);
  return r;
}

RunReport merge_runs(std::span<const RunReport> runs) {
  RunReport total;
  if (runs.empty()) return total;
  total = runs[0];
  bool same_circuit = true;
  for (std::size_t i = 1; i < runs.size(); ++i) {
    const RunReport& r = runs[i];
    if (r.circuit != total.circuit) same_circuit = false;
    if (r.label != total.label) total.label.clear();
    total.gates += r.gates;
    total.inputs += r.inputs;
    total.outputs += r.outputs;
    total.threads = std::max(total.threads, r.threads);
    total.faults += r.faults;
    for (const auto& [k, v] : r.status_counts) total.status_counts[k] += v;
    for (const auto& [k, v] : r.engine_counts) total.engine_counts[k] += v;
    for (const auto& [k, v] : r.stop_reasons) total.stop_reasons[k] += v;
    total.num_tests += r.num_tests;
    total.num_escalated += r.num_escalated;
    total.interrupted = total.interrupted || r.interrupted;
    total.solver += r.solver;
    total.attempts += r.attempts;
    total.sat_instances += r.sat_instances;
    total.max_sat_vars = std::max(total.max_sat_vars, r.max_sat_vars);
    total.max_sat_clauses = std::max(total.max_sat_clauses, r.max_sat_clauses);
    total.solve_seconds += r.solve_seconds;
    total.wall_seconds += r.wall_seconds;
    total.dispatched += r.dispatched;
    total.committed += r.committed;
    total.wasted += r.wasted;
    total.max_in_flight = std::max(total.max_in_flight, r.max_in_flight);
    total.metrics += r.metrics;
  }
  total.solver.stop_reason = StopReason::kNone;
  total.workers.clear();  // per-worker detail does not merge across runs
  if (!same_circuit)
    total.circuit = "<" + std::to_string(runs.size()) + " circuits>";
  // Recompute the ratios from the merged counts: detected statuses are
  // kDetected + both dropped kinds; efficiency adds untestable+unreachable.
  const double n = total.faults > 0 ? static_cast<double>(total.faults) : 1.0;
  const std::uint64_t detected = total.status_counts["detected"] +
                                 total.status_counts["dropped-sim"] +
                                 total.status_counts["dropped-random"];
  total.fault_coverage = static_cast<double>(detected) / n;
  total.fault_efficiency =
      static_cast<double>(detected + total.status_counts["untestable"] +
                          total.status_counts["unreachable"]) /
      n;
  return total;
}

}  // namespace cwatpg::obs
