#include "obs/trace.hpp"

#include <fstream>
#include <ostream>
#include <stdexcept>

#include "obs/json.hpp"

namespace cwatpg::obs {

namespace {

std::unique_ptr<std::ostream> open_for_write(const std::string& path) {
  auto out = std::make_unique<std::ofstream>(path);
  if (!*out)
    throw std::runtime_error("JsonlSink: cannot open " + path +
                             " for writing");
  return out;
}

void write_field_value(std::ostream& out, const Field& f) {
  switch (f.kind) {
    case Field::Kind::kUint:
      out << f.u64;
      break;
    case Field::Kind::kInt:
      out << f.i64;
      break;
    case Field::Kind::kDouble:
      // Reuse Json's exact double formatting.
      Json(f.f64).dump(out);
      break;
    case Field::Kind::kBool:
      out << (f.boolean ? "true" : "false");
      break;
    case Field::Kind::kString:
      write_json_string(out, f.str);
      break;
  }
}

}  // namespace

JsonlSink::JsonlSink(std::ostream& out)
    : out_(out), epoch_(std::chrono::steady_clock::now()) {}

JsonlSink::JsonlSink(const std::string& path)
    : owned_(open_for_write(path)),
      out_(*owned_),
      epoch_(std::chrono::steady_clock::now()) {}

JsonlSink::~JsonlSink() { out_.flush(); }

void JsonlSink::event(std::string_view name, std::span<const Field> fields) {
  const auto now = std::chrono::steady_clock::now();
  const auto ts_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - epoch_)
          .count();

  std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = thread_ids_.try_emplace(
      std::this_thread::get_id(),
      static_cast<std::uint32_t>(thread_ids_.size()));
  out_ << "{\"ts_ns\":" << ts_ns << ",\"tid\":" << it->second << ",\"name\":";
  write_json_string(out_, name);
  for (const Field& f : fields) {
    out_ << ',';
    write_json_string(out_, f.key);
    out_ << ':';
    write_field_value(out_, f);
  }
  out_ << "}\n";
  ++events_;
}

std::uint64_t JsonlSink::events_written() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

#if !defined(CWATPG_OBS_NO_TRACE)

void Span::finish() {
  if (sink_ == nullptr) return;
  const auto dur = std::chrono::steady_clock::now() - start_;
  notes_.emplace_back(
      "dur_ns",
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(dur).count()));
  sink_->event(name_, notes_);
  sink_ = nullptr;
}

#endif

}  // namespace cwatpg::obs
