// Canonical JSON run reports.
//
// One schema — "cwatpg.run_report/1" — for every ATPG run this repo
// performs, whether it came from run_atpg, run_atpg_parallel, an example,
// or a bench binary. A RunReport captures what the run was (circuit,
// engine, threads, seed), what it produced (fault classification counts,
// coverage, tests), and what it cost (aggregated SolverStats, StopReason
// histogram, escalation attempts, wall-clock, scheduling counters), plus
// an optional free-form MetricsSnapshot. Reports serialize to JSON with
// to_json(), parse back with from_json(), and aggregate with merge_runs()
// — which is how the bench harness builds one comparable artifact per
// binary (bench::emit_report) and how the perf trajectory in BENCH_*.json
// files is meant to be collected across PRs.
//
// Dependency note: this is the one obs component that knows about the
// fault layer (it summarizes AtpgResult), so it lives in its own library
// target `cwatpg_obs_report` above cwatpg_fault; the metrics/trace/json
// substrate below stays fault-free so the engines can link it.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <span>
#include <vector>

#include "fault/parallel_atpg.hpp"
#include "fault/tegus.hpp"
#include "netlist/network.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "sat/solver.hpp"

namespace cwatpg::obs {

inline constexpr const char* kRunReportSchema = "cwatpg.run_report/1";

/// Per-worker entry of a parallel run (mirrors fault::WorkerStats).
struct WorkerReport {
  std::uint64_t solved = 0;
  std::uint64_t steals = 0;
  double solve_seconds = 0.0;
  bool operator==(const WorkerReport&) const = default;
};

struct RunReport {
  // ---- identity ----
  std::string schema = kRunReportSchema;
  std::string label;    ///< free-form: config name, sweep point, suite…
  std::string circuit;  ///< Network::name()
  std::size_t gates = 0;
  std::size_t inputs = 0;
  std::size_t outputs = 0;
  std::string engine = "serial";  ///< "serial" | "parallel"
  std::size_t threads = 1;
  std::uint64_t seed = 0;

  // ---- classification (mirrors AtpgResult) ----
  std::size_t faults = 0;  ///< collapsed fault list size
  std::map<std::string, std::uint64_t> status_counts;  ///< by FaultStatus
  std::map<std::string, std::uint64_t> engine_counts;  ///< by SolveEngine
  std::size_t num_tests = 0;
  std::size_t num_escalated = 0;
  bool interrupted = false;
  double fault_coverage = 0.0;
  double fault_efficiency = 0.0;

  // ---- effort ----
  sat::SolverStats solver;  ///< summed over outcomes (stop_reason unused)
  std::map<std::string, std::uint64_t> stop_reasons;  ///< by StopReason
  std::uint64_t attempts = 0;       ///< total solve attempts incl. ladder
  std::size_t sat_instances = 0;    ///< outcomes that built a SAT instance
  std::size_t max_sat_vars = 0;
  std::size_t max_sat_clauses = 0;
  double solve_seconds = 0.0;       ///< sum of per-fault solve wall-clock
  double wall_seconds = 0.0;        ///< whole-run wall-clock

  // ---- parallel scheduling (zeros for serial runs) ----
  std::uint64_t dispatched = 0;
  std::uint64_t committed = 0;
  std::uint64_t wasted = 0;
  std::uint64_t max_in_flight = 0;
  std::vector<WorkerReport> workers;

  // ---- optional extras ----
  MetricsSnapshot metrics;

  Json to_json() const;
  /// Inverse of to_json(). Unknown keys are ignored; a wrong or missing
  /// schema string throws std::runtime_error.
  static RunReport from_json(const Json& j);

  bool operator==(const RunReport&) const = default;
};

struct ReportOptions {
  std::string label;
  std::string engine = "serial";
  std::size_t threads = 1;
  std::uint64_t seed = 0;
  /// < 0 → take AtpgResult::wall_seconds (stamped by the engines).
  double wall_seconds = -1.0;
  const fault::ParallelStats* parallel = nullptr;  ///< optional
  const MetricsSnapshot* metrics = nullptr;        ///< optional
};

/// Summarizes one ATPG run. Every classification/effort field is derived
/// from `result` alone, so the report is exact whether or not the run was
/// instrumented with a registry or sink.
RunReport build_run_report(const net::Network& net,
                           const fault::AtpgResult& result,
                           const ReportOptions& options = {});

/// Aggregates many runs into one: counts, solver stats, stop reasons and
/// wall-clock add; coverage/efficiency are recomputed from the summed
/// counts; threads takes the max; circuit becomes "<N circuits>" when the
/// names differ. Empty input yields a default RunReport.
RunReport merge_runs(std::span<const RunReport> runs);

}  // namespace cwatpg::obs
