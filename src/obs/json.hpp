// Minimal JSON value, writer and parser.
//
// The observability layer's wire format: RunReports, bench reports and
// JSONL trace events are all serialized through this one class, and the
// round-trip tests parse them back through it, so emit and validate agree
// by construction. Deliberately tiny — no external dependency, no SAX, no
// allocator tricks — because the payloads are run *summaries*, not bulk
// data (the biggest report this repo emits is a few hundred kilobytes).
//
// Fidelity: integers are stored and printed exactly (signed/unsigned
// 64-bit, no silent double conversion — solver counters can exceed 2^53);
// doubles round-trip through max_digits10. Object member order is
// preserved (insertion order), which keeps emitted reports diffable.
//
// Thread-safe: no (a Json is a plain value — share like you would share a
// std::vector).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace cwatpg::obs {

class Json {
 public:
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kInt,     ///< signed 64-bit integer
    kUint,    ///< unsigned 64-bit integer
    kDouble,
    kString,
    kArray,
    kObject,
  };

  Json() = default;  // null
  Json(std::nullptr_t) {}
  Json(bool v) : type_(Type::kBool), bool_(v) {}
  Json(double v) : type_(Type::kDouble), double_(v) {}
  Json(std::int64_t v) : type_(Type::kInt), int_(v) {}
  Json(std::uint64_t v) : type_(Type::kUint), uint_(v) {}
  Json(int v) : Json(static_cast<std::int64_t>(v)) {}
  Json(unsigned v) : Json(static_cast<std::uint64_t>(v)) {}
  Json(std::string v) : type_(Type::kString), string_(std::move(v)) {}
  Json(std::string_view v) : type_(Type::kString), string_(v) {}
  Json(const char* v) : type_(Type::kString), string_(v) {}

  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }
  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kUint ||
           type_ == Type::kDouble;
  }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Scalar accessors. Each throws std::logic_error on a type mismatch;
  /// the numeric ones convert freely between the three number flavors
  /// (as_u64 additionally rejects negatives and non-integral doubles).
  bool as_bool() const;
  double as_double() const;
  std::int64_t as_i64() const;
  std::uint64_t as_u64() const;
  const std::string& as_string() const;

  // ---- array interface -------------------------------------------------
  /// Appends to an array (a null value silently becomes an array first).
  void push_back(Json v);
  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  /// Array element access (throws std::out_of_range).
  const Json& operator[](std::size_t i) const;
  /// Array/object values in order.
  const std::vector<Json>& items() const { return values_; }

  // ---- object interface ------------------------------------------------
  /// Member access; inserts a null member when the key is absent (a null
  /// value silently becomes an object first). Keys keep insertion order.
  Json& operator[](std::string_view key);
  /// Pointer to the member value, or nullptr when absent / not an object.
  const Json* find(std::string_view key) const;
  /// Member value (throws std::out_of_range when absent).
  const Json& at(std::string_view key) const;
  bool contains(std::string_view key) const { return find(key) != nullptr; }
  /// Object keys, parallel to items().
  const std::vector<std::string>& keys() const { return keys_; }

  // ---- serialization ---------------------------------------------------
  /// Serializes. indent < 0 → compact one-line form; indent >= 0 →
  /// pretty-printed with that many spaces per level.
  std::string dump(int indent = -1) const;
  void dump(std::ostream& out, int indent = -1) const;

  /// Default container-nesting cap for parse(). Deep enough for every
  /// report this repo emits (run reports nest ~6 levels) with two orders
  /// of magnitude of headroom, shallow enough that a hostile "[[[[…"
  /// document fails fast instead of exhausting the recursive parser's
  /// stack. Callers on a network edge may pass something tighter
  /// (svc::kMaxFrameDepth does).
  static constexpr std::size_t kDefaultMaxDepth = 256;

  /// Parses a complete JSON document. Untrusted-input hardening: trailing
  /// garbage after the top-level value is rejected, and arrays/objects may
  /// nest at most `max_depth` levels. Throws std::runtime_error with a
  /// byte offset on malformed input (including a depth violation).
  static Json parse(std::string_view text,
                    std::size_t max_depth = kDefaultMaxDepth);

  bool operator==(const Json& other) const;

 private:
  void dump_impl(std::ostream& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<std::string> keys_;  ///< object keys (empty for arrays)
  std::vector<Json> values_;       ///< array elements or object values
};

/// Writes `text` with JSON string escaping (quotes included).
void write_json_string(std::ostream& out, std::string_view text);

}  // namespace cwatpg::obs
