#include "gen/suites.hpp"

#include <algorithm>

#include "gen/hutton.hpp"
#include "gen/structured.hpp"
#include "gen/trees.hpp"
#include "netlist/decompose.hpp"

namespace cwatpg::gen {
namespace {

std::size_t scaled(double scale, std::size_t value,
                   std::size_t minimum = 2) {
  return std::max(minimum,
                  static_cast<std::size_t>(scale * static_cast<double>(value)));
}

net::Network prep(net::Network circuit, const std::string& name) {
  net::Network out = net::decompose(circuit);
  out.set_name(name);
  return out;
}

}  // namespace

std::vector<net::Network> iscas85_like_suite(const SuiteOptions& opts) {
  const double s = opts.scale;
  std::vector<net::Network> suite;

  // c432-like: interrupt-controller-style random control logic.
  HuttonParams h432;
  h432.num_gates = scaled(s, 170, 8);
  h432.num_inputs = std::max<std::size_t>(4, scaled(s, 36, 4));
  h432.num_outputs = 7;
  h432.locality = 0.96;
  h432.seed = opts.seed + 1;
  suite.push_back(prep(hutton_random(h432), "s432"));

  // c499-like: 32-bit SEC circuit (overlapping XOR cones).
  suite.push_back(prep(hamming_ecc(scaled(s, 32, 8)), "s499"));

  // c880-like: 8-bit ALU.
  suite.push_back(prep(simple_alu(scaled(s, 8, 2)), "s880"));

  // c1355-like: the same SEC function, wider.
  suite.push_back(prep(hamming_ecc(scaled(s, 40, 8)), "s1355"));

  // c1908-like: 16-bit SEC/DED.
  suite.push_back(prep(hamming_ecc(scaled(s, 48, 8)), "s1908"));

  // c2670-like: 12-bit ALU plus control glue.
  suite.push_back(prep(simple_alu(scaled(s, 12, 2)), "s2670a"));
  HuttonParams h2670;
  h2670.num_gates = scaled(s, 700, 16);
  h2670.num_inputs = std::max<std::size_t>(6, scaled(s, 80, 6));
  h2670.num_outputs = scaled(s, 40, 2);
  h2670.locality = 0.96;
  h2670.seed = opts.seed + 2;
  suite.push_back(prep(hutton_random(h2670), "s2670b"));

  // c5315-like: 9-bit ALU scaled up with selection trees.
  suite.push_back(prep(carry_select_adder(scaled(s, 48, 4),
                                          std::max<std::size_t>(2, scaled(s, 6, 2))),
                       "s5315"));

  // c7552-like: 32-bit adder/comparator mix.
  suite.push_back(prep(comparator(scaled(s, 64, 4)), "s7552"));

  return suite;
}

std::vector<net::Network> mcnc_like_suite(const SuiteOptions& opts) {
  const double s = opts.scale;
  std::vector<net::Network> suite;
  auto add = [&](net::Network circuit, const std::string& name) {
    suite.push_back(prep(std::move(circuit), name));
  };

  // Arithmetic.
  add(ripple_carry_adder(scaled(s, 8)), "add8");
  add(ripple_carry_adder(scaled(s, 16)), "add16");
  add(ripple_carry_adder(scaled(s, 32)), "add32");
  add(ripple_carry_adder(scaled(s, 64)), "add64");
  add(carry_select_adder(scaled(s, 16), 4), "csel16");
  add(carry_select_adder(scaled(s, 32), 8), "csel32");
  add(array_multiplier(std::clamp<std::size_t>(scaled(s, 4), 2, 16)), "mul4");
  add(simple_alu(scaled(s, 4)), "alu4");
  add(simple_alu(scaled(s, 8)), "alu8");

  // Selection / decode.
  add(decoder(std::clamp<std::size_t>(scaled(s, 3), 2, 8)), "dec3");
  add(decoder(std::clamp<std::size_t>(scaled(s, 4), 2, 8)), "dec4");
  add(mux_tree(std::clamp<std::size_t>(scaled(s, 3), 2, 8)), "mux8");
  add(mux_tree(std::clamp<std::size_t>(scaled(s, 4), 2, 8)), "mux16");

  // Parity / compare.
  add(parity_tree(scaled(s, 8)), "par8");
  add(parity_tree(scaled(s, 16)), "par16");
  add(parity_tree(scaled(s, 32)), "par32");
  add(parity_tree(scaled(s, 64)), "par64");
  add(parity_tree(scaled(s, 128)), "par128");
  add(comparator(scaled(s, 8)), "cmp8");
  add(comparator(scaled(s, 16)), "cmp16");
  add(comparator(scaled(s, 32)), "cmp32");
  add(comparator(scaled(s, 64)), "cmp64");
  add(hamming_ecc(scaled(s, 16, 8)), "ecc16");
  add(hamming_ecc(scaled(s, 24, 8)), "ecc24");

  // Cellular arrays (Fujiwara's k-bounded families).
  add(cellular_array_1d(scaled(s, 16)), "cell16");
  add(cellular_array_1d(scaled(s, 32)), "cell32");
  add(cellular_array_1d(scaled(s, 96)), "cell96");
  add(cellular_array_2d(scaled(s, 4), scaled(s, 4)), "grid4x4");
  add(cellular_array_2d(scaled(s, 8), scaled(s, 8)), "grid8x8");

  // Trees.
  add(and_or_tree(scaled(s, 16)), "tree16");
  add(and_or_tree(scaled(s, 64)), "tree64");
  add(and_or_tree(scaled(s, 256)), "tree256");
  add(and_or_tree(scaled(s, 768)), "tree768");
  add(random_tree(scaled(s, 60), 3, opts.seed + 11), "rtree60");
  add(random_tree(scaled(s, 200), 3, opts.seed + 12), "rtree200");
  add(random_tree(scaled(s, 600), 3, opts.seed + 13), "rtree600");

  // Random logic (Hutton) across sizes and wiring localities.
  struct Shape {
    std::size_t gates, ins, outs;
    double locality;
  };
  const Shape shapes[] = {
      {40, 8, 4, 0.98},   {80, 12, 6, 0.97},  {120, 16, 8, 0.97},
      {200, 24, 10, 0.96},{300, 32, 12, 0.97},{450, 44, 16, 0.96},
      {600, 56, 20, 0.97},{800, 72, 24, 0.96},{1000, 90, 30, 0.97},
      {1400, 120, 40, 0.96},{250, 24, 10, 0.88},
  };
  int index = 0;
  for (const Shape& shape : shapes) {
    HuttonParams p;
    p.num_gates = scaled(s, shape.gates, 8);
    p.num_inputs = std::max<std::size_t>(4, scaled(s, shape.ins, 4));
    p.num_outputs = std::max<std::size_t>(2, scaled(s, shape.outs, 2));
    p.locality = shape.locality;
    p.seed = opts.seed + 100 + static_cast<std::uint64_t>(index);
    add(hutton_random(p), "rand" + std::to_string(index++));
  }

  // The one genuine suite member we can embed.
  suite.push_back(prep(c17(), "c17"));
  return suite;
}

}  // namespace cwatpg::gen
