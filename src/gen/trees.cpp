#include "gen/trees.hpp"

#include <string>
#include <vector>

#include "netlist/bench_io.hpp"
#include "util/rng.hpp"

namespace cwatpg::gen {

using net::GateType;
using net::Network;
using net::NodeId;

namespace {

/// Builds a random subtree with ~`budget` gates, returning its root.
NodeId grow_subtree(Network& n, std::size_t budget, std::size_t max_arity,
                    Rng& rng, std::size_t& pi_counter) {
  if (budget == 0) {
    return n.add_input("x" + std::to_string(pi_counter++));
  }
  if (rng.chance(0.15)) {
    const NodeId child =
        grow_subtree(n, budget - 1, max_arity, rng, pi_counter);
    return n.add_gate(GateType::kNot, {child});
  }
  const auto arity = static_cast<std::size_t>(rng.range(
      2, static_cast<std::int64_t>(std::max<std::size_t>(max_arity, 2))));
  std::vector<NodeId> children;
  std::size_t remaining = budget - 1;
  for (std::size_t i = 0; i < arity; ++i) {
    const std::size_t share =
        i + 1 == arity ? remaining
                       : rng.below(remaining + 1);
    children.push_back(grow_subtree(n, share, max_arity, rng, pi_counter));
    remaining -= share;
  }
  return n.add_gate(rng.chance(0.5) ? GateType::kAnd : GateType::kOr,
                    std::move(children));
}

}  // namespace

Network random_tree(std::size_t num_gates, std::size_t max_arity,
                    std::uint64_t seed) {
  Network n;
  n.set_name("rtree" + std::to_string(num_gates) + "_" +
             std::to_string(seed));
  Rng rng(seed);
  std::size_t pi_counter = 0;
  const NodeId root = grow_subtree(n, num_gates, max_arity, rng, pi_counter);
  n.add_output(root, "root");
  return n;
}

sat::Cnf formula41() {
  using sat::neg;
  using sat::pos;
  sat::Cnf cnf(9);
  // f = NAND(b, ~c)
  cnf.add_clause({pos(kB), pos(kF)});
  cnf.add_clause({neg(kC), pos(kF)});
  cnf.add_clause({neg(kB), pos(kC), neg(kF)});
  // g = NAND(d, e)
  cnf.add_clause({pos(kD), pos(kG)});
  cnf.add_clause({pos(kE), pos(kG)});
  cnf.add_clause({neg(kD), neg(kE), neg(kG)});
  // h = AND(a, f)
  cnf.add_clause({pos(kA), neg(kH)});
  cnf.add_clause({pos(kF), neg(kH)});
  cnf.add_clause({neg(kA), neg(kF), pos(kH)});
  // i = AND(h, g)
  cnf.add_clause({pos(kH), neg(kI)});
  cnf.add_clause({pos(kG), neg(kI)});
  cnf.add_clause({neg(kH), neg(kG), pos(kI)});
  // Output clause.
  cnf.add_clause({pos(kI)});
  return cnf;
}

net::Hypergraph fig4a_hypergraph() {
  net::Hypergraph hg;
  hg.num_vertices = 9;
  hg.edges = {
      {kB, kF}, {kC, kF},           // inputs of f
      {kD, kG}, {kE, kG},           // inputs of g
      {kA, kH}, {kF, kH},           // inputs of h
      {kH, kI}, {kG, kI},           // inputs of i
  };
  return hg;
}

std::vector<net::NodeId> fig4a_ordering_a() {
  return {kB, kC, kF, kA, kH, kD, kE, kG, kI};
}

std::vector<net::NodeId> fig4a_ordering_b() {
  return {kA, kB, kC, kD, kE, kF, kG, kH, kI};
}

net::Network fig4a_network() {
  Network n;
  n.set_name("fig4a");
  const NodeId a = n.add_input("a");
  const NodeId b = n.add_input("b");
  const NodeId c = n.add_input("c");
  const NodeId d = n.add_input("d");
  const NodeId e = n.add_input("e");
  // f = NAND(b, ~c) = ~b | c
  const NodeId nb = n.add_gate(GateType::kNot, {b});
  const NodeId f = n.add_gate(GateType::kOr, {nb, c}, "f");
  const NodeId g = n.add_gate(GateType::kNand, {d, e}, "g");
  const NodeId h = n.add_gate(GateType::kAnd, {a, f}, "h");
  const NodeId i = n.add_gate(GateType::kAnd, {h, g}, "i");
  n.add_output(i, "out");
  return n;
}

net::Network c17() {
  static const char* kText = R"(# c17 (ISCAS85)
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
)";
  return net::read_bench_string(kText, "c17");
}

}  // namespace cwatpg::gen
