#include "gen/structured.hpp"

#include "netlist/simplify.hpp"

#include <stdexcept>
#include <string>
#include <vector>

namespace cwatpg::gen {
namespace {

using net::GateType;
using net::Network;
using net::NodeId;

/// Full adder on (a, b, cin) -> (sum, cout) in AND/OR/XOR primitives.
struct FullAdder {
  NodeId sum;
  NodeId cout;
};
FullAdder full_adder(Network& n, NodeId a, NodeId b, NodeId cin) {
  const NodeId axb = n.add_gate(GateType::kXor, {a, b});
  const NodeId sum = n.add_gate(GateType::kXor, {axb, cin});
  const NodeId ab = n.add_gate(GateType::kAnd, {a, b});
  const NodeId axb_c = n.add_gate(GateType::kAnd, {axb, cin});
  const NodeId cout = n.add_gate(GateType::kOr, {ab, axb_c});
  return {sum, cout};
}

NodeId mux2(Network& n, NodeId sel, NodeId when0, NodeId when1) {
  const NodeId ns = n.add_gate(GateType::kNot, {sel});
  const NodeId t0 = n.add_gate(GateType::kAnd, {ns, when0});
  const NodeId t1 = n.add_gate(GateType::kAnd, {sel, when1});
  return n.add_gate(GateType::kOr, {t0, t1});
}

void require(bool ok, const char* message) {
  if (!ok) throw std::invalid_argument(message);
}

}  // namespace

Network ripple_carry_adder(std::size_t bits) {
  require(bits >= 1, "ripple_carry_adder: bits >= 1");
  Network n;
  n.set_name("rca" + std::to_string(bits));
  std::vector<NodeId> a(bits), b(bits);
  for (std::size_t i = 0; i < bits; ++i) a[i] = n.add_input("a" + std::to_string(i));
  for (std::size_t i = 0; i < bits; ++i) b[i] = n.add_input("b" + std::to_string(i));
  NodeId carry = n.add_input("cin");
  for (std::size_t i = 0; i < bits; ++i) {
    const FullAdder fa = full_adder(n, a[i], b[i], carry);
    n.add_output(fa.sum, "s" + std::to_string(i));
    carry = fa.cout;
  }
  n.add_output(carry, "cout");
  return n;
}

Network carry_select_adder(std::size_t bits, std::size_t block) {
  require(bits >= 1 && block >= 1, "carry_select_adder: sizes >= 1");
  Network n;
  n.set_name("csa" + std::to_string(bits) + "_" + std::to_string(block));
  std::vector<NodeId> a(bits), b(bits);
  for (std::size_t i = 0; i < bits; ++i) a[i] = n.add_input("a" + std::to_string(i));
  for (std::size_t i = 0; i < bits; ++i) b[i] = n.add_input("b" + std::to_string(i));
  NodeId carry = n.add_input("cin");

  for (std::size_t base = 0; base < bits; base += block) {
    const std::size_t end = std::min(base + block, bits);
    if (base == 0) {
      // First block: plain ripple.
      for (std::size_t i = base; i < end; ++i) {
        const FullAdder fa = full_adder(n, a[i], b[i], carry);
        n.add_output(fa.sum, "s" + std::to_string(i));
        carry = fa.cout;
      }
      continue;
    }
    // Two speculative ripples (cin=0 / cin=1), then select.
    const NodeId zero = n.add_const(false);
    const NodeId one = n.add_const(true);
    NodeId c0 = zero, c1 = one;
    std::vector<NodeId> s0, s1;
    for (std::size_t i = base; i < end; ++i) {
      const FullAdder f0 = full_adder(n, a[i], b[i], c0);
      const FullAdder f1 = full_adder(n, a[i], b[i], c1);
      s0.push_back(f0.sum);
      s1.push_back(f1.sum);
      c0 = f0.cout;
      c1 = f1.cout;
    }
    for (std::size_t i = base; i < end; ++i)
      n.add_output(mux2(n, carry, s0[i - base], s1[i - base]),
                   "s" + std::to_string(i));
    carry = mux2(n, carry, c0, c1);
  }
  n.add_output(carry, "cout");
  return net::simplify(n);
}

Network decoder(std::size_t address_bits) {
  require(address_bits >= 1 && address_bits <= 12, "decoder: 1..12 bits");
  Network n;
  n.set_name("dec" + std::to_string(address_bits));
  std::vector<NodeId> addr(address_bits), naddr(address_bits);
  for (std::size_t i = 0; i < address_bits; ++i)
    addr[i] = n.add_input("a" + std::to_string(i));
  const NodeId enable = n.add_input("en");
  for (std::size_t i = 0; i < address_bits; ++i)
    naddr[i] = n.add_gate(GateType::kNot, {addr[i]});
  const std::size_t lines = std::size_t{1} << address_bits;
  for (std::size_t line = 0; line < lines; ++line) {
    std::vector<NodeId> terms{enable};
    for (std::size_t i = 0; i < address_bits; ++i)
      terms.push_back((line >> i) & 1 ? addr[i] : naddr[i]);
    n.add_output(n.add_gate(GateType::kAnd, std::move(terms)),
                 "y" + std::to_string(line));
  }
  return n;
}

Network mux_tree(std::size_t select_bits) {
  require(select_bits >= 1 && select_bits <= 10, "mux_tree: 1..10 bits");
  Network n;
  n.set_name("mux" + std::to_string(std::size_t{1} << select_bits));
  const std::size_t ways = std::size_t{1} << select_bits;
  std::vector<NodeId> data(ways), sel(select_bits);
  for (std::size_t i = 0; i < ways; ++i)
    data[i] = n.add_input("d" + std::to_string(i));
  for (std::size_t i = 0; i < select_bits; ++i)
    sel[i] = n.add_input("s" + std::to_string(i));
  std::vector<NodeId> layer = data;
  for (std::size_t level = 0; level < select_bits; ++level) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2)
      next.push_back(mux2(n, sel[level], layer[i], layer[i + 1]));
    layer = std::move(next);
  }
  n.add_output(layer[0], "y");
  return n;
}

Network parity_tree(std::size_t width, std::size_t arity) {
  require(width >= 2 && arity >= 2, "parity_tree: width/arity >= 2");
  Network n;
  n.set_name("par" + std::to_string(width));
  std::vector<NodeId> layer(width);
  for (std::size_t i = 0; i < width; ++i)
    layer[i] = n.add_input("x" + std::to_string(i));
  while (layer.size() > 1) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i < layer.size(); i += arity) {
      const std::size_t end = std::min(i + arity, layer.size());
      if (end - i == 1) {
        next.push_back(layer[i]);
      } else {
        next.push_back(n.add_gate(
            GateType::kXor,
            std::vector<NodeId>(layer.begin() + static_cast<std::ptrdiff_t>(i),
                                layer.begin() + static_cast<std::ptrdiff_t>(end))));
      }
    }
    layer = std::move(next);
  }
  n.add_output(layer[0], "parity");
  return n;
}

Network comparator(std::size_t bits) {
  require(bits >= 1, "comparator: bits >= 1");
  Network n;
  n.set_name("cmp" + std::to_string(bits));
  std::vector<NodeId> a(bits), b(bits);
  for (std::size_t i = 0; i < bits; ++i) a[i] = n.add_input("a" + std::to_string(i));
  for (std::size_t i = 0; i < bits; ++i) b[i] = n.add_input("b" + std::to_string(i));
  // MSB-first iterative: eq so far, lt so far.
  NodeId eq = net::kNullNode, lt = net::kNullNode;
  for (std::size_t i = bits; i-- > 0;) {
    const NodeId bit_eq =
        n.add_gate(GateType::kXnor, {a[i], b[i]});
    const NodeId na = n.add_gate(GateType::kNot, {a[i]});
    const NodeId bit_lt = n.add_gate(GateType::kAnd, {na, b[i]});
    if (eq == net::kNullNode) {
      eq = bit_eq;
      lt = bit_lt;
    } else {
      const NodeId lt_here = n.add_gate(GateType::kAnd, {eq, bit_lt});
      lt = n.add_gate(GateType::kOr, {lt, lt_here});
      eq = n.add_gate(GateType::kAnd, {eq, bit_eq});
    }
  }
  const NodeId ge = n.add_gate(GateType::kNot, {lt});
  const NodeId ne = n.add_gate(GateType::kNot, {eq});
  const NodeId gt = n.add_gate(GateType::kAnd, {ge, ne});
  n.add_output(lt, "lt");
  n.add_output(eq, "eq");
  n.add_output(gt, "gt");
  return n;
}

Network array_multiplier(std::size_t bits) {
  require(bits >= 2 && bits <= 64, "array_multiplier: 2..64 bits");
  Network n;
  n.set_name("mul" + std::to_string(bits));
  std::vector<NodeId> a(bits), b(bits);
  for (std::size_t i = 0; i < bits; ++i) a[i] = n.add_input("a" + std::to_string(i));
  for (std::size_t i = 0; i < bits; ++i) b[i] = n.add_input("b" + std::to_string(i));

  // Partial products pp[i][j] = a[j] & b[i].
  // Row-by-row carry-save accumulation; final ripple for the top carries.
  std::vector<NodeId> sum(bits, net::kNullNode);   // running sum bits
  std::vector<NodeId> carry(bits, net::kNullNode); // carries into next row
  const NodeId zero = n.add_const(false);

  std::vector<NodeId> product;
  for (std::size_t i = 0; i < bits; ++i) {
    std::vector<NodeId> pp(bits);
    for (std::size_t j = 0; j < bits; ++j)
      pp[j] = n.add_gate(GateType::kAnd, {a[j], b[i]});
    if (i == 0) {
      for (std::size_t j = 0; j < bits; ++j) sum[j] = pp[j];
      for (std::size_t j = 0; j < bits; ++j) carry[j] = zero;
      product.push_back(sum[0]);
      continue;
    }
    std::vector<NodeId> new_sum(bits), new_carry(bits);
    for (std::size_t j = 0; j < bits; ++j) {
      const NodeId shifted = j + 1 < bits ? sum[j + 1] : zero;
      const FullAdder fa = full_adder(n, pp[j], shifted, carry[j]);
      new_sum[j] = fa.sum;
      new_carry[j] = fa.cout;
    }
    sum = std::move(new_sum);
    carry = std::move(new_carry);
    product.push_back(sum[0]);
  }
  // Final row: ripple the remaining sum+carry.
  NodeId c = zero;
  for (std::size_t j = 0; j + 1 < bits; ++j) {
    const FullAdder fa = full_adder(n, sum[j + 1], carry[j], c);
    product.push_back(fa.sum);
    c = fa.cout;
  }
  const FullAdder top = full_adder(n, zero, carry[bits - 1], c);
  product.push_back(top.sum);
  for (std::size_t i = 0; i < product.size(); ++i)
    n.add_output(product[i], "p" + std::to_string(i));
  // Row-seeding constants leave redundant gates behind; fold them away so
  // the multiplier is irredundant (fully testable) by construction.
  return net::simplify(n);
}

Network cellular_array_1d(std::size_t cells) {
  require(cells >= 1, "cellular_array_1d: cells >= 1");
  Network n;
  n.set_name("cell1d_" + std::to_string(cells));
  NodeId state = n.add_input("s0");
  for (std::size_t i = 0; i < cells; ++i) {
    const NodeId x = n.add_input("x" + std::to_string(i));
    // Cell: next = (state XOR x) OR (state AND x) built from AND/OR/NOT.
    const NodeId both = n.add_gate(GateType::kAnd, {state, x});
    const NodeId either = n.add_gate(GateType::kOr, {state, x});
    const NodeId nboth = n.add_gate(GateType::kNot, {both});
    const NodeId diff = n.add_gate(GateType::kAnd, {either, nboth});
    n.add_output(diff, "y" + std::to_string(i));
    state = n.add_gate(GateType::kOr, {both, diff});
  }
  n.add_output(state, "sN");
  return n;
}

Network cellular_array_2d(std::size_t rows, std::size_t cols) {
  require(rows >= 1 && cols >= 1, "cellular_array_2d: sizes >= 1");
  Network n;
  n.set_name("cell2d_" + std::to_string(rows) + "x" + std::to_string(cols));
  std::vector<NodeId> north(cols);
  for (std::size_t c = 0; c < cols; ++c)
    north[c] = n.add_input("n" + std::to_string(c));
  for (std::size_t r = 0; r < rows; ++r) {
    NodeId west = n.add_input("w" + std::to_string(r));
    for (std::size_t c = 0; c < cols; ++c) {
      const NodeId both = n.add_gate(GateType::kAnd, {north[c], west});
      const NodeId either = n.add_gate(GateType::kOr, {north[c], west});
      west = both;       // east output
      north[c] = either; // south output
    }
    n.add_output(west, "e" + std::to_string(r));
  }
  for (std::size_t c = 0; c < cols; ++c)
    n.add_output(north[c], "s" + std::to_string(c));
  return n;
}

Network and_or_tree(std::size_t leaves, std::size_t arity) {
  require(leaves >= 2 && arity >= 2, "and_or_tree: leaves/arity >= 2");
  Network n;
  n.set_name("tree" + std::to_string(leaves));
  std::vector<NodeId> layer(leaves);
  for (std::size_t i = 0; i < leaves; ++i)
    layer[i] = n.add_input("x" + std::to_string(i));
  bool use_and = true;
  while (layer.size() > 1) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i < layer.size(); i += arity) {
      const std::size_t end = std::min(i + arity, layer.size());
      if (end - i == 1) {
        next.push_back(layer[i]);
      } else {
        next.push_back(n.add_gate(
            use_and ? GateType::kAnd : GateType::kOr,
            std::vector<NodeId>(layer.begin() + static_cast<std::ptrdiff_t>(i),
                                layer.begin() + static_cast<std::ptrdiff_t>(end))));
      }
    }
    layer = std::move(next);
    use_and = !use_and;
  }
  n.add_output(layer[0], "root");
  return n;
}

Network simple_alu(std::size_t bits) {
  require(bits >= 1, "simple_alu: bits >= 1");
  Network n;
  n.set_name("alu" + std::to_string(bits));
  std::vector<NodeId> a(bits), b(bits);
  for (std::size_t i = 0; i < bits; ++i) a[i] = n.add_input("a" + std::to_string(i));
  for (std::size_t i = 0; i < bits; ++i) b[i] = n.add_input("b" + std::to_string(i));
  const NodeId op0 = n.add_input("op0");
  const NodeId op1 = n.add_input("op1");

  NodeId carry = n.add_const(false);
  for (std::size_t i = 0; i < bits; ++i) {
    const FullAdder fa = full_adder(n, a[i], b[i], carry);
    carry = fa.cout;
    const NodeId land = n.add_gate(GateType::kAnd, {a[i], b[i]});
    const NodeId lor = n.add_gate(GateType::kOr, {a[i], b[i]});
    const NodeId lxor = n.add_gate(GateType::kXor, {a[i], b[i]});
    const NodeId lo = mux2(n, op0, fa.sum, land);
    const NodeId hi = mux2(n, op0, lor, lxor);
    n.add_output(mux2(n, op1, lo, hi), "y" + std::to_string(i));
  }
  n.add_output(carry, "cout");
  return net::simplify(n);
}

Network hamming_ecc(std::size_t data_bits) {
  require(data_bits >= 4, "hamming_ecc: data_bits >= 4");
  Network n;
  n.set_name("ecc" + std::to_string(data_bits));
  std::vector<NodeId> d(data_bits);
  for (std::size_t i = 0; i < data_bits; ++i)
    d[i] = n.add_input("d" + std::to_string(i));

  std::size_t parity_count = 1;
  while ((std::size_t{1} << parity_count) < data_bits + parity_count + 1)
    ++parity_count;
  ++parity_count;  // overall parity

  // Parity tree p[j] over the data bits whose (1-based) position has bit j
  // set — the classic overlapping-subsets structure.
  std::vector<NodeId> syndrome;
  for (std::size_t j = 0; j < parity_count; ++j) {
    std::vector<NodeId> members;
    for (std::size_t i = 0; i < data_bits; ++i)
      if (j + 1 == parity_count || ((i + 1) >> j) & 1) members.push_back(d[i]);
    if (members.size() < 2) members.push_back(d[j % data_bits]);
    // Balanced 2-input XOR tree.
    std::vector<NodeId> layer = members;
    while (layer.size() > 1) {
      std::vector<NodeId> next;
      for (std::size_t i = 0; i + 1 < layer.size(); i += 2)
        next.push_back(n.add_gate(GateType::kXor, {layer[i], layer[i + 1]}));
      if (layer.size() % 2) next.push_back(layer.back());
      layer = std::move(next);
    }
    syndrome.push_back(layer[0]);
    n.add_output(layer[0], "p" + std::to_string(j));
  }

  // Per-bit corrected output: data XOR (syndrome decodes to this position).
  for (std::size_t i = 0; i < data_bits; ++i) {
    std::vector<NodeId> terms;
    for (std::size_t j = 0; j + 1 < parity_count; ++j) {
      const bool want = ((i + 1) >> j) & 1;
      terms.push_back(want ? syndrome[j]
                           : n.add_gate(GateType::kNot, {syndrome[j]}));
    }
    const NodeId here = terms.size() == 1
                            ? terms[0]
                            : n.add_gate(GateType::kAnd, std::move(terms));
    n.add_output(n.add_gate(GateType::kXor, {d[i], here}),
                 "c" + std::to_string(i));
  }
  return n;
}

}  // namespace cwatpg::gen
