// Hutton-style parameterized random circuit generation (circ/gen, [14]).
//
// Used for §5.2.3: "artificially generated circuits, parameterized to
// topologically resemble circuits from the MCNC91 and ISCAS85 suites",
// letting the cut-width-vs-size trend be examined at sizes far beyond the
// benchmark suites. The generator reproduces the knobs that matter for
// cut-width: a levelized shape profile (gates per level), a bounded-fanin /
// geometric-fanout wiring model, and an edge-length *locality* parameter —
// local wiring yields tree-like, low-reconvergence circuits; long wiring
// injects the deep reconvergence that drives cut-width up.
#pragma once

#include <cstdint>

#include "netlist/network.hpp"

namespace cwatpg::gen {

struct HuttonParams {
  std::size_t num_gates = 200;
  std::size_t num_inputs = 16;
  std::size_t num_outputs = 8;
  std::size_t max_fanin = 3;
  /// In [0,1]: probability that a fanin consumes a spatially nearby open
  /// signal (tree growth / local reconvergence) rather than re-using a
  /// primary input or a long wire. Higher = more tree-like = smaller
  /// cut-width.
  double locality = 0.9;
  /// When false, long (global) wires are capped at an O(log n) budget —
  /// the regime the paper observes in real suites. When true the cap is
  /// lifted and every non-local fanin may be a global wire, reproducing
  /// the unboundedly reconvergent circuits where cut-width (and ATPG)
  /// blows up.
  bool unbounded_reconvergence = false;
  std::uint64_t seed = 1;
};

/// Generates a connected, levelized random circuit. Every gate lies on a
/// path to some primary output (dangling gates are tapped as outputs).
net::Network hutton_random(const HuttonParams& params);

}  // namespace cwatpg::gen
