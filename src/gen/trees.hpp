// Random tree circuits (for Lemma 5.2) and the paper's worked example.
//
// fig4a_* reproduce the circuit of Figure 4(a) exactly at the level the
// paper works with it: variables a..i (indices 0..8), Formula 4.1, the
// signal hypergraph of Figure 6, and the orderings A (cut-width 3) and B.
// Because the paper folds input inverters into the gate clauses, the CNF
// and hypergraph are provided directly rather than via encode_circuit_sat;
// fig4a_network() additionally gives a functionally equivalent Network
// (with explicit inverters) for flows that need one.
#pragma once

#include <cstdint>

#include "netlist/hypergraph.hpp"
#include "netlist/network.hpp"
#include "sat/cnf.hpp"

namespace cwatpg::gen {

/// Random tree circuit: `num_gates` AND/OR/NOT gates, each gate's output
/// consumed by exactly one later gate (fanout 1), gate arity in
/// [2, max_arity] (NOT sprinkled with probability ~0.15), one output.
/// Satisfies core::is_tree_circuit.
net::Network random_tree(std::size_t num_gates, std::size_t max_arity,
                         std::uint64_t seed);

// -- Figure 4(a) worked example ---------------------------------------------

/// Variable indices for the example: a=0, b=1, ..., i=8.
enum Fig4Var : sat::Var {
  kA = 0, kB, kC, kD, kE, kF, kG, kH, kI,
};

/// Formula 4.1: the CIRCUIT-SAT CNF of the Figure 4(a) circuit
/// (f = NAND(b, ~c), g = NAND(d, e), h = AND(a, f), i = AND(h, g),
/// output clause (i)).
sat::Cnf formula41();

/// The signal hypergraph of the example (Figure 6): 9 vertices, one
/// two-point edge per internal net.
net::Hypergraph fig4a_hypergraph();

/// Ordering A of Figure 5/6: b, c, f, a, h, d, e, g, i — cut-width 3.
std::vector<net::NodeId> fig4a_ordering_a();
/// Ordering B of Figure 6 (alphabetical) — cut-width 5.
std::vector<net::NodeId> fig4a_ordering_b();

/// Gate-level Network equivalent of Figure 4(a) (explicit inverters).
net::Network fig4a_network();

/// The genuine ISCAS85 c17 benchmark (6 NAND gates) — the one real suite
/// member small enough to embed verbatim.
net::Network c17();

}  // namespace cwatpg::gen
