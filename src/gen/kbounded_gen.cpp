#include "gen/kbounded_gen.hpp"

#include <stdexcept>
#include <string>

#include "util/rng.hpp"

namespace cwatpg::gen {

using net::GateType;
using net::NodeId;

namespace {

/// Assigns node -> block, growing the table as nodes are created.
class BlockTagger {
 public:
  explicit BlockTagger(const net::Network& n) : net_(n) {}

  void tag(NodeId node, std::uint32_t block) {
    if (block_of_.size() < net_.node_count())
      block_of_.resize(net_.node_count(), 0);
    block_of_[node] = block;
    num_blocks_ = std::max(num_blocks_, block + 1);
  }

  /// Tags every node created since `first` (inclusive).
  void tag_range(NodeId first, std::uint32_t block) {
    for (NodeId v = first; v < net_.node_count(); ++v) tag(v, block);
  }

  KBoundedInstance finish(net::Network circuit, std::uint32_t k) {
    block_of_.resize(circuit.node_count(), 0);
    return {std::move(circuit), std::move(block_of_), num_blocks_, k};
  }

 private:
  const net::Network& net_;
  std::vector<std::uint32_t> block_of_;
  std::uint32_t num_blocks_ = 0;
};

}  // namespace

KBoundedInstance kbounded_adder(std::size_t bits) {
  if (bits == 0) throw std::invalid_argument("kbounded_adder: bits >= 1");
  net::Network n;
  n.set_name("kb_rca" + std::to_string(bits));
  BlockTagger tagger(n);
  std::uint32_t next_block = 0;

  std::vector<NodeId> a(bits), b(bits);
  for (std::size_t i = 0; i < bits; ++i) {
    a[i] = n.add_input("a" + std::to_string(i));
    tagger.tag(a[i], next_block++);
  }
  for (std::size_t i = 0; i < bits; ++i) {
    b[i] = n.add_input("b" + std::to_string(i));
    tagger.tag(b[i], next_block++);
  }
  NodeId carry = n.add_input("cin");
  tagger.tag(carry, next_block++);

  for (std::size_t i = 0; i < bits; ++i) {
    const NodeId first = static_cast<NodeId>(n.node_count());
    const NodeId axb = n.add_gate(GateType::kXor, {a[i], b[i]});
    const NodeId sum = n.add_gate(GateType::kXor, {axb, carry});
    const NodeId ab = n.add_gate(GateType::kAnd, {a[i], b[i]});
    const NodeId axb_c = n.add_gate(GateType::kAnd, {axb, carry});
    const NodeId cout = n.add_gate(GateType::kOr, {ab, axb_c});
    n.add_output(sum, "s" + std::to_string(i));
    carry = cout;
    tagger.tag_range(first, next_block++);
  }
  {
    const NodeId first = static_cast<NodeId>(n.node_count());
    n.add_output(carry, "cout");
    tagger.tag_range(first, next_block - 1);  // marker joins the last stage
  }
  return tagger.finish(std::move(n), 3);
}

KBoundedInstance kbounded_cellular(std::size_t cells) {
  if (cells == 0)
    throw std::invalid_argument("kbounded_cellular: cells >= 1");
  net::Network n;
  n.set_name("kb_cell" + std::to_string(cells));
  BlockTagger tagger(n);
  std::uint32_t next_block = 0;

  NodeId state = n.add_input("s0");
  tagger.tag(state, next_block++);
  std::vector<NodeId> xs(cells);
  for (std::size_t i = 0; i < cells; ++i) {
    xs[i] = n.add_input("x" + std::to_string(i));
    tagger.tag(xs[i], next_block++);
  }
  for (std::size_t i = 0; i < cells; ++i) {
    const NodeId first = static_cast<NodeId>(n.node_count());
    const NodeId both = n.add_gate(GateType::kAnd, {state, xs[i]});
    const NodeId either = n.add_gate(GateType::kOr, {state, xs[i]});
    const NodeId nboth = n.add_gate(GateType::kNot, {both});
    const NodeId diff = n.add_gate(GateType::kAnd, {either, nboth});
    n.add_output(diff, "y" + std::to_string(i));
    state = n.add_gate(GateType::kOr, {both, diff});
    tagger.tag_range(first, next_block++);
  }
  {
    const NodeId first = static_cast<NodeId>(n.node_count());
    n.add_output(state, "sN");
    tagger.tag_range(first, next_block - 1);
  }
  return tagger.finish(std::move(n), 2);
}

KBoundedInstance kbounded_random(std::size_t blocks, std::size_t block_gates,
                                 std::uint32_t k, std::uint64_t seed) {
  if (blocks == 0 || block_gates == 0 || k < 1)
    throw std::invalid_argument("kbounded_random: degenerate parameters");
  Rng rng(seed);
  net::Network n;
  n.set_name("kb_rand" + std::to_string(blocks) + "x" +
             std::to_string(block_gates));
  BlockTagger tagger(n);
  std::uint32_t next_block = 0;

  // Outputs of finished blocks not yet consumed by another block.
  std::vector<NodeId> open_outputs;

  for (std::size_t bi = 0; bi < blocks; ++bi) {
    // Pick up to k inputs: unconsumed block outputs first (each used at
    // most once => block DAG is an in-forest), fresh PIs to fill up.
    std::vector<NodeId> inputs;
    const std::size_t want =
        1 + rng.below(k);  // 1..k inputs
    while (inputs.size() < want && !open_outputs.empty() &&
           rng.chance(0.7)) {
      const std::size_t pick = rng.below(open_outputs.size());
      inputs.push_back(open_outputs[pick]);
      open_outputs.erase(open_outputs.begin() +
                         static_cast<std::ptrdiff_t>(pick));
    }
    while (inputs.size() < want) {
      const NodeId pi =
          n.add_input("x" + std::to_string(n.inputs().size()));
      tagger.tag(pi, next_block++);
      inputs.push_back(pi);
    }

    const NodeId first = static_cast<NodeId>(n.node_count());
    // Random internal gates over the block's inputs and its own nodes
    // (local reconvergence allowed and encouraged).
    std::vector<NodeId> pool = inputs;
    NodeId last = inputs[0];
    for (std::size_t g = 0; g < block_gates; ++g) {
      const NodeId lhs = pool[rng.below(pool.size())];
      const NodeId rhs = pool[rng.below(pool.size())];
      NodeId gate;
      if (lhs == rhs) {
        gate = n.add_gate(GateType::kNot, {lhs});
      } else {
        gate = n.add_gate(rng.chance(0.5) ? GateType::kAnd : GateType::kOr,
                          {lhs, rhs});
      }
      pool.push_back(gate);
      last = gate;
    }
    tagger.tag_range(first, next_block);
    open_outputs.push_back(last);
    ++next_block;
  }

  // Every unconsumed block output becomes a primary output, tagged with
  // its block.
  std::vector<std::uint32_t> blocks_snapshot;
  for (std::size_t i = 0; i < open_outputs.size(); ++i) {
    const NodeId src = open_outputs[i];
    const NodeId first = static_cast<NodeId>(n.node_count());
    n.add_output(src, "y" + std::to_string(i));
    // The PO marker joins its driver's block.
    // (BlockTagger::finish defaults missing tags to 0, so tag explicitly.)
    tagger.tag(first, 0);
    blocks_snapshot.push_back(first);
  }
  KBoundedInstance inst = tagger.finish(std::move(n), k);
  for (NodeId marker : blocks_snapshot)
    inst.block_of[marker] =
        inst.block_of[inst.circuit.fanins(marker)[0]];
  return inst;
}

}  // namespace cwatpg::gen
