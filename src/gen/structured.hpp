// Structured circuit generators: the classic families the literature (and
// the paper's §3.2/§5.1) points at — ripple-carry adders, decoders, one-
// and two-dimensional cellular arrays (all k-bounded per Fujiwara), plus
// arithmetic and selection structures with deep reconvergence (array
// multipliers, carry-select adders) that are *not* k-bounded and exercise
// the interesting end of the cut-width spectrum.
//
// All generators produce well-formed multi-level networks in terms of
// AND/OR/NOT/XOR primitives; run net::decompose for the <=3-input AND/OR
// form used throughout the experiments.
#pragma once

#include <cstdint>

#include "netlist/network.hpp"

namespace cwatpg::gen {

/// n-bit ripple-carry adder: inputs a[0..n), b[0..n), cin; outputs
/// s[0..n), cout. k-bounded with full-adder blocks.
net::Network ripple_carry_adder(std::size_t bits);

/// n-bit carry-select adder with the given block width (>= 1): computes
/// each block for both carry values and selects. Deep(er) reconvergence.
net::Network carry_select_adder(std::size_t bits, std::size_t block);

/// a-to-2^a line decoder with enable. Fanout-heavy, shallow; k-bounded.
net::Network decoder(std::size_t address_bits);

/// 2^s-to-1 multiplexer tree (s select bits).
net::Network mux_tree(std::size_t select_bits);

/// Balanced parity (XOR) tree over `width` inputs with the given arity.
net::Network parity_tree(std::size_t width, std::size_t arity = 2);

/// n-bit magnitude comparator: outputs lt, eq, gt.
net::Network comparator(std::size_t bits);

/// n x n array multiplier (carry-save array, ripple final row):
/// 2n-bit product. Dense two-dimensional reconvergence — the c6288-style
/// stress case the paper *excluded* from its MLA runs.
net::Network array_multiplier(std::size_t bits);

/// 1-D cellular array: `cells` identical 2-input/1-state cells chained by
/// a single next-state signal (Fujiwara's canonical k-bounded family).
net::Network cellular_array_1d(std::size_t cells);

/// 2-D cellular array of `rows` x `cols` cells, each combining the cell
/// above and to the left.
net::Network cellular_array_2d(std::size_t rows, std::size_t cols);

/// Balanced alternating AND/OR tree over `leaves` inputs with given arity.
net::Network and_or_tree(std::size_t leaves, std::size_t arity = 2);

/// Simple n-bit ALU: two operand buses, 2 opcode bits selecting
/// ADD / AND / OR / XOR per bit through mux trees (c880/c2670/c5315-style
/// mixture of arithmetic carry chains and selection logic).
net::Network simple_alu(std::size_t bits);

/// Hamming-style single-error-correcting encoder+checker over `data_bits`
/// data inputs: computes ceil(log2(d))+1 overlapping parity trees and a
/// per-bit syndrome decode (c499/c1355/c1908-style overlapping XOR cones).
net::Network hamming_ecc(std::size_t data_bits);

}  // namespace cwatpg::gen
