#include "gen/hutton.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace cwatpg::gen {

using net::GateType;
using net::Network;
using net::NodeId;

// Generation model (after circ/gen's fanout-controlled wiring):
//
// A pool of *open* signals (driven but not yet consumed) starts as the
// PIs. Each new gate consumes `arity` signals: with probability `locality`
// a fanin is *popped* from a spatially nearby slot of the open pool (the
// common case — signals consumed exactly once, which grows fanout-free,
// tree-like structure with wire-length locality), otherwise it *reuses* a
// random already-created signal without popping (fanout > 1 — the
// reconvergence knob). The gate's output is inserted back near its fanins'
// slot, preserving spatial structure. Whatever remains open at the end
// feeds the primary outputs, so there is no dead logic.
//
// The paper's thesis is that practical circuits have *minimal*
// reconvergence; `locality` near 1 reproduces that regime (cut-width
// ~log n), while lowering it injects the global reconvergence that makes
// cut-width — and ATPG — blow up.
net::Network hutton_random(const HuttonParams& params) {
  if (params.num_gates < 1 || params.num_inputs < 1 ||
      params.num_outputs < 1 || params.max_fanin < 2)
    throw std::invalid_argument("hutton_random: degenerate parameters");

  Rng rng(params.seed);
  Network n;
  n.set_name("hutton" + std::to_string(params.num_gates) + "_s" +
             std::to_string(params.seed));

  std::vector<NodeId> open;
  open.reserve(params.num_inputs + params.num_gates);
  for (std::size_t i = 0; i < params.num_inputs; ++i)
    open.push_back(n.add_input("x" + std::to_string(i)));

  // Long (position-free) wires are what breaks the log-width property, and
  // the published suites show only O(log n) worth of them; keep an explicit
  // budget that shrinks as `locality` rises.
  std::int64_t long_wire_budget =
      params.unbounded_reconvergence
          ? static_cast<std::int64_t>(params.num_gates * 3)
          : static_cast<std::int64_t>(
                (1.5 - params.locality) * 8.0 *
                std::log2(static_cast<double>(params.num_gates) + 2.0));

  for (std::size_t g = 0; g < params.num_gates; ++g) {
    const auto arity = static_cast<std::size_t>(
        rng.range(2, static_cast<std::int64_t>(params.max_fanin)));
    // Keep the pool wide: it is the circuit's "level width". Letting it
    // collapse to a handful of slots destroys the positional structure
    // (every signal becomes adjacent to every other) and with it the
    // log-width property; real suites keep level width on the order of
    // their PI count.
    const std::size_t reserve_floor =
        std::max(params.num_outputs, (params.num_inputs * 3) / 4);

    const std::size_t center = rng.below(open.size());
    const double relative =
        (static_cast<double>(center) + 0.5) / static_cast<double>(open.size());
    std::vector<NodeId> fis;
    std::size_t insert_at = center;
    for (std::size_t a = 0; a < arity; ++a) {
      const bool may_pop = open.size() > std::max<std::size_t>(
                                             reserve_floor, arity);
      if (may_pop && rng.chance(params.locality)) {
        // A nearby open signal. Usually popped (consumed exactly once:
        // tree growth); sometimes left open (a local fanout-2 net — the
        // bounded-span reconvergence the k-bounded class allows).
        // Constant spread: a proportional window would make every edge
        // span a fixed *fraction* of the strip, forcing linear cut growth.
        constexpr std::int64_t spread = 3;
        const std::int64_t slot = std::clamp<std::int64_t>(
            static_cast<std::int64_t>(center) + rng.range(-spread, spread),
            0, static_cast<std::int64_t>(open.size()) - 1);
        const auto index = static_cast<std::size_t>(slot);
        fis.push_back(open[index]);
        if (rng.chance(0.8)) {
          open.erase(open.begin() + slot);
          insert_at = std::min<std::size_t>(index, open.size());
        }
      } else if (long_wire_budget <= 0 ||
                 rng.chance(params.unbounded_reconvergence ? 0.3 : 0.8)) {
        // A position-local primary input: real circuits re-consume their
        // PIs heavily, but each PI serves a bounded region, so its (single)
        // signal hyperedge spans a bounded stretch of any good ordering.
        const auto pi_center = static_cast<std::int64_t>(
            relative * static_cast<double>(params.num_inputs));
        constexpr std::int64_t pi_spread = 2;
        const std::int64_t pick = std::clamp<std::int64_t>(
            pi_center + rng.range(-pi_spread, pi_spread), 0,
            static_cast<std::int64_t>(params.num_inputs) - 1);
        fis.push_back(n.inputs()[static_cast<std::size_t>(pick)]);
      } else {
        // Global reuse of any existing signal: a genuinely reconvergent,
        // long wire, drawn from the O(log n) budget.
        fis.push_back(static_cast<NodeId>(rng.below(n.node_count())));
        --long_wire_budget;
      }
    }
    std::sort(fis.begin(), fis.end());
    fis.erase(std::unique(fis.begin(), fis.end()), fis.end());
    NodeId gate;
    if (fis.size() == 1) {
      gate = n.add_gate(GateType::kNot, {fis[0]});
    } else {
      gate = n.add_gate(rng.chance(0.5) ? GateType::kAnd : GateType::kOr,
                        fis);
    }
    if (rng.chance(0.2)) gate = n.add_gate(GateType::kNot, {gate});
    open.insert(open.begin() + static_cast<std::ptrdiff_t>(
                                   std::min(insert_at, open.size())),
                gate);
  }

  // Primary outputs: every still-open logic signal, plus any dangling gate
  // (reused-then-replaced corner cases), so no dead logic remains.
  std::size_t po = 0;
  for (NodeId id : open)
    if (net::is_logic(n.type(id)))
      n.add_output(id, "y" + std::to_string(po++));
  for (NodeId id = 0; id < n.node_count(); ++id)
    if (net::is_logic(n.type(id)) && n.fanouts(id).empty())
      n.add_output(id, "y" + std::to_string(po++));
  if (po == 0) n.add_output(open.front(), "y0");
  return n;
}

}  // namespace cwatpg::gen
