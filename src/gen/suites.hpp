// Synthetic benchmark suites standing in for ISCAS85 and MCNC91.
//
// The genuine netlists are not redistributable inside this repository, so
// (per DESIGN.md §1) each suite is replaced by circuits built from the same
// structural idioms at the same sizes. The experiments only consume circuit
// topology — cone sizes, cut profiles, fanin/fanout statistics — which is
// what these generators match. Real `.bench` files, when available, can be
// loaded with net::read_bench_file and swapped in unchanged.
//
// Every suite member is already tech-decomposed to <= 3-input AND/OR+NOT,
// mirroring the paper's SIS tech_decomp preprocessing step (§5.2.2).
#pragma once

#include <string>
#include <vector>

#include "netlist/network.hpp"

namespace cwatpg::gen {

struct SuiteOptions {
  /// Scales every member's size (1.0 = paper-comparable sizes). Benches
  /// use < 1 for quick runs; tests use ~0.1.
  double scale = 1.0;
  std::uint64_t seed = 99;
};

/// Nine circuits shaped after the ISCAS85 members the paper kept
/// (c432, c499, c880, c1355, c1908, c2670, c3540*, c5315, c7552 minus the
/// two exclusions — we keep 9 by adding two mid-size ALU/control mixes).
std::vector<net::Network> iscas85_like_suite(const SuiteOptions& opts = {});

/// Forty-eight "logic" circuits spanning the MCNC91 size range: adders,
/// decoders, muxes, comparators, parity, cellular arrays, ALUs and
/// random-logic (Hutton) members.
std::vector<net::Network> mcnc_like_suite(const SuiteOptions& opts = {});

}  // namespace cwatpg::gen
