// Generators for k-bounded circuits *with their witnessing partitions*.
//
// Recognizing k-boundedness is hard in general (the paper, like Fujiwara,
// never implements a recognizer), but the classic families come with their
// block structure by construction: each generator here returns the circuit
// together with the block partition that witnesses k-boundedness, ready for
// core::is_kbounded / core::kbounded_ordering.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/network.hpp"

namespace cwatpg::gen {

struct KBoundedInstance {
  net::Network circuit;
  std::vector<std::uint32_t> block_of;  ///< block id per NodeId
  std::uint32_t num_blocks = 0;
  std::uint32_t k = 0;  ///< the witnessed bound
};

/// Ripple-carry adder with one block per full-adder stage (PIs as
/// singleton blocks): each stage block has inputs {a_i, b_i, carry} => k=3,
/// block DAG an in-tree.
KBoundedInstance kbounded_adder(std::size_t bits);

/// 1-D cellular array, one block per cell (k=2: data input + state).
KBoundedInstance kbounded_cellular(std::size_t cells);

/// Random k-bounded circuit: `blocks` blocks of `block_gates` gates each,
/// wired as a random in-forest (each block's output feeds at most one later
/// block), each block drawing at most k inputs. The block DAG is a forest,
/// so reconvergence is purely block-local.
KBoundedInstance kbounded_random(std::size_t blocks, std::size_t block_gates,
                                 std::uint32_t k, std::uint64_t seed);

}  // namespace cwatpg::gen
