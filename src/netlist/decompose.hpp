// Technology decomposition, mirroring SIS `tech_decomp` as used in §5.2.2.
//
// The paper maps all benchmark circuits to AND/OR gates of at most three
// inputs, allowing inversions, before building SAT formulas ("it is
// difficult in practice to derive SAT formulas for arbitrary gates";
// TEGUS enforces the same restriction). `decompose()` reproduces that
// mapping:
//   * NAND/NOR     -> AND/OR tree + inverter
//   * XOR/XNOR     -> 2-input XOR chain, each expanded to AND/OR/NOT
//   * wide AND/OR  -> balanced trees of <= max_fanin-input gates
//   * BUF          -> removed (fanin forwarded)
// The result contains only kInput/kOutput/kConst*/kNot/kAnd/kOr nodes with
// fanin <= max_fanin, and is functionally equivalent to the source network
// (verified by the test suite via exhaustive/random simulation).
#pragma once

#include "netlist/network.hpp"

namespace cwatpg::net {

struct DecomposeOptions {
  /// Maximum fanin of AND/OR gates in the result (>= 2). The paper uses 3.
  std::size_t max_fanin = 3;
};

/// Returns the decomposed network. Throws std::invalid_argument if
/// `opts.max_fanin < 2`.
Network decompose(const Network& src, DecomposeOptions opts = {});

/// True iff `net` is already in decomposed form: only AND/OR/NOT logic with
/// fanin <= max_fanin (the form required by the SAT encoder's analysis).
bool is_decomposed(const Network& net, std::size_t max_fanin = 3);

}  // namespace cwatpg::net
