// 64-way bit-parallel logic simulation.
//
// Substrate for the fault simulator (src/fault/fsim) and for the functional-
// equivalence checks in the test suite: each machine word carries 64
// independent input patterns through the network in one forward pass.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/network.hpp"
#include "util/rng.hpp"

namespace cwatpg::net {

/// One 64-pattern simulation frame: `words[i]` holds the value of node i
/// for each of the 64 patterns (bit b = pattern b).
using SimFrame = std::vector<std::uint64_t>;

/// Simulates 64 patterns at once. `pi_words[i]` supplies the 64 values of
/// inputs()[i]. Returns the full frame (one word per node, kOutput nodes
/// copying their fanin).
SimFrame simulate64(const Network& net, std::span<const std::uint64_t> pi_words);

/// Same, but with an injected stuck-at fault: the *output* of node `site`
/// is forced to `stuck_value` in every pattern before its fanouts consume
/// it. PIs and constants may be faulted too.
SimFrame simulate64_fault(const Network& net,
                          std::span<const std::uint64_t> pi_words,
                          NodeId site, bool stuck_value);

/// Expands one single-pattern assignment into words (bit 0 of each word).
std::vector<std::uint64_t> to_words(std::span<const bool> pattern);
/// Overload for bit-packed vector<bool> patterns.
std::vector<std::uint64_t> to_words(const std::vector<bool>& pattern);

/// Draws 64 random patterns (one word per PI) from `rng`.
std::vector<std::uint64_t> random_pi_words(const Network& net, Rng& rng);

}  // namespace cwatpg::net
