#include "netlist/cone.hpp"

#include <stdexcept>

namespace cwatpg::net {

std::vector<bool> transitive_fanout(const Network& net, NodeId start) {
  std::vector<bool> mask(net.node_count(), false);
  std::vector<NodeId> stack{start};
  mask[start] = true;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    for (NodeId fo : net.fanouts(v)) {
      if (!mask[fo]) {
        mask[fo] = true;
        stack.push_back(fo);
      }
    }
  }
  return mask;
}

std::vector<bool> transitive_fanin(const Network& net,
                                   std::span<const NodeId> roots) {
  std::vector<bool> mask(net.node_count(), false);
  std::vector<NodeId> stack;
  for (NodeId r : roots) {
    if (!mask[r]) {
      mask[r] = true;
      stack.push_back(r);
    }
  }
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    for (NodeId fi : net.fanins(v)) {
      if (!mask[fi]) {
        mask[fi] = true;
        stack.push_back(fi);
      }
    }
  }
  return mask;
}

SubCircuit extract(const Network& net, const std::vector<bool>& mask) {
  if (mask.size() != net.node_count())
    throw std::invalid_argument("extract: mask size mismatch");
  SubCircuit sub;
  sub.circuit.set_name(net.name());
  sub.to_sub.assign(net.node_count(), kNullNode);

  for (NodeId id = 0; id < net.node_count(); ++id) {
    if (!mask[id]) continue;
    const auto& n = net.node(id);
    std::vector<NodeId> fis;
    fis.reserve(n.fanins.size());
    for (NodeId fi : n.fanins) {
      if (!mask[fi] || sub.to_sub[fi] == kNullNode)
        throw std::invalid_argument(
            "extract: mask not closed under fanin at node " +
            net.name_of(id));
      fis.push_back(sub.to_sub[fi]);
    }
    NodeId nid = kNullNode;
    switch (n.type) {
      case GateType::kInput:
        nid = sub.circuit.add_input(net.name_of(id));
        break;
      case GateType::kConst0:
      case GateType::kConst1:
        nid = sub.circuit.add_const(n.type == GateType::kConst1,
                                    net.name_of(id));
        break;
      case GateType::kOutput:
        nid = sub.circuit.add_output(fis[0], net.name_of(id));
        break;
      default:
        nid = sub.circuit.add_gate(n.type, std::move(fis), net.name_of(id));
        break;
    }
    sub.to_sub[id] = nid;
    sub.to_src.push_back(id);
  }
  return sub;
}

SubCircuit output_cone(const Network& net, NodeId po) {
  if (po >= net.node_count() || net.type(po) != GateType::kOutput)
    throw std::invalid_argument("output_cone: id is not a primary output");
  const NodeId roots[] = {po};
  return extract(net, transitive_fanin(net, roots));
}

SubCircuit fault_cone(const Network& net, NodeId site) {
  if (site >= net.node_count())
    throw std::invalid_argument("fault_cone: no such node");
  const std::vector<bool> tfo = transitive_fanout(net, site);

  std::vector<NodeId> observed;
  for (NodeId po : net.outputs())
    if (tfo[po]) observed.push_back(po);
  if (observed.empty())
    throw std::invalid_argument("fault_cone: fault site reaches no output");

  // Closure: transitive fanin of everything in the fanout cone. Seeding
  // with the whole TFO (not just its POs) matches the paper: side inputs of
  // every fanout-cone gate must be justified.
  std::vector<NodeId> seeds;
  for (NodeId id = 0; id < net.node_count(); ++id)
    if (tfo[id]) seeds.push_back(id);
  // kOutput markers outside the TFO are never pulled in: markers have no
  // fanouts into logic, so they appear in the closure only as seeds.
  return extract(net, transitive_fanin(net, seeds));
}

}  // namespace cwatpg::net
