// Structural (gate-level) Verilog reader and writer.
//
// The ISCAS85 suite circulates both as .bench and as flat gate-level
// Verilog; supporting the latter widens the set of real designs the
// library can consume. The subset handled is the flat-netlist idiom:
//
//   module c17 (N1, N2, ..., N22, N23);
//     input N1, N2, N3, N6, N7;
//     output N22, N23;
//     wire N10, N11, N16, N19;
//     nand NAND2_1 (N10, N1, N3);
//     ...
//   endmodule
//
// Primitive gates and/or/nand/nor/xor/xnor/not/buf with the standard
// output-first port convention; `assign lhs = rhs;` aliases are accepted
// as buffers. One module per file; no parameters, no vectors, no
// hierarchy, no always blocks (sequential or behavioral constructs raise
// VerilogError).
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "netlist/network.hpp"

namespace cwatpg::net {

class VerilogError : public std::runtime_error {
 public:
  VerilogError(std::size_t line, const std::string& what)
      : std::runtime_error("verilog line " + std::to_string(line) + ": " +
                           what),
        line_(line) {}
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// Parses one flat gate-level module. Signals may be used before their
/// driving gate appears (the network is re-topologized). Throws
/// VerilogError on unsupported constructs, cycles, or multiple drivers.
Network read_verilog(std::istream& in);
Network read_verilog_string(const std::string& text);
Network read_verilog_file(const std::string& path);

/// Writes `net` as a flat structural module (one primitive per gate;
/// >2-input XOR/XNOR are emitted n-ary, which standard Verilog allows).
/// Constants are emitted via `assign` to 1'b0/1'b1.
void write_verilog(std::ostream& out, const Network& net);

}  // namespace cwatpg::net
