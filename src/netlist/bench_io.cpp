#include "netlist/bench_io.hpp"

#include <cctype>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_map>
#include <vector>

namespace cwatpg::net {
namespace {

struct GateDef {
  std::size_t line = 0;
  GateType type = GateType::kBuf;
  std::vector<std::string> args;
};

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string upper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return s;
}

GateType gate_type_from(const std::string& keyword, std::size_t line) {
  const std::string k = upper(keyword);
  if (k == "AND") return GateType::kAnd;
  if (k == "NAND") return GateType::kNand;
  if (k == "OR") return GateType::kOr;
  if (k == "NOR") return GateType::kNor;
  if (k == "XOR") return GateType::kXor;
  if (k == "XNOR") return GateType::kXnor;
  if (k == "NOT" || k == "INV") return GateType::kNot;
  if (k == "BUF" || k == "BUFF") return GateType::kBuf;
  if (k == "DFF" || k == "DFFSR" || k == "LATCH")
    throw ParseError(line, "sequential element '" + keyword +
                               "' not supported (combinational suites only)");
  throw ParseError(line, "unknown gate type '" + keyword + "'");
}

std::vector<std::string> split_args(const std::string& body,
                                    std::size_t line) {
  std::vector<std::string> args;
  std::string cur;
  for (char c : body) {
    if (c == ',') {
      const std::string a = trim(cur);
      if (a.empty()) throw ParseError(line, "empty argument");
      args.push_back(a);
      cur.clear();
    } else {
      cur += c;
    }
  }
  const std::string last = trim(cur);
  if (!last.empty())
    args.push_back(last);
  else if (!args.empty())
    throw ParseError(line, "trailing comma in argument list");
  return args;
}

}  // namespace

Network read_bench(std::istream& in, std::string name) {
  std::vector<std::pair<std::string, std::size_t>> input_decls;
  std::vector<std::pair<std::string, std::size_t>> output_decls;
  std::unordered_map<std::string, GateDef> defs;

  std::string raw;
  std::size_t lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    const std::string line = trim(raw);
    if (line.empty()) continue;

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      // INPUT(x) / OUTPUT(x)
      const std::size_t lp = line.find('(');
      const std::size_t rp = line.rfind(')');
      if (lp == std::string::npos || rp == std::string::npos || rp < lp)
        throw ParseError(lineno, "malformed declaration '" + line + "'");
      const std::string kw = upper(trim(line.substr(0, lp)));
      const std::string sig = trim(line.substr(lp + 1, rp - lp - 1));
      if (sig.empty()) throw ParseError(lineno, "empty signal name");
      if (kw == "INPUT") {
        input_decls.emplace_back(sig, lineno);
      } else if (kw == "OUTPUT") {
        output_decls.emplace_back(sig, lineno);
      } else {
        throw ParseError(lineno, "unknown declaration '" + kw + "'");
      }
      continue;
    }

    const std::string lhs = trim(line.substr(0, eq));
    const std::string rhs = trim(line.substr(eq + 1));
    if (lhs.empty()) throw ParseError(lineno, "empty signal on lhs");
    const std::size_t lp = rhs.find('(');
    const std::size_t rp = rhs.rfind(')');
    if (lp == std::string::npos || rp == std::string::npos || rp < lp)
      throw ParseError(lineno, "malformed gate expression '" + rhs + "'");

    GateDef def;
    def.line = lineno;
    def.type = gate_type_from(trim(rhs.substr(0, lp)), lineno);
    def.args = split_args(rhs.substr(lp + 1, rp - lp - 1), lineno);
    if (def.args.empty()) throw ParseError(lineno, "gate with no inputs");
    const bool unary =
        def.type == GateType::kNot || def.type == GateType::kBuf;
    if (unary && def.args.size() != 1)
      throw ParseError(lineno, "NOT/BUFF take exactly one input");
    if (!defs.emplace(lhs, std::move(def)).second)
      throw ParseError(lineno, "signal '" + lhs + "' multiply driven");
  }

  for (const auto& [sig, ln] : input_decls)
    if (defs.count(sig))
      throw ParseError(ln, "INPUT '" + sig + "' also driven by a gate");

  // Topological construction with cycle detection (iterative DFS).
  Network netw;
  netw.set_name(std::move(name));
  std::unordered_map<std::string, NodeId> built;
  for (const auto& [sig, ln] : input_decls) {
    if (built.count(sig))
      throw ParseError(ln, "INPUT '" + sig + "' declared twice");
    built.emplace(sig, netw.add_input(sig));
  }

  enum class Mark : std::uint8_t { kUnseen, kActive, kDone };
  std::unordered_map<std::string, Mark> mark;

  // Explicit stack: (signal, next-arg-index).
  auto build_signal = [&](const std::string& root) {
    if (built.count(root)) return;
    std::vector<std::pair<std::string, std::size_t>> stack;
    stack.emplace_back(root, 0);
    while (!stack.empty()) {
      auto& [sig, next] = stack.back();
      const auto it = defs.find(sig);
      if (it == defs.end()) {
        // Attribute the error to the gate whose argument list names the
        // missing signal — that's the line the user has to fix.
        std::size_t at = 0;
        if (stack.size() >= 2) {
          const auto parent = defs.find(stack[stack.size() - 2].first);
          if (parent != defs.end()) at = parent->second.line;
        }
        throw ParseError(at, "signal '" + sig + "' is used but never driven");
      }
      const GateDef& def = it->second;
      if (next == 0) {
        Mark& m = mark[sig];
        if (m == Mark::kActive)
          throw ParseError(def.line, "combinational cycle through '" + sig + "'");
        m = Mark::kActive;
      }
      bool descended = false;
      while (next < def.args.size()) {
        const std::string& arg = def.args[next];
        ++next;
        if (!built.count(arg)) {
          if (mark[arg] == Mark::kActive)
            throw ParseError(def.line,
                             "combinational cycle through '" + arg + "'");
          stack.emplace_back(arg, 0);
          descended = true;
          break;
        }
      }
      if (descended) continue;
      std::vector<NodeId> fis;
      fis.reserve(def.args.size());
      for (const std::string& arg : def.args) fis.push_back(built.at(arg));
      built.emplace(sig, netw.add_gate(def.type, std::move(fis), sig));
      mark[sig] = Mark::kDone;
      stack.pop_back();
    }
  };

  for (const auto& [sig, def] : defs) {
    (void)def;
    build_signal(sig);
  }
  for (const auto& [sig, ln] : output_decls) {
    const auto it = built.find(sig);
    if (it == built.end())
      throw ParseError(ln, "OUTPUT '" + sig + "' is never driven");
    netw.add_output(it->second, sig + "_po");
  }
  netw.validate();
  return netw;
}

Network read_bench_string(const std::string& text, std::string name) {
  std::istringstream ss(text);
  return read_bench(ss, std::move(name));
}

Network read_bench_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open .bench file: " + path);
  std::string base = path;
  const std::size_t slash = base.find_last_of('/');
  if (slash != std::string::npos) base.erase(0, slash + 1);
  const std::size_t dot = base.find_last_of('.');
  if (dot != std::string::npos) base.erase(dot);
  return read_bench(f, base);
}

void write_bench(std::ostream& out, const Network& netw) {
  out << "# " << (netw.name().empty() ? "cwatpg netlist" : netw.name())
      << "\n";
  for (NodeId pi : netw.inputs())
    out << "INPUT(" << netw.name_of(pi) << ")\n";
  for (NodeId po : netw.outputs())
    out << "OUTPUT(" << netw.name_of(netw.fanins(po)[0]) << ")\n";
  out << "\n";
  for (NodeId id = 0; id < netw.node_count(); ++id) {
    const GateType t = netw.type(id);
    if (!is_logic(t)) {
      if (t == GateType::kConst0 || t == GateType::kConst1)
        throw std::invalid_argument(
            "write_bench: constants are not representable in .bench");
      continue;
    }
    out << netw.name_of(id) << " = " << to_string(t) << "(";
    const auto fis = netw.fanins(id);
    for (std::size_t i = 0; i < fis.size(); ++i)
      out << (i ? ", " : "") << netw.name_of(fis[i]);
    out << ")\n";
  }
}

}  // namespace cwatpg::net
