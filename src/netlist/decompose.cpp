#include "netlist/decompose.hpp"

#include <stdexcept>
#include <vector>

namespace cwatpg::net {
namespace {

/// Builds a balanced tree of `type` gates over `leaves` with fanin <= k.
NodeId build_tree(Network& out, GateType type, std::vector<NodeId> leaves,
                  std::size_t k) {
  if (leaves.size() == 1) return leaves[0];
  while (leaves.size() > 1) {
    std::vector<NodeId> next;
    next.reserve((leaves.size() + k - 1) / k);
    for (std::size_t i = 0; i < leaves.size(); i += k) {
      const std::size_t end = std::min(i + k, leaves.size());
      if (end - i == 1) {
        next.push_back(leaves[i]);
      } else {
        next.push_back(out.add_gate(
            type, std::vector<NodeId>(leaves.begin() + static_cast<std::ptrdiff_t>(i),
                                      leaves.begin() + static_cast<std::ptrdiff_t>(end))));
      }
    }
    leaves = std::move(next);
  }
  return leaves[0];
}

/// 2-input XOR as AND/OR/NOT: (a & ~b) | (~a & b).
NodeId build_xor2(Network& out, NodeId a, NodeId b) {
  const NodeId na = out.add_gate(GateType::kNot, {a});
  const NodeId nb = out.add_gate(GateType::kNot, {b});
  const NodeId t0 = out.add_gate(GateType::kAnd, {a, nb});
  const NodeId t1 = out.add_gate(GateType::kAnd, {na, b});
  return out.add_gate(GateType::kOr, {t0, t1});
}

}  // namespace

Network decompose(const Network& src, DecomposeOptions opts) {
  if (opts.max_fanin < 2)
    throw std::invalid_argument("decompose: max_fanin must be >= 2");
  const std::size_t k = opts.max_fanin;

  Network out;
  out.set_name(src.name());
  std::vector<NodeId> map(src.node_count(), kNullNode);

  for (NodeId id = 0; id < src.node_count(); ++id) {
    const auto& n = src.node(id);
    switch (n.type) {
      case GateType::kInput:
        map[id] = out.add_input(src.name_of(id));
        break;
      case GateType::kConst0:
      case GateType::kConst1:
        map[id] = out.add_const(n.type == GateType::kConst1, src.name_of(id));
        break;
      case GateType::kOutput:
        map[id] = out.add_output(map[n.fanins[0]], src.name_of(id));
        break;
      case GateType::kBuf:
        map[id] = map[n.fanins[0]];  // forwarded, buffer removed
        break;
      case GateType::kNot:
        map[id] = out.add_gate(GateType::kNot, {map[n.fanins[0]]});
        break;
      case GateType::kAnd:
      case GateType::kOr:
      case GateType::kNand:
      case GateType::kNor: {
        std::vector<NodeId> leaves;
        leaves.reserve(n.fanins.size());
        for (NodeId fi : n.fanins) leaves.push_back(map[fi]);
        const bool is_and = n.type == GateType::kAnd || n.type == GateType::kNand;
        const bool inverted =
            n.type == GateType::kNand || n.type == GateType::kNor;
        NodeId root = build_tree(out, is_and ? GateType::kAnd : GateType::kOr,
                                 std::move(leaves), k);
        if (inverted) root = out.add_gate(GateType::kNot, {root});
        map[id] = root;
        break;
      }
      case GateType::kXor:
      case GateType::kXnor: {
        NodeId acc = map[n.fanins[0]];
        for (std::size_t i = 1; i < n.fanins.size(); ++i)
          acc = build_xor2(out, acc, map[n.fanins[i]]);
        if (n.type == GateType::kXnor)
          acc = out.add_gate(GateType::kNot, {acc});
        map[id] = acc;
        break;
      }
    }
  }
  out.validate();
  return out;
}

bool is_decomposed(const Network& net, std::size_t max_fanin) {
  for (NodeId id = 0; id < net.node_count(); ++id) {
    switch (net.type(id)) {
      case GateType::kInput:
      case GateType::kOutput:
      case GateType::kConst0:
      case GateType::kConst1:
      case GateType::kNot:
        break;
      case GateType::kAnd:
      case GateType::kOr:
        if (net.fanins(id).size() > max_fanin) return false;
        break;
      default:
        return false;
    }
  }
  return true;
}

}  // namespace cwatpg::net
