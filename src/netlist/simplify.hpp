// Structural simplification passes: constant folding and dead-logic sweep.
//
// Generators compose circuits from cells and naturally leave constant-fed
// gates behind (a multiplier row seeded with carry 0, a speculative adder
// chain with carry 1). Such gates are real redundancy — their faults are
// provably untestable — which distorts testability experiments. These
// passes produce the irredundant-by-construction form:
//   * fold_constants: propagates kConst0/kConst1 through gates
//     (AND with 0 -> 0, XOR with 1 -> complement, single-survivor gates
//     forward their input, ...);
//   * sweep_dangling: removes logic not in the transitive fanin of any
//     primary output.
// Both preserve the circuit function on all primary outputs and the PI/PO
// interface (including order and names).
#pragma once

#include "netlist/network.hpp"

namespace cwatpg::net {

/// Returns the constant-folded network. A primary output whose cone folds
/// to a constant keeps a single const node as its driver.
Network fold_constants(const Network& src);

/// Removes every node not reachable backwards from a primary output.
Network sweep_dangling(const Network& src);

/// fold_constants then sweep_dangling.
Network simplify(const Network& src);

}  // namespace cwatpg::net
