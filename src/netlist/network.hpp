// Combinational Boolean network (gate-level netlist).
//
// This is the circuit substrate everything else is built on: the SAT
// encoding (Fig. 2 of the paper), the ATPG-SAT miter construction (Fig. 3),
// cut-width estimation, fault simulation, and the generators.
//
// Representation choices:
//  * Single-driver nets: a net is identified with the node that drives it,
//    so "net X" in the paper maps to NodeId X here.
//  * Append-only construction with the invariant that a gate's fanins are
//    added before the gate itself. Consequently NodeIds are already a
//    topological order, which the analysis code exploits heavily.
//  * Primary outputs are explicit kOutput nodes with exactly one fanin, so
//    the hypergraph view (Section 4.2: "gates, inputs and outputs as the
//    nodes") is a 1:1 mapping of nodes.
//
// Thread-safe: a Network is immutable once construction (add_* calls)
// finishes, and every const accessor is a plain read with no lazy caches —
// so any number of threads may analyze, simulate, or encode the same
// Network concurrently. Construction itself is single-threaded.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace cwatpg::net {

using NodeId = std::uint32_t;
inline constexpr NodeId kNullNode = static_cast<NodeId>(-1);

enum class GateType : std::uint8_t {
  kInput,   ///< primary input (no fanins)
  kOutput,  ///< primary output marker (exactly one fanin)
  kConst0,  ///< constant 0 (no fanins)
  kConst1,  ///< constant 1 (no fanins)
  kBuf,     ///< buffer (one fanin)
  kNot,     ///< inverter (one fanin)
  kAnd,     ///< n-input AND (>= 1 fanins)
  kNand,    ///< n-input NAND
  kOr,      ///< n-input OR
  kNor,     ///< n-input NOR
  kXor,     ///< n-input XOR (parity)
  kXnor,    ///< n-input XNOR (parity complement)
};

/// Gate-type display name ("AND", "INPUT", ...), matching .bench keywords
/// where one exists.
std::string to_string(GateType type);

/// True for kAnd/kNand/kOr/kNor/kXor/kXnor/kNot/kBuf — i.e. logic gates
/// (as opposed to IO markers and constants).
bool is_logic(GateType type);

/// Evaluates a gate of `type` over fanin values packed as 64 parallel
/// patterns per word. kInput/kOutput/kConst handled by the caller.
std::uint64_t eval_gate_word(GateType type, std::span<const std::uint64_t> ins);

class Network {
 public:
  struct Node {
    GateType type = GateType::kInput;
    std::vector<NodeId> fanins;
  };

  Network() = default;

  /// Optional human-readable circuit name (benchmark id).
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // -- construction (append-only) ------------------------------------------

  /// Adds a primary input.
  NodeId add_input(std::string name = {});
  /// Adds a constant node.
  NodeId add_const(bool value, std::string name = {});
  /// Adds a logic gate; all fanins must already exist and be non-kOutput.
  /// Throws std::invalid_argument on arity violations (kNot/kBuf need
  /// exactly 1 fanin; others at least 1).
  NodeId add_gate(GateType type, std::vector<NodeId> fanins,
                  std::string name = {});
  /// Marks `src` as feeding a primary output; returns the kOutput node.
  NodeId add_output(NodeId src, std::string name = {});

  // -- topology -------------------------------------------------------------

  std::size_t node_count() const { return nodes_.size(); }
  const Node& node(NodeId id) const { return nodes_[id]; }
  GateType type(NodeId id) const { return nodes_[id].type; }
  std::span<const NodeId> fanins(NodeId id) const { return nodes_[id].fanins; }
  std::span<const NodeId> fanouts(NodeId id) const { return fanouts_[id]; }
  std::span<const NodeId> inputs() const { return inputs_; }
  /// kOutput marker nodes, in declaration order.
  std::span<const NodeId> outputs() const { return outputs_; }

  /// Number of logic gates (excludes IO markers and constants).
  std::size_t gate_count() const { return gate_count_; }

  /// Name of a node; auto-generated ("n<id>") when none was given.
  std::string name_of(NodeId id) const;
  /// Reverse lookup of an explicitly assigned name.
  std::optional<NodeId> find(const std::string& name) const;

  std::size_t max_fanin() const;
  std::size_t max_fanout() const;

  /// Logic level of every node (PIs/constants at 0). Computed in id order,
  /// valid because ids are topologically sorted.
  std::vector<std::uint32_t> levels() const;
  /// Maximum logic level (circuit depth).
  std::uint32_t depth() const;

  /// Structural sanity check; throws std::logic_error describing the first
  /// violation (dangling fanin, output-of-output, arity, fanout mismatch).
  void validate() const;

  // -- evaluation -----------------------------------------------------------

  /// Single-pattern evaluation: `pi_values[i]` is the value of inputs()[i].
  /// Returns a value per node (index = NodeId). Constants evaluate to their
  /// value, kOutput nodes copy their fanin.
  std::vector<bool> eval(std::span<const bool> pi_values) const;

  /// Overload for bit-packed vector<bool> patterns (fault::Pattern).
  std::vector<bool> eval(const std::vector<bool>& pi_values) const;

 private:
  NodeId push_node(Node node, std::string name);

  std::string name_;
  std::vector<Node> nodes_;
  std::vector<std::vector<NodeId>> fanouts_;
  std::vector<std::string> node_names_;  // empty => auto-generated
  std::vector<NodeId> inputs_;
  std::vector<NodeId> outputs_;
  std::size_t gate_count_ = 0;
};

}  // namespace cwatpg::net
