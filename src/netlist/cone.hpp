// Cone extraction: transitive fanin/fanout and subcircuit construction.
//
// Two constructions from the paper live here:
//  * output cones C_1..C_p — the multi-output decomposition of §4.3, where
//    CIRCUIT-SAT(C) is solved one single-output cone at a time;
//  * C_psi^sub — "the subcircuit of C containing all gates, inputs and
//    outputs in the transitive fanin of the transitive fanout of the
//    fault-point X" (§2). Its size is the x-axis of Figure 8, and its
//    cut-width the y-axis.
#pragma once

#include <vector>

#include "netlist/network.hpp"

namespace cwatpg::net {

/// A subcircuit plus the id correspondence with its source network.
struct SubCircuit {
  Network circuit;
  /// source NodeId -> subcircuit NodeId (kNullNode when not included).
  std::vector<NodeId> to_sub;
  /// subcircuit NodeId -> source NodeId.
  std::vector<NodeId> to_src;
};

/// Node mask of the transitive fanout of `start`, inclusive of `start`
/// itself and of any kOutput markers reached.
std::vector<bool> transitive_fanout(const Network& net, NodeId start);

/// Node mask of the transitive fanin (closure over fanins) of every node in
/// `roots`, inclusive of the roots.
std::vector<bool> transitive_fanin(const Network& net,
                                   std::span<const NodeId> roots);

/// Extracts the subcircuit induced by `mask`. The mask must be closed under
/// fanin for non-masked-out nodes (throws std::invalid_argument otherwise).
/// Included kInput nodes become the subcircuit's PIs, included kOutput
/// markers its POs. Node ids keep their relative (topological) order.
SubCircuit extract(const Network& net, const std::vector<bool>& mask);

/// The single-output cone feeding primary output `po` (a kOutput node id):
/// transitive fanin of `po`, as its own network. Used to treat a p-output
/// circuit as p single-output CIRCUIT-SAT problems (§4.3).
SubCircuit output_cone(const Network& net, NodeId po);

/// C_psi^sub for a fault located at node `site` (stem faults; for a branch
/// fault on a gate input pass the *gate* as `site` — the cone is identical
/// because the gate is the first fanout of the branch). Contains
/// TFI(TFO(site)); POs are the original POs reachable from `site`. Throws
/// std::invalid_argument if `site` reaches no primary output (such a fault
/// is undetectable and excluded from the paper's per-fault scatter).
SubCircuit fault_cone(const Network& net, NodeId site);

}  // namespace cwatpg::net
