#include "netlist/simulate.hpp"

#include <stdexcept>

namespace cwatpg::net {
namespace {

SimFrame simulate_impl(const Network& net,
                       std::span<const std::uint64_t> pi_words,
                       NodeId fault_site, bool stuck_value, bool faulty) {
  if (pi_words.size() != net.inputs().size())
    throw std::invalid_argument("simulate64: wrong number of PI words");
  SimFrame frame(net.node_count(), 0);
  for (std::size_t i = 0; i < pi_words.size(); ++i)
    frame[net.inputs()[i]] = pi_words[i];

  std::vector<std::uint64_t> buf;
  for (NodeId id = 0; id < net.node_count(); ++id) {
    const auto& n = net.node(id);
    switch (n.type) {
      case GateType::kInput:
        break;
      case GateType::kConst0:
        frame[id] = 0;
        break;
      case GateType::kConst1:
        frame[id] = ~0ULL;
        break;
      case GateType::kOutput:
        frame[id] = frame[n.fanins[0]];
        break;
      default: {
        buf.clear();
        for (NodeId fi : n.fanins) buf.push_back(frame[fi]);
        frame[id] = eval_gate_word(n.type, buf);
        break;
      }
    }
    if (faulty && id == fault_site)
      frame[id] = stuck_value ? ~0ULL : 0ULL;
  }
  return frame;
}

}  // namespace

SimFrame simulate64(const Network& net,
                    std::span<const std::uint64_t> pi_words) {
  return simulate_impl(net, pi_words, kNullNode, false, false);
}

SimFrame simulate64_fault(const Network& net,
                          std::span<const std::uint64_t> pi_words,
                          NodeId site, bool stuck_value) {
  if (site >= net.node_count())
    throw std::invalid_argument("simulate64_fault: no such node");
  return simulate_impl(net, pi_words, site, stuck_value, true);
}

std::vector<std::uint64_t> to_words(std::span<const bool> pattern) {
  std::vector<std::uint64_t> words(pattern.size());
  for (std::size_t i = 0; i < pattern.size(); ++i)
    words[i] = pattern[i] ? 1ULL : 0ULL;
  return words;
}

std::vector<std::uint64_t> to_words(const std::vector<bool>& pattern) {
  std::vector<std::uint64_t> words(pattern.size());
  for (std::size_t i = 0; i < pattern.size(); ++i)
    words[i] = pattern[i] ? 1ULL : 0ULL;
  return words;
}

std::vector<std::uint64_t> random_pi_words(const Network& net, Rng& rng) {
  std::vector<std::uint64_t> words(net.inputs().size());
  for (auto& w : words) w = rng();
  return words;
}

}  // namespace cwatpg::net
