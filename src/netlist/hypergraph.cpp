#include "netlist/hypergraph.hpp"

#include <algorithm>
#include <stdexcept>

namespace cwatpg::net {

std::size_t Hypergraph::num_pins() const {
  std::size_t pins = 0;
  for (const auto& e : edges) pins += e.size();
  return pins;
}

void Hypergraph::validate() const {
  for (const auto& e : edges) {
    if (e.empty()) throw std::logic_error("Hypergraph: empty edge");
    std::vector<NodeId> sorted(e);
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end())
      throw std::logic_error("Hypergraph: duplicate vertex in edge");
    if (sorted.back() >= num_vertices)
      throw std::logic_error("Hypergraph: vertex out of range");
  }
}

Hypergraph to_hypergraph(const Network& net) {
  Hypergraph hg;
  hg.num_vertices = net.node_count();
  for (NodeId id = 0; id < net.node_count(); ++id) {
    const auto fos = net.fanouts(id);
    if (fos.empty()) continue;
    std::vector<NodeId> edge;
    edge.reserve(fos.size() + 1);
    edge.push_back(id);
    for (NodeId fo : fos) edge.push_back(fo);
    // A node may appear several times in the fanout list (a gate using the
    // same signal on two pins); hyperedges are sets.
    std::sort(edge.begin() + 1, edge.end());
    edge.erase(std::unique(edge.begin(), edge.end()), edge.end());
    hg.edges.push_back(std::move(edge));
  }
  return hg;
}

}  // namespace cwatpg::net
