// ISCAS85 ".bench" netlist format reader and writer.
//
// The format the benchmark suites ship in:
//
//   # comment
//   INPUT(G1)
//   OUTPUT(G17)
//   G10 = NAND(G1, G3)
//   G17 = NOT(G10)
//
// Only combinational primitives are accepted (the suites the paper uses are
// combinational); a DFF line raises ParseError. Reading a netlist we wrote
// round-trips to a structurally identical network.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "netlist/network.hpp"

namespace cwatpg::net {

/// Error with 1-based line number context from the .bench source.
class ParseError : public std::runtime_error {
 public:
  ParseError(std::size_t line, const std::string& what)
      : std::runtime_error(".bench line " + std::to_string(line) + ": " +
                           what),
        line_(line) {}
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// Parses a .bench netlist from a stream. `name` becomes Network::name().
/// Signals may be used before their defining line (the format permits it);
/// the resulting Network is re-topologized. Throws ParseError on malformed
/// input, unknown gate types, sequential elements, combinational cycles, or
/// multiply-driven signals.
Network read_bench(std::istream& in, std::string name = {});

/// Convenience overload parsing from a string literal.
Network read_bench_string(const std::string& text, std::string name = {});

/// Parses from a file path; throws std::runtime_error if unreadable.
Network read_bench_file(const std::string& path);

/// Writes `net` in .bench syntax. Constants are emitted as 1-input
/// AND(x, x)-free idiom: CONST0 as "name = AND(i, NOT i)" is *not* used;
/// instead constants are rejected (the format has no constant primitive) —
/// decompose-then-write pipelines never produce constants.
void write_bench(std::ostream& out, const Network& net);

}  // namespace cwatpg::net
