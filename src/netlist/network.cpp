#include "netlist/network.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <unordered_map>

namespace cwatpg::net {

std::string to_string(GateType type) {
  switch (type) {
    case GateType::kInput: return "INPUT";
    case GateType::kOutput: return "OUTPUT";
    case GateType::kConst0: return "CONST0";
    case GateType::kConst1: return "CONST1";
    case GateType::kBuf: return "BUFF";
    case GateType::kNot: return "NOT";
    case GateType::kAnd: return "AND";
    case GateType::kNand: return "NAND";
    case GateType::kOr: return "OR";
    case GateType::kNor: return "NOR";
    case GateType::kXor: return "XOR";
    case GateType::kXnor: return "XNOR";
  }
  return "?";
}

bool is_logic(GateType type) {
  switch (type) {
    case GateType::kInput:
    case GateType::kOutput:
    case GateType::kConst0:
    case GateType::kConst1:
      return false;
    default:
      return true;
  }
}

std::uint64_t eval_gate_word(GateType type,
                             std::span<const std::uint64_t> ins) {
  switch (type) {
    case GateType::kBuf:
      return ins[0];
    case GateType::kNot:
      return ~ins[0];
    case GateType::kAnd:
    case GateType::kNand: {
      std::uint64_t acc = ~0ULL;
      for (std::uint64_t v : ins) acc &= v;
      return type == GateType::kAnd ? acc : ~acc;
    }
    case GateType::kOr:
    case GateType::kNor: {
      std::uint64_t acc = 0ULL;
      for (std::uint64_t v : ins) acc |= v;
      return type == GateType::kOr ? acc : ~acc;
    }
    case GateType::kXor:
    case GateType::kXnor: {
      std::uint64_t acc = 0ULL;
      for (std::uint64_t v : ins) acc ^= v;
      return type == GateType::kXor ? acc : ~acc;
    }
    case GateType::kConst0:
      return 0ULL;
    case GateType::kConst1:
      return ~0ULL;
    case GateType::kInput:
    case GateType::kOutput:
      throw std::logic_error("eval_gate_word: IO node has no gate function");
  }
  return 0;
}

NodeId Network::push_node(Node node, std::string name) {
  const auto id = static_cast<NodeId>(nodes_.size());
  if (nodes_.size() >= static_cast<std::size_t>(kNullNode))
    throw std::length_error("Network: node count overflow");
  for (NodeId fi : node.fanins) {
    if (fi >= id)
      throw std::invalid_argument("Network: fanin does not exist yet (ids must be topological)");
    if (nodes_[fi].type == GateType::kOutput)
      throw std::invalid_argument("Network: kOutput nodes cannot drive logic");
    fanouts_[fi].push_back(id);
  }
  nodes_.push_back(std::move(node));
  fanouts_.emplace_back();
  node_names_.push_back(std::move(name));
  return id;
}

NodeId Network::add_input(std::string name) {
  const NodeId id = push_node(Node{GateType::kInput, {}}, std::move(name));
  inputs_.push_back(id);
  return id;
}

NodeId Network::add_const(bool value, std::string name) {
  return push_node(
      Node{value ? GateType::kConst1 : GateType::kConst0, {}},
      std::move(name));
}

NodeId Network::add_gate(GateType type, std::vector<NodeId> fanins,
                         std::string name) {
  if (!is_logic(type))
    throw std::invalid_argument("add_gate: type is not a logic gate");
  const bool unary = type == GateType::kNot || type == GateType::kBuf;
  if (unary && fanins.size() != 1)
    throw std::invalid_argument("add_gate: NOT/BUFF need exactly one fanin");
  if (!unary && fanins.empty())
    throw std::invalid_argument("add_gate: gate needs at least one fanin");
  const NodeId id =
      push_node(Node{type, std::move(fanins)}, std::move(name));
  ++gate_count_;
  return id;
}

NodeId Network::add_output(NodeId src, std::string name) {
  if (src >= nodes_.size())
    throw std::invalid_argument("add_output: source does not exist");
  const NodeId id =
      push_node(Node{GateType::kOutput, {src}}, std::move(name));
  outputs_.push_back(id);
  return id;
}

std::string Network::name_of(NodeId id) const {
  if (id < node_names_.size() && !node_names_[id].empty())
    return node_names_[id];
  return "n" + std::to_string(id);
}

std::optional<NodeId> Network::find(const std::string& name) const {
  for (NodeId id = 0; id < node_names_.size(); ++id)
    if (node_names_[id] == name) return id;
  return std::nullopt;
}

std::size_t Network::max_fanin() const {
  std::size_t m = 0;
  for (const auto& n : nodes_)
    if (is_logic(n.type)) m = std::max(m, n.fanins.size());
  return m;
}

std::size_t Network::max_fanout() const {
  std::size_t m = 0;
  for (const auto& fo : fanouts_) m = std::max(m, fo.size());
  return m;
}

std::vector<std::uint32_t> Network::levels() const {
  std::vector<std::uint32_t> lvl(nodes_.size(), 0);
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    std::uint32_t m = 0;
    for (NodeId fi : nodes_[id].fanins) m = std::max(m, lvl[fi] + 1);
    lvl[id] = m;
  }
  return lvl;
}

std::uint32_t Network::depth() const {
  const auto lvl = levels();
  std::uint32_t d = 0;
  for (NodeId po : outputs_) d = std::max(d, lvl[po]);
  return d;
}

void Network::validate() const {
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    switch (n.type) {
      case GateType::kInput:
      case GateType::kConst0:
      case GateType::kConst1:
        if (!n.fanins.empty())
          throw std::logic_error("validate: source node has fanins at " +
                                 name_of(id));
        break;
      case GateType::kOutput:
        if (n.fanins.size() != 1)
          throw std::logic_error("validate: output arity at " + name_of(id));
        break;
      case GateType::kNot:
      case GateType::kBuf:
        if (n.fanins.size() != 1)
          throw std::logic_error("validate: unary gate arity at " +
                                 name_of(id));
        break;
      default:
        if (n.fanins.empty())
          throw std::logic_error("validate: gate with no fanins at " +
                                 name_of(id));
        break;
    }
    for (NodeId fi : n.fanins) {
      if (fi >= id)
        throw std::logic_error("validate: non-topological fanin at " +
                               name_of(id));
      const auto& fo = fanouts_[fi];
      if (std::count(fo.begin(), fo.end(), id) !=
          std::count(n.fanins.begin(), n.fanins.end(), fi))
        throw std::logic_error("validate: fanout list mismatch at " +
                               name_of(fi));
    }
  }
}

std::vector<bool> Network::eval(const std::vector<bool>& pi_values) const {
  const auto unpacked = std::make_unique<bool[]>(pi_values.size());
  for (std::size_t i = 0; i < pi_values.size(); ++i)
    unpacked[i] = pi_values[i];
  return eval(std::span<const bool>(unpacked.get(), pi_values.size()));
}

std::vector<bool> Network::eval(std::span<const bool> pi_values) const {
  if (pi_values.size() != inputs_.size())
    throw std::invalid_argument("eval: wrong number of PI values");
  std::vector<bool> value(nodes_.size(), false);
  for (std::size_t i = 0; i < inputs_.size(); ++i)
    value[inputs_[i]] = pi_values[i];
  std::vector<std::uint64_t> buf;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    switch (n.type) {
      case GateType::kInput:
        break;  // already set from pi_values
      case GateType::kConst0:
        value[id] = false;
        break;
      case GateType::kConst1:
        value[id] = true;
        break;
      case GateType::kOutput:
        value[id] = value[n.fanins[0]];
        break;
      default: {
        buf.clear();
        for (NodeId fi : n.fanins)
          buf.push_back(value[fi] ? ~0ULL : 0ULL);
        value[id] = (eval_gate_word(n.type, buf) & 1ULL) != 0;
        break;
      }
    }
  }
  return value;
}

}  // namespace cwatpg::net
