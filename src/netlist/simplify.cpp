#include "netlist/simplify.hpp"

#include <optional>
#include <vector>

#include "netlist/cone.hpp"

namespace cwatpg::net {
namespace {

/// Builder wrapper that lazily materializes shared constant nodes.
class ConstPool {
 public:
  explicit ConstPool(Network& out) : out_(out) {}

  NodeId get(bool value) {
    NodeId& slot = value ? one_ : zero_;
    if (slot == kNullNode) slot = out_.add_const(value);
    return slot;
  }

  std::optional<bool> value_of(NodeId id) const {
    if (id == zero_) return false;
    if (id == one_) return true;
    switch (out_.type(id)) {
      case GateType::kConst0: return false;
      case GateType::kConst1: return true;
      default: return std::nullopt;
    }
  }

 private:
  Network& out_;
  NodeId zero_ = kNullNode;
  NodeId one_ = kNullNode;
};

NodeId make_not(Network& out, ConstPool& consts, NodeId id) {
  if (const auto c = consts.value_of(id)) return consts.get(!*c);
  return out.add_gate(GateType::kNot, {id});
}

}  // namespace

Network fold_constants(const Network& src) {
  Network out;
  out.set_name(src.name());
  ConstPool consts(out);
  std::vector<NodeId> map(src.node_count(), kNullNode);

  for (NodeId id = 0; id < src.node_count(); ++id) {
    const auto& node = src.node(id);
    switch (node.type) {
      case GateType::kInput:
        map[id] = out.add_input(src.name_of(id));
        continue;
      case GateType::kConst0:
      case GateType::kConst1:
        map[id] = consts.get(node.type == GateType::kConst1);
        continue;
      case GateType::kOutput:
        map[id] = out.add_output(map[node.fanins[0]], src.name_of(id));
        continue;
      default:
        break;
    }

    // Gate: split mapped fanins into constants and live signals.
    std::vector<NodeId> live;
    bool parity = false;       // accumulated constant parity for XOR/XNOR
    bool has_zero = false, has_one = false;
    for (NodeId fi : node.fanins) {
      const NodeId m = map[fi];
      if (const auto c = consts.value_of(m)) {
        (*c ? has_one : has_zero) = true;
        parity ^= *c;
      } else {
        live.push_back(m);
      }
    }

    const bool is_and =
        node.type == GateType::kAnd || node.type == GateType::kNand;
    const bool is_or =
        node.type == GateType::kOr || node.type == GateType::kNor;
    const bool inverted = node.type == GateType::kNand ||
                          node.type == GateType::kNor ||
                          node.type == GateType::kXnor ||
                          node.type == GateType::kNot;

    NodeId result = kNullNode;
    switch (node.type) {
      case GateType::kBuf:
      case GateType::kNot:
        result = live.empty() ? consts.get(parity) : live[0];
        break;
      case GateType::kAnd:
      case GateType::kNand:
      case GateType::kOr:
      case GateType::kNor: {
        const bool killing = is_and ? has_zero : has_one;
        if (killing) {
          result = consts.get(is_or);
        } else if (live.empty()) {
          // All inputs were the identity constant.
          result = consts.get(is_and);
        } else if (live.size() == 1) {
          result = live[0];
        } else {
          result = out.add_gate(is_and ? GateType::kAnd : GateType::kOr,
                                live, src.name_of(id));
        }
        break;
      }
      case GateType::kXor:
      case GateType::kXnor: {
        if (live.empty()) {
          result = consts.get(parity);
        } else if (live.size() == 1) {
          result = parity ? make_not(out, consts, live[0]) : live[0];
        } else {
          result = out.add_gate(GateType::kXor, live, src.name_of(id));
          if (parity) result = make_not(out, consts, result);
        }
        break;
      }
      default:
        break;
    }
    if (inverted) result = make_not(out, consts, result);
    map[id] = result;
  }
  return out;
}

Network sweep_dangling(const Network& src) {
  std::vector<NodeId> roots(src.outputs().begin(), src.outputs().end());
  if (roots.empty()) return src;
  std::vector<bool> mask = transitive_fanin(src, roots);
  // Keep every PI so the interface is stable.
  for (NodeId pi : src.inputs()) mask[pi] = true;
  return extract(src, mask).circuit;
}

Network simplify(const Network& src) {
  return sweep_dangling(fold_constants(src));
}

}  // namespace cwatpg::net
