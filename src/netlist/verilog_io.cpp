#include "netlist/verilog_io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace cwatpg::net {
namespace {

struct Statement {
  std::size_t line = 0;
  std::vector<std::string> tokens;
};

bool identifier_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
         c == '\\';
}
bool identifier_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '$' || c == '\'';
}

/// Splits the stream into ';'-terminated statements of tokens, stripping
/// // and /* */ comments. 'endmodule' (no ';') is emitted as its own
/// statement.
std::vector<Statement> tokenize(std::istream& in) {
  std::vector<Statement> statements;
  Statement current;
  std::string line;
  std::size_t lineno = 0;
  bool in_block_comment = false;

  auto flush = [&]() {
    if (!current.tokens.empty()) statements.push_back(current);
    current.tokens.clear();
  };

  while (std::getline(in, line)) {
    ++lineno;
    std::string text = line;
    // Block comments (may span lines).
    std::string stripped;
    for (std::size_t i = 0; i < text.size();) {
      if (in_block_comment) {
        if (text.compare(i, 2, "*/") == 0) {
          in_block_comment = false;
          i += 2;
        } else {
          ++i;
        }
        continue;
      }
      if (text.compare(i, 2, "/*") == 0) {
        in_block_comment = true;
        i += 2;
        continue;
      }
      if (text.compare(i, 2, "//") == 0) break;
      stripped += text[i++];
    }

    for (std::size_t i = 0; i < stripped.size();) {
      const char c = stripped[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (current.tokens.empty()) current.line = lineno;
      if (c == ';') {
        flush();
        ++i;
        continue;
      }
      if (c == '(' || c == ')' || c == ',' || c == '=') {
        current.tokens.emplace_back(1, c);
        ++i;
        continue;
      }
      if (identifier_start(c) || std::isdigit(static_cast<unsigned char>(c))) {
        std::size_t j = i;
        if (c == '\\') {  // escaped identifier: up to whitespace
          ++j;
          while (j < stripped.size() &&
                 !std::isspace(static_cast<unsigned char>(stripped[j])))
            ++j;
        } else {
          while (j < stripped.size() && identifier_char(stripped[j])) ++j;
        }
        current.tokens.push_back(stripped.substr(i, j - i));
        if (current.tokens.back() == "endmodule") flush();
        i = j;
        continue;
      }
      throw VerilogError(lineno, std::string("unexpected character '") + c +
                                     "'");
    }
  }
  flush();
  return statements;
}

struct GateDef {
  std::size_t line = 0;
  GateType type = GateType::kBuf;
  std::vector<std::string> inputs;  // "1'b0"/"1'b1" allowed
};

std::optional<GateType> primitive(const std::string& word) {
  if (word == "and") return GateType::kAnd;
  if (word == "nand") return GateType::kNand;
  if (word == "or") return GateType::kOr;
  if (word == "nor") return GateType::kNor;
  if (word == "xor") return GateType::kXor;
  if (word == "xnor") return GateType::kXnor;
  if (word == "not") return GateType::kNot;
  if (word == "buf") return GateType::kBuf;
  return std::nullopt;
}

}  // namespace

Network read_verilog(std::istream& in) {
  const std::vector<Statement> statements = tokenize(in);

  std::string module_name = "verilog";
  std::vector<std::pair<std::string, std::size_t>> inputs, outputs;
  std::unordered_map<std::string, GateDef> defs;
  bool saw_module = false, saw_end = false;

  for (const Statement& st : statements) {
    const auto& t = st.tokens;
    if (t.empty()) continue;
    const std::string& kw = t[0];
    if (kw == "module") {
      if (saw_module) throw VerilogError(st.line, "multiple modules");
      saw_module = true;
      if (t.size() >= 2) module_name = t[1];
      continue;  // port list carries no direction info
    }
    if (kw == "endmodule") {
      saw_end = true;
      continue;
    }
    if (!saw_module)
      throw VerilogError(st.line, "statement before 'module'");
    if (saw_end) throw VerilogError(st.line, "statement after 'endmodule'");
    if (kw == "input" || kw == "output" || kw == "wire") {
      for (std::size_t i = 1; i < t.size(); ++i) {
        if (t[i] == ",") continue;
        if (t[i] == "(" || t[i] == ")" || t[i] == "=")
          throw VerilogError(st.line, "vectors/ranges not supported");
        if (kw == "input") inputs.emplace_back(t[i], st.line);
        if (kw == "output") outputs.emplace_back(t[i], st.line);
        // wires carry no information we need
      }
      continue;
    }
    if (kw == "assign") {
      // assign lhs = rhs ;
      if (t.size() != 4 || t[2] != "=")
        throw VerilogError(st.line, "unsupported assign form");
      GateDef def;
      def.line = st.line;
      def.type = GateType::kBuf;
      def.inputs = {t[3]};
      if (!defs.emplace(t[1], def).second)
        throw VerilogError(st.line, "signal '" + t[1] + "' multiply driven");
      continue;
    }
    if (const auto type = primitive(kw)) {
      // gate [inst] ( out , in... ) — find the parenthesis.
      std::size_t lp = 1;
      if (lp < t.size() && t[lp] != "(") ++lp;  // optional instance name
      if (lp >= t.size() || t[lp] != "(")
        throw VerilogError(st.line, "expected port list");
      std::vector<std::string> ports;
      for (std::size_t i = lp + 1; i < t.size() && t[i] != ")"; ++i)
        if (t[i] != ",") ports.push_back(t[i]);
      if (ports.size() < 2)
        throw VerilogError(st.line, "gate needs an output and an input");
      GateDef def;
      def.line = st.line;
      def.type = *type;
      def.inputs.assign(ports.begin() + 1, ports.end());
      const bool unary = *type == GateType::kNot || *type == GateType::kBuf;
      if (unary && def.inputs.size() != 1)
        throw VerilogError(st.line, "not/buf take one input");
      if (!defs.emplace(ports[0], def).second)
        throw VerilogError(st.line,
                           "signal '" + ports[0] + "' multiply driven");
      continue;
    }
    if (kw == "always" || kw == "reg" || kw == "initial")
      throw VerilogError(st.line,
                         "behavioral/sequential constructs not supported");
    throw VerilogError(st.line, "unsupported statement '" + kw + "'");
  }
  if (!saw_module) throw VerilogError(0, "no module found");
  if (!saw_end) throw VerilogError(0, "missing 'endmodule'");

  // Topological construction (signals may be used before definition).
  Network netw;
  netw.set_name(module_name);
  std::unordered_map<std::string, NodeId> built;
  for (const auto& [name, line] : inputs) {
    if (defs.count(name))
      throw VerilogError(line, "input '" + name + "' also driven");
    if (built.count(name))
      throw VerilogError(line, "input '" + name + "' declared twice");
    built.emplace(name, netw.add_input(name));
  }

  enum class Mark : std::uint8_t { kUnseen, kActive, kDone };
  std::unordered_map<std::string, Mark> mark;
  NodeId const0 = kNullNode, const1 = kNullNode;
  auto resolve = [&](const std::string& name,
                     std::size_t line) -> std::optional<NodeId> {
    if (name == "1'b0" || name == "1'd0") {
      if (const0 == kNullNode) const0 = netw.add_const(false);
      return const0;
    }
    if (name == "1'b1" || name == "1'd1") {
      if (const1 == kNullNode) const1 = netw.add_const(true);
      return const1;
    }
    const auto it = built.find(name);
    if (it != built.end()) return it->second;
    if (!defs.count(name))
      throw VerilogError(line, "signal '" + name + "' never driven");
    return std::nullopt;
  };

  // Iterative DFS identical in spirit to the .bench reader.
  auto build_signal = [&](const std::string& root) {
    if (built.count(root) || !defs.count(root)) return;
    std::vector<std::pair<std::string, std::size_t>> stack{{root, 0}};
    while (!stack.empty()) {
      auto& [sig, next] = stack.back();
      const GateDef& def = defs.at(sig);
      if (next == 0) {
        Mark& m = mark[sig];
        if (m == Mark::kActive)
          throw VerilogError(def.line, "combinational cycle through '" + sig + "'");
        m = Mark::kActive;
      }
      bool descended = false;
      while (next < def.inputs.size()) {
        const std::string& arg = def.inputs[next];
        ++next;
        if (!resolve(arg, def.line).has_value()) {
          if (mark[arg] == Mark::kActive)
            throw VerilogError(def.line,
                               "combinational cycle through '" + arg + "'");
          stack.emplace_back(arg, 0);
          descended = true;
          break;
        }
      }
      if (descended) continue;
      std::vector<NodeId> fis;
      for (const std::string& arg : def.inputs)
        fis.push_back(*resolve(arg, def.line));
      built.emplace(sig, netw.add_gate(def.type, std::move(fis), sig));
      mark[sig] = Mark::kDone;
      stack.pop_back();
    }
  };
  for (const auto& [sig, def] : defs) {
    (void)def;
    build_signal(sig);
  }
  for (const auto& [sig, line] : outputs) {
    const auto node = resolve(sig, line);
    if (!node) throw VerilogError(line, "output '" + sig + "' never driven");
    netw.add_output(*node, sig + "_po");
  }
  netw.validate();
  return netw;
}

Network read_verilog_string(const std::string& text) {
  std::istringstream ss(text);
  return read_verilog(ss);
}

Network read_verilog_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open verilog file: " + path);
  return read_verilog(f);
}

void write_verilog(std::ostream& out, const Network& netw) {
  // Verilog-safe unique names.
  std::vector<std::string> name(netw.node_count());
  std::unordered_set<std::string> used;
  auto sanitize = [&](NodeId id) {
    std::string s = netw.name_of(id);
    if (s.empty() || !identifier_start(s[0]) || s[0] == '\\') s = "n_" + s;
    for (char& c : s)
      if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
          c != '$')
        c = '_';
    while (!used.insert(s).second) s += "_" + std::to_string(id);
    return s;
  };
  for (NodeId id = 0; id < netw.node_count(); ++id) name[id] = sanitize(id);

  const std::string module =
      netw.name().empty() ? std::string("cwatpg") : netw.name();
  out << "module " << (identifier_start(module[0]) ? module : "m_" + module)
      << " (";
  bool first = true;
  for (NodeId pi : netw.inputs()) {
    out << (first ? "" : ", ") << name[pi];
    first = false;
  }
  for (NodeId po : netw.outputs()) {
    out << (first ? "" : ", ") << name[po];
    first = false;
  }
  out << ");\n";

  if (!netw.inputs().empty()) {
    out << "  input ";
    for (std::size_t i = 0; i < netw.inputs().size(); ++i)
      out << (i ? ", " : "") << name[netw.inputs()[i]];
    out << ";\n";
  }
  if (!netw.outputs().empty()) {
    out << "  output ";
    for (std::size_t i = 0; i < netw.outputs().size(); ++i)
      out << (i ? ", " : "") << name[netw.outputs()[i]];
    out << ";\n";
  }
  bool any_wire = false;
  for (NodeId id = 0; id < netw.node_count(); ++id) {
    if (!is_logic(netw.type(id)) && netw.type(id) != GateType::kConst0 &&
        netw.type(id) != GateType::kConst1)
      continue;
    out << (any_wire ? ", " : "  wire ") << name[id];
    any_wire = true;
  }
  if (any_wire) out << ";\n";
  out << "\n";

  std::size_t instance = 0;
  for (NodeId id = 0; id < netw.node_count(); ++id) {
    switch (netw.type(id)) {
      case GateType::kInput:
        break;
      case GateType::kConst0:
        out << "  assign " << name[id] << " = 1'b0;\n";
        break;
      case GateType::kConst1:
        out << "  assign " << name[id] << " = 1'b1;\n";
        break;
      case GateType::kOutput:
        out << "  assign " << name[id] << " = "
            << name[netw.fanins(id)[0]] << ";\n";
        break;
      default: {
        std::string keyword = to_string(netw.type(id));
        std::transform(keyword.begin(), keyword.end(), keyword.begin(),
                       [](unsigned char c) { return std::tolower(c); });
        if (keyword == "buff") keyword = "buf";
        out << "  " << keyword << " g" << instance++ << " (" << name[id];
        for (NodeId fi : netw.fanins(id)) out << ", " << name[fi];
        out << ");\n";
        break;
      }
    }
  }
  out << "endmodule\n";
}

}  // namespace cwatpg::net
