// Topological circuit statistics (the characterization vocabulary of
// Hutton et al. [14]).
//
// DESIGN.md's substitution argument — that synthetic suites can stand in
// for ISCAS85/MCNC91 because the experiments only consume topology — is a
// claim about these statistics: size, depth, fanin/fanout distributions,
// wiring-length profile, and the amount of reconvergence. This module
// computes them; bench_topology_stats prints them side by side for every
// suite member so the resemblance is auditable rather than asserted.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "netlist/network.hpp"

namespace cwatpg::net {

struct TopoStats {
  std::size_t nodes = 0;
  std::size_t gates = 0;
  std::size_t inputs = 0;
  std::size_t outputs = 0;
  std::size_t depth = 0;

  double mean_fanin = 0;   ///< over logic gates
  double mean_fanout = 0;  ///< over driven signals
  std::size_t max_fanout = 0;
  /// Fraction of driven signals with fanout exactly 1 (tree-ness).
  double fanout1_fraction = 0;

  /// Fraction of fanout stems (fanout >= 2) that reconverge: some node is
  /// reachable from the stem via two fanout branches. This is the paper's
  /// "minimality of reconvergence" made measurable.
  double reconvergent_stem_fraction = 0;
  std::size_t fanout_stems = 0;

  /// Mean logic-level span of signal edges (|level(sink) - level(driver)|),
  /// the "wire length" proxy of [14].
  double mean_level_span = 0;
};

/// Computes all statistics in O(stems * cone) worst case (reconvergence
/// needs one forward reachability sweep per stem).
TopoStats topo_stats(const Network& net);

/// One-line rendering for tables/logs.
std::ostream& operator<<(std::ostream& os, const TopoStats& stats);

}  // namespace cwatpg::net
