#include "netlist/topo_stats.hpp"

#include <algorithm>
#include <ostream>

namespace cwatpg::net {
namespace {

/// True iff two distinct fanout branches of `stem` reach a common node.
/// Marks reachability per branch with a small bitset (branch count of a
/// stem is k_fo-bounded, <= 32 branches tracked).
bool stem_reconverges(const Network& netw, NodeId stem) {
  const auto branches = netw.fanouts(stem);
  const std::size_t k = std::min<std::size_t>(branches.size(), 32);
  if (k < 2) return false;
  std::vector<std::uint32_t> mark(netw.node_count(), 0);
  // Seed each branch with its own bit; propagate in topological id order.
  for (std::size_t b = 0; b < k; ++b) {
    // The same sink may appear on several pins; merging bits is fine (the
    // *net* reconverges structurally at that sink only if two distinct
    // sinks meet downstream — a duplicated pin is local reconvergence at
    // the sink gate itself and counts too).
    if (mark[branches[b]] != 0) return true;
    mark[branches[b]] |= 1u << b;
  }
  NodeId first = *std::min_element(branches.begin(), branches.begin() +
                                                         static_cast<std::ptrdiff_t>(k));
  for (NodeId v = first; v < netw.node_count(); ++v) {
    std::uint32_t bits = mark[v];
    if (bits == 0) continue;
    for (NodeId fo : netw.fanouts(v)) {
      mark[fo] |= bits;
      if ((mark[fo] & (mark[fo] - 1)) != 0) return true;  // >= 2 bits met
    }
  }
  return false;
}

}  // namespace

TopoStats topo_stats(const Network& netw) {
  TopoStats s;
  s.nodes = netw.node_count();
  s.gates = netw.gate_count();
  s.inputs = netw.inputs().size();
  s.outputs = netw.outputs().size();
  s.depth = netw.depth();

  std::size_t fanin_sum = 0;
  std::size_t driven = 0, fanout_sum = 0, fanout1 = 0;
  for (NodeId id = 0; id < netw.node_count(); ++id) {
    if (is_logic(netw.type(id)))
      fanin_sum += netw.fanins(id).size();
    const std::size_t fo = netw.fanouts(id).size();
    if (fo > 0) {
      ++driven;
      fanout_sum += fo;
      if (fo == 1) ++fanout1;
      s.max_fanout = std::max(s.max_fanout, fo);
    }
  }
  s.mean_fanin = s.gates ? static_cast<double>(fanin_sum) /
                               static_cast<double>(s.gates)
                         : 0.0;
  s.mean_fanout =
      driven ? static_cast<double>(fanout_sum) / static_cast<double>(driven)
             : 0.0;
  s.fanout1_fraction =
      driven ? static_cast<double>(fanout1) / static_cast<double>(driven)
             : 0.0;

  // Reconvergence over fanout stems.
  std::size_t reconvergent = 0;
  for (NodeId id = 0; id < netw.node_count(); ++id) {
    if (netw.fanouts(id).size() < 2) continue;
    ++s.fanout_stems;
    if (stem_reconverges(netw, id)) ++reconvergent;
  }
  s.reconvergent_stem_fraction =
      s.fanout_stems ? static_cast<double>(reconvergent) /
                           static_cast<double>(s.fanout_stems)
                     : 0.0;

  // Level spans.
  const auto levels = netw.levels();
  std::size_t edges = 0;
  double span_sum = 0;
  for (NodeId id = 0; id < netw.node_count(); ++id) {
    for (NodeId fo : netw.fanouts(id)) {
      ++edges;
      span_sum += static_cast<double>(levels[fo] > levels[id]
                                          ? levels[fo] - levels[id]
                                          : levels[id] - levels[fo]);
    }
  }
  s.mean_level_span = edges ? span_sum / static_cast<double>(edges) : 0.0;
  return s;
}

std::ostream& operator<<(std::ostream& os, const TopoStats& s) {
  os << "nodes=" << s.nodes << " depth=" << s.depth
     << " fanin=" << s.mean_fanin << " fanout=" << s.mean_fanout
     << " fo1=" << s.fanout1_fraction
     << " reconv=" << s.reconvergent_stem_fraction;
  return os;
}

}  // namespace cwatpg::net
