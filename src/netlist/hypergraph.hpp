// Circuit -> undirected hypergraph conversion (§4.2).
//
// "The network C can be seen as an undirected hypergraph with the signals
// as the hyperedges, and the gates, inputs and outputs as the nodes."
// Node v of the hypergraph is exactly NodeId v of the network; the
// hyperedge for a signal driven by node d spans {d} ∪ fanouts(d).
#pragma once

#include <vector>

#include "netlist/network.hpp"

namespace cwatpg::net {

/// Plain hypergraph: vertices 0..n-1, each edge a set of distinct vertices.
/// Shared with src/partition (which consumes exactly this shape).
struct Hypergraph {
  std::size_t num_vertices = 0;
  std::vector<std::vector<NodeId>> edges;

  std::size_t num_edges() const { return edges.size(); }

  /// Total number of vertex-edge incidences (pins).
  std::size_t num_pins() const;

  /// Throws std::logic_error if an edge references a missing vertex or
  /// contains duplicates.
  void validate() const;
};

/// Builds the signal hypergraph of `net`. Every driven signal with at least
/// one sink becomes a hyperedge {driver} ∪ fanouts(driver); nodes with no
/// fanout (e.g. kOutput markers) contribute no edge. Vertex v == NodeId v.
Hypergraph to_hypergraph(const Network& net);

}  // namespace cwatpg::net
