#include "util/curvefit.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cwatpg {
namespace {

/// Ordinary least squares for y = a*u + b given transformed abscissae u.
struct LinePair {
  double a = 0.0;
  double b = 0.0;
};

LinePair ols(std::span<const double> us, std::span<const double> vs) {
  const auto n = static_cast<double>(us.size());
  double su = 0.0, sv = 0.0, suu = 0.0, suv = 0.0;
  for (std::size_t i = 0; i < us.size(); ++i) {
    su += us[i];
    sv += vs[i];
    suu += us[i] * us[i];
    suv += us[i] * vs[i];
  }
  const double denom = n * suu - su * su;
  LinePair line;
  if (std::abs(denom) < 1e-12) {
    // Degenerate (all x equal): best constant fit.
    line.a = 0.0;
    line.b = sv / n;
  } else {
    line.a = (n * suv - su * sv) / denom;
    line.b = (sv - line.a * su) / n;
  }
  return line;
}

}  // namespace

std::string to_string(FitModel model) {
  switch (model) {
    case FitModel::kLinear: return "linear";
    case FitModel::kLogarithmic: return "logarithmic";
    case FitModel::kPower: return "power";
  }
  return "unknown";
}

double Fit::eval(double x) const {
  switch (model) {
    case FitModel::kLinear: return a * x + b;
    case FitModel::kLogarithmic: return x > 0 ? a * std::log(x) + b : b;
    case FitModel::kPower: return x > 0 ? a * std::pow(x, b) : 0.0;
  }
  return 0.0;
}

std::string Fit::describe() const {
  char buf[128];
  switch (model) {
    case FitModel::kLinear:
      std::snprintf(buf, sizeof buf, "y = %.4g*x + %.4g", a, b);
      break;
    case FitModel::kLogarithmic:
      std::snprintf(buf, sizeof buf, "y = %.4g*log(x) + %.4g", a, b);
      break;
    case FitModel::kPower:
      std::snprintf(buf, sizeof buf, "y = %.4g*x^%.4g", a, b);
      break;
  }
  return std::string(buf);
}

Fit fit_curve(std::span<const double> xs, std::span<const double> ys,
              FitModel model) {
  if (xs.size() != ys.size())
    throw std::invalid_argument("fit_curve: xs and ys must match in size");

  std::vector<double> us, vs, fx, fy;
  us.reserve(xs.size());
  vs.reserve(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double x = xs[i];
    const double y = ys[i];
    switch (model) {
      case FitModel::kLinear:
        us.push_back(x);
        vs.push_back(y);
        fx.push_back(x);
        fy.push_back(y);
        break;
      case FitModel::kLogarithmic:
        if (x > 0) {
          us.push_back(std::log(x));
          vs.push_back(y);
          fx.push_back(x);
          fy.push_back(y);
        }
        break;
      case FitModel::kPower:
        if (x > 0 && y > 0) {
          us.push_back(std::log(x));
          vs.push_back(std::log(y));
          fx.push_back(x);
          fy.push_back(y);
        }
        break;
    }
  }
  if (us.size() < 2)
    throw std::invalid_argument("fit_curve: need at least 2 usable points");

  const LinePair line = ols(us, vs);

  Fit fit;
  fit.model = model;
  fit.n = us.size();
  if (model == FitModel::kPower) {
    // log(y) = log(a) + b*log(x): slope is the exponent.
    fit.a = std::exp(line.b);
    fit.b = line.a;
  } else {
    fit.a = line.a;
    fit.b = line.b;
  }

  // Score in the original y space so the three families are comparable.
  double mean_y = 0.0;
  for (double y : fy) mean_y += y;
  mean_y /= static_cast<double>(fy.size());
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < fx.size(); ++i) {
    const double resid = fy[i] - fit.eval(fx[i]);
    fit.rss += resid * resid;
    ss_tot += (fy[i] - mean_y) * (fy[i] - mean_y);
  }
  fit.r_squared = ss_tot > 0 ? 1.0 - fit.rss / ss_tot : 1.0;
  return fit;
}

std::vector<Fit> fit_all(std::span<const double> xs,
                         std::span<const double> ys) {
  std::vector<Fit> fits;
  for (FitModel m :
       {FitModel::kLinear, FitModel::kLogarithmic, FitModel::kPower}) {
    try {
      fits.push_back(fit_curve(xs, ys, m));
    } catch (const std::invalid_argument&) {
      // Family unusable on this data (e.g. nonpositive values); skip it.
    }
  }
  std::sort(fits.begin(), fits.end(),
            [](const Fit& a, const Fit& b) { return a.rss < b.rss; });
  return fits;
}

}  // namespace cwatpg
