#include "util/threadpool.hpp"

#include <atomic>
#include <cassert>
#include <exception>
#include <utility>

#include "util/rng.hpp"

namespace cwatpg {

namespace {
thread_local std::size_t tls_worker_index = ThreadPool::kNotAWorker;
}  // namespace

struct ThreadPool::Worker {
  std::mutex mutex;
  std::deque<Task> deque;
  Rng rng;  ///< steal-victim stream; touched only by the owning thread
  // Telemetry counters: written only by the owning thread (relaxed RMW),
  // read by telemetry() from any thread.
  std::atomic<std::uint64_t> executed{0};
  std::atomic<std::uint64_t> steals{0};

  explicit Worker(std::uint64_t seed) : rng(seed) {}
};

std::size_t ThreadPool::default_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t ThreadPool::worker_index() { return tls_worker_index; }

std::vector<ThreadPool::WorkerTelemetry> ThreadPool::telemetry() const {
  std::vector<WorkerTelemetry> out(workers_.size());
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    out[i].executed = workers_[i]->executed.load(std::memory_order_relaxed);
    out[i].steals = workers_[i]->steals.load(std::memory_order_relaxed);
  }
  return out;
}

ThreadPool::ThreadPool(std::size_t num_threads, std::uint64_t seed) {
  if (num_threads == 0) num_threads = default_thread_count();
  workers_.reserve(num_threads);
  std::uint64_t sm = seed;
  for (std::size_t i = 0; i < num_threads; ++i)
    workers_.push_back(std::make_unique<Worker>(splitmix64(sm)));
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i)
    threads_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(Task task) {
  const std::size_t self = tls_worker_index;
  std::size_t target;
  if (self != kNotAWorker && self < workers_.size()) {
    target = self;
  } else {
    // Round-robin from outside the pool; next_target_ lives behind mutex_
    // anyway because we must take it to bump queued_.
    static thread_local std::size_t rr = 0;
    target = rr++ % workers_.size();
  }
  {
    std::lock_guard<std::mutex> worker_lock(workers_[target]->mutex);
    workers_[target]->deque.push_back(std::move(task));
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++queued_;
    ++pending_;
  }
  wake_cv_.notify_one();
}

bool ThreadPool::try_pop_local(std::size_t index, Task& task) {
  Worker& w = *workers_[index];
  std::lock_guard<std::mutex> lock(w.mutex);
  if (w.deque.empty()) return false;
  task = std::move(w.deque.back());
  w.deque.pop_back();
  return true;
}

bool ThreadPool::try_steal(std::size_t index, Task& task) {
  const std::size_t n = workers_.size();
  if (n <= 1) return false;
  // Random starting victim, then sweep — randomization spreads contention,
  // the sweep guarantees we find work if any deque is non-empty.
  const std::size_t start = static_cast<std::size_t>(
      workers_[index]->rng.below(static_cast<std::uint64_t>(n)));
  for (std::size_t offset = 0; offset < n; ++offset) {
    const std::size_t victim = (start + offset) % n;
    if (victim == index) continue;
    Worker& w = *workers_[victim];
    std::lock_guard<std::mutex> lock(w.mutex);
    if (w.deque.empty()) continue;
    task = std::move(w.deque.front());
    w.deque.pop_front();
    return true;
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t index) {
  tls_worker_index = index;
  for (;;) {
    Task task;
    bool stolen = false;
    if (try_pop_local(index, task) || (stolen = try_steal(index, task))) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        --queued_;
      }
      Worker& self = *workers_[index];
      self.executed.fetch_add(1, std::memory_order_relaxed);
      if (stolen) self.steals.fetch_add(1, std::memory_order_relaxed);
      std::exception_ptr error;
      try {
        task();
      } catch (...) {
        error = std::current_exception();
      }
      task = nullptr;
      std::lock_guard<std::mutex> lock(mutex_);
      if (error && !first_error_) first_error_ = error;
      if (--pending_ == 0) idle_cv_.notify_all();
      continue;
    }
    std::unique_lock<std::mutex> lock(mutex_);
    wake_cv_.wait(lock, [&] { return stop_ || queued_ > 0; });
    if (stop_ && queued_ == 0) return;
  }
}

void ThreadPool::wait_idle() {
  assert(tls_worker_index == kNotAWorker &&
         "wait_idle() called from inside the pool");
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [&] { return pending_ == 0; });
  if (first_error_) {
    const std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  assert(tls_worker_index == kNotAWorker &&
         "parallel_for() called from inside the pool");
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  const std::size_t count = end - begin;
  if (size() <= 1 || count <= grain) {
    body(begin, end);
    return;
  }

  struct Latch {
    std::mutex mutex;
    std::condition_variable cv;
    std::size_t remaining;
    std::exception_ptr error;
  };
  auto latch = std::make_shared<Latch>();
  const std::size_t chunks = (count + grain - 1) / grain;
  latch->remaining = chunks;

  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * grain;
    const std::size_t hi = std::min(end, lo + grain);
    submit([latch, lo, hi, &body] {
      std::exception_ptr err;
      try {
        body(lo, hi);
      } catch (...) {
        err = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(latch->mutex);
      if (err && !latch->error) latch->error = err;
      if (--latch->remaining == 0) latch->cv.notify_all();
    });
  }

  std::unique_lock<std::mutex> lock(latch->mutex);
  latch->cv.wait(lock, [&] { return latch->remaining == 0; });
  if (latch->error) std::rethrow_exception(latch->error);
}

}  // namespace cwatpg
