#include "util/budget.hpp"

namespace cwatpg {

const char* to_string(StopReason reason) {
  switch (reason) {
    case StopReason::kNone: return "none";
    case StopReason::kConflictLimit: return "conflict-limit";
    case StopReason::kPropagationLimit: return "propagation-limit";
    case StopReason::kDeadline: return "deadline";
    case StopReason::kCancelled: return "cancelled";
  }
  return "?";
}

void Budget::set_deadline_after(double seconds) {
  set_deadline(Clock::now() +
               std::chrono::duration_cast<Clock::duration>(
                   std::chrono::duration<double>(seconds)));
}

void Budget::set_deadline(Clock::time_point when) {
  deadline_ = when;
  has_deadline_ = true;
}

double Budget::remaining_seconds() const {
  if (!has_deadline_) return std::numeric_limits<double>::infinity();
  return std::chrono::duration<double>(deadline_ - Clock::now()).count();
}

bool Budget::past_deadline() const {
  return has_deadline_ && Clock::now() >= deadline_;
}

std::uint64_t saturating_mul(std::uint64_t a, std::uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > Budget::kUnlimited / b) return Budget::kUnlimited;
  return a * b;
}

}  // namespace cwatpg
