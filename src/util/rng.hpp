// Deterministic pseudo-random number generation for reproducible experiments.
//
// Every randomized component in the library (generators, partitioner
// multi-starts, fault sampling) takes an explicit seed so that benches and
// tests are reproducible run-to-run and machine-to-machine. We use
// xoshiro256** seeded through splitmix64, which is fast, has a 256-bit
// state, and passes BigCrush — std::mt19937_64 would also work but its
// seeding from a single 64-bit value is notoriously weak.
#pragma once

#include <cstdint>
#include <limits>

namespace cwatpg {

/// splitmix64 step; used to expand a single seed into xoshiro state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Derives the `index`-th independent substream seed from a master seed.
/// This is splitmix64's own sequence-splitting discipline: jumping the
/// state by index golden-gamma increments lands on the index-th output of
/// the stream rooted at `seed`, so substreams are as decorrelated as
/// splitmix64 outputs are. The fault-parallel ATPG engine uses this to
/// give every pool worker its own Rng split from AtpgOptions::seed.
constexpr std::uint64_t split_seed(std::uint64_t seed,
                                   std::uint64_t index) noexcept {
  std::uint64_t state = seed + index * 0x9e3779b97f4a7c15ULL;
  return splitmix64(state);
}

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator so it can be
/// used with <algorithm> shuffles and <random> distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x6c7ea5f1d4b3c2a1ULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift reduction;
  /// the slight modulo bias (< 2^-32 for bound < 2^32) is irrelevant for
  /// circuit generation.
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    return (*this)() % bound;
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    if (hi <= lo) return lo;
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with success probability p.
  constexpr bool chance(double p) noexcept { return uniform() < p; }

  /// Geometric-ish positive integer with mean roughly `mean` (>= 1);
  /// used for fanout distributions in the Hutton-style generator.
  std::uint32_t geometric_at_least_one(double mean) noexcept {
    if (mean <= 1.0) return 1;
    const double p = 1.0 / mean;
    std::uint32_t value = 1;
    while (value < 64 && !chance(p)) ++value;
    return value;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace cwatpg
