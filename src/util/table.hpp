// Minimal fixed-width ASCII table printer used by the bench harnesses so
// every experiment emits the same tabular format the paper's figures encode.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace cwatpg {

/// Collects rows of strings and prints them with right-aligned, padded
/// columns. Numeric formatting is the caller's job (use cell() helpers).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; must match the header's column count.
  void add_row(std::vector<std::string> row);

  /// Renders the table with a header underline to `os`.
  void print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `prec` significant decimal digits.
std::string cell(double v, int prec = 3);
/// Formats an integral count.
std::string cell(std::size_t v);
std::string cell(std::uint32_t v);
std::string cell(int v);

}  // namespace cwatpg
