#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace cwatpg {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size())
    throw std::invalid_argument("Table: row width mismatch");
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << std::string(width[c] - row[c].size(), ' ') << row[c];
    }
    os << '\n';
  };

  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c == 0 ? 0 : 2);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string cell(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

std::string cell(std::size_t v) { return std::to_string(v); }
std::string cell(std::uint32_t v) { return std::to_string(v); }
std::string cell(int v) { return std::to_string(v); }

}  // namespace cwatpg
