// Least-squares curve fitting for the paper's Figure 8 analysis.
//
// Section 5.2.2 fits three model families to (circuit size, cut-width)
// scatter data — linear y = a·x + b, logarithmic y = a·log(x) + b, and
// power y = a·x^b — and reports that the logarithmic family gives the best
// least-squares fit. We reproduce exactly that comparison: all three fits
// plus residual sum of squares and R² evaluated *in the original y space*
// (the power fit is solved in log-log space but scored untransformed, so the
// three families are comparable).
#pragma once

#include <span>
#include <string>
#include <vector>

namespace cwatpg {

enum class FitModel { kLinear, kLogarithmic, kPower };

/// Converts a FitModel to its display name ("linear", "logarithmic", "power").
std::string to_string(FitModel model);

/// One fitted curve: parameters, residual sum of squares and R² in y space.
struct Fit {
  FitModel model = FitModel::kLinear;
  double a = 0.0;
  double b = 0.0;
  double rss = 0.0;      ///< residual sum of squares, original y space
  double r_squared = 0.0;
  std::size_t n = 0;

  /// Evaluates the fitted curve at x.
  double eval(double x) const;

  /// "y = 1.23*log(x) + -4.56" style description.
  std::string describe() const;
};

/// Fits one model family. For kLogarithmic and kPower, points with x <= 0
/// (and y <= 0 for kPower) are skipped. Throws std::invalid_argument when
/// fewer than two usable points remain or xs/ys sizes differ.
Fit fit_curve(std::span<const double> xs, std::span<const double> ys,
              FitModel model);

/// Fits all three families and returns them sorted best-first by RSS,
/// reproducing the model-selection step of §5.2.2.
std::vector<Fit> fit_all(std::span<const double> xs,
                         std::span<const double> ys);

}  // namespace cwatpg
