#include "util/lp.hpp"

#include <cmath>
#include <stdexcept>

namespace cwatpg {

std::optional<std::vector<double>> lp_feasible(
    const std::vector<std::vector<double>>& a, const std::vector<double>& b,
    const std::vector<double>& ub, double eps) {
  const std::size_t n = ub.size();
  if (a.size() != b.size())
    throw std::invalid_argument("lp_feasible: A/b size mismatch");
  for (const auto& row : a)
    if (row.size() != n)
      throw std::invalid_argument("lp_feasible: row width mismatch");

  // Rows: the m constraint rows plus n upper-bound rows x_j <= ub_j.
  const std::size_t m = a.size() + n;
  // Columns: n structural + m slack/surplus + (<= m) artificial + RHS.
  // Count artificials first (rows with negative rhs).
  std::vector<double> rhs(m);
  std::vector<std::vector<double>> rows(m, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < a.size(); ++i) {
    rows[i] = a[i];
    rhs[i] = b[i];
  }
  for (std::size_t j = 0; j < n; ++j) {
    rows[a.size() + j][j] = 1.0;
    rhs[a.size() + j] = ub[j];
  }

  std::size_t num_artificial = 0;
  for (std::size_t i = 0; i < m; ++i)
    if (rhs[i] < 0) ++num_artificial;

  const std::size_t slack_base = n;
  const std::size_t artificial_base = n + m;
  const std::size_t total_cols = n + m + num_artificial;

  // Dense tableau with an extra objective row (phase-1: minimize sum of
  // artificials) and RHS column.
  std::vector<std::vector<double>> t(
      m + 1, std::vector<double>(total_cols + 1, 0.0));
  std::vector<std::size_t> basis(m);

  std::size_t next_artificial = artificial_base;
  for (std::size_t i = 0; i < m; ++i) {
    double sign = 1.0;
    if (rhs[i] < 0) sign = -1.0;  // flip row so RHS >= 0
    for (std::size_t j = 0; j < n; ++j) t[i][j] = sign * rows[i][j];
    t[i][slack_base + i] = sign;  // slack (or surplus when flipped)
    t[i][total_cols] = sign * rhs[i];
    if (sign < 0) {
      t[i][next_artificial] = 1.0;
      basis[i] = next_artificial++;
    } else {
      basis[i] = slack_base + i;
    }
  }

  // Objective row: minimize sum of artificials => maximize -sum. Express
  // the objective in terms of non-basic variables by subtracting the
  // artificial rows.
  auto& obj = t[m];
  for (std::size_t i = 0; i < m; ++i) {
    if (basis[i] >= artificial_base) {
      for (std::size_t j = 0; j <= total_cols; ++j) obj[j] -= t[i][j];
    }
  }

  // Simplex with Bland's rule.
  for (;;) {
    // Entering column: smallest index with negative reduced cost.
    std::size_t enter = total_cols;
    for (std::size_t j = 0; j < total_cols; ++j) {
      if (obj[j] < -eps) {
        enter = j;
        break;
      }
    }
    if (enter == total_cols) break;  // optimal

    // Leaving row: min ratio, ties by smallest basis index (Bland).
    std::size_t leave = m;
    double best_ratio = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      if (t[i][enter] > eps) {
        const double ratio = t[i][total_cols] / t[i][enter];
        if (leave == m || ratio < best_ratio - eps ||
            (ratio < best_ratio + eps && basis[i] < basis[leave])) {
          leave = i;
          best_ratio = ratio;
        }
      }
    }
    if (leave == m) break;  // unbounded direction; phase-1 obj is bounded

    // Pivot.
    const double pivot = t[leave][enter];
    for (std::size_t j = 0; j <= total_cols; ++j) t[leave][j] /= pivot;
    for (std::size_t i = 0; i <= m; ++i) {
      if (i == leave) continue;
      const double factor = t[i][enter];
      if (std::abs(factor) < eps) continue;
      for (std::size_t j = 0; j <= total_cols; ++j)
        t[i][j] -= factor * t[leave][j];
    }
    basis[leave] = enter;
  }

  // Feasible iff all artificials are (numerically) zero.
  double infeasibility = 0.0;
  for (std::size_t i = 0; i < m; ++i)
    if (basis[i] >= artificial_base) infeasibility += t[i][total_cols];
  if (infeasibility > 1e-6) return std::nullopt;

  std::vector<double> x(n, 0.0);
  for (std::size_t i = 0; i < m; ++i)
    if (basis[i] < n) x[basis[i]] = t[i][total_cols];
  return x;
}

}  // namespace cwatpg
