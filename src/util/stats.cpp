#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace cwatpg {

double percentile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  const double clamped = std::clamp(q, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

Summary summarize(std::span<const double> samples) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) return s;

  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());

  s.min = sorted.front();
  s.max = sorted.back();
  s.mean = std::accumulate(sorted.begin(), sorted.end(), 0.0) /
           static_cast<double>(sorted.size());
  double var = 0.0;
  for (double v : sorted) var += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(sorted.size()));
  s.median = percentile_sorted(sorted, 50.0);
  s.p90 = percentile_sorted(sorted, 90.0);
  s.p99 = percentile_sorted(sorted, 99.0);
  return s;
}

double fraction_below(std::span<const double> samples, double threshold) {
  if (samples.empty()) return 0.0;
  const auto n = static_cast<double>(
      std::count_if(samples.begin(), samples.end(),
                    [threshold](double v) { return v < threshold; }));
  return n / static_cast<double>(samples.size());
}

std::vector<std::size_t> histogram(std::span<const double> samples,
                                   std::size_t bins) {
  if (bins == 0) throw std::invalid_argument("histogram: bins must be > 0");
  std::vector<std::size_t> counts(bins, 0);
  if (samples.empty()) return counts;
  const auto [mn_it, mx_it] =
      std::minmax_element(samples.begin(), samples.end());
  const double mn = *mn_it;
  const double mx = *mx_it;
  if (mx <= mn) {
    counts[0] = samples.size();
    return counts;
  }
  for (double v : samples) {
    auto idx = static_cast<std::size_t>((v - mn) / (mx - mn) *
                                        static_cast<double>(bins));
    if (idx >= bins) idx = bins - 1;
    ++counts[idx];
  }
  return counts;
}

std::vector<Bucket> bucketize(std::span<const double> xs,
                              std::span<const double> ys,
                              std::size_t buckets) {
  if (xs.size() != ys.size())
    throw std::invalid_argument("bucketize: xs and ys must match in size");
  std::vector<Bucket> out;
  if (xs.empty() || buckets == 0) return out;

  std::vector<std::size_t> order(xs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });

  const std::size_t n = xs.size();
  const std::size_t used = std::min(buckets, n);
  out.reserve(used);
  std::size_t start = 0;
  for (std::size_t b = 0; b < used; ++b) {
    const std::size_t end = (b + 1) * n / used;
    Bucket bk;
    for (std::size_t i = start; i < end; ++i) {
      bk.x_mean += xs[order[i]];
      bk.y_mean += ys[order[i]];
      bk.y_max = std::max(bk.y_max, ys[order[i]]);
      ++bk.count;
    }
    if (bk.count > 0) {
      bk.x_mean /= static_cast<double>(bk.count);
      bk.y_mean /= static_cast<double>(bk.count);
      out.push_back(bk);
    }
    start = end;
  }
  return out;
}

}  // namespace cwatpg
