// Summary statistics over samples, used by the experiment harnesses to
// report the distributions the paper plots (e.g. Figure 1's "over 90% solved
// in < 1/100 s" claim is a percentile statement).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace cwatpg {

/// Five-number-plus summary of a sample.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  ///< population standard deviation
  double median = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Computes a Summary. Does not modify `samples`. Empty input yields a
/// zeroed Summary with count == 0.
Summary summarize(std::span<const double> samples);

/// Percentile by linear interpolation between closest ranks;
/// `q` in [0, 100]. `sorted` must be ascending.
double percentile_sorted(std::span<const double> sorted, double q);

/// Fraction of samples strictly below `threshold`.
double fraction_below(std::span<const double> samples, double threshold);

/// Equal-width histogram over [min, max] with `bins` buckets; returns
/// bucket counts. Degenerate ranges put everything in bucket 0.
std::vector<std::size_t> histogram(std::span<const double> samples,
                                   std::size_t bins);

/// Groups (x, y) points into `buckets` equal-population buckets by x and
/// returns per-bucket (mean x, mean y, count). Used to render scatter data
/// as a compact table, mirroring the paper's figure axes.
struct Bucket {
  double x_mean = 0.0;
  double y_mean = 0.0;
  double y_max = 0.0;
  std::size_t count = 0;
};
std::vector<Bucket> bucketize(std::span<const double> xs,
                              std::span<const double> ys,
                              std::size_t buckets);

}  // namespace cwatpg
