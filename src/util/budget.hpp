// Resource budgets and cooperative cancellation.
//
// A Budget bundles the three ways a long-running solve is allowed to stop
// early: hard caps on solver effort (conflicts / propagations), a
// wall-clock deadline, and an explicitly requested cancellation. It is the
// graceful-degradation substrate for the ATPG engines: the paper's thesis
// is that ATPG-SAT is *empirically* easy, but a production engine must
// survive the instances that are not — by giving up cleanly, saying why,
// and leaving a partial-but-consistent result instead of hanging.
//
// The design is cooperative, not preemptive: a budget never interrupts
// anything by itself. Consumers (sat::Solver, fault::run_atpg*) poll it
// from their inner loops — an atomic load plus, only when a deadline is
// armed, one steady_clock read — and unwind themselves when it fires.
//
// Thread-safe: cancel()/cancelled()/poll() may race freely across threads;
// cancellation is sticky. The caps and the deadline are plain configuration
// — set them before sharing the budget, never while a consumer is polling.
// A Budget is shared by `const Budget*` and is deliberately non-copyable:
// the cancellation token must stay one object so every holder observes the
// same cancel().
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>

namespace cwatpg {

/// Why a budgeted computation stopped early (SolverStats::stop_reason).
/// kNone means "did not stop early": the solve ran to completion, or no
/// budget condition fired before it did.
enum class StopReason : std::uint8_t {
  kNone = 0,
  kConflictLimit,     ///< conflict cap (SolverConfig or Budget) exhausted
  kPropagationLimit,  ///< Budget::max_propagations exhausted
  kDeadline,          ///< wall-clock deadline passed
  kCancelled,         ///< Budget::cancel() was called
};

/// "none" / "conflict-limit" / "propagation-limit" / "deadline" /
/// "cancelled" — for logs and bench tables.
const char* to_string(StopReason reason);

class Budget {
 public:
  using Clock = std::chrono::steady_clock;
  static constexpr std::uint64_t kUnlimited =
      std::numeric_limits<std::uint64_t>::max();

  Budget() = default;
  Budget(const Budget&) = delete;
  Budget& operator=(const Budget&) = delete;

  /// Hard cap on CDCL conflicts per solve. Unlike SolverConfig::
  /// max_conflicts (which the escalation ladder grows per retry), a budget
  /// cap is a ceiling no retry may exceed; the solver honors the smaller
  /// of the two.
  std::uint64_t max_conflicts = kUnlimited;
  /// Hard cap on CDCL propagations per solve.
  std::uint64_t max_propagations = kUnlimited;

  /// Arms the deadline `seconds` of wall-clock from now.
  void set_deadline_after(double seconds);
  /// Arms the deadline at an absolute steady_clock instant.
  void set_deadline(Clock::time_point when);
  void clear_deadline() { has_deadline_ = false; }
  bool has_deadline() const { return has_deadline_; }
  /// Seconds until the deadline (negative once past); +infinity when no
  /// deadline is armed.
  double remaining_seconds() const;
  bool past_deadline() const;

  /// Requests cancellation. Thread-safe and sticky: every subsequent
  /// poll()/cancelled() on any thread observes it.
  void cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Polls the asynchronous stop conditions — cancellation first (it is
  /// cheaper and the stronger signal), then the deadline. The effort caps
  /// are NOT reported here: they compare against counters only the
  /// consumer owns (see sat::Solver). Every poll also bumps the progress
  /// counter: a consumer that keeps polling is by definition alive, which
  /// is the liveness signal the service's job watchdog samples.
  StopReason poll() const {
    progress_.fetch_add(1, std::memory_order_relaxed);
    if (cancelled()) return StopReason::kCancelled;
    if (has_deadline_ && Clock::now() >= deadline_)
      return StopReason::kDeadline;
    return StopReason::kNone;
  }

  /// Monotone count of poll() calls on this budget, from any thread. A
  /// watchdog that samples it twice and sees no change knows the consumer
  /// stopped polling — stuck, not slow (see svc::Server's watchdog).
  std::uint64_t progress() const {
    return progress_.load(std::memory_order_relaxed);
  }

  /// True iff poll() would report a stop condition.
  bool exhausted() const { return poll() != StopReason::kNone; }

 private:
  std::atomic<bool> cancelled_{false};
  mutable std::atomic<std::uint64_t> progress_{0};
  bool has_deadline_ = false;
  Clock::time_point deadline_{};
};

/// a * b with saturation at 2^64-1 — for growing conflict caps
/// geometrically without overflow (the escalation ladder's arithmetic).
std::uint64_t saturating_mul(std::uint64_t a, std::uint64_t b);

}  // namespace cwatpg
