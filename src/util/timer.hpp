// Wall-clock timing helper for experiment harnesses.
#pragma once

#include <chrono>

namespace cwatpg {

/// Monotonic stopwatch. Started on construction; `seconds()`/`millis()`
/// report elapsed time since construction or the last `reset()`.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }
  double micros() const { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cwatpg
