// Work-stealing thread pool.
//
// Substrate for the fault-parallel ATPG engine (fault/parallel_atpg) and
// any future data-parallel kernel (suite sweeps, multi-start partitioning).
// Each worker owns a private deque: it pushes/pops its own work LIFO (hot
// in cache) and steals FIFO from randomly chosen victims when it runs dry —
// the classic Blumofe–Leiserson discipline. Victim order is drawn from a
// per-worker RNG stream split off a master seed (util/rng.hpp), so stealing
// is randomized yet reproducible; note that steal order only affects *who*
// runs a task, never observable results, because tasks communicate through
// their own synchronization.
//
// Thread-safe: submit() may be called concurrently from any thread,
// including from inside a running task. wait_idle() and parallel_for()
// must be called from OUTSIDE the pool (a worker blocking on the pool's
// own completion would deadlock); this is asserted in debug builds.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace cwatpg {

class ThreadPool {
 public:
  /// A unit of work. A task may throw: the worker captures the exception
  /// (an escaping exception has no thread to propagate into) and the first
  /// one captured is rethrown by the next wait_idle() — the join/commit
  /// point — matching what parallel_for() already does for its bodies.
  /// Later exceptions from the same drain are dropped, and an exception
  /// still pending when the pool is destroyed is discarded (a destructor
  /// cannot throw). Tasks that must not lose any error should still ship a
  /// std::exception_ptr through their own channel —
  /// fault::run_atpg_parallel shows the pattern.
  using Task = std::function<void()>;

  /// Sentinel returned by worker_index() on non-pool threads.
  static constexpr std::size_t kNotAWorker = static_cast<std::size_t>(-1);

  /// What one worker has done so far — scheduling telemetry for the
  /// observability layer (fault::ParallelStats, RunReports). `executed`
  /// counts tasks this worker ran; `steals` counts how many of those it
  /// took from another worker's deque.
  struct WorkerTelemetry {
    std::uint64_t executed = 0;
    std::uint64_t steals = 0;
  };

  /// Spawns `num_threads` workers (0 = default_thread_count()). `seed`
  /// roots the per-worker RNG streams used for steal-victim selection.
  explicit ThreadPool(std::size_t num_threads = 0,
                      std::uint64_t seed = 0x5eedca11);

  /// Drains every queued task, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (>= 1).
  std::size_t size() const { return workers_.size(); }

  /// Enqueues `task`. When called from a worker thread the task goes to
  /// that worker's own deque (LIFO locality); otherwise deques are fed
  /// round-robin. Never blocks on task execution.
  void submit(Task task);

  /// Blocks until every task submitted so far (including tasks spawned by
  /// tasks) has finished. Must be called from outside the pool. Rethrows
  /// the first exception a submit()-path task threw since the previous
  /// wait_idle(); the pool stays usable afterwards.
  void wait_idle();

  /// Index of the calling pool worker in [0, size()), or kNotAWorker when
  /// called from a thread this pool does not own.
  static std::size_t worker_index();

  /// Per-worker executed/steal counts, indexed by worker id. Safe to call
  /// any time (counters are atomics); exact once the pool is idle.
  std::vector<WorkerTelemetry> telemetry() const;

  /// Splits [begin, end) into chunks of at least `grain` iterations,
  /// runs `body(lo, hi)` on the pool, and blocks until all chunks finish.
  /// Runs inline when the range is small or the pool has one worker.
  /// The first exception thrown by `body` is rethrown in the caller.
  /// Must be called from outside the pool.
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& body);

  /// Hardware concurrency with a floor of 1 (std::thread::hardware_
  /// concurrency() may legally return 0).
  static std::size_t default_thread_count();

  /// Resolves a user-facing `--threads` knob: 0 means "auto" and maps to
  /// default_thread_count(); any other value is taken literally. The ONE
  /// place this policy lives — bench binaries, cwatpg_serve and the
  /// service all call it instead of keeping private copies.
  static std::size_t resolve_thread_count(std::size_t requested) {
    return requested == 0 ? default_thread_count() : requested;
  }

 private:
  struct Worker;

  void worker_loop(std::size_t index);
  bool try_pop_local(std::size_t index, Task& task);
  bool try_steal(std::size_t index, Task& task);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  // queued_ counts tasks sitting in deques; pending_ counts submitted
  // tasks that have not yet finished running. Both are guarded by mutex_
  // so sleeping workers and wait_idle() cannot miss a wakeup.
  std::mutex mutex_;
  std::condition_variable wake_cv_;  ///< signaled on submit and stop
  std::condition_variable idle_cv_;  ///< signaled when pending_ hits 0
  std::size_t queued_ = 0;
  std::size_t pending_ = 0;
  bool stop_ = false;
  /// First exception thrown by a submit()-path task since the last
  /// wait_idle(); guarded by mutex_, rethrown (and cleared) by wait_idle().
  std::exception_ptr first_error_;
};

}  // namespace cwatpg
