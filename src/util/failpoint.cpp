#include "util/failpoint.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "util/rng.hpp"

namespace cwatpg::fp {

namespace {

thread_local std::string t_domain;

std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::kOff:
      return "off";
    case Mode::kAlways:
      return "always";
    case Mode::kOnce:
      return "once";
    case Mode::kNth:
      return "nth";
    case Mode::kEveryNth:
      return "every";
    case Mode::kProb:
      return "prob";
  }
  return "?";
}

[[noreturn]] void bad_spec(std::string_view text, const char* why) {
  throw std::invalid_argument("failpoint spec \"" + std::string(text) +
                              "\": " + why);
}

}  // namespace

std::string Spec::to_string() const {
  std::string out = mode_name(mode);
  if (mode == Mode::kNth || mode == Mode::kEveryNth)
    out += ":" + std::to_string(n);
  if (mode == Mode::kProb) {
    char buf[64];
    std::snprintf(buf, sizeof buf, ":%g:%llu", p,
                  static_cast<unsigned long long>(seed));
    out += buf;
  }
  if (arg != 0) out += "@" + std::to_string(arg);
  return out;
}

Spec parse_spec(std::string_view text) {
  Spec spec;
  std::string_view body = text;
  // Optional "@ARG" payload suffix.
  if (const std::size_t at = body.rfind('@'); at != std::string_view::npos) {
    const std::string arg_text(body.substr(at + 1));
    body = body.substr(0, at);
    try {
      std::size_t used = 0;
      spec.arg = std::stoi(arg_text, &used);
      if (used != arg_text.size()) bad_spec(text, "trailing bytes after @arg");
      // evaluate() signals "fired" by returning arg, and the macros test
      // >= 0 — a negative payload would arm a site that never appears to
      // fire, which is exactly the silent no-op a schedule must not be.
      if (spec.arg < 0) bad_spec(text, "@arg must be >= 0");
    } catch (const std::invalid_argument&) {
      bad_spec(text, "@arg must be an integer");
    } catch (const std::out_of_range&) {
      bad_spec(text, "@arg out of int range");
    }
  }
  // MODE[:PARAM[:PARAM]]
  std::vector<std::string> parts;
  while (!body.empty()) {
    const std::size_t colon = body.find(':');
    parts.emplace_back(body.substr(0, colon));
    if (colon == std::string_view::npos) break;
    body = body.substr(colon + 1);
  }
  if (parts.empty()) bad_spec(text, "empty spec");
  const std::string& mode = parts[0];
  auto want_parts = [&](std::size_t lo, std::size_t hi) {
    if (parts.size() < lo || parts.size() > hi)
      bad_spec(text, "wrong number of ':' parameters for this mode");
  };
  auto parse_u64 = [&](const std::string& s) -> std::uint64_t {
    try {
      std::size_t used = 0;
      const unsigned long long v = std::stoull(s, &used);
      if (used != s.size()) bad_spec(text, "malformed integer parameter");
      return v;
    } catch (const std::invalid_argument&) {
      bad_spec(text, "malformed integer parameter");
    } catch (const std::out_of_range&) {
      bad_spec(text, "integer parameter out of range");
    }
  };
  if (mode == "off") {
    want_parts(1, 1);
    spec.mode = Mode::kOff;
  } else if (mode == "always") {
    want_parts(1, 1);
    spec.mode = Mode::kAlways;
  } else if (mode == "once") {
    want_parts(1, 1);
    spec.mode = Mode::kOnce;
  } else if (mode == "nth") {
    want_parts(2, 2);
    spec.mode = Mode::kNth;
    spec.n = parse_u64(parts[1]);
    if (spec.n == 0) bad_spec(text, "nth is 1-based; N must be >= 1");
  } else if (mode == "every") {
    want_parts(2, 2);
    spec.mode = Mode::kEveryNth;
    spec.n = parse_u64(parts[1]);
    if (spec.n == 0) bad_spec(text, "every:N needs N >= 1");
  } else if (mode == "prob") {
    want_parts(2, 3);
    spec.mode = Mode::kProb;
    try {
      std::size_t used = 0;
      spec.p = std::stod(parts[1], &used);
      if (used != parts[1].size()) bad_spec(text, "malformed probability");
    } catch (const std::exception&) {
      bad_spec(text, "malformed probability");
    }
    if (spec.p < 0.0 || spec.p > 1.0)
      bad_spec(text, "probability must be in [0, 1]");
    if (parts.size() == 3) spec.seed = parse_u64(parts[2]);
  } else {
    bad_spec(text, "unknown mode (want off/always/once/nth/every/prob)");
  }
  return spec;
}

Registry::Registry() {
  if (!kEnabled) return;
  if (const char* env = std::getenv("CWATPG_FAILPOINTS");
      env != nullptr && env[0] != '\0') {
    try {
      arm_schedule(env);
    } catch (const std::exception& e) {
      // A typo'd chaos schedule silently running failure-free would defeat
      // the experiment — fail loudly instead.
      std::fprintf(stderr, "CWATPG_FAILPOINTS: %s\n", e.what());
      std::abort();
    }
  }
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

void Registry::arm(const std::string& name, const Spec& spec) {
  if (name.empty() || name.find('=') != std::string::npos ||
      name.find(';') != std::string::npos ||
      name.find('/') != std::string::npos)
    throw std::invalid_argument("failpoint name \"" + name +
                                "\" is empty or contains '=', ';' or '/'");
  std::lock_guard<std::mutex> lock(mutex_);
  specs_[name] = spec;
  armed_count_.store(static_cast<int>(specs_.size()),
                     std::memory_order_relaxed);
}

void Registry::arm_schedule(std::string_view schedule) {
  std::string_view rest = schedule;
  while (!rest.empty()) {
    const std::size_t semi = rest.find(';');
    std::string_view item = rest.substr(0, semi);
    rest = semi == std::string_view::npos ? std::string_view()
                                          : rest.substr(semi + 1);
    // Tolerate empty items ("a=once;;b=always", trailing ';').
    while (!item.empty() && (item.front() == ' ' || item.front() == '\t'))
      item.remove_prefix(1);
    while (!item.empty() && (item.back() == ' ' || item.back() == '\t'))
      item.remove_suffix(1);
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos || eq == 0)
      throw std::invalid_argument("failpoint schedule item \"" +
                                  std::string(item) +
                                  "\" is not name=spec");
    arm(std::string(item.substr(0, eq)), parse_spec(item.substr(eq + 1)));
  }
}

void Registry::disarm(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  specs_.erase(name);
  armed_count_.store(static_cast<int>(specs_.size()),
                     std::memory_order_relaxed);
}

void Registry::disarm_all() {
  std::lock_guard<std::mutex> lock(mutex_);
  specs_.clear();
  armed_count_.store(0, std::memory_order_relaxed);
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  specs_.clear();
  states_.clear();
  armed_count_.store(0, std::memory_order_relaxed);
}

std::vector<std::pair<std::string, Spec>> Registry::armed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, Spec>> out(specs_.begin(), specs_.end());
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

int Registry::evaluate(const char* name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = specs_.find(name);
  if (it == specs_.end()) return -1;
  const Spec& spec = it->second;

  std::string key = t_domain;
  if (!key.empty()) key += '/';
  key += name;
  SiteState& state = states_[key];
  ++state.hits;

  bool fire = false;
  switch (spec.mode) {
    case Mode::kOff:
      break;
    case Mode::kAlways:
      fire = true;
      break;
    case Mode::kOnce:
      fire = state.fires == 0;
      break;
    case Mode::kNth:
      fire = state.hits == spec.n;
      break;
    case Mode::kEveryNth:
      fire = state.hits % spec.n == 0;
      break;
    case Mode::kProb: {
      if (!state.rng_init) {
        // Seeded from (schedule seed, domain-qualified site name): each
        // domain's stream is independent, and a replay with the same seed
        // walks the identical firing sequence.
        state.rng = spec.seed ^ fnv1a(key);
        state.rng_init = true;
      }
      const std::uint64_t draw = splitmix64(state.rng);
      fire = static_cast<double>(draw >> 11) * 0x1.0p-53 < spec.p;
      break;
    }
  }
  if (!fire) return -1;
  ++state.fires;
  return spec.arg;
}

std::map<std::string, Registry::Counts> Registry::counts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, Counts> out;
  for (const auto& [key, state] : states_)
    out[key] = Counts{state.hits, state.fires};
  return out;
}

void set_thread_domain(std::string domain) { t_domain = std::move(domain); }

const std::string& thread_domain() { return t_domain; }

DomainScope::DomainScope(std::string domain) : saved_(t_domain) {
  t_domain = std::move(domain);
}

DomainScope::~DomainScope() { t_domain = std::move(saved_); }

ScheduleScope::ScheduleScope(std::string_view schedule) {
  Registry::instance().arm_schedule(schedule);
}

ScheduleScope::~ScheduleScope() { Registry::instance().reset(); }

}  // namespace cwatpg::fp
