// Deterministic failpoint injection: named failure sites with seeded,
// schedule-driven firing.
//
// A failpoint is a named hook compiled into production code at the exact
// place a real failure would surface — a short read, an allocation
// failure, a spurious budget expiry, a stuck job. At runtime each site is
// a no-op until a *schedule* arms it; an armed site fires according to a
// deterministic rule (fire on the Nth hit, every Nth hit, once,
// probabilistically with a fixed RNG, always), so any observed failure
// cascade can be replayed exactly from the schedule string that produced
// it. bench_chaos builds on this: hundreds of seeded schedules, each a
// reproducible experiment asserting the service loses zero responses.
//
// Usage at a site (the macros are the ONLY sanctioned spelling — they
// compile to constants when CWATPG_FAILPOINTS=OFF, so sites cost nothing
// in a hardened build):
//
//   if (CWATPG_FAILPOINT("sat.solver.alloc")) throw std::bad_alloc();
//
//   const int k = CWATPG_FAILPOINT_ARG("svc.proto.read.short");
//   if (k >= 0) limit = std::max(1, k);   // site-defined parameter
//
// Arming, from a test or via the CWATPG_FAILPOINTS environment variable
// (read once, at first registry use — how the kill -9 journal smoke
// stalls the daemon from outside):
//
//   fp::ScheduleScope fps("svc.queue.full=nth:3;sat.solver.alloc=prob:0.1:42");
//
// Schedule grammar (';'-separated items, each `name=spec[@arg]`):
//   off            never fires (site stays counted)
//   always         fires on every hit
//   once           fires on the first hit only
//   nth:N          fires on exactly the Nth hit (1-based)
//   every:N        fires on every Nth hit (N, 2N, 3N, …)
//   prob:P[:SEED]  fires each hit with probability P, from an RNG seeded
//                  by SEED (default 0) and the site name — replayable
//   @K             optional integer payload CWATPG_FAILPOINT_ARG returns
//                  (K >= 0: -1 is the macros' "did not fire" sentinel)
//
// Determinism and domains: hit counters (and prob RNG streams) are kept
// per (domain, site), where the domain is a thread-local label the owning
// component sets (`svc.reader`, `svc.worker`, `svc.client`, …). Two
// threads hitting the same site therefore never race for "who gets the
// Nth hit": each domain counts its own deterministic execution, which is
// what makes a schedule replay bit-identically even for sites shared by
// the client and server ends of one transport.
//
// Thread-safe: all registry operations take one mutex; the not-armed fast
// path is a single relaxed atomic load.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace cwatpg::fp {

/// True when failpoint sites are compiled in (CMake CWATPG_FAILPOINTS=ON,
/// the default). Tests that inject failures skip themselves when OFF.
#if defined(CWATPG_FAILPOINTS) && CWATPG_FAILPOINTS
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

enum class Mode : std::uint8_t {
  kOff,
  kAlways,
  kOnce,
  kNth,
  kEveryNth,
  kProb,
};

struct Spec {
  Mode mode = Mode::kOff;
  std::uint64_t n = 1;      ///< kNth / kEveryNth parameter
  double p = 0.0;           ///< kProb firing probability
  std::uint64_t seed = 0;   ///< kProb RNG seed (mixed with the site name)
  int arg = 0;              ///< payload returned by CWATPG_FAILPOINT_ARG

  /// Round-trips through parse_spec; used to echo armed schedules.
  std::string to_string() const;
};

/// Parses one spec ("nth:3", "prob:0.25:42@7", …). Throws
/// std::invalid_argument with the offending text on any violation.
Spec parse_spec(std::string_view text);

class Registry {
 public:
  /// The process-wide registry. First use reads the CWATPG_FAILPOINTS
  /// environment variable and, when set to a non-empty schedule, arms it
  /// (a malformed env schedule aborts with a message — a chaos run with a
  /// typo'd schedule must not silently run failure-free).
  static Registry& instance();

  void arm(const std::string& name, const Spec& spec);
  /// Arms every item of a schedule string. Throws std::invalid_argument
  /// on bad grammar; items before the bad one stay armed.
  void arm_schedule(std::string_view schedule);
  void disarm(const std::string& name);
  void disarm_all();
  /// Also clears hit/fire counters (disarm_all keeps them so a finished
  /// run can still be audited).
  void reset();

  /// Armed sites with their specs, sorted by name.
  std::vector<std::pair<std::string, Spec>> armed() const;
  bool anything_armed() const {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

  /// The slow path behind the macros: counts a hit of `name` in the
  /// calling thread's domain and decides firing. Returns the spec's arg
  /// (>= 0) when the failpoint fires, -1 when it does not.
  int evaluate(const char* name);

  struct Counts {
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
  };
  /// Per-(domain,site) counters, keyed "domain/site" ("site" when the
  /// domain is empty). std::map so iteration order — and therefore any
  /// dump — is stable for replay comparison.
  std::map<std::string, Counts> counts() const;

 private:
  Registry();

  struct SiteState {
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
    std::uint64_t rng = 0;  ///< xoshiro-free splitmix64 state for kProb
    bool rng_init = false;
  };

  mutable std::mutex mutex_;
  std::atomic<int> armed_count_{0};
  std::unordered_map<std::string, Spec> specs_;
  /// keyed "domain/site"; state survives re-arming so nth counts from the
  /// first hit after reset(), not after every arm().
  std::unordered_map<std::string, SiteState> states_;
};

/// Sets the calling thread's failpoint domain (see header comment).
/// Pass "" (or let DomainScope restore) to clear.
void set_thread_domain(std::string domain);
const std::string& thread_domain();

/// RAII domain label for the current thread.
class DomainScope {
 public:
  explicit DomainScope(std::string domain);
  ~DomainScope();
  DomainScope(const DomainScope&) = delete;
  DomainScope& operator=(const DomainScope&) = delete;

 private:
  std::string saved_;
};

/// RAII schedule: arms on construction, disarms EVERYTHING and resets all
/// counters on destruction — the test-suite idiom, so no schedule can
/// leak into the next test.
class ScheduleScope {
 public:
  explicit ScheduleScope(std::string_view schedule);
  ~ScheduleScope();
  ScheduleScope(const ScheduleScope&) = delete;
  ScheduleScope& operator=(const ScheduleScope&) = delete;
};

/// Macro backend. Inline so the not-compiled and not-armed cases fold to
/// a constant / one relaxed load.
inline int evaluate_site(const char* name) {
  if constexpr (!kEnabled) return -1;
  Registry& r = Registry::instance();
  if (!r.anything_armed()) return -1;
  return r.evaluate(name);
}

}  // namespace cwatpg::fp

/// True iff the named failpoint fires at this hit.
#define CWATPG_FAILPOINT(name) (::cwatpg::fp::evaluate_site(name) >= 0)
/// The armed spec's integer payload when the failpoint fires, -1 when not.
#define CWATPG_FAILPOINT_ARG(name) (::cwatpg::fp::evaluate_site(name))
