// Small dense linear-program feasibility checker (phase-1 simplex).
//
// Used by the q-Horn recognizer (§3.1): a CNF formula is q-Horn iff the
// Boros–Crama–Hammer LP
//     for every clause C:  sum_{x in C} a_x + sum_{~x in C} (1 - a_x) <= 1,
//     0 <= a <= 1
// is feasible. Instances are small (one constraint per clause), so a dense
// tableau phase-1 simplex with Bland's rule is entirely adequate.
#pragma once

#include <optional>
#include <vector>

namespace cwatpg {

/// Feasibility of { x : A x <= b, 0 <= x <= ub } for dense A.
/// Returns a feasible point or nullopt. Bland's rule guarantees
/// termination; `eps` absorbs rounding.
std::optional<std::vector<double>> lp_feasible(
    const std::vector<std::vector<double>>& a, const std::vector<double>& b,
    const std::vector<double>& ub, double eps = 1e-9);

}  // namespace cwatpg
