#include "svc/transport.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <istream>
#include <ostream>
#include <streambuf>
#include <utility>

#include "svc/proto.hpp"

namespace cwatpg::svc {

// ---- StreamTransport ------------------------------------------------------

bool StreamTransport::read(obs::Json& frame) {
  return read_frame(in_, frame);
}

void StreamTransport::write(const obs::Json& frame) {
  std::lock_guard<std::mutex> lock(write_mutex_);
  if (closed_) return;
  write_frame(out_, frame);
}

void StreamTransport::close() {
  std::lock_guard<std::mutex> lock(write_mutex_);
  closed_ = true;
  out_.flush();
}

// ---- in-memory duplex -----------------------------------------------------

namespace {

/// One direction of the pipe: a frame queue with close semantics.
class FrameChannel {
 public:
  void push(const obs::Json& frame) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return;  // writes after close are dropped, like a pipe
      frames_.push_back(frame);
    }
    cv_.notify_one();
  }

  /// `timeout_seconds` > 0 bounds the wait; expiry throws ProtocolError —
  /// the same torn-session shape SocketTransport and FdTransport give, so
  /// heartbeat code paths are testable over in-memory pairs.
  bool pop(obs::Json& frame, double timeout_seconds) {
    std::unique_lock<std::mutex> lock(mutex_);
    const auto ready = [&] { return closed_ || !frames_.empty(); };
    if (timeout_seconds > 0.0) {
      if (!cv_.wait_for(lock, std::chrono::duration<double>(timeout_seconds),
                        ready))
        throw ProtocolError("read timed out after " +
                            std::to_string(timeout_seconds) + "s");
    } else {
      cv_.wait(lock, ready);
    }
    if (frames_.empty()) return false;  // closed and drained
    frame = std::move(frames_.front());
    frames_.pop_front();
    return true;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<obs::Json> frames_;
  bool closed_ = false;
};

/// Shared state of a duplex pair; each end holds a shared_ptr so either
/// end may be destroyed first.
struct DuplexCore {
  FrameChannel to_server;
  FrameChannel to_client;
};

class DuplexEnd final : public Transport {
 public:
  DuplexEnd(std::shared_ptr<DuplexCore> core, bool is_client)
      : core_(std::move(core)), is_client_(is_client) {}

  ~DuplexEnd() override { DuplexEnd::close(); }

  bool read(obs::Json& frame) override {
    return inbox().pop(frame, read_timeout_seconds_);
  }

  void write(const obs::Json& frame) override { outbox().push(frame); }

  bool set_read_timeout(double seconds) override {
    read_timeout_seconds_ = seconds > 0.0 ? seconds : 0.0;
    return true;
  }

  void close() override {
    // Closing an end stops both directions it participates in: the peer
    // sees EOF after draining, and our own pending reads unblock too
    // (nothing further can arrive once the peer learns we are gone —
    // matching how a process sees its pipe after the far end exits).
    outbox().close();
    inbox().close();
  }

 private:
  FrameChannel& inbox() {
    return is_client_ ? core_->to_client : core_->to_server;
  }
  FrameChannel& outbox() {
    return is_client_ ? core_->to_server : core_->to_client;
  }

  std::shared_ptr<DuplexCore> core_;
  bool is_client_;
  double read_timeout_seconds_ = 0.0;  ///< single-consumer, like read()
};

// ---- in-memory byte duplex ------------------------------------------------

/// One direction of the byte pipe: a blocking byte queue with close
/// semantics. read_some returns at least one byte when any are buffered —
/// and never waits for a full request — so readers above it see exactly
/// the short-read behavior of a real pipe.
class ByteChannel {
 public:
  void write(const char* data, std::size_t n) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return;  // writes after close are dropped, like a pipe
      bytes_.insert(bytes_.end(), data, data + n);
    }
    cv_.notify_all();
  }

  /// Blocks until at least one byte is available or the channel is closed
  /// and drained (returns 0 — end of stream).
  std::size_t read_some(char* dst, std::size_t max) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return closed_ || !bytes_.empty(); });
    const std::size_t n = std::min(max, bytes_.size());
    std::copy_n(bytes_.begin(), n, dst);
    bytes_.erase(bytes_.begin(), bytes_.begin() + static_cast<long>(n));
    return n;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<char> bytes_;
  bool closed_ = false;
};

/// Input streambuf over a ByteChannel. xsgetn is deliberately overridden
/// to deliver at most one refill per call: istream::read over this buf
/// returns short counts exactly like read(2) on a pipe, which is the
/// behavior proto.cpp's read_exact loop must absorb.
class ChannelInBuf final : public std::streambuf {
 public:
  explicit ChannelInBuf(ByteChannel& channel) : channel_(channel) {}

 protected:
  int_type underflow() override {
    const std::size_t n = channel_.read_some(buf_, sizeof buf_);
    if (n == 0) return traits_type::eof();
    setg(buf_, buf_, buf_ + n);
    return traits_type::to_int_type(buf_[0]);
  }

  std::streamsize xsgetn(char* s, std::streamsize n) override {
    if (gptr() == egptr() &&
        underflow() == traits_type::eof())
      return 0;
    const std::streamsize take = std::min(n, egptr() - gptr());
    std::memcpy(s, gptr(), static_cast<std::size_t>(take));
    gbump(static_cast<int>(take));
    return take;
  }

 private:
  ByteChannel& channel_;
  char buf_[256];
};

/// Output streambuf over a ByteChannel: unbuffered, every byte goes
/// straight to the channel (frame atomicity is the transport's job, via
/// StreamTransport's write mutex).
class ChannelOutBuf final : public std::streambuf {
 public:
  explicit ChannelOutBuf(ByteChannel& channel) : channel_(channel) {}

 protected:
  int_type overflow(int_type c) override {
    if (c == traits_type::eof()) return traits_type::not_eof(c);
    const char byte = traits_type::to_char_type(c);
    channel_.write(&byte, 1);
    return c;
  }

  std::streamsize xsputn(const char* s, std::streamsize n) override {
    channel_.write(s, static_cast<std::size_t>(n));
    return n;
  }

 private:
  ByteChannel& channel_;
};

/// One end of the byte duplex: a StreamTransport over channel-backed
/// streams, plus close() that also releases a blocked peer reader.
class ByteDuplexEnd final : public Transport {
 public:
  ByteDuplexEnd(std::shared_ptr<ByteChannel> in,
                std::shared_ptr<ByteChannel> out)
      : in_channel_(std::move(in)),
        out_channel_(std::move(out)),
        inbuf_(*in_channel_),
        outbuf_(*out_channel_),
        istream_(&inbuf_),
        ostream_(&outbuf_),
        stream_(istream_, ostream_) {}

  ~ByteDuplexEnd() override { ByteDuplexEnd::close(); }

  bool read(obs::Json& frame) override { return stream_.read(frame); }
  void write(const obs::Json& frame) override { stream_.write(frame); }

  void close() override {
    stream_.close();
    out_channel_->close();
    in_channel_->close();
  }

 private:
  std::shared_ptr<ByteChannel> in_channel_;
  std::shared_ptr<ByteChannel> out_channel_;
  ChannelInBuf inbuf_;
  ChannelOutBuf outbuf_;
  std::istream istream_;
  std::ostream ostream_;
  StreamTransport stream_;
};

}  // namespace

DuplexPair make_duplex() {
  auto core = std::make_shared<DuplexCore>();
  DuplexPair pair;
  pair.client = std::make_unique<DuplexEnd>(core, /*is_client=*/true);
  pair.server = std::make_unique<DuplexEnd>(core, /*is_client=*/false);
  return pair;
}

DuplexPair make_byte_duplex() {
  auto to_server = std::make_shared<ByteChannel>();
  auto to_client = std::make_shared<ByteChannel>();
  DuplexPair pair;
  pair.client = std::make_unique<ByteDuplexEnd>(to_client, to_server);
  pair.server = std::make_unique<ByteDuplexEnd>(to_server, to_client);
  return pair;
}

}  // namespace cwatpg::svc
