#include "svc/transport.hpp"

#include <condition_variable>
#include <deque>
#include <utility>

#include "svc/proto.hpp"

namespace cwatpg::svc {

// ---- StreamTransport ------------------------------------------------------

bool StreamTransport::read(obs::Json& frame) {
  return read_frame(in_, frame);
}

void StreamTransport::write(const obs::Json& frame) {
  std::lock_guard<std::mutex> lock(write_mutex_);
  if (closed_) return;
  write_frame(out_, frame);
}

void StreamTransport::close() {
  std::lock_guard<std::mutex> lock(write_mutex_);
  closed_ = true;
  out_.flush();
}

// ---- in-memory duplex -----------------------------------------------------

namespace {

/// One direction of the pipe: a frame queue with close semantics.
class FrameChannel {
 public:
  void push(const obs::Json& frame) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return;  // writes after close are dropped, like a pipe
      frames_.push_back(frame);
    }
    cv_.notify_one();
  }

  bool pop(obs::Json& frame) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return closed_ || !frames_.empty(); });
    if (frames_.empty()) return false;  // closed and drained
    frame = std::move(frames_.front());
    frames_.pop_front();
    return true;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<obs::Json> frames_;
  bool closed_ = false;
};

/// Shared state of a duplex pair; each end holds a shared_ptr so either
/// end may be destroyed first.
struct DuplexCore {
  FrameChannel to_server;
  FrameChannel to_client;
};

class DuplexEnd final : public Transport {
 public:
  DuplexEnd(std::shared_ptr<DuplexCore> core, bool is_client)
      : core_(std::move(core)), is_client_(is_client) {}

  ~DuplexEnd() override { DuplexEnd::close(); }

  bool read(obs::Json& frame) override { return inbox().pop(frame); }

  void write(const obs::Json& frame) override { outbox().push(frame); }

  void close() override {
    // Closing an end stops both directions it participates in: the peer
    // sees EOF after draining, and our own pending reads unblock too
    // (nothing further can arrive once the peer learns we are gone —
    // matching how a process sees its pipe after the far end exits).
    outbox().close();
    inbox().close();
  }

 private:
  FrameChannel& inbox() {
    return is_client_ ? core_->to_client : core_->to_server;
  }
  FrameChannel& outbox() {
    return is_client_ ? core_->to_server : core_->to_client;
  }

  std::shared_ptr<DuplexCore> core_;
  bool is_client_;
};

}  // namespace

DuplexPair make_duplex() {
  auto core = std::make_shared<DuplexCore>();
  DuplexPair pair;
  pair.client = std::make_unique<DuplexEnd>(core, /*is_client=*/true);
  pair.server = std::make_unique<DuplexEnd>(core, /*is_client=*/false);
  return pair;
}

}  // namespace cwatpg::svc
