// Typed cwatpg.rpc/1 request-parameter accessors and the shared
// params → AtpgOptions translation.
//
// Two components must agree byte-for-byte on how a `run_atpg` request maps
// onto fault::AtpgOptions: the Server (which runs the job) and the Cluster
// coordinator (which shards the job, then replays the recorded shard
// outcomes through the same pipeline to merge them). Keeping the mapping
// in one function is what makes "cluster result == single-daemon result"
// an invariant instead of a convention. Every type violation throws
// ProtocolError, which both callers map to a `bad_request` response.
//
// Thread-safe: free functions over immutable inputs.
#pragma once

#include <cstdint>
#include <string>

#include "fault/tegus.hpp"
#include "obs/json.hpp"
#include "svc/registry.hpp"

namespace cwatpg::svc {

std::uint64_t param_u64(const obs::Json& params, const char* key,
                        std::uint64_t fallback);
double param_double(const obs::Json& params, const char* key, double fallback);
std::int64_t param_i64(const obs::Json& params, const char* key,
                       std::int64_t fallback);
bool param_bool(const obs::Json& params, const char* key, bool fallback);
std::string param_string_required(const obs::Json& params, const char* key);

/// Builds the engine options a `run_atpg` request describes: seed,
/// random_blocks, max_conflicts, escalation_rounds, engine (wiring the
/// registry's prebuilt miter for "incremental"), drop_by_simulation, and
/// the optional shard window — `fault_range` ([lo,hi) pair over the
/// collapsed fault list) or `fault_ids` (strictly increasing index array).
/// The run-level budget is NOT set here (each caller owns its own).
fault::AtpgOptions atpg_options_from_params(const obs::Json& params,
                                            const CircuitEntry& circuit);

}  // namespace cwatpg::svc
