// Content-hash-keyed circuit registry with LRU eviction under a byte
// budget.
//
// The amortization substrate of the service: a circuit is parsed, fault-
// collapsed and CNF-encoded ONCE at load_circuit time, and every
// subsequent run_atpg / fsim job on it starts from the prebuilt state
// instead of repeating the front end. Keys are content hashes of the
// circuit *structure* (gate types, fanins, IO lists — not names), so a
// client re-loading the same netlist, under any name, dedups onto the
// cached entry and a restart of the client cannot balloon the registry.
//
// Entries are handed out as shared_ptr<const CircuitEntry>: eviction only
// drops the registry's reference, so a job holding an entry keeps it alive
// until the job finishes — eviction can never yank a circuit out from
// under an in-flight solve. The byte budget therefore bounds what the
// registry *retains*, not what running jobs pin.
//
// Thread-safe: fully; every public method takes the registry mutex. The
// entries themselves are immutable after construction (Network's contract)
// and safe to read from any number of jobs concurrently.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "fault/fault.hpp"
#include "fault/incremental.hpp"
#include "netlist/network.hpp"
#include "obs/json.hpp"
#include "sat/cnf.hpp"

namespace cwatpg::svc {

/// A loaded circuit plus everything the service precomputes for it.
/// Immutable after construction.
struct CircuitEntry {
  std::string key;   ///< 16-hex-digit structural content hash
  net::Network net;  ///< parsed, validated network
  /// Collapsed stuck-at fault list — what run_atpg classifies and what
  /// fsim jobs score coverage against.
  std::vector<fault::StuckAtFault> faults;
  /// Whole-circuit CIRCUIT-SAT constraint encoding (sat::encode_
  /// constraints): the reusable skeleton whose size bounds every per-fault
  /// instance, reported to clients as a capacity signal. Per-fault miters
  /// stay cone-local and are built inside the engines.
  sat::Cnf base_cnf;
  /// Prebuilt shared select-instrumented miter for the incremental engine:
  /// built once at load time, handed to every `engine=incremental` job via
  /// AtpgOptions::prebuilt_miter so repeat jobs skip the encoding pass
  /// entirely. Pinned for the entry's lifetime, keyed (like everything
  /// here) by the structural content hash.
  std::shared_ptr<const fault::SharedMiterCnf> miter;
  std::size_t approx_bytes = 0;  ///< memory estimate used for the budget

  /// Summary the server embeds in load_circuit/status responses:
  /// {key,name,gates,inputs,outputs,faults,cnf_vars,cnf_clauses,
  ///  miter_vars,miter_clauses,bytes}.
  obs::Json to_json() const;
};

struct RegistryStats {
  std::size_t entries = 0;
  std::size_t bytes = 0;        ///< retained entries only (see header)
  std::size_t byte_budget = 0;
  std::uint64_t loads = 0;      ///< load_bench/insert calls
  std::uint64_t hits = 0;       ///< load or find satisfied by a cached entry
  std::uint64_t misses = 0;     ///< find() that came up empty
  std::uint64_t evictions = 0;  ///< entries dropped to fit the budget

  obs::Json to_json() const;
};

class CircuitRegistry {
 public:
  /// `byte_budget` caps the estimated bytes of retained entries. One entry
  /// is always retained even when it alone exceeds the budget (a registry
  /// that cannot hold the circuit it was just asked to load is useless).
  explicit CircuitRegistry(std::size_t byte_budget);

  /// Parses `.bench` text, then behaves like insert(). Propagates
  /// net::ParseError / std::runtime_error on malformed text.
  std::shared_ptr<const CircuitEntry> load_bench(std::string_view text,
                                                 std::string name,
                                                 bool* already_loaded = nullptr);

  /// Registers a network: hashes its structure, dedups against cached
  /// entries (a hit refreshes recency and returns the existing entry —
  /// the first-loaded name wins), otherwise precomputes the fault list and
  /// base CNF, inserts, and evicts least-recently-used entries as needed.
  /// Loading is therefore idempotent by content hash; `already_loaded`
  /// (when non-null) reports whether this call was satisfied by a cached
  /// entry — the ack that lets a coordinator or retrying client replicate
  /// loads blindly.
  std::shared_ptr<const CircuitEntry> insert(net::Network net,
                                             bool* already_loaded = nullptr);

  /// Looks up by content-hash key; refreshes recency on hit, returns
  /// nullptr on miss.
  std::shared_ptr<const CircuitEntry> find(std::string_view key);

  /// True when `key` is currently retained. A pure probe — no recency
  /// refresh, no hit/miss accounting — for caches keyed alongside the
  /// registry (e.g. the cluster's bench-text replication map) to evict in
  /// step with the LRU.
  bool retains(std::string_view key) const;

  RegistryStats stats() const;

 private:
  void touch_locked(const std::string& key);
  void evict_to_budget_locked();

  mutable std::mutex mutex_;
  std::size_t byte_budget_;
  std::size_t bytes_ = 0;
  RegistryStats counters_;  ///< loads/hits/misses/evictions only
  /// Recency list, most-recent first; map values point into it.
  std::list<std::string> lru_;
  struct Slot {
    std::shared_ptr<const CircuitEntry> entry;
    std::list<std::string>::iterator lru_pos;
  };
  std::unordered_map<std::string, Slot> entries_;
};

/// 64-bit FNV-1a over the structural content of `net` (gate types, fanin
/// lists, input/output order), rendered as 16 lowercase hex digits.
/// Node and circuit names do not participate: two structurally identical
/// netlists hash equal under any renaming.
std::string content_hash(const net::Network& net);

}  // namespace cwatpg::svc
