// Worker process plumbing for the cluster coordinator: cwatpg.rpc/1
// frames over raw POSIX file descriptors, plus fork/exec of child daemons
// with their stdin/stdout wired to a transport.
//
// StreamTransport needs iostreams; a spawned child hands us two pipe fds.
// Rather than wrap them in nonstandard fd-streambufs, FdTransport speaks
// the frame codec (`<decimal length>\n<payload>`) directly over read(2)/
// write(2), with the same untrusted-input limits proto.cpp enforces
// (frame byte cap before any allocation, JSON nesting-depth cap). A
// worker crash — the failover drill's whole subject — surfaces here as a
// clean end-of-stream or EPIPE, never as a hang. The embedding process
// must ignore SIGPIPE for the EPIPE path to be reachable (cwatpg_cluster
// installs SIG_IGN at startup); FdTransport itself never touches global
// signal state.
//
// Thread-safe: write() from any thread (one mutex, one full-frame write
// per lock hold); read() single-consumer, like every Transport.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "svc/transport.hpp"

namespace cwatpg::svc {

class FdTransport final : public Transport {
 public:
  /// Takes ownership of both descriptors (closed on destruction). Either
  /// may be -1 for a half-open transport.
  FdTransport(int read_fd, int write_fd);
  ~FdTransport() override;

  bool read(obs::Json& frame) override;
  void write(const obs::Json& frame) override;
  /// Closes the WRITE side only (the peer's stdin sees EOF — how a
  /// coordinator stops a worker); read() keeps draining buffered frames.
  void close() override;
  /// Supported (poll(2) before each read): how the coordinator bounds a
  /// heartbeat probe so a wedged-but-alive worker cannot hang it.
  bool set_read_timeout(double seconds) override;

 private:
  int read_fd_;
  int write_fd_;  ///< guarded by write_mutex_ (-1 once closed)
  std::mutex write_mutex_;
  double read_timeout_seconds_ = 0.0;  ///< single-consumer, like read()
};

/// A spawned worker daemon: its pid plus the coordinator-side transport
/// whose write end feeds the child's stdin and whose read end drains the
/// child's stdout (stderr is inherited, so worker diagnostics land in the
/// coordinator's stderr stream).
struct ChildProcess {
  std::int64_t pid = -1;
  std::unique_ptr<Transport> transport;
};

/// fork/exec `argv` (argv[0] resolved via PATH) with stdin/stdout piped.
/// Throws std::runtime_error when the pipes or the fork fail; an exec
/// failure makes the child _exit(127), which the caller observes as
/// immediate end-of-stream.
ChildProcess spawn_child(const std::vector<std::string>& argv);

/// How a reaped child ended, for `status` `last_exit` reporting. A
/// SIGKILLed-then-waited zombie still reports its TRUE termination
/// (kill(2) on a zombie is a no-op), so "signal 9" in status means the
/// child really died of SIGKILL, not that the reaper fired one.
struct ChildExit {
  bool reaped = false;    ///< waitpid actually collected the child
  bool signaled = false;  ///< terminated by signal (code = signal number)
  int code = 0;           ///< exit code, or signal number when signaled
  /// "exit N" / "signal N" / "unknown" (not reaped).
  std::string describe() const;
};

/// Best-effort, non-throwing child reaping: SIGKILL (when `kill_first`)
/// then a blocking waitpid. Safe to call for an already-dead child.
void reap_child(std::int64_t pid, bool kill_first);

/// Like reap_child, but reports how the child terminated. The cluster
/// supervisor calls this at EOF detection — not coordinator exit — so a
/// kill -9'd worker never lingers as a zombie while the fleet serves on.
ChildExit reap_child_exit(std::int64_t pid, bool kill_first);

}  // namespace cwatpg::svc
