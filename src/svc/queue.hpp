// Bounded, prioritized job queue with admission control.
//
// Admission is the service's overload story: the queue has a hard
// capacity, push() on a full queue fails immediately, and the server turns
// that failure into an `overloaded` error response — the client learns to
// back off *now* instead of watching its request age in an unbounded
// backlog (deadlines would expire in the queue and every rejection would
// masquerade as a timeout).
//
// Ordering: higher `priority` first; FIFO (admission order) within a
// priority level. The queue is small by construction (capacity is tens,
// not millions), so selection is a linear scan — simpler than a heap and
// trivially stable.
//
// Every job carries its own util::Budget, armed from the request deadline
// AT ADMISSION: time spent queued counts against the deadline, which is
// what a caller-facing latency bound means. The budget shared_ptr is also
// the cancellation handle — the server fires it for in-flight cancels.
//
// Thread-safe: fully (mutex + condition variable). One server owns one
// queue; producers are the reader loop, the consumer is the dispatcher.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>

#include "obs/json.hpp"
#include "svc/proto.hpp"
#include "svc/registry.hpp"
#include "util/budget.hpp"

namespace cwatpg::svc {

/// One admitted unit of work (a run_atpg or fsim request). Jobs are
/// identified by the client's request id — the protocol requires ids to be
/// unique among a client's live requests, which makes the id double as the
/// cancel handle with no extra round trip.
struct Job {
  std::uint64_t request_id = 0;  ///< client's correlation id == job handle
  /// Owning session (connection). Ids are client-chosen, so two sessions
  /// may legitimately use the same id; (session, request_id) is the true
  /// job key everywhere the server tracks work.
  std::uint64_t session = 0;
  RequestKind kind = RequestKind::kRunAtpg;
  int priority = 0;  ///< higher runs first; same level is FIFO
  /// Owns the job's deadline and cancellation token. Never null for an
  /// admitted job; shared with the server's in-flight table so cancel()
  /// reaches a job already running on a pool worker.
  std::shared_ptr<Budget> budget;
  /// The resolved circuit. Holding the shared_ptr pins the entry for the
  /// job's lifetime even if the registry evicts it meanwhile.
  std::shared_ptr<const CircuitEntry> circuit;
  obs::Json params;  ///< validated request params (kind-specific)
};

struct QueueStats {
  std::size_t depth = 0;          ///< jobs currently queued
  std::size_t capacity = 0;
  std::uint64_t admitted = 0;     ///< successful push() calls
  std::uint64_t rejected = 0;     ///< push() refused: full or closed
  std::uint64_t removed = 0;      ///< cancelled while still queued
  std::uint64_t max_depth = 0;    ///< high-water mark

  obs::Json to_json() const;
};

class JobQueue {
 public:
  explicit JobQueue(std::size_t capacity);

  /// Admits `job` unless the queue is at capacity or closed; returns
  /// whether it was admitted.
  bool push(Job job);

  /// Blocks for the highest-priority job. Returns false once the queue is
  /// closed AND drained — the dispatcher's termination condition.
  bool pop(Job& out);

  /// Removes a still-queued job (cancellation path), matched by its full
  /// (session, request id) key. Returns the job when it was found; nullopt
  /// means it already left the queue (running or done) or never existed.
  std::optional<Job> remove(std::uint64_t session, std::uint64_t request_id);

  /// Closes admission and wakes the consumer. Queued jobs remain poppable
  /// — the shutdown path pops them to send their terminal responses.
  void close();

  std::size_t depth() const;
  QueueStats stats() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t capacity_;
  bool closed_ = false;
  std::uint64_t next_seq_ = 0;
  struct Entry {
    Job job;
    std::uint64_t seq;  ///< admission order, the FIFO tiebreak
  };
  std::deque<Entry> entries_;
  QueueStats counters_;  ///< admitted/rejected/removed/max_depth only
};

}  // namespace cwatpg::svc
