// cwatpg_cluster — the sharded ATPG coordinator over stdin/stdout or TCP.
//
//   $ ./cwatpg_cluster [--workers=N] [--worker-cmd="CMD ARGS..."]
//                      [--shard-size=N] [--shard-deadline=S]
//                      [--default-deadline=S] [--registry-mb=N]
//                      [--connect=HOST:PORT ...] [--listen=HOST:PORT]
//
// Speaks cwatpg.rpc/1 frames on stdin/stdout, exactly like cwatpg_serve —
// a drop-in front end — but fans per-fault `run_atpg` jobs out across N
// spawned worker daemons (child processes over stdio pipes) and merges
// their shard replies into one response that is classification-identical
// to a single-node run. A worker killed mid-job forfeits its un-acked
// shard to a survivor AND is respawned under backoff (a fresh child for
// spawned workers, a re-dial for remote ones) unless it crash-loops past
// --max-respawns inside the supervision window, in which case the slot is
// quarantined. `status` reports per-worker pids, liveness, generation,
// restarts and the reaped exit of the previous generation, which is what
// scripts/service_smoke.py --cluster uses for its supervised kill drill.
// Worker stderr is inherited, so the whole fleet's diagnostics land on
// the coordinator's stderr.
//
// --connect=HOST:PORT (repeatable) attaches REMOTE workers over TCP —
// each address is a `cwatpg_serve --listen` daemon, possibly on another
// machine. Remote workers mix freely with locally spawned ones; when any
// --connect is given and --workers is not, no local workers are spawned.
// A remote worker that dies (kill -9 included) surfaces as socket EOF and
// takes the same shard-failover path as a dead child process.
// --listen=HOST:PORT serves the coordinator's OWN front end over TCP to
// one client at a time instead of stdio.
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "net/listener.hpp"
#include "net/socket.hpp"
#include "svc/cluster.hpp"
#include "svc/spawn.hpp"
#include "svc/transport.hpp"

#include <unistd.h>

namespace {

void print_usage(std::ostream& out, const char* argv0) {
  out << "usage: " << argv0
      << " [--workers=N] [--worker-cmd=\"CMD ARGS...\"] [--shard-size=N]"
         " [--shard-deadline=S] [--default-deadline=S] [--registry-mb=N]"
         " [--respawn-backoff=S] [--max-respawns=N] [--heartbeat=S]"
         " [--connect=HOST:PORT ...] [--listen=HOST:PORT]\n"
         "  --workers=N           worker daemons to spawn. default 2"
         " (0 when --connect is used)\n"
         "  --worker-cmd=CMD      worker command line (whitespace-split);"
         " default: cwatpg_serve --threads=2 next to this binary\n"
         "  --shard-size=N        collapsed fault ids per shard. default"
         " 512\n"
         "  --shard-deadline=S    per-shard worker deadline; a wedged"
         " worker self-reports instead of holding its shard. 0 = none."
         " default 0\n"
         "  --default-deadline=S  job deadline when the request carries"
         " none; 0 = unlimited. default 0\n"
         "  --registry-mb=N       coordinator circuit cache budget."
         " default 256\n"
         "  --respawn-backoff=S   base delay before respawning a dead"
         " worker (doubles per consecutive failure, capped). default"
         " 0.05\n"
         "  --max-respawns=N      respawn events tolerated per slot inside"
         " a 30 s window before the slot is quarantined as a crash loop;"
         " 0 = never respawn. default 5\n"
         "  --heartbeat=S         probe idle workers with a bounded"
         " `status` every S seconds; a non-answer is treated as death."
         " 0 = off. default 0\n"
         "  --connect=HOST:PORT   attach a remote TCP worker (repeatable;"
         " a `cwatpg_serve --listen` daemon; dialed with bounded retries"
         " so a still-booting worker is tolerated)\n"
         "  --listen=HOST:PORT    serve the front end over TCP (one client"
         " at a time; PORT 0 = ephemeral, bound port on stderr)\n";
}

/// Default worker command: the cwatpg_serve that shipped alongside this
/// binary, falling back to PATH lookup when /proc introspection fails.
std::string default_worker_cmd() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    std::string self(buf, static_cast<std::size_t>(n));
    const std::size_t slash = self.rfind('/');
    if (slash != std::string::npos)
      return self.substr(0, slash + 1) + "cwatpg_serve --threads=2";
  }
  return "cwatpg_serve --threads=2";
}

std::vector<std::string> split_command(const std::string& cmd) {
  std::vector<std::string> argv;
  std::istringstream in(cmd);
  std::string tok;
  while (in >> tok) argv.push_back(tok);
  return argv;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cwatpg;

  // A worker dying mid-write must surface as EPIPE on our pipe fds — the
  // failover signal — not as a process-killing SIGPIPE.
  ::signal(SIGPIPE, SIG_IGN);

  std::size_t workers = 2;
  bool workers_set = false;
  std::string worker_cmd;
  std::vector<std::string> connect_specs;
  std::string listen_spec;
  svc::ClusterOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--workers=", 0) == 0) {
      workers = static_cast<std::size_t>(
          std::max(0L, std::atol(arg.c_str() + 10)));
      workers_set = true;
    } else if (arg.rfind("--connect=", 0) == 0) {
      connect_specs.push_back(arg.substr(10));
    } else if (arg.rfind("--listen=", 0) == 0) {
      listen_spec = arg.substr(9);
    } else if (arg.rfind("--worker-cmd=", 0) == 0) {
      worker_cmd = arg.substr(13);
    } else if (arg.rfind("--shard-size=", 0) == 0) {
      options.shard_size = static_cast<std::size_t>(
          std::max(1L, std::atol(arg.c_str() + 13)));
    } else if (arg.rfind("--shard-deadline=", 0) == 0) {
      options.shard_deadline_seconds = std::atof(arg.c_str() + 17);
    } else if (arg.rfind("--default-deadline=", 0) == 0) {
      options.default_deadline_seconds = std::atof(arg.c_str() + 19);
    } else if (arg.rfind("--registry-mb=", 0) == 0) {
      options.registry_bytes =
          static_cast<std::size_t>(std::max(1L, std::atol(arg.c_str() + 14)))
          << 20;
    } else if (arg.rfind("--respawn-backoff=", 0) == 0) {
      options.supervisor.backoff.base_seconds =
          std::max(0.0, std::atof(arg.c_str() + 18));
    } else if (arg.rfind("--max-respawns=", 0) == 0) {
      options.supervisor.max_respawns = static_cast<std::size_t>(
          std::max(0L, std::atol(arg.c_str() + 15)));
    } else if (arg.rfind("--heartbeat=", 0) == 0) {
      options.supervisor.heartbeat_seconds =
          std::max(0.0, std::atof(arg.c_str() + 12));
    } else if (arg == "--help" || arg == "-h") {
      print_usage(std::cout, argv[0]);
      return 0;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      print_usage(std::cerr, argv[0]);
      return 2;
    }
  }
  if (worker_cmd.empty()) worker_cmd = default_worker_cmd();
  const std::vector<std::string> worker_argv = split_command(worker_cmd);
  if (worker_argv.empty()) {
    std::cerr << "cwatpg_cluster: --worker-cmd is empty\n";
    return 2;
  }
  // Remote workers displace the local default: `--connect` alone means
  // "this coordinator owns no processes"; mixing needs an explicit
  // --workers=N.
  if (!connect_specs.empty() && !workers_set) workers = 0;
  if (workers + connect_specs.size() == 0) {
    std::cerr << "cwatpg_cluster: no workers (--workers=0 and no"
                 " --connect)\n";
    return 2;
  }

  std::vector<std::int64_t> pids;
  int exit_code = 0;
  try {
    std::vector<svc::Cluster::WorkerEndpoint> endpoints;
    endpoints.reserve(workers + connect_specs.size());
    for (std::size_t i = 0; i < workers; ++i) {
      svc::ChildProcess child = svc::spawn_child(worker_argv);
      pids.push_back(child.pid);
      svc::Cluster::WorkerEndpoint e;
      e.transport = std::move(child.transport);
      e.name = "w" + std::to_string(i);
      e.pid = child.pid;
      // The respawn factory the supervisor calls (from the slot's own
      // worker thread, outside the coordinator lock) after this child
      // dies: a fresh fork/exec of the same command line. Throws =
      // failed attempt, retried under the supervisor's backoff.
      e.respawn = [worker_argv]() {
        svc::ChildProcess next = svc::spawn_child(worker_argv);
        svc::Cluster::WorkerEndpoint::Respawned r;
        r.transport = std::move(next.transport);
        r.pid = next.pid;
        return r;
      };
      endpoints.push_back(std::move(e));
    }
    // Boot dialing tolerates a worker daemon that is still starting up:
    // bounded retry with the shared backoff schedule rather than one
    // all-or-nothing connect.
    svc::RetryOptions dial_retry;
    dial_retry.max_attempts = 10;
    dial_retry.backoff.base_seconds = 0.05;
    dial_retry.backoff.max_seconds = 1.0;
    for (const std::string& spec : connect_specs) {
      std::string host;
      std::uint16_t port = 0;
      netio::parse_host_port(spec, &host, &port);
      // A remote worker is just a Transport; pid 0 tells status/failover
      // "no process to signal or reap here". kill -9 on the far side
      // reaches us as socket EOF — the same worker-death signal a dead
      // child's pipe gives, so shard failover is untouched.
      svc::Cluster::WorkerEndpoint e;
      e.transport = std::make_unique<netio::SocketTransport>(
          netio::tcp_connect_retry(host, port, 10.0, dial_retry));
      e.name = "tcp:" + host + ":" + std::to_string(port);
      e.pid = 0;
      // Respawn for a remote slot is a re-dial of the same address; one
      // connect per attempt — the supervisor's backoff loop provides the
      // retries, so a daemon that stays down converges to quarantine.
      e.respawn = [host, port]() {
        svc::Cluster::WorkerEndpoint::Respawned r;
        r.transport = std::make_unique<netio::SocketTransport>(
            netio::tcp_connect(host, port, 10.0));
        r.pid = 0;
        return r;
      };
      endpoints.push_back(std::move(e));
    }
    std::cerr << "cwatpg_cluster: " << workers << " local workers";
    if (workers > 0) std::cerr << " (`" << worker_cmd << "`)";
    if (!connect_specs.empty())
      std::cerr << " + " << connect_specs.size() << " remote";
    std::cerr << ", shard size " << options.shard_size;

    svc::Cluster cluster(std::move(endpoints), options);
    // From here the cluster owns worker lifecycles: it reaps a child the
    // moment its pipe EOFs (so kill -9 never leaves a zombie), respawns
    // replacements with pids of its own, and reaps the final generation
    // at drain. Reaping the startup pids again here would race pid
    // reuse, so the list only backstops a failure *before* this point.
    pids.clear();
    if (!listen_spec.empty()) {
      std::string host;
      std::uint16_t port = 0;
      netio::parse_host_port(listen_spec, &host, &port);
      netio::Listener listener(host, port);
      // Same parseable banner shape as cwatpg_serve --listen.
      std::cerr << " — listening on " << host << ":" << listener.port()
                << "\n";
      netio::SocketTransport transport(listener.accept_one_blocking());
      cluster.serve(transport);
    } else {
      std::cerr << " — serving cwatpg.rpc/1 on stdin/stdout\n";
      svc::StreamTransport transport(std::cin, std::cout);
      cluster.serve(transport);
    }
    std::cerr << "cwatpg_cluster: drained, exiting\n";
  } catch (const std::exception& e) {
    std::cerr << "cwatpg_cluster: fatal: " << e.what() << "\n";
    exit_code = 1;
  }
  // Non-empty only when startup failed before the Cluster took ownership
  // (e.g. a --connect dial that never succeeded after local children were
  // already spawned): force-kill and reap those orphans.
  for (const std::int64_t pid : pids) svc::reap_child(pid, true);
  return exit_code;
}
