// cwatpg_cluster — the sharded ATPG coordinator over stdin/stdout.
//
//   $ ./cwatpg_cluster [--workers=N] [--worker-cmd="CMD ARGS..."]
//                      [--shard-size=N] [--shard-deadline=S]
//                      [--default-deadline=S] [--registry-mb=N]
//
// Speaks cwatpg.rpc/1 frames on stdin/stdout, exactly like cwatpg_serve —
// a drop-in front end — but fans per-fault `run_atpg` jobs out across N
// spawned worker daemons (child processes over stdio pipes) and merges
// their shard replies into one response that is classification-identical
// to a single-node run. A worker killed mid-job forfeits its un-acked
// shard to a survivor; `status` reports per-worker pids, liveness and
// redispatch counts, which is what scripts/service_smoke.py --cluster
// uses for its kill drill. Worker stderr is inherited, so the whole
// fleet's diagnostics land on the coordinator's stderr.
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "svc/cluster.hpp"
#include "svc/spawn.hpp"
#include "svc/transport.hpp"

#include <unistd.h>

namespace {

void print_usage(std::ostream& out, const char* argv0) {
  out << "usage: " << argv0
      << " [--workers=N] [--worker-cmd=\"CMD ARGS...\"] [--shard-size=N]"
         " [--shard-deadline=S] [--default-deadline=S] [--registry-mb=N]\n"
         "  --workers=N           worker daemons to spawn. default 2\n"
         "  --worker-cmd=CMD      worker command line (whitespace-split);"
         " default: cwatpg_serve --threads=2 next to this binary\n"
         "  --shard-size=N        collapsed fault ids per shard. default"
         " 512\n"
         "  --shard-deadline=S    per-shard worker deadline; a wedged"
         " worker self-reports instead of holding its shard. 0 = none."
         " default 0\n"
         "  --default-deadline=S  job deadline when the request carries"
         " none; 0 = unlimited. default 0\n"
         "  --registry-mb=N       coordinator circuit cache budget."
         " default 256\n";
}

/// Default worker command: the cwatpg_serve that shipped alongside this
/// binary, falling back to PATH lookup when /proc introspection fails.
std::string default_worker_cmd() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    std::string self(buf, static_cast<std::size_t>(n));
    const std::size_t slash = self.rfind('/');
    if (slash != std::string::npos)
      return self.substr(0, slash + 1) + "cwatpg_serve --threads=2";
  }
  return "cwatpg_serve --threads=2";
}

std::vector<std::string> split_command(const std::string& cmd) {
  std::vector<std::string> argv;
  std::istringstream in(cmd);
  std::string tok;
  while (in >> tok) argv.push_back(tok);
  return argv;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cwatpg;

  // A worker dying mid-write must surface as EPIPE on our pipe fds — the
  // failover signal — not as a process-killing SIGPIPE.
  ::signal(SIGPIPE, SIG_IGN);

  std::size_t workers = 2;
  std::string worker_cmd;
  svc::ClusterOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--workers=", 0) == 0) {
      workers = static_cast<std::size_t>(
          std::max(1L, std::atol(arg.c_str() + 10)));
    } else if (arg.rfind("--worker-cmd=", 0) == 0) {
      worker_cmd = arg.substr(13);
    } else if (arg.rfind("--shard-size=", 0) == 0) {
      options.shard_size = static_cast<std::size_t>(
          std::max(1L, std::atol(arg.c_str() + 13)));
    } else if (arg.rfind("--shard-deadline=", 0) == 0) {
      options.shard_deadline_seconds = std::atof(arg.c_str() + 17);
    } else if (arg.rfind("--default-deadline=", 0) == 0) {
      options.default_deadline_seconds = std::atof(arg.c_str() + 19);
    } else if (arg.rfind("--registry-mb=", 0) == 0) {
      options.registry_bytes =
          static_cast<std::size_t>(std::max(1L, std::atol(arg.c_str() + 14)))
          << 20;
    } else if (arg == "--help" || arg == "-h") {
      print_usage(std::cout, argv[0]);
      return 0;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      print_usage(std::cerr, argv[0]);
      return 2;
    }
  }
  if (worker_cmd.empty()) worker_cmd = default_worker_cmd();
  const std::vector<std::string> worker_argv = split_command(worker_cmd);
  if (worker_argv.empty()) {
    std::cerr << "cwatpg_cluster: --worker-cmd is empty\n";
    return 2;
  }

  std::vector<std::int64_t> pids;
  int exit_code = 0;
  try {
    std::vector<svc::Cluster::WorkerEndpoint> endpoints;
    endpoints.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
      svc::ChildProcess child = svc::spawn_child(worker_argv);
      pids.push_back(child.pid);
      svc::Cluster::WorkerEndpoint e;
      e.transport = std::move(child.transport);
      e.name = "w" + std::to_string(i);
      e.pid = child.pid;
      endpoints.push_back(std::move(e));
    }
    std::cerr << "cwatpg_cluster: " << workers << " workers (`" << worker_cmd
              << "`), shard size " << options.shard_size
              << " — serving cwatpg.rpc/1 on stdin/stdout\n";

    svc::Cluster cluster(std::move(endpoints), options);
    svc::StreamTransport transport(std::cin, std::cout);
    cluster.serve(transport);
    std::cerr << "cwatpg_cluster: drained, exiting\n";
  } catch (const std::exception& e) {
    std::cerr << "cwatpg_cluster: fatal: " << e.what() << "\n";
    exit_code = 1;
  }
  // serve() already closed (or never opened) the worker pipes; a clean
  // drain lets each child exit on its own, a fatal error force-kills.
  for (const std::int64_t pid : pids) svc::reap_child(pid, exit_code != 0);
  return exit_code;
}
