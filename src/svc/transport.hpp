// Frame transports: how cwatpg.rpc/1 frames physically move.
//
// The server is written against this interface so the same code path is
// exercised everywhere: cwatpg_serve binds a StreamTransport to
// stdin/stdout, the tests and the throughput bench bind the two ends of an
// in-memory duplex pipe. Nothing above this layer knows which one it has —
// which is what makes the served-vs-direct determinism tests meaningful
// (they cover the whole server, not a test-only shortcut).
//
// Thread-safe: write() may be called concurrently from any thread (job
// completions race each other and the control plane; each implementation
// serializes frame writes internally, so frames never interleave).
// read() is single-consumer: exactly one thread may be blocked in read()
// at a time — the server's reader loop on one end, the client's response
// collector on the other.
#pragma once

#include <iosfwd>
#include <memory>
#include <mutex>

#include "obs/json.hpp"

namespace cwatpg::svc {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Blocks for the next inbound frame. Returns false when the peer has
  /// closed and every buffered frame has been drained. Throws
  /// ProtocolError on malformed bytes (stream transports).
  virtual bool read(obs::Json& frame) = 0;

  /// Sends one frame. Thread-safe; frames are written atomically.
  virtual void write(const obs::Json& frame) = 0;

  /// Signals end-of-stream to the peer: its read() drains buffered frames
  /// then returns false. Further write() calls on this end are dropped.
  /// Idempotent; also performed by the destructor.
  virtual void close() = 0;

  /// Asks the transport to bound each read() at `seconds` (0 = unbounded),
  /// after which read() throws ProtocolError. Returns whether the
  /// transport supports timeouts; the default implementation ignores the
  /// request — in-memory and pipe transports have no portable way to
  /// interrupt a blocked read, and their peers live in the same process.
  virtual bool set_read_timeout(double seconds) {
    (void)seconds;
    return false;
  }
};

/// Frames over a byte stream pair (cwatpg_serve: stdin/stdout). The
/// streams must outlive the transport. close() only marks this end closed
/// (an iostream has no portable shutdown); EOF propagation is the owning
/// process's job — closing stdin of the child is how a driver stops it.
class StreamTransport final : public Transport {
 public:
  StreamTransport(std::istream& in, std::ostream& out) : in_(in), out_(out) {}

  bool read(obs::Json& frame) override;
  void write(const obs::Json& frame) override;
  void close() override;

 private:
  std::istream& in_;
  std::ostream& out_;
  std::mutex write_mutex_;
  bool closed_ = false;  ///< guarded by write_mutex_
};

/// The two ends of an in-memory duplex pipe. Frames written on one end are
/// read (in order) on the other; each direction is an independent bounded-
/// by-memory queue. Destroying or close()-ing an end wakes the peer's
/// read() with end-of-stream once its buffer drains.
struct DuplexPair {
  std::unique_ptr<Transport> client;
  std::unique_ptr<Transport> server;
};

DuplexPair make_duplex();

/// Like make_duplex(), but each end is a real StreamTransport over
/// in-memory byte channels whose streambufs deliver SHORT reads by design
/// (at most one buffered chunk per read call). Frames therefore pass
/// through the full cwatpg.rpc/1 codec — length prefixes, the
/// short-read/short-write recovery loops, and every `svc.proto.*`
/// failpoint — instead of the frame-queue shortcut. This is what
/// bench_chaos and the transport-resilience tests drive.
DuplexPair make_byte_duplex();

}  // namespace cwatpg::svc
