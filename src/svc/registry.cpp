#include "svc/registry.hpp"

#include <new>
#include <sstream>
#include <utility>

#include "netlist/bench_io.hpp"
#include "sat/encode.hpp"
#include "util/failpoint.hpp"

namespace cwatpg::svc {

namespace {

class Fnv1a {
 public:
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (8 * i)) & 0xff;
      hash_ *= 0x100000001b3ull;
    }
  }

  std::string hex() const {
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 0; i < 16; ++i)
      out[i] = digits[(hash_ >> (60 - 4 * i)) & 0xf];
    return out;
  }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

std::size_t estimate_bytes(const CircuitEntry& entry) {
  // A deliberate estimate, not an accounting: what the budget needs is a
  // monotone, stable proxy for footprint so eviction pressure scales with
  // circuit size.
  std::size_t bytes = 0;
  for (net::NodeId id = 0; id < entry.net.node_count(); ++id) {
    bytes += sizeof(net::Network::Node) + 2 * sizeof(std::vector<net::NodeId>);
    bytes += (entry.net.fanins(id).size() + entry.net.fanouts(id).size()) *
             sizeof(net::NodeId);
  }
  bytes += entry.faults.size() * sizeof(fault::StuckAtFault);
  bytes += entry.base_cnf.num_clauses() * sizeof(sat::Clause) +
           entry.base_cnf.num_literals() * sizeof(sat::Lit);
  if (entry.miter != nullptr)
    bytes += entry.miter->cnf().num_clauses() * sizeof(sat::Clause) +
             entry.miter->cnf().num_literals() * sizeof(sat::Lit);
  return bytes;
}

}  // namespace

std::string content_hash(const net::Network& net) {
  Fnv1a h;
  h.mix(net.node_count());
  for (net::NodeId id = 0; id < net.node_count(); ++id) {
    h.mix(static_cast<std::uint64_t>(net.type(id)));
    h.mix(net.fanins(id).size());
    for (const net::NodeId fanin : net.fanins(id)) h.mix(fanin);
  }
  h.mix(net.inputs().size());
  for (const net::NodeId id : net.inputs()) h.mix(id);
  h.mix(net.outputs().size());
  for (const net::NodeId id : net.outputs()) h.mix(id);
  return h.hex();
}

obs::Json CircuitEntry::to_json() const {
  obs::Json j = obs::Json::object();
  j["key"] = key;
  j["name"] = net.name();
  j["gates"] = static_cast<std::uint64_t>(net.gate_count());
  j["inputs"] = static_cast<std::uint64_t>(net.inputs().size());
  j["outputs"] = static_cast<std::uint64_t>(net.outputs().size());
  j["faults"] = static_cast<std::uint64_t>(faults.size());
  j["cnf_vars"] = static_cast<std::uint64_t>(base_cnf.num_vars());
  j["cnf_clauses"] = static_cast<std::uint64_t>(base_cnf.num_clauses());
  j["miter_vars"] =
      static_cast<std::uint64_t>(miter != nullptr ? miter->num_vars() : 0);
  j["miter_clauses"] =
      static_cast<std::uint64_t>(miter != nullptr ? miter->num_clauses() : 0);
  j["bytes"] = static_cast<std::uint64_t>(approx_bytes);
  return j;
}

obs::Json RegistryStats::to_json() const {
  obs::Json j = obs::Json::object();
  j["entries"] = static_cast<std::uint64_t>(entries);
  j["bytes"] = static_cast<std::uint64_t>(bytes);
  j["byte_budget"] = static_cast<std::uint64_t>(byte_budget);
  j["loads"] = loads;
  j["hits"] = hits;
  j["misses"] = misses;
  j["evictions"] = evictions;
  return j;
}

CircuitRegistry::CircuitRegistry(std::size_t byte_budget)
    : byte_budget_(byte_budget) {}

std::shared_ptr<const CircuitEntry> CircuitRegistry::load_bench(
    std::string_view text, std::string name, bool* already_loaded) {
  std::istringstream in{std::string(text)};
  return insert(net::read_bench(in, std::move(name)), already_loaded);
}

std::shared_ptr<const CircuitEntry> CircuitRegistry::insert(
    net::Network net, bool* already_loaded) {
  if (already_loaded != nullptr) *already_loaded = false;
  const std::string key = content_hash(net);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.loads;
    if (const auto it = entries_.find(key); it != entries_.end()) {
      ++counters_.hits;
      touch_locked(key);
      if (already_loaded != nullptr) *already_loaded = true;
      return it->second.entry;
    }
  }
  // Failpoint: a registry that cannot allocate the precomputed state must
  // surface bad_alloc to the caller (the server maps it to `internal`),
  // never a half-built entry.
  if (CWATPG_FAILPOINT("svc.registry.alloc")) throw std::bad_alloc();
  // Precompute outside the lock: collapsing and encoding a big circuit
  // must not stall concurrent lookups. Two racing loaders of the same new
  // circuit both compute; the second insert dedups below.
  auto entry = std::make_shared<CircuitEntry>();
  entry->key = key;
  entry->net = std::move(net);
  entry->faults = fault::collapsed_fault_list(entry->net);
  entry->base_cnf = sat::encode_constraints(entry->net);
  entry->miter = std::make_shared<const fault::SharedMiterCnf>(entry->net);
  entry->approx_bytes = estimate_bytes(*entry);

  std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = entries_.find(key); it != entries_.end()) {
    ++counters_.hits;
    touch_locked(key);
    if (already_loaded != nullptr) *already_loaded = true;
    return it->second.entry;
  }
  lru_.push_front(key);
  entries_.emplace(key, Slot{entry, lru_.begin()});
  bytes_ += entry->approx_bytes;
  evict_to_budget_locked();
  return entry;
}

std::shared_ptr<const CircuitEntry> CircuitRegistry::find(
    std::string_view key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(std::string(key));
  if (it == entries_.end()) {
    ++counters_.misses;
    return nullptr;
  }
  ++counters_.hits;
  touch_locked(it->first);
  std::shared_ptr<const CircuitEntry> entry = it->second.entry;
  // Failpoint: evict EVERYTHING right after the lookup — the
  // eviction-under-pinning drill. The caller's shared_ptr (and any
  // in-flight job's) must keep the entry alive and usable; only the
  // registry's retention is gone.
  if (CWATPG_FAILPOINT("svc.registry.evict")) {
    counters_.evictions += entries_.size();
    entries_.clear();
    lru_.clear();
    bytes_ = 0;
  }
  return entry;
}

bool CircuitRegistry::retains(std::string_view key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.find(std::string(key)) != entries_.end();
}

RegistryStats CircuitRegistry::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  RegistryStats s = counters_;
  s.entries = entries_.size();
  s.bytes = bytes_;
  s.byte_budget = byte_budget_;
  return s;
}

void CircuitRegistry::touch_locked(const std::string& key) {
  const auto it = entries_.find(key);
  lru_.erase(it->second.lru_pos);
  lru_.push_front(key);
  it->second.lru_pos = lru_.begin();
}

void CircuitRegistry::evict_to_budget_locked() {
  while (bytes_ > byte_budget_ && entries_.size() > 1) {
    const std::string victim = lru_.back();
    const auto it = entries_.find(victim);
    bytes_ -= it->second.entry->approx_bytes;
    entries_.erase(it);
    lru_.pop_back();
    ++counters_.evictions;
  }
}

}  // namespace cwatpg::svc
