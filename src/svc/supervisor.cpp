#include "svc/supervisor.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

namespace cwatpg::svc {

double backoff_delay(const BackoffPolicy& policy, Rng& jitter,
                     std::size_t attempt) {
  double delay = policy.base_seconds;
  for (std::size_t i = 1; i < attempt; ++i) delay *= policy.multiplier;
  delay = std::min(delay, policy.max_seconds);
  // Jitter in [0.5, 1.0): decorrelates a fleet without ever collapsing
  // the delay to zero; seeded, so a chaos schedule replays exactly.
  const double u = static_cast<double>(jitter() >> 11) * 0x1.0p-53;
  return delay * (0.5 + 0.5 * u);
}

bool retry_with_backoff(const RetryOptions& options,
                        const std::function<bool(std::size_t)>& try_once) {
  const std::size_t attempts = std::max<std::size_t>(1, options.max_attempts);
  Rng jitter(options.jitter_seed);
  const std::function<void(double)>& sleep_fn = options.sleep_fn;
  for (std::size_t attempt = 1; attempt <= attempts; ++attempt) {
    if (try_once(attempt)) return true;
    if (attempt == attempts) break;
    const double delay = backoff_delay(options.backoff, jitter, attempt);
    if (sleep_fn) {
      sleep_fn(delay);
    } else {
      std::this_thread::sleep_for(std::chrono::duration<double>(delay));
    }
  }
  return false;
}

SlotSupervisor::SlotSupervisor(const SupervisorOptions& options,
                               std::uint64_t slot_index,
                               std::function<double()> now_fn)
    : options_(options),
      jitter_(split_seed(options.jitter_seed, slot_index)),
      now_fn_(std::move(now_fn)) {
  if (!now_fn_) {
    now_fn_ = [] {
      return std::chrono::duration<double>(
                 std::chrono::steady_clock::now().time_since_epoch())
          .count();
    };
  }
}

void SlotSupervisor::note_event() {
  const double now = now_fn_();
  events_.push_back(now);
  // Prune events older than the window so a long-lived slot that dies
  // rarely never accumulates toward quarantine.
  while (!events_.empty() &&
         now - events_.front() > options_.respawn_window_seconds)
    events_.pop_front();
}

void SlotSupervisor::note_death(std::string last_exit) {
  last_exit_ = std::move(last_exit);
  note_event();
}

void SlotSupervisor::note_respawn_failure() { note_event(); }

void SlotSupervisor::note_respawned() {
  ++generation_;
  ++restarts_;
}

bool SlotSupervisor::exhausted() const {
  return quarantined_ || events_.size() > options_.max_respawns;
}

double SlotSupervisor::next_delay() {
  return backoff_delay(options_.backoff, jitter_,
                       std::max<std::size_t>(1, events_.size()));
}

}  // namespace cwatpg::svc
