#include "svc/cluster.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <new>
#include <optional>
#include <span>
#include <utility>

#include "fault/fsim.hpp"
#include "fault/tegus.hpp"
#include "obs/report.hpp"
#include "svc/params.hpp"
#include "svc/spawn.hpp"
#include "util/failpoint.hpp"

namespace cwatpg::svc {

namespace {

/// Terminated job ids remembered for status/cancel after the JobContext
/// itself is released; bounds coordinator memory at high job counts.
constexpr std::size_t kDoneJobHistory = 1024;

std::uint64_t extract_id(const obs::Json& frame) {
  if (!frame.is_object()) return 0;
  const obs::Json* id = frame.find("id");
  if (id == nullptr || !id->is_number()) return 0;
  try {
    return id->as_u64();
  } catch (const std::exception&) {
    return 0;
  }
}

/// True when a worker record holds a post-escalation (phase-3) outcome.
/// kSatRetry/kPodem say so directly; a still-kAborted fault went through
/// the ladder iff it accumulated retry attempts — the per-fault engine's
/// main pass always commits attempts == 1, and every configured ladder
/// rung bumps the count. (The incremental engine breaks this invariant,
/// which is one reason incremental jobs are forwarded whole, not sharded.)
bool is_escalated(const fault::FaultOutcome& o) {
  return o.engine == fault::SolveEngine::kSatRetry ||
         o.engine == fault::SolveEngine::kPodem ||
         (o.status == fault::FaultStatus::kAborted && o.attempts > 1);
}

/// Phase-2/3 strategy that replays recorded worker outcomes through the
/// serial TEGUS pipeline. The pipeline keeps ALL its own bookkeeping —
/// random-phase drops, work-list order, drop-by-simulation, test
/// commitment and verification, escalation accounting — so the merged
/// result is the single-node result by construction; this provider merely
/// substitutes a map lookup for a SAT solve.
class ReplayProvider final : public fault::detail::SolveProvider {
 public:
  ReplayProvider(const std::map<std::size_t, WireFaultOutcome>& records,
                 Budget& replay_budget,
                 std::span<const fault::StuckAtFault> faults)
      : records_(records), budget_(replay_budget), faults_(faults) {}

  fault::FaultOutcome solve(std::size_t fault_index,
                            fault::Pattern& test_out) override {
    fault::FaultOutcome o;
    o.fault = faults_[fault_index];
    const auto it = records_.find(fault_index);
    if (it == records_.end()) {
      // No record: the shard owning this fault never completed (cancelled
      // or deadline-fired job). Fire the replay budget so the pipeline
      // stops exactly where an interrupted single-node run would; the
      // untouched kUndetermined outcome is what that run leaves behind.
      budget_.cancel();
      return o;
    }
    const fault::FaultOutcome& rec = it->second.outcome;
    if (is_escalated(rec)) {
      // The record is the fault's FINAL post-escalation outcome; the main
      // pass must observe the abort that routed it into phase 3. These
      // synthetic fields never reach the merged result — escalate() below
      // replaces the outcome wholesale with the recorded final.
      o.status = fault::FaultStatus::kAborted;
      o.engine = fault::SolveEngine::kSat;
      o.attempts = 1;
      return o;
    }
    o = rec;
    o.fault = faults_[fault_index];
    o.test_index = -1;
    if (o.status == fault::FaultStatus::kDetected) test_out = it->second.test;
    return o;
  }

  std::optional<fault::FaultOutcome> escalate(
      std::size_t fault_index, fault::Pattern& test_out) override {
    const auto it = records_.find(fault_index);
    if (it == records_.end()) {
      // Unreachable when solve() ran first (a missing record interrupts
      // the run before phase 3); keep the fault aborted defensively.
      budget_.cancel();
      fault::FaultOutcome o;
      o.fault = faults_[fault_index];
      o.status = fault::FaultStatus::kAborted;
      o.engine = fault::SolveEngine::kSat;
      o.attempts = 1;
      return o;
    }
    fault::FaultOutcome o = it->second.outcome;
    o.fault = faults_[fault_index];
    o.test_index = -1;
    if (o.status == fault::FaultStatus::kDetected) test_out = it->second.test;
    return o;
  }

 private:
  const std::map<std::size_t, WireFaultOutcome>& records_;
  Budget& budget_;
  std::span<const fault::StuckAtFault> faults_;
};

}  // namespace

/// Everything the coordinator tracks for one admitted job. Mutable fields
/// are guarded by the cluster mutex; `records` becomes read-only once the
/// terminal is claimed (merge then runs lock-free).
struct Cluster::JobContext {
  std::uint64_t id = 0;
  RequestKind kind = RequestKind::kRunAtpg;
  obs::Json params;
  std::shared_ptr<const CircuitEntry> circuit;
  std::string bench_text;  ///< for lazy replication to workers
  bool sharded = false;
  bool raw_outcomes = false;  ///< client asked for per-fault records
  Budget budget;              ///< job deadline + cancellation token
  Timer timer;

  // -- guarded by Cluster::mutex_ --
  std::map<std::size_t, WireFaultOutcome> records;  ///< first ingest wins
  std::size_t shards_total = 0;
  std::size_t shards_accounted = 0;
  std::uint64_t redispatches = 0;
  /// Poison windows this job had executed in-process, named in the
  /// response so an operator can see exactly which fault range kept
  /// killing workers.
  std::vector<std::pair<std::size_t, std::size_t>> poison_windows;
  std::uint64_t inprocess_faults = 0;
  bool cancelled = false;
  bool terminal_sent = false;
};

Cluster::Cluster(std::vector<WorkerEndpoint> workers, ClusterOptions options)
    : options_(options), registry_(options.registry_bytes) {
  if (workers.empty())
    throw std::invalid_argument("Cluster: at least one worker is required");
  if (options_.shard_size == 0) options_.shard_size = 1;
  workers_.reserve(workers.size());
  for (WorkerEndpoint& e : workers) {
    auto w = std::make_unique<WorkerState>();
    w->endpoint = std::move(e);
    if (w->endpoint.name.empty())
      w->endpoint.name = "w" + std::to_string(workers_.size());
    w->supervisor = SlotSupervisor(options_.supervisor, workers_.size());
    workers_.push_back(std::move(w));
  }
  alive_ = workers_.size();
  stats_.workers = workers_.size();
  stats_.alive = workers_.size();
  metrics_.counter("cluster.workers").add(workers_.size());
}

Cluster::~Cluster() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_closed_ = true;
  }
  queue_cv_.notify_all();
  for (const std::unique_ptr<WorkerState>& w : workers_)
    if (w->thread.joinable()) w->thread.join();
  for (const std::unique_ptr<WorkerState>& w : workers_)
    if (w->endpoint.transport != nullptr) w->endpoint.transport->close();
}

ClusterStats Cluster::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ClusterStats s = stats_;
  s.alive = alive_;
  s.respawning = respawning_;
  s.quarantined = 0;
  for (const std::unique_ptr<WorkerState>& w : workers_)
    if (w->supervisor.quarantined()) ++s.quarantined;
  return s;
}

// ---- serve loop -----------------------------------------------------------

void Cluster::serve(Transport& transport) {
  if (transport_ != nullptr || shutting_down_)
    throw std::logic_error("svc::Cluster::serve is single-use");
  transport_ = &transport;
  for (const std::unique_ptr<WorkerState>& w : workers_) {
    WorkerState* ws = w.get();
    ws->thread = std::thread([this, ws] { worker_loop(*ws); });
  }

  fp::DomainScope reader_domain("cluster.reader");
  bool got_shutdown = false;
  std::uint64_t shutdown_id = 0;
  obs::Json frame;
  while (!got_shutdown) {
    bool have_frame = false;
    try {
      have_frame = transport.read(frame);
    } catch (const ProtocolError& e) {
      transport.write(make_error(0, ErrorCode::kBadRequest, e.what()));
      break;
    }
    if (!have_frame) break;  // peer closed: implicit shutdown, no response
    try {
      const Request req = Request::from_json(frame);
      metrics_
          .counter(std::string("cluster.requests.") + to_string(req.kind))
          .add(1);
      switch (req.kind) {
        case RequestKind::kLoadCircuit:
          handle_load_circuit(req);
          break;
        case RequestKind::kRunAtpg:
        case RequestKind::kFsim:
          admit_job(req);
          break;
        case RequestKind::kStatus:
          handle_status(req);
          break;
        case RequestKind::kCancel:
          handle_cancel(req);
          break;
        case RequestKind::kShutdown:
          got_shutdown = true;
          shutdown_id = req.id;
          break;
      }
    } catch (const ProtocolError& e) {
      transport.write(
          make_error(extract_id(frame), ErrorCode::kBadRequest, e.what()));
    }
  }

  // Drain: stop admission, let every active job reach its terminal, then
  // (for an explicit shutdown) answer LAST, mirroring Server::serve.
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
    drain_cv_.wait(lock, [&] { return active_jobs_ == 0; });
    queue_closed_ = true;
  }
  queue_cv_.notify_all();
  for (const std::unique_ptr<WorkerState>& w : workers_)
    if (w->thread.joinable()) w->thread.join();

  if (got_shutdown) {
    obs::Json result = cluster_status_json();
    result["drained"] = true;
    transport.write(make_response(shutdown_id, std::move(result)));
  }
  transport.close();
}

// ---- control plane --------------------------------------------------------

void Cluster::handle_load_circuit(const Request& req) {
  std::shared_ptr<const CircuitEntry> entry;
  bool already_loaded = false;
  std::string text;
  try {
    const std::string format = [&] {
      const obs::Json* f = req.params.find("format");
      return f != nullptr && f->is_string() ? f->as_string()
                                            : std::string("bench");
    }();
    if (format != "bench")
      throw ProtocolError("unsupported circuit format \"" + format + "\"");
    text = param_string_required(req.params, "text");
    const obs::Json* name = req.params.find("name");
    entry = registry_.load_bench(
        text,
        name != nullptr && name->is_string() ? name->as_string()
                                             : std::string("circuit"),
        &already_loaded);
  } catch (const ProtocolError& e) {
    transport_->write(make_error(req.id, ErrorCode::kBadRequest, e.what()));
    return;
  } catch (const std::bad_alloc&) {
    transport_->write(make_error(req.id, ErrorCode::kInternal,
                                 "out of memory while loading circuit"));
    return;
  } catch (const std::exception& e) {
    transport_->write(make_error(req.id, ErrorCode::kBadRequest, e.what()));
    return;
  }
  // Keep the source text for worker replication, keyed by the same
  // structural content hash the registry dedups on: re-loading an
  // identical circuit (under any name) is a no-op end to end.
  bench_texts_[entry->key] = std::move(text);
  // This load may have pushed older entries past the registry's LRU
  // budget; drop their replication texts too, or the text cache grows
  // without bound with distinct circuits. (An evicted key cannot be
  // admitted anyway, and already-admitted jobs carry their own copy.)
  for (auto it = bench_texts_.begin(); it != bench_texts_.end();) {
    if (it->first != entry->key && !registry_.retains(it->first))
      it = bench_texts_.erase(it);
    else
      ++it;
  }
  obs::Json result = obs::Json::object();
  result["circuit"] = entry->to_json();
  result["already_loaded"] = already_loaded;
  result["registry"] = registry_.stats().to_json();
  transport_->write(make_response(req.id, std::move(result)));
}

void Cluster::handle_status(const Request& req) {
  if (const obs::Json* job_param = req.params.find("job");
      job_param != nullptr) {
    const std::uint64_t id = param_u64(req.params, "job", 0);
    const char* state = "unknown";
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (const auto it = jobs_.find(id); it != jobs_.end())
        state = it->second->terminal_sent ? "done" : "running";
      else if (done_jobs_.count(id) != 0)
        state = "done";
    }
    obs::Json result = obs::Json::object();
    result["job"] = id;
    result["state"] = state;
    transport_->write(make_response(req.id, std::move(result)));
    return;
  }
  transport_->write(make_response(req.id, cluster_status_json()));
}

obs::Json Cluster::cluster_status_json() {
  obs::Json j = obs::Json::object();
  j["cluster"] = true;
  obs::Json workers = obs::Json::array();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    j["shutting_down"] = shutting_down_;
    j["workers"] = static_cast<std::uint64_t>(workers_.size());
    j["workers_alive"] = static_cast<std::uint64_t>(alive_);
    j["workers_respawning"] = static_cast<std::uint64_t>(respawning_);
    std::uint64_t quarantined = 0;
    for (const std::unique_ptr<WorkerState>& w : workers_) {
      obs::Json wj = obs::Json::object();
      wj["name"] = w->endpoint.name;
      wj["pid"] = static_cast<std::int64_t>(w->endpoint.pid);
      wj["alive"] = w->alive;
      wj["respawning"] = w->respawning;
      wj["quarantined"] = w->supervisor.quarantined();
      if (w->supervisor.quarantined()) ++quarantined;
      wj["generation"] = w->supervisor.generation();
      wj["restarts"] = w->supervisor.restarts();
      wj["last_exit"] = w->supervisor.last_exit();
      // Cumulative across generations: a respawn never erases history.
      wj["shards_completed"] = w->shards_completed;
      wj["redispatches_caused"] = w->redispatches_caused;
      workers.push_back(std::move(wj));
    }
    j["workers_quarantined"] = quarantined;
    j["shards_dispatched"] = stats_.shards_dispatched;
    j["redispatched"] = stats_.redispatched;
    j["worker_deaths"] = stats_.worker_deaths;
    j["respawns"] = stats_.respawns;
    j["heartbeat_failures"] = stats_.heartbeat_failures;
    j["poison_windows"] = stats_.poison_windows;
    j["inprocess_faults"] = stats_.inprocess_faults;
    j["jobs_completed"] = stats_.jobs_completed;
    j["jobs_failed"] = stats_.jobs_failed;
    j["active_jobs"] = static_cast<std::uint64_t>(active_jobs_);
    j["queue_depth"] = static_cast<std::uint64_t>(queue_.size());
  }
  j["worker_pool"] = std::move(workers);
  j["registry"] = registry_.stats().to_json();
  j["metrics"] = metrics_.snapshot().to_json();
  return j;
}

void Cluster::handle_cancel(const Request& req) {
  if (req.params.find("job") == nullptr)
    throw ProtocolError("param \"job\" (request id) is required");
  const std::uint64_t id = param_u64(req.params, "job", 0);

  const char* state = "unknown";
  std::shared_ptr<JobContext> job;
  bool forwarded_queued = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = jobs_.find(id); it != jobs_.end()) {
      job = it->second;
      if (job->terminal_sent) {
        state = "done";
        job = nullptr;
      } else {
        state = "cancelling";
        job->cancelled = true;
        job->budget.cancel();
        // Queued shards of this job will never run; account them now so
        // the partial terminal fires as soon as in-flight shards return.
        for (auto it2 = queue_.begin(); it2 != queue_.end();) {
          if (it2->job == job) {
            ++job->shards_accounted;
            if (!job->sharded) forwarded_queued = true;
            it2 = queue_.erase(it2);
          } else {
            ++it2;
          }
        }
        fan_out_cancel_locked(id);
      }
    } else if (done_jobs_.count(id) != 0) {
      state = "done";
    }
  }
  obs::Json result = obs::Json::object();
  result["job"] = id;
  result["state"] = state;
  transport_->write(make_response(req.id, std::move(result)));

  if (job == nullptr) return;
  if (!job->sharded) {
    // A forwarded job swept out of the queue above will never reach a
    // worker, and pop_shard's cancelled-while-queued path cannot fire for
    // a shard that is no longer queued — its terminal must come from
    // here, or the client hangs and the shutdown drain deadlocks.
    if (forwarded_queued)
      fail_job(job, ErrorCode::kCancelled, "cancelled while queued");
    return;
  }
  bool complete = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    complete =
        !job->terminal_sent && job->shards_accounted >= job->shards_total;
  }
  if (complete) finish_sharded_job(job);
}

void Cluster::fan_out_cancel_locked(std::uint64_t job_id) {
  // Out-of-band cancel: the worker threads own their Clients (and are
  // blocked awaiting shard replies), so the reader writes the cancel frame
  // directly — Transport::write is thread-safe — under request id 0,
  // which the worker daemon answers inline and the owning Client's router
  // drops as a session-level frame.
  for (const std::unique_ptr<WorkerState>& w : workers_) {
    if (!w->alive || w->inflight_job != job_id || w->inflight_worker_id == 0)
      continue;
    Request cancel;
    cancel.id = 0;
    cancel.kind = RequestKind::kCancel;
    cancel.params = obs::Json::object();
    cancel.params["job"] = w->inflight_worker_id;
    w->endpoint.transport->write(cancel.to_json());
  }
}

// ---- admission ------------------------------------------------------------

void Cluster::admit_job(const Request& req) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutting_down_) {
      transport_->write(make_error(req.id, ErrorCode::kShuttingDown,
                                   "cluster is draining"));
      return;
    }
    if (alive_ + respawning_ == 0) {
      // No worker thread is left to pop the queue (and none is between
      // generations): admitting would strand the job without a terminal.
      transport_->write(make_error(req.id, ErrorCode::kInternal,
                                   "all cluster workers died"));
      return;
    }
  }
  const std::string key = param_string_required(req.params, "circuit");
  std::shared_ptr<const CircuitEntry> circuit = registry_.find(key);
  if (circuit == nullptr) {
    transport_->write(make_error(req.id, ErrorCode::kNotFound,
                                 "unknown circuit \"" + key +
                                     "\" (load_circuit it first)"));
    return;
  }

  auto job = std::make_shared<JobContext>();
  job->id = req.id;
  job->kind = req.kind;
  job->params = req.params;
  job->circuit = circuit;
  if (const auto it = bench_texts_.find(circuit->key);
      it != bench_texts_.end())
    job->bench_text = it->second;

  if (req.kind == RequestKind::kRunAtpg) {
    // Validate (and classify) the request up front with the SAME mapping
    // the workers apply, so a bad request fails here, not across N shards.
    fault::AtpgOptions opts;
    try {
      opts = atpg_options_from_params(req.params, *circuit);
    } catch (const ProtocolError& e) {
      transport_->write(make_error(req.id, ErrorCode::kBadRequest, e.what()));
      return;
    }
    job->raw_outcomes = param_bool(req.params, "raw_outcomes", false);
    // Shard only when per-fault outcomes are history-independent: the
    // per-fault engine over the full fault list. Incremental jobs (one
    // shared solver whose per-fault stats depend on query order) and
    // requests that already carry their own window are forwarded whole.
    job->sharded = opts.engine == fault::AtpgEngine::kPerFault &&
                   opts.fault_subset.empty() && !circuit->faults.empty();
  }
  const double deadline = param_double(req.params, "deadline_seconds",
                                       options_.default_deadline_seconds);
  if (deadline > 0.0) job->budget.set_deadline_after(deadline);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (alive_ + respawning_ == 0) {
      // Re-checked under the registration lock: the last worker may have
      // died since the admission-time probe, and its all-dead sweep only
      // fails jobs that were registered when it ran.
      transport_->write(make_error(req.id, ErrorCode::kInternal,
                                   "all cluster workers died"));
      return;
    }
    if (const auto it = jobs_.find(req.id);
        it != jobs_.end() && !it->second->terminal_sent) {
      transport_->write(
          make_error(req.id, ErrorCode::kBadRequest,
                     "cwatpg.rpc: request id " + std::to_string(req.id) +
                         " already names a live job"));
      return;
    }
    jobs_[req.id] = job;
    ++active_jobs_;
    if (job->sharded) {
      const std::size_t n = circuit->faults.size();
      for (std::size_t lo = 0; lo < n; lo += options_.shard_size) {
        Shard s;
        s.job = job;
        s.lo = lo;
        s.hi = std::min(lo + options_.shard_size, n);
        queue_.push_back(std::move(s));
        ++job->shards_total;
      }
    } else {
      Shard s;
      s.job = job;
      queue_.push_back(std::move(s));
      job->shards_total = 1;
    }
  }
  queue_cv_.notify_all();
  metrics_.counter("cluster.jobs.admitted").add(1);
  // No admission ack: the job's single terminal response is the reply.
}

// ---- shard dispatch -------------------------------------------------------

Cluster::Pop Cluster::pop_shard(Shard& out, double idle_timeout_seconds) {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    const auto ready = [&] { return queue_closed_ || !queue_.empty(); };
    if (idle_timeout_seconds > 0.0) {
      if (!queue_cv_.wait_for(
              lock, std::chrono::duration<double>(idle_timeout_seconds),
              ready))
        return Pop::kIdle;  // the caller's heartbeat tick
    } else {
      queue_cv_.wait(lock, ready);
    }
    if (queue_.empty()) return Pop::kClosed;  // closed and drained
    out = std::move(queue_.front());
    queue_.pop_front();
    const std::shared_ptr<JobContext> job = out.job;
    if (job->terminal_sent) {
      out = Shard{};
      continue;
    }
    if (job->cancelled || job->budget.exhausted()) {
      if (job->sharded) {
        // Never dispatched: account it so the partial terminal can fire.
        ++job->shards_accounted;
        const bool complete = job->shards_accounted >= job->shards_total;
        if (complete) {
          lock.unlock();
          finish_sharded_job(job);
          lock.lock();
        }
      } else {
        lock.unlock();
        fail_job(job, ErrorCode::kCancelled, "cancelled while queued");
        lock.lock();
      }
      out = Shard{};
      continue;
    }
    return Pop::kShard;
  }
}

void Cluster::worker_loop(WorkerState& w) {
  // One SHARED failpoint domain for all worker threads: `once`/`nth:N`
  // schedules then fire for exactly one thread cluster-wide, which is what
  // "kill ONE worker mid-job" drills mean.
  fp::DomainScope domain("cluster.worker");
  while (true) {
    if (serve_generation(w)) return;  // clean queue close (drain)
    bool reviving = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      reviving = w.respawning;
    }
    // No respawn factory (or the drain began): the PR 8 shrink behavior —
    // this slot is gone for good.
    if (!reviving) return;
    if (!await_respawn(w)) return;  // quarantined or queue closed
  }
}

bool Cluster::serve_generation(WorkerState& w) {
  // The Client is per-generation: it holds a reference to the current
  // transport, which await_respawn replaces.
  Client client(*w.endpoint.transport, options_.client);
  const double tick = options_.supervisor.heartbeat_seconds;
  Shard shard;
  while (true) {
    switch (pop_shard(shard, tick)) {
      case Pop::kClosed:
        // Clean queue close (coordinator drain): pass the shutdown
        // downstream so worker daemons drain and exit instead of waiting
        // on stdin, then collect the child.
        try {
          client.call("shutdown");
        } catch (const std::exception&) {
          // The worker died just before the drain; nothing left to stop.
        }
        w.endpoint.transport->close();
        reap_slot(w, /*kill_first=*/false);
        return true;
      case Pop::kIdle:
        if (heartbeat(w, client)) continue;
        on_worker_death(w, shard);  // shard is empty: nothing to forfeit
        return false;
      case Pop::kShard:
        if (!run_shard(w, client, shard)) {
          on_worker_death(w, shard);
          return false;
        }
        shard = Shard{};  // release the job reference between shards
        continue;
    }
  }
}

bool Cluster::heartbeat(WorkerState& w, Client& client) {
  // Failpoint: the worker wedges — alive but never answering. The probe
  // must convert that into the same EOF-shaped death signal a killed
  // worker gives.
  bool ok = !CWATPG_FAILPOINT("cluster.heartbeat.stall");
  if (ok) {
    if (!w.endpoint.transport->set_read_timeout(
            options_.supervisor.heartbeat_timeout_seconds))
      return true;  // unbounded transport: a probe could hang us — skip
    try {
      client.call("status");
    } catch (const std::exception&) {
      ok = false;  // timeout or torn session
    }
    w.endpoint.transport->set_read_timeout(0.0);
    metrics_.counter("cluster.supervisor.heartbeats").add(1);
  }
  if (!ok) {
    metrics_.counter("cluster.supervisor.heartbeat_failures").add(1);
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.heartbeat_failures;
  }
  return ok;
}

std::string Cluster::reap_slot(WorkerState& w, bool kill_first) {
  std::int64_t pid = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pid = w.endpoint.pid;
  }
  if (pid <= 0) return "eof";  // in-process or remote: nothing to reap
  return reap_child_exit(pid, kill_first).describe();
}

bool Cluster::await_respawn(WorkerState& w) {
  while (true) {
    double delay = 0.0;
    bool exhausted = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (queue_closed_) {
        w.respawning = false;
        --respawning_;
        return false;
      }
      exhausted = w.supervisor.exhausted();
      if (!exhausted) delay = w.supervisor.next_delay();
    }
    if (exhausted) {
      // Crash loop: quarantine the slot loudly instead of spinning.
      bool all_dead = false;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        w.supervisor.quarantine();
        w.respawning = false;
        --respawning_;
        all_dead = alive_ == 0 && respawning_ == 0;
      }
      metrics_.counter("cluster.supervisor.quarantined").add(1);
      if (all_dead) fail_all_jobs("all cluster workers died");
      return false;
    }
    {
      // Interruptible backoff: a drain must not wait out the schedule.
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait_for(lock, std::chrono::duration<double>(delay),
                         [&] { return queue_closed_; });
      if (queue_closed_) {
        w.respawning = false;
        --respawning_;
        return false;
      }
    }
    WorkerEndpoint::Respawned next;
    // Failpoint: the respawn itself fails (fork/exec or re-dial error);
    // counts toward the crash-loop window and backs off harder.
    bool ok = !CWATPG_FAILPOINT("cluster.respawn.fail");
    if (ok) {
      try {
        next = w.endpoint.respawn();
      } catch (const std::exception&) {
        ok = false;
      }
      ok = ok && next.transport != nullptr;
    }
    if (!ok) {
      metrics_.counter("cluster.supervisor.respawn_failures").add(1);
      std::lock_guard<std::mutex> lock(mutex_);
      w.supervisor.note_respawn_failure();
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      // The transport swap is safe here: this slot's Client died with
      // serve_generation, and every other-thread writer (cancel fan-out)
      // checks w.alive under this mutex first.
      w.endpoint.transport = std::move(next.transport);
      w.endpoint.pid = next.pid;
      // New generation, empty replication state: circuits re-replicate
      // lazily by content hash exactly like a first load.
      w.loaded.clear();
      w.supervisor.note_respawned();
      w.alive = true;
      ++alive_;
      w.respawning = false;
      --respawning_;
      ++stats_.respawns;
    }
    metrics_.counter("cluster.supervisor.respawns").add(1);
    return true;
  }
}

bool Cluster::run_shard(WorkerState& w, Client& client, Shard& shard) {
  const std::shared_ptr<JobContext> job = shard.job;
  // Failpoint: the dispatch itself is dropped (frame lost before the
  // worker saw it). The worker is fine; the shard takes the redispatch
  // path.
  if (CWATPG_FAILPOINT("cluster.dispatch.drop")) {
    redispatch(w, shard, "dispatch dropped (cluster.dispatch.drop)");
    return true;
  }
  // Failpoint: fault K is poison — every dispatch of a window containing
  // it kills the worker (`cluster.shard.poison=always@K`). Returning
  // false is exactly the signal a real crash gives, so this drives the
  // full quarantine ladder: death → redispatch → second death → bisect →
  // … → width-1 window executed in-process.
  if (job->sharded) {
    const int poison = CWATPG_FAILPOINT_ARG("cluster.shard.poison");
    if (poison >= 0 && static_cast<std::size_t>(poison) >= shard.lo &&
        static_cast<std::size_t>(poison) < shard.hi)
      return false;
  }
  try {
    // Lazy replication, idempotent by content hash: the first shard of a
    // circuit on this worker ships the bench text; re-sends after a
    // failover ack with already_loaded.
    if (!job->bench_text.empty() &&
        w.loaded.count(job->circuit->key) == 0) {
      obs::Json p = obs::Json::object();
      p["text"] = job->bench_text;
      p["name"] = job->circuit->net.name();
      const obs::Json reply = client.call("load_circuit", std::move(p));
      const obs::Json* ok = reply.find("ok");
      if (ok == nullptr || !ok->is_bool() || !ok->as_bool()) {
        redispatch(w, shard, "worker rejected load_circuit");
        return true;
      }
      w.loaded.insert(job->circuit->key);
    }

    obs::Json params = job->params;
    if (job->sharded) {
      obs::Json range = obs::Json::array();
      range.push_back(static_cast<std::uint64_t>(shard.lo));
      range.push_back(static_cast<std::uint64_t>(shard.hi));
      params["fault_range"] = std::move(range);
      // Workers solve their windows speculatively and report raw per-
      // fault records; the coordinator's replay re-applies dropping.
      params["raw_outcomes"] = true;
      params["drop_by_simulation"] = false;
      params["threads"] = std::uint64_t(1);
    }
    double deadline = 0.0;
    if (job->budget.has_deadline())
      deadline = std::max(job->budget.remaining_seconds(), 1e-3);
    if (job->sharded && options_.shard_deadline_seconds > 0.0)
      deadline = deadline > 0.0
                     ? std::min(deadline, options_.shard_deadline_seconds)
                     : options_.shard_deadline_seconds;
    if (deadline > 0.0) params["deadline_seconds"] = deadline;

    const std::uint64_t wid =
        client.submit(to_string(job->kind), std::move(params));
    bool send_cancel_now = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.shards_dispatched;
      if (shard.attempt > 0) metrics_.counter("cluster.shards.retried").add(1);
      w.inflight_worker_id = wid;
      w.inflight_job = job->id;
      // Close the submit/cancel race: a cancel that fanned out before we
      // registered the in-flight id missed this worker.
      send_cancel_now = job->cancelled;
    }
    metrics_.counter("cluster.shards").add(1);
    if (send_cancel_now) {
      Request cancel;
      cancel.id = 0;
      cancel.kind = RequestKind::kCancel;
      cancel.params = obs::Json::object();
      cancel.params["job"] = wid;
      w.endpoint.transport->write(cancel.to_json());
    }

    std::optional<obs::Json> reply = client.await(wid);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      w.inflight_worker_id = 0;
      w.inflight_job = 0;
    }
    if (!reply) return false;  // transport closed mid-await: worker died
    // Failpoint: the worker dies right after answering — its reply is
    // lost with it. Exercises un-acked-shard redispatch end to end.
    if (CWATPG_FAILPOINT("cluster.worker.eof")) return false;

    const obs::Json* okf = reply->find("ok");
    const bool ok = okf != nullptr && okf->is_bool() && okf->as_bool();

    if (!job->sharded) {
      // Forwarded whole job: the worker's reply IS the terminal; only the
      // correlation ids are rewritten to the coordinator's.
      if (claim_terminal(job)) {
        obs::Json terminal = std::move(*reply);
        terminal["id"] = job->id;
        if (ok) {
          obs::Json& result = terminal["result"];
          if (result.is_object() && result.find("job") != nullptr)
            result["job"] = job->id;
        }
        send_terminal(job, std::move(terminal));
        std::lock_guard<std::mutex> lock(mutex_);
        ++w.shards_completed;
        if (ok)
          ++stats_.jobs_completed;
        else
          ++stats_.jobs_failed;
      }
      return true;
    }

    bool partial_ok = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      partial_ok = job->cancelled;
    }
    partial_ok = partial_ok || job->budget.exhausted();

    if (!ok) {
      if (partial_ok) {
        // The worker never ran the cancelled shard ("cancelled" error):
        // a zero-record accounting keeps the partial-terminal math right.
        bool complete = false;
        {
          std::lock_guard<std::mutex> lock(mutex_);
          if (job->terminal_sent) return true;
          ++job->shards_accounted;
          ++w.shards_completed;
          complete = job->shards_accounted >= job->shards_total;
        }
        if (complete) finish_sharded_job(job);
        return true;
      }
      const obs::Json* error = reply->find("error");
      const obs::Json* message =
          error != nullptr && error->is_object() ? error->find("message")
                                                 : nullptr;
      redispatch(w, shard,
                 message != nullptr && message->is_string()
                     ? message->as_string()
                     : std::string("worker rejected the shard"));
      return true;
    }

    const obs::Json* result = reply->find("result");
    if (result == nullptr || !result->is_object()) {
      redispatch(w, shard, "malformed shard reply");
      return true;
    }
    const obs::Json* interrupted_f = result->find("interrupted");
    const bool interrupted = interrupted_f != nullptr &&
                             interrupted_f->is_bool() &&
                             interrupted_f->as_bool();
    if (interrupted && !partial_ok) {
      // The worker hit its own shard deadline (wedged or overloaded):
      // nothing was lost, but the records are not a complete window —
      // discard them and hand the shard to a survivor.
      redispatch(w, shard, "worker returned an interrupted shard");
      return true;
    }
    if (!ingest_reply(shard, *result, interrupted || partial_ok)) {
      redispatch(w, shard, "incomplete shard reply");
      return true;
    }
    bool complete = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++w.shards_completed;
      complete = !job->terminal_sent &&
                 job->shards_accounted >= job->shards_total;
    }
    if (complete) finish_sharded_job(job);
    return true;
  } catch (const ProtocolError&) {
    // Torn frames from a dying peer: the stream is unusable.
    return false;
  } catch (const std::runtime_error&) {
    // Client: transport closed while a call/await was pending.
    return false;
  }
}

bool Cluster::ingest_reply(Shard& shard, const obs::Json& result,
                           bool partial_ok) {
  const std::shared_ptr<JobContext>& job = shard.job;
  const obs::Json* raw = result.find("raw");
  std::vector<WireFaultOutcome> decoded;
  if (raw != nullptr && raw->is_array()) {
    decoded.reserve(raw->size());
    for (const obs::Json& r : raw->items()) {
      WireFaultOutcome rec =
          decode_fault_outcome(r, job->circuit->net.inputs().size());
      if (rec.index < shard.lo || rec.index >= shard.hi)
        continue;  // out-of-window record: not this shard's to report
      decoded.push_back(std::move(rec));
    }
  }
  // Failpoint: the merge sees a truncated reply — drop the tail half of
  // the records. The completeness check below must catch it and route the
  // shard through redispatch, never into a silently-partial merge.
  if (CWATPG_FAILPOINT("cluster.merge.partial") && decoded.size() > 1)
    decoded.resize(decoded.size() / 2);
  if (!partial_ok) {
    // A complete window reports every index in [lo, hi) exactly once, in
    // ascending order (the server emits them that way).
    if (decoded.size() != shard.hi - shard.lo) return false;
    for (std::size_t k = 0; k < decoded.size(); ++k)
      if (decoded[k].index != shard.lo + k) return false;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (job->terminal_sent) return true;  // late reply; terminal already out
  for (WireFaultOutcome& rec : decoded) {
    if (partial_ok && rec.outcome.status == fault::FaultStatus::kUndetermined)
      continue;  // an interrupted worker's unreached fault says nothing
    job->records.emplace(rec.index, std::move(rec));  // first ingest wins
  }
  ++job->shards_accounted;
  return true;
}

void Cluster::redispatch(WorkerState& w, Shard& shard,
                         const std::string& cause) {
  const std::shared_ptr<JobContext> job = shard.job;
  bool fail = false;
  bool finish_partial = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (job->terminal_sent) return;
    if (job->cancelled || job->budget.exhausted()) {
      // Re-running a dead job's shard is wasted work: account it empty.
      ++job->shards_accounted;
      finish_partial = job->sharded &&
                       job->shards_accounted >= job->shards_total;
    } else if (shard.attempt >= 1) {
      fail = true;
    } else {
      ++shard.attempt;
      ++stats_.redispatched;
      ++job->redispatches;
      ++w.redispatches_caused;
      queue_.push_front(shard);
    }
  }
  if (fail) {
    fail_job(job, ErrorCode::kInternal,
             "shard [" + std::to_string(shard.lo) + ", " +
                 std::to_string(shard.hi) + ") failed after redispatch: " +
                 cause);
    return;
  }
  if (finish_partial) {
    finish_sharded_job(job);
    return;
  }
  metrics_.counter("cluster.redispatched").add(1);
  queue_cv_.notify_all();
}

void Cluster::on_worker_death(WorkerState& w, Shard& shard) {
  bool all_dead = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (w.alive) {
      w.alive = false;
      --alive_;
      ++stats_.worker_deaths;
    }
    w.inflight_worker_id = 0;
    w.inflight_job = 0;
    // Decide respawn intent INSIDE the death transition: a slot between
    // generations still counts as capacity, so a sibling's concurrent
    // death cannot fire the all-dead sweep while this one is reviving.
    const bool will_respawn = static_cast<bool>(w.endpoint.respawn) &&
                              !w.supervisor.quarantined() && !queue_closed_;
    if (will_respawn && !w.respawning) {
      w.respawning = true;
      ++respawning_;
    }
    all_dead = alive_ == 0 && respawning_ == 0;
  }
  metrics_.counter("cluster.worker_deaths").add(1);
  w.endpoint.transport->close();
  // Reap the child NOW — not at coordinator exit — so a kill -9'd worker
  // never lingers as a zombie, and `status` can report how it died.
  const std::string last_exit = reap_slot(w, /*kill_first=*/true);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    w.supervisor.note_death(last_exit);
  }
  // The un-acked shard is the worker's forfeit: hand it to a survivor,
  // or — when this window has now killed two generations — route it
  // through poison-shard quarantine. Runs BEFORE the all-dead sweep so a
  // poison window's in-process fallback can still complete its job even
  // when this was the last worker.
  if (shard.job != nullptr) forfeit_shard(w, shard);
  if (all_dead) fail_all_jobs("all cluster workers died");
}

void Cluster::fail_all_jobs(const std::string& why) {
  std::vector<std::shared_ptr<JobContext>> victims;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [id, job] : jobs_)
      if (!job->terminal_sent) victims.push_back(job);
  }
  for (const std::shared_ptr<JobContext>& job : victims)
    fail_job(job, ErrorCode::kInternal, why);
}

void Cluster::forfeit_shard(WorkerState& w, Shard& shard) {
  const std::shared_ptr<JobContext> job = shard.job;
  if (!job->sharded) {
    // A forwarded whole job keeps the one-redispatch budget: there is no
    // window to bisect and no raw-record merge path to complete it
    // in-process.
    redispatch(w, shard, "worker \"" + w.endpoint.name + "\" died");
    return;
  }
  ++shard.deaths;
  if (shard.deaths >= 2) {
    quarantine_shard(w, shard);
    return;
  }
  bool finish_partial = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (job->terminal_sent) return;
    if (job->cancelled || job->budget.exhausted()) {
      // Re-running a dead job's shard is wasted work: account it empty.
      ++job->shards_accounted;
      finish_partial = job->shards_accounted >= job->shards_total;
    } else {
      ++stats_.redispatched;
      ++job->redispatches;
      ++w.redispatches_caused;
      queue_.push_front(shard);
    }
  }
  if (finish_partial) {
    finish_sharded_job(job);
    return;
  }
  metrics_.counter("cluster.redispatched").add(1);
  queue_cv_.notify_all();
}

void Cluster::quarantine_shard(WorkerState& w, Shard& shard) {
  (void)w;
  const std::shared_ptr<JobContext> job = shard.job;
  if (shard.hi - shard.lo <= 1) {
    // The residual minimal window IS the poison: run it on the
    // coordinator, whose process we trust with it (and whose death would
    // end the job anyway).
    run_window_inprocess(job, shard.lo, shard.hi);
    return;
  }
  // Bisect to isolate the offending fault range. Each half starts with
  // one inherited death so a half that kills again quarantines (or
  // bisects further) immediately; the innocent half completes normally on
  // the next worker. Convergence is O(log window) extra deaths.
  bool queued = false;
  bool finish_partial = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (job->terminal_sent) return;
    if (job->cancelled || job->budget.exhausted()) {
      ++job->shards_accounted;
      finish_partial = job->shards_accounted >= job->shards_total;
    } else {
      const std::size_t mid = shard.lo + (shard.hi - shard.lo) / 2;
      Shard left;
      left.job = job;
      left.lo = shard.lo;
      left.hi = mid;
      left.deaths = 1;
      Shard right;
      right.job = job;
      right.lo = mid;
      right.hi = shard.hi;
      right.deaths = 1;
      ++job->shards_total;  // one window became two
      queue_.push_front(std::move(right));
      queue_.push_front(std::move(left));
      queued = true;
    }
  }
  if (finish_partial) {
    finish_sharded_job(job);
    return;
  }
  if (queued) {
    metrics_.counter("cluster.supervisor.bisections").add(1);
    queue_cv_.notify_all();
  }
}

void Cluster::run_window_inprocess(const std::shared_ptr<JobContext>& job,
                                   std::size_t lo, std::size_t hi) {
  metrics_.counter("cluster.supervisor.inprocess_windows").add(1);
  std::vector<WireFaultOutcome> decoded;
  bool interrupted = false;
  try {
    // Exactly the request a worker would have received for this window
    // (run_shard's dispatch params), through the same shared
    // params→options mapping. Per-fault classification is a pure function
    // of (circuit, fault, options), so WHERE the window runs cannot leak
    // into the records.
    obs::Json params = job->params;
    obs::Json range = obs::Json::array();
    range.push_back(static_cast<std::uint64_t>(lo));
    range.push_back(static_cast<std::uint64_t>(hi));
    params["fault_range"] = std::move(range);
    params["raw_outcomes"] = true;
    params["drop_by_simulation"] = false;
    params["threads"] = std::uint64_t(1);
    fault::AtpgOptions opts = atpg_options_from_params(params, *job->circuit);
    // The job's own budget: cancellation and the deadline propagate into
    // the fallback exactly as they would into a worker-side run.
    opts.budget = &job->budget;
    const fault::AtpgResult result =
        fault::run_atpg(job->circuit->net, opts);
    interrupted = result.interrupted;
    const std::size_t num_inputs = job->circuit->net.inputs().size();
    decoded.reserve(opts.fault_subset.size());
    for (const std::size_t fi : opts.fault_subset) {
      const fault::FaultOutcome& o = result.outcomes[fi];
      const fault::Pattern* test =
          o.status == fault::FaultStatus::kDetected && o.has_test()
              ? &result.tests[o.test()]
              : nullptr;
      // Round-trip through the wire codec so the record is field-for-field
      // what ingesting the same worker reply would have stored.
      decoded.push_back(
          decode_fault_outcome(encode_fault_outcome(fi, o, test), num_inputs));
    }
  } catch (const std::exception& e) {
    fail_job(job, ErrorCode::kInternal,
             "in-process fallback for poison shard [" + std::to_string(lo) +
                 ", " + std::to_string(hi) + ") failed: " + e.what());
    return;
  }
  bool complete = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (job->terminal_sent) return;
    const bool partial_ok =
        job->cancelled || interrupted || job->budget.exhausted();
    for (WireFaultOutcome& rec : decoded) {
      if (partial_ok &&
          rec.outcome.status == fault::FaultStatus::kUndetermined)
        continue;  // an interrupted run's unreached fault says nothing
      job->records.emplace(rec.index, std::move(rec));  // first ingest wins
    }
    ++job->shards_accounted;
    job->poison_windows.emplace_back(lo, hi);
    job->inprocess_faults += hi - lo;
    ++stats_.poison_windows;
    stats_.inprocess_faults += hi - lo;
    complete = job->shards_accounted >= job->shards_total;
  }
  metrics_.counter("cluster.supervisor.inprocess_faults").add(hi - lo);
  if (complete) finish_sharded_job(job);
}

// ---- job termination ------------------------------------------------------

bool Cluster::claim_terminal(const std::shared_ptr<JobContext>& job) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (job->terminal_sent) return false;
  job->terminal_sent = true;
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->job == job)
      it = queue_.erase(it);
    else
      ++it;
  }
  return true;
}

void Cluster::send_terminal(const std::shared_ptr<JobContext>& job,
                            obs::Json response) {
  transport_->write(response);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (active_jobs_ > 0) --active_jobs_;
    // The terminal is out: release the job's heavy state (the per-fault
    // records map, and the jobs_ entry pinning the whole context) so a
    // long-lived coordinator does not grow with job count. status/cancel
    // keep answering "done" out of a bounded id history. The entry is
    // erased only if it still maps to THIS job — a reused request id may
    // already name a successor admitted during the merge window.
    job->records.clear();
    if (const auto it = jobs_.find(job->id);
        it != jobs_.end() && it->second == job)
      jobs_.erase(it);
    if (done_jobs_.insert(job->id).second) {
      done_order_.push_back(job->id);
      if (done_order_.size() > kDoneJobHistory) {
        done_jobs_.erase(done_order_.front());
        done_order_.pop_front();
      }
    }
  }
  drain_cv_.notify_all();
}

void Cluster::fail_job(const std::shared_ptr<JobContext>& job, ErrorCode code,
                       const std::string& message) {
  if (!claim_terminal(job)) return;
  metrics_.counter("cluster.jobs.failed").add(1);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.jobs_failed;
  }
  send_terminal(job, make_error(job->id, code, message));
}

void Cluster::finish_sharded_job(const std::shared_ptr<JobContext>& job) {
  if (!claim_terminal(job)) return;
  obs::Json result;
  try {
    result = merge_records(*job);
  } catch (const std::exception& e) {
    metrics_.counter("cluster.jobs.failed").add(1);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.jobs_failed;
    }
    send_terminal(job, make_error(job->id, ErrorCode::kInternal,
                                  std::string("cluster merge failed: ") +
                                      e.what()));
    return;
  }
  metrics_.counter("cluster.jobs.completed").add(1);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.jobs_completed;
  }
  send_terminal(job, make_response(job->id, std::move(result)));
}

obs::Json Cluster::merge_records(JobContext& job) {
  const CircuitEntry& circuit = *job.circuit;
  // Replay the exact single-node pipeline over the recorded outcomes: the
  // same params → options mapping the workers used, the ORIGINAL
  // drop_by_simulation policy, and a private budget the ReplayProvider
  // fires when a record is missing (cancelled/deadline'd job), so a
  // partial merge is shaped exactly like an interrupted single-node run.
  fault::AtpgOptions opts = atpg_options_from_params(job.params, circuit);
  Budget replay_budget;
  opts.budget = &replay_budget;
  ReplayProvider provider(job.records, replay_budget, circuit.faults);
  const auto simulate = [&circuit](std::span<const fault::StuckAtFault> fs,
                                   std::span<const fault::Pattern> ps) {
    return fault::fault_simulate(circuit.net, fs, ps);
  };
  fault::AtpgResult result =
      fault::detail::run_atpg_pipeline(circuit.net, opts, provider, simulate);

  obs::ReportOptions ropts;
  ropts.label = "cluster/" + circuit.key;
  ropts.engine = "cluster";
  ropts.threads = stats_.workers;
  ropts.seed = opts.seed;
  const obs::RunReport report =
      obs::build_run_report(circuit.net, result, ropts);

  obs::Json j = obs::Json::object();
  j["job"] = job.id;
  j["circuit"] = circuit.key;
  j["engine"] = "cluster";
  j["threads"] = static_cast<std::uint64_t>(stats_.workers);
  j["interrupted"] = result.interrupted;
  j["stop"] = to_string(job.budget.poll());
  j["faults"] = static_cast<std::uint64_t>(result.outcomes.size());
  j["num_detected"] = static_cast<std::uint64_t>(result.num_detected);
  j["num_untestable"] = static_cast<std::uint64_t>(result.num_untestable);
  j["num_aborted"] = static_cast<std::uint64_t>(result.num_aborted);
  j["num_undetermined"] =
      static_cast<std::uint64_t>(result.num_undetermined);
  j["coverage"] = result.fault_coverage();
  j["efficiency"] = result.fault_efficiency();
  obs::Json tests = obs::Json::array();
  for (const fault::Pattern& test : result.tests)
    tests.push_back(encode_bits(test));
  j["tests"] = std::move(tests);
  if (job.raw_outcomes) {
    obs::Json raw = obs::Json::array();
    for (std::size_t fi = 0; fi < result.outcomes.size(); ++fi) {
      const fault::FaultOutcome& o = result.outcomes[fi];
      const fault::Pattern* test =
          o.status == fault::FaultStatus::kDetected && o.has_test()
              ? &result.tests[o.test()]
              : nullptr;
      raw.push_back(encode_fault_outcome(fi, o, test));
    }
    j["raw"] = std::move(raw);
  }
  j["run_report"] = report.to_json();
  j["wall_seconds"] = job.timer.seconds();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    obs::Json cluster = obs::Json::object();
    cluster["shards"] = static_cast<std::uint64_t>(job.shards_total);
    cluster["redispatched"] = job.redispatches;
    cluster["workers_alive"] = static_cast<std::uint64_t>(alive_);
    // Name any poison windows: the job completed DESPITE them (their
    // faults ran in-process), and the operator deserves to know which
    // fault range kept killing workers.
    obs::Json poison = obs::Json::array();
    for (const auto& [lo, hi] : job.poison_windows) {
      obs::Json window = obs::Json::array();
      window.push_back(static_cast<std::uint64_t>(lo));
      window.push_back(static_cast<std::uint64_t>(hi));
      poison.push_back(std::move(window));
    }
    cluster["poison_windows"] = std::move(poison);
    cluster["inprocess_faults"] = job.inprocess_faults;
    j["cluster"] = std::move(cluster);
  }
  j["registry"] = registry_.stats().to_json();
  return j;
}

}  // namespace cwatpg::svc
