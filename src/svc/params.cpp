#include "svc/params.hpp"

#include <exception>

#include "svc/proto.hpp"

namespace cwatpg::svc {

std::uint64_t param_u64(const obs::Json& params, const char* key,
                        std::uint64_t fallback) {
  const obs::Json* v = params.find(key);
  if (v == nullptr) return fallback;
  try {
    return v->as_u64();
  } catch (const std::exception&) {
    throw ProtocolError(std::string("param \"") + key +
                        "\" must be a non-negative integer");
  }
}

double param_double(const obs::Json& params, const char* key,
                    double fallback) {
  const obs::Json* v = params.find(key);
  if (v == nullptr) return fallback;
  if (!v->is_number())
    throw ProtocolError(std::string("param \"") + key + "\" must be a number");
  return v->as_double();
}

std::int64_t param_i64(const obs::Json& params, const char* key,
                       std::int64_t fallback) {
  const obs::Json* v = params.find(key);
  if (v == nullptr) return fallback;
  try {
    return v->as_i64();
  } catch (const std::exception&) {
    throw ProtocolError(std::string("param \"") + key +
                        "\" must be an integer");
  }
}

bool param_bool(const obs::Json& params, const char* key, bool fallback) {
  const obs::Json* v = params.find(key);
  if (v == nullptr) return fallback;
  if (!v->is_bool())
    throw ProtocolError(std::string("param \"") + key +
                        "\" must be a boolean");
  return v->as_bool();
}

std::string param_string_required(const obs::Json& params, const char* key) {
  const obs::Json* v = params.find(key);
  if (v == nullptr || !v->is_string())
    throw ProtocolError(std::string("param \"") + key +
                        "\" (string) is required");
  return v->as_string();
}

namespace {

/// One index out of a fault_range/fault_ids element, bounds-checked
/// against the collapsed fault list.
std::size_t fault_index(const obs::Json& v, std::size_t num_faults,
                        const char* what) {
  std::uint64_t raw = 0;
  try {
    raw = v.as_u64();
  } catch (const std::exception&) {
    throw ProtocolError(std::string(what) +
                        " entries must be non-negative integers");
  }
  if (raw > num_faults)
    throw ProtocolError(std::string(what) + " index " + std::to_string(raw) +
                        " exceeds the collapsed fault list (" +
                        std::to_string(num_faults) + " faults)");
  return static_cast<std::size_t>(raw);
}

}  // namespace

fault::AtpgOptions atpg_options_from_params(const obs::Json& params,
                                            const CircuitEntry& circuit) {
  fault::AtpgOptions opts;
  opts.seed = param_u64(params, "seed", opts.seed);
  opts.random_blocks = static_cast<std::size_t>(
      param_u64(params, "random_blocks", opts.random_blocks));
  opts.solver.max_conflicts =
      param_u64(params, "max_conflicts", opts.solver.max_conflicts);
  opts.escalation_rounds = static_cast<std::size_t>(
      param_u64(params, "escalation_rounds", opts.escalation_rounds));
  opts.drop_by_simulation =
      param_bool(params, "drop_by_simulation", opts.drop_by_simulation);
  if (const obs::Json* engine = params.find("engine")) {
    if (!engine->is_string())
      throw ProtocolError("param \"engine\" must be a string");
    const std::string name = engine->as_string();
    if (name == "incremental") {
      opts.engine = fault::AtpgEngine::kIncremental;
      // The registry prebuilt the shared miter at load_circuit time;
      // handing it to the job is the whole amortization story.
      opts.prebuilt_miter = circuit.miter;
    } else if (name != "per-fault") {
      throw ProtocolError("param \"engine\" must be \"per-fault\" or "
                          "\"incremental\"");
    }
  }

  const std::size_t num_faults = circuit.faults.size();
  const obs::Json* range = params.find("fault_range");
  const obs::Json* ids = params.find("fault_ids");
  if (range != nullptr && ids != nullptr)
    throw ProtocolError("params \"fault_range\" and \"fault_ids\" are "
                        "mutually exclusive");
  if (range != nullptr) {
    if (!range->is_array() || range->size() != 2)
      throw ProtocolError("param \"fault_range\" must be a [lo, hi) pair");
    const std::size_t lo =
        fault_index((*range)[0], num_faults, "fault_range");
    const std::size_t hi =
        fault_index((*range)[1], num_faults, "fault_range");
    if (lo > hi) throw ProtocolError("fault_range lo exceeds hi");
    opts.fault_subset.reserve(hi - lo);
    for (std::size_t i = lo; i < hi; ++i) opts.fault_subset.push_back(i);
  } else if (ids != nullptr) {
    if (!ids->is_array())
      throw ProtocolError("param \"fault_ids\" must be an array of indices");
    opts.fault_subset.reserve(ids->size());
    for (const obs::Json& v : ids->items()) {
      const std::size_t i = fault_index(v, num_faults, "fault_ids");
      if (i >= num_faults)
        throw ProtocolError("fault_ids index " + std::to_string(i) +
                            " is out of range");
      if (!opts.fault_subset.empty() && i <= opts.fault_subset.back())
        throw ProtocolError("fault_ids must be strictly increasing");
      opts.fault_subset.push_back(i);
    }
  }
  return opts;
}

}  // namespace cwatpg::svc
