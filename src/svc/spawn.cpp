#include "svc/spawn.hpp"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <stdexcept>

#include <fcntl.h>
#include <poll.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "svc/proto.hpp"

namespace cwatpg::svc {

namespace {

/// read(2) exactly `n` bytes. Returns false on EOF at offset 0; throws
/// ProtocolError on EOF mid-object or a hard error. EINTR is retried.
/// `timeout_seconds` > 0 bounds each read with poll(2); expiry throws
/// ProtocolError, the same torn-session signal a dead peer gives.
bool read_exact(int fd, char* buf, std::size_t n, bool at_boundary,
                double timeout_seconds = 0.0) {
  std::size_t got = 0;
  while (got < n) {
    if (timeout_seconds > 0.0) {
      struct pollfd pfd;
      pfd.fd = fd;
      pfd.events = POLLIN;
      pfd.revents = 0;
      const int timeout_ms = std::max(
          1, static_cast<int>(timeout_seconds * 1000.0));
      const int ready = ::poll(&pfd, 1, timeout_ms);
      if (ready == 0)
        throw ProtocolError("read timed out after " +
                            std::to_string(timeout_seconds) + "s");
      if (ready < 0) {
        if (errno == EINTR) continue;
        throw ProtocolError(std::string("poll failed: ") +
                            std::strerror(errno));
      }
      // POLLHUP/POLLERR fall through to read(2), which reports the EOF
      // or error precisely.
    }
    const ssize_t r = ::read(fd, buf + got, n - got);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) {
      if (got == 0 && at_boundary) return false;
      throw ProtocolError("unexpected end of stream inside a frame");
    }
    if (errno == EINTR) continue;
    throw ProtocolError(std::string("read failed: ") + std::strerror(errno));
  }
  return true;
}

void write_all(int fd, const char* buf, std::size_t n) {
  std::size_t put = 0;
  while (put < n) {
    const ssize_t w = ::write(fd, buf + put, n - put);
    if (w >= 0) {
      put += static_cast<std::size_t>(w);
      continue;
    }
    if (errno == EINTR) continue;
    // EPIPE: the worker died. The caller's NEXT read() observes the
    // end-of-stream; reporting it here as well would double the signal.
    if (errno == EPIPE) return;
    throw ProtocolError(std::string("write failed: ") + std::strerror(errno));
  }
}

}  // namespace

FdTransport::FdTransport(int read_fd, int write_fd)
    : read_fd_(read_fd), write_fd_(write_fd) {}

FdTransport::~FdTransport() {
  close();
  if (read_fd_ >= 0) ::close(read_fd_);
}

bool FdTransport::read(obs::Json& frame) {
  if (read_fd_ < 0) return false;
  // Header: decimal byte count, '\n'. Read byte-at-a-time — the header is
  // a dozen bytes and this is the only way to stop exactly at the '\n'
  // without buffering into the payload. Syntax and caps live in the
  // shared FrameLengthParser, so this transport cannot drift from the
  // stdio codec.
  FrameLengthParser header;
  char c = 0;
  while (true) {
    if (!read_exact(read_fd_, &c, 1, header.digits() == 0,
                    read_timeout_seconds_))
      return false;
    if (header.feed(c)) break;
  }
  std::string payload(header.length(), '\0');
  if (!payload.empty())
    read_exact(read_fd_, payload.data(), payload.size(), false,
               read_timeout_seconds_);
  frame = parse_frame_payload(payload);
  return true;
}

bool FdTransport::set_read_timeout(double seconds) {
  read_timeout_seconds_ = seconds > 0.0 ? seconds : 0.0;
  return true;
}

void FdTransport::write(const obs::Json& frame) {
  const std::string payload = frame.dump();
  const std::string header = std::to_string(payload.size()) + "\n";
  std::lock_guard<std::mutex> lock(write_mutex_);
  if (write_fd_ < 0) return;  // closed: drop, like the other transports
  write_all(write_fd_, header.data(), header.size());
  write_all(write_fd_, payload.data(), payload.size());
}

void FdTransport::close() {
  std::lock_guard<std::mutex> lock(write_mutex_);
  if (write_fd_ >= 0) {
    ::close(write_fd_);
    write_fd_ = -1;
  }
}

ChildProcess spawn_child(const std::vector<std::string>& argv) {
  if (argv.empty()) throw std::runtime_error("spawn_child: empty argv");
  int to_child[2];    // parent writes → child stdin
  int from_child[2];  // child stdout → parent reads
  if (::pipe(to_child) != 0)
    throw std::runtime_error(std::string("pipe failed: ") +
                             std::strerror(errno));
  if (::pipe(from_child) != 0) {
    ::close(to_child[0]);
    ::close(to_child[1]);
    throw std::runtime_error(std::string("pipe failed: ") +
                             std::strerror(errno));
  }
  // Close-on-exec on every pipe fd: a later-spawned sibling must not
  // inherit the parent-side write end of an earlier worker's stdin, or
  // that worker never sees EOF on close() while the sibling lives. The
  // child's own ends survive as stdin/stdout because dup2 clears the
  // flag on the duplicate.
  for (const int fd : {to_child[0], to_child[1], from_child[0],
                       from_child[1]})
    ::fcntl(fd, F_SETFD, FD_CLOEXEC);

  const pid_t pid = ::fork();
  if (pid < 0) {
    for (const int fd : {to_child[0], to_child[1], from_child[0],
                         from_child[1]})
      ::close(fd);
    throw std::runtime_error(std::string("fork failed: ") +
                             std::strerror(errno));
  }

  if (pid == 0) {
    // Child: stdin/stdout onto the pipes, stderr inherited.
    ::dup2(to_child[0], STDIN_FILENO);
    ::dup2(from_child[1], STDOUT_FILENO);
    for (const int fd : {to_child[0], to_child[1], from_child[0],
                         from_child[1]})
      ::close(fd);
    std::vector<char*> args;
    args.reserve(argv.size() + 1);
    for (const std::string& a : argv) args.push_back(const_cast<char*>(a.c_str()));
    args.push_back(nullptr);
    ::execvp(args[0], args.data());
    ::_exit(127);
  }

  ::close(to_child[0]);
  ::close(from_child[1]);
  ChildProcess child;
  child.pid = pid;
  child.transport =
      std::make_unique<FdTransport>(from_child[0], to_child[1]);
  return child;
}

std::string ChildExit::describe() const {
  if (!reaped) return "unknown";
  return (signaled ? "signal " : "exit ") + std::to_string(code);
}

void reap_child(std::int64_t pid, bool kill_first) {
  (void)reap_child_exit(pid, kill_first);
}

ChildExit reap_child_exit(std::int64_t pid, bool kill_first) {
  ChildExit exit;
  if (pid <= 0) return exit;
  // kill(2) on an already-exited (zombie) child is a harmless no-op, so
  // waitpid below still reports the child's true termination.
  if (kill_first) ::kill(static_cast<pid_t>(pid), SIGKILL);
  int status = 0;
  pid_t reaped = -1;
  while ((reaped = ::waitpid(static_cast<pid_t>(pid), &status, 0)) < 0 &&
         errno == EINTR) {
  }
  if (reaped != static_cast<pid_t>(pid)) return exit;  // ECHILD: not ours
  exit.reaped = true;
  if (WIFEXITED(status)) {
    exit.code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    exit.signaled = true;
    exit.code = WTERMSIG(status);
  }
  return exit;
}

}  // namespace cwatpg::svc
