#include "svc/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "util/failpoint.hpp"

namespace cwatpg::svc {

namespace {

/// Bitwise CRC-32 with the reflected polynomial, table-built once. Speed
/// is irrelevant here (two short lines per job); the property that matters
/// is that a torn or bit-flipped line cannot validate.
const std::uint32_t* crc_table() {
  static const auto table = [] {
    static std::uint32_t t[256];
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

std::string crc_hex(std::uint32_t crc) {
  static const char digits[] = "0123456789abcdef";
  std::string out(8, '0');
  for (int i = 0; i < 8; ++i)
    out[i] = digits[(crc >> (28 - 4 * i)) & 0xf];
  return out;
}

/// write(2) the whole buffer, restarting on EINTR and short writes — the
/// journal's own partial-I/O discipline (and the reason a journal line is
/// either fully on disk or detectably torn, never silently half-written
/// by us).
void write_all_fd(int fd, const char* data, std::size_t length) {
  std::size_t done = 0;
  while (done < length) {
    const ssize_t n = ::write(fd, data + done, length - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("journal write failed: ") +
                               std::strerror(errno));
    }
    done += static_cast<std::size_t>(n);
  }
}

}  // namespace

std::uint32_t crc32(std::string_view data) {
  const std::uint32_t* table = crc_table();
  std::uint32_t crc = 0xffffffffu;
  for (const char ch : data)
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xff] ^ (crc >> 8);
  return crc ^ 0xffffffffu;
}

Journal::Journal(const std::string& path, std::uint64_t first_seq)
    : path_(path), next_seq_(first_seq == 0 ? 1 : first_seq) {
  fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
               0644);
  if (fd_ < 0)
    throw std::runtime_error("cannot open journal \"" + path +
                             "\": " + std::strerror(errno));
}

Journal::~Journal() {
  if (fd_ >= 0) ::close(fd_);
}

void Journal::append(obs::Json record) {
  std::lock_guard<std::mutex> lock(mutex_);
  // The seq is stamped under the same lock that serializes the write, so
  // concurrent callers (reader, workers, watchdog) get unique values that
  // match file order. The builders reserved the key; this overwrite keeps
  // the documented field order.
  record["seq"] = next_seq_++;
  const std::string payload = record.dump();
  const std::string line = crc_hex(crc32(payload)) + " " + payload + "\n";
  // Failpoint: the disk said no. Surfaced as an exception so the server's
  // journal-degraded accounting path is exercised.
  if (CWATPG_FAILPOINT("svc.journal.io_error"))
    throw std::runtime_error("journal write failed (injected: "
                             "svc.journal.io_error)");
  // Failpoint: a torn append — only half the line reaches the file and no
  // fsync happens, exactly what a crash mid-write leaves behind. Recovery
  // must count the line corrupt, not trust it.
  if (CWATPG_FAILPOINT("svc.journal.torn")) {
    write_all_fd(fd_, line.data(), line.size() / 2);
    return;
  }
  write_all_fd(fd_, line.data(), line.size());
  if (::fsync(fd_) != 0)
    throw std::runtime_error(std::string("journal fsync failed: ") +
                             std::strerror(errno));
}

void Journal::record_accepted(std::uint64_t job, std::string_view kind,
                              std::string_view circuit) {
  obs::Json j = obs::Json::object();
  j["schema"] = kJournalSchema;
  j["seq"] = std::uint64_t{0};  // reserved; stamped in append() under mutex_
  j["event"] = "accepted";
  j["job"] = job;
  j["kind"] = kind;
  j["circuit"] = circuit;
  append(std::move(j));
}

void Journal::record_terminal(std::uint64_t job, std::string_view outcome) {
  obs::Json j = obs::Json::object();
  j["schema"] = kJournalSchema;
  j["seq"] = std::uint64_t{0};  // reserved; stamped in append() under mutex_
  j["event"] = "terminal";
  j["job"] = job;
  j["outcome"] = outcome;
  append(std::move(j));
}

void Journal::record_interrupted(std::uint64_t job) {
  obs::Json j = obs::Json::object();
  j["schema"] = kJournalSchema;
  j["seq"] = std::uint64_t{0};  // reserved; stamped in append() under mutex_
  j["event"] = "interrupted";
  j["job"] = job;
  append(std::move(j));
}

Journal::Recovery Journal::recover(const std::string& path) {
  Recovery out;
  std::ifstream in(path);
  if (!in) return out;  // no journal yet: clean first boot

  /// job id -> most recent accepted record still awaiting a terminal.
  std::unordered_map<std::uint64_t, JournalRecord> open_jobs;

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    // "<8-hex-crc> <json>" — anything else (torn tail, merged lines from
    // a tear followed by more appends, editor damage) fails the checksum
    // or the shape check and is counted, never trusted.
    if (line.size() < 10 || line[8] != ' ') {
      ++out.corrupt;
      continue;
    }
    std::uint32_t stored = 0;
    bool hex_ok = true;
    for (int i = 0; i < 8; ++i) {
      const char ch = line[static_cast<std::size_t>(i)];
      stored <<= 4;
      if (ch >= '0' && ch <= '9') {
        stored |= static_cast<std::uint32_t>(ch - '0');
      } else if (ch >= 'a' && ch <= 'f') {
        stored |= static_cast<std::uint32_t>(ch - 'a' + 10);
      } else {
        hex_ok = false;
        break;
      }
    }
    const std::string_view payload(line.data() + 9, line.size() - 9);
    if (!hex_ok || crc32(payload) != stored) {
      ++out.corrupt;
      continue;
    }
    JournalRecord rec;
    try {
      const obs::Json j = obs::Json::parse(std::string(payload), 8);
      const obs::Json* schema = j.find("schema");
      const obs::Json* event = j.find("event");
      const obs::Json* job = j.find("job");
      if (schema == nullptr || !schema->is_string() ||
          schema->as_string() != kJournalSchema || event == nullptr ||
          !event->is_string() || job == nullptr) {
        ++out.corrupt;
        continue;
      }
      rec.event = event->as_string();
      rec.job = job->as_u64();
      if (const obs::Json* seq = j.find("seq")) rec.seq = seq->as_u64();
      if (const obs::Json* kind = j.find("kind");
          kind != nullptr && kind->is_string())
        rec.kind = kind->as_string();
      if (const obs::Json* circuit = j.find("circuit");
          circuit != nullptr && circuit->is_string())
        rec.circuit = circuit->as_string();
      if (const obs::Json* outcome = j.find("outcome");
          outcome != nullptr && outcome->is_string())
        rec.outcome = outcome->as_string();
    } catch (const std::exception&) {
      ++out.corrupt;
      continue;
    }
    ++out.records;
    out.max_seq = std::max(out.max_seq, rec.seq);
    if (rec.event == "accepted") {
      open_jobs[rec.job] = rec;  // id reuse: the latest acceptance counts
    } else if (rec.event == "terminal" || rec.event == "interrupted") {
      open_jobs.erase(rec.job);
    }
    // A checksum-valid record with an unknown event is skipped: a newer
    // schema revision must not make an older reader declare corruption.
  }

  out.interrupted.reserve(open_jobs.size());
  for (auto& [job, rec] : open_jobs) out.interrupted.push_back(std::move(rec));
  std::sort(out.interrupted.begin(), out.interrupted.end(),
            [](const JournalRecord& a, const JournalRecord& b) {
              return a.seq < b.seq;
            });
  return out;
}

}  // namespace cwatpg::svc
