// cwatpg_serve — the ATPG daemon over stdin/stdout.
//
//   $ ./cwatpg_serve [--threads=N] [--queue-capacity=N] [--registry-mb=N]
//                    [--default-deadline=SECONDS]
//
// Speaks cwatpg.rpc/1 frames (`<len>\n<json>`) on stdin/stdout: the same
// Server the in-memory tests drive, bound to a StreamTransport. Run it
// under any process supervisor and multiplex clients in front of it, or
// drive it directly from a script — scripts/service_smoke.py shows the
// five-line Python client. Diagnostics go to stderr; stdout carries only
// frames.
//
// --threads=0 (the default) means "auto": one job slot per hardware
// thread, via the shared ThreadPool::resolve_thread_count helper.
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>

#include "svc/server.hpp"
#include "svc/transport.hpp"
#include "util/threadpool.hpp"

namespace {

void print_usage(std::ostream& out, const char* argv0) {
  out << "usage: " << argv0
      << " [--threads=N] [--queue-capacity=N] [--registry-mb=N]"
         " [--default-deadline=SECONDS] [--journal=PATH]"
         " [--watchdog-stall=S] [--watchdog-detach=S] [--watchdog-poll=S]\n"
         "  --threads=N           job workers; 0 = auto (hardware"
         " concurrency). default 0\n"
         "  --queue-capacity=N    admission limit; full queue answers"
         " `overloaded`. default 64\n"
         "  --registry-mb=N       circuit cache byte budget (LRU above"
         " it). default 256\n"
         "  --default-deadline=S  deadline for jobs that carry none;"
         " 0 = unlimited. default 0\n"
         "  --journal=PATH        crash-recovery journal (cwatpg.journal/1);"
         " replayed on start, prior in-flight jobs reported as interrupted."
         " default off\n"
         "  --watchdog-stall=S    cancel a running job after S seconds"
         " without Budget progress; 0 = watchdog off. default 0\n"
         "  --watchdog-detach=S   after a watchdog cancel, detach (terminal"
         " `internal` error) after S more stalled seconds; 0 = never."
         " default 0\n"
         "  --watchdog-poll=S     watchdog sampling cadence. default 0.02\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cwatpg;

  // A peer vanishing mid-response (a coordinator killed over our pipe)
  // must surface as a failed write, not kill the daemon.
  ::signal(SIGPIPE, SIG_IGN);

  svc::ServerOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      options.threads = static_cast<std::size_t>(
          std::max(0L, std::atol(arg.c_str() + 10)));
    } else if (arg.rfind("--queue-capacity=", 0) == 0) {
      options.queue_capacity = static_cast<std::size_t>(
          std::max(1L, std::atol(arg.c_str() + 17)));
    } else if (arg.rfind("--registry-mb=", 0) == 0) {
      options.registry_bytes =
          static_cast<std::size_t>(std::max(1L, std::atol(arg.c_str() + 14)))
          << 20;
    } else if (arg.rfind("--default-deadline=", 0) == 0) {
      options.default_deadline_seconds = std::atof(arg.c_str() + 19);
    } else if (arg.rfind("--journal=", 0) == 0) {
      options.journal_path = arg.substr(10);
    } else if (arg.rfind("--watchdog-stall=", 0) == 0) {
      options.watchdog_stall_seconds = std::atof(arg.c_str() + 17);
    } else if (arg.rfind("--watchdog-detach=", 0) == 0) {
      options.watchdog_detach_seconds = std::atof(arg.c_str() + 18);
    } else if (arg.rfind("--watchdog-poll=", 0) == 0) {
      options.watchdog_poll_seconds = std::atof(arg.c_str() + 16);
    } else if (arg == "--help" || arg == "-h") {
      print_usage(std::cout, argv[0]);
      return 0;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      print_usage(std::cerr, argv[0]);
      return 2;
    }
  }

  try {
    svc::Server server(options);
    std::cerr << "cwatpg_serve: " << server.threads()
              << " job workers, queue capacity " << options.queue_capacity
              << ", registry budget " << (options.registry_bytes >> 20)
              << " MiB";
    if (!options.journal_path.empty())
      std::cerr << ", journal " << options.journal_path;
    if (options.watchdog_stall_seconds > 0)
      std::cerr << ", watchdog stall " << options.watchdog_stall_seconds
                << "s";
    std::cerr << " — serving cwatpg.rpc/1 on stdin/stdout\n";

    svc::StreamTransport transport(std::cin, std::cout);
    server.serve(transport);
  } catch (const std::exception& e) {
    // e.g. the journal path cannot be opened: refusing to run without the
    // durability the operator asked for beats running without it.
    std::cerr << "cwatpg_serve: fatal: " << e.what() << "\n";
    return 1;
  }
  std::cerr << "cwatpg_serve: drained, exiting\n";
  return 0;
}
