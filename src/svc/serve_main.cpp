// cwatpg_serve — the ATPG daemon over stdin/stdout or TCP.
//
//   $ ./cwatpg_serve [--threads=N] [--queue-capacity=N] [--registry-mb=N]
//                    [--default-deadline=SECONDS]
//                    [--listen=HOST:PORT | --connect=HOST:PORT]
//
// Speaks cwatpg.rpc/1 frames (`<len>\n<json>`) on stdin/stdout: the same
// Server the in-memory tests drive, bound to a StreamTransport. Run it
// under any process supervisor and multiplex clients in front of it, or
// drive it directly from a script — scripts/service_smoke.py shows the
// five-line Python client. Diagnostics go to stderr; stdout carries only
// frames.
//
// --listen=HOST:PORT serves N concurrent TCP clients through the
// netio::NetServer event loop instead (PORT 0 picks an ephemeral port; the
// stderr banner reports the bound one). --connect=HOST:PORT dials OUT and
// serves that single connection — how a remote worker attaches itself to
// a listening coordinator across machines.
//
// --threads=0 (the default) means "auto": one job slot per hardware
// thread, via the shared ThreadPool::resolve_thread_count helper.
#include <atomic>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "net/net_server.hpp"
#include "net/socket.hpp"
#include "svc/server.hpp"
#include "svc/transport.hpp"
#include "util/threadpool.hpp"

namespace {

std::atomic<cwatpg::netio::NetServer*> g_net_server{nullptr};

void handle_stop_signal(int) {
  if (auto* srv = g_net_server.load()) srv->stop();
}

void print_usage(std::ostream& out, const char* argv0) {
  out << "usage: " << argv0
      << " [--threads=N] [--queue-capacity=N] [--registry-mb=N]"
         " [--default-deadline=SECONDS] [--journal=PATH]"
         " [--watchdog-stall=S] [--watchdog-detach=S] [--watchdog-poll=S]"
         " [--listen=HOST:PORT [--max-connections=N] [--idle-timeout=S]]"
         " [--connect=HOST:PORT]\n"
         "  --threads=N           job workers; 0 = auto (hardware"
         " concurrency). default 0\n"
         "  --queue-capacity=N    admission limit; full queue answers"
         " `overloaded`. default 64\n"
         "  --registry-mb=N       circuit cache byte budget (LRU above"
         " it). default 256\n"
         "  --default-deadline=S  deadline for jobs that carry none;"
         " 0 = unlimited. default 0\n"
         "  --journal=PATH        crash-recovery journal (cwatpg.journal/1);"
         " replayed on start, prior in-flight jobs reported as interrupted."
         " default off\n"
         "  --watchdog-stall=S    cancel a running job after S seconds"
         " without Budget progress; 0 = watchdog off. default 0\n"
         "  --watchdog-detach=S   after a watchdog cancel, detach (terminal"
         " `internal` error) after S more stalled seconds; 0 = never."
         " default 0\n"
         "  --watchdog-poll=S     watchdog sampling cadence. default 0.02\n"
         "  --listen=HOST:PORT    serve concurrent TCP clients instead of"
         " stdio; PORT 0 = ephemeral (bound port on stderr)\n"
         "  --max-connections=N   TCP admission cap; excess connections are"
         " answered `overloaded` and closed. default 64\n"
         "  --idle-timeout=S      reset a TCP connection silent for S"
         " seconds; 0 = never. default 0\n"
         "  --connect=HOST:PORT   dial a listening coordinator and serve"
         " that one connection (remote-worker mode)\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cwatpg;

  // A peer vanishing mid-response (a coordinator killed over our pipe)
  // must surface as a failed write, not kill the daemon.
  ::signal(SIGPIPE, SIG_IGN);

  svc::ServerOptions options;
  std::string listen_spec;
  std::string connect_spec;
  netio::NetServerOptions net_options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--listen=", 0) == 0) {
      listen_spec = arg.substr(9);
    } else if (arg.rfind("--connect=", 0) == 0) {
      connect_spec = arg.substr(10);
    } else if (arg.rfind("--max-connections=", 0) == 0) {
      net_options.max_connections = static_cast<std::size_t>(
          std::max(1L, std::atol(arg.c_str() + 18)));
    } else if (arg.rfind("--idle-timeout=", 0) == 0) {
      net_options.idle_timeout_seconds = std::atof(arg.c_str() + 15);
    } else if (arg.rfind("--threads=", 0) == 0) {
      options.threads = static_cast<std::size_t>(
          std::max(0L, std::atol(arg.c_str() + 10)));
    } else if (arg.rfind("--queue-capacity=", 0) == 0) {
      options.queue_capacity = static_cast<std::size_t>(
          std::max(1L, std::atol(arg.c_str() + 17)));
    } else if (arg.rfind("--registry-mb=", 0) == 0) {
      options.registry_bytes =
          static_cast<std::size_t>(std::max(1L, std::atol(arg.c_str() + 14)))
          << 20;
    } else if (arg.rfind("--default-deadline=", 0) == 0) {
      options.default_deadline_seconds = std::atof(arg.c_str() + 19);
    } else if (arg.rfind("--journal=", 0) == 0) {
      options.journal_path = arg.substr(10);
    } else if (arg.rfind("--watchdog-stall=", 0) == 0) {
      options.watchdog_stall_seconds = std::atof(arg.c_str() + 17);
    } else if (arg.rfind("--watchdog-detach=", 0) == 0) {
      options.watchdog_detach_seconds = std::atof(arg.c_str() + 18);
    } else if (arg.rfind("--watchdog-poll=", 0) == 0) {
      options.watchdog_poll_seconds = std::atof(arg.c_str() + 16);
    } else if (arg == "--help" || arg == "-h") {
      print_usage(std::cout, argv[0]);
      return 0;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      print_usage(std::cerr, argv[0]);
      return 2;
    }
  }

  if (!listen_spec.empty() && !connect_spec.empty()) {
    std::cerr << "cwatpg_serve: --listen and --connect are exclusive\n";
    return 2;
  }

  try {
    svc::Server server(options);
    std::cerr << "cwatpg_serve: " << server.threads()
              << " job workers, queue capacity " << options.queue_capacity
              << ", registry budget " << (options.registry_bytes >> 20)
              << " MiB";
    if (!options.journal_path.empty())
      std::cerr << ", journal " << options.journal_path;
    if (options.watchdog_stall_seconds > 0)
      std::cerr << ", watchdog stall " << options.watchdog_stall_seconds
                << "s";

    if (!listen_spec.empty()) {
      netio::parse_host_port(listen_spec, &net_options.host,
                           &net_options.port);
      netio::NetServer net_server(server, net_options);
      // The banner's HOST:PORT line is the contract smoke scripts parse to
      // discover an ephemeral port; keep its shape stable.
      std::cerr << " — listening on " << net_options.host << ":"
                << net_server.port() << " (max " << net_options.max_connections
                << " connections)\n";
      g_net_server.store(&net_server);
      ::signal(SIGINT, handle_stop_signal);
      ::signal(SIGTERM, handle_stop_signal);
      net_server.run();
      g_net_server.store(nullptr);
    } else if (!connect_spec.empty()) {
      std::string host;
      std::uint16_t port = 0;
      netio::parse_host_port(connect_spec, &host, &port);
      std::cerr << " — dialing " << host << ":" << port << "\n";
      // Bounded retry with backoff: tolerates a coordinator that is still
      // binding its listener when this worker boots.
      svc::RetryOptions dial_retry;
      dial_retry.max_attempts = 10;
      dial_retry.backoff.base_seconds = 0.05;
      dial_retry.backoff.max_seconds = 1.0;
      netio::SocketTransport transport(
          netio::tcp_connect_retry(host, port, 10.0, dial_retry));
      server.serve(transport);
    } else {
      std::cerr << " — serving cwatpg.rpc/1 on stdin/stdout\n";
      svc::StreamTransport transport(std::cin, std::cout);
      server.serve(transport);
    }
  } catch (const std::exception& e) {
    // e.g. the journal path cannot be opened: refusing to run without the
    // durability the operator asked for beats running without it.
    std::cerr << "cwatpg_serve: fatal: " << e.what() << "\n";
    return 1;
  }
  std::cerr << "cwatpg_serve: drained, exiting\n";
  return 0;
}
