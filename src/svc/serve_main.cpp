// cwatpg_serve — the ATPG daemon over stdin/stdout.
//
//   $ ./cwatpg_serve [--threads=N] [--queue-capacity=N] [--registry-mb=N]
//                    [--default-deadline=SECONDS]
//
// Speaks cwatpg.rpc/1 frames (`<len>\n<json>`) on stdin/stdout: the same
// Server the in-memory tests drive, bound to a StreamTransport. Run it
// under any process supervisor and multiplex clients in front of it, or
// drive it directly from a script — scripts/service_smoke.py shows the
// five-line Python client. Diagnostics go to stderr; stdout carries only
// frames.
//
// --threads=0 (the default) means "auto": one job slot per hardware
// thread, via the shared ThreadPool::resolve_thread_count helper.
#include <cstdlib>
#include <iostream>
#include <string>

#include "svc/server.hpp"
#include "svc/transport.hpp"
#include "util/threadpool.hpp"

namespace {

void print_usage(std::ostream& out, const char* argv0) {
  out << "usage: " << argv0
      << " [--threads=N] [--queue-capacity=N] [--registry-mb=N]"
         " [--default-deadline=SECONDS]\n"
         "  --threads=N           job workers; 0 = auto (hardware"
         " concurrency). default 0\n"
         "  --queue-capacity=N    admission limit; full queue answers"
         " `overloaded`. default 64\n"
         "  --registry-mb=N       circuit cache byte budget (LRU above"
         " it). default 256\n"
         "  --default-deadline=S  deadline for jobs that carry none;"
         " 0 = unlimited. default 0\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cwatpg;

  svc::ServerOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      options.threads = static_cast<std::size_t>(
          std::max(0L, std::atol(arg.c_str() + 10)));
    } else if (arg.rfind("--queue-capacity=", 0) == 0) {
      options.queue_capacity = static_cast<std::size_t>(
          std::max(1L, std::atol(arg.c_str() + 17)));
    } else if (arg.rfind("--registry-mb=", 0) == 0) {
      options.registry_bytes =
          static_cast<std::size_t>(std::max(1L, std::atol(arg.c_str() + 14)))
          << 20;
    } else if (arg.rfind("--default-deadline=", 0) == 0) {
      options.default_deadline_seconds = std::atof(arg.c_str() + 19);
    } else if (arg == "--help" || arg == "-h") {
      print_usage(std::cout, argv[0]);
      return 0;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      print_usage(std::cerr, argv[0]);
      return 2;
    }
  }

  svc::Server server(options);
  std::cerr << "cwatpg_serve: " << server.threads()
            << " job workers, queue capacity " << options.queue_capacity
            << ", registry budget " << (options.registry_bytes >> 20)
            << " MiB — serving cwatpg.rpc/1 on stdin/stdout\n";

  svc::StreamTransport transport(std::cin, std::cout);
  server.serve(transport);
  std::cerr << "cwatpg_serve: drained, exiting\n";
  return 0;
}
