#include "svc/client.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

#include "svc/proto.hpp"
#include "svc/supervisor.hpp"
#include "util/failpoint.hpp"

namespace cwatpg::svc {

namespace {

/// The server's duplicate-live-id rejection (see Server::admit_job). The
/// client treats it as an idempotent-resubmission ack, so match on the
/// stable phrase, not the whole message.
constexpr const char* kDuplicateLivePhrase = "already names a live job";

const obs::Json* error_field(const obs::Json& frame, const char* key) {
  const obs::Json* error = frame.find("error");
  if (error == nullptr || !error->is_object()) return nullptr;
  return error->find(key);
}

bool is_error_code(const obs::Json& frame, const char* code) {
  const obs::Json* ok = frame.find("ok");
  if (ok == nullptr || !ok->is_bool() || ok->as_bool()) return false;
  const obs::Json* c = error_field(frame, "code");
  return c != nullptr && c->is_string() && c->as_string() == code;
}

}  // namespace

Client::Client(Transport& transport, ClientOptions options)
    : transport_(transport),
      options_(std::move(options)),
      jitter_(options_.jitter_seed) {
  if (!options_.sleep_fn) {
    options_.sleep_fn = [](double seconds) {
      std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    };
  }
  if (options_.read_timeout_seconds > 0)
    transport_.set_read_timeout(options_.read_timeout_seconds);
}

obs::Json Client::request_json(std::uint64_t id, const std::string& kind,
                               const obs::Json& params) const {
  obs::Json j = obs::Json::object();
  j["schema"] = kRpcSchema;
  j["id"] = id;
  j["kind"] = kind;
  j["params"] = params;
  return j;
}

void Client::send(std::uint64_t id, const std::string& kind,
                  const obs::Json& params) {
  fp::DomainScope domain("svc.client");
  transport_.write(request_json(id, kind, params));
  ++stats_.requests_sent;
}

obs::Json Client::call(const std::string& kind, obs::Json params) {
  const std::uint64_t id = next_id_++;
  send(id, kind, params);
  for (;;) {
    if (const auto it = ready_.find(id); it != ready_.end()) {
      obs::Json response = std::move(it->second);
      ready_.erase(it);
      return response;
    }
    if (!pump())
      throw std::runtime_error("svc::Client: transport closed while "
                               "awaiting a " +
                               kind + " response");
  }
}

std::uint64_t Client::submit(const std::string& kind, obs::Json params) {
  const std::uint64_t id = next_id_++;
  send(id, kind, params);
  pending_[id] = PendingJob{kind, std::move(params), 1};
  return id;
}

std::optional<obs::Json> Client::await(std::uint64_t id) {
  for (;;) {
    if (const auto it = ready_.find(id); it != ready_.end()) {
      obs::Json response = std::move(it->second);
      ready_.erase(it);
      return response;
    }
    if (!pump()) return std::nullopt;
  }
}

std::optional<obs::Json> Client::await_any() {
  for (;;) {
    for (auto it = ready_.begin(); it != ready_.end(); ++it) {
      if (pending_.count(it->first) != 0) continue;  // being retried
      obs::Json response = std::move(it->second);
      ready_.erase(it);
      return response;
    }
    if (pending_.empty() && ready_.empty()) return std::nullopt;
    if (!pump()) return std::nullopt;
  }
}

bool Client::pump() {
  obs::Json frame;
  bool have = false;
  {
    fp::DomainScope domain("svc.client");
    try {
      have = transport_.read(frame);
    } catch (const ProtocolError& e) {
      // Client-side framing loss, connection reset, or read timeout:
      // nothing later on the stream can be trusted; treat as
      // end-of-stream so awaits report torn-session. transport_errors
      // (vs `overloaded`) is how callers tell "peer gone" from "peer
      // pushing back".
      ++stats_.session_errors;
      ++stats_.transport_errors;
      stats_.last_transport_error = e.what();
      return false;
    }
  }
  if (!have) {
    // Clean EOF while jobs are pending is still a transport failure from
    // the caller's point of view: the peer vanished owing terminals.
    // Recorded once (awaits for several lost jobs re-enter here).
    if (!pending_.empty() && !eof_with_pending_recorded_) {
      eof_with_pending_recorded_ = true;
      ++stats_.transport_errors;
      stats_.last_transport_error =
          "end-of-stream with " + std::to_string(pending_.size()) +
          " job(s) pending";
    }
    return false;
  }
  route(std::move(frame));
  return true;
}

void Client::route(obs::Json frame) {
  ++stats_.responses;
  const obs::Json* id_field = frame.is_object() ? frame.find("id") : nullptr;
  std::uint64_t id = 0;
  if (id_field != nullptr && id_field->is_number()) {
    try {
      id = id_field->as_u64();
    } catch (const std::exception&) {
      id = 0;
    }
  }
  if (id == 0) {
    // The server reports unattributable protocol damage with id 0; no
    // caller is waiting on it.
    ++stats_.session_errors;
    return;
  }

  const auto pending = pending_.find(id);
  if (pending != pending_.end()) {
    if (is_error_code(frame, "overloaded")) {
      ++stats_.overloaded;
      PendingJob& job = pending->second;
      if (job.attempts < options_.max_attempts) {
        backoff(job.attempts);
        ++job.attempts;
        ++stats_.retries;
        send(id, job.kind, job.params);
        return;  // same id, same params: the idempotent resubmission
      }
      // Retries exhausted: the rejection is the job's terminal answer.
    } else if (is_error_code(frame, "bad_request")) {
      const obs::Json* message = error_field(frame, "message");
      if (message != nullptr && message->is_string() &&
          message->as_string().find(kDuplicateLivePhrase) !=
              std::string::npos) {
        // Our resubmission raced its predecessor, which is alive and will
        // produce the one terminal response. Absorb the ack and wait.
        ++stats_.duplicate_rejects;
        return;
      }
    }
    pending_.erase(pending);
  }
  ready_[id] = std::move(frame);
}

void Client::backoff(std::size_t attempt) {
  BackoffPolicy policy;
  policy.base_seconds = options_.backoff_base_seconds;
  policy.max_seconds = options_.backoff_max_seconds;
  policy.multiplier = options_.backoff_multiplier;
  const double delay = backoff_delay(policy, jitter_, attempt);
  stats_.backoff_seconds += delay;
  options_.sleep_fn(delay);
}

}  // namespace cwatpg::svc
