#include "svc/server.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <new>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "fault/fsim.hpp"
#include "fault/parallel_atpg.hpp"
#include "fault/tegus.hpp"
#include "netlist/bench_io.hpp"
#include "obs/report.hpp"
#include "svc/params.hpp"
#include "util/failpoint.hpp"
#include "util/timer.hpp"

namespace cwatpg::svc {

namespace {

/// Best-effort id recovery from a frame that failed request validation, so
/// the error response still correlates when the id itself was well-formed.
std::uint64_t extract_id(const obs::Json& frame) {
  if (!frame.is_object()) return 0;
  const obs::Json* id = frame.find("id");
  if (id == nullptr || !id->is_number()) return 0;
  try {
    return id->as_u64();
  } catch (const std::exception&) {
    return 0;
  }
}

}  // namespace

Server::Server(const ServerOptions& options)
    : options_(options),
      pool_(ThreadPool::resolve_thread_count(options.threads), options.seed),
      registry_(options.registry_bytes),
      queue_(options.queue_capacity) {
  if (!options_.journal_path.empty()) {
    // Replay first, then open for appending: every accepted record the
    // crashed process left without a terminal is closed out as
    // `interrupted` NOW, so the loss is reported exactly once and a
    // second restart stays quiet about it.
    recovered_ = Journal::recover(options_.journal_path);
    // Seed the seq past everything recovered: seqs stay monotonic across
    // process generations, so recovery's seq-ordered interrupted report
    // is meaningful even for a journal spanning several crashes.
    journal_ = std::make_unique<Journal>(options_.journal_path,
                                         recovered_.max_seq + 1);
    for (const JournalRecord& rec : recovered_.interrupted) {
      try {
        journal_->record_interrupted(rec.job);
      } catch (const std::exception&) {
        metrics_.counter("svc.journal.failures").add(1);
      }
    }
  }
}

Server::~Server() {
  if (dispatcher_.joinable()) {
    queue_.close();
    dispatcher_.join();
  }
  if (watchdog_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(watchdog_mutex_);
      watchdog_stop_ = true;
    }
    watchdog_cv_.notify_all();
    watchdog_.join();
  }
}

void Server::start() {
  if (started_.exchange(true)) return;
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
  if (options_.watchdog_stall_seconds > 0)
    watchdog_ = std::thread([this] { watchdog_loop(); });
}

Server::SessionId Server::open_session(std::shared_ptr<Transport> transport) {
  start();
  std::lock_guard<std::mutex> lock(jobs_mutex_);
  const SessionId session = next_session_++;
  sessions_[session] = std::move(transport);
  metrics_.counter("svc.sessions.opened").add(1);
  return session;
}

std::optional<std::uint64_t> Server::handle_session_frame(
    SessionId session, const obs::Json& frame) {
  try {
    const Request req = Request::from_json(frame);
    metrics_.counter(std::string("svc.requests.") + to_string(req.kind))
        .add(1);
    switch (req.kind) {
      case RequestKind::kLoadCircuit:
        handle_load_circuit(session, req);
        break;
      case RequestKind::kRunAtpg:
      case RequestKind::kFsim:
        admit_job(session, req);
        break;
      case RequestKind::kStatus:
        handle_status(session, req);
        break;
      case RequestKind::kCancel:
        handle_cancel(session, req);
        break;
      case RequestKind::kShutdown:
        return req.id;
    }
  } catch (const ProtocolError& e) {
    write_to_session(
        session, make_error(extract_id(frame), ErrorCode::kBadRequest,
                            e.what()));
  }
  return std::nullopt;
}

void Server::close_session(SessionId session) {
  std::vector<JobKey> queued;
  std::vector<std::shared_ptr<Budget>> running;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    if (sessions_.erase(session) == 0) return;  // already closed
    for (const auto& [key, rec] : jobs_) {
      if (key.session != session) continue;
      if (rec.state == JobState::kQueued)
        queued.push_back(key);
      else if (rec.state == JobState::kRunning && rec.budget != nullptr)
        running.push_back(rec.budget);
    }
  }
  metrics_.counter("svc.sessions.closed").add(1);
  for (const JobKey& key : queued) {
    if (queue_.remove(session, key.id).has_value()) {
      metrics_.counter("svc.jobs.cancelled_queued").add(1);
      // The terminal is journaled for exactly-once accounting; the write
      // is a no-op because the session is gone.
      finish_job(key, make_error(key.id, ErrorCode::kCancelled,
                                 "client disconnected while the job was "
                                 "queued"));
    } else {
      // The dispatcher popped it between our snapshot and the remove: it
      // WILL run — fire the budget so it stops at its first poll.
      std::shared_ptr<Budget> budget;
      {
        std::lock_guard<std::mutex> lock(jobs_mutex_);
        if (const auto it = jobs_.find(key); it != jobs_.end())
          budget = it->second.budget;
      }
      if (budget) budget->cancel();
    }
  }
  for (const std::shared_ptr<Budget>& budget : running) budget->cancel();
}

void Server::serve(Transport& transport) {
  if (serving_.exchange(true) || shutting_down_.load())
    throw std::logic_error("svc::Server::serve is single-use");
  // Non-owning handle: serve()'s caller guarantees the transport outlives
  // the call, and the session closes before serve() returns.
  const SessionId session =
      open_session(std::shared_ptr<Transport>(&transport, [](Transport*) {}));

  // Failpoint domain label: the reader thread's hits on shared sites
  // (svc.proto.*) count separately from the client's, so a seeded
  // schedule replays the same way regardless of peer interleaving.
  fp::DomainScope reader_domain("svc.reader");
  bool got_shutdown = false;
  std::uint64_t shutdown_id = 0;
  obs::Json frame;
  while (!got_shutdown) {
    bool have_frame = false;
    try {
      have_frame = transport.read(frame);
    } catch (const ProtocolError& e) {
      // Framing is lost — nothing later on the stream can be trusted, so
      // report once and treat the session as closed (implicit shutdown).
      transport.write(make_error(0, ErrorCode::kBadRequest, e.what()));
      break;
    }
    if (!have_frame) break;  // peer closed: implicit shutdown, no response
    if (const std::optional<std::uint64_t> id =
            handle_session_frame(session, frame);
        id.has_value()) {
      got_shutdown = true;
      shutdown_id = *id;
    }
  }

  drain();
  if (got_shutdown) transport.write(shutdown_response(shutdown_id));
  close_session(session);
  // Session over: close our end so the peer's reads drain buffered frames
  // and then see end-of-stream (a duplex client would otherwise block
  // forever waiting for frames that can no longer come).
  transport.close();
}

obs::Json Server::shutdown_response(std::uint64_t id) {
  obs::Json result = server_status_json();
  result["drained"] = true;
  return make_response(id, std::move(result));
}

void Server::drain() {
  // Order matters: flag first so the dispatcher fails every job it pops
  // from here on, close second so it wakes and eventually sees an empty
  // queue, then wait until the last in-flight job has sent its terminal
  // response before the shutdown response may be written.
  shutting_down_.store(true);
  queue_.close();
  if (dispatcher_.joinable()) dispatcher_.join();
  {
    std::unique_lock<std::mutex> lock(jobs_mutex_);
    jobs_cv_.wait(lock, [&] { return in_flight_ == 0; });
  }
  pool_.wait_idle();
  // Last: the watchdog may still need to detach a wedged in-flight job
  // above, so it outlives the drain wait.
  if (watchdog_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(watchdog_mutex_);
      watchdog_stop_ = true;
    }
    watchdog_cv_.notify_all();
    watchdog_.join();
  }
}

// ---- control plane --------------------------------------------------------

void Server::write_to_session(SessionId session, const obs::Json& frame) {
  std::shared_ptr<Transport> transport;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    if (const auto it = sessions_.find(session); it != sessions_.end())
      transport = it->second;
  }
  // A closed session simply drops the frame — the same contract as
  // writing to a closed Transport, and the reason a dead connection's
  // terminals never touch a reused fd.
  if (transport) transport->write(frame);
}

void Server::handle_load_circuit(SessionId session, const Request& req) {
  std::shared_ptr<const CircuitEntry> entry;
  bool already_loaded = false;
  try {
    const std::string format = [&] {
      const obs::Json* f = req.params.find("format");
      return f != nullptr && f->is_string() ? f->as_string()
                                            : std::string("bench");
    }();
    if (format != "bench")
      throw ProtocolError("unsupported circuit format \"" + format + "\"");
    const std::string text = param_string_required(req.params, "text");
    const obs::Json* name = req.params.find("name");
    entry = registry_.load_bench(
        text,
        name != nullptr && name->is_string() ? name->as_string()
                                             : std::string("circuit"),
        &already_loaded);
  } catch (const ProtocolError& e) {
    write_to_session(session, make_error(req.id, ErrorCode::kBadRequest, e.what()));
    return;
  } catch (const std::bad_alloc&) {
    // Resource exhaustion is OUR failure, not a malformed request —
    // report it as such so clients don't "fix" a valid netlist.
    write_to_session(session, make_error(req.id, ErrorCode::kInternal,
                                 "out of memory while loading circuit"));
    return;
  } catch (const std::exception& e) {
    // read_bench rejects malformed netlists with ParseError — the
    // client's input, not our bug.
    write_to_session(session, make_error(req.id, ErrorCode::kBadRequest, e.what()));
    return;
  }
  obs::Json result = obs::Json::object();
  result["circuit"] = entry->to_json();
  // Idempotency ack: true when the registry already held this structural
  // content hash, so replicated loads (the cluster coordinator sends one
  // per worker, possibly repeatedly after failover) are observably no-ops.
  result["already_loaded"] = already_loaded;
  result["registry"] = registry_.stats().to_json();
  write_to_session(session, make_response(req.id, std::move(result)));
}

void Server::handle_status(SessionId session, const Request& req) {
  if (const obs::Json* job = req.params.find("job"); job != nullptr) {
    const std::uint64_t id = param_u64(req.params, "job", 0);
    const char* state = "unknown";
    {
      std::lock_guard<std::mutex> lock(jobs_mutex_);
      // Scoped to the asking session: job ids are per-connection names,
      // so one client can never observe (or probe for) another's jobs.
      if (const auto it = jobs_.find(JobKey{session, id});
          it != jobs_.end()) {
        switch (it->second.state) {
          case JobState::kQueued:
            state = "queued";
            break;
          case JobState::kRunning:
            state = "running";
            break;
          case JobState::kDone:
            state = "done";
            break;
        }
      }
    }
    obs::Json result = obs::Json::object();
    result["job"] = id;
    result["state"] = state;
    write_to_session(session, make_response(req.id, std::move(result)));
    return;
  }
  write_to_session(session, make_response(req.id, server_status_json()));
}

void Server::handle_cancel(SessionId session, const Request& req) {
  const std::uint64_t id = param_u64(req.params, "job", 0);
  if (req.params.find("job") == nullptr)
    throw ProtocolError("param \"job\" (request id) is required");
  const JobKey key{session, id};

  const char* state = "unknown";
  bool fire_budget = false;
  bool removed_from_queue = false;
  std::shared_ptr<Budget> budget;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    if (const auto it = jobs_.find(key); it != jobs_.end()) {
      switch (it->second.state) {
        case JobState::kQueued:
          if (queue_.remove(session, id)) {
            removed_from_queue = true;
            state = "cancelled";
          } else {
            // Between the dispatcher's pop and its running-mark: the job
            // WILL run — fire the budget so it stops on its first poll.
            fire_budget = true;
            state = "cancelling";
          }
          break;
        case JobState::kRunning:
          fire_budget = true;
          state = "cancelling";
          break;
        case JobState::kDone:
          state = "done";
          break;
      }
      budget = it->second.budget;
    }
  }
  if (fire_budget && budget) budget->cancel();
  if (removed_from_queue) {
    metrics_.counter("svc.jobs.cancelled_queued").add(1);
    finish_job(key, make_error(id, ErrorCode::kCancelled,
                               "cancelled while queued"));
  }
  obs::Json result = obs::Json::object();
  result["job"] = id;
  result["state"] = state;
  write_to_session(session, make_response(req.id, std::move(result)));
}

obs::Json Server::server_status_json() {
  obs::Json j = obs::Json::object();
  j["threads"] = static_cast<std::uint64_t>(pool_.size());
  j["shutting_down"] = shutting_down_.load();
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    j["in_flight"] = static_cast<std::uint64_t>(in_flight_);
    j["jobs_tracked"] = static_cast<std::uint64_t>(jobs_.size());
    j["sessions"] = static_cast<std::uint64_t>(sessions_.size());
  }
  j["queue"] = queue_.stats().to_json();
  j["registry"] = registry_.stats().to_json();
  if (journal_ != nullptr) {
    obs::Json journal = obs::Json::object();
    journal["path"] = journal_->path();
    journal["recovered_records"] =
        static_cast<std::uint64_t>(recovered_.records);
    journal["recovered_corrupt"] =
        static_cast<std::uint64_t>(recovered_.corrupt);
    j["journal"] = std::move(journal);
    // The previous process's abandoned jobs, surfaced until this process
    // exits: the whole point of the journal is that these are REPORTED,
    // not silently forgotten.
    obs::Json interrupted = obs::Json::array();
    for (const JournalRecord& rec : recovered_.interrupted) {
      obs::Json r = obs::Json::object();
      r["job"] = rec.job;
      if (!rec.kind.empty()) r["kind"] = rec.kind;
      if (!rec.circuit.empty()) r["circuit"] = rec.circuit;
      interrupted.push_back(std::move(r));
    }
    j["interrupted_jobs"] = std::move(interrupted);
  }
  j["metrics"] = metrics_.snapshot().to_json();
  return j;
}

// ---- admission ------------------------------------------------------------

void Server::admit_job(SessionId session, const Request& req) {
  if (shutting_down_.load()) {
    write_to_session(session, make_error(req.id, ErrorCode::kShuttingDown,
                                 "server is draining"));
    return;
  }
  const std::string key = param_string_required(req.params, "circuit");
  std::shared_ptr<const CircuitEntry> circuit = registry_.find(key);
  if (circuit == nullptr) {
    write_to_session(session, make_error(req.id, ErrorCode::kNotFound,
                                 "unknown circuit \"" + key +
                                     "\" (load_circuit it first)"));
    return;
  }

  Job job;
  job.request_id = req.id;
  job.session = session;
  job.kind = req.kind;
  job.priority = static_cast<int>(std::clamp<std::int64_t>(
      param_i64(req.params, "priority", 0), -1000, 1000));
  job.circuit = std::move(circuit);
  job.params = req.params;
  job.budget = std::make_shared<Budget>();
  const double deadline = param_double(req.params, "deadline_seconds",
                                     options_.default_deadline_seconds);
  // Armed at admission: queue wait burns deadline, as a latency bound must.
  if (deadline > 0.0) job.budget->set_deadline_after(deadline);

  const JobKey job_key{session, req.id};
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    // Duplicate-live-id detection is per session: ids are client-chosen,
    // so two connections reusing the same id are two distinct jobs.
    if (const auto it = jobs_.find(job_key);
        it != jobs_.end() && it->second.state != JobState::kDone)
      throw ProtocolError("request id " + std::to_string(req.id) +
                          " already names a live job");
    JobRecord rec;
    rec.state = JobState::kQueued;
    rec.budget = job.budget;
    // Only run_atpg engines poll their Budget; an fsim job has no
    // progress heartbeat for the watchdog to read, so it is exempt.
    rec.watchdog_eligible = req.kind == RequestKind::kRunAtpg;
    jobs_[job_key] = std::move(rec);
  }
  // Journal BEFORE the queue may run it: a crash from here on knows about
  // the job. (The reverse order could run — and lose — a job the journal
  // never heard of.)
  journal_accepted(req.id, to_string(req.kind), key);
  if (!queue_.push(std::move(job))) {
    {
      std::lock_guard<std::mutex> lock(jobs_mutex_);
      jobs_.erase(job_key);
    }
    metrics_.counter("svc.jobs.rejected").add(1);
    obs::Json rejection = make_error(
        req.id, ErrorCode::kOverloaded,
        "job queue is full (capacity " +
            std::to_string(queue_.stats().capacity) + "); retry later");
    journal_terminal(req.id, rejection);
    write_to_session(session, rejection);
    return;
  }
  metrics_.counter("svc.jobs.admitted").add(1);
  // No admission ack: the job's single terminal response is the reply.
}

// ---- dispatch & execution -------------------------------------------------

void Server::dispatcher_loop() {
  fp::DomainScope domain("svc.dispatcher");
  Job job;
  while (queue_.pop(job)) {
    if (shutting_down_.load()) {
      metrics_.counter("svc.jobs.drained").add(1);
      finish_job(JobKey{job.session, job.request_id},
                 make_error(job.request_id, ErrorCode::kShuttingDown,
                            "server shut down before the job started"));
      continue;
    }
    {
      std::unique_lock<std::mutex> lock(jobs_mutex_);
      jobs_cv_.wait(lock, [&] { return in_flight_ < pool_.size(); });
      const auto it = jobs_.find(JobKey{job.session, job.request_id});
      if (it == jobs_.end() || it->second.state != JobState::kQueued)
        continue;  // cancelled while queued; terminal already sent
      it->second.state = JobState::kRunning;
      // Watchdog baseline: a job that NEVER polls is indistinguishable
      // from one wedged on its first instruction, which is the point.
      it->second.last_progress = it->second.budget->progress();
      it->second.last_change = Clock::now();
      ++in_flight_;
    }
    pool_.submit([this, job = std::move(job)] {
      fp::DomainScope worker_domain("svc.worker");
      execute_job(job);
      {
        std::lock_guard<std::mutex> lock(jobs_mutex_);
        --in_flight_;
      }
      jobs_cv_.notify_all();
    });
  }
}

void Server::execute_job(const Job& job) {
  Timer timer;
  obs::Json response;
  try {
    if (CWATPG_FAILPOINT("svc.server.execute.throw"))
      throw std::runtime_error(
          "injected worker failure (svc.server.execute.throw)");
    // Simulated wedge: wall-clock time passes with ZERO Budget progress
    // polls — exactly the signature the watchdog hunts. Bounded by the
    // @ms payload so drains always complete; honors cancellation unless
    // the escalation drill arms svc.server.stall.ignore_cancel, which
    // forces the watchdog past cancel all the way to detach.
    if (const int stall_ms = CWATPG_FAILPOINT_ARG("svc.server.execute.stall");
        stall_ms >= 0) {
      const bool ignore_cancel =
          CWATPG_FAILPOINT("svc.server.stall.ignore_cancel");
      const auto until = Clock::now() + std::chrono::milliseconds(stall_ms);
      while (Clock::now() < until) {
        if (!ignore_cancel && job.budget->cancelled()) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    obs::Json result =
        job.kind == RequestKind::kRunAtpg ? run_atpg_job(job) : fsim_job(job);
    response = make_response(job.request_id, std::move(result));
    metrics_.counter("svc.jobs.completed").add(1);
  } catch (const ProtocolError& e) {
    response = make_error(job.request_id, ErrorCode::kBadRequest, e.what());
    metrics_.counter("svc.jobs.failed").add(1);
  } catch (const std::exception& e) {
    response = make_error(job.request_id, ErrorCode::kInternal, e.what());
    metrics_.counter("svc.jobs.failed").add(1);
  }
  metrics_
      .histogram("svc.job_seconds",
                 std::vector<double>{0.001, 0.01, 0.1, 1.0, 10.0, 100.0})
      .observe(timer.seconds());
  finish_job(JobKey{job.session, job.request_id}, response);
}

obs::Json Server::run_atpg_job(const Job& job) {
  const CircuitEntry& circuit = *job.circuit;
  // One shared params → options mapping (svc/params.hpp) for the server
  // and the cluster coordinator; diverging here would silently break the
  // cluster == single-daemon determinism contract.
  fault::AtpgOptions opts = atpg_options_from_params(job.params, circuit);
  opts.budget = job.budget.get();
  if (opts.engine == fault::AtpgEngine::kIncremental)
    metrics_.counter("svc.jobs.incremental").add(1);
  const std::size_t threads =
      static_cast<std::size_t>(param_u64(job.params, "threads", 1));
  const bool raw_outcomes = param_bool(job.params, "raw_outcomes", false);
  const bool windowed = !opts.fault_subset.empty();

  Timer timer;
  fault::AtpgResult result;
  fault::ParallelStats pstats;
  const bool parallel = threads > 1;
  if (parallel) {
    fault::ParallelAtpgOptions popts;
    popts.base = opts;
    popts.num_threads = threads;
    result = fault::run_atpg_parallel(circuit.net, popts, &pstats);
  } else {
    result = fault::run_atpg(circuit.net, opts);
  }

  // A windowed (sharded) run reports over its window, not the full fault
  // list: out-of-window faults were never this shard's responsibility, so
  // counting them as undetermined would poison coverage/efficiency and
  // make per-shard run_reports non-mergeable.
  fault::AtpgResult pruned;
  const fault::AtpgResult* view = &result;
  if (windowed) {
    pruned.outcomes.reserve(opts.fault_subset.size());
    for (const std::size_t fi : opts.fault_subset)
      pruned.outcomes.push_back(result.outcomes[fi]);
    pruned.tests = result.tests;
    pruned.num_detected = result.num_detected;
    pruned.num_untestable = result.num_untestable;
    pruned.num_aborted = result.num_aborted;
    pruned.num_unreachable = result.num_unreachable;
    pruned.num_escalated = result.num_escalated;
    pruned.num_undetermined = 0;
    for (const fault::FaultOutcome& o : pruned.outcomes)
      if (o.status == fault::FaultStatus::kUndetermined)
        ++pruned.num_undetermined;
    pruned.interrupted = result.interrupted;
    pruned.wall_seconds = result.wall_seconds;
    view = &pruned;
  }

  obs::ReportOptions ropts;
  ropts.label = "svc/" + circuit.key;
  const bool incremental = opts.engine == fault::AtpgEngine::kIncremental;
  ropts.engine = incremental ? (parallel ? "parallel-incremental"
                                         : "incremental")
                             : (parallel ? "parallel" : "serial");
  ropts.threads = parallel ? threads : 1;
  ropts.seed = opts.seed;
  if (parallel) ropts.parallel = &pstats;
  const obs::RunReport report =
      obs::build_run_report(circuit.net, *view, ropts);

  obs::Json j = obs::Json::object();
  j["job"] = job.request_id;
  j["circuit"] = circuit.key;
  j["engine"] = ropts.engine;
  j["threads"] = static_cast<std::uint64_t>(ropts.threads);
  j["interrupted"] = view->interrupted;
  j["stop"] = to_string(job.budget->poll());
  j["faults"] = static_cast<std::uint64_t>(view->outcomes.size());
  j["num_detected"] = static_cast<std::uint64_t>(view->num_detected);
  j["num_untestable"] = static_cast<std::uint64_t>(view->num_untestable);
  j["num_aborted"] = static_cast<std::uint64_t>(view->num_aborted);
  j["num_undetermined"] =
      static_cast<std::uint64_t>(view->num_undetermined);
  j["coverage"] = view->fault_coverage();
  j["efficiency"] = view->fault_efficiency();
  obs::Json tests = obs::Json::array();
  for (const fault::Pattern& test : result.tests)
    tests.push_back(encode_bits(test));
  j["tests"] = std::move(tests);
  if (raw_outcomes) {
    // Per-fault records keyed by collapsed-fault index — the cluster
    // coordinator's merge input. Every in-scope index is present (drops
    // and undetermined included) so the receiver can tell "complete
    // reply" from "truncated reply" by counting.
    obs::Json raw = obs::Json::array();
    auto encode_one = [&](std::size_t fi) {
      const fault::FaultOutcome& o = result.outcomes[fi];
      const fault::Pattern* test =
          o.status == fault::FaultStatus::kDetected && o.has_test()
              ? &result.tests[o.test()]
              : nullptr;
      raw.push_back(encode_fault_outcome(fi, o, test));
    };
    if (windowed) {
      for (const std::size_t fi : opts.fault_subset) encode_one(fi);
    } else {
      for (std::size_t fi = 0; fi < result.outcomes.size(); ++fi)
        encode_one(fi);
    }
    j["raw"] = std::move(raw);
  }
  j["run_report"] = report.to_json();
  j["wall_seconds"] = timer.seconds();
  j["queue"] = queue_.stats().to_json();
  j["registry"] = registry_.stats().to_json();
  return j;
}

obs::Json Server::fsim_job(const Job& job) {
  const CircuitEntry& circuit = *job.circuit;
  const obs::Json* patterns_json = job.params.find("patterns");
  if (patterns_json == nullptr || !patterns_json->is_array())
    throw ProtocolError("param \"patterns\" (array of bit strings) is "
                        "required");
  std::vector<fault::Pattern> patterns;
  patterns.reserve(patterns_json->size());
  for (const obs::Json& p : patterns_json->items()) {
    if (!p.is_string())
      throw ProtocolError("patterns must be \"0101…\" strings");
    patterns.push_back(
        decode_bits(p.as_string(), circuit.net.inputs().size()));
  }

  Timer timer;
  fault::FsimStats stats;
  const std::vector<bool> detected =
      fault::fault_simulate(circuit.net, circuit.faults, patterns, &stats);
  const std::uint64_t num_detected = static_cast<std::uint64_t>(
      std::count(detected.begin(), detected.end(), true));

  obs::Json j = obs::Json::object();
  j["job"] = job.request_id;
  j["circuit"] = circuit.key;
  j["patterns"] = static_cast<std::uint64_t>(patterns.size());
  j["faults"] = static_cast<std::uint64_t>(circuit.faults.size());
  j["detected"] = num_detected;
  j["coverage"] = circuit.faults.empty()
                      ? 0.0
                      : static_cast<double>(num_detected) /
                            static_cast<double>(circuit.faults.size());
  obs::Json fsim = obs::Json::object();
  fsim["resims"] = stats.resims;
  fsim["node_evals"] = stats.node_evals;
  j["fsim"] = std::move(fsim);
  j["wall_seconds"] = timer.seconds();
  j["queue"] = queue_.stats().to_json();
  j["registry"] = registry_.stats().to_json();
  return j;
}

void Server::finish_job(const JobKey& key, const obs::Json& response) {
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    const auto it = jobs_.find(key);
    if (it == jobs_.end() || it->second.state == JobState::kDone)
      return;  // a terminal response was already sent — never send two
    it->second.state = JobState::kDone;
    it->second.budget.reset();
    done_order_.push_back(key);
    while (done_order_.size() > kMaxDoneRecords) {
      const JobKey victim = done_order_.front();
      done_order_.pop_front();
      if (const auto vit = jobs_.find(victim);
          vit != jobs_.end() && vit->second.state == JobState::kDone)
        jobs_.erase(vit);
    }
  }
  // Durable before visible: the terminal record reaches the journal
  // before the response can reach the peer, so no client ever holds a
  // response the journal would later deny. (The inverse crash window —
  // journaled but unsent — resolves as a loud `interrupted` report, the
  // safe direction.)
  journal_terminal(key.id, response);
  // Skipped silently when the owning session is gone: a dead connection's
  // terminal must never land on a reused fd.
  write_to_session(key.session, response);
}

// ---- resilience -----------------------------------------------------------

void Server::journal_accepted(std::uint64_t job, const char* kind,
                              const std::string& circuit) {
  if (journal_ == nullptr) return;
  try {
    journal_->record_accepted(job, kind, circuit);
  } catch (const std::exception&) {
    // Degraded, not dead: durability is lost but serving continues, and
    // the counter is how an operator finds out.
    metrics_.counter("svc.journal.failures").add(1);
  }
}

void Server::journal_terminal(std::uint64_t job, const obs::Json& response) {
  if (journal_ == nullptr) return;
  std::string outcome = "ok";
  const obs::Json* ok = response.find("ok");
  if (ok != nullptr && ok->is_bool() && !ok->as_bool()) {
    outcome = "error:unknown";
    const obs::Json* error = response.find("error");
    if (error != nullptr && error->is_object()) {
      if (const obs::Json* code = error->find("code");
          code != nullptr && code->is_string())
        outcome = "error:" + code->as_string();
    }
  }
  try {
    journal_->record_terminal(job, outcome);
  } catch (const std::exception&) {
    metrics_.counter("svc.journal.failures").add(1);
  }
}

void Server::watchdog_loop() {
  fp::DomainScope domain("svc.watchdog");
  const std::chrono::duration<double> poll(
      options_.watchdog_poll_seconds > 0 ? options_.watchdog_poll_seconds
                                         : 0.02);
  const std::chrono::duration<double> stall(options_.watchdog_stall_seconds);
  const std::chrono::duration<double> detach(
      options_.watchdog_detach_seconds);

  std::unique_lock<std::mutex> lock(watchdog_mutex_);
  for (;;) {
    watchdog_cv_.wait_for(lock, poll, [&] { return watchdog_stop_; });
    if (watchdog_stop_) return;

    // Decide under jobs_mutex_, act after releasing it: cancel() and
    // finish_job() both synchronize on their own, and finish_job retakes
    // jobs_mutex_ itself.
    std::vector<std::shared_ptr<Budget>> to_cancel;
    std::vector<JobKey> to_detach;
    const Clock::time_point now = Clock::now();
    {
      std::lock_guard<std::mutex> jobs_lock(jobs_mutex_);
      for (auto& [key, rec] : jobs_) {
        if (rec.state != JobState::kRunning || !rec.watchdog_eligible ||
            rec.detached || rec.budget == nullptr)
          continue;
        const std::uint64_t progress = rec.budget->progress();
        if (progress != rec.last_progress) {
          // Alive — even a cancelled job resuming its unwind counts, so
          // escalation stops the moment polls flow again.
          rec.last_progress = progress;
          rec.last_change = now;
          continue;
        }
        if (!rec.watchdog_cancelled) {
          if (now - rec.last_change >= stall) {
            rec.watchdog_cancelled = true;
            rec.cancelled_at = now;
            to_cancel.push_back(rec.budget);
          }
        } else if (options_.watchdog_detach_seconds > 0 &&
                   now - rec.cancelled_at >= detach) {
          rec.detached = true;
          to_detach.push_back(key);
        }
      }
    }
    for (const std::shared_ptr<Budget>& budget : to_cancel) {
      metrics_.counter("svc.watchdog.cancelled").add(1);
      budget->cancel();
    }
    for (const JobKey& key : to_detach) {
      // The terminal response the client gets; whatever the wedged worker
      // eventually produces loses the finish_job CAS and is dropped.
      metrics_.counter("svc.watchdog.detached").add(1);
      finish_job(key,
                 make_error(key.id, ErrorCode::kInternal,
                            "job made no progress within the watchdog "
                            "deadline and ignored cancellation; detached"));
    }
  }
}

}  // namespace cwatpg::svc
