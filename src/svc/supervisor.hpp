// Supervision primitives for the self-healing cluster: the shared
// exponential-backoff policy (one schedule for client resubmission, boot
// dialing and worker respawn), a bounded retry helper, and the per-slot
// respawn state machine the coordinator consults when a worker dies.
//
// Why re-execution-based recovery is the right shape here: the paper's
// observation is that individual fault queries are almost always cheap,
// so recomputing a lost shard — on a respawned worker, or in-process on
// the coordinator — costs near-nothing. The supervisor therefore never
// gives capacity away permanently: a dead worker is respawned under
// backoff with a generation counter, and only a crash LOOP (≥ N respawn
// events inside a sliding window) quarantines the slot, loudly, so an
// operator can tell "this worker binary is broken" from "a worker died
// once".
//
// SlotSupervisor is plain bookkeeping with no locking of its own: the
// cluster guards it with its coordinator mutex; unit tests drive it
// standalone with an injected clock.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "util/rng.hpp"

namespace cwatpg::svc {

/// Exponential backoff with seeded jitter — extracted from the PR 6
/// resilient client so every retry loop in the service layer (overloaded
/// resubmission, `--connect` boot dialing, worker respawn) follows the
/// one policy: delay = base · multiplier^(attempt−1), capped at max,
/// scaled by a jitter factor in [0.5, 1.0).
struct BackoffPolicy {
  double base_seconds = 0.005;
  double max_seconds = 0.5;
  double multiplier = 2.0;
};

/// The delay before 1-based retry `attempt`. Draws exactly one value from
/// `jitter`, so a fixed-seed Rng replays the schedule byte-identically —
/// which is what lets tests pin the schedule and a worker fleet
/// decorrelate without ever collapsing a delay to zero.
double backoff_delay(const BackoffPolicy& policy, Rng& jitter,
                     std::size_t attempt);

/// Bounded retry: how `--connect` tolerates a not-yet-listening worker.
struct RetryOptions {
  /// Total tries (first attempt + retries). 0 behaves like 1.
  std::size_t max_attempts = 6;
  BackoffPolicy backoff;
  std::uint64_t jitter_seed = 0x7e577e57;
  /// Injectable sleep (tests pass a recorder; default really sleeps).
  std::function<void(double)> sleep_fn;
};

/// Calls `try_once(attempt)` with attempt = 1..max_attempts, sleeping the
/// backoff schedule between tries, until it returns true. Returns whether
/// any attempt succeeded. `try_once` must not throw; wrap and report.
bool retry_with_backoff(const RetryOptions& options,
                        const std::function<bool(std::size_t)>& try_once);

/// Knobs for the cluster's worker supervision (cluster_main flags
/// --respawn-backoff / --max-respawns / --heartbeat map here).
struct SupervisorOptions {
  /// Respawn backoff. The base is deliberately larger than the client's
  /// resubmission backoff: a fork/exec or TCP re-dial per tick is heavier
  /// than a frame resend.
  BackoffPolicy backoff{0.05, 2.0, 2.0};
  std::uint64_t jitter_seed = 0x7e577e57;
  /// Respawn events (deaths + failed respawn attempts) tolerated inside
  /// `respawn_window_seconds` before the slot is quarantined as a crash
  /// loop. 0 = never respawn (a death quarantines immediately).
  std::size_t max_respawns = 5;
  double respawn_window_seconds = 30.0;
  /// Idle-worker health-probe interval; 0 disables heartbeats.
  double heartbeat_seconds = 0.0;
  /// How long a heartbeat `status` may go unanswered before the worker is
  /// declared dead (wedged-but-alive becomes the EOF-shaped signal).
  double heartbeat_timeout_seconds = 2.0;
};

/// Per-worker-slot respawn state machine. Generations count connections:
/// generation 1 is the endpoint the cluster was constructed with, each
/// successful respawn increments it. A sliding window of recent respawn
/// events (deaths and failed respawn attempts) detects crash loops; the
/// window count also drives the backoff exponent, so a slot that keeps
/// dying backs off harder while a slot that died once long ago restarts
/// near-immediately.
class SlotSupervisor {
 public:
  SlotSupervisor() : SlotSupervisor(SupervisorOptions{}, 0) {}
  /// `slot_index` salts the jitter seed so sibling slots decorrelate.
  /// `now_fn` is a monotonic clock in seconds (tests inject; default is
  /// std::chrono::steady_clock).
  SlotSupervisor(const SupervisorOptions& options, std::uint64_t slot_index,
                 std::function<double()> now_fn = {});

  /// Records a death of the current generation. `last_exit` is the reaped
  /// exit description ("signal 9", "exit 127", "eof" for processless
  /// endpoints), surfaced verbatim through cluster `status`.
  void note_death(std::string last_exit);
  /// Records a failed respawn attempt (factory threw, or the
  /// cluster.respawn.fail failpoint fired): counts toward the crash-loop
  /// window exactly like a death.
  void note_respawn_failure();
  /// A replacement connection is live: new generation, fresh slate for
  /// lazy circuit re-replication (the caller clears its loaded-set).
  void note_respawned();

  /// True when the window holds more than max_respawns events — the slot
  /// is crash-looping and must be quarantined instead of respawned.
  bool exhausted() const;
  /// Backoff before the next respawn attempt; the exponent is the current
  /// window population, so consecutive failures escalate the delay.
  double next_delay();

  void quarantine() { quarantined_ = true; }
  bool quarantined() const { return quarantined_; }

  std::uint64_t generation() const { return generation_; }
  std::uint64_t restarts() const { return restarts_; }
  const std::string& last_exit() const { return last_exit_; }

 private:
  void note_event();

  SupervisorOptions options_;
  Rng jitter_;
  std::function<double()> now_fn_;
  std::deque<double> events_;  ///< times of recent deaths/failures
  std::uint64_t generation_ = 1;
  std::uint64_t restarts_ = 0;
  std::string last_exit_;
  bool quarantined_ = false;
};

}  // namespace cwatpg::svc
