// The cwatpg.rpc/1 wire protocol: framed JSON request/response pairs.
//
// Every message is one obs::Json document carried in a length-prefixed
// frame (`<decimal byte count>\n<payload>`), so the stream is resyncable
// by eye, trivially driven from a shell or Python, and never requires the
// reader to parse ahead of a message boundary. The JSON itself reuses
// obs/json — the same parser the run-report round-trip tests exercise —
// with the untrusted-input limits (frame size cap, nesting-depth cap)
// enforced here, at the network edge.
//
// Requests:  {"schema":"cwatpg.rpc/1","id":N,"kind":K,"params":{...}}
// Responses: {"schema":"cwatpg.rpc/1","id":N,"ok":true,"result":{...}}
//        or  {"schema":"cwatpg.rpc/1","id":N,"ok":false,
//             "error":{"code":C,"message":M}}
//
// `id` is chosen by the client and echoed verbatim; responses may arrive
// out of submission order (jobs complete when they complete), so the id is
// the only correlation key. Kinds `run_atpg` and `fsim` are *jobs*: the
// request is admitted (or rejected with `overloaded`) and its single
// terminal response is sent when the job finishes, fails, or is cancelled.
// `load_circuit`, `status`, `cancel` and `shutdown` are control-plane
// requests answered inline, in order.
//
// Thread-safe: free functions only; frame writes for one stream must be
// externally serialized (svc::Transport does this).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "fault/tegus.hpp"
#include "obs/json.hpp"

namespace cwatpg::svc {

inline constexpr const char* kRpcSchema = "cwatpg.rpc/1";

/// Hard ceiling on one frame's payload size. A length header above this is
/// a protocol error, not an allocation — the cap is checked before any
/// buffer is sized, so a hostile header cannot make the server reserve
/// gigabytes.
inline constexpr std::size_t kMaxFrameBytes = std::size_t(64) << 20;

/// Nesting-depth cap handed to obs::Json::parse for frames (requests come
/// from untrusted clients; a deeply nested document must fail parsing, not
/// exhaust the parser's stack).
inline constexpr std::size_t kMaxFrameDepth = 32;

/// Malformed frame or malformed/ill-typed message. Carries a human-readable
/// reason; the server maps it to a `bad_request` error response.
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& what)
      : std::runtime_error("cwatpg.rpc: " + what) {}
};

// ---- frame codec ----------------------------------------------------------

/// Digit cap on the decimal length header. Far above what kMaxFrameBytes
/// ever needs, and small enough that the accumulated value cannot overflow
/// a std::size_t — the cap is what lets every framing layer parse the
/// header without a range-checked string-to-integer conversion.
inline constexpr std::size_t kMaxFrameHeaderDigits = 12;

/// Incremental parser for the `<decimal byte count>\n` frame-length
/// header — THE one definition of header syntax, shared by the stdio
/// codec (read_frame), the raw-fd worker transport (FdTransport) and the
/// socket layer's nonblocking reader, so the framing rules cannot drift
/// between transports.
///
/// Feed one byte at a time; feed() returns true when the terminating
/// '\n' was consumed and length() is the validated payload size. Throws
/// ProtocolError on a non-digit, a header longer than
/// kMaxFrameHeaderDigits, an empty header, or a length above `max_bytes`
/// — checked AT the header, before any payload buffer is sized.
class FrameLengthParser {
 public:
  bool feed(char c, std::size_t max_bytes = kMaxFrameBytes);
  std::size_t length() const { return length_; }
  /// Bytes fed so far (0 after reset); >0 means "mid-header", which is
  /// how transports tell clean EOF from a truncated frame.
  std::size_t digits() const { return digits_; }
  void reset() {
    length_ = 0;
    digits_ = 0;
  }

 private:
  std::size_t length_ = 0;
  std::size_t digits_ = 0;
};

/// Parses a frame payload into JSON under the svc depth limit, mapping
/// parse failures to ProtocolError — shared by every framing layer.
obs::Json parse_frame_payload(const std::string& payload);

/// Writes one frame: decimal payload length, '\n', compact JSON payload.
void write_frame(std::ostream& out, const obs::Json& frame);

/// Reads one frame. Returns false on clean EOF at a frame boundary; throws
/// ProtocolError on a malformed header, a payload over `max_bytes`, a
/// truncated payload, or payload bytes that are not a valid JSON document
/// within the svc depth limit.
bool read_frame(std::istream& in, obs::Json& frame,
                std::size_t max_bytes = kMaxFrameBytes);

// ---- requests -------------------------------------------------------------

enum class RequestKind : std::uint8_t {
  kLoadCircuit,  ///< parse + register a circuit; inline
  kRunAtpg,      ///< full ATPG flow on a registered circuit; a job
  kFsim,         ///< fault-simulate patterns against a circuit; a job
  kStatus,       ///< server / queue / registry / per-job state; inline
  kCancel,       ///< cancel a queued or in-flight job; inline
  kShutdown,     ///< graceful drain, final response, serve() returns
};

/// "load_circuit" / "run_atpg" / "fsim" / "status" / "cancel" /
/// "shutdown" — the wire spellings; renaming one is a protocol change.
const char* to_string(RequestKind kind);
std::optional<RequestKind> parse_request_kind(std::string_view name);

/// A validated request envelope. `params` keeps the raw (already
/// depth-limited) JSON object; per-kind parameter validation happens where
/// the parameters are consumed, so one bad field yields a `bad_request`
/// response for exactly that request.
struct Request {
  std::uint64_t id = 0;
  RequestKind kind = RequestKind::kStatus;
  obs::Json params;  ///< object; empty object when the frame omitted it

  obs::Json to_json() const;
  /// Validates schema/id/kind. Throws ProtocolError on any violation.
  static Request from_json(const obs::Json& j);
};

// ---- responses ------------------------------------------------------------

/// Stable machine-readable failure codes.
enum class ErrorCode : std::uint8_t {
  kBadRequest,    ///< malformed frame, unknown kind, ill-typed params
  kNotFound,      ///< unknown circuit key or job id
  kOverloaded,    ///< job queue full; retry later
  kCancelled,     ///< job cancelled before producing a result
  kShuttingDown,  ///< server draining; job was not run
  kInternal,      ///< engine threw; message carries the what()
};

/// "bad_request" / "not_found" / "overloaded" / "cancelled" /
/// "shutting_down" / "internal" — wire spellings.
const char* to_string(ErrorCode code);

/// {"schema":...,"id":id,"ok":true,"result":result}
obs::Json make_response(std::uint64_t id, obs::Json result);

/// {"schema":...,"id":id,"ok":false,"error":{"code":...,"message":...}}
obs::Json make_error(std::uint64_t id, ErrorCode code,
                     std::string_view message);

// ---- pattern codec --------------------------------------------------------
//
// Test patterns (one bit per primary input — fault::Pattern) travel as
// "0101…" strings: unambiguous, diffable, and byte-identical encoding is
// exactly what the served-vs-direct determinism contract compares.

std::string encode_bits(const std::vector<bool>& bits);

/// Inverse of encode_bits. Throws ProtocolError when `text` contains a
/// character other than '0'/'1' or its length differs from `expected_size`.
std::vector<bool> decode_bits(std::string_view text,
                              std::size_t expected_size);

// ---- shard outcome codec --------------------------------------------------
//
// Per-fault records a `run_atpg` job returns when its request sets
// `raw_outcomes` — the cluster coordinator's merge input. `index` is the
// fault's position in the registry entry's collapsed fault list (the
// sharding key); the record carries the fault's FINAL outcome fields plus,
// for kDetected, the attributed test pattern. The fault itself never
// travels: both ends derive the same collapsed list from the same
// content-hashed circuit, so the index is a complete name.

struct WireFaultOutcome {
  std::size_t index = 0;
  /// Recorded outcome. `test_index` is not transported (always -1 after
  /// decode); the cluster's replay pipeline re-derives attribution.
  fault::FaultOutcome outcome;
  fault::Pattern test;  ///< non-empty iff outcome.status == kDetected
};

/// Encodes one per-fault record. `test` must be non-null exactly when the
/// outcome is kDetected.
obs::Json encode_fault_outcome(std::size_t index,
                               const fault::FaultOutcome& outcome,
                               const fault::Pattern* test);

/// Inverse of encode_fault_outcome. `num_inputs` sizes the test pattern
/// check. Throws ProtocolError on a malformed record.
WireFaultOutcome decode_fault_outcome(const obs::Json& j,
                                      std::size_t num_inputs);

}  // namespace cwatpg::svc
