#include "svc/queue.hpp"

#include <algorithm>
#include <utility>

#include "util/failpoint.hpp"

namespace cwatpg::svc {

obs::Json QueueStats::to_json() const {
  obs::Json j = obs::Json::object();
  j["depth"] = static_cast<std::uint64_t>(depth);
  j["capacity"] = static_cast<std::uint64_t>(capacity);
  j["admitted"] = admitted;
  j["rejected"] = rejected;
  j["removed"] = removed;
  j["max_depth"] = max_depth;
  return j;
}

JobQueue::JobQueue(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

bool JobQueue::push(Job job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Failpoint: refuse admission as if the queue were full — the
    // `overloaded` path clients must absorb with retry/backoff.
    if (closed_ || entries_.size() >= capacity_ ||
        CWATPG_FAILPOINT("svc.queue.full")) {
      ++counters_.rejected;
      return false;
    }
    entries_.push_back(Entry{std::move(job), next_seq_++});
    ++counters_.admitted;
    counters_.max_depth = std::max<std::uint64_t>(counters_.max_depth,
                                                  entries_.size());
  }
  cv_.notify_one();
  return true;
}

bool JobQueue::pop(Job& out) {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return closed_ || !entries_.empty(); });
  if (entries_.empty()) return false;
  auto best = entries_.begin();
  for (auto it = std::next(best); it != entries_.end(); ++it)
    if (it->job.priority > best->job.priority) best = it;
  // seq order within a priority level holds by construction: the scan
  // keeps the first (lowest-seq) entry of the best level.
  out = std::move(best->job);
  entries_.erase(best);
  return true;
}

std::optional<Job> JobQueue::remove(std::uint64_t session,
                                    std::uint64_t request_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->job.session != session || it->job.request_id != request_id)
      continue;
    Job job = std::move(it->job);
    entries_.erase(it);
    ++counters_.removed;
    return job;
  }
  return std::nullopt;
}

void JobQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::size_t JobQueue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

QueueStats JobQueue::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  QueueStats s = counters_;
  s.depth = entries_.size();
  s.capacity = capacity_;
  return s;
}

}  // namespace cwatpg::svc
