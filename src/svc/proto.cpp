#include "svc/proto.hpp"

#include <cctype>
#include <istream>
#include <ostream>
#include <string>

namespace cwatpg::svc {

void write_frame(std::ostream& out, const obs::Json& frame) {
  const std::string payload = frame.dump();
  out << payload.size() << '\n' << payload;
  out.flush();
}

bool read_frame(std::istream& in, obs::Json& frame, std::size_t max_bytes) {
  // Header: decimal length terminated by '\n'. EOF before the first digit
  // is a clean end of stream; EOF anywhere later is a truncated frame.
  int c = in.get();
  if (c == std::istream::traits_type::eof()) return false;
  std::size_t length = 0;
  std::size_t digits = 0;
  while (c != '\n') {
    if (c == std::istream::traits_type::eof())
      throw ProtocolError("truncated frame header");
    if (!std::isdigit(static_cast<unsigned char>(c)))
      throw ProtocolError("non-digit in frame length header");
    if (++digits > 12) throw ProtocolError("frame length header too long");
    length = length * 10 + static_cast<std::size_t>(c - '0');
    c = in.get();
  }
  if (digits == 0) throw ProtocolError("empty frame length header");
  if (length > max_bytes)
    throw ProtocolError("frame of " + std::to_string(length) +
                        " bytes exceeds the " + std::to_string(max_bytes) +
                        "-byte limit");
  std::string payload(length, '\0');
  in.read(payload.data(), static_cast<std::streamsize>(length));
  if (static_cast<std::size_t>(in.gcount()) != length)
    throw ProtocolError("truncated frame payload (expected " +
                        std::to_string(length) + " bytes, got " +
                        std::to_string(in.gcount()) + ")");
  try {
    frame = obs::Json::parse(payload, kMaxFrameDepth);
  } catch (const std::exception& e) {
    throw ProtocolError(std::string("bad frame payload: ") + e.what());
  }
  return true;
}

const char* to_string(RequestKind kind) {
  switch (kind) {
    case RequestKind::kLoadCircuit:
      return "load_circuit";
    case RequestKind::kRunAtpg:
      return "run_atpg";
    case RequestKind::kFsim:
      return "fsim";
    case RequestKind::kStatus:
      return "status";
    case RequestKind::kCancel:
      return "cancel";
    case RequestKind::kShutdown:
      return "shutdown";
  }
  return "?";
}

std::optional<RequestKind> parse_request_kind(std::string_view name) {
  for (const RequestKind kind :
       {RequestKind::kLoadCircuit, RequestKind::kRunAtpg, RequestKind::kFsim,
        RequestKind::kStatus, RequestKind::kCancel, RequestKind::kShutdown})
    if (name == to_string(kind)) return kind;
  return std::nullopt;
}

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadRequest:
      return "bad_request";
    case ErrorCode::kNotFound:
      return "not_found";
    case ErrorCode::kOverloaded:
      return "overloaded";
    case ErrorCode::kCancelled:
      return "cancelled";
    case ErrorCode::kShuttingDown:
      return "shutting_down";
    case ErrorCode::kInternal:
      return "internal";
  }
  return "?";
}

obs::Json Request::to_json() const {
  obs::Json j = obs::Json::object();
  j["schema"] = kRpcSchema;
  j["id"] = id;
  j["kind"] = to_string(kind);
  j["params"] = params;
  return j;
}

Request Request::from_json(const obs::Json& j) {
  if (!j.is_object()) throw ProtocolError("request is not an object");
  const obs::Json* schema = j.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != kRpcSchema)
    throw ProtocolError("missing or unsupported request schema (want \"" +
                        std::string(kRpcSchema) + "\")");
  Request req;
  const obs::Json* id = j.find("id");
  if (id == nullptr || !id->is_number())
    throw ProtocolError("missing or non-numeric request id");
  try {
    req.id = id->as_u64();
  } catch (const std::exception&) {
    throw ProtocolError("request id must be a non-negative integer");
  }
  const obs::Json* kind = j.find("kind");
  if (kind == nullptr || !kind->is_string())
    throw ProtocolError("missing request kind");
  const auto parsed = parse_request_kind(kind->as_string());
  if (!parsed)
    throw ProtocolError("unknown request kind \"" + kind->as_string() + "\"");
  req.kind = *parsed;
  if (const obs::Json* params = j.find("params"); params != nullptr) {
    if (!params->is_object())
      throw ProtocolError("request params must be an object");
    req.params = *params;
  } else {
    req.params = obs::Json::object();
  }
  return req;
}

obs::Json make_response(std::uint64_t id, obs::Json result) {
  obs::Json j = obs::Json::object();
  j["schema"] = kRpcSchema;
  j["id"] = id;
  j["ok"] = true;
  j["result"] = std::move(result);
  return j;
}

obs::Json make_error(std::uint64_t id, ErrorCode code,
                     std::string_view message) {
  obs::Json j = obs::Json::object();
  j["schema"] = kRpcSchema;
  j["id"] = id;
  j["ok"] = false;
  obs::Json error = obs::Json::object();
  error["code"] = to_string(code);
  error["message"] = message;
  j["error"] = std::move(error);
  return j;
}

std::string encode_bits(const std::vector<bool>& bits) {
  std::string out(bits.size(), '0');
  for (std::size_t i = 0; i < bits.size(); ++i)
    if (bits[i]) out[i] = '1';
  return out;
}

std::vector<bool> decode_bits(std::string_view text,
                              std::size_t expected_size) {
  if (text.size() != expected_size)
    throw ProtocolError("pattern has " + std::to_string(text.size()) +
                        " bits, circuit has " + std::to_string(expected_size) +
                        " inputs");
  std::vector<bool> bits(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '1')
      bits[i] = true;
    else if (text[i] != '0')
      throw ProtocolError("pattern characters must be '0' or '1'");
  }
  return bits;
}

}  // namespace cwatpg::svc
