#include "svc/proto.hpp"

#include <algorithm>
#include <cctype>
#include <istream>
#include <ostream>
#include <string>

#include "util/failpoint.hpp"

namespace cwatpg::svc {

namespace {

/// Reads exactly `length` bytes, looping over short reads instead of
/// treating the first one as end-of-stream. A streambuf is allowed to
/// deliver fewer bytes than asked (an interrupted or trickling source —
/// the in-memory byte duplex does it by design, a pipe under EINTR does it
/// in production); only zero bytes AT end-of-file, or a stream error with
/// no progress, terminates the loop. Returns the byte count delivered.
std::size_t read_exact(std::istream& in, char* dst, std::size_t length) {
  std::size_t got = 0;
  while (got < length) {
    std::size_t want = length - got;
    // Failpoint: cap this pass at @K bytes so the short-read recovery
    // loop is exercised even over streambufs that never split reads.
    if (const int k = CWATPG_FAILPOINT_ARG("svc.proto.read.short"); k >= 0)
      want = std::min<std::size_t>(want, static_cast<std::size_t>(
                                             std::max(1, k)));
    in.read(dst + got, static_cast<std::streamsize>(want));
    const std::size_t n = static_cast<std::size_t>(in.gcount());
    got += n;
    if (got == length) break;
    if (n == 0) break;  // end of stream, or a hard error with no progress
    // Partial delivery: istream::read sets failbit|eofbit whenever
    // gcount < count, even though the source merely paused. Progress was
    // made, so clear and keep reading — a true EOF re-reports itself as a
    // zero-byte pass next iteration.
    if (!in.good()) in.clear();
  }
  return got;
}

/// Writes all of `data`, looping over short writes. Ostream inserters
/// normally buffer internally, but the loop (and its failpoint, which
/// forces @K-byte chunks with a flush between) keeps the invariant
/// explicit: a frame is either fully written or the stream has failed.
void write_all(std::ostream& out, const char* data, std::size_t length) {
  std::size_t chunk = length;
  if (const int k = CWATPG_FAILPOINT_ARG("svc.proto.write.short"); k >= 0)
    chunk = static_cast<std::size_t>(std::max(1, k));
  std::size_t done = 0;
  while (done < length && out.good()) {
    const std::size_t n = std::min(chunk, length - done);
    out.write(data + done, static_cast<std::streamsize>(n));
    done += n;
    if (chunk < length) out.flush();
  }
}

}  // namespace

bool FrameLengthParser::feed(char c, std::size_t max_bytes) {
  if (c == '\n') {
    if (digits_ == 0) throw ProtocolError("empty frame length header");
    if (length_ > max_bytes)
      throw ProtocolError("frame of " + std::to_string(length_) +
                          " bytes exceeds the " + std::to_string(max_bytes) +
                          "-byte limit");
    return true;
  }
  if (c < '0' || c > '9')
    throw ProtocolError("non-digit in frame length header");
  if (++digits_ > kMaxFrameHeaderDigits)
    throw ProtocolError("frame length header too long");
  length_ = length_ * 10 + static_cast<std::size_t>(c - '0');
  return false;
}

obs::Json parse_frame_payload(const std::string& payload) {
  try {
    return obs::Json::parse(payload, kMaxFrameDepth);
  } catch (const std::exception& e) {
    throw ProtocolError(std::string("bad frame payload: ") + e.what());
  }
}

void write_frame(std::ostream& out, const obs::Json& frame) {
  const std::string payload = frame.dump();
  const std::string header = std::to_string(payload.size()) + '\n';
  write_all(out, header.data(), header.size());
  write_all(out, payload.data(), payload.size());
  out.flush();
}

bool read_frame(std::istream& in, obs::Json& frame, std::size_t max_bytes) {
  // Header: decimal length terminated by '\n'. EOF before the first digit
  // is a clean end of stream; EOF anywhere later is a truncated frame.
  int c = in.get();
  if (c == std::istream::traits_type::eof()) return false;
  if (CWATPG_FAILPOINT("svc.proto.read.corrupt_len"))
    throw ProtocolError("non-digit in frame length header (injected: "
                        "svc.proto.read.corrupt_len)");
  FrameLengthParser header;
  while (!header.feed(static_cast<char>(c), max_bytes)) {
    c = in.get();
    if (c == std::istream::traits_type::eof())
      throw ProtocolError("truncated frame header");
  }
  const std::size_t length = header.length();
  if (CWATPG_FAILPOINT("svc.proto.read.eof"))
    throw ProtocolError("truncated frame payload (injected: "
                        "svc.proto.read.eof)");
  std::string payload(length, '\0');
  const std::size_t got = read_exact(in, payload.data(), length);
  if (got != length)
    throw ProtocolError("truncated frame payload (expected " +
                        std::to_string(length) + " bytes, got " +
                        std::to_string(got) + ")");
  frame = parse_frame_payload(payload);
  return true;
}

const char* to_string(RequestKind kind) {
  switch (kind) {
    case RequestKind::kLoadCircuit:
      return "load_circuit";
    case RequestKind::kRunAtpg:
      return "run_atpg";
    case RequestKind::kFsim:
      return "fsim";
    case RequestKind::kStatus:
      return "status";
    case RequestKind::kCancel:
      return "cancel";
    case RequestKind::kShutdown:
      return "shutdown";
  }
  return "?";
}

std::optional<RequestKind> parse_request_kind(std::string_view name) {
  for (const RequestKind kind :
       {RequestKind::kLoadCircuit, RequestKind::kRunAtpg, RequestKind::kFsim,
        RequestKind::kStatus, RequestKind::kCancel, RequestKind::kShutdown})
    if (name == to_string(kind)) return kind;
  return std::nullopt;
}

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadRequest:
      return "bad_request";
    case ErrorCode::kNotFound:
      return "not_found";
    case ErrorCode::kOverloaded:
      return "overloaded";
    case ErrorCode::kCancelled:
      return "cancelled";
    case ErrorCode::kShuttingDown:
      return "shutting_down";
    case ErrorCode::kInternal:
      return "internal";
  }
  return "?";
}

obs::Json Request::to_json() const {
  obs::Json j = obs::Json::object();
  j["schema"] = kRpcSchema;
  j["id"] = id;
  j["kind"] = to_string(kind);
  j["params"] = params;
  return j;
}

Request Request::from_json(const obs::Json& j) {
  if (!j.is_object()) throw ProtocolError("request is not an object");
  const obs::Json* schema = j.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != kRpcSchema)
    throw ProtocolError("missing or unsupported request schema (want \"" +
                        std::string(kRpcSchema) + "\")");
  Request req;
  const obs::Json* id = j.find("id");
  if (id == nullptr || !id->is_number())
    throw ProtocolError("missing or non-numeric request id");
  try {
    req.id = id->as_u64();
  } catch (const std::exception&) {
    throw ProtocolError("request id must be a non-negative integer");
  }
  const obs::Json* kind = j.find("kind");
  if (kind == nullptr || !kind->is_string())
    throw ProtocolError("missing request kind");
  const auto parsed = parse_request_kind(kind->as_string());
  if (!parsed)
    throw ProtocolError("unknown request kind \"" + kind->as_string() + "\"");
  req.kind = *parsed;
  if (const obs::Json* params = j.find("params"); params != nullptr) {
    if (!params->is_object())
      throw ProtocolError("request params must be an object");
    req.params = *params;
  } else {
    req.params = obs::Json::object();
  }
  return req;
}

obs::Json make_response(std::uint64_t id, obs::Json result) {
  obs::Json j = obs::Json::object();
  j["schema"] = kRpcSchema;
  j["id"] = id;
  j["ok"] = true;
  j["result"] = std::move(result);
  return j;
}

obs::Json make_error(std::uint64_t id, ErrorCode code,
                     std::string_view message) {
  obs::Json j = obs::Json::object();
  j["schema"] = kRpcSchema;
  j["id"] = id;
  j["ok"] = false;
  obs::Json error = obs::Json::object();
  error["code"] = to_string(code);
  error["message"] = message;
  j["error"] = std::move(error);
  return j;
}

std::string encode_bits(const std::vector<bool>& bits) {
  std::string out(bits.size(), '0');
  for (std::size_t i = 0; i < bits.size(); ++i)
    if (bits[i]) out[i] = '1';
  return out;
}

std::vector<bool> decode_bits(std::string_view text,
                              std::size_t expected_size) {
  if (text.size() != expected_size)
    throw ProtocolError("pattern has " + std::to_string(text.size()) +
                        " bits, circuit has " + std::to_string(expected_size) +
                        " inputs");
  std::vector<bool> bits(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '1')
      bits[i] = true;
    else if (text[i] != '0')
      throw ProtocolError("pattern characters must be '0' or '1'");
  }
  return bits;
}

// ---- shard outcome codec --------------------------------------------------

namespace {

fault::FaultStatus parse_fault_status(const std::string& name) {
  using fault::FaultStatus;
  for (const FaultStatus s :
       {FaultStatus::kDetected, FaultStatus::kUntestable,
        FaultStatus::kDroppedBySim, FaultStatus::kDroppedRandom,
        FaultStatus::kAborted, FaultStatus::kUnreachable,
        FaultStatus::kUndetermined})
    if (name == to_string(s)) return s;
  throw ProtocolError("unknown fault status \"" + name + "\"");
}

fault::SolveEngine parse_solve_engine(const std::string& name) {
  using fault::SolveEngine;
  for (const SolveEngine e :
       {SolveEngine::kNone, SolveEngine::kSat, SolveEngine::kSatRetry,
        SolveEngine::kPodem, SolveEngine::kIncremental})
    if (name == to_string(e)) return e;
  throw ProtocolError("unknown solve engine \"" + name + "\"");
}

StopReason parse_stop_reason(const std::string& name) {
  for (const StopReason r :
       {StopReason::kNone, StopReason::kConflictLimit,
        StopReason::kPropagationLimit, StopReason::kDeadline,
        StopReason::kCancelled})
    if (name == to_string(r)) return r;
  throw ProtocolError("unknown stop reason \"" + name + "\"");
}

std::uint64_t record_u64(const obs::Json& j, const char* key) {
  const obs::Json* v = j.find(key);
  if (v == nullptr) return 0;
  try {
    return v->as_u64();
  } catch (const std::exception&) {
    throw ProtocolError(std::string("fault record field \"") + key +
                        "\" must be a non-negative integer");
  }
}

std::string record_string(const obs::Json& j, const char* key,
                          const char* fallback) {
  const obs::Json* v = j.find(key);
  if (v == nullptr) return fallback;
  if (!v->is_string())
    throw ProtocolError(std::string("fault record field \"") + key +
                        "\" must be a string");
  return v->as_string();
}

}  // namespace

obs::Json encode_fault_outcome(std::size_t index,
                               const fault::FaultOutcome& outcome,
                               const fault::Pattern* test) {
  obs::Json j = obs::Json::object();
  j["i"] = static_cast<std::uint64_t>(index);
  j["st"] = to_string(outcome.status);
  if (outcome.engine != fault::SolveEngine::kNone)
    j["en"] = to_string(outcome.engine);
  if (outcome.attempts != 0)
    j["at"] = static_cast<std::uint64_t>(outcome.attempts);
  if (outcome.sat_vars != 0)
    j["sv"] = static_cast<std::uint64_t>(outcome.sat_vars);
  if (outcome.sat_clauses != 0)
    j["sc"] = static_cast<std::uint64_t>(outcome.sat_clauses);
  if (outcome.solve_seconds != 0.0) j["ss"] = outcome.solve_seconds;
  const sat::SolverStats& s = outcome.solver_stats;
  if (s.decisions != 0) j["d"] = s.decisions;
  if (s.propagations != 0) j["p"] = s.propagations;
  if (s.conflicts != 0) j["c"] = s.conflicts;
  if (s.learnt_clauses != 0) j["lc"] = s.learnt_clauses;
  if (s.learnt_literals != 0) j["ll"] = s.learnt_literals;
  if (s.restarts != 0) j["rs"] = s.restarts;
  if (s.reused_implications != 0) j["ri"] = s.reused_implications;
  if (s.stop_reason != StopReason::kNone) j["sr"] = to_string(s.stop_reason);
  if (test != nullptr) j["t"] = encode_bits(*test);
  return j;
}

WireFaultOutcome decode_fault_outcome(const obs::Json& j,
                                      std::size_t num_inputs) {
  if (!j.is_object()) throw ProtocolError("fault record is not an object");
  WireFaultOutcome rec;
  if (j.find("i") == nullptr)
    throw ProtocolError("fault record is missing its index");
  rec.index = static_cast<std::size_t>(record_u64(j, "i"));
  rec.outcome.status = parse_fault_status(record_string(j, "st", ""));
  rec.outcome.engine = parse_solve_engine(record_string(j, "en", "none"));
  rec.outcome.attempts = static_cast<std::uint32_t>(record_u64(j, "at"));
  rec.outcome.sat_vars = static_cast<std::size_t>(record_u64(j, "sv"));
  rec.outcome.sat_clauses = static_cast<std::size_t>(record_u64(j, "sc"));
  if (const obs::Json* ss = j.find("ss")) {
    if (!ss->is_number())
      throw ProtocolError("fault record field \"ss\" must be a number");
    rec.outcome.solve_seconds = ss->as_double();
  }
  sat::SolverStats& s = rec.outcome.solver_stats;
  s.decisions = record_u64(j, "d");
  s.propagations = record_u64(j, "p");
  s.conflicts = record_u64(j, "c");
  s.learnt_clauses = record_u64(j, "lc");
  s.learnt_literals = record_u64(j, "ll");
  s.restarts = record_u64(j, "rs");
  s.reused_implications = record_u64(j, "ri");
  s.stop_reason = parse_stop_reason(record_string(j, "sr", "none"));
  const bool detected = rec.outcome.status == fault::FaultStatus::kDetected;
  if (const obs::Json* t = j.find("t")) {
    if (!t->is_string() || !detected)
      throw ProtocolError("fault record test must be a \"0101…\" string on "
                          "a detected fault");
    rec.test = decode_bits(t->as_string(), num_inputs);
  } else if (detected) {
    throw ProtocolError("detected fault record is missing its test");
  }
  return rec;
}

}  // namespace cwatpg::svc
