// Resilient cwatpg.rpc/1 client: retry/backoff with deterministic jitter
// and idempotent resubmission keyed by request id.
//
// The server's admission control answers `overloaded` instead of queueing
// unboundedly; this client is the other half of that contract. A job
// rejected with `overloaded` is resubmitted — after exponential backoff
// with seeded jitter, so a thundering herd of clients decorrelates but a
// test replays byte-identically — under the SAME request id. The id is
// what makes resubmission idempotent: while a job with that id is live,
// the server rejects a duplicate admission ("already names a live job"),
// which this client recognizes and absorbs as an ack that its earlier
// submission survived; the one terminal response still arrives exactly
// once. A client can therefore always err on the side of resending.
//
// The client is synchronous and single-owner: one thread calls it, it
// reads frames inline and routes them — terminal responses for jobs it
// has in flight are buffered until await()ed, overloaded rejections
// trigger the retry loop wherever they interleave. This mirrors how the
// Python smoke client works, but with the retry discipline the chaos
// bench needs.
//
// Thread-safe: NO (by design — one owner). The underlying Transport may
// of course be shared with a server on the other end.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "obs/json.hpp"
#include "svc/transport.hpp"
#include "util/rng.hpp"

namespace cwatpg::svc {

struct ClientOptions {
  /// Total submissions per job (first try + retries). When the last
  /// attempt is also rejected, the rejection becomes the job's terminal.
  std::size_t max_attempts = 6;
  double backoff_base_seconds = 0.005;
  double backoff_max_seconds = 0.5;
  double backoff_multiplier = 2.0;
  /// Seed for the jitter RNG: backoff sleeps are base * 2^k scaled by a
  /// factor drawn from [0.5, 1.0). Fixed seed => replayable schedule.
  std::uint64_t jitter_seed = 0x7e577e57;
  /// Injectable sleep (tests pass a recorder; default really sleeps).
  std::function<void(double)> sleep_fn;
  /// Bound each blocking read on the transport (0 = wait forever). Only
  /// transports that support timeouts honor it (SocketTransport does; the
  /// pipe/stream transports ignore it — see Transport::set_read_timeout).
  /// A timeout surfaces exactly like a torn session: the await returns
  /// nullopt and `transport_errors` records why.
  double read_timeout_seconds = 0.0;
};

struct ClientStats {
  std::uint64_t requests_sent = 0;   ///< frames written (incl. resubmits)
  std::uint64_t responses = 0;       ///< frames received and routed
  std::uint64_t overloaded = 0;      ///< overloaded rejections observed
  std::uint64_t retries = 0;         ///< resubmissions performed
  std::uint64_t duplicate_rejects = 0;  ///< "already live" acks absorbed
  std::uint64_t session_errors = 0;  ///< id-0 / unroutable error frames
  /// Reads that failed at the TRANSPORT (framing loss, connection reset,
  /// read timeout) — "the peer is gone or lying", as opposed to
  /// `overloaded` ("the peer is healthy and pushing back"). The
  /// distinction is what lets a coordinator retry overload forever but
  /// fail over a dead worker immediately.
  std::uint64_t transport_errors = 0;
  std::string last_transport_error;  ///< what() of the newest one
  double backoff_seconds = 0.0;      ///< total backoff slept
};

class Client {
 public:
  explicit Client(Transport& transport, ClientOptions options = {});

  /// Sends one control-plane request (load_circuit/status/cancel/
  /// shutdown) and blocks for its response. Throws std::runtime_error if
  /// the transport closes first. No retry: control kinds are answered
  /// inline and a lost session is the caller's signal.
  obs::Json call(const std::string& kind,
                 obs::Json params = obs::Json::object());

  /// Submits a job (run_atpg/fsim) and returns its request id without
  /// waiting. The id stays "pending" until await()/await_any() hands over
  /// its terminal response; overloaded rejections met while pumping any
  /// await are retried per ClientOptions.
  std::uint64_t submit(const std::string& kind, obs::Json params);

  /// Blocks until `id`'s terminal response (retrying it and any other
  /// pending job through overloaded rejections along the way). nullopt
  /// when the transport closed before the terminal arrived — a torn
  /// session, which the caller must treat as "outcome unknown".
  std::optional<obs::Json> await(std::uint64_t id);

  /// Blocks for the next terminal response of ANY pending job; nullopt on
  /// end-of-stream or when nothing is pending.
  std::optional<obs::Json> await_any();

  std::size_t pending_jobs() const { return pending_.size(); }
  const ClientStats& stats() const { return stats_; }

 private:
  struct PendingJob {
    std::string kind;
    obs::Json params;
    std::size_t attempts = 1;
  };

  obs::Json request_json(std::uint64_t id, const std::string& kind,
                         const obs::Json& params) const;
  void send(std::uint64_t id, const std::string& kind,
            const obs::Json& params);
  /// Reads and routes one frame. Returns false on end-of-stream.
  bool pump();
  /// Routes one inbound frame: retries overloaded pending jobs, absorbs
  /// duplicate-id acks, otherwise parks the frame in ready_.
  void route(obs::Json frame);
  void backoff(std::size_t attempt);

  Transport& transport_;
  ClientOptions options_;
  Rng jitter_;
  bool eof_with_pending_recorded_ = false;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, PendingJob> pending_;
  std::map<std::uint64_t, obs::Json> ready_;
  ClientStats stats_;
};

}  // namespace cwatpg::svc
