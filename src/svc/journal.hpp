// Crash-recovery journal: append-only JSONL of job lifecycle records.
//
// The daemon's durability story is deliberately tiny: two fsync'd
// appends per job — one when it is ACCEPTED (journaled before the queue
// may run it, so a crash can never have run a job the journal does not
// know about), one when its single TERMINAL response is sent. A restarted
// daemon replays the file: every accepted record without a matching
// terminal is a job the previous process died holding, and the new
// process reports it as `interrupted` — never silently forgets it.
//
// Wire format ("cwatpg.journal/1"): one record per line,
//
//   <crc32-8-hex> <compact JSON>\n
//
// where the CRC is over the JSON bytes exactly as written. The prefix —
// not an embedded field — keeps verification independent of JSON key
// order and makes torn tails (the crash happened mid-append) detectable
// without parsing: a line whose CRC does not match its payload is
// corrupt, and recovery skips it while counting it. Record shapes:
//
//   {"schema":"cwatpg.journal/1","seq":N,"event":"accepted",
//    "job":ID,"kind":"run_atpg","circuit":"<content-hash>"}
//   {"schema":"cwatpg.journal/1","seq":N,"event":"terminal",
//    "job":ID,"outcome":"ok" | "error:<code>"}
//   {"schema":"cwatpg.journal/1","seq":N,"event":"interrupted","job":ID}
//
// `interrupted` is written by RECOVERY, as the terminal record of a job
// the previous process abandoned — so a second restart does not
// re-report it.
//
// Thread-safe: append operations serialize on one mutex (the server calls
// them from the reader, worker, and watchdog threads). recover() is a
// static read-only scan, done before the serving process appends.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"

namespace cwatpg::svc {

inline constexpr const char* kJournalSchema = "cwatpg.journal/1";

/// CRC-32 (IEEE 802.3, reflected) of `data` — the line checksum.
std::uint32_t crc32(std::string_view data);

/// One parsed, checksum-valid journal record.
struct JournalRecord {
  std::uint64_t seq = 0;
  std::string event;    ///< "accepted" / "terminal" / "interrupted"
  std::uint64_t job = 0;
  std::string kind;     ///< accepted only: "run_atpg" / "fsim"
  std::string circuit;  ///< accepted only: content-hash key
  std::string outcome;  ///< terminal only: "ok" / "error:<code>"
};

class Journal {
 public:
  /// Opens `path` for appending (creating it if absent). `first_seq` is
  /// the seq the first append gets (0 is treated as 1) — a reopening
  /// server passes `Recovery::max_seq + 1` so seqs stay monotonic across
  /// process generations and recovery's seq-ordered interrupted report
  /// never interleaves generations. Throws std::runtime_error when the
  /// file cannot be opened.
  explicit Journal(const std::string& path, std::uint64_t first_seq = 1);
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Journal the named lifecycle edge; each append is CRC-stamped,
  /// written whole, and fsync'd before returning. Throws
  /// std::runtime_error on I/O failure (callers decide whether that is
  /// fatal — the server counts it and keeps serving).
  void record_accepted(std::uint64_t job, std::string_view kind,
                       std::string_view circuit);
  void record_terminal(std::uint64_t job, std::string_view outcome);
  void record_interrupted(std::uint64_t job);

  const std::string& path() const { return path_; }

  struct Recovery {
    /// Accepted records with no terminal/interrupted match — the jobs the
    /// crashed process died holding.
    std::vector<JournalRecord> interrupted;
    std::size_t records = 0;  ///< checksum-valid records scanned
    std::size_t corrupt = 0;  ///< torn/garbled lines skipped
    /// Highest seq among valid records — feed `max_seq + 1` to the
    /// Journal constructor so a restart continues the sequence.
    std::uint64_t max_seq = 0;
  };

  /// Scans `path` (missing file => empty recovery). Never throws on
  /// content: a torn tail or a corrupted line is counted, not fatal —
  /// recovery after a crash is exactly when the file is allowed to be
  /// imperfect.
  static Recovery recover(const std::string& path);

 private:
  void append(obs::Json record);

  std::string path_;
  int fd_ = -1;
  std::mutex mutex_;
  /// Guarded by mutex_: stamped into each record inside append(), never
  /// touched by the (concurrently called) record_* builders.
  std::uint64_t next_seq_ = 1;
};

}  // namespace cwatpg::svc
