// The long-lived ATPG daemon: scheduler + request lifecycle.
//
// A Server composes the layers the previous PRs built into one serving
// loop: circuits live in a CircuitRegistry (parse/collapse/encode once,
// amortize across requests), jobs flow through a bounded JobQueue
// (admission control, priorities, per-job Budgets), and execution happens
// on a shared work-stealing ThreadPool with at most pool-size jobs in
// flight. Cancellation and deadlines reuse util::Budget end to end: the
// same token a request deadline arms is the one a `cancel` request fires,
// and the engines' anytime semantics turn it into a partial-but-consistent
// terminal response.
//
// Request lifecycle (see ARCHITECTURE.md for the diagram):
//
//   reader thread       dispatcher thread        pool worker
//   ─────────────       ─────────────────        ───────────
//   read frame
//   ├─ control kinds ──────────────── respond inline
//   └─ job kinds: admit ─▶ queue ─▶ pop (priority) ─▶ execute engine
//        │ full → `overloaded`          │                  │
//        │                              └ cap: ≤ pool size └ terminal
//        └ cancel: fire Budget ────────────────────────────▶ response
//
// Guarantees:
//   * every admitted job produces exactly ONE terminal response — a
//     result, a `cancelled` error (cancelled while queued), a
//     `shutting_down` error (drained at shutdown), or an `internal` error
//     (including a watchdog detach — see below);
//   * a served run_atpg classification is byte-identical to calling
//     run_atpg directly with the same options (the server adds transport
//     and scheduling, never semantics);
//   * graceful shutdown stops admission, fails still-queued jobs with
//     `shutting_down`, lets in-flight jobs finish, then answers the
//     shutdown request last.
//
// Sessions: the server multiplexes any number of concurrent client
// sessions (connections) onto the one scheduler above. Each session owns a
// Transport; jobs are keyed by (session, request id) because ids are
// client-chosen and two clients may reuse the same id. A session's frames
// enter through handle_session_frame(); closing a session cancels its
// queued and running jobs and suppresses their terminal writes (a dead
// connection gets no bytes). serve() is the classic single-session
// convenience wrapper cwatpg_serve's stdio mode and the in-memory tests
// use; src/net's NetServer drives the session API directly with one
// session per TCP connection.
//
// Thread-safe: serve() is a single-owner entry point (one transport, one
// reader); handle_session_frame() for ONE session must come from one
// thread at a time (sessions are independent). Internals synchronize
// themselves; responses may be written from any worker (Transport::write
// is thread-safe).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "svc/journal.hpp"
#include "svc/proto.hpp"
#include "svc/queue.hpp"
#include "svc/registry.hpp"
#include "svc/transport.hpp"
#include "util/threadpool.hpp"

namespace cwatpg::svc {

struct ServerOptions {
  /// Pool workers == max concurrently executing jobs. 0 = auto
  /// (ThreadPool::resolve_thread_count → hardware concurrency).
  std::size_t threads = 0;
  /// Job queue capacity; admission beyond it answers `overloaded`.
  std::size_t queue_capacity = 64;
  /// Registry byte budget for retained circuits (LRU-evicted above it).
  std::size_t registry_bytes = std::size_t(256) << 20;
  /// Deadline applied to jobs whose request carries none (0 = unlimited).
  double default_deadline_seconds = 0.0;
  /// Seed for the pool's steal-victim RNG streams (never affects results).
  std::uint64_t seed = 0x5eedca11;

  /// Crash-recovery journal path ("" = no journal). On startup the file
  /// is replayed: accepted-but-not-terminal jobs from a previous process
  /// are reported as interrupted (status `interrupted_jobs`) and closed
  /// out in the journal, so a crash never silently forgets work.
  std::string journal_path;

  /// Job watchdog (0 = disabled): a RUNNING run_atpg job whose Budget
  /// shows no progress polls for `watchdog_stall_seconds` is presumed
  /// stuck and cancelled; if it STILL makes no progress for
  /// `watchdog_detach_seconds` more, it is detached — its terminal
  /// `internal` error is sent immediately and whatever the wedged worker
  /// eventually produces is dropped by the exactly-once CAS. The sampling
  /// cadence is `watchdog_poll_seconds`.
  ///
  /// Limitation: detach frees the CLIENT, not shutdown. The wedged
  /// worker still occupies its pool thread and still counts as in-flight
  /// until it returns, so a graceful drain blocks on a job that ignores
  /// cancellation forever — there is no safe way to kill a thread from
  /// outside. If a drain must be bounded even against such jobs, bound
  /// the process instead (the journal turns the kill into an
  /// `interrupted` report on the next boot).
  double watchdog_stall_seconds = 0.0;
  double watchdog_detach_seconds = 0.0;
  double watchdog_poll_seconds = 0.02;
};

class Server {
 public:
  using SessionId = std::uint64_t;

  explicit Server(const ServerOptions& options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Serves `transport` until a `shutdown` request completes its drain or
  /// the peer closes the stream (implicit shutdown, no final response).
  /// Closes the transport on return, so the peer observes end-of-stream
  /// after the final frame. Blocking; call from the thread that owns the
  /// session.
  void serve(Transport& transport);

  // ---- multi-session API (what src/net's event loop drives) ----

  /// Starts the scheduler threads (dispatcher, watchdog). Idempotent;
  /// serve() and the first open_session caller both go through here.
  void start();

  /// Registers a session. The server writes this session's responses
  /// through `transport` (which must be thread-safe per the Transport
  /// contract) until close_session(). The shared_ptr keeps the transport
  /// alive for any in-flight terminal writes.
  SessionId open_session(std::shared_ptr<Transport> transport);

  /// Feeds one inbound frame from `session` through the request pipeline:
  /// control kinds are answered inline on the session's transport, job
  /// kinds are admitted (or rejected) — exactly serve()'s reader body.
  /// Malformed requests are answered with `bad_request`, never thrown.
  /// Returns the request id when the frame was a `shutdown` request (the
  /// caller owns the drain and the final response — see drain() /
  /// shutdown_response()); nullopt otherwise.
  std::optional<std::uint64_t> handle_session_frame(SessionId session,
                                                    const obs::Json& frame);

  /// Ends a session: forgets its transport (late terminals are dropped,
  /// not written to a dead peer), cancels its still-queued jobs (terminal
  /// journaled as `cancelled`), and fires the budgets of its running jobs
  /// so they stop at the next poll. Idempotent.
  void close_session(SessionId session);

  /// Stops admission, fails still-queued jobs with `shutting_down`, waits
  /// for every in-flight job's terminal, then joins the scheduler threads.
  /// After drain() the server is done — it cannot serve again.
  void drain();

  /// The final frame a `shutdown` requester receives after drain():
  /// server status with "drained": true, under the request's id.
  obs::Json shutdown_response(std::uint64_t id);

  /// The server-wide metrics registry. The net layer records its
  /// connection/byte counters here so one `status` frame reports the
  /// whole serving stack.
  obs::MetricsRegistry& metrics() { return metrics_; }

  /// Resolved worker count (the in-flight job cap).
  std::size_t threads() const { return pool_.size(); }

  RegistryStats registry_stats() const { return registry_.stats(); }
  QueueStats queue_stats() const { return queue_.stats(); }

 private:
  enum class JobState : std::uint8_t { kQueued, kRunning, kDone };
  using Clock = std::chrono::steady_clock;

  /// (session, client request id) — the composite key all job tracking
  /// uses; ids alone are only unique within a session.
  struct JobKey {
    std::uint64_t session = 0;
    std::uint64_t id = 0;
    bool operator==(const JobKey&) const = default;
  };
  struct JobKeyHash {
    std::size_t operator()(const JobKey& k) const {
      // splitmix-style mix of the two words; either alone is adversarial
      // (client-chosen ids), together they spread fine.
      std::uint64_t x = k.session * 0x9e3779b97f4a7c15ull + k.id;
      x ^= x >> 30;
      x *= 0xbf58476d1ce4e5b9ull;
      x ^= x >> 27;
      return static_cast<std::size_t>(x);
    }
  };

  struct JobRecord {
    JobState state = JobState::kQueued;
    std::shared_ptr<Budget> budget;
    bool watchdog_eligible = false;  ///< run_atpg polls its Budget; fsim not
    // -- watchdog bookkeeping (guarded by jobs_mutex_) --
    std::uint64_t last_progress = 0;    ///< Budget::progress() last sample
    Clock::time_point last_change{};    ///< when last_progress last moved
    bool watchdog_cancelled = false;    ///< stall escalation step 1 fired
    Clock::time_point cancelled_at{};   ///< when step 1 fired
    bool detached = false;              ///< step 2 fired (terminal sent)
  };

  // -- reader-side handlers (all write their own response) --
  void handle_load_circuit(SessionId session, const Request& req);
  void handle_status(SessionId session, const Request& req);
  void handle_cancel(SessionId session, const Request& req);
  void admit_job(SessionId session, const Request& req);

  // -- dispatcher / execution --
  void dispatcher_loop();
  void execute_job(const Job& job);
  obs::Json run_atpg_job(const Job& job);
  obs::Json fsim_job(const Job& job);

  /// Sends a job's single terminal response and flips its record to kDone.
  /// The compare-and-set under jobs_mutex_ is the exactly-once guarantee.
  /// The write is skipped when the owning session is gone.
  void finish_job(const JobKey& key, const obs::Json& response);

  /// Writes `frame` to the session's transport, or drops it when the
  /// session has been closed (the documented fate of writes to a dead
  /// connection).
  void write_to_session(SessionId session, const obs::Json& frame);

  obs::Json server_status_json();

  // -- resilience --
  void watchdog_loop();
  /// Journal append that never kills the server: an I/O failure is
  /// counted (svc.journal.failures) and serving continues degraded.
  void journal_accepted(std::uint64_t job, const char* kind,
                        const std::string& circuit);
  void journal_terminal(std::uint64_t job, const obs::Json& response);

  ServerOptions options_;
  ThreadPool pool_;
  CircuitRegistry registry_;
  JobQueue queue_;
  obs::MetricsRegistry metrics_;

  std::atomic<bool> started_{false};  ///< scheduler threads launched
  std::atomic<bool> serving_{false};  ///< serve() entered (single-use)
  std::thread dispatcher_;
  std::atomic<bool> shutting_down_{false};

  std::unique_ptr<Journal> journal_;  ///< null when journaling is off
  Journal::Recovery recovered_;       ///< prior process's abandoned jobs

  std::thread watchdog_;
  std::mutex watchdog_mutex_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;  ///< guarded by watchdog_mutex_

  mutable std::mutex jobs_mutex_;
  std::condition_variable jobs_cv_;  ///< in-flight slot free / all idle
  std::size_t in_flight_ = 0;        ///< guarded by jobs_mutex_
  /// Live sessions' transports, by session id; absence means the session
  /// is closed and its writes are dropped. Guarded by jobs_mutex_.
  std::unordered_map<SessionId, std::shared_ptr<Transport>> sessions_;
  SessionId next_session_ = 1;  ///< guarded by jobs_mutex_
  std::unordered_map<JobKey, JobRecord, JobKeyHash> jobs_;
  /// Terminal records retained for `status` queries, pruned FIFO so a
  /// long-lived server's table stays bounded.
  std::deque<JobKey> done_order_;
  static constexpr std::size_t kMaxDoneRecords = 1024;
};

}  // namespace cwatpg::svc
