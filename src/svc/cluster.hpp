// The sharded ATPG cluster coordinator: one cwatpg.rpc/1 front end over a
// pool of worker daemons, with deterministic merge and worker failover.
//
// A Cluster speaks exactly the protocol a single svc::Server does — same
// request kinds, same response shapes — so a client cannot tell (except by
// `status`) whether it is talking to one daemon or a fleet. What changes
// is the execution plan for a per-fault `run_atpg` job:
//
//   admit ─▶ shard the collapsed fault-id space into contiguous
//            [k·S, (k+1)·S) windows ─▶ dispatch windows to workers
//            (`fault_range` + `raw_outcomes`, drop_by_simulation off so
//            every window solves independently) ─▶ ingest per-fault
//            records ─▶ REPLAY the single-node pipeline over the records
//            ─▶ one terminal response.
//
// Determinism argument (see ARCHITECTURE.md): per-fault classification is
// a pure function of (circuit, fault, solver options) and random-phase
// drops are per-fault independent, so workers can solve any window
// speculatively. The coordinator then re-runs the exact serial TEGUS
// pipeline — same seed, same work-list order, same drop-by-simulation and
// escalation bookkeeping — with a SolveProvider that returns recorded
// outcomes instead of invoking a solver. Which worker solved what, and in
// which order replies arrived, cannot leak into the result: the merged
// classification, test set and test attribution are identical to a
// single-node run by construction.
//
// Failover and supervision: a worker that dies or wedges (heartbeats — a
// bounded `status` probe on idle workers — turn a wedge into the same
// EOF-shaped signal) forfeits its un-acked shard to a survivor, and the
// SLOT is respawned under exponential backoff with a generation counter:
// its endpoint's respawn factory re-forks the child or re-dials the
// remote daemon, and the new generation lazily re-replicates circuits by
// content hash exactly like a first load. A crash-looping slot (≥ N
// respawn events in a sliding window) is quarantined loudly instead of
// spinning. A shard window that killed two worker generations is POISON:
// it is never dispatched a third time whole — it is bisected to isolate
// the offending fault range, and the residual window is executed
// in-process by the coordinator through the identical params→options
// mapping and wire codec, so its records — and therefore the
// ReplayProvider merge — are byte-identical to what a worker would have
// produced, and the job completes with the poison window named in the
// response instead of failing. First-ingest-wins per fault index makes
// redispatch safe against the original reply racing in late: no fault is
// lost, none is double-counted. Health, generations and redispatch
// counts surface through `status` and the cluster.* / cluster.supervisor.*
// metrics; benign shard failures (dropped dispatch, truncated reply)
// still fail the job after one redispatch — something is wrong with the
// work, not the worker.
//
// Jobs whose per-fault outcomes are NOT independent of solver-call history
// (engine "incremental") and `fsim` jobs are forwarded whole to one
// worker rather than sharded.
//
// Thread-safe: serve() is the single-owner entry point; one worker thread
// per endpoint plus the reader synchronize on one coordinator mutex.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/metrics.hpp"
#include "svc/client.hpp"
#include "svc/proto.hpp"
#include "svc/registry.hpp"
#include "svc/supervisor.hpp"
#include "svc/transport.hpp"
#include "util/budget.hpp"
#include "util/timer.hpp"

namespace cwatpg::svc {

struct ClusterOptions {
  /// Collapsed-fault ids per shard. Small shards spread load and shrink
  /// the redispatch unit; large shards amortize per-request overhead.
  std::size_t shard_size = 512;
  /// Per-shard worker deadline (seconds; 0 = none). A wedged worker then
  /// self-reports `interrupted` instead of holding its shard forever.
  double shard_deadline_seconds = 0.0;
  /// Job deadline applied when the request carries none (0 = unlimited);
  /// mirrors ServerOptions::default_deadline_seconds.
  double default_deadline_seconds = 0.0;
  /// Coordinator-side circuit registry budget (it keeps its own parsed
  /// copy of every circuit: the collapsed fault list is the shard space).
  std::size_t registry_bytes = std::size_t(256) << 20;
  /// Retry/backoff policy for the per-worker clients (reused from the
  /// single-daemon resilience layer).
  ClientOptions client;
  /// Worker respawn/heartbeat/quarantine policy (the self-healing layer;
  /// only endpoints carrying a respawn factory are ever respawned).
  SupervisorOptions supervisor;
};

struct ClusterStats {
  std::size_t workers = 0;         ///< configured worker endpoints
  std::size_t alive = 0;           ///< endpoints currently serving
  std::size_t respawning = 0;      ///< slots between generations
  std::size_t quarantined = 0;     ///< slots retired as crash loops
  std::uint64_t shards_dispatched = 0;
  std::uint64_t redispatched = 0;  ///< shards re-dispatched after a failure
  std::uint64_t worker_deaths = 0;
  std::uint64_t respawns = 0;      ///< successful worker respawns
  std::uint64_t heartbeat_failures = 0;
  std::uint64_t poison_windows = 0;   ///< windows executed in-process
  std::uint64_t inprocess_faults = 0; ///< faults solved by the coordinator
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_failed = 0;
};

class Cluster {
 public:
  /// One worker endpoint the cluster owns. `pid` is the current
  /// generation's process (surfaced through `status` so an operator — or
  /// the kill-drill smoke test — can target a worker process, and reaped
  /// by the supervisor at death detection); 0 for in-process and remote
  /// workers.
  struct WorkerEndpoint {
    /// What a respawn factory hands back: the next generation's
    /// connection (a re-forked child's pipes, a re-dialed socket).
    struct Respawned {
      std::unique_ptr<Transport> transport;
      std::int64_t pid = 0;
    };

    std::unique_ptr<Transport> transport;
    std::string name;
    std::int64_t pid = 0;
    /// Re-creates the endpoint's connection after a death. Called from
    /// the slot's own worker thread, outside the coordinator lock; may
    /// throw (counts as a failed respawn attempt, retried under backoff).
    /// Unset ⇒ the slot is not self-healing: a death shrinks the pool
    /// permanently (the pre-supervision behavior). The embedder injects
    /// this because the svc layer cannot dial TCP itself (net links svc,
    /// never the reverse).
    std::function<Respawned()> respawn;
  };

  Cluster(std::vector<WorkerEndpoint> workers, ClusterOptions options = {});
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Serves `transport` until a `shutdown` request completes its drain or
  /// the peer closes the stream. Same contract as Server::serve.
  void serve(Transport& transport);

  ClusterStats stats() const;

 private:
  struct JobContext;

  /// One contiguous fault-id window of one job, queued for dispatch.
  /// A forwarded (non-sharded) job travels as a single whole-job shard.
  struct Shard {
    std::shared_ptr<JobContext> job;
    std::size_t lo = 0;
    std::size_t hi = 0;
    int attempt = 0;  ///< benign failures: 0 = first dispatch, 1 = retry
    /// Worker generations this exact window killed. Two deaths make the
    /// window poison: bisect, or execute the residual in-process.
    int deaths = 0;
  };

  struct WorkerState {
    WorkerEndpoint endpoint;
    std::thread thread;
    bool alive = true;        ///< guarded by mutex_
    bool respawning = false;  ///< dead, but its supervisor is reviving it
    SlotSupervisor supervisor;  ///< guarded by mutex_
    /// Cumulative across generations: a slot's history survives every
    /// respawn (`status` reports per-slot totals plus the generation).
    std::uint64_t shards_completed = 0;
    std::uint64_t redispatches_caused = 0;
    std::uint64_t inflight_worker_id = 0;  ///< worker-side request id, 0=idle
    std::uint64_t inflight_job = 0;        ///< coordinator job id, 0=idle
    std::unordered_set<std::string> loaded;  ///< circuit keys replicated
  };

  enum class Pop { kShard, kIdle, kClosed };

  // -- reader side --
  void handle_load_circuit(const Request& req);
  void handle_status(const Request& req);
  void handle_cancel(const Request& req);
  void admit_job(const Request& req);

  // -- worker side --
  void worker_loop(WorkerState& w);
  /// Serves one connection generation of `w` until death or queue close.
  /// Returns true on a clean queue close (drain), false on worker death
  /// (on_worker_death already ran; the caller decides respawn).
  bool serve_generation(WorkerState& w);
  /// Backoff-sleeps and calls the slot's respawn factory until a new
  /// generation is live (true) or the slot quarantines / the queue closes
  /// (false — the caller's thread exits).
  bool await_respawn(WorkerState& w);
  /// Idle-tick health probe: a bounded `status` call. False ⇒ the worker
  /// is wedged and must take the death path.
  bool heartbeat(WorkerState& w, Client& client);
  /// Reaps the slot's current child process, if any (prompt zombie
  /// collection at death detection). Returns the exit description for
  /// `status` `last_exit` ("signal 9", "exit 127", "eof" when there is no
  /// process to reap).
  std::string reap_slot(WorkerState& w, bool kill_first);
  /// Runs one shard on `w`. Returns false when the worker is dead (the
  /// caller runs on_worker_death).
  bool run_shard(WorkerState& w, Client& client, Shard& shard);
  /// Re-queues `shard` after a BENIGN failure (or fails its job when the
  /// one-redispatch budget is spent). `cause` names the failure.
  void redispatch(WorkerState& w, Shard& shard, const std::string& cause);
  void on_worker_death(WorkerState& w, Shard& shard);
  /// A worker died holding `shard`: re-queue it, or — after a second
  /// death — route it through poison-shard quarantine.
  void forfeit_shard(WorkerState& w, Shard& shard);
  /// Poison window: bisect to isolate the offending fault range, or (at
  /// width 1 / the residual window) execute it in-process.
  void quarantine_shard(WorkerState& w, Shard& shard);
  /// Executes [lo, hi) on the coordinator itself, through the same
  /// params→options mapping and wire codec a worker applies, and accounts
  /// the records into the job.
  void run_window_inprocess(const std::shared_ptr<JobContext>& job,
                            std::size_t lo, std::size_t hi);
  /// Fails every non-terminal job; fired when the last live-or-reviving
  /// worker is gone.
  void fail_all_jobs(const std::string& why);
  /// Ingests one shard reply's records; returns false when the reply is
  /// incomplete (caller redispatches).
  bool ingest_reply(Shard& shard, const obs::Json& result, bool partial_ok);

  // -- job lifecycle --
  /// Blocks for the next dispatchable shard. `idle_timeout_seconds` > 0
  /// bounds the wait (kIdle on expiry — the heartbeat tick).
  Pop pop_shard(Shard& out, double idle_timeout_seconds);
  void finish_sharded_job(const std::shared_ptr<JobContext>& job);
  void fail_job(const std::shared_ptr<JobContext>& job, ErrorCode code,
                const std::string& message);
  /// Sends the terminal exactly once; returns false if one was already
  /// sent. Also drops the job's still-queued shards.
  bool claim_terminal(const std::shared_ptr<JobContext>& job);
  void send_terminal(const std::shared_ptr<JobContext>& job,
                     obs::Json response);
  obs::Json merge_records(JobContext& job);
  obs::Json cluster_status_json();
  /// Writes an out-of-band (id 0) cancel for whatever worker-side job is
  /// in flight for coordinator job `job_id` on any worker.
  void fan_out_cancel_locked(std::uint64_t job_id);

  ClusterOptions options_;
  CircuitRegistry registry_;
  /// Bench text by content-hash key, for replication to workers. Kept
  /// independently of the registry's LRU: a worker may need the text for
  /// as long as any job references the circuit.
  std::unordered_map<std::string, std::string> bench_texts_;
  obs::MetricsRegistry metrics_;

  Transport* transport_ = nullptr;  ///< valid during serve()

  mutable std::mutex mutex_;
  std::condition_variable queue_cv_;  ///< dispatch queue not-empty / closed
  std::condition_variable drain_cv_;  ///< a job reached its terminal
  std::deque<Shard> queue_;           ///< guarded by mutex_
  bool queue_closed_ = false;
  bool shutting_down_ = false;
  std::vector<std::unique_ptr<WorkerState>> workers_;
  std::size_t alive_ = 0;
  /// Slots whose supervisor is between generations (dead but reviving).
  /// They count as capacity: admission and the all-dead sweep treat
  /// alive_ + respawning_ == 0 as "the cluster is gone".
  std::size_t respawning_ = 0;
  /// Live jobs only: the entry is released with the terminal response.
  std::unordered_map<std::uint64_t, std::shared_ptr<JobContext>> jobs_;
  /// Recently-terminated job ids (bounded FIFO history) so status/cancel
  /// still answer "done" after the JobContext is gone.
  std::unordered_set<std::uint64_t> done_jobs_;
  std::deque<std::uint64_t> done_order_;
  std::size_t active_jobs_ = 0;
  ClusterStats stats_;
};

}  // namespace cwatpg::svc
