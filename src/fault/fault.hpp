// Single stuck-at fault model (§2), fault-list generation, and classical
// structural equivalence collapsing.
//
// A fault psi(X, B) forces net X permanently to B. Nets here are identified
// with their driving node; a *stem* fault sits on the driver's output, a
// *branch* fault on one fanout branch (a specific input pin of a consuming
// gate). Branch faults matter exactly when the stem has fanout > 1 — on a
// fanout-free net stem and branch are structurally equivalent and collapse.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/network.hpp"

namespace cwatpg::fault {

struct StuckAtFault {
  static constexpr std::int32_t kStem = -1;

  net::NodeId node = net::kNullNode;
  /// kStem: fault on the output net of `node`. Otherwise the index of the
  /// faulted input pin of `node` (a branch fault).
  std::int32_t pin = kStem;
  bool stuck_value = false;

  bool is_stem() const { return pin == kStem; }
  friend bool operator==(const StuckAtFault&, const StuckAtFault&) = default;
};

/// "G12 s-a-1" / "G7.in2 s-a-0" rendering.
std::string to_string(const net::Network& net, const StuckAtFault& fault);

/// The complete (uncollapsed) fault list: stem s-a-0/1 on the output of
/// every PI, constant and logic gate that has at least one fanout, and
/// branch s-a-0/1 on every input pin of every logic gate and PO marker
/// whose driving stem has fanout > 1 (single-fanout branches are identical
/// to their stems and listed only once, as stems).
std::vector<StuckAtFault> all_faults(const net::Network& net);

/// Structural equivalence collapsing over `faults` (classic rules):
///   * fanout-free branch == its stem (already applied by all_faults);
///   * AND: any input s-a-0 == output s-a-0 (NAND: == output s-a-1);
///   * OR:  any input s-a-1 == output s-a-1 (NOR: == output s-a-0);
///   * NOT/BUF/PO marker: input s-a-v == output s-a-(v^inv).
/// Returns one representative per equivalence class (the earliest in the
/// input order).
std::vector<StuckAtFault> collapse(const net::Network& net,
                                   const std::vector<StuckAtFault>& faults);

/// Convenience: collapse(all_faults(net)).
std::vector<StuckAtFault> collapsed_fault_list(const net::Network& net);

/// The node whose transitive fanout the fault influences: the faulted gate
/// for a branch fault, the driver itself for a stem fault.
net::NodeId fault_cone_root(const StuckAtFault& fault);

}  // namespace cwatpg::fault
