// Construction of the ATPG-SAT circuit C_psi^ATPG (§2, Figure 3) and the
// Lemma 4.2 / 4.3 ordering transfer h -> h_psi.
//
// C_psi^ATPG is built from:
//   * C_psi^sub — the good subcircuit: TFI(TFO(fault site));
//   * C_psi^fo  — a faulty copy of the fanout cone of the site, with the
//     faulted net replaced by the stuck value, side inputs tapping the good
//     subcircuit;
//   * one XOR per observed primary output, pairing the good and faulty
//     versions; the XOR outputs are the primary outputs of C_psi^ATPG.
// CIRCUIT-SAT on the result (encode_circuit_sat: "at least one output is 1")
// is satisfied exactly by the test vectors for the fault.
#pragma once

#include <vector>

#include "fault/fault.hpp"
#include "netlist/cone.hpp"
#include "netlist/network.hpp"

namespace cwatpg::fault {

struct AtpgCircuit {
  net::Network miter;  ///< C_psi^ATPG
  /// Original NodeId -> good-copy id in `miter` (kNullNode if absent).
  std::vector<net::NodeId> good_of;
  /// Original NodeId -> faulty-copy id in `miter` (kNullNode if absent;
  /// only fanout-cone nodes have faulty copies). For a stem fault the
  /// faulty copy of the site is the constant node.
  std::vector<net::NodeId> faulty_of;
  /// Original NodeId -> XOR comparison node (kNullNode except for observed
  /// kOutput markers of the original network).
  std::vector<net::NodeId> xor_of;
  /// Original PIs feeding the miter (subset of net.inputs(), in order).
  std::vector<net::NodeId> support;
  /// Good-circuit id of the faulted net's driver inside the miter —
  /// asserting it to ~stuck_value is the excitation condition.
  net::NodeId good_fault_net = net::kNullNode;
  /// The constant node carrying the stuck value (equals faulty_of[site]
  /// for stem faults).
  net::NodeId fault_const_node = net::kNullNode;

  const StuckAtFault fault;
  explicit AtpgCircuit(StuckAtFault f) : fault(f) {}
};

/// Builds C_psi^ATPG. Throws std::invalid_argument when the fault site
/// reaches no primary output (trivially untestable, as in net::fault_cone).
///
/// Thread-safe: yes; reads `net` (immutable after construction) and builds
/// a fresh AtpgCircuit per call. The parallel ATPG engine constructs
/// miters for different faults of the same network concurrently. The
/// returned AtpgCircuit itself is a plain value type: safe to move across
/// threads, not internally synchronized for concurrent mutation.
AtpgCircuit build_atpg_circuit(const net::Network& net,
                               const StuckAtFault& fault);

/// Lemma 4.2/4.3 ordering transfer: given an ordering `h` of the nodes of
/// the original network C, produce the interleaved ordering h_psi of the
/// miter's nodes — each faulty copy immediately after its good counterpart,
/// XORs and output markers in the slots of the original kOutput nodes. The
/// lemma guarantees W(C_psi^ATPG, h_psi) <= 2*W(C, h) + 2 (property-tested
/// across circuit families in the test suite).
std::vector<net::NodeId> transfer_ordering(
    const net::Network& net, const AtpgCircuit& atpg,
    const std::vector<net::NodeId>& h);

}  // namespace cwatpg::fault
