#include "fault/fault.hpp"

#include <numeric>
#include <unordered_map>

namespace cwatpg::fault {
namespace {

std::uint64_t key_of(const StuckAtFault& f) {
  return (static_cast<std::uint64_t>(f.node) << 33) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(f.pin + 1))
          << 1) |
         (f.stuck_value ? 1u : 0u);
}

/// Union-find with path halving.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    // Keep the smaller index as the root so representatives are the
    // earliest fault in list order (deterministic output).
    if (a < b)
      parent_[b] = a;
    else
      parent_[a] = b;
  }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

std::string to_string(const net::Network& netw, const StuckAtFault& fault) {
  std::string s = netw.name_of(fault.node);
  if (!fault.is_stem()) s += ".in" + std::to_string(fault.pin);
  s += fault.stuck_value ? " s-a-1" : " s-a-0";
  return s;
}

net::NodeId fault_cone_root(const StuckAtFault& fault) { return fault.node; }

std::vector<StuckAtFault> all_faults(const net::Network& netw) {
  std::vector<StuckAtFault> faults;
  for (net::NodeId id = 0; id < netw.node_count(); ++id) {
    const net::GateType t = netw.type(id);
    if (t != net::GateType::kOutput && !netw.fanouts(id).empty()) {
      faults.push_back({id, StuckAtFault::kStem, false});
      faults.push_back({id, StuckAtFault::kStem, true});
    }
    if (t == net::GateType::kOutput || net::is_logic(t)) {
      const auto fis = netw.fanins(id);
      for (std::int32_t p = 0; p < static_cast<std::int32_t>(fis.size());
           ++p) {
        // Single-fanout branches are identical to their stems; skip.
        if (netw.fanouts(fis[static_cast<std::size_t>(p)]).size() <= 1)
          continue;
        faults.push_back({id, p, false});
        faults.push_back({id, p, true});
      }
    }
  }
  return faults;
}

std::vector<StuckAtFault> collapse(const net::Network& netw,
                                   const std::vector<StuckAtFault>& faults) {
  std::unordered_map<std::uint64_t, std::size_t> index;
  index.reserve(faults.size() * 2);
  for (std::size_t i = 0; i < faults.size(); ++i)
    index.emplace(key_of(faults[i]), i);
  UnionFind uf(faults.size());

  auto lookup = [&](const StuckAtFault& f) -> std::size_t {
    const auto it = index.find(key_of(f));
    return it == index.end() ? static_cast<std::size_t>(-1) : it->second;
  };
  auto unite = [&](const StuckAtFault& a, const StuckAtFault& b) {
    const std::size_t ia = lookup(a);
    const std::size_t ib = lookup(b);
    if (ia != static_cast<std::size_t>(-1) &&
        ib != static_cast<std::size_t>(-1))
      uf.unite(ia, ib);
  };
  // The fault object actually present on input pin p of gate g with value v:
  // the branch when the driver has fanout > 1, else the driver's stem.
  auto input_fault = [&](net::NodeId g, std::int32_t p,
                         bool v) -> StuckAtFault {
    const net::NodeId driver = netw.fanins(g)[static_cast<std::size_t>(p)];
    if (netw.fanouts(driver).size() > 1) return {g, p, v};
    return {driver, StuckAtFault::kStem, v};
  };

  for (net::NodeId g = 0; g < netw.node_count(); ++g) {
    const net::GateType t = netw.type(g);
    if (!net::is_logic(t)) continue;
    const auto arity = static_cast<std::int32_t>(netw.fanins(g).size());
    for (std::int32_t p = 0; p < arity; ++p) {
      switch (t) {
        case net::GateType::kAnd:
          unite(input_fault(g, p, false), {g, StuckAtFault::kStem, false});
          break;
        case net::GateType::kNand:
          unite(input_fault(g, p, false), {g, StuckAtFault::kStem, true});
          break;
        case net::GateType::kOr:
          unite(input_fault(g, p, true), {g, StuckAtFault::kStem, true});
          break;
        case net::GateType::kNor:
          unite(input_fault(g, p, true), {g, StuckAtFault::kStem, false});
          break;
        case net::GateType::kBuf:
          unite(input_fault(g, p, false), {g, StuckAtFault::kStem, false});
          unite(input_fault(g, p, true), {g, StuckAtFault::kStem, true});
          break;
        case net::GateType::kNot:
          unite(input_fault(g, p, false), {g, StuckAtFault::kStem, true});
          unite(input_fault(g, p, true), {g, StuckAtFault::kStem, false});
          break;
        default:
          break;  // XOR/XNOR: no structural equivalences
      }
    }
  }

  std::vector<StuckAtFault> collapsed;
  for (std::size_t i = 0; i < faults.size(); ++i)
    if (uf.find(i) == i) collapsed.push_back(faults[i]);
  return collapsed;
}

std::vector<StuckAtFault> collapsed_fault_list(const net::Network& netw) {
  return collapse(netw, all_faults(netw));
}

}  // namespace cwatpg::fault
