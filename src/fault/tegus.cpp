#include "fault/tegus.hpp"

#include <optional>
#include <stdexcept>

#include "fault/incremental.hpp"
#include "fault/obs_hooks.hpp"
#include "fault/podem.hpp"
#include "obs/trace.hpp"
#include "sat/encode.hpp"
#include "util/budget.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace cwatpg::fault {

const char* to_string(FaultStatus status) {
  switch (status) {
    case FaultStatus::kDetected:
      return "detected";
    case FaultStatus::kUntestable:
      return "untestable";
    case FaultStatus::kDroppedBySim:
      return "dropped-sim";
    case FaultStatus::kDroppedRandom:
      return "dropped-random";
    case FaultStatus::kAborted:
      return "aborted";
    case FaultStatus::kUnreachable:
      return "unreachable";
    case FaultStatus::kUndetermined:
      return "undetermined";
  }
  return "undetermined";
}

const char* to_string(SolveEngine engine) {
  switch (engine) {
    case SolveEngine::kNone:
      return "none";
    case SolveEngine::kSat:
      return "sat";
    case SolveEngine::kSatRetry:
      return "sat-retry";
    case SolveEngine::kPodem:
      return "podem";
    case SolveEngine::kIncremental:
      return "incremental";
  }
  return "none";
}

const char* to_string(AtpgEngine engine) {
  switch (engine) {
    case AtpgEngine::kPerFault:
      return "per-fault";
    case AtpgEngine::kIncremental:
      return "incremental";
  }
  return "per-fault";
}

double AtpgResult::fault_efficiency() const {
  if (outcomes.empty()) return 1.0;
  return static_cast<double>(num_detected + num_untestable +
                             num_unreachable) /
         static_cast<double>(outcomes.size());
}

double AtpgResult::fault_coverage() const {
  if (outcomes.empty()) return 1.0;
  return static_cast<double>(num_detected) /
         static_cast<double>(outcomes.size());
}

Pattern extract_test(const net::Network& netw, const AtpgCircuit& atpg,
                     const std::vector<bool>& model, bool fill_value) {
  Pattern test(netw.inputs().size(), fill_value);
  for (std::size_t i = 0; i < netw.inputs().size(); ++i) {
    const net::NodeId pi = netw.inputs()[i];
    const net::NodeId miter_pi = atpg.good_of[pi];
    if (miter_pi != net::kNullNode) test[i] = model[miter_pi];
  }
  return test;
}

FaultOutcome generate_test(const net::Network& netw,
                           const StuckAtFault& fault,
                           const sat::SolverConfig& solver_config,
                           Pattern& test_out) {
  FaultOutcome outcome;
  outcome.fault = fault;

  // Fast-fail when the budget already fired: an abandoned speculative
  // worker drains in O(1) instead of building a miter no one will commit.
  if (solver_config.budget != nullptr) {
    const StopReason r = solver_config.budget->poll();
    if (r != StopReason::kNone) {
      outcome.status = FaultStatus::kAborted;
      outcome.solver_stats.stop_reason = r;
      return outcome;
    }
  }

  std::optional<AtpgCircuit> atpg_opt;
  try {
    atpg_opt.emplace(build_atpg_circuit(netw, fault));
  } catch (const std::invalid_argument&) {
    outcome.status = FaultStatus::kUnreachable;
    return outcome;
  }
  AtpgCircuit& atpg = *atpg_opt;

  sat::Cnf cnf = sat::encode_circuit_sat(atpg.miter);
  // Excitation: the good value of the faulted net must differ from the
  // stuck value. Implied by any satisfying assignment; stating it as a
  // unit clause prunes the search (TEGUS does the same).
  cnf.add_clause({sat::Lit(atpg.good_fault_net, fault.stuck_value)});

  outcome.sat_vars = cnf.num_vars();
  outcome.sat_clauses = cnf.num_clauses();

  Timer timer;
  const sat::SolveResult result = sat::solve_cnf(cnf, solver_config);
  outcome.solve_seconds = timer.seconds();
  outcome.solver_stats = result.stats;
  outcome.engine = SolveEngine::kSat;
  outcome.attempts = 1;

  switch (result.status) {
    case sat::SolveStatus::kSat:
      outcome.status = FaultStatus::kDetected;
      test_out = extract_test(netw, atpg, result.model);
      break;
    case sat::SolveStatus::kUnsat:
      outcome.status = FaultStatus::kUntestable;
      break;
    case sat::SolveStatus::kUnknown:
      outcome.status = FaultStatus::kAborted;
      break;
  }
  return outcome;
}

namespace {

/// Phase 3: the abort-escalation ladder. Re-attacks every still-kAborted
/// fault, in fault order, with geometrically growing conflict caps, then
/// hands the survivors to structural PODEM — a genuinely different search
/// that succeeds on some instances CDCL abandons. Tests found here feed
/// simulation-based dropping against the remaining aborted faults, so one
/// recovered test can clear several aborts. Runs on the pipeline thread in
/// both engines, so serial and parallel results stay byte-identical.
void escalate_aborted(const net::Network& netw, const AtpgOptions& options,
                      std::span<const StuckAtFault> faults,
                      detail::SolveProvider& provider,
                      const detail::SimulateFn& simulate,
                      AtpgResult& result) {
  // Growing an unlimited conflict cap is meaningless: the first pass
  // already searched without one, so a repeat would abort identically.
  const bool sat_rounds =
      options.escalation_rounds > 0 &&
      options.solver.max_conflicts != Budget::kUnlimited;
  if ((!sat_rounds && !options.podem_fallback) || result.num_aborted == 0)
    return;
  const Budget* budget = options.budget;

  obs::EventSink* const trace = options.trace;
  obs::Counter* c_retries = nullptr;
  obs::Counter* c_podem = nullptr;
  obs::Histogram* h_solve_ms = nullptr;
  if (options.metrics != nullptr) {
    c_retries = &options.metrics->counter("atpg.escalate.sat_retries");
    c_podem = &options.metrics->counter("atpg.escalate.podem_calls");
    h_solve_ms = &options.metrics->histogram("atpg.sat.solve_ms",
                                             obs::solve_time_bounds_ms());
  }

  std::vector<std::size_t> aborted;
  for (std::size_t i = 0; i < result.outcomes.size(); ++i)
    if (result.outcomes[i].status == FaultStatus::kAborted)
      aborted.push_back(i);

  for (std::size_t a = 0; a < aborted.size(); ++a) {
    const std::size_t fi = aborted[a];
    FaultOutcome& outcome = result.outcomes[fi];
    if (outcome.status != FaultStatus::kAborted) continue;  // dropped below
    if (budget != nullptr && budget->exhausted()) {
      result.interrupted = true;
      return;
    }

    Pattern test;
    bool resolved = false;
    bool provider_final = false;

    // A provider may supply the fault's final escalated outcome wholesale
    // (the cluster merge replays recorded worker escalations this way);
    // the built-in ladder is the nullopt fall-through.
    if (std::optional<FaultOutcome> recorded = provider.escalate(fi, test)) {
      outcome = *recorded;
      resolved = outcome.status != FaultStatus::kAborted;
      provider_final = true;
    }

    if (!provider_final && sat_rounds) {
      std::uint64_t cap = options.solver.max_conflicts;
      for (std::size_t round = 0;
           round < options.escalation_rounds && !resolved; ++round) {
        cap = saturating_mul(cap, options.escalation_growth);
        sat::SolverConfig config = detail::per_fault_solver_config(options);
        config.max_conflicts = cap;
        FaultOutcome retry = generate_test(netw, faults[fi], config, test);
        retry.engine = SolveEngine::kSatRetry;
        retry.attempts = outcome.attempts + 1;
        outcome = retry;
        resolved = retry.status != FaultStatus::kAborted;
        if (c_retries != nullptr) {
          c_retries->add(1);
          h_solve_ms->observe(retry.solve_seconds * 1e3);
        }
        if (budget != nullptr && budget->exhausted()) break;
      }
    }

    if (!provider_final && !resolved && options.podem_fallback &&
        !(budget != nullptr && budget->exhausted())) {
      PodemOptions podem_options;
      podem_options.max_backtracks = options.podem_max_backtracks;
      const PodemResult structural = podem(netw, faults[fi], podem_options);
      ++outcome.attempts;
      if (c_podem != nullptr) c_podem->add(1);
      if (structural.status != PodemStatus::kAborted) {
        outcome.engine = SolveEngine::kPodem;
        if (structural.status == PodemStatus::kDetected) {
          outcome.status = FaultStatus::kDetected;
          test = structural.test;
        } else {
          outcome.status = FaultStatus::kUntestable;
        }
        resolved = true;
      }
    }

    if (trace != nullptr)
      trace->event("atpg.escalate",
                   {{"fault", static_cast<std::uint64_t>(fi)},
                    {"status", to_string(outcome.status)},
                    {"engine", to_string(outcome.engine)},
                    {"attempts", outcome.attempts}});
    if (!resolved) continue;

    --result.num_aborted;
    ++result.num_escalated;
    if (outcome.status == FaultStatus::kUntestable) {
      ++result.num_untestable;
      continue;
    }
    if (options.verify_tests && !detects(netw, faults[fi], test))
      throw std::logic_error("run_atpg: escalated test fails to detect " +
                             to_string(netw, faults[fi]));
    outcome.test_index = static_cast<std::int64_t>(result.tests.size());
    result.tests.push_back(std::move(test));
    ++result.num_detected;
    if (!options.drop_by_simulation) continue;

    // One recovered test may clear several aborts: simulate it against
    // the still-aborted tail.
    std::vector<StuckAtFault> rest;
    std::vector<std::size_t> rest_index;
    for (std::size_t b = a + 1; b < aborted.size(); ++b) {
      if (result.outcomes[aborted[b]].status == FaultStatus::kAborted) {
        rest.push_back(faults[aborted[b]]);
        rest_index.push_back(aborted[b]);
      }
    }
    if (rest.empty()) continue;
    const Pattern recovered[] = {result.tests.back()};
    const std::vector<bool> hit = simulate(rest, recovered);
    for (std::size_t j = 0; j < rest.size(); ++j) {
      if (!hit[j]) continue;
      FaultOutcome& dropped = result.outcomes[rest_index[j]];
      dropped.status = FaultStatus::kDroppedBySim;
      dropped.test_index = static_cast<std::int64_t>(result.tests.size()) - 1;
      --result.num_aborted;
      ++result.num_detected;
      ++result.num_escalated;
    }
  }
}

}  // namespace

namespace detail {

sat::SolverConfig per_fault_solver_config(const AtpgOptions& options) {
  sat::SolverConfig config = options.solver;
  if (config.budget == nullptr) config.budget = options.budget;
  return config;
}

AtpgResult run_atpg_pipeline(const net::Network& netw,
                             const AtpgOptions& options,
                             SolveProvider& provider,
                             const SimulateFn& simulate) {
  Timer run_timer;
  obs::MetricsRegistry* const metrics = options.metrics;
  obs::EventSink* const trace = options.trace;
  obs::Span run_span(trace, "atpg.run");

  AtpgResult result;
  const Budget* budget = options.budget;
  const std::vector<StuckAtFault> faults =
      options.collapse_faults ? collapsed_fault_list(netw) : all_faults(netw);
  if (metrics != nullptr) metrics->counter("atpg.faults").add(faults.size());

  result.outcomes.reserve(faults.size());
  for (const StuckAtFault& f : faults) {
    FaultOutcome o;
    o.fault = f;
    result.outcomes.push_back(o);
  }

  // Optional shard window (AtpgOptions::fault_subset): restrict the run to
  // a strictly increasing subset of fault indices. Out-of-window faults
  // are never simulated or solved and stay kUndetermined; the empty-subset
  // path below is byte-identical to the pre-window pipeline.
  std::vector<std::size_t> scope_index;  ///< in-window indices, ascending
  const bool windowed = !options.fault_subset.empty();
  if (windowed) {
    scope_index.reserve(options.fault_subset.size());
    for (const std::size_t fi : options.fault_subset) {
      if (fi >= faults.size())
        throw std::invalid_argument(
            "run_atpg: fault_subset index out of range");
      if (!scope_index.empty() && fi <= scope_index.back())
        throw std::invalid_argument(
            "run_atpg: fault_subset must be strictly increasing");
      scope_index.push_back(fi);
    }
  }

  // Phase 1: random patterns knock out the easy bulk of the fault list.
  // Skipped when the budget fired before the run even started, so a
  // cancelled run returns without simulating a single pattern.
  std::vector<std::size_t> undetected;
  if (options.random_blocks > 0 && !netw.inputs().empty() &&
      !(budget != nullptr && budget->exhausted())) {
    obs::Span random_span(trace, "atpg.phase.random");
    Rng rng(options.seed);
    std::vector<Pattern> random_patterns;
    random_patterns.reserve(options.random_blocks * 64);
    for (std::size_t b = 0; b < options.random_blocks * 64; ++b) {
      Pattern p(netw.inputs().size());
      for (std::size_t i = 0; i < p.size(); ++i) p[i] = rng.chance(0.5);
      random_patterns.push_back(std::move(p));
    }
    // A windowed run simulates only its own faults: per-fault detection is
    // independent, so each in-window decision equals the full run's.
    std::vector<StuckAtFault> scoped_faults;
    std::span<const StuckAtFault> sim_faults(faults);
    if (windowed) {
      scoped_faults.reserve(scope_index.size());
      for (const std::size_t fi : scope_index)
        scoped_faults.push_back(faults[fi]);
      sim_faults = scoped_faults;
    }
    const std::vector<bool> detected = simulate(sim_faults, random_patterns);
    // Keep only the patterns that contributed; simplest faithful policy:
    // keep all (the paper's experiment is about the SAT instances, not
    // pattern-set compaction).
    for (std::size_t k = 0; k < sim_faults.size(); ++k) {
      const std::size_t i = windowed ? scope_index[k] : k;
      if (detected[k]) {
        result.outcomes[i].status = FaultStatus::kDroppedRandom;
        ++result.num_detected;
      } else {
        undetected.push_back(i);
      }
    }
    if (metrics != nullptr) {
      metrics->counter("atpg.random.patterns").add(random_patterns.size());
      metrics->counter("atpg.random.dropped").add(result.num_detected);
    }
    random_span.note({"dropped", static_cast<std::uint64_t>(
                                     result.num_detected)});
    for (Pattern& p : random_patterns) result.tests.push_back(std::move(p));
  } else if (windowed) {
    undetected = scope_index;
  } else {
    for (std::size_t i = 0; i < faults.size(); ++i) undetected.push_back(i);
  }

  // Phase 2: SAT per remaining fault, with simulation-based dropping.
  // Commits strictly in work-list order so that which fault is kDetected
  // vs kDroppedBySim — and every test_index — is scheduling-independent.
  // The budget is checked between commits: when it fires the loop stops,
  // `interrupted` is set, and every unreached fault stays kUndetermined —
  // the committed prefix is exactly what an uninterrupted run would have
  // produced for those faults.
  std::vector<bool> dropped(faults.size(), false);
  provider.begin(netw, faults, undetected, dropped);
  // Hoisted instrument handles: one registry lookup here, a relaxed add per
  // solve inside the loop (obs/metrics.hpp hot-path discipline).
  obs::Counter* c_solves = nullptr;
  obs::Counter* c_sim_dropped = nullptr;
  obs::Histogram* h_solve_ms = nullptr;
  if (metrics != nullptr) {
    c_solves = &metrics->counter("atpg.sat.solves");
    c_sim_dropped = &metrics->counter("atpg.sim.dropped");
    h_solve_ms =
        &metrics->histogram("atpg.sat.solve_ms", obs::solve_time_bounds_ms());
  }
  obs::Span sat_span(trace, "atpg.phase.sat");
  for (std::size_t idx = 0; idx < undetected.size(); ++idx) {
    if (budget != nullptr && budget->exhausted()) {
      result.interrupted = true;
      break;
    }
    const std::size_t fi = undetected[idx];
    if (dropped[fi]) continue;
    FaultOutcome& outcome = result.outcomes[fi];

    Pattern test;
    outcome = provider.solve(fi, test);
    if (c_solves != nullptr && outcome.engine != SolveEngine::kNone) {
      c_solves->add(1);
      h_solve_ms->observe(outcome.solve_seconds * 1e3);
    }
    if (trace != nullptr)
      trace->event("atpg.solve",
                   {{"fault", static_cast<std::uint64_t>(fi)},
                    {"status", to_string(outcome.status)},
                    {"vars", static_cast<std::uint64_t>(outcome.sat_vars)},
                    {"conflicts", outcome.solver_stats.conflicts},
                    {"ms", outcome.solve_seconds * 1e3}});
    if (outcome.status == FaultStatus::kUnreachable) {
      ++result.num_unreachable;
      continue;
    }

    switch (outcome.status) {
      case FaultStatus::kDetected: {
        if (options.verify_tests && !detects(netw, faults[fi], test))
          throw std::logic_error("run_atpg: generated test fails to detect " +
                                 to_string(netw, faults[fi]));
        outcome.test_index = static_cast<std::int64_t>(result.tests.size());
        result.tests.push_back(test);
        ++result.num_detected;
        if (options.drop_by_simulation) {
          // Simulate this single test against the remaining tail.
          std::vector<StuckAtFault> rest;
          std::vector<std::size_t> rest_index;
          for (std::size_t j = idx + 1; j < undetected.size(); ++j) {
            const std::size_t fj = undetected[j];
            if (!dropped[fj]) {
              rest.push_back(faults[fj]);
              rest_index.push_back(fj);
            }
          }
          const Pattern tests[] = {test};
          const std::vector<bool> hit = simulate(rest, tests);
          for (std::size_t j = 0; j < rest.size(); ++j) {
            if (hit[j]) {
              if (c_sim_dropped != nullptr) c_sim_dropped->add(1);
              dropped[rest_index[j]] = true;
              result.outcomes[rest_index[j]].fault = rest[j];
              result.outcomes[rest_index[j]].status =
                  FaultStatus::kDroppedBySim;
              result.outcomes[rest_index[j]].test_index =
                  static_cast<std::int64_t>(result.tests.size()) - 1;
              ++result.num_detected;
            }
          }
        }
        break;
      }
      case FaultStatus::kUntestable:
        ++result.num_untestable;
        break;
      case FaultStatus::kAborted:
        ++result.num_aborted;
        break;
      default:
        break;
    }
  }

  sat_span.finish();

  // Phase 3: re-attack aborted faults (growing conflict caps, then the
  // structural PODEM fallback) while budget remains.
  if (!result.interrupted) {
    obs::Span escalate_span(trace, "atpg.phase.escalate");
    escalate_aborted(netw, options, faults, provider, simulate, result);
  }

  for (const FaultOutcome& o : result.outcomes)
    if (o.status == FaultStatus::kUndetermined) ++result.num_undetermined;

  if (metrics != nullptr) {
    // End-of-run rollup: one pass over the outcomes, not per-solve traffic.
    sat::SolverStats total;
    for (const FaultOutcome& o : result.outcomes) total += o.solver_stats;
    record_solver_stats(*metrics, total);
    metrics->counter("atpg.tests").add(result.tests.size());
  }
  result.wall_seconds = run_timer.seconds();
  run_span.note({"faults", static_cast<std::uint64_t>(faults.size())});
  run_span.note({"interrupted", result.interrupted});
  return result;
}

}  // namespace detail

namespace {

/// The serial strategy: solve each fault on demand on the pipeline thread.
class SerialProvider final : public detail::SolveProvider {
 public:
  explicit SerialProvider(const sat::SolverConfig& config) : config_(config) {}

  void begin(const net::Network& netw, std::span<const StuckAtFault> faults,
             std::span<const std::size_t> /*work_list*/,
             const std::vector<bool>& /*dropped*/) override {
    netw_ = &netw;
    faults_ = faults;
  }

  FaultOutcome solve(std::size_t fault_index, Pattern& test_out) override {
    return generate_test(*netw_, faults_[fault_index], config_, test_out);
  }

 private:
  sat::SolverConfig config_;
  const net::Network* netw_ = nullptr;
  std::span<const StuckAtFault> faults_;
};

}  // namespace

AtpgResult run_atpg(const net::Network& netw, const AtpgOptions& options) {
  const detail::FsimMetrics fsim_metrics(options.metrics);
  const auto simulate = [&netw, &fsim_metrics](
                            std::span<const StuckAtFault> faults,
                            std::span<const Pattern> patterns) {
    FsimStats stats;
    std::vector<bool> detected = fault_simulate(
        netw, faults, patterns, fsim_metrics.enabled() ? &stats : nullptr);
    fsim_metrics.record(stats);
    return detected;
  };
  if (options.engine == AtpgEngine::kIncremental) {
    detail::IncrementalProvider provider(options);
    return detail::run_atpg_pipeline(netw, options, provider, simulate);
  }
  SerialProvider provider(detail::per_fault_solver_config(options));
  return detail::run_atpg_pipeline(netw, options, provider, simulate);
}

}  // namespace cwatpg::fault
