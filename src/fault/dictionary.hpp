// Fault dictionaries and pass/fail diagnosis.
//
// A fault dictionary precomputes, for every (fault, test) pair, whether
// the test detects the fault. With it, a tester's observed pass/fail
// signature can be matched back to candidate defects — the classical
// downstream consumer of the ATPG flow (and a second, demanding client of
// the fault simulator). Candidates are ranked by Hamming distance between
// the observed signature and each fault's dictionary column, so the exact
// defect scores 0 and near-misses (e.g. the other value on the same net)
// rank next.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fsim.hpp"

namespace cwatpg::fault {

class FaultDictionary {
 public:
  /// Builds the dictionary by full-matrix fault simulation.
  FaultDictionary(const net::Network& net,
                  std::vector<StuckAtFault> faults,
                  std::vector<Pattern> tests);

  std::size_t num_faults() const { return faults_.size(); }
  std::size_t num_tests() const { return tests_.size(); }
  const std::vector<StuckAtFault>& faults() const { return faults_; }
  const std::vector<Pattern>& tests() const { return tests_; }

  /// Does tests()[t] detect faults()[f]?
  bool detects(std::size_t f, std::size_t t) const;

  /// The pass/fail signature a device containing faults()[f] would show.
  std::vector<bool> signature_of(std::size_t f) const;

  /// Faults a test set cannot tell apart (identical signatures) form
  /// equivalence classes; returns one class per signature, each a list of
  /// fault indices (singletons included).
  std::vector<std::vector<std::size_t>> indistinguishable_classes() const;

  /// Diagnosis candidate: fault index + Hamming distance to the observed
  /// signature.
  struct Candidate {
    std::size_t fault_index;
    std::size_t distance;
  };

  /// Ranks all faults by signature distance to `observed_failures`
  /// (observed_failures[t] == true iff the device failed tests()[t]).
  /// Ties are broken by fault index for determinism.
  std::vector<Candidate> diagnose(const std::vector<bool>& observed_failures,
                                  std::size_t max_candidates = 10) const;

 private:
  std::vector<StuckAtFault> faults_;
  std::vector<Pattern> tests_;
  std::vector<std::vector<std::uint64_t>> matrix_;  // [fault][test word]
};

}  // namespace cwatpg::fault
