// Fault-parallel TEGUS: the serial engine's embarrassingly-parallel axis.
//
// ATPG's unit of work is one fault -> one small SAT instance, and the
// paper's whole point is that each instance is easy — so the wall-clock
// win left on the table is running many of them at once. This engine
// shards the collapsed fault list across a work-stealing thread pool
// (util/threadpool.hpp): every worker solves speculatively ahead of the
// commit frontier with a private miter + CNF + CDCL solver, while the
// pipeline thread commits outcomes strictly in collapsed-fault order and
// runs simulation-based dropping exactly as the serial engine does. A test
// found by one worker therefore still drops faults queued on the others:
// the commit updates the shared dropped bitmap, and the dispatcher skips
// dropped faults before handing them to a worker.
//
// Determinism: the result is byte-identical to run_atpg(net, options.base)
// — same statuses, same test patterns, same test_index attribution — for
// ANY thread count, because (a) generate_test is a pure function of
// (net, fault, solver config), (b) commits happen in serial order, and
// (c) the random phase reuses the serial engine's RNG stream untouched.
// The price is bounded speculative waste: at most `lookahead * threads`
// in-flight solves can be discarded per committed dropping test.
//
// Per-worker RNG streams are split from AtpgOptions::seed via
// cwatpg::split_seed and currently drive only steal-victim selection in
// the pool — a correctness-neutral use, which is why determinism survives.
#pragma once

#include <cstddef>
#include <vector>

#include "fault/tegus.hpp"

namespace cwatpg::fault {

/// Options for run_atpg_parallel. `base` is the exact serial configuration
/// being parallelized; the remaining knobs only shape scheduling, never
/// results.
struct ParallelAtpgOptions {
  /// Serial-engine configuration (solver, phases, seed). The parallel run
  /// is byte-identical to run_atpg(net, base).
  AtpgOptions base;
  /// Worker threads; 0 = ThreadPool::default_thread_count().
  std::size_t num_threads = 0;
  /// Speculation window = lookahead * num_threads in-flight solves beyond
  /// the commit frontier. Larger hides commit latency; smaller bounds
  /// wasted solves when fault dropping is hot.
  std::size_t lookahead = 4;
  /// Minimum faults per shard when fault simulation is run on the pool
  /// (the multi-pattern random phase); single-pattern drop simulations
  /// stay on the pipeline thread where they are cheaper than a dispatch.
  std::size_t sim_grain = 512;
};

/// What one worker did during a parallel run. Indexed by pool worker id.
struct WorkerStats {
  std::size_t solved = 0;        ///< SAT instances this worker completed
  std::uint64_t steals = 0;      ///< pool tasks this worker stole
  double solve_seconds = 0.0;    ///< sum of per-instance solve times
  sat::SolverStats solver;       ///< aggregated CDCL counters
};

/// Scheduling telemetry for a parallel run. The per-worker breakdown
/// aggregates into exactly the per-fault SolverStats the Figure-1
/// instrumentation consumes: sum(workers[i].solver) over committed solves
/// equals the sum over AtpgResult::outcomes, plus the discarded ones.
struct ParallelStats {
  std::vector<WorkerStats> workers;  ///< one entry per pool worker
  std::size_t dispatched = 0;  ///< speculative solves handed to the pool
  std::size_t committed = 0;   ///< solves whose outcome entered the result
  std::size_t wasted = 0;      ///< solves discarded (fault dropped first)
  std::size_t max_in_flight = 0;  ///< peak speculative solves in flight
};

/// Runs the full ATPG flow on `net` across a work-stealing thread pool.
///
/// Guarantees byte-identical classification to run_atpg(net, options.base):
/// every FaultOutcome status, test_index, sat_vars/sat_clauses and
/// solver_stats, and every Pattern in AtpgResult::tests, match the serial
/// engine bit for bit (solve_seconds, being wall-clock, differs). When
/// `stats_out` is non-null it receives per-worker and speculation counters.
///
/// Budgets: options.base.budget is honored run-wide. Cancellation and the
/// deadline propagate to every in-flight worker (each per-fault solver
/// polls the shared budget), the commit loop stops at the cutoff, and the
/// run returns a partial AtpgResult with `interrupted` set. Everything
/// committed before the cutoff is byte-identical to the serial engine's
/// prefix under the same commit order; faults past it stay kUndetermined.
/// When no budget condition fires, the full byte-identity guarantee is
/// untouched. The Budget must stay alive until this function returns (all
/// workers are drained before it does).
///
/// Thread-safe: yes for concurrent calls; each call owns its pool.
AtpgResult run_atpg_parallel(const net::Network& net,
                             const ParallelAtpgOptions& options = {},
                             ParallelStats* stats_out = nullptr);

}  // namespace cwatpg::fault
