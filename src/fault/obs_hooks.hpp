// Internal glue between the fault engines and the observability layer
// (src/obs). Included by engine .cpp files only — the public headers keep
// obs types forward-declared so callers that never enable observability
// never see its headers.
//
// Hot-path discipline (see obs/metrics.hpp): registry lookups happen once,
// in these helpers' constructors; per-event cost is a null test plus a few
// relaxed atomic adds.
#pragma once

#include <cstdint>

#include "fault/fsim.hpp"
#include "obs/metrics.hpp"
#include "sat/solver.hpp"

namespace cwatpg::fault::detail {

/// Hoisted fsim.* counter handles for the simulate hooks both engines
/// thread through the pipeline. Null (and record() a no-op) when metrics
/// are disabled.
struct FsimMetrics {
  obs::Counter* calls = nullptr;
  obs::Counter* faults = nullptr;
  obs::Counter* patterns = nullptr;
  obs::Counter* resims = nullptr;
  obs::Counter* node_evals = nullptr;
  obs::Counter* detected = nullptr;

  explicit FsimMetrics(obs::MetricsRegistry* metrics) {
    if (metrics == nullptr) return;
    calls = &metrics->counter("fsim.calls");
    faults = &metrics->counter("fsim.faults");
    patterns = &metrics->counter("fsim.patterns");
    resims = &metrics->counter("fsim.resims");
    node_evals = &metrics->counter("fsim.node_evals");
    detected = &metrics->counter("fsim.detected");
  }

  bool enabled() const { return calls != nullptr; }

  void record(const FsimStats& s) const {
    if (!enabled()) return;
    calls->add(s.calls);
    faults->add(s.faults);
    patterns->add(s.patterns);
    resims->add(s.resims);
    node_evals->add(s.node_evals);
    detected->add(s.detected);
  }
};

/// Rolls an (already summed) SolverStats into the sat.* counters.
inline void record_solver_stats(obs::MetricsRegistry& metrics,
                                const sat::SolverStats& s) {
  metrics.counter("sat.decisions").add(s.decisions);
  metrics.counter("sat.propagations").add(s.propagations);
  metrics.counter("sat.conflicts").add(s.conflicts);
  metrics.counter("sat.restarts").add(s.restarts);
  metrics.counter("sat.learnt_clauses").add(s.learnt_clauses);
  metrics.counter("sat.learnt_literals").add(s.learnt_literals);
  metrics.counter("sat.reused_implications").add(s.reused_implications);
}

}  // namespace cwatpg::fault::detail
