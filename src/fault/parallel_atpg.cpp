#include "fault/parallel_atpg.hpp"

#include <cassert>
#include <condition_variable>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>

#include "fault/incremental.hpp"
#include "fault/obs_hooks.hpp"
#include "util/rng.hpp"
#include "util/threadpool.hpp"

namespace cwatpg::fault {
namespace {

/// One speculative solve in flight. Written by exactly one worker task,
/// read by the pipeline thread after `done` flips under the mutex.
struct Slot {
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  FaultOutcome outcome;
  Pattern test;
  std::exception_ptr error;
};

/// Speculative work-stealing strategy for the shared TEGUS pipeline.
///
/// The pipeline thread (the only caller of solve()) keeps a window of
/// up to `window_` solves in flight ahead of the commit frontier. Faults
/// are dispatched in work-list order, skipping any already dropped at
/// dispatch time; because the dropped bitmap is monotone and written only
/// by the pipeline thread, the skip can never diverge from the pipeline's
/// own skip — a fault observed dropped stays dropped. Entries dispatched
/// before their dropping test committed are simply never asked for; their
/// slots are discarded (counted as waste) and the shared_ptr keeps the
/// storage alive until the worker task finishes harmlessly.
class SpeculativeProvider final : public detail::SolveProvider {
 public:
  SpeculativeProvider(ThreadPool& pool, const sat::SolverConfig& config,
                      std::size_t window, ParallelStats& stats)
      : pool_(pool),
        config_(config),
        window_(window == 0 ? 1 : window),
        stats_(stats) {}

  void begin(const net::Network& netw, std::span<const StuckAtFault> faults,
             std::span<const std::size_t> work_list,
             const std::vector<bool>& dropped) override {
    netw_ = &netw;
    faults_ = faults;
    work_list_ = work_list;
    dropped_ = &dropped;
    cursor_ = 0;
  }

  FaultOutcome solve(std::size_t fault_index, Pattern& test_out) override {
    // Discard slots whose faults were dropped after dispatch: the pipeline
    // commits in work-list order, so anything in flight ahead of
    // `fault_index` will never be requested.
    while (!in_flight_.empty() && in_flight_.front().fault != fault_index) {
      ++stats_.wasted;
      in_flight_.pop_front();
    }
    top_up();
    assert(!in_flight_.empty() && in_flight_.front().fault == fault_index &&
           "pipeline requested a fault outside dispatch order");
    const std::shared_ptr<Slot> slot = in_flight_.front().slot;
    in_flight_.pop_front();
    top_up();  // keep workers fed while we block on this slot

    std::unique_lock<std::mutex> lock(slot->mutex);
    slot->cv.wait(lock, [&] { return slot->done; });
    ++stats_.committed;
    if (slot->error) std::rethrow_exception(slot->error);
    test_out = std::move(slot->test);
    return slot->outcome;
  }

 private:
  struct InFlight {
    std::size_t fault;
    std::shared_ptr<Slot> slot;
  };

  /// Dispatches work-list entries (skipping currently-dropped faults)
  /// until the speculation window is full or the list is exhausted.
  void top_up() {
    while (in_flight_.size() < window_ && cursor_ < work_list_.size()) {
      const std::size_t fi = work_list_[cursor_++];
      if ((*dropped_)[fi]) continue;  // monotone: will never be requested
      auto slot = std::make_shared<Slot>();
      in_flight_.push_back({fi, slot});
      ++stats_.dispatched;
      if (in_flight_.size() > stats_.max_in_flight)
        stats_.max_in_flight = in_flight_.size();
      const StuckAtFault fault = faults_[fi];
      const net::Network* netw = netw_;
      const sat::SolverConfig config = config_;
      ParallelStats* stats = &stats_;
      pool_.submit([slot, fault, netw, config, stats] {
        FaultOutcome outcome;
        Pattern test;
        std::exception_ptr error;
        try {
          outcome = generate_test(*netw, fault, config, test);
        } catch (...) {
          error = std::current_exception();
        }
        // Worker stats are indexed by pool worker id; each entry is only
        // ever touched by its own worker, so no lock is needed.
        const std::size_t w = ThreadPool::worker_index();
        if (w != ThreadPool::kNotAWorker && w < stats->workers.size()) {
          WorkerStats& ws = stats->workers[w];
          ++ws.solved;
          ws.solve_seconds += outcome.solve_seconds;
          ws.solver += outcome.solver_stats;
        }
        std::lock_guard<std::mutex> lock(slot->mutex);
        slot->outcome = std::move(outcome);
        slot->test = std::move(test);
        slot->error = error;
        slot->done = true;
        slot->cv.notify_one();
      });
    }
  }

  ThreadPool& pool_;
  sat::SolverConfig config_;
  std::size_t window_;
  ParallelStats& stats_;

  const net::Network* netw_ = nullptr;
  std::span<const StuckAtFault> faults_;
  std::span<const std::size_t> work_list_;
  const std::vector<bool>* dropped_ = nullptr;
  std::size_t cursor_ = 0;
  std::deque<InFlight> in_flight_;
};

}  // namespace

AtpgResult run_atpg_parallel(const net::Network& netw,
                             const ParallelAtpgOptions& options,
                             ParallelStats* stats_out) {
  // `stats` is declared before `pool` deliberately: if the pipeline throws,
  // in-flight worker tasks still write into `stats`, so the pool (whose
  // destructor drains and joins them) must be destroyed first.
  ParallelStats stats;
  ThreadPool pool(options.num_threads, split_seed(options.base.seed, 1));
  stats.workers.resize(pool.size());

  // Fault simulation hook: shard multi-pattern simulations (the random
  // phase) across the pool; leave single-pattern drop simulations on the
  // pipeline thread, where they are cheaper than a round-trip dispatch.
  // Per-fault detection is independent of sharding, so results equal
  // fault_simulate's exactly.
  const std::size_t grain = options.sim_grain == 0 ? 1 : options.sim_grain;
  const detail::FsimMetrics fsim_metrics(options.base.metrics);
  auto simulate = [&netw, &pool, grain, &fsim_metrics](
                      std::span<const StuckAtFault> faults,
                      std::span<const Pattern> patterns) {
    if (pool.size() <= 1 || patterns.size() < 64 ||
        faults.size() < 2 * grain) {
      FsimStats fs;
      std::vector<bool> detected = fault_simulate(
          netw, faults, patterns, fsim_metrics.enabled() ? &fs : nullptr);
      fsim_metrics.record(fs);
      return detected;
    }
    std::vector<bool> detected(faults.size(), false);
    const std::size_t chunks = (faults.size() + grain - 1) / grain;
    std::vector<std::vector<bool>> shard(chunks);
    pool.parallel_for(0, faults.size(), grain,
                      [&](std::size_t lo, std::size_t hi) {
                        // Counter handles are atomic, so each shard task may
                        // record its own stats concurrently.
                        FsimStats fs;
                        shard[lo / grain] = fault_simulate(
                            netw, faults.subspan(lo, hi - lo), patterns,
                            fsim_metrics.enabled() ? &fs : nullptr);
                        fsim_metrics.record(fs);
                      });
    for (std::size_t c = 0; c < chunks; ++c)
      for (std::size_t k = 0; k < shard[c].size(); ++k)
        if (shard[c][k]) detected[c * grain + k] = true;
    return detected;
  };

  AtpgResult result;
  if (options.base.engine == AtpgEngine::kIncremental) {
    // One shared prebuilt encoding, one miter clone per query stream
    // (defaulting to one per worker). Streams run ahead unconditionally;
    // the pipeline commits in order, exactly like the speculative path.
    detail::ParallelIncrementalProvider provider(pool, options.base, stats);
    result = detail::run_atpg_pipeline(netw, options.base, provider, simulate);
    pool.wait_idle();  // drain the stream tasks before folding their counters
    provider.finalize();
  } else {
    // per_fault_solver_config threads the run budget into every worker's
    // solver: when the deadline fires or the caller cancels, all in-flight
    // speculative solves observe it at their next budget poll and return
    // kUnknown; queued-but-unstarted ones fast-fail before building a miter.
    // That is how cancellation propagates — the pool itself is never torn
    // down mid-task, so the committed prefix stays deterministic.
    SpeculativeProvider provider(pool,
                                 detail::per_fault_solver_config(options.base),
                                 options.lookahead * pool.size(), stats);
    result = detail::run_atpg_pipeline(netw, options.base, provider, simulate);
    pool.wait_idle();  // drain discarded speculative solves before reporting
  }

  // Steal counts come from the pool's own telemetry: exact now that every
  // worker is idle.
  const std::vector<ThreadPool::WorkerTelemetry> telemetry = pool.telemetry();
  for (std::size_t w = 0; w < stats.workers.size() && w < telemetry.size();
       ++w)
    stats.workers[w].steals = telemetry[w].steals;

  if (options.base.metrics != nullptr) {
    obs::MetricsRegistry& m = *options.base.metrics;
    m.counter("parallel.dispatched").add(stats.dispatched);
    m.counter("parallel.committed").add(stats.committed);
    m.counter("parallel.wasted").add(stats.wasted);
    m.gauge("parallel.max_in_flight")
        .max_in(static_cast<double>(stats.max_in_flight));
    m.gauge("parallel.workers").max_in(static_cast<double>(pool.size()));
    std::uint64_t steals = 0;
    for (const WorkerStats& ws : stats.workers) steals += ws.steals;
    m.counter("parallel.steals").add(steals);
  }

  if (stats_out != nullptr) *stats_out = std::move(stats);
  return result;
}

}  // namespace cwatpg::fault
