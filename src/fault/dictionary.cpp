#include "fault/dictionary.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <stdexcept>

namespace cwatpg::fault {

FaultDictionary::FaultDictionary(const net::Network& netw,
                                 std::vector<StuckAtFault> faults,
                                 std::vector<Pattern> tests)
    : faults_(std::move(faults)), tests_(std::move(tests)) {
  matrix_ = detection_matrix(netw, faults_, tests_);
}

bool FaultDictionary::detects(std::size_t f, std::size_t t) const {
  if (f >= faults_.size() || t >= tests_.size())
    throw std::out_of_range("FaultDictionary::detects");
  return (matrix_[f][t / 64] >> (t % 64)) & 1;
}

std::vector<bool> FaultDictionary::signature_of(std::size_t f) const {
  std::vector<bool> signature(tests_.size());
  for (std::size_t t = 0; t < tests_.size(); ++t)
    signature[t] = detects(f, t);
  return signature;
}

std::vector<std::vector<std::size_t>>
FaultDictionary::indistinguishable_classes() const {
  std::map<std::vector<std::uint64_t>, std::vector<std::size_t>> by_signature;
  for (std::size_t f = 0; f < faults_.size(); ++f)
    by_signature[matrix_[f]].push_back(f);
  std::vector<std::vector<std::size_t>> classes;
  classes.reserve(by_signature.size());
  for (auto& [signature, members] : by_signature)
    classes.push_back(std::move(members));
  return classes;
}

std::vector<FaultDictionary::Candidate> FaultDictionary::diagnose(
    const std::vector<bool>& observed_failures,
    std::size_t max_candidates) const {
  if (observed_failures.size() != tests_.size())
    throw std::invalid_argument("diagnose: signature width mismatch");
  const std::size_t words = (tests_.size() + 63) / 64;
  std::vector<std::uint64_t> observed(words, 0);
  for (std::size_t t = 0; t < tests_.size(); ++t)
    if (observed_failures[t]) observed[t / 64] |= 1ULL << (t % 64);

  std::vector<Candidate> ranked;
  ranked.reserve(faults_.size());
  for (std::size_t f = 0; f < faults_.size(); ++f) {
    std::size_t distance = 0;
    for (std::size_t w = 0; w < words; ++w)
      distance += static_cast<std::size_t>(
          std::popcount(matrix_[f][w] ^ observed[w]));
    ranked.push_back({f, distance});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.fault_index < b.fault_index;
            });
  if (ranked.size() > max_candidates) ranked.resize(max_candidates);
  return ranked;
}

}  // namespace cwatpg::fault
