// SAT-based ATPG engine in the style of TEGUS (Stephan et al. [24]).
//
// Flow per circuit: collapse the fault list; optionally knock out the bulk
// of the faults with random patterns; for each remaining fault, build
// C_psi^ATPG (Figure 3), encode it as CIRCUIT-SAT (Figure 2), strengthen
// with the excitation unit clause (the good value of the faulted net must
// be the complement of the stuck value), and hand it to the CDCL solver.
// Every generated test is verified by fault simulation and used to drop
// still-undetected faults.
//
// The engine records, per SAT instance, the variable count and the solve
// time — exactly the two axes of the paper's Figure 1 scatter.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/atpg_circuit.hpp"
#include "fault/fsim.hpp"
#include "sat/solver.hpp"

namespace cwatpg::fault {

enum class FaultStatus : std::uint8_t {
  kDetected,       ///< SAT instance satisfiable; test extracted & verified
  kUntestable,     ///< SAT instance unsatisfiable (redundant fault)
  kDroppedBySim,   ///< detected by an earlier test via fault simulation
  kDroppedRandom,  ///< detected in the random-pattern pre-phase
  kAborted,        ///< solver hit its conflict limit
  kUnreachable,    ///< fault site reaches no primary output
};

struct FaultOutcome {
  StuckAtFault fault;
  FaultStatus status = FaultStatus::kAborted;
  /// Index into AtpgResult::tests when status == kDetected, else -1.
  std::int64_t test_index = -1;
  /// SAT instance shape and effort (only when an instance was solved).
  std::size_t sat_vars = 0;
  std::size_t sat_clauses = 0;
  double solve_seconds = 0.0;
  sat::SolverStats solver_stats;
};

struct AtpgOptions {
  sat::SolverConfig solver;
  /// Collapse the fault list before test generation.
  bool collapse_faults = true;
  /// 64-pattern random blocks applied before SAT (0 disables).
  std::size_t random_blocks = 4;
  /// Drop undetected faults by simulating each new test.
  bool drop_by_simulation = true;
  /// Verify each extracted test by fault simulation (throws
  /// std::logic_error on mismatch — an engine bug, not a data error).
  bool verify_tests = true;
  std::uint64_t seed = 0x7e57ab1e;
};

struct AtpgResult {
  std::vector<FaultOutcome> outcomes;  ///< one per (collapsed) fault
  std::vector<Pattern> tests;          ///< every pattern that detected something
  std::size_t num_detected = 0;        ///< kDetected + both dropped kinds
  std::size_t num_untestable = 0;
  std::size_t num_aborted = 0;
  std::size_t num_unreachable = 0;

  /// Fault efficiency: (detected + proven untestable + unreachable) / all.
  double fault_efficiency() const;
  /// Fault coverage: detected / all.
  double fault_coverage() const;
};

/// Runs the full ATPG flow on `net`.
AtpgResult run_atpg(const net::Network& net, const AtpgOptions& options = {});

/// Generates a test for a single fault (no dropping, no random phase).
/// Returns the outcome plus, when detected, the pattern through `test_out`.
FaultOutcome generate_test(const net::Network& net, const StuckAtFault& fault,
                           const sat::SolverConfig& solver, Pattern& test_out);

/// Extracts a full-circuit input pattern from a satisfied miter model:
/// support PIs take their model value, all other PIs `fill_value`.
Pattern extract_test(const net::Network& net, const AtpgCircuit& atpg,
                     const std::vector<bool>& model, bool fill_value = false);

}  // namespace cwatpg::fault
