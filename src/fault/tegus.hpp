// SAT-based ATPG engine in the style of TEGUS (Stephan et al. [24]).
//
// Flow per circuit: collapse the fault list; optionally knock out the bulk
// of the faults with random patterns; for each remaining fault, build
// C_psi^ATPG (Figure 3), encode it as CIRCUIT-SAT (Figure 2), strengthen
// with the excitation unit clause (the good value of the faulted net must
// be the complement of the stuck value), and hand it to the CDCL solver.
// Every generated test is verified by fault simulation and used to drop
// still-undetected faults.
//
// The engine records, per SAT instance, the variable count and the solve
// time — exactly the two axes of the paper's Figure 1 scatter.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "fault/atpg_circuit.hpp"
#include "fault/fsim.hpp"
#include "sat/solver.hpp"

namespace cwatpg::obs {
class MetricsRegistry;
class EventSink;
}  // namespace cwatpg::obs

namespace cwatpg::fault {

class SharedMiterCnf;  // fault/incremental.hpp

enum class FaultStatus : std::uint8_t {
  kDetected,       ///< SAT instance satisfiable; test extracted & verified
  kUntestable,     ///< SAT instance unsatisfiable (redundant fault)
  kDroppedBySim,   ///< detected by an earlier test via fault simulation
  kDroppedRandom,  ///< detected in the random-pattern pre-phase
  kAborted,        ///< every engine gave up within its resource budget
  kUnreachable,    ///< fault site reaches no primary output
  kUndetermined,   ///< never processed (run interrupted before its turn)
};

/// Which engine produced a fault's final classification. Distinguishes
/// "the first SAT pass got it" from "the escalation ladder had to re-attack
/// with a bigger conflict budget" from "structural PODEM rescued it".
enum class SolveEngine : std::uint8_t {
  kNone,         ///< no per-fault engine ran (random/sim drop, unprocessed)
  kSat,          ///< first-pass CDCL solve
  kSatRetry,     ///< escalation ladder: CDCL with a grown conflict cap
  kPodem,        ///< structural PODEM fallback (last resort)
  kIncremental,  ///< incremental query against the shared miter
};

/// "detected" / "untestable" / "dropped-sim" / "dropped-random" /
/// "aborted" / "unreachable" / "undetermined" — stable names used by
/// RunReport JSON keys; renaming one is a report schema change.
const char* to_string(FaultStatus status);
/// "none" / "sat" / "sat-retry" / "podem" / "incremental" — same
/// stability contract.
const char* to_string(SolveEngine engine);

/// Which phase-2 solve strategy run_atpg / run_atpg_parallel plug into the
/// pipeline. Classification is engine-independent (same Detected /
/// Untestable sets); what changes is how the work is done — one fresh CNF
/// per fault vs. incremental queries against one shared miter — and
/// therefore the per-fault stats, test patterns and wall-clock.
enum class AtpgEngine : std::uint8_t {
  kPerFault,     ///< fresh miter + CNF + solver per fault (TEGUS proper)
  kIncremental,  ///< shared select-instrumented miter, assumption queries
};

/// "per-fault" / "incremental" — the --engine knob's stable spellings.
const char* to_string(AtpgEngine engine);

struct FaultOutcome {
  StuckAtFault fault;
  /// kUndetermined until an engine classifies the fault, so an entry an
  /// interrupted run never reached is distinguishable from a genuine
  /// solver abort (kAborted).
  FaultStatus status = FaultStatus::kUndetermined;
  /// Engine that produced `status` (kNone for drops and kUndetermined).
  SolveEngine engine = SolveEngine::kNone;
  /// Per-fault solve attempts: 1 for a first-pass classification, +1 per
  /// escalation-ladder round, +1 for the PODEM fallback. 0 when no engine
  /// ran on this fault.
  std::uint32_t attempts = 0;
  /// Index into AtpgResult::tests when the fault has an attributed test
  /// (status kDetected or kDroppedBySim), else -1. Prefer has_test() /
  /// test() below: test_index is signed (to encode "none") while
  /// AtpgResult::tests is indexed by size_t, and comparing the two
  /// directly invites signed/unsigned bugs.
  std::int64_t test_index = -1;
  /// SAT instance shape and effort (only when an instance was solved).
  std::size_t sat_vars = 0;
  std::size_t sat_clauses = 0;
  double solve_seconds = 0.0;
  sat::SolverStats solver_stats;

  /// True iff a concrete test pattern is attributed to this fault
  /// (kDetected and kDroppedBySim; kDroppedRandom is covered by the random
  /// block as a whole, not one attributed pattern).
  bool has_test() const { return test_index >= 0; }
  /// test_index as a size_t ready to index AtpgResult::tests.
  /// Precondition: has_test().
  std::size_t test() const {
    assert(has_test());
    return static_cast<std::size_t>(test_index);
  }
};

struct AtpgOptions {
  sat::SolverConfig solver;
  /// Collapse the fault list before test generation.
  bool collapse_faults = true;
  /// 64-pattern random blocks applied before SAT (0 disables).
  std::size_t random_blocks = 4;
  /// Drop undetected faults by simulating each new test.
  bool drop_by_simulation = true;
  /// Verify each extracted test by fault simulation (throws
  /// std::logic_error on mismatch — an engine bug, not a data error).
  bool verify_tests = true;
  std::uint64_t seed = 0x7e57ab1e;

  /// Optional run-level budget: wall-clock deadline and/or cooperative
  /// cancellation for the WHOLE run, plus hard per-solve effort ceilings.
  /// Not owned; must stay alive until the run returns. When it fires the
  /// engine stops early and returns a partial but internally consistent
  /// AtpgResult with `interrupted` set: every fault processed before the
  /// cutoff keeps its classification, every unreached fault stays
  /// kUndetermined, and the counters match the outcomes. The same pointer
  /// is threaded into every per-fault CDCL solve (and honored by
  /// run_atpg_parallel's in-flight workers), so even a single oversized
  /// instance cannot hold the run past its deadline for long.
  const Budget* budget = nullptr;

  /// Escalation ladder for aborted faults: after the main pass, each
  /// kAborted fault is re-attacked up to this many times, multiplying
  /// solver.max_conflicts by escalation_growth per round (skipped when
  /// solver.max_conflicts is unlimited — re-running the identical search
  /// cannot help). 0 disables the SAT rounds.
  std::size_t escalation_rounds = 3;
  /// Geometric growth factor for the ladder's conflict cap.
  std::uint64_t escalation_growth = 4;
  /// After the SAT rounds, fall back to the structural PODEM engine
  /// (fault/podem.hpp) as a last resort — a different search (5-valued
  /// D-calculus over PI assignments) that succeeds on some instances CDCL
  /// abandons, and vice versa.
  bool podem_fallback = true;
  /// Backtrack cap for the PODEM fallback.
  std::uint64_t podem_max_backtracks = 20'000;

  /// Optional shard window: indices into the (collapsed) fault list this
  /// run is responsible for, strictly increasing. Empty = all faults (the
  /// default, and byte-identical to the pre-window behavior). Faults
  /// outside the window are never simulated, solved or escalated and stay
  /// kUndetermined; in-window faults classify exactly as they would in a
  /// full run with drop_by_simulation matching (random-phase drops and
  /// per-fault solves are window-independent — this is what lets the
  /// cluster coordinator shard a job by fault position and still merge a
  /// single-node-identical result). An out-of-range or non-increasing
  /// index throws std::invalid_argument.
  std::vector<std::size_t> fault_subset;

  /// Phase-2 solve engine. kPerFault is the default (and the paper's
  /// Figure-1 instrument: one SAT instance per fault). kIncremental routes
  /// phase 2 through the shared select-instrumented miter
  /// (fault/incremental.hpp): same classification, learnt clauses reused
  /// across faults. The escalation ladder is engine-independent — an
  /// incremental abort gets one in-miter retry with a grown cap, then
  /// falls back to the fresh-CNF rounds and PODEM like any other abort.
  AtpgEngine engine = AtpgEngine::kPerFault;
  /// Number of independent incremental query streams (kIncremental only).
  /// 0 = auto: 1 in run_atpg, the pool size in run_atpg_parallel. Streams
  /// determine which faults share a solver session, so serial and parallel
  /// runs are byte-identical exactly when their stream counts match — pin
  /// this to compare them.
  std::size_t incremental_streams = 0;
  /// Optional prebuilt shared-miter encoding (kIncremental only) — how the
  /// service reuses the registry-pinned miter instead of re-encoding per
  /// job. Must have been built from a structurally identical network
  /// (std::invalid_argument otherwise). Null = build one for the run.
  std::shared_ptr<const SharedMiterCnf> prebuilt_miter;

  /// Optional observability hooks (src/obs). Not owned; must outlive the
  /// run. When `metrics` is set the engine records counters and histograms
  /// (atpg.*, sat.*, fsim.* — see ARCHITECTURE.md "Observability") into
  /// it; when `trace` is set it emits structured span/solve events. Both
  /// default to nullptr, in which case every instrumentation site is a
  /// single pointer test — the zero-overhead-when-disabled contract.
  /// Neither hook ever influences classification: results are bit-
  /// identical with hooks on, off, or any mix.
  obs::MetricsRegistry* metrics = nullptr;
  obs::EventSink* trace = nullptr;
};

struct AtpgResult {
  std::vector<FaultOutcome> outcomes;  ///< one per (collapsed) fault
  std::vector<Pattern> tests;          ///< every pattern that detected something
  std::size_t num_detected = 0;        ///< kDetected + both dropped kinds
  std::size_t num_untestable = 0;
  std::size_t num_aborted = 0;
  std::size_t num_unreachable = 0;
  std::size_t num_undetermined = 0;  ///< unprocessed (interrupted run)
  /// Faults the main pass aborted that the escalation ladder (SAT retry or
  /// PODEM fallback) later resolved to kDetected/kUntestable, plus aborted
  /// faults dropped by a ladder-found test.
  std::size_t num_escalated = 0;
  /// True iff the run budget (deadline/cancellation) fired before every
  /// fault was processed. The result is still internally consistent —
  /// counters match outcomes, every test_index is valid — just partial.
  bool interrupted = false;
  /// Whole-run wall-clock, stamped by the pipeline on return — what
  /// obs::build_run_report() uses unless the caller timed the run itself.
  double wall_seconds = 0.0;

  /// Fault efficiency: (detected + proven untestable + unreachable) / all.
  double fault_efficiency() const;
  /// Fault coverage: detected / all.
  double fault_coverage() const;
};

/// Runs the full ATPG flow on `net`.
///
/// Thread-safe: yes for concurrent calls on distinct (or even the same)
/// `net` — the flow allocates all mutable state locally and Network is
/// immutable after construction. For a multithreaded flow over ONE fault
/// list see fault/parallel_atpg.hpp, which produces byte-identical results.
AtpgResult run_atpg(const net::Network& net, const AtpgOptions& options = {});

/// Generates a test for a single fault (no dropping, no random phase).
/// Returns the outcome plus, when detected, the pattern through `test_out`.
///
/// Thread-safe: yes; this is the per-fault kernel the parallel engine runs
/// concurrently on pool workers. Each call builds a private miter, CNF and
/// CDCL solver; the outcome is a pure function of (net, fault, solver), so
/// concurrent and serial invocations return bit-identical results.
FaultOutcome generate_test(const net::Network& net, const StuckAtFault& fault,
                           const sat::SolverConfig& solver, Pattern& test_out);

namespace detail {

/// Phase-2 solve strategy plugged into the shared TEGUS pipeline skeleton.
/// run_atpg uses a trivial on-demand strategy; run_atpg_parallel plugs in a
/// speculative work-stealing one. The contract that keeps every strategy
/// byte-identical to the serial engine:
///
///   * begin() is called once, after the random phase, with the collapsed
///     fault list, the phase-2 work list (indices into `faults`, in commit
///     order) and the pipeline's dropped bitmap.
///   * solve() is then called exactly once per work-list entry that is not
///     dropped at its turn, in work-list order, from the pipeline thread —
///     except that an AtpgOptions::budget firing stops the calls early
///     (the pipeline then never asks for the remaining entries; a
///     speculative strategy must tolerate abandoned in-flight work).
///   * `dropped` is written only by the pipeline thread between solve()
///     calls and is monotone (bits only turn on), so a strategy may read
///     it from the pipeline thread without locking; a fault observed
///     dropped will never be asked for.
///   * solve() must return exactly what generate_test() returns for that
///     fault — strategies may reorder or overlap *computation*, never
///     change per-fault results.
class SolveProvider {
 public:
  virtual ~SolveProvider() = default;
  virtual void begin(const net::Network& net,
                     std::span<const StuckAtFault> faults,
                     std::span<const std::size_t> work_list,
                     const std::vector<bool>& dropped) {
    (void)net;
    (void)faults;
    (void)work_list;
    (void)dropped;
  }
  virtual FaultOutcome solve(std::size_t fault_index, Pattern& test_out) = 0;

  /// Phase-3 hook: consulted once per still-kAborted fault, in fault
  /// order, BEFORE the built-in escalation ladder. Returning an outcome
  /// supplies that fault's final escalated classification wholesale (plus
  /// the test through `test_out` when detected) and suppresses the ladder
  /// for it; returning nullopt (the default) runs the built-in ladder.
  /// The pipeline still does all the bookkeeping — verification, test
  /// commitment, drop-by-simulation against the remaining aborted tail —
  /// so a provider that replays recorded per-fault escalations (the
  /// cluster's merge) reproduces the serial engine's result exactly.
  virtual std::optional<FaultOutcome> escalate(std::size_t fault_index,
                                               Pattern& test_out) {
    (void)fault_index;
    (void)test_out;
    return std::nullopt;
  }
};

/// The per-fault solver configuration an engine hands to generate_test:
/// options.solver with the run-level AtpgOptions::budget threaded in
/// (unless the solver config already carries its own budget), so every
/// in-flight CDCL solve — serial or on a pool worker — observes the run's
/// deadline and cancellation token.
sat::SolverConfig per_fault_solver_config(const AtpgOptions& options);

/// Fault-simulation hook: same signature/semantics as fault_simulate with
/// the network bound. The parallel engine substitutes a sharded version;
/// results must equal fault_simulate's (per-fault detection is independent,
/// so sharding cannot change them).
using SimulateFn = std::function<std::vector<bool>(
    std::span<const StuckAtFault>, std::span<const Pattern>)>;

/// The TEGUS skeleton shared by run_atpg and run_atpg_parallel: collapse,
/// random phase (seeded from options.seed), then per-fault solves through
/// `provider` with simulation-based dropping through `simulate`. The
/// classification it produces is a pure function of (net, options) —
/// provider scheduling can never leak into the result.
AtpgResult run_atpg_pipeline(const net::Network& net,
                             const AtpgOptions& options,
                             SolveProvider& provider,
                             const SimulateFn& simulate);

}  // namespace detail

/// Extracts a full-circuit input pattern from a satisfied miter model:
/// support PIs take their model value, all other PIs `fill_value`.
Pattern extract_test(const net::Network& net, const AtpgCircuit& atpg,
                     const std::vector<bool>& model, bool fill_value = false);

}  // namespace cwatpg::fault
