#include "fault/testability.hpp"

#include <algorithm>

namespace cwatpg::fault {
namespace {

constexpr std::uint32_t kInf = Scoap::kUnreachable;

std::uint32_t add_sat(std::uint32_t a, std::uint32_t b) {
  if (a == kInf || b == kInf) return kInf;
  return a + b;
}

}  // namespace

Scoap compute_scoap(const net::Network& netw) {
  using net::GateType;
  const std::size_t n = netw.node_count();
  Scoap s;
  s.cc0.assign(n, kInf);
  s.cc1.assign(n, kInf);
  s.observability.assign(n, kInf);

  // Controllability: forward topological sweep.
  for (net::NodeId v = 0; v < n; ++v) {
    const auto& node = netw.node(v);
    const auto& fis = node.fanins;
    switch (node.type) {
      case GateType::kInput:
        s.cc0[v] = s.cc1[v] = 1;
        break;
      case GateType::kConst0:
        s.cc0[v] = 0;
        break;
      case GateType::kConst1:
        s.cc1[v] = 0;
        break;
      case GateType::kOutput:
      case GateType::kBuf:
        s.cc0[v] = add_sat(s.cc0[fis[0]], 1);
        s.cc1[v] = add_sat(s.cc1[fis[0]], 1);
        break;
      case GateType::kNot:
        s.cc0[v] = add_sat(s.cc1[fis[0]], 1);
        s.cc1[v] = add_sat(s.cc0[fis[0]], 1);
        break;
      case GateType::kAnd:
      case GateType::kNand:
      case GateType::kOr:
      case GateType::kNor: {
        const bool and_like =
            node.type == GateType::kAnd || node.type == GateType::kNand;
        // "All inputs at non-controlling" vs "one input at controlling".
        std::uint32_t all = 0, one = kInf;
        for (net::NodeId fi : fis) {
          all = add_sat(all, and_like ? s.cc1[fi] : s.cc0[fi]);
          one = std::min(one, and_like ? s.cc0[fi] : s.cc1[fi]);
        }
        const std::uint32_t out_ctl = add_sat(one, 1);   // controlled value
        const std::uint32_t out_all = add_sat(all, 1);   // all-non-controlling
        const bool inverted = node.type == GateType::kNand ||
                              node.type == GateType::kNor;
        std::uint32_t c_low = and_like ? out_ctl : out_all;
        std::uint32_t c_high = and_like ? out_all : out_ctl;
        if (inverted) std::swap(c_low, c_high);
        s.cc0[v] = c_low;
        s.cc1[v] = c_high;
        break;
      }
      case GateType::kXor:
      case GateType::kXnor: {
        // Fold pairwise: parity-0 cost / parity-1 cost.
        std::uint32_t p0 = s.cc0[fis[0]];
        std::uint32_t p1 = s.cc1[fis[0]];
        for (std::size_t i = 1; i < fis.size(); ++i) {
          const std::uint32_t q0 = s.cc0[fis[i]];
          const std::uint32_t q1 = s.cc1[fis[i]];
          const std::uint32_t n0 =
              std::min(add_sat(p0, q0), add_sat(p1, q1));
          const std::uint32_t n1 =
              std::min(add_sat(p0, q1), add_sat(p1, q0));
          p0 = n0;
          p1 = n1;
        }
        if (node.type == GateType::kXnor) std::swap(p0, p1);
        s.cc0[v] = add_sat(p0, 1);
        s.cc1[v] = add_sat(p1, 1);
        break;
      }
    }
  }

  // Observability: backward sweep (ids reverse-topological).
  for (net::NodeId po : netw.outputs()) s.observability[po] = 0;
  for (net::NodeId v = n; v-- > 0;) {
    const auto& node = netw.node(v);
    if (node.type == GateType::kInput || node.type == GateType::kConst0 ||
        node.type == GateType::kConst1) {
      // Sources only receive observability from consumers (below).
    }
    const std::uint32_t co_out = s.observability[v];
    if (co_out == kInf && node.type != GateType::kOutput) {
      // Not (yet) observable; consumers may still lower it — but since we
      // sweep in reverse topological order all consumers were processed.
    }
    const auto& fis = node.fanins;
    for (std::size_t p = 0; p < fis.size(); ++p) {
      std::uint32_t through = kInf;
      switch (node.type) {
        case GateType::kOutput:
        case GateType::kBuf:
        case GateType::kNot:
          through = add_sat(co_out, node.type == GateType::kOutput ? 0 : 1);
          break;
        case GateType::kAnd:
        case GateType::kNand:
        case GateType::kOr:
        case GateType::kNor: {
          const bool and_like =
              node.type == GateType::kAnd || node.type == GateType::kNand;
          std::uint32_t side = 0;
          for (std::size_t q = 0; q < fis.size(); ++q) {
            if (q == p) continue;
            side = add_sat(side, and_like ? s.cc1[fis[q]] : s.cc0[fis[q]]);
          }
          through = add_sat(add_sat(co_out, side), 1);
          break;
        }
        case GateType::kXor:
        case GateType::kXnor: {
          std::uint32_t side = 0;
          for (std::size_t q = 0; q < fis.size(); ++q) {
            if (q == p) continue;
            side = add_sat(side, std::min(s.cc0[fis[q]], s.cc1[fis[q]]));
          }
          through = add_sat(add_sat(co_out, side), 1);
          break;
        }
        default:
          break;
      }
      s.observability[fis[p]] =
          std::min(s.observability[fis[p]], through);
    }
  }
  return s;
}

std::uint32_t Scoap::detect_cost(const net::Network& netw,
                                 const StuckAtFault& fault) const {
  const net::NodeId driver =
      fault.is_stem()
          ? fault.node
          : netw.fanins(fault.node)[static_cast<std::size_t>(fault.pin)];
  const std::uint32_t excite =
      fault.stuck_value ? cc0[driver] : cc1[driver];
  // Branch observability: through the specific consumer; approximate with
  // the net's (minimum) observability — standard SCOAP granularity.
  return add_sat(excite, observability[driver]);
}

}  // namespace cwatpg::fault
