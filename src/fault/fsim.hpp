// Parallel-pattern single-fault-propagation fault simulator.
//
// Substrate for (a) verifying every test the SAT engine produces and
// (b) fault dropping in the TEGUS-style ATPG loop: a found test is
// simulated against all still-undetected faults so their SAT instances are
// never built. Patterns run 64 at a time; per fault only the transitive
// fanout of the fault site is re-simulated against the good frame.
//
// Thread-safe: all functions here are pure — they read the (immutable
// after construction) Network and allocate every scratch buffer locally —
// so concurrent calls on any mix of arguments are safe. Per-fault
// detection is independent of every other fault, which is why the
// fault-parallel engine may shard a fault list across workers and
// concatenate the results without changing them.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fault/fault.hpp"
#include "netlist/simulate.hpp"

namespace cwatpg::fault {

/// A test pattern: one value per primary input of the network.
using Pattern = std::vector<bool>;

/// What one fault_simulate() call did — the fault simulator's contribution
/// to the observability layer. Counters are exact and deterministic (pure
/// functions of the inputs), so instrumented and uninstrumented runs stay
/// bit-identical.
struct FsimStats {
  std::uint64_t calls = 0;         ///< fault_simulate invocations
  std::uint64_t faults = 0;        ///< fault-list entries examined
  std::uint64_t patterns = 0;      ///< patterns simulated
  std::uint64_t resims = 0;        ///< (fault, 64-pattern block) resims
  std::uint64_t node_evals = 0;    ///< TFO gate evaluations re-simulated
  std::uint64_t detected = 0;      ///< faults reported detected

  FsimStats& operator+=(const FsimStats& other) {
    calls += other.calls;
    faults += other.faults;
    patterns += other.patterns;
    resims += other.resims;
    node_evals += other.node_evals;
    detected += other.detected;
    return *this;
  }
};

/// Simulates `patterns` against every fault in `faults`;
/// returns detected[i] == true iff some pattern detects faults[i]
/// (some primary output differs from the good circuit).
/// When `stats_out` is non-null the call's effort counters are ADDED to it
/// (accumulate across calls by reusing one FsimStats).
std::vector<bool> fault_simulate(const net::Network& net,
                                 std::span<const StuckAtFault> faults,
                                 std::span<const Pattern> patterns,
                                 FsimStats* stats_out);
inline std::vector<bool> fault_simulate(const net::Network& net,
                                        std::span<const StuckAtFault> faults,
                                        std::span<const Pattern> patterns) {
  return fault_simulate(net, faults, patterns, nullptr);
}

/// True iff `pattern` detects `fault`.
bool detects(const net::Network& net, const StuckAtFault& fault,
             const Pattern& pattern);

/// Fault coverage of a pattern set over a fault list, in [0,1].
double coverage(const net::Network& net,
                std::span<const StuckAtFault> faults,
                std::span<const Pattern> patterns);

/// Full detection matrix: bit (w*64 + b) of matrix[i] is set iff
/// patterns[w*64 + b] detects faults[i]. matrix[i] has
/// ceil(patterns.size() / 64) words. The raw material for fault
/// dictionaries and diagnosis (fault/dictionary.hpp).
std::vector<std::vector<std::uint64_t>> detection_matrix(
    const net::Network& net, std::span<const StuckAtFault> faults,
    std::span<const Pattern> patterns);

}  // namespace cwatpg::fault
