#include "fault/incremental.hpp"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "fault/obs_hooks.hpp"
#include "sat/encode.hpp"
#include "util/threadpool.hpp"
#include "util/timer.hpp"

namespace cwatpg::fault {

SharedMiterCnf::SharedMiterCnf(const net::Network& netw) {
  using net::GateType;
  using sat::Lit;
  using sat::Var;

  Timer build_timer;

  // Good copy: variable v == NodeId v (encode_constraints' convention).
  sat::Cnf cnf = sat::encode_constraints(netw);
  const std::size_t n = netw.node_count();
  node_count_ = n;
  input_vars_.reserve(netw.inputs().size());
  for (net::NodeId pi : netw.inputs())
    input_vars_.push_back(static_cast<Var>(pi));

  // Enumerate fault sites and give each (site, value) a binary fault id.
  // Stems: any non-kOutput node with fanout. Branches: any input pin whose
  // driver has fanout > 1 (on a single-fanout net the branch is the stem).
  // The excitation variable of a site is the good-copy variable of the
  // net it sits on — the driver itself for a stem, the pin's driver for a
  // branch.
  stem_code_.assign(n, kNoCode);
  branch_code_.assign(n, {});
  std::uint32_t next_code = 0;
  for (net::NodeId v = 0; v < n; ++v) {
    if (netw.type(v) == GateType::kOutput || netw.fanouts(v).empty())
      continue;
    stem_code_[v] = next_code;
    next_code += 2;
    excite_var_.push_back(static_cast<Var>(v));
  }
  for (net::NodeId v = 0; v < n; ++v) {
    const auto fanins = netw.fanins(v);
    if (fanins.empty()) continue;
    branch_code_[v].assign(fanins.size(), kNoCode);
    for (std::size_t p = 0; p < fanins.size(); ++p) {
      if (netw.fanouts(fanins[p]).size() <= 1) continue;
      branch_code_[v][p] = next_code;
      next_code += 2;
      excite_var_.push_back(static_cast<Var>(fanins[p]));
    }
  }
  num_codes_ = next_code;

  std::uint32_t bits = 1;
  while ((1u << bits) < std::max(next_code, 2u)) ++bits;
  fid_bits_.clear();
  for (std::uint32_t b = 0; b < bits; ++b) fid_bits_.push_back(cnf.new_var());

  // The literal asserting that fid bit b matches bit b of `code`.
  auto bit_lit = [&](std::uint32_t code, std::uint32_t b) {
    return Lit(fid_bits_[b], ((code >> b) & 1) == 0);
  };
  // Defines s ↔ (fid == code): one binary clause per bit plus the back
  // clause. Unit propagation from the assumed fid bits then switches
  // exactly one select on and every other select off.
  auto define_select = [&](Var s, std::uint32_t code) {
    sat::Clause back{sat::pos(s)};
    for (std::uint32_t b = 0; b < bits; ++b) {
      cnf.add_clause({sat::neg(s), bit_lit(code, b)});
      back.push_back(~bit_lit(code, b));
    }
    cnf.add_clause(std::move(back));
  };

  // Faulty copy variables.
  std::vector<Var> faulty(n);
  for (net::NodeId v = 0; v < n; ++v) faulty[v] = cnf.new_var();

  // Stem selects: s forces the faulty node to the stuck value.
  std::vector<Var> select0(n, sat::kNullVar), select1(n, sat::kNullVar);
  for (net::NodeId v = 0; v < n; ++v) {
    if (stem_code_[v] == kNoCode) continue;
    for (int value = 0; value < 2; ++value) {
      const Var s = cnf.new_var();
      (value ? select1[v] : select0[v]) = s;
      define_select(s, stem_code_[v] + static_cast<std::uint32_t>(value));
      cnf.add_clause({sat::neg(s),
                      value ? sat::pos(faulty[v]) : sat::neg(faulty[v])});
    }
  }

  // Branch selects: each coded pin (v, p) gets a private wire variable w
  // the faulty gate reads in place of the fanin; s forces w to the stuck
  // value, and with both selects off w equals the faulty fanin.
  std::vector<std::vector<Var>> pin_wire(n);
  std::vector<std::vector<Var>> pin_selects(n);  // barrier literals per node
  for (net::NodeId v = 0; v < n; ++v) {
    const auto fanins = netw.fanins(v);
    if (fanins.empty()) continue;
    pin_wire[v].assign(fanins.size(), sat::kNullVar);
    for (std::size_t p = 0; p < fanins.size(); ++p) {
      if (branch_code_[v][p] == kNoCode) continue;
      const Var w = cnf.new_var();
      pin_wire[v][p] = w;
      Var sb[2];
      for (int value = 0; value < 2; ++value) {
        sb[value] = cnf.new_var();
        define_select(sb[value],
                      branch_code_[v][p] + static_cast<std::uint32_t>(value));
        cnf.add_clause({sat::neg(sb[value]),
                        value ? sat::pos(w) : sat::neg(w)});
        pin_selects[v].push_back(sb[value]);
      }
      const Var f = faulty[fanins[p]];
      cnf.add_clause(
          {sat::pos(sb[0]), sat::pos(sb[1]), sat::neg(w), sat::pos(f)});
      cnf.add_clause(
          {sat::pos(sb[0]), sat::pos(sb[1]), sat::pos(w), sat::neg(f)});
    }
  }

  // Faulty pin value of (v, p): the wire when the pin has branch selects,
  // the faulty fanin directly otherwise.
  auto pin_var = [&](net::NodeId v, std::size_t p) {
    const Var w = pin_wire[v].empty() ? sat::kNullVar : pin_wire[v][p];
    return w != sat::kNullVar ? w : faulty[netw.fanins(v)[p]];
  };

  // Faulty functional clauses, guarded by (s0 ∨ s1) where stem selects
  // exist (a selected stem overrides the gate function).
  auto add_guarded = [&](net::NodeId v, const sat::Cnf& gate_clauses) {
    for (const sat::Clause& c : gate_clauses.clauses()) {
      sat::Clause guarded = c;
      if (select0[v] != sat::kNullVar) {
        guarded.push_back(sat::pos(select0[v]));
        guarded.push_back(sat::pos(select1[v]));
      }
      cnf.add_clause(std::move(guarded));
    }
  };
  for (net::NodeId v = 0; v < n; ++v) {
    const auto& node = netw.node(v);
    sat::Cnf local(cnf.num_vars());
    switch (node.type) {
      case GateType::kInput:
        sat::add_gate_clauses(local, GateType::kBuf, faulty[v],
                              {{static_cast<Var>(v)}});
        break;
      case GateType::kConst0:
        local.add_clause({sat::neg(faulty[v])});
        break;
      case GateType::kConst1:
        local.add_clause({sat::pos(faulty[v])});
        break;
      case GateType::kOutput:
        sat::add_gate_clauses(local, GateType::kBuf, faulty[v],
                              {{pin_var(v, 0)}});
        break;
      default: {
        std::vector<Var> ins;
        ins.reserve(node.fanins.size());
        for (std::size_t p = 0; p < node.fanins.size(); ++p)
          ins.push_back(pin_var(v, p));
        sat::add_gate_clauses(local, node.type, faulty[v], ins);
        break;
      }
    }
    add_guarded(v, local);
  }

  // D-chain constraints: diff_v ↔ (good_v ⊕ faulty_v), and a difference
  // can only exist where a fault is selected — on the node itself (stem)
  // or on one of its input pins (branch) — or some fanin differs. Without
  // these, UNSAT queries force the solver to re-derive the equivalence of
  // the two copies by case splitting (hopeless on XOR-heavy logic); with
  // them, "all selects off upstream" propagates faulty=good node by node,
  // and learned clauses stay short.
  std::vector<Var> diff(n);
  for (net::NodeId v = 0; v < n; ++v) {
    diff[v] = cnf.new_var();
    const Var ins[] = {static_cast<Var>(v), faulty[v]};
    sat::add_gate_clauses(cnf, GateType::kXor, diff[v], ins);
    sat::Clause barrier{sat::neg(diff[v])};
    if (select0[v] != sat::kNullVar) {
      barrier.push_back(sat::pos(select0[v]));
      barrier.push_back(sat::pos(select1[v]));
    }
    for (Var s : pin_selects[v]) barrier.push_back(sat::pos(s));
    for (net::NodeId fi : netw.fanins(v))
      barrier.push_back(sat::pos(diff[fi]));
    cnf.add_clause(std::move(barrier));
  }

  // Objective: some primary output differs.
  sat::Clause objective;
  for (net::NodeId po : netw.outputs())
    objective.push_back(sat::pos(diff[po]));
  cnf.add_clause(std::move(objective));

  // Cone restriction tables: for every node carrying a select (stem or a
  // branch pin — both root the observable effect at that node), the
  // primary inputs OUTSIDE the fanin cone of its fanout cone. Such inputs
  // cannot influence excitation or any output difference, so a query may
  // pin them to 0 with extra assumptions; any satisfying assignment can be
  // rewritten to have them 0 (off-cone diffs are forced false by the
  // barrier chain regardless), so SAT/UNSAT answers are untouched. The
  // payoff is that search stays cone-local like a per-fault instance —
  // without the pins, every decision drags the whole-circuit miter through
  // propagation and large low-conflict circuits lose to the per-fault flow
  // on propagation volume alone.
  pinned_inputs_.assign(n, {});
  {
    std::vector<std::uint32_t> mark(n, 0);
    std::uint32_t epoch = 0;
    std::vector<net::NodeId> cone;
    for (net::NodeId v = 0; v < n; ++v) {
      const bool coded =
          stem_code_[v] != kNoCode ||
          std::any_of(branch_code_[v].begin(), branch_code_[v].end(),
                      [](std::uint32_t c) { return c != kNoCode; });
      if (!coded) continue;
      ++epoch;
      cone.clear();
      cone.push_back(v);
      mark[v] = epoch;
      // Forward closure over fanouts, then fanin closure of the result:
      // entries appended during the scan are processed too, so `cone`
      // ends as the full support set.
      for (std::size_t i = 0; i < cone.size(); ++i)
        for (net::NodeId fo : netw.fanouts(cone[i]))
          if (mark[fo] != epoch) {
            mark[fo] = epoch;
            cone.push_back(fo);
          }
      for (std::size_t i = 0; i < cone.size(); ++i)
        for (net::NodeId fi : netw.fanins(cone[i]))
          if (mark[fi] != epoch) {
            mark[fi] = epoch;
            cone.push_back(fi);
          }
      for (net::NodeId pi : netw.inputs())
        if (mark[pi] != epoch)
          pinned_inputs_[v].push_back(static_cast<Var>(pi));
    }
  }

  cnf_ = std::move(cnf);
  build_seconds_ = build_timer.seconds();
}

std::uint32_t SharedMiterCnf::code_of(const StuckAtFault& fault) const {
  if (fault.node >= node_count_) return kNoCode;
  if (fault.is_stem()) return stem_code_[fault.node];
  const auto& pins = branch_code_[fault.node];
  const auto p = static_cast<std::size_t>(fault.pin);
  if (fault.pin < 0 || p >= pins.size()) return kNoCode;
  return pins[p];
}

bool SharedMiterCnf::covers(const StuckAtFault& fault) const {
  return code_of(fault) != kNoCode;
}

std::vector<sat::Lit> SharedMiterCnf::assumptions_for(
    const StuckAtFault& fault) const {
  const std::uint32_t base = code_of(fault);
  if (base == kNoCode)
    throw std::invalid_argument(
        "SharedMiterCnf: fault site has no select in the encoding");
  const std::uint32_t code = base + (fault.stuck_value ? 1u : 0u);
  std::vector<sat::Lit> assumptions;
  assumptions.reserve(fid_bits_.size() + 1);
  for (std::uint32_t b = 0; b < fid_bits_.size(); ++b)
    assumptions.push_back(sat::Lit(fid_bits_[b], ((code >> b) & 1) == 0));
  // Excitation: the good value of the faulted net must be ~stuck.
  assumptions.push_back(sat::Lit(excite_var_[code / 2], fault.stuck_value));
  // Cone restriction: pin every primary input outside the fault's support
  // cone to 0 (see the constructor) so the search is cone-local.
  for (sat::Var pi : pinned_inputs_[fault.node])
    assumptions.push_back(sat::Lit(pi, true));
  return assumptions;
}

namespace {

const sat::Cnf& checked_cnf(
    const std::shared_ptr<const SharedMiterCnf>& encoding) {
  if (encoding == nullptr)
    throw std::invalid_argument("SharedMiter: null encoding");
  return encoding->cnf();
}

}  // namespace

SharedMiter::SharedMiter(const net::Network& netw,
                         sat::SolverConfig solver_config)
    : SharedMiter(std::make_shared<const SharedMiterCnf>(netw),
                  solver_config) {}

SharedMiter::SharedMiter(std::shared_ptr<const SharedMiterCnf> encoding,
                         sat::SolverConfig solver_config)
    : encoding_(std::move(encoding)),
      solver_(checked_cnf(encoding_), solver_config) {}

sat::SolveStatus SharedMiter::solve_fault(const StuckAtFault& fault,
                                          Pattern& test_out) {
  const std::vector<sat::Lit> assumptions =
      encoding_->assumptions_for(fault);
  const sat::SolveStatus status = solver_.solve(assumptions);
  if (status == sat::SolveStatus::kSat) {
    const auto& model = solver_.model();
    const auto& pis = encoding_->input_vars();
    test_out.assign(pis.size(), false);
    for (std::size_t i = 0; i < pis.size(); ++i) test_out[i] = model[pis[i]];
  }
  return status;
}

sat::SolveStatus SharedMiter::solve_fault(net::NodeId site, bool stuck_value,
                                          Pattern& test_out) {
  return solve_fault(StuckAtFault{site, StuckAtFault::kStem, stuck_value},
                     test_out);
}

std::vector<IncrementalOutcome> run_atpg_incremental(
    const net::Network& netw, std::span<const StuckAtFault> faults,
    sat::SolverConfig solver_config) {
  SharedMiter miter(netw, solver_config);
  std::vector<IncrementalOutcome> outcomes(faults.size());
  for (std::size_t i = 0; i < faults.size(); ++i)
    outcomes[i].status = miter.solve_fault(faults[i], outcomes[i].test);
  return outcomes;
}

namespace detail {
namespace {

constexpr std::size_t kNoPos = static_cast<std::size_t>(-1);

/// Nodes whose transitive fanout contains a primary output — reverse BFS
/// from the kOutput markers. A fault whose cone root is outside the mask
/// can never be observed; the providers classify it kUnreachable without a
/// query, matching generate_test's structural check.
std::vector<bool> reaches_output_mask(const net::Network& netw) {
  std::vector<bool> mask(netw.node_count(), false);
  std::vector<net::NodeId> stack;
  for (net::NodeId po : netw.outputs()) {
    mask[po] = true;
    stack.push_back(po);
  }
  while (!stack.empty()) {
    const net::NodeId v = stack.back();
    stack.pop_back();
    for (net::NodeId fi : netw.fanins(v)) {
      if (mask[fi]) continue;
      mask[fi] = true;
      stack.push_back(fi);
    }
  }
  return mask;
}

/// Conflict caps for one incremental query: every query runs at base_cap;
/// a query that hits exactly the conflict cap gets one in-miter retry at
/// retry_cap (the escalation ladder's first rung, without leaving the
/// shared encoding) before the pipeline's fresh-CNF rounds take over.
struct QueryPolicy {
  std::uint64_t base_cap = Budget::kUnlimited;
  std::uint64_t retry_cap = Budget::kUnlimited;
  const Budget* budget = nullptr;
};

/// The incremental counterpart of generate_test: one fault, one session,
/// production semantics (unreachable masking, budget fast-fail, in-miter
/// retry, FaultOutcome attribution). Pure function of the session's query
/// history plus (fault, reachable, policy) — the determinism unit both
/// providers are built from.
FaultOutcome incremental_query(SharedMiter& miter, const StuckAtFault& fault,
                               bool reachable, const QueryPolicy& policy,
                               Pattern& test_out) {
  FaultOutcome outcome;
  outcome.fault = fault;

  if (!reachable) {
    outcome.status = FaultStatus::kUnreachable;
    return outcome;
  }
  // Fast-fail when the budget already fired, like generate_test: an
  // abandoned stream drains in O(1) per position.
  if (policy.budget != nullptr) {
    const StopReason r = policy.budget->poll();
    if (r != StopReason::kNone) {
      outcome.status = FaultStatus::kAborted;
      outcome.solver_stats.stop_reason = r;
      return outcome;
    }
  }

  Timer timer;
  sat::SolveStatus status = miter.solve_fault(fault, test_out);
  sat::SolverStats stats = miter.last_query_stats();
  outcome.attempts = 1;
  if (status == sat::SolveStatus::kUnknown &&
      stats.stop_reason == StopReason::kConflictLimit &&
      policy.retry_cap > policy.base_cap) {
    miter.set_max_conflicts(policy.retry_cap);
    status = miter.solve_fault(fault, test_out);
    const sat::SolverStats retry_stats = miter.last_query_stats();
    miter.set_max_conflicts(policy.base_cap);
    stats += retry_stats;
    // operator+= keeps the stale kConflictLimit when the retry ran to
    // completion; the retry's own reason (kNone on success) is the truth.
    stats.stop_reason = retry_stats.stop_reason;
    outcome.attempts = 2;
  }
  outcome.solve_seconds = timer.seconds();
  outcome.solver_stats = stats;
  outcome.engine = SolveEngine::kIncremental;
  outcome.sat_vars = miter.num_vars();
  outcome.sat_clauses = miter.encoding().num_clauses();
  switch (status) {
    case sat::SolveStatus::kSat:
      outcome.status = FaultStatus::kDetected;
      break;
    case sat::SolveStatus::kUnsat:
      outcome.status = FaultStatus::kUntestable;
      break;
    case sat::SolveStatus::kUnknown:
      outcome.status = FaultStatus::kAborted;
      break;
  }
  return outcome;
}

}  // namespace

IncrementalBase::IncrementalBase(const AtpgOptions& options)
    : options_(options),
      session_config_(per_fault_solver_config(options)),
      base_cap_(session_config_.max_conflicts) {
  retry_cap_ =
      (options.escalation_rounds > 0 && base_cap_ != Budget::kUnlimited)
          ? saturating_mul(base_cap_, options.escalation_growth)
          : base_cap_;
}

void IncrementalBase::setup(const net::Network& netw,
                            std::span<const StuckAtFault> faults,
                            std::span<const std::size_t> work_list) {
  if (options_.prebuilt_miter != nullptr) {
    if (options_.prebuilt_miter->node_count() != netw.node_count())
      throw std::invalid_argument(
          "incremental ATPG: prebuilt miter was built from a different "
          "network");
    encoding_ = options_.prebuilt_miter;
  } else {
    encoding_ = std::make_shared<const SharedMiterCnf>(netw);
  }

  const std::vector<bool> reachable = reaches_output_mask(netw);
  pos_of_.assign(faults.size(), kNoPos);
  fault_of_pos_.clear();
  fault_of_pos_.reserve(work_list.size());
  reachable_of_pos_.clear();
  reachable_of_pos_.reserve(work_list.size());
  for (std::size_t p = 0; p < work_list.size(); ++p) {
    const std::size_t fi = work_list[p];
    pos_of_[fi] = p;
    fault_of_pos_.push_back(faults[fi]);
    reachable_of_pos_.push_back(reachable[faults[fi].node]);
  }

  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& m = *options_.metrics;
    c_queries_ = &m.counter("incremental.queries");
    c_committed_ = &m.counter("incremental.committed");
    c_retries_ = &m.counter("incremental.retries");
    c_reused_ = &m.counter("incremental.reused_implications");
    m.counter(options_.prebuilt_miter != nullptr ? "incremental.prebuilt_hits"
                                                 : "incremental.builds")
        .add(1);
    m.gauge("incremental.miter_vars")
        .max_in(static_cast<double>(encoding_->num_vars()));
    m.gauge("incremental.miter_clauses")
        .max_in(static_cast<double>(encoding_->num_clauses()));
    m.gauge("incremental.build_ms").max_in(encoding_->build_seconds() * 1e3);
  }
}

/// One serial query stream: a private session plus the next work-list
/// position it owes a query for.
struct IncrementalProvider::Stream {
  SharedMiter miter;
  std::size_t next_pos;

  Stream(std::shared_ptr<const SharedMiterCnf> encoding,
         const sat::SolverConfig& config, std::size_t first_pos)
      : miter(std::move(encoding), config), next_pos(first_pos) {}
};

IncrementalProvider::IncrementalProvider(const AtpgOptions& options)
    : IncrementalBase(options) {}

IncrementalProvider::~IncrementalProvider() = default;

void IncrementalProvider::begin(const net::Network& netw,
                                std::span<const StuckAtFault> faults,
                                std::span<const std::size_t> work_list,
                                const std::vector<bool>& /*dropped*/) {
  setup(netw, faults, work_list);
  const std::size_t num_streams =
      options_.incremental_streams == 0 ? 1 : options_.incremental_streams;
  streams_.clear();
  for (std::size_t s = 0; s < num_streams; ++s)
    streams_.push_back(std::make_unique<Stream>(encoding_, session_config_, s));
}

FaultOutcome IncrementalProvider::solve(std::size_t fault_index,
                                        Pattern& test_out) {
  const std::size_t pos = pos_of_[fault_index];
  Stream& stream = *streams_[pos % streams_.size()];
  const QueryPolicy policy{base_cap_, retry_cap_, session_config_.budget};

  // Catch the stream up through its earlier positions — including ones the
  // pipeline dropped and will never ask for. Querying them anyway keeps
  // the session's query history (and so its learnt clauses, models and
  // stats) a pure function of the stream assignment, which is what makes a
  // serial run byte-identical to a parallel one with the same stream
  // count: parallel streams run ahead of the dropped bitmap and cannot
  // skip.
  for (std::size_t p = stream.next_pos; p < pos; p += streams_.size()) {
    Pattern scratch;
    const FaultOutcome skipped = incremental_query(
        stream.miter, fault_of_pos_[p], reachable_of_pos_[p], policy, scratch);
    if (c_queries_ != nullptr) c_queries_->add(skipped.attempts);
    if (c_retries_ != nullptr && skipped.attempts >= 2) c_retries_->add(1);
    if (c_reused_ != nullptr)
      c_reused_->add(skipped.solver_stats.reused_implications);
  }
  stream.next_pos = pos + streams_.size();

  const FaultOutcome outcome = incremental_query(
      stream.miter, fault_of_pos_[pos], reachable_of_pos_[pos], policy,
      test_out);
  if (c_queries_ != nullptr) c_queries_->add(outcome.attempts);
  if (c_retries_ != nullptr && outcome.attempts >= 2) c_retries_->add(1);
  if (c_reused_ != nullptr)
    c_reused_->add(outcome.solver_stats.reused_implications);
  if (c_committed_ != nullptr) c_committed_->add(1);
  return outcome;
}

namespace {

/// One incremental solve published by a stream task. Written by exactly
/// one worker, read by the pipeline thread after `done` flips under the
/// mutex (same discipline as the speculative per-fault provider).
struct IncrementalSlot {
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  FaultOutcome outcome;
  Pattern test;
  std::exception_ptr error;
};

}  // namespace

/// Everything the stream tasks touch, owned by shared_ptr: if the pipeline
/// throws and the provider unwinds, in-flight tasks still hold the state
/// (including private copies of the faults — the pipeline's own vectors
/// die on unwind) and drain harmlessly.
struct ParallelIncrementalProvider::State {
  std::shared_ptr<const SharedMiterCnf> encoding;
  sat::SolverConfig config;
  QueryPolicy policy;
  std::size_t num_streams = 1;
  std::vector<StuckAtFault> fault_of_pos;
  std::vector<bool> reachable_of_pos;  // written in begin(), then read-only
  std::vector<std::unique_ptr<IncrementalSlot>> slots;
  ParallelStats* stats = nullptr;  // outlives the pool (see run_atpg_parallel)
  std::atomic<std::uint64_t> queries{0};
  std::atomic<std::uint64_t> retries{0};
  std::atomic<std::uint64_t> reused{0};
};

ParallelIncrementalProvider::ParallelIncrementalProvider(
    ThreadPool& pool, const AtpgOptions& options, ParallelStats& stats)
    : IncrementalBase(options), pool_(pool), stats_(stats) {}

ParallelIncrementalProvider::~ParallelIncrementalProvider() = default;

void ParallelIncrementalProvider::begin(
    const net::Network& netw, std::span<const StuckAtFault> faults,
    std::span<const std::size_t> work_list,
    const std::vector<bool>& /*dropped*/) {
  setup(netw, faults, work_list);

  auto state = std::make_shared<State>();
  state->encoding = encoding_;
  state->config = session_config_;
  state->policy = QueryPolicy{base_cap_, retry_cap_, session_config_.budget};
  state->num_streams = options_.incremental_streams == 0
                           ? pool_.size()
                           : options_.incremental_streams;
  state->fault_of_pos = fault_of_pos_;
  state->reachable_of_pos = reachable_of_pos_;
  state->slots.reserve(work_list.size());
  for (std::size_t p = 0; p < work_list.size(); ++p)
    state->slots.push_back(std::make_unique<IncrementalSlot>());
  state->stats = &stats_;
  state_ = state;

  // One task per stream. A task runs entirely on one pool worker, so the
  // per-worker stats entry it updates is never shared. Streams query every
  // assigned position unconditionally — consulting the dropped bitmap from
  // a worker would be a data race AND make the session's clause history
  // timing-dependent; dropped positions are simply never waited on and
  // their slots are discarded as waste.
  for (std::size_t s = 0; s < state->num_streams; ++s) {
    pool_.submit([state, s] {
      SharedMiter miter(state->encoding, state->config);
      for (std::size_t p = s; p < state->slots.size();
           p += state->num_streams) {
        FaultOutcome outcome;
        Pattern test;
        std::exception_ptr error;
        try {
          outcome = incremental_query(miter, state->fault_of_pos[p],
                                      state->reachable_of_pos[p],
                                      state->policy, test);
        } catch (...) {
          error = std::current_exception();
        }
        state->queries.fetch_add(outcome.attempts,
                                 std::memory_order_relaxed);
        if (outcome.attempts >= 2)
          state->retries.fetch_add(1, std::memory_order_relaxed);
        state->reused.fetch_add(outcome.solver_stats.reused_implications,
                                std::memory_order_relaxed);
        const std::size_t w = ThreadPool::worker_index();
        if (w != ThreadPool::kNotAWorker &&
            w < state->stats->workers.size()) {
          WorkerStats& ws = state->stats->workers[w];
          ++ws.solved;
          ws.solve_seconds += outcome.solve_seconds;
          ws.solver += outcome.solver_stats;
        }
        IncrementalSlot& slot = *state->slots[p];
        std::lock_guard<std::mutex> lock(slot.mutex);
        slot.outcome = std::move(outcome);
        slot.test = std::move(test);
        slot.error = error;
        slot.done = true;
        slot.cv.notify_one();
      }
    });
  }
}

FaultOutcome ParallelIncrementalProvider::solve(std::size_t fault_index,
                                                Pattern& test_out) {
  const std::size_t pos = pos_of_[fault_index];
  IncrementalSlot& slot = *state_->slots[pos];
  std::unique_lock<std::mutex> lock(slot.mutex);
  slot.cv.wait(lock, [&] { return slot.done; });
  ++stats_.committed;
  if (slot.error) std::rethrow_exception(slot.error);
  test_out = std::move(slot.test);
  return slot.outcome;
}

void ParallelIncrementalProvider::finalize() {
  if (state_ == nullptr) return;
  stats_.dispatched = state_->slots.size();
  stats_.wasted = stats_.dispatched - stats_.committed;
  stats_.max_in_flight = std::min(state_->num_streams, state_->slots.size());
  if (c_queries_ != nullptr)
    c_queries_->add(state_->queries.load(std::memory_order_relaxed));
  if (c_retries_ != nullptr)
    c_retries_->add(state_->retries.load(std::memory_order_relaxed));
  if (c_reused_ != nullptr)
    c_reused_->add(state_->reused.load(std::memory_order_relaxed));
  if (c_committed_ != nullptr) c_committed_->add(stats_.committed);
}

}  // namespace detail

}  // namespace cwatpg::fault
