#include "fault/incremental.hpp"

#include <stdexcept>

#include "sat/encode.hpp"

namespace cwatpg::fault {

SharedMiter::SharedMiter(const net::Network& netw,
                         sat::SolverConfig solver_config)
    : net_(netw) {
  using net::GateType;
  using sat::Lit;
  using sat::Var;

  // Good copy: variable v == NodeId v (encode_constraints' convention).
  sat::Cnf cnf = sat::encode_constraints(netw);
  const std::size_t n = netw.node_count();
  good_.resize(n);
  for (net::NodeId v = 0; v < n; ++v) good_[v] = static_cast<Var>(v);

  // Enumerate fault sites (stems: any non-kOutput node with fanout) and
  // give each (site, value) a binary fault id.
  fault_code_.assign(n, kNoCode);
  std::uint32_t next_code = 0;
  for (net::NodeId v = 0; v < n; ++v) {
    if (netw.type(v) == GateType::kOutput || netw.fanouts(v).empty())
      continue;
    fault_code_[v] = next_code;
    next_code += 2;
  }
  std::uint32_t bits = 1;
  while ((1u << bits) < std::max(next_code, 2u)) ++bits;
  fid_bits_.clear();
  for (std::uint32_t b = 0; b < bits; ++b) fid_bits_.push_back(cnf.new_var());

  // The literal asserting that fid bit b matches bit b of `code`.
  auto bit_lit = [&](std::uint32_t code, std::uint32_t b) {
    return Lit(fid_bits_[b], ((code >> b) & 1) == 0);
  };

  // Faulty copy variables.
  std::vector<Var> faulty(n);
  for (net::NodeId v = 0; v < n; ++v) faulty[v] = cnf.new_var();

  // Selects defined from the fault id: s ↔ (fid == code).
  std::vector<Var> select0(n, sat::kNullVar), select1(n, sat::kNullVar);
  for (net::NodeId v = 0; v < n; ++v) {
    if (fault_code_[v] == kNoCode) continue;
    for (int value = 0; value < 2; ++value) {
      const Var s = cnf.new_var();
      (value ? select1[v] : select0[v]) = s;
      const std::uint32_t code = fault_code_[v] + static_cast<std::uint32_t>(value);
      sat::Clause back{sat::pos(s)};
      for (std::uint32_t b = 0; b < bits; ++b) {
        cnf.add_clause({sat::neg(s), bit_lit(code, b)});
        back.push_back(~bit_lit(code, b));
      }
      cnf.add_clause(std::move(back));
      // Select semantics on the faulty copy.
      cnf.add_clause({sat::neg(s),
                      value ? sat::pos(faulty[v]) : sat::neg(faulty[v])});
    }
  }

  // Faulty functional clauses, guarded by (s0 ∨ s1) where selects exist.
  auto add_guarded = [&](net::NodeId v, const sat::Cnf& gate_clauses) {
    for (const sat::Clause& c : gate_clauses.clauses()) {
      sat::Clause guarded = c;
      if (select0[v] != sat::kNullVar) {
        guarded.push_back(sat::pos(select0[v]));
        guarded.push_back(sat::pos(select1[v]));
      }
      cnf.add_clause(std::move(guarded));
    }
  };
  for (net::NodeId v = 0; v < n; ++v) {
    const auto& node = netw.node(v);
    sat::Cnf local(cnf.num_vars());
    switch (node.type) {
      case GateType::kInput:
        sat::add_gate_clauses(local, GateType::kBuf, faulty[v],
                              {{good_[v]}});
        break;
      case GateType::kConst0:
        local.add_clause({sat::neg(faulty[v])});
        break;
      case GateType::kConst1:
        local.add_clause({sat::pos(faulty[v])});
        break;
      case GateType::kOutput:
        sat::add_gate_clauses(local, GateType::kBuf, faulty[v],
                              {{faulty[node.fanins[0]]}});
        break;
      default: {
        std::vector<Var> ins;
        ins.reserve(node.fanins.size());
        for (net::NodeId fi : node.fanins) ins.push_back(faulty[fi]);
        sat::add_gate_clauses(local, node.type, faulty[v], ins);
        break;
      }
    }
    add_guarded(v, local);
  }

  // D-chain constraints: diff_v ↔ (good_v ⊕ faulty_v), and a difference
  // can only exist where the fault is selected or some fanin differs.
  // Without these, UNSAT queries force the solver to re-derive the
  // equivalence of the two copies by case splitting (hopeless on XOR-heavy
  // logic); with them, "all selects off upstream" propagates faulty=good
  // node by node, and learned clauses stay short.
  std::vector<Var> diff(n);
  for (net::NodeId v = 0; v < n; ++v) {
    diff[v] = cnf.new_var();
    const Var ins[] = {good_[v], faulty[v]};
    sat::add_gate_clauses(cnf, GateType::kXor, diff[v], ins);
    sat::Clause barrier{sat::neg(diff[v])};
    if (select0[v] != sat::kNullVar) {
      barrier.push_back(sat::pos(select0[v]));
      barrier.push_back(sat::pos(select1[v]));
    }
    for (net::NodeId fi : netw.fanins(v))
      barrier.push_back(sat::pos(diff[fi]));
    cnf.add_clause(std::move(barrier));
  }

  // Objective: some primary output differs.
  sat::Clause objective;
  for (net::NodeId po : netw.outputs())
    objective.push_back(sat::pos(diff[po]));
  cnf.add_clause(std::move(objective));

  num_vars_ = cnf.num_vars();
  solver_ = std::make_unique<sat::Solver>(cnf, solver_config);
}

sat::SolveStatus SharedMiter::solve_fault(net::NodeId site, bool stuck_value,
                                          Pattern& test_out) {
  if (site >= net_.node_count() || fault_code_[site] == kNoCode)
    throw std::invalid_argument("solve_fault: node has no fault selects");
  const std::uint32_t code =
      fault_code_[site] + (stuck_value ? 1u : 0u);
  std::vector<sat::Lit> assumptions;
  assumptions.reserve(fid_bits_.size() + 1);
  for (std::uint32_t b = 0; b < fid_bits_.size(); ++b)
    assumptions.push_back(sat::Lit(fid_bits_[b], ((code >> b) & 1) == 0));
  // Excitation: the good value of the site must be ~stuck.
  assumptions.push_back(sat::Lit(good_[site], stuck_value));

  const sat::SolveStatus status = solver_->solve(assumptions);
  if (status == sat::SolveStatus::kSat) {
    const auto& model = solver_->model();
    test_out.assign(net_.inputs().size(), false);
    for (std::size_t i = 0; i < net_.inputs().size(); ++i)
      test_out[i] = model[good_[net_.inputs()[i]]];
  }
  return status;
}

std::vector<IncrementalOutcome> run_atpg_incremental(
    const net::Network& netw, std::span<const StuckAtFault> faults,
    sat::SolverConfig solver_config) {
  SharedMiter miter(netw, solver_config);
  std::vector<IncrementalOutcome> outcomes(faults.size());
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (!faults[i].is_stem()) {
      outcomes[i].skipped = true;
      continue;
    }
    outcomes[i].status = miter.solve_fault(
        faults[i].node, faults[i].stuck_value, outcomes[i].test);
  }
  return outcomes;
}

}  // namespace cwatpg::fault
