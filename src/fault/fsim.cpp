#include "fault/fsim.hpp"

#include <algorithm>
#include <stdexcept>

#include "netlist/cone.hpp"

namespace cwatpg::fault {
namespace {

/// Re-simulates the transitive fanout of a fault against a good frame.
/// Returns true when any observed kOutput differs on any of the first
/// `valid` pattern lanes.
std::uint64_t resimulate_faulty_lanes(
    const net::Network& netw, const StuckAtFault& fault,
    const net::SimFrame& good, std::span<const net::NodeId> tfo_nodes,
    std::uint64_t lane_mask, std::vector<std::uint64_t>& scratch) {
  // scratch holds faulty values for TFO nodes; others read from `good`.
  // TFO nodes are visited in topological order, so every in-TFO fanin is
  // written before it is read — no clearing needed.
  scratch.resize(netw.node_count());
  std::vector<bool> in_tfo(netw.node_count(), false);
  for (net::NodeId v : tfo_nodes) in_tfo[v] = true;
  auto value_of = [&](net::NodeId v) {
    return in_tfo[v] ? scratch[v] : good[v];
  };

  const std::uint64_t stuck = fault.stuck_value ? ~0ULL : 0ULL;
  std::uint64_t diff_lanes = 0;
  std::vector<std::uint64_t> ins;
  for (net::NodeId v : tfo_nodes) {
    const auto& node = netw.node(v);
    std::uint64_t out;
    if (v == fault.node && fault.is_stem()) {
      out = stuck;
    } else {
      switch (node.type) {
        case net::GateType::kInput:
          out = good[v];  // a PI inside the TFO is the (stem-faulted) site
          break;           // itself; handled above — side PIs are not in TFO
        case net::GateType::kConst0:
          out = 0;
          break;
        case net::GateType::kConst1:
          out = ~0ULL;
          break;
        case net::GateType::kOutput: {
          std::uint64_t in = value_of(node.fanins[0]);
          if (!fault.is_stem() && v == fault.node && fault.pin == 0)
            in = stuck;
          out = in;
          break;
        }
        default: {
          ins.clear();
          for (std::size_t p = 0; p < node.fanins.size(); ++p) {
            std::uint64_t in = value_of(node.fanins[p]);
            if (!fault.is_stem() && v == fault.node &&
                static_cast<std::int32_t>(p) == fault.pin)
              in = stuck;
            ins.push_back(in);
          }
          out = net::eval_gate_word(node.type, ins);
          break;
        }
      }
    }
    scratch[v] = out;
    if (node.type == net::GateType::kOutput)
      diff_lanes |= (out ^ good[v]) & lane_mask;
  }
  return diff_lanes;
}

/// TFO of a fault in topological (id) order.
std::vector<net::NodeId> tfo_list(const net::Network& netw,
                                  const StuckAtFault& fault) {
  const std::vector<bool> mask =
      net::transitive_fanout(netw, fault_cone_root(fault));
  std::vector<net::NodeId> nodes;
  for (net::NodeId v = 0; v < netw.node_count(); ++v)
    if (mask[v]) nodes.push_back(v);
  return nodes;
}

}  // namespace

std::vector<bool> fault_simulate(const net::Network& netw,
                                 std::span<const StuckAtFault> faults,
                                 std::span<const Pattern> patterns,
                                 FsimStats* stats_out) {
  // Effort counters accumulate locally and publish once at the end, so the
  // instrumented hot loop carries no extra memory traffic.
  FsimStats local;
  std::vector<bool> detected(faults.size(), false);
  if (patterns.empty()) {
    if (stats_out != nullptr) ++stats_out->calls;
    return detected;
  }
  const std::size_t num_pis = netw.inputs().size();
  for (const Pattern& p : patterns)
    if (p.size() != num_pis)
      throw std::invalid_argument("fault_simulate: pattern width mismatch");

  local.calls = 1;
  local.faults = faults.size();
  local.patterns = patterns.size();

  // Cache TFO lists per fault site (s-a-0/s-a-1 share them).
  std::vector<std::vector<net::NodeId>> tfo_cache(faults.size());
  std::vector<std::uint64_t> scratch;

  for (std::size_t base = 0; base < patterns.size(); base += 64) {
    const std::size_t lanes = std::min<std::size_t>(64, patterns.size() - base);
    const std::uint64_t lane_mask =
        lanes == 64 ? ~0ULL : ((1ULL << lanes) - 1);
    std::vector<std::uint64_t> pi_words(num_pis, 0);
    for (std::size_t lane = 0; lane < lanes; ++lane)
      for (std::size_t i = 0; i < num_pis; ++i)
        if (patterns[base + lane][i]) pi_words[i] |= 1ULL << lane;
    const net::SimFrame good = net::simulate64(netw, pi_words);

    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
      if (detected[fi]) continue;
      if (tfo_cache[fi].empty())
        tfo_cache[fi] = tfo_list(netw, faults[fi]);
      ++local.resims;
      local.node_evals += tfo_cache[fi].size();
      if (resimulate_faulty_lanes(netw, faults[fi], good, tfo_cache[fi],
                                  lane_mask, scratch) != 0) {
        detected[fi] = true;
        ++local.detected;
      }
    }
  }
  if (stats_out != nullptr) *stats_out += local;
  return detected;
}

bool detects(const net::Network& netw, const StuckAtFault& fault,
             const Pattern& pattern) {
  const StuckAtFault faults[] = {fault};
  const Pattern patterns[] = {pattern};
  return fault_simulate(netw, faults, patterns)[0];
}

std::vector<std::vector<std::uint64_t>> detection_matrix(
    const net::Network& netw, std::span<const StuckAtFault> faults,
    std::span<const Pattern> patterns) {
  const std::size_t words = (patterns.size() + 63) / 64;
  std::vector<std::vector<std::uint64_t>> matrix(
      faults.size(), std::vector<std::uint64_t>(words, 0));
  if (patterns.empty()) return matrix;
  const std::size_t num_pis = netw.inputs().size();
  for (const Pattern& p : patterns)
    if (p.size() != num_pis)
      throw std::invalid_argument("detection_matrix: pattern width mismatch");

  std::vector<std::vector<net::NodeId>> tfo_cache(faults.size());
  std::vector<std::uint64_t> scratch;
  for (std::size_t base = 0; base < patterns.size(); base += 64) {
    const std::size_t word = base / 64;
    const std::size_t lanes =
        std::min<std::size_t>(64, patterns.size() - base);
    const std::uint64_t lane_mask =
        lanes == 64 ? ~0ULL : ((1ULL << lanes) - 1);
    std::vector<std::uint64_t> pi_words(num_pis, 0);
    for (std::size_t lane = 0; lane < lanes; ++lane)
      for (std::size_t i = 0; i < num_pis; ++i)
        if (patterns[base + lane][i]) pi_words[i] |= 1ULL << lane;
    const net::SimFrame good = net::simulate64(netw, pi_words);
    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
      if (tfo_cache[fi].empty())
        tfo_cache[fi] = tfo_list(netw, faults[fi]);
      matrix[fi][word] = resimulate_faulty_lanes(
          netw, faults[fi], good, tfo_cache[fi], lane_mask, scratch);
    }
  }
  return matrix;
}

double coverage(const net::Network& netw,
                std::span<const StuckAtFault> faults,
                std::span<const Pattern> patterns) {
  if (faults.empty()) return 1.0;
  const auto detected = fault_simulate(netw, faults, patterns);
  const auto n = static_cast<double>(
      std::count(detected.begin(), detected.end(), true));
  return n / static_cast<double>(faults.size());
}

}  // namespace cwatpg::fault
