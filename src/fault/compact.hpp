// Static test-set compaction.
//
// ATPG flows emit more patterns than necessary (random phase + one test
// per targeted fault). Classic static compaction — reverse-order fault
// simulation with fault dropping — keeps a pattern only if it detects some
// fault not covered by the patterns kept so far. Coverage is preserved
// exactly; pattern counts typically shrink severalfold, which matters
// because tester time is proportional to pattern count.
#pragma once

#include "fault/fsim.hpp"

namespace cwatpg::fault {

struct CompactionResult {
  std::vector<Pattern> tests;      ///< the kept patterns (reverse order)
  std::size_t detected_before = 0;  ///< faults detected by the input set
  std::size_t detected_after = 0;   ///< faults detected by the kept set
};

/// Reverse-order compaction of `tests` against `faults`. The returned set
/// detects exactly the same subset of `faults` (detected_after ==
/// detected_before by construction; both reported for auditability).
CompactionResult compact_tests(const net::Network& net,
                               std::span<const StuckAtFault> faults,
                               std::span<const Pattern> tests);

}  // namespace cwatpg::fault
