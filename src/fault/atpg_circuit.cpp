#include "fault/atpg_circuit.hpp"

#include <stdexcept>

namespace cwatpg::fault {

AtpgCircuit build_atpg_circuit(const net::Network& netw,
                               const StuckAtFault& fault) {
  if (fault.node >= netw.node_count())
    throw std::invalid_argument("build_atpg_circuit: no such node");
  if (!fault.is_stem()) {
    const auto fis = netw.fanins(fault.node);
    if (fault.pin < 0 || static_cast<std::size_t>(fault.pin) >= fis.size())
      throw std::invalid_argument("build_atpg_circuit: no such pin");
  }

  const net::NodeId root = fault_cone_root(fault);
  const std::vector<bool> tfo = net::transitive_fanout(netw, root);
  // Reuse fault_cone's mask logic: TFI closure of the whole fanout cone.
  // (fault_cone also validates that the site reaches an output.)
  const net::SubCircuit cone = net::fault_cone(netw, root);
  std::vector<bool> in_cone(netw.node_count(), false);
  for (net::NodeId src : cone.to_src) in_cone[src] = true;

  AtpgCircuit atpg(fault);
  const std::size_t n = netw.node_count();
  atpg.good_of.assign(n, net::kNullNode);
  atpg.faulty_of.assign(n, net::kNullNode);
  atpg.xor_of.assign(n, net::kNullNode);
  net::Network& miter = atpg.miter;
  miter.set_name(netw.name() + "_atpg");

  // Good copy: C_psi^sub, minus the observed kOutput markers (replaced by
  // XOR outputs below).
  for (net::NodeId id = 0; id < n; ++id) {
    if (!in_cone[id]) continue;
    const auto& node = netw.node(id);
    switch (node.type) {
      case net::GateType::kInput:
        atpg.good_of[id] = miter.add_input(netw.name_of(id));
        atpg.support.push_back(id);
        break;
      case net::GateType::kConst0:
      case net::GateType::kConst1:
        atpg.good_of[id] =
            miter.add_const(node.type == net::GateType::kConst1);
        break;
      case net::GateType::kOutput:
        break;  // observed POs become XORs
      default: {
        std::vector<net::NodeId> fis;
        fis.reserve(node.fanins.size());
        for (net::NodeId fi : node.fanins) fis.push_back(atpg.good_of[fi]);
        atpg.good_of[id] =
            miter.add_gate(node.type, std::move(fis), netw.name_of(id));
        break;
      }
    }
  }

  // The stuck value source.
  net::NodeId fault_const = net::kNullNode;
  auto ensure_const = [&]() {
    if (fault_const == net::kNullNode)
      fault_const = miter.add_const(fault.stuck_value, "stuck_const");
    return fault_const;
  };

  // Faulty copy of the fanout cone C_psi^fo. Side inputs tap good signals.
  for (net::NodeId id = 0; id < n; ++id) {
    if (!in_cone[id] || !tfo[id]) continue;
    const auto& node = netw.node(id);
    if (node.type == net::GateType::kOutput) continue;
    if (id == root && fault.is_stem()) {
      atpg.faulty_of[id] = ensure_const();
      continue;
    }
    std::vector<net::NodeId> fis;
    fis.reserve(node.fanins.size());
    for (std::size_t p = 0; p < node.fanins.size(); ++p) {
      if (id == root && !fault.is_stem() &&
          static_cast<std::int32_t>(p) == fault.pin) {
        fis.push_back(ensure_const());
        continue;
      }
      const net::NodeId fi = node.fanins[p];
      fis.push_back(tfo[fi] ? atpg.faulty_of[fi] : atpg.good_of[fi]);
    }
    atpg.faulty_of[id] = miter.add_gate(node.type, std::move(fis),
                                        netw.name_of(id) + "_f");
  }

  // Comparison XORs, one per observed primary output.
  for (net::NodeId po : netw.outputs()) {
    if (!in_cone[po]) continue;
    const net::NodeId driver = netw.fanins(po)[0];
    const net::NodeId good_sig = atpg.good_of[driver];
    net::NodeId faulty_sig;
    if (po == root && !fault.is_stem()) {
      faulty_sig = ensure_const();  // branch fault on the PO pin itself
    } else {
      faulty_sig = tfo[driver] ? atpg.faulty_of[driver] : good_sig;
    }
    const net::NodeId x = miter.add_gate(net::GateType::kXor,
                                         {good_sig, faulty_sig},
                                         netw.name_of(po) + "_xor");
    atpg.xor_of[po] = x;
    miter.add_output(x, netw.name_of(po));
  }

  // Excitation point: the good value of the faulted net.
  atpg.good_fault_net =
      fault.is_stem()
          ? atpg.good_of[root]
          : atpg.good_of[netw.fanins(root)[static_cast<std::size_t>(
                fault.pin)]];

  atpg.fault_const_node = fault_const;
  miter.validate();
  return atpg;
}

std::vector<net::NodeId> transfer_ordering(const net::Network& netw,
                                           const AtpgCircuit& atpg,
                                           const std::vector<net::NodeId>& h) {
  if (h.size() != netw.node_count())
    throw std::invalid_argument("transfer_ordering: |h| != |V_C|");
  std::vector<net::NodeId> order;
  order.reserve(atpg.miter.node_count());
  const bool branch_fault = !atpg.fault.is_stem();
  for (net::NodeId v : h) {
    if (atpg.good_of[v] != net::kNullNode) order.push_back(atpg.good_of[v]);
    if (branch_fault && v == atpg.fault.node &&
        atpg.fault_const_node != net::kNullNode)
      order.push_back(atpg.fault_const_node);
    if (atpg.faulty_of[v] != net::kNullNode)
      order.push_back(atpg.faulty_of[v]);
    if (atpg.xor_of[v] != net::kNullNode) {
      order.push_back(atpg.xor_of[v]);
      // The kOutput marker fed by this XOR sits in the same slot.
      order.push_back(atpg.miter.fanouts(atpg.xor_of[v])[0]);
    }
  }
  if (order.size() != atpg.miter.node_count())
    throw std::logic_error("transfer_ordering: lost miter nodes");
  return order;
}

}  // namespace cwatpg::fault
