#include "fault/podem.hpp"

#include <algorithm>
#include <stdexcept>

#include "fault/testability.hpp"
#include "netlist/cone.hpp"

namespace cwatpg::fault {
namespace {

/// Three-valued plane value.
enum class V3 : std::uint8_t { k0, k1, kX };

V3 good_plane(V5 v) {
  switch (v) {
    case V5::kZero: case V5::kDbar: return V3::k0;
    case V5::kOne: case V5::kD: return V3::k1;
    default: return V3::kX;
  }
}
V3 faulty_plane(V5 v) {
  switch (v) {
    case V5::kZero: case V5::kD: return V3::k0;
    case V5::kOne: case V5::kDbar: return V3::k1;
    default: return V3::kX;
  }
}
V5 combine(V3 good, V3 faulty) {
  if (good == V3::kX || faulty == V3::kX) return V5::kX;
  if (good == V3::k0)
    return faulty == V3::k0 ? V5::kZero : V5::kDbar;
  return faulty == V3::k1 ? V5::kOne : V5::kD;
}

V3 and3(std::span<const V3> ins) {
  bool any_x = false;
  for (V3 v : ins) {
    if (v == V3::k0) return V3::k0;
    if (v == V3::kX) any_x = true;
  }
  return any_x ? V3::kX : V3::k1;
}
V3 or3(std::span<const V3> ins) {
  bool any_x = false;
  for (V3 v : ins) {
    if (v == V3::k1) return V3::k1;
    if (v == V3::kX) any_x = true;
  }
  return any_x ? V3::kX : V3::k0;
}
V3 xor3(std::span<const V3> ins) {
  bool parity = false;
  for (V3 v : ins) {
    if (v == V3::kX) return V3::kX;
    parity ^= v == V3::k1;
  }
  return parity ? V3::k1 : V3::k0;
}
V3 not3(V3 v) {
  if (v == V3::kX) return V3::kX;
  return v == V3::k0 ? V3::k1 : V3::k0;
}

V3 eval3(net::GateType type, std::span<const V3> ins) {
  using net::GateType;
  switch (type) {
    case GateType::kBuf: return ins[0];
    case GateType::kNot: return not3(ins[0]);
    case GateType::kAnd: return and3(ins);
    case GateType::kNand: return not3(and3(ins));
    case GateType::kOr: return or3(ins);
    case GateType::kNor: return not3(or3(ins));
    case GateType::kXor: return xor3(ins);
    case GateType::kXnor: return not3(xor3(ins));
    default:
      throw std::logic_error("eval3: not a gate");
  }
}

/// Does the gate type complement its core function?
bool inverts(net::GateType type) {
  using net::GateType;
  return type == GateType::kNot || type == GateType::kNand ||
         type == GateType::kNor || type == GateType::kXnor;
}

/// Controlling input value (the value that determines the output alone),
/// if the gate has one.
std::optional<bool> controlling_value(net::GateType type) {
  using net::GateType;
  switch (type) {
    case GateType::kAnd: case GateType::kNand: return false;
    case GateType::kOr: case GateType::kNor: return true;
    default: return std::nullopt;
  }
}

class PodemEngine {
 public:
  PodemEngine(const net::Network& netw, const StuckAtFault& fault,
              const PodemOptions& options)
      : netw_(netw), fault_(fault), options_(options) {
    if (options_.scoap_guidance) scoap_ = compute_scoap(netw);
  }

  PodemResult run() {
    PodemResult result;
    // Quick observability screen.
    const auto tfo = net::transitive_fanout(netw_, fault_.node);
    bool observable = false;
    for (net::NodeId po : netw_.outputs()) observable |= tfo[po];
    if (!observable) {
      result.status = PodemStatus::kUntestable;
      return result;
    }

    pi_value_.assign(netw_.inputs().size(), V3::kX);
    value_.assign(netw_.node_count(), V5::kX);

    struct Decision {
      std::size_t pi;
      bool value;
      bool flipped;
    };
    std::vector<Decision> decisions;

    for (;;) {
      simulate(result);
      const Outcome outcome = analyze();
      if (outcome.kind == Outcome::kSuccess) {
        result.status = PodemStatus::kDetected;
        result.test.resize(netw_.inputs().size());
        for (std::size_t i = 0; i < pi_value_.size(); ++i)
          result.test[i] = pi_value_[i] == V3::k1;
        return result;
      }
      bool conflict = outcome.kind == Outcome::kConflict;
      if (!conflict) {
        // Backtrace the objective to a primary input.
        const auto choice = backtrace(outcome.net, outcome.value);
        if (!choice) {
          conflict = true;
        } else {
          ++result.decisions;
          decisions.push_back({choice->first, choice->second, false});
          pi_value_[choice->first] = choice->second ? V3::k1 : V3::k0;
          continue;
        }
      }
      // Chronological backtracking over PI decisions.
      if (++result.backtracks > options_.max_backtracks) {
        result.status = PodemStatus::kAborted;
        return result;
      }
      while (!decisions.empty() && decisions.back().flipped) {
        pi_value_[decisions.back().pi] = V3::kX;
        decisions.pop_back();
      }
      if (decisions.empty()) {
        result.status = PodemStatus::kUntestable;
        return result;
      }
      Decision& top = decisions.back();
      top.value = !top.value;
      top.flipped = true;
      pi_value_[top.pi] = top.value ? V3::k1 : V3::k0;
    }
  }

 private:
  struct Outcome {
    enum Kind { kSuccess, kConflict, kObjective } kind = kConflict;
    net::NodeId net = net::kNullNode;  // objective net
    bool value = false;                // objective value
  };

  /// Full forward 5-valued simulation with fault injection.
  void simulate(PodemResult& result) {
    ++result.implications;
    std::vector<V3> good_ins, faulty_ins;
    for (net::NodeId id = 0; id < netw_.node_count(); ++id) {
      const auto& node = netw_.node(id);
      V5 out;
      switch (node.type) {
        case net::GateType::kInput: {
          std::size_t index = pi_index(id);
          const V3 v = pi_value_[index];
          out = combine(v, v);
          break;
        }
        case net::GateType::kConst0:
          out = V5::kZero;
          break;
        case net::GateType::kConst1:
          out = V5::kOne;
          break;
        case net::GateType::kOutput:
          out = pin_value(id, 0);
          break;
        default: {
          good_ins.clear();
          faulty_ins.clear();
          for (std::size_t p = 0; p < node.fanins.size(); ++p) {
            const V5 v = pin_value(id, p);
            good_ins.push_back(good_plane(v));
            faulty_ins.push_back(faulty_plane(v));
          }
          out = combine(eval3(node.type, good_ins),
                        eval3(node.type, faulty_ins));
          break;
        }
      }
      if (fault_.is_stem() && id == fault_.node) {
        // The faulty plane of the stem is pinned to the stuck value.
        out = combine(good_plane(out),
                      fault_.stuck_value ? V3::k1 : V3::k0);
      }
      value_[id] = out;
    }
  }

  /// The 5-valued value seen at input pin p of node id (with branch-fault
  /// injection).
  V5 pin_value(net::NodeId id, std::size_t pin) const {
    const net::NodeId driver = netw_.fanins(id)[pin];
    V5 v = value_[driver];
    if (!fault_.is_stem() && id == fault_.node &&
        static_cast<std::int32_t>(pin) == fault_.pin)
      v = combine(good_plane(v), fault_.stuck_value ? V3::k1 : V3::k0);
    return v;
  }

  std::size_t pi_index(net::NodeId id) const {
    const auto inputs = netw_.inputs();
    return static_cast<std::size_t>(
        std::find(inputs.begin(), inputs.end(), id) - inputs.begin());
  }

  Outcome analyze() const {
    // Excitation: the good value at the fault site must be ~stuck.
    const net::NodeId site_driver =
        fault_.is_stem()
            ? fault_.node
            : netw_.fanins(fault_.node)[static_cast<std::size_t>(fault_.pin)];
    const V3 site_good = good_plane(value_[site_driver]);
    const V3 want = fault_.stuck_value ? V3::k0 : V3::k1;
    if (site_good == V3::kX)
      return {Outcome::kObjective, site_driver, want == V3::k1};
    if (site_good != want) return {Outcome::kConflict};

    // Propagation: a D/D' at any primary output is success.
    for (net::NodeId po : netw_.outputs()) {
      const V5 v = value_[po];
      if (v == V5::kD || v == V5::kDbar) return {Outcome::kSuccess};
    }

    // Otherwise advance the D-frontier: a gate with a D/D' input and X
    // output; objective = set an X input to the non-controlling value.
    for (net::NodeId id = 0; id < netw_.node_count(); ++id) {
      if (value_[id] != V5::kX || !net::is_logic(netw_.type(id))) continue;
      const auto& node = netw_.node(id);
      bool has_d = false;
      for (std::size_t p = 0; p < node.fanins.size(); ++p) {
        const V5 v = pin_value(id, p);
        if (v == V5::kD || v == V5::kDbar) has_d = true;
      }
      if (!has_d) continue;
      for (std::size_t p = 0; p < node.fanins.size(); ++p) {
        if (pin_value(id, p) != V5::kX) continue;
        const auto control = controlling_value(netw_.type(id));
        const bool objective_value = control ? !*control : true;
        return {Outcome::kObjective, node.fanins[p], objective_value};
      }
    }
    return {Outcome::kConflict};  // D-frontier exhausted
  }

  /// Walks the objective back to an unassigned primary input.
  std::optional<std::pair<std::size_t, bool>> backtrace(net::NodeId target,
                                                        bool value) const {
    net::NodeId current = target;
    bool want = value;
    for (;;) {
      const auto& node = netw_.node(current);
      switch (node.type) {
        case net::GateType::kInput: {
          const std::size_t index = pi_index(current);
          if (pi_value_[index] != V3::kX) return std::nullopt;
          return std::make_pair(index, want);
        }
        case net::GateType::kConst0:
        case net::GateType::kConst1:
          return std::nullopt;  // cannot justify through a constant
        case net::GateType::kOutput:
        case net::GateType::kBuf:
          current = node.fanins[0];
          break;
        default: {
          if (inverts(node.type)) want = !want;
          // Pick an X-valued input: the first one, or — with SCOAP
          // guidance — the one cheapest to set to the wanted value.
          net::NodeId next = net::kNullNode;
          std::uint32_t best_cost = Scoap::kUnreachable;
          for (std::size_t p = 0; p < node.fanins.size(); ++p) {
            if (pin_value(current, p) != V5::kX) continue;
            const net::NodeId candidate = node.fanins[p];
            if (!options_.scoap_guidance) {
              next = candidate;
              break;
            }
            const std::uint32_t cost =
                want ? scoap_.cc1[candidate] : scoap_.cc0[candidate];
            if (next == net::kNullNode || cost < best_cost) {
              next = candidate;
              best_cost = cost;
            }
          }
          if (next == net::kNullNode) return std::nullopt;
          current = next;
          break;
        }
      }
    }
  }

  const net::Network& netw_;
  const StuckAtFault fault_;
  const PodemOptions options_;
  Scoap scoap_;
  std::vector<V3> pi_value_;
  std::vector<V5> value_;
};

}  // namespace

V5 eval5(net::GateType type, std::span<const V5> inputs) {
  std::vector<V3> good, faulty;
  good.reserve(inputs.size());
  faulty.reserve(inputs.size());
  for (V5 v : inputs) {
    good.push_back(good_plane(v));
    faulty.push_back(faulty_plane(v));
  }
  return combine(eval3(type, good), eval3(type, faulty));
}

PodemResult podem(const net::Network& netw, const StuckAtFault& fault,
                  const PodemOptions& options) {
  if (fault.node >= netw.node_count())
    throw std::invalid_argument("podem: no such node");
  if (!fault.is_stem()) {
    const auto fis = netw.fanins(fault.node);
    if (fault.pin < 0 || static_cast<std::size_t>(fault.pin) >= fis.size())
      throw std::invalid_argument("podem: no such pin");
  }
  PodemEngine engine(netw, fault, options);
  return engine.run();
}

}  // namespace cwatpg::fault
