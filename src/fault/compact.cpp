#include "fault/compact.hpp"

#include <algorithm>

namespace cwatpg::fault {

CompactionResult compact_tests(const net::Network& netw,
                               std::span<const StuckAtFault> faults,
                               std::span<const Pattern> tests) {
  CompactionResult result;
  const std::vector<bool> baseline = fault_simulate(netw, faults, tests);
  result.detected_before = static_cast<std::size_t>(
      std::count(baseline.begin(), baseline.end(), true));

  // Reverse order: late patterns tend to be the deliberately-targeted
  // (hard) ones; keeping them first lets them absorb the easy faults that
  // the early random patterns were kept for.
  std::vector<bool> covered(faults.size(), false);
  std::vector<StuckAtFault> remaining;
  std::vector<std::size_t> remaining_index;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (baseline[i]) {
      remaining.push_back(faults[i]);
      remaining_index.push_back(i);
    }
  }

  for (std::size_t k = tests.size(); k-- > 0 && !remaining.empty();) {
    const Pattern& candidate = tests[k];
    const Pattern one[] = {candidate};
    const std::vector<bool> hit = fault_simulate(netw, remaining, one);
    bool useful = false;
    std::vector<StuckAtFault> next;
    std::vector<std::size_t> next_index;
    for (std::size_t j = 0; j < remaining.size(); ++j) {
      if (hit[j]) {
        useful = true;
      } else {
        next.push_back(remaining[j]);
        next_index.push_back(remaining_index[j]);
      }
    }
    if (useful) {
      result.tests.push_back(candidate);
      remaining = std::move(next);
      remaining_index = std::move(next_index);
    }
  }

  const std::vector<bool> after =
      fault_simulate(netw, faults, result.tests);
  result.detected_after = static_cast<std::size_t>(
      std::count(after.begin(), after.end(), true));
  return result;
}

}  // namespace cwatpg::fault
