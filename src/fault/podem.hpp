// PODEM (path-oriented decision making) structural ATPG — the classical
// baseline the SAT formulation competes with.
//
// The paper analyzes the SAT route (Larrabee/TEGUS); pre-SAT ATPG engines
// searched the circuit directly with the 5-valued D-calculus
// {0, 1, X, D, D'} (Goel 1981). This implementation provides the
// head-to-head baseline for the comparison bench: objective selection
// (excite the fault, then advance the D-frontier), backtrace to a primary
// input, forward 5-valued implication, and chronological backtracking over
// PI assignments.
//
// Interestingly, PODEM's decision tree is *also* governed by circuit
// topology — the same regularity that keeps cut-width low keeps its
// backtrack counts low, which the comparison bench makes visible.
#pragma once

#include <cstdint>
#include <optional>

#include "fault/fault.hpp"
#include "fault/fsim.hpp"

namespace cwatpg::fault {

/// Five-valued logic: fault-free/faulty value pairs.
enum class V5 : std::uint8_t {
  kZero,  ///< 0/0
  kOne,   ///< 1/1
  kX,     ///< unassigned
  kD,     ///< 1/0 (good 1, faulty 0)
  kDbar,  ///< 0/1
};

/// 5-valued gate evaluation over an input list (AND/OR/NOT/BUF/XOR and
/// their complements). Exposed for tests.
V5 eval5(net::GateType type, std::span<const V5> inputs);

struct PodemOptions {
  std::uint64_t max_backtracks = 100'000;
  /// Guide backtrace by SCOAP controllability (pick the cheapest input to
  /// justify) instead of the first unassigned one — the classical
  /// testability-measure coupling; usually fewer backtracks.
  bool scoap_guidance = false;
};

enum class PodemStatus : std::uint8_t {
  kDetected,
  kUntestable,  ///< search space exhausted: fault is redundant
  kAborted,     ///< backtrack limit hit
};

struct PodemResult {
  PodemStatus status = PodemStatus::kAborted;
  Pattern test;  ///< PI assignment when kDetected (X's filled with 0)
  std::uint64_t backtracks = 0;
  std::uint64_t decisions = 0;
  std::uint64_t implications = 0;  ///< forward 5-valued simulations
};

/// Generates a test for `fault` on `net` with PODEM. Handles stem and
/// branch faults on any observable site; a site with no path to an output
/// returns kUntestable immediately.
PodemResult podem(const net::Network& net, const StuckAtFault& fault,
                  const PodemOptions& options = {});

}  // namespace cwatpg::fault
