// Incremental SAT-ATPG over a shared fault-injection miter.
//
// The per-fault flow (tegus.hpp) builds and solves a fresh CNF per fault —
// exactly the 1996 TEGUS recipe the paper analyzes. Modern SAT-ATPG
// engines instead encode ONE miter with *fault-select* variables and solve
// each fault as an incremental query under assumptions, so conflict
// clauses learned on one fault (mostly: "the two copies agree wherever no
// fault is selected") transfer to every later fault.
//
// Construction: a good copy of the circuit plus a faulty copy where every
// fault site v carries two selects s_v0 / s_v1:
//     s_v0 -> fv = 0,   s_v1 -> fv = 1,
//     ~s_v0 & ~s_v1 -> fv = gate(faulty fanins),
// pairwise XORs on the outputs, and the usual "some XOR is 1" objective.
// The selects are not assumed individually — that would put thousands of
// assumption decision levels under every conflict and produce gigantic
// learned clauses. Instead every (site, value) pair gets a binary *fault
// id*, each select is defined as the conjunction of its id bits
// (s ↔ AND of fid literals), and a query assumes just the ~log2(2n) id
// bits: unit propagation then switches exactly one select on and all
// others off, and learned clauses stay small and reusable.
//
// Covers stem faults (the collapsed representatives of fanout-free
// branches); branch faults on true fanout stems fall back to the
// per-fault engine in the comparison bench.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fault/fsim.hpp"
#include "sat/solver.hpp"

namespace cwatpg::fault {

class SharedMiter {
 public:
  /// Builds the select-instrumented miter for all stem fault sites of
  /// `net` (every non-kOutput node with fanout). `net` must outlive this.
  explicit SharedMiter(const net::Network& net,
                       sat::SolverConfig solver_config = {});

  /// Number of CNF variables in the shared encoding.
  std::size_t num_vars() const { return num_vars_; }

  /// Solves stem fault (site, stuck_value) incrementally.
  /// kSat => testable, `test_out` receives a full-width input pattern;
  /// kUnsat => untestable; kUnknown => conflict budget exhausted.
  sat::SolveStatus solve_fault(net::NodeId site, bool stuck_value,
                               Pattern& test_out);

  /// Cumulative solver statistics across all queries.
  const sat::SolverStats& stats() const { return solver_->stats(); }

 private:
  const net::Network& net_;
  std::unique_ptr<sat::Solver> solver_;
  std::size_t num_vars_ = 0;
  std::vector<sat::Var> good_;  // per node
  /// Fault id of (site, value): fault_code_[site] + value; kNoCode when
  /// the node is not a fault site.
  std::vector<std::uint32_t> fault_code_;
  static constexpr std::uint32_t kNoCode = static_cast<std::uint32_t>(-1);
  std::vector<sat::Var> fid_bits_;
};

/// Convenience: runs every stem fault of the collapsed list through one
/// SharedMiter; returns per-fault status aligned with `faults` (non-stem
/// entries get kUnknown and `skipped` true).
struct IncrementalOutcome {
  sat::SolveStatus status = sat::SolveStatus::kUnknown;
  bool skipped = false;
  Pattern test;
};
std::vector<IncrementalOutcome> run_atpg_incremental(
    const net::Network& net, std::span<const StuckAtFault> faults,
    sat::SolverConfig solver_config = {});

}  // namespace cwatpg::fault
