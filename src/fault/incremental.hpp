// Incremental SAT-ATPG over a shared fault-injection miter.
//
// The per-fault flow (tegus.hpp) builds and solves a fresh CNF per fault —
// exactly the 1996 TEGUS recipe the paper analyzes. Modern SAT-ATPG
// engines instead encode ONE miter with *fault-select* variables and solve
// each fault as an incremental query under assumptions, so conflict
// clauses learned on one fault (mostly: "the two copies agree wherever no
// fault is selected") transfer to every later fault.
//
// Construction: a good copy of the circuit plus a faulty copy where every
// fault site carries two selects s_0 / s_1. A stem site is a node v:
//     s_v0 -> fv = 0,   s_v1 -> fv = 1,
//     ~s_v0 & ~s_v1 -> fv = gate(faulty fanins);
// a branch site is an input pin (v, p) whose driver has fanout > 1: the
// pin gets its own wire variable w,
//     s_vp0 -> w = 0,   s_vp1 -> w = 1,
//     ~s_vp0 & ~s_vp1 -> w = faulty[fanin],
// and v's faulty gate clauses read w in place of the fanin — so the whole
// collapsed fault list (stems AND branches) is served by one encoding.
// Pairwise XORs on the outputs and the usual "some XOR is 1" objective
// complete the miter. The selects are not assumed individually — that
// would put thousands of assumption decision levels under every conflict
// and produce gigantic learned clauses. Instead every (site, value) pair
// gets a binary *fault id*, each select is defined as the conjunction of
// its id bits (s ↔ AND of fid literals), and a query assumes just the
// ~log2(2n) id bits: unit propagation then switches exactly one select on
// and all others off, and learned clauses stay small and reusable.
//
// A query additionally pins every primary input outside the fault's
// support cone (the fanin cone of its fanout cone) to 0. Off-cone inputs
// cannot affect excitation or any output difference, so the answer is
// unchanged — but the search becomes cone-local, matching the per-fault
// flow's key advantage (the paper's small-cut instances) instead of
// paying whole-circuit propagation on every decision.
//
// The encoding (SharedMiterCnf) is split from the solving session
// (SharedMiter) so one build can seed any number of independent solvers:
// the parallel engine gives each query stream its own clone, and the
// service registry pins one prebuilt encoding per circuit. The
// SolveProviders at the bottom plug the whole thing into the shared
// run_atpg_pipeline as SolveEngine::kIncremental.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "fault/fsim.hpp"
#include "fault/parallel_atpg.hpp"
#include "fault/tegus.hpp"
#include "sat/solver.hpp"

namespace cwatpg {
class ThreadPool;
}  // namespace cwatpg

namespace cwatpg::obs {
class Counter;
}  // namespace cwatpg::obs

namespace cwatpg::fault {

/// The shared select-instrumented miter CNF plus the fault-id tables
/// needed to query it. Immutable after construction and self-contained
/// (no reference back into the Network), so a shared_ptr<const
/// SharedMiterCnf> may outlive the network it was built from and seed
/// solvers on any number of threads concurrently.
class SharedMiterCnf {
 public:
  /// Builds the encoding covering every fault site of `net`: stems (any
  /// non-kOutput node with fanout) and branches (any input pin whose
  /// driver has fanout > 1) — a superset of collapsed_fault_list(net).
  explicit SharedMiterCnf(const net::Network& net);

  const sat::Cnf& cnf() const { return cnf_; }
  std::size_t num_vars() const { return cnf_.num_vars(); }
  std::size_t num_clauses() const { return cnf_.num_clauses(); }
  /// node_count() of the network this was built from — the cheap sanity
  /// check the providers run before adopting a prebuilt encoding.
  std::size_t node_count() const { return node_count_; }
  /// Encoded fault sites; each contributes two (site, value) fault ids.
  std::size_t num_sites() const { return num_codes_ / 2; }
  /// Wall-clock spent building (encode + instrument) — the amortized-
  /// build-cost numerator the observability layer reports.
  double build_seconds() const { return build_seconds_; }

  /// True iff `fault` has a select in the encoding. True for every entry
  /// of all_faults(net)/collapsed_fault_list(net).
  bool covers(const StuckAtFault& fault) const;

  /// Assumption literals selecting `fault`: the fault-id bits, the
  /// excitation literal (good value of the faulted net must be the stuck
  /// value's complement), and one pin-to-0 literal per primary input
  /// outside the fault's support cone — the cone restriction that keeps
  /// each query's search cone-local even though the CNF spans the whole
  /// circuit. Throws std::invalid_argument when !covers().
  std::vector<sat::Lit> assumptions_for(const StuckAtFault& fault) const;

  /// Primary inputs (good-copy variables) pinned to 0 by any query rooted
  /// at `node`: those outside the fanin cone of `node`'s fanout cone.
  /// Empty for nodes without a select. Exposed for tests and diagnostics.
  const std::vector<sat::Var>& pinned_inputs_of(net::NodeId node) const {
    return pinned_inputs_[node];
  }

  /// Good-copy variable per primary input, in Network::inputs() order —
  /// what test-pattern extraction reads from a satisfying model.
  const std::vector<sat::Var>& input_vars() const { return input_vars_; }

 private:
  static constexpr std::uint32_t kNoCode = static_cast<std::uint32_t>(-1);

  /// Fault id of (site, value=0); kNoCode when the site is not encoded.
  std::uint32_t code_of(const StuckAtFault& fault) const;

  sat::Cnf cnf_;
  std::size_t node_count_ = 0;
  std::uint32_t num_codes_ = 0;
  double build_seconds_ = 0.0;
  std::vector<std::uint32_t> stem_code_;  ///< per node
  std::vector<std::vector<std::uint32_t>> branch_code_;  ///< per node, pin
  /// Good-copy variable of the faulted net, indexed by code / 2 — the
  /// excitation assumption's variable.
  std::vector<sat::Var> excite_var_;
  std::vector<sat::Var> fid_bits_;
  std::vector<sat::Var> input_vars_;
  /// Per node: the off-cone primary inputs a query rooted there pins to 0.
  std::vector<std::vector<sat::Var>> pinned_inputs_;
};

/// One incremental solving session: a CDCL solver seeded from a (possibly
/// shared) SharedMiterCnf, accumulating learnt clauses across queries.
/// Thread-safe like sat::Solver: distinct sessions may run concurrently
/// (even over one shared encoding); a single session may not.
class SharedMiter {
 public:
  /// Builds a private encoding for `net` and a session over it.
  explicit SharedMiter(const net::Network& net,
                       sat::SolverConfig solver_config = {});

  /// Seeds a session from a prebuilt encoding — how the parallel engine
  /// clones one miter per query stream and how the service reuses the
  /// registry-pinned encoding.
  explicit SharedMiter(std::shared_ptr<const SharedMiterCnf> encoding,
                       sat::SolverConfig solver_config = {});

  const SharedMiterCnf& encoding() const { return *encoding_; }

  /// Number of CNF variables in the shared encoding.
  std::size_t num_vars() const { return encoding_->num_vars(); }

  /// Solves `fault` incrementally (stem or branch).
  /// kSat => testable, `test_out` receives a full-width input pattern;
  /// kUnsat => untestable; kUnknown => a budget/conflict cap fired (see
  /// last_query_stats().stop_reason). Throws std::invalid_argument when
  /// the encoding does not cover `fault`.
  sat::SolveStatus solve_fault(const StuckAtFault& fault, Pattern& test_out);

  /// Stem-fault shorthand: solve_fault({site, kStem, stuck_value}).
  sat::SolveStatus solve_fault(net::NodeId site, bool stuck_value,
                               Pattern& test_out);

  /// Stats of the most recent query alone — what the pipeline attributes
  /// to each fault.
  sat::SolverStats last_query_stats() const { return solver_.query_stats(); }

  /// Cumulative solver statistics across all queries.
  const sat::SolverStats& stats() const { return solver_.stats(); }

  /// Per-query conflict cap for subsequent queries (the in-miter
  /// escalation rung grows it for one retry, then restores it).
  void set_max_conflicts(std::uint64_t cap) {
    solver_.set_max_conflicts(cap);
  }

 private:
  std::shared_ptr<const SharedMiterCnf> encoding_;  // before solver_
  sat::Solver solver_;
};

/// Convenience: runs every fault of `faults` through one SharedMiter
/// session, in order; returns per-fault status aligned with `faults`.
/// Low-level (no unreachability masking: a fault whose cone reaches no
/// output simply comes back kUnsat) — the pipeline providers below add
/// the production semantics.
struct IncrementalOutcome {
  sat::SolveStatus status = sat::SolveStatus::kUnknown;
  Pattern test;
};
std::vector<IncrementalOutcome> run_atpg_incremental(
    const net::Network& net, std::span<const StuckAtFault> faults,
    sat::SolverConfig solver_config = {});

namespace detail {

/// Shared plumbing of the incremental SolveProviders (both engines):
/// adopt-or-build the encoding, precompute which faults reach an output,
/// and run per-fault queries with the in-miter conflict-cap retry rung.
///
/// Determinism contract: work-list position i is assigned to stream
/// (i mod S); each stream owns one session and queries its assigned
/// positions UNCONDITIONALLY in order — never consulting the (timing-
/// sensitive, in the parallel engine) dropped bitmap — so each stream's
/// query history, and therefore every model and stat it produces, is a
/// pure function of (net, options, S). The pipeline commits in work-list
/// order and discards outcomes of entries dropped in the meantime; serial
/// and parallel runs with the same S are byte-identical.
class IncrementalBase {
 public:
  explicit IncrementalBase(const AtpgOptions& options);

 protected:
  /// Adopts options.prebuilt_miter (validated against `net`) or builds a
  /// fresh encoding; fills the reachability mask and position tables;
  /// hoists the obs instrument handles.
  void setup(const net::Network& net, std::span<const StuckAtFault> faults,
             std::span<const std::size_t> work_list);

  const AtpgOptions& options_;
  sat::SolverConfig session_config_;
  std::uint64_t base_cap_ = 0;
  std::uint64_t retry_cap_ = 0;  ///< == base_cap_: retry rung disabled
  std::shared_ptr<const SharedMiterCnf> encoding_;
  std::vector<StuckAtFault> fault_of_pos_;   ///< work-list position → fault
  std::vector<bool> reachable_of_pos_;       ///< … → cone reaches a PO
  std::vector<std::size_t> pos_of_;          ///< fault index → position
  // Hoisted instrument handles (null when metrics are disabled).
  obs::Counter* c_queries_ = nullptr;
  obs::Counter* c_committed_ = nullptr;
  obs::Counter* c_retries_ = nullptr;
  obs::Counter* c_reused_ = nullptr;
};

/// Serial incremental strategy: one session per stream, advanced lazily on
/// the pipeline thread. run_atpg plugs this in for AtpgEngine::kIncremental
/// (streams default to 1; pin AtpgOptions::incremental_streams to match a
/// parallel run byte for byte).
class IncrementalProvider final : public SolveProvider, IncrementalBase {
 public:
  explicit IncrementalProvider(const AtpgOptions& options);
  ~IncrementalProvider() override;

  void begin(const net::Network& net, std::span<const StuckAtFault> faults,
             std::span<const std::size_t> work_list,
             const std::vector<bool>& dropped) override;
  FaultOutcome solve(std::size_t fault_index, Pattern& test_out) override;

 private:
  struct Stream;
  std::vector<std::unique_ptr<Stream>> streams_;
};

/// Parallel incremental strategy: one pool task per stream, each walking
/// its assigned work-list positions with a private session seeded from the
/// one shared prebuilt encoding, publishing outcomes into per-position
/// slots the pipeline thread waits on. run_atpg_parallel plugs this in for
/// AtpgEngine::kIncremental (streams default to the pool size).
class ParallelIncrementalProvider final : public SolveProvider,
                                          IncrementalBase {
 public:
  ParallelIncrementalProvider(ThreadPool& pool, const AtpgOptions& options,
                              ParallelStats& stats);
  ~ParallelIncrementalProvider() override;

  void begin(const net::Network& net, std::span<const StuckAtFault> faults,
             std::span<const std::size_t> work_list,
             const std::vector<bool>& dropped) override;
  FaultOutcome solve(std::size_t fault_index, Pattern& test_out) override;

  /// Called by run_atpg_parallel after pool.wait_idle(): folds the stream
  /// counters into ParallelStats (dispatched = queries run, wasted =
  /// queries whose outcome was never committed).
  void finalize();

 private:
  struct State;  ///< shared with the stream tasks; outlives the provider
  ThreadPool& pool_;
  ParallelStats& stats_;
  std::shared_ptr<State> state_;
};

}  // namespace detail

}  // namespace cwatpg::fault
