// Redundancy removal — ATPG as a logic optimizer.
//
// The paper's introduction cites redundancy addition/removal ([6] Cheng &
// Entrena, [9] Devadas et al.) among ATPG's applications: a stuck-at fault
// proven *untestable* means the circuit function cannot observe that net
// being stuck, so the net can be hard-wired to the stuck value and the
// logic constant-folded — a strictly size-reducing, function-preserving
// rewrite. Iterating to a fixpoint yields a 100%-testable (irredundant)
// circuit.
#pragma once

#include <cstdint>

#include "fault/tegus.hpp"

namespace cwatpg::fault {

struct RedundancyOptions {
  sat::SolverConfig solver;
  /// Safety valve on fixpoint iterations.
  std::size_t max_rounds = 32;
};

struct RedundancyResult {
  net::Network circuit;          ///< the irredundant rewrite
  std::size_t rounds = 0;        ///< fixpoint iterations executed
  std::size_t removed_faults = 0;  ///< untestable stem faults wired through
  std::size_t gates_before = 0;
  std::size_t gates_after = 0;
};

/// Removes all provably redundant logic from `net`. The result computes
/// the same function on every primary output (the PI/PO interface is
/// preserved; verify with verify::check_equivalence). Aborted faults
/// (solver budget) are conservatively treated as testable.
RedundancyResult remove_redundancy(const net::Network& net,
                                   const RedundancyOptions& options = {});

}  // namespace cwatpg::fault
