#include "fault/redundancy.hpp"

#include "netlist/simplify.hpp"

namespace cwatpg::fault {
namespace {

/// Applies the rewrite an untestable fault licenses: the faulted
/// connection is hard-wired to the stuck value. Returns the simplified
/// network (constant folding + dead-logic sweep).
net::Network wire_through(const net::Network& src, const StuckAtFault& fault) {
  net::Network out;
  out.set_name(src.name());
  std::vector<net::NodeId> map(src.node_count(), net::kNullNode);
  net::NodeId stuck_const = net::kNullNode;
  auto constant = [&]() {
    if (stuck_const == net::kNullNode)
      stuck_const = out.add_const(fault.stuck_value);
    return stuck_const;
  };

  for (net::NodeId id = 0; id < src.node_count(); ++id) {
    const auto& node = src.node(id);
    std::vector<net::NodeId> fis;
    fis.reserve(node.fanins.size());
    for (std::size_t p = 0; p < node.fanins.size(); ++p) {
      if (!fault.is_stem() && id == fault.node &&
          static_cast<std::int32_t>(p) == fault.pin) {
        fis.push_back(constant());  // branch fault: this pin only
      } else {
        fis.push_back(map[node.fanins[p]]);
      }
    }
    switch (node.type) {
      case net::GateType::kInput:
        map[id] = out.add_input(src.name_of(id));
        break;
      case net::GateType::kConst0:
      case net::GateType::kConst1:
        map[id] = out.add_const(node.type == net::GateType::kConst1);
        break;
      case net::GateType::kOutput:
        map[id] = out.add_output(fis[0], src.name_of(id));
        break;
      default:
        map[id] = out.add_gate(node.type, std::move(fis), src.name_of(id));
        break;
    }
    if (fault.is_stem() && id == fault.node)
      map[id] = constant();  // every consumer sees the stuck value
  }
  return net::simplify(out);
}

}  // namespace

RedundancyResult remove_redundancy(const net::Network& netw,
                                   const RedundancyOptions& options) {
  RedundancyResult result;
  result.circuit = netw;
  result.gates_before = netw.gate_count();

  for (std::size_t round = 0; round < options.max_rounds; ++round) {
    ++result.rounds;
    bool changed = false;
    const auto faults = collapsed_fault_list(result.circuit);
    for (const StuckAtFault& fault : faults) {
      Pattern test;
      const FaultOutcome outcome =
          generate_test(result.circuit, fault, options.solver, test);
      if (outcome.status == FaultStatus::kUntestable ||
          outcome.status == FaultStatus::kUnreachable) {
        // Unreachable sites are dead logic; wiring them through lets the
        // sweep collect them too.
        result.circuit = wire_through(result.circuit, fault);
        ++result.removed_faults;
        changed = true;
        break;  // fault list is stale: restart the scan
      }
    }
    if (!changed) break;
  }
  result.gates_after = result.circuit.gate_count();
  return result;
}

}  // namespace cwatpg::fault
