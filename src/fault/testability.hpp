// SCOAP testability measures (Goldstein 1979) — combinational
// controllability and observability.
//
// §3.2 builds on Fujiwara's complexity analysis of exactly these
// controllability/observability problems. SCOAP is the classical linear-
// time heuristic estimate: CC0/CC1(v) approximate how many pin
// assignments it takes to set net v to 0/1, CO(v) how many to propagate v
// to an output. A fault (v, s-a-b) then has detect cost CC(~b) + CO — the
// pre-cut-width-era difficulty predictor, which bench_testability
// correlates against real SAT/PODEM effort and against cut-width.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault.hpp"

namespace cwatpg::fault {

struct Scoap {
  /// Per NodeId; kUnreachable for nets no output observes.
  std::vector<std::uint32_t> cc0, cc1, observability;
  static constexpr std::uint32_t kUnreachable =
      static_cast<std::uint32_t>(-1);

  /// SCOAP detect cost of a stuck-at fault: CC(~stuck) at the faulted net
  /// plus its observability (for a branch, the consumer pin's
  /// observability path). kUnreachable when unobservable.
  std::uint32_t detect_cost(const net::Network& net,
                            const StuckAtFault& fault) const;
};

/// Computes all three measures in two topological sweeps. Constants get
/// CC=0 for their value and kUnreachable for the other.
Scoap compute_scoap(const net::Network& net);

}  // namespace cwatpg::fault
