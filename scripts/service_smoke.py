#!/usr/bin/env python3
"""Smoke-drives cwatpg_serve over cwatpg.rpc/1 and validates responses.

Starts the daemon, then walks the whole request surface: load_circuit,
status, fsim, run_atpg (serial + parallel determinism check), cancel
(unknown job and a live one), an intentionally malformed request, and a
graceful shutdown. Exits nonzero on the first schema or semantics
violation — the CI service-smoke job runs exactly this.

With --chaos-kill it instead exercises the crash-recovery journal: start
the daemon with --journal and a failpoint schedule that wedges the worker,
submit a job, SIGKILL the daemon mid-job, restart it on the same journal,
and assert the orphaned job is reported as `interrupted` (and that a third
boot is quiet again). This is the "kill -9 is survivable" guarantee.

With --cluster the binary must be cwatpg_cluster: boot a SUPERVISED
coordinator with two spawned worker daemons, then kill -9 every worker
once mid-job (current pids read from the cluster `status`). Each job must
still complete with totals and tests identical to an undisturbed run,
each dead slot must come back as generation 2 with `last_exit` "signal 9"
and no zombie left behind, and the totals in `status` must accumulate
across generations. This is the self-healing worker-failover guarantee.

With --tcp the daemon is booted with --listen on an ephemeral loopback
port (parsed from its stderr banner) and driven over real sockets: two
concurrent clients with deliberately colliding request ids, per-connection
response routing, an over-the-cap connection answered `overloaded`, an
abrupt client disconnect that must cancel only that client's jobs, and a
TCP shutdown drain.

With --tcp-cluster (two binaries: cwatpg_cluster then cwatpg_serve) the
workers are REMOTE: two `cwatpg_serve --listen` daemons on loopback, a
coordinator attached via --connect, then kill -9 of one worker process
mid-job. The job must finish with classification identical to the
undisturbed reference — the cross-machine worker-failover guarantee.

usage: service_smoke.py /path/to/cwatpg_serve [--chaos-kill | --tcp]
       service_smoke.py /path/to/cwatpg_cluster --cluster
       service_smoke.py /path/to/cwatpg_cluster /path/to/cwatpg_serve --tcp-cluster
"""

import json
import os
import re
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time

RPC_SCHEMA = "cwatpg.rpc/1"

# A 4-input, 2-output carry/sum slice — small enough to solve instantly,
# large enough to have a real fault list.
BENCH_TEXT = """
# smoke circuit
INPUT(a)
INPUT(b)
INPUT(cin)
INPUT(en)
OUTPUT(sum)
OUTPUT(carry)
x1 = XOR(a, b)
sum = XOR(x1, cin)
a1 = AND(a, b)
a2 = AND(x1, cin)
c1 = OR(a1, a2)
carry = AND(c1, en)
"""


class Wire:
    """cwatpg.rpc/1 framing + envelope checks over a binary stream pair."""

    def __init__(self, win, rout):
        self.win = win
        self.rout = rout
        self.next_id = 1

    def send(self, kind, params=None, req_id=None):
        if req_id is None:
            req_id = self.next_id
            self.next_id += 1
        frame = {"schema": RPC_SCHEMA, "id": req_id, "kind": kind,
                 "params": params or {}}
        payload = json.dumps(frame).encode()
        self.win.write(b"%d\n%s" % (len(payload), payload))
        self.win.flush()
        return req_id

    def recv(self):
        header = b""
        while not header.endswith(b"\n"):
            byte = self.rout.read(1)
            if not byte:
                raise SystemExit("FAIL: server closed stream mid-conversation")
            header += byte
        payload = self.rout.read(int(header))
        response = json.loads(payload)
        check(response.get("schema") == RPC_SCHEMA,
              f"response schema: {response}")
        check("id" in response and "ok" in response,
              f"response envelope: {response}")
        if not response["ok"]:
            err = response.get("error", {})
            check("code" in err and "message" in err,
                  f"error envelope: {response}")
        return response

    def call(self, kind, params=None):
        """Send one request and read one response (in-order control plane)."""
        req_id = self.send(kind, params)
        response = self.recv()
        check(response["id"] == req_id,
              f"response id {response['id']} matches request id {req_id}")
        return response


class Client(Wire):
    """A daemon spawned over stdio pipes, spoken to through its stdin/stdout."""

    def __init__(self, binary, extra_args=(), env=None,
                 base_args=("--threads=2", "--queue-capacity=8")):
        full_env = dict(os.environ)
        if env:
            full_env.update(env)
        self.proc = subprocess.Popen(
            [binary, *base_args, *extra_args],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            env=full_env,
        )
        super().__init__(self.proc.stdin, self.proc.stdout)


class TcpClient(Wire):
    """One TCP connection to a --listen daemon."""

    def __init__(self, port, host="127.0.0.1"):
        self.sock = socket.create_connection((host, port), timeout=60)
        f = self.sock.makefile("rwb")
        super().__init__(f, f)

    def close(self):
        """Abrupt disconnect — exactly what a crashed client looks like.

        The makefile() object holds an io-ref on the socket, so
        sock.close() alone never releases the fd; shutdown() tears the
        connection down immediately regardless."""
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.win.close()
        except OSError:
            pass
        self.sock.close()


def wait_for_listen(proc):
    """Parses `... listening on HOST:PORT ...` from the daemon's stderr
    banner (the stable contract for ephemeral --listen=...:0 ports), then
    keeps draining stderr on a thread so later diagnostics can't block the
    daemon."""
    pattern = re.compile(rb"listening on [0-9.]+:([0-9]+)")
    line = b""
    while True:
        byte = proc.stderr.read(1)
        if not byte:
            raise SystemExit("FAIL: daemon exited before announcing its port")
        line += byte
        if byte != b"\n":
            continue
        m = pattern.search(line)
        if m:
            port = int(m.group(1))
            threading.Thread(target=_forward_stderr, args=(proc.stderr,),
                             daemon=True).start()
            return port
        line = b""


def _forward_stderr(stream):
    for chunk in iter(lambda: stream.read(4096), b""):
        sys.stderr.buffer.write(chunk)
        sys.stderr.buffer.flush()


def check(cond, what):
    if not cond:
        raise SystemExit(f"FAIL: {what}")
    print(f"ok: {what}"[:100])


def chaos_kill(binary):
    """kill -9 mid-job, restart on the same journal, expect `interrupted`."""
    journal = os.path.join(tempfile.mkdtemp(prefix="cwatpg_smoke_"),
                           "journal.jsonl")

    # Boot 1: the worker is wedged by a failpoint so the job cannot finish
    # before we SIGKILL the process.
    c = Client(binary, extra_args=[f"--journal={journal}"],
               env={"CWATPG_FAILPOINTS":
                    "svc.server.execute.stall=always@60000;"
                    "svc.server.stall.ignore_cancel=always"})
    r = c.call("load_circuit", {"name": "chaos", "text": BENCH_TEXT})
    check(r["ok"], "boot 1: load_circuit succeeds")
    key = r["result"]["circuit"]["key"]
    job_id = c.send("run_atpg", {"circuit": key, "seed": 1})
    # A status round-trip after the submit proves the reader thread has
    # processed (and therefore journaled) the admission: frames are
    # handled in order, and `accepted` is fsync'd before the queue push.
    r = c.call("status")
    check(r["result"]["in_flight"] >= 1, "boot 1: job is in flight")
    check(r["result"]["journal"]["path"] == journal,
          "boot 1: status reports the journal path")
    c.proc.kill()  # SIGKILL: no destructors, no terminal record
    c.proc.wait(timeout=30)
    print("ok: boot 1 killed -9 with job %d mid-flight" % job_id)

    # Boot 2: recovery must surface the orphan as `interrupted` — loudly,
    # not as silent loss.
    c = Client(binary, extra_args=[f"--journal={journal}"])
    r = c.call("status")
    interrupted = r["result"].get("interrupted_jobs")
    check(interrupted is not None, "boot 2: status has interrupted_jobs")
    check(any(rec["job"] == job_id and rec.get("kind") == "run_atpg"
              for rec in interrupted),
          f"boot 2: job {job_id} reported interrupted: {interrupted}")
    check(r["result"]["journal"]["recovered_corrupt"] == 0,
          "boot 2: journal replayed without corruption")
    # The recovered daemon still serves normally.
    r = c.call("load_circuit", {"name": "chaos", "text": BENCH_TEXT})
    r = c.call("run_atpg", {"circuit": r["result"]["circuit"]["key"],
                            "seed": 2})
    check(r["ok"], "boot 2: recovered daemon still runs jobs")
    r = c.call("shutdown")
    check(r["ok"], "boot 2: graceful shutdown")
    check(c.proc.wait(timeout=30) == 0, "boot 2: clean exit")

    # Boot 3: recovery wrote `interrupted` closure records, so a second
    # restart reports nothing — the orphan was handled, not re-raised.
    c = Client(binary, extra_args=[f"--journal={journal}"])
    r = c.call("status")
    check(r["result"].get("interrupted_jobs") == [],
          "boot 3: interrupted report was consumed by boot 2")
    c.call("shutdown")
    check(c.proc.wait(timeout=30) == 0, "boot 3: clean exit")
    print("\nchaos-kill smoke: all checks passed")


def no_zombie(coordinator_pid, pid):
    """True once `pid` is either fully gone or reused by an unrelated
    process — i.e. NOT a zombie child of the coordinator."""
    try:
        with open(f"/proc/{pid}/stat", "rb") as f:
            stat = f.read()
    except OSError:
        return True  # reaped and recycled: no /proc entry at all
    # Fields after the parenthesised comm: state is field 3, ppid field 4.
    tail = stat.rsplit(b")", 1)[1].split()
    state, ppid = tail[0], int(tail[1])
    return not (state == b"Z" and ppid == coordinator_pid)


def cluster_smoke(binary):
    """The supervised drill: kill -9 EVERY worker once mid-job. Each job
    must still finish with totals/tests identical to an undisturbed run,
    every dead slot must be respawned as a new generation (reaped, never a
    zombie), and the pool must be back to full strength at the end."""
    # Every shard execution inside a worker stalls 200ms (the failpoint env
    # is inherited by the spawned cwatpg_serve children), so with 1-fault
    # shards both workers are reliably mid-shard when a kill lands.
    c = Client(binary,
               base_args=("--workers=2", "--shard-size=1",
                          "--respawn-backoff=0.02", "--max-respawns=10"),
               env={"CWATPG_FAILPOINTS":
                    "svc.server.execute.stall=always@200"})
    r = c.call("load_circuit", {"name": "smoke", "text": BENCH_TEXT})
    check(r["ok"], "cluster: load_circuit succeeds")
    key = r["result"]["circuit"]["key"]
    faults = r["result"]["circuit"]["faults"]
    check(faults >= 6, f"cluster: enough faults to shard ({faults})")

    def status():
        return c.call("status")["result"]

    def await_status(pred, what):
        for _ in range(250):
            st = status()
            if pred(st):
                check(True, what)
                return st
            time.sleep(0.02)
        raise SystemExit(f"FAIL (timeout): {what}\nlast status: {st}")

    st = status()
    check(st.get("cluster") is True, "cluster: status identifies a cluster")
    check(st["workers"] == 2 and st["workers_alive"] == 2,
          "cluster: both workers alive at boot")
    check(all(w["generation"] == 1 and w["restarts"] == 0
              for w in st["worker_pool"]),
          "cluster: every slot boots at generation 1")
    pids = [w["pid"] for w in st["worker_pool"] if w["alive"]]
    check(len(pids) == 2 and all(p > 0 for p in pids),
          f"cluster: worker pids visible in status ({pids})")

    # Reference: an undisturbed run fixes the expected classification.
    def signature(res):
        return (res["num_detected"], res["num_untestable"],
                res["num_aborted"], res["num_undetermined"], res["tests"])

    r = c.call("run_atpg", {"circuit": key, "seed": 5})
    check(r["ok"] and not r["result"]["interrupted"],
          "cluster: reference run completes")
    ref = signature(r["result"])
    shards_before = [w["shards_completed"] for w in status()["worker_pool"]]

    # Kill every slot once: submit a job, wait until the shards are spread
    # over both workers, SIGKILL the slot's CURRENT pid (generations move
    # the pid between drills), and require an identical result each time.
    for drill in range(2):
        victim = status()["worker_pool"][drill]["pid"]
        job_id = c.send("run_atpg", {"circuit": key, "seed": 5})
        time.sleep(0.35)
        os.kill(victim, signal.SIGKILL)
        print(f"ok: drill {drill}: killed worker pid {victim} mid-job")
        term = c.recv()
        check(term["id"] == job_id and term["ok"],
              f"cluster: drill {drill}: job survived the kill")
        check(signature(term["result"]) == ref,
              f"cluster: drill {drill}: totals/tests identical to reference")
        st = await_status(
            lambda st: st["workers_alive"] == 2
            and st["worker_pool"][drill]["restarts"] >= 1,
            f"cluster: drill {drill}: dead slot respawned, pool full again")
        slot = st["worker_pool"][drill]
        check(slot["generation"] == 2 and slot["last_exit"] == "signal 9",
              f"cluster: drill {drill}: generation 2 after signal 9")
        check(slot["pid"] != victim and slot["pid"] > 0,
              f"cluster: drill {drill}: respawned slot has a fresh pid")
        for _ in range(250):
            if no_zombie(c.proc.pid, victim):
                break
            time.sleep(0.02)
        check(no_zombie(c.proc.pid, victim),
              f"cluster: drill {drill}: killed pid {victim} is no zombie")

    st = status()
    check(st["worker_deaths"] == 2 and st["respawns"] == 2,
          "cluster: status counts both deaths and both respawns")
    check(st["workers_quarantined"] == 0,
          "cluster: isolated kills never quarantine a slot")
    check(all(w["shards_completed"] >= b
              for w, b in zip(st["worker_pool"], shards_before)),
          "cluster: shard totals are cumulative across generations")

    # The rebuilt pool still serves, and the classification is unchanged.
    r = c.call("run_atpg", {"circuit": key, "seed": 5})
    check(r["ok"] and signature(r["result"]) == ref,
          "cluster: respawned pool reproduces the classification")

    r = c.call("shutdown")
    check(r["ok"] and r["result"]["drained"], "cluster: shutdown drains")
    c.proc.stdin.close()
    check(c.proc.wait(timeout=30) == 0, "cluster: coordinator exited 0")
    print("\ncluster smoke: all checks passed (supervised drill)")


def tcp_smoke(binary):
    """Two concurrent TCP clients on one daemon: colliding ids routed per
    connection, over-the-cap admission answered `overloaded`, an abrupt
    disconnect cancelling only that client's jobs, TCP shutdown drain."""
    # One worker + a stall failpoint: jobs genuinely queue, so client A's
    # disconnect lands while it still owns queued work. (Without failpoints
    # compiled in the drill still passes — it is just less adversarial.)
    # stdin/stdout are unused in listen mode; detach them so the daemon
    # cannot inherit (and hold open) whatever pipe this script runs under.
    proc = subprocess.Popen(
        [binary, "--threads=1", "--queue-capacity=8",
         "--listen=127.0.0.1:0", "--max-connections=2"],
        stdin=subprocess.DEVNULL, stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        env={**os.environ,
             "CWATPG_FAILPOINTS": "svc.server.execute.stall=always@150"})
    port = wait_for_listen(proc)
    print(f"ok: daemon listening on 127.0.0.1:{port}")

    a = TcpClient(port)
    r = a.call("load_circuit", {"name": "smoke", "text": BENCH_TEXT})
    check(r["ok"], "tcp: load_circuit over the socket")
    key = r["result"]["circuit"]["key"]
    r = a.call("status")
    check(r["result"]["sessions"] == 1, "tcp: status counts one session")

    b = TcpClient(port)
    r = b.call("load_circuit", {"name": "smoke-b", "text": BENCH_TEXT})
    check(r["result"]["circuit"]["key"] == key,
          "tcp: registry shared across connections")

    # Admission: a third connection is over --max-connections=2.
    probe = TcpClient(port)
    resp = probe.recv()
    check(resp["id"] == 0 and not resp["ok"]
          and resp["error"]["code"] == "overloaded",
          "tcp: connection over the cap answered `overloaded`")
    check(probe.rout.read(1) == b"", "tcp: rejected connection then closed")
    probe.close()

    # Colliding ids across sessions: the daemon must key jobs by
    # (connection, id), so B's job 77 is untouched by A's jobs 77/78 — or
    # by A's death.
    a.send("run_atpg", {"circuit": key, "seed": 3}, req_id=77)
    a.send("run_atpg", {"circuit": key, "seed": 4}, req_id=78)
    b_job = b.send("run_atpg", {"circuit": key, "seed": 3}, req_id=77)
    a.close()
    print("ok: client A vanished with jobs 77/78 in flight")
    term = b.recv()
    check(term["id"] == b_job and term["ok"],
          "tcp: B's job survived A's disconnect untouched")

    # A's teardown races its FIN; poll until the session count drops.
    sessions = -1
    for _ in range(100):
        sessions = b.call("status")["result"]["sessions"]
        if sessions == 1:
            break
        time.sleep(0.02)
    check(sessions == 1, "tcp: A's session reaped after the disconnect")

    r = b.call("shutdown")
    check(r["ok"] and r["result"]["drained"], "tcp: shutdown drains")
    check(b.rout.read(1) == b"", "tcp: stream closed after shutdown")
    b.close()
    check(proc.wait(timeout=30) == 0, "tcp: daemon exited 0")
    print("\ntcp smoke: all checks passed")


def tcp_cluster_smoke(cluster_binary, serve_binary):
    """kill -9 a REMOTE (TCP-attached) worker process mid-job; the
    coordinator must fail the shards over and reproduce the reference
    classification exactly."""
    env = {**os.environ,
           "CWATPG_FAILPOINTS": "svc.server.execute.stall=always@200"}
    workers, ports = [], []
    for _ in range(2):
        p = subprocess.Popen(
            [serve_binary, "--threads=1", "--listen=127.0.0.1:0"],
            stdin=subprocess.DEVNULL, stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE, env=env)
        workers.append(p)
        ports.append(wait_for_listen(p))
    print(f"ok: two remote workers listening on ports {ports}")

    c = Client(cluster_binary,
               base_args=("--shard-size=1",
                          f"--connect=127.0.0.1:{ports[0]}",
                          f"--connect=127.0.0.1:{ports[1]}"))
    r = c.call("load_circuit", {"name": "smoke", "text": BENCH_TEXT})
    check(r["ok"], "tcp-cluster: load through the coordinator")
    key = r["result"]["circuit"]["key"]

    st = c.call("status")["result"]
    check(st["workers"] == 2 and st["workers_alive"] == 2,
          "tcp-cluster: both remote workers alive at boot")
    names = [w["name"] for w in st["worker_pool"]]
    check(all(n.startswith("tcp:") for n in names),
          f"tcp-cluster: endpoints are remote ({names})")

    def signature(res):
        return (res["num_detected"], res["num_untestable"],
                res["num_aborted"], res["num_undetermined"], res["tests"])

    r = c.call("run_atpg", {"circuit": key, "seed": 5})
    check(r["ok"] and not r["result"]["interrupted"],
          "tcp-cluster: reference run completes")
    ref = signature(r["result"])

    job_id = c.send("run_atpg", {"circuit": key, "seed": 5})
    time.sleep(0.35)
    workers[0].kill()  # SIGKILL the remote worker PROCESS: EOF on the socket
    print("ok: killed remote worker process mid-job")
    term = c.recv()
    check(term["id"] == job_id and term["ok"],
          "tcp-cluster: job survived the remote worker kill")
    check(signature(term["result"]) == ref,
          "tcp-cluster: post-kill classification identical to reference")
    check(term["result"]["cluster"]["redispatched"] >= 1,
          "tcp-cluster: the forfeited shard was redispatched")

    st = c.call("status")["result"]
    check(st["workers_alive"] == 1 and st["worker_deaths"] == 1,
          "tcp-cluster: status reports the remote death")

    r = c.call("run_atpg", {"circuit": key, "seed": 5})
    check(r["ok"] and signature(r["result"]) == ref,
          "tcp-cluster: survivor reproduces the classification")

    r = c.call("shutdown")
    check(r["ok"] and r["result"]["drained"], "tcp-cluster: coordinator drains")
    c.proc.stdin.close()
    check(c.proc.wait(timeout=30) == 0, "tcp-cluster: coordinator exited 0")

    workers[0].wait(timeout=30)
    # The survivor keeps listening after the coordinator detaches; SIGTERM
    # takes the daemon's signal path to a clean drain.
    workers[1].send_signal(signal.SIGTERM)
    check(workers[1].wait(timeout=30) == 0,
          "tcp-cluster: surviving worker exited 0 on SIGTERM")
    print("\ntcp-cluster smoke: all checks passed")


def main():
    flags = {a for a in sys.argv[1:] if a.startswith("--")}
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    known = {"--chaos-kill", "--cluster", "--tcp", "--tcp-cluster"}
    if flags - known or len(flags) > 1:
        raise SystemExit(__doc__)
    if "--tcp-cluster" in flags:
        if len(args) != 2:
            raise SystemExit(__doc__)
        tcp_cluster_smoke(args[0], args[1])
        return
    if len(args) != 1:
        raise SystemExit(__doc__)
    if "--tcp" in flags:
        tcp_smoke(args[0])
        return
    if "--cluster" in flags:
        cluster_smoke(args[0])
        return
    if "--chaos-kill" in flags:
        chaos_kill(args[0])
        return
    c = Client(args[0])

    # -- load_circuit ------------------------------------------------------
    r = c.call("load_circuit", {"name": "smoke", "text": BENCH_TEXT})
    check(r["ok"], "load_circuit succeeds")
    circuit = r["result"]["circuit"]
    for key in ("key", "gates", "inputs", "outputs", "faults",
                "cnf_vars", "cnf_clauses"):
        check(key in circuit, f"load_circuit result has {key}")
    check(len(circuit["key"]) == 16, "content hash is 16 hex digits")
    key = circuit["key"]

    # Re-loading identical text must dedup onto the same entry.
    r2 = c.call("load_circuit", {"name": "smoke-again", "text": BENCH_TEXT})
    check(r2["result"]["circuit"]["key"] == key, "re-load dedups by content")
    check(r2["result"]["registry"]["entries"] == 1, "registry holds 1 entry")

    # -- status ------------------------------------------------------------
    r = c.call("status")
    for key2 in ("threads", "queue", "registry", "in_flight"):
        check(key2 in r["result"], f"status has {key2}")

    # -- fsim --------------------------------------------------------------
    n_inputs = circuit["inputs"]
    patterns = ["0" * n_inputs, "1" * n_inputs, "01" * (n_inputs // 2)]
    r = c.call("fsim", {"circuit": key, "patterns": patterns})
    check(r["ok"], "fsim succeeds")
    check(r["result"]["patterns"] == len(patterns), "fsim counts patterns")
    check(0.0 < r["result"]["coverage"] <= 1.0, "fsim coverage in (0,1]")

    # -- run_atpg: serial vs parallel must agree byte-for-byte -------------
    r1 = c.call("run_atpg", {"circuit": key, "seed": 7, "threads": 1})
    check(r1["ok"], "run_atpg (serial) succeeds")
    res1 = r1["result"]
    check(res1["run_report"]["schema"] == "cwatpg.run_report/1",
          "run_atpg attaches a run_report")
    check(not res1["interrupted"], "run_atpg not interrupted")
    check(res1["coverage"] > 0.9, f"coverage sane ({res1['coverage']})")
    check(res1["tests"], "run_atpg returned test patterns")
    check("queue" in res1 and "registry" in res1,
          "response carries queue/registry metrics")

    r2 = c.call("run_atpg", {"circuit": key, "seed": 7, "threads": 2})
    check(r2["result"]["tests"] == res1["tests"],
          "parallel tests byte-identical to serial")

    # -- cancel: unknown job ----------------------------------------------
    r = c.call("cancel", {"job": 999999})
    check(r["result"]["state"] == "unknown", "cancel of unknown job")

    # -- cancel: a just-submitted job -------------------------------------
    # The job may be queued, running, or already done when the cancel
    # lands; all are legal. Exactly one terminal response must arrive.
    job_id = c.send("run_atpg", {"circuit": key, "seed": 8,
                                 "random_blocks": 0})
    cancel_id = c.send("cancel", {"job": job_id})
    seen = {}
    while job_id not in seen or cancel_id not in seen:
        resp = c.recv()
        check(resp["id"] not in seen,
              f"first and only response for id {resp['id']}")
        check(resp["id"] in (job_id, cancel_id),
              f"response id {resp['id']} belongs to this exchange")
        seen[resp["id"]] = resp
    check(seen[cancel_id]["ok"], "cancel request answered")
    check(seen[cancel_id]["result"]["state"] in
          ("cancelled", "cancelling", "done"), "cancel state sane")
    term = seen[job_id]
    terminal_ok = term["ok"] or term["error"]["code"] == "cancelled"
    check(terminal_ok, "cancelled job got exactly one terminal response")

    # -- malformed request -------------------------------------------------
    r = c.call("run_atpg", {"circuit": "no-such-circuit"})
    check(not r["ok"] and r["error"]["code"] == "not_found",
          "unknown circuit → not_found")
    bad_id = c.send("definitely_not_a_kind")
    r = c.recv()
    check(r["id"] == bad_id and not r["ok"]
          and r["error"]["code"] == "bad_request",
          "unknown kind → bad_request")

    # -- shutdown ----------------------------------------------------------
    r = c.call("shutdown")
    check(r["ok"] and r["result"]["drained"], "shutdown drains and responds")
    check(c.proc.stdout.read(1) == b"", "stream closed after shutdown")
    c.proc.stdin.close()
    check(c.proc.wait(timeout=30) == 0, "cwatpg_serve exited 0")
    print("\nservice smoke: all checks passed")


if __name__ == "__main__":
    main()
