#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "gen/structured.hpp"
#include "gen/trees.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/decompose.hpp"
#include "util/rng.hpp"

namespace cwatpg::net {
namespace {

TEST(BenchIo, ParsesC17) {
  const Network n = gen::c17();
  EXPECT_EQ(n.inputs().size(), 5u);
  EXPECT_EQ(n.outputs().size(), 2u);
  EXPECT_EQ(n.gate_count(), 6u);
  EXPECT_NO_THROW(n.validate());
}

TEST(BenchIo, C17Function) {
  // c17: out22 = NAND(G10, G16), out23 = NAND(G16, G19) with
  // G10=NAND(1,3), G11=NAND(3,6), G16=NAND(2,11), G19=NAND(11,7).
  const Network n = gen::c17();
  for (int v = 0; v < 32; ++v) {
    const bool i1 = v & 1, i2 = v & 2, i3 = v & 4, i6 = v & 8, i7 = v & 16;
    const bool g10 = !(i1 && i3);
    const bool g11 = !(i3 && i6);
    const bool g16 = !(i2 && g11);
    const bool g19 = !(g11 && i7);
    const bool pis[] = {i1, i2, i3, i6, i7};
    const auto values = n.eval(pis);
    EXPECT_EQ(values[n.outputs()[0]], !(g10 && g16));
    EXPECT_EQ(values[n.outputs()[1]], !(g16 && g19));
  }
}

TEST(BenchIo, UseBeforeDefinition) {
  const Network n = read_bench_string(R"(
INPUT(a)
OUTPUT(z)
z = NOT(mid)
mid = AND(a, a)
)");
  EXPECT_EQ(n.gate_count(), 2u);
}

TEST(BenchIo, CommentsAndBlanksIgnored) {
  const Network n = read_bench_string(R"(
# full line comment

INPUT(a)   # trailing comment
OUTPUT(a)
)");
  EXPECT_EQ(n.inputs().size(), 1u);
}

TEST(BenchIo, GateTypeAliases) {
  const Network n = read_bench_string(R"(
INPUT(a)
OUTPUT(x)
OUTPUT(y)
x = BUF(a)
y = INV(a)
)");
  EXPECT_EQ(n.type(*n.find("x")), GateType::kBuf);
  EXPECT_EQ(n.type(*n.find("y")), GateType::kNot);
}

TEST(BenchIo, CaseInsensitiveKeywords) {
  const Network n = read_bench_string(R"(
input(a)
output(z)
z = nand(a, a)
)");
  EXPECT_EQ(n.gate_count(), 1u);
}

TEST(BenchIo, RejectsSequential) {
  EXPECT_THROW(read_bench_string("INPUT(a)\nq = DFF(a)\n"), ParseError);
}

TEST(BenchIo, RejectsUnknownGate) {
  EXPECT_THROW(read_bench_string("INPUT(a)\nz = FROB(a)\n"), ParseError);
}

TEST(BenchIo, RejectsMultipleDrivers) {
  EXPECT_THROW(read_bench_string(R"(
INPUT(a)
z = NOT(a)
z = BUF(a)
)"),
               ParseError);
}

TEST(BenchIo, RejectsCombinationalCycle) {
  EXPECT_THROW(read_bench_string(R"(
INPUT(a)
OUTPUT(x)
x = AND(a, y)
y = NOT(x)
)"),
               ParseError);
}

TEST(BenchIo, RejectsUndrivenSignal) {
  EXPECT_THROW(read_bench_string(R"(
INPUT(a)
OUTPUT(z)
z = AND(a, ghost)
)"),
               ParseError);
}

TEST(BenchIo, RejectsUndrivenOutput) {
  EXPECT_THROW(read_bench_string("INPUT(a)\nOUTPUT(z)\n"), ParseError);
}

TEST(BenchIo, RejectsInputDrivenByGate) {
  EXPECT_THROW(read_bench_string(R"(
INPUT(a)
INPUT(b)
b = NOT(a)
)"),
               ParseError);
}

TEST(BenchIo, RejectsWrongNotArity) {
  EXPECT_THROW(read_bench_string("INPUT(a)\nINPUT(b)\nz = NOT(a, b)\n"),
               ParseError);
}

TEST(BenchIo, RejectsMalformedLines) {
  EXPECT_THROW(read_bench_string("INPUT a\n"), ParseError);
  EXPECT_THROW(read_bench_string("z = AND(a,)\nINPUT(a)\n"), ParseError);
  EXPECT_THROW(read_bench_string("WIDGET(a)\n"), ParseError);
}

TEST(BenchIo, ParseErrorCarriesLineNumber) {
  try {
    read_bench_string("INPUT(a)\nz = FROB(a)\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2u);
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(BenchIo, RoundTripPreservesStructure) {
  const Network original = gen::c17();
  std::ostringstream out;
  write_bench(out, original);
  const Network reread = read_bench_string(out.str(), "c17");
  EXPECT_EQ(reread.node_count(), original.node_count());
  EXPECT_EQ(reread.gate_count(), original.gate_count());
  EXPECT_EQ(reread.inputs().size(), original.inputs().size());
  EXPECT_EQ(reread.outputs().size(), original.outputs().size());
  // Functional identity over all 32 input patterns.
  for (int v = 0; v < 32; ++v) {
    std::vector<bool> pis;
    for (int b = 0; b < 5; ++b) pis.push_back((v >> b) & 1);
    const auto x = original.eval(pis);
    const auto y = reread.eval(pis);
    for (std::size_t o = 0; o < original.outputs().size(); ++o)
      EXPECT_EQ(x[original.outputs()[o]], y[reread.outputs()[o]]);
  }
}

TEST(BenchIo, RoundTripGeneratedAdder) {
  const Network original = decompose(gen::ripple_carry_adder(6));
  std::ostringstream out;
  write_bench(out, original);
  const Network reread = read_bench_string(out.str());
  EXPECT_EQ(reread.gate_count(), original.gate_count());
  EXPECT_EQ(reread.outputs().size(), original.outputs().size());
}

TEST(BenchIo, WriterRejectsConstants) {
  Network n;
  const NodeId c = n.add_const(true);
  n.add_output(c, "o");
  std::ostringstream out;
  EXPECT_THROW(write_bench(out, n), std::invalid_argument);
}

TEST(BenchIo, MissingFileThrows) {
  EXPECT_THROW(read_bench_file("/nonexistent/path.bench"),
               std::runtime_error);
}

// ---- fuzz hardening -------------------------------------------------------
// The parser's contract under hostile input: parse or throw ParseError
// with a 1-based line number — never crash, never leak another exception
// type, never report "line 0".

/// Runs one input through the parser, asserting the contract.
void expect_parses_or_parse_errors(const std::string& text,
                                   const char* what) {
  try {
    (void)read_bench_string(text, "fuzz");
  } catch (const ParseError& e) {
    EXPECT_GE(e.line(), 1u) << what << ": error lost its line number: "
                            << e.what();
  }
  // Any other exception type escapes and fails the test by crashing it.
}

TEST(BenchIoFuzz, RandomGarbageNeverCrashes) {
  Rng rng(0xbe9c410f);
  // Bias toward structural characters so the fuzzer reaches deeper than
  // the first "malformed declaration" check.
  const std::string alphabet =
      "abgINPUTOUTAND()=,# \t0123456789\n\nxyz.\xff\x01";
  for (int round = 0; round < 300; ++round) {
    const std::size_t len = rng.below(400);
    std::string text;
    text.reserve(len);
    for (std::size_t i = 0; i < len; ++i)
      text += alphabet[rng.below(alphabet.size())];
    expect_parses_or_parse_errors(text, "garbage");
  }
}

TEST(BenchIoFuzz, TruncationsOfAValidNetlistNeverCrash) {
  std::ostringstream out;
  write_bench(out, decompose(gen::comparator(3)));
  const std::string valid = out.str();
  for (std::size_t cut = 0; cut <= valid.size(); cut += 3)
    expect_parses_or_parse_errors(valid.substr(0, cut), "truncation");
}

TEST(BenchIoFuzz, BitFlipsOfAValidNetlistNeverCrash) {
  std::ostringstream out;
  write_bench(out, decompose(gen::comparator(3)));
  const std::string valid = out.str();
  Rng rng(0x5eedf00d);
  for (int round = 0; round < 300; ++round) {
    std::string text = valid;
    const int flips = 1 + static_cast<int>(rng.below(4));
    for (int f = 0; f < flips; ++f)
      text[rng.below(text.size())] ^=
          static_cast<char>(1u << rng.below(7));
    expect_parses_or_parse_errors(text, "bit flip");
  }
}

TEST(BenchIoFuzz, UndrivenSignalErrorNamesTheReferencingLine) {
  try {
    (void)read_bench_string(
        "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n", "undriven");
    FAIL() << "undriven signal must be rejected";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3u) << "the AND(...) line references 'ghost'";
    EXPECT_NE(std::string(e.what()).find("ghost"), std::string::npos);
  }
}

}  // namespace
}  // namespace cwatpg::net
