#include <gtest/gtest.h>

#include <sstream>

#include "gen/structured.hpp"
#include "gen/trees.hpp"
#include "netlist/decompose.hpp"
#include "netlist/verilog_io.hpp"
#include "util/rng.hpp"

namespace cwatpg::net {
namespace {

const char* kC17Verilog = R"(
// ISCAS85 c17 in structural verilog
module c17 (N1, N2, N3, N6, N7, N22, N23);
  input N1, N2, N3, N6, N7;
  output N22, N23;
  wire N10, N11, N16, N19;

  nand NAND2_1 (N10, N1, N3);
  nand NAND2_2 (N11, N3, N6);
  nand NAND2_3 (N16, N2, N11);
  nand NAND2_4 (N19, N11, N7);
  nand NAND2_5 (N22, N10, N16);
  nand NAND2_6 (N23, N16, N19);
endmodule
)";

TEST(VerilogIo, ParsesC17) {
  const Network n = read_verilog_string(kC17Verilog);
  EXPECT_EQ(n.name(), "c17");
  EXPECT_EQ(n.inputs().size(), 5u);
  EXPECT_EQ(n.outputs().size(), 2u);
  EXPECT_EQ(n.gate_count(), 6u);
  EXPECT_NO_THROW(n.validate());
}

TEST(VerilogIo, FunctionMatchesBenchC17) {
  const Network v = read_verilog_string(kC17Verilog);
  const Network b = gen::c17();
  for (int t = 0; t < 32; ++t) {
    std::vector<bool> pattern(5);
    for (int i = 0; i < 5; ++i) pattern[i] = (t >> i) & 1;
    const auto vv = v.eval(pattern);
    const auto bb = b.eval(pattern);
    for (std::size_t o = 0; o < 2; ++o)
      ASSERT_EQ(vv[v.outputs()[o]], bb[b.outputs()[o]]) << t;
  }
}

TEST(VerilogIo, AnonymousInstancesAndAssign) {
  const Network n = read_verilog_string(R"(
module m (a, b, y, z);
  input a, b;
  output y, z;
  wire t;
  and (t, a, b);          // no instance name
  assign y = t;           // alias
  assign z = 1'b1;        // constant
endmodule
)");
  EXPECT_EQ(n.gate_count(), 3u);  // AND + two BUF aliases (y, z)
  const std::vector<bool> p = {true, true};
  const auto values = n.eval(p);
  EXPECT_TRUE(values[n.outputs()[0]]);
  EXPECT_TRUE(values[n.outputs()[1]]);
}

TEST(VerilogIo, UseBeforeDefinition) {
  const Network n = read_verilog_string(R"(
module m (a, y);
  input a;
  output y;
  wire t;
  not (y, t);
  not (t, a);
endmodule
)");
  EXPECT_EQ(n.gate_count(), 2u);
}

TEST(VerilogIo, BlockCommentsSpanLines) {
  const Network n = read_verilog_string(R"(
module m (a, y);
  input a; /* a block
  comment spanning lines */ output y;
  buf (y, a);
endmodule
)");
  EXPECT_EQ(n.gate_count(), 1u);
}

TEST(VerilogIo, Errors) {
  EXPECT_THROW(read_verilog_string("input a;"), VerilogError);  // no module
  EXPECT_THROW(read_verilog_string("module m (a); input a;"),
               VerilogError);  // no endmodule
  EXPECT_THROW(read_verilog_string(R"(
module m (a, y);
  input a; output y;
  always @(a) y = a;
endmodule)"),
               VerilogError);  // behavioral
  EXPECT_THROW(read_verilog_string(R"(
module m (a, y);
  input a; output y;
  not (y, a);
  buf (y, a);
endmodule)"),
               VerilogError);  // multiple drivers
  EXPECT_THROW(read_verilog_string(R"(
module m (a, y);
  input a; output y;
  not (y, ghost);
endmodule)"),
               VerilogError);  // undriven signal
  EXPECT_THROW(read_verilog_string(R"(
module m (y);
  output y;
  wire t;
  not (y, t);
  not (t, y);
endmodule)"),
               VerilogError);  // cycle
}

TEST(VerilogIo, ErrorCarriesLine) {
  try {
    read_verilog_string("module m (a);\n  input a;\n  frobnicate (a);\nendmodule\n");
    FAIL();
  } catch (const VerilogError& e) {
    EXPECT_EQ(e.line(), 3u);
  }
}

TEST(VerilogIo, WriteReadRoundTrip) {
  for (const Network& original :
       {gen::c17(), net::decompose(gen::ripple_carry_adder(4)),
        net::decompose(gen::comparator(3)), gen::fig4a_network()}) {
    std::ostringstream out;
    write_verilog(out, original);
    const Network reread = read_verilog_string(out.str());
    ASSERT_EQ(reread.inputs().size(), original.inputs().size());
    ASSERT_EQ(reread.outputs().size(), original.outputs().size());
    Rng rng(3);
    const std::size_t trials =
        original.inputs().size() <= 8
            ? (std::size_t{1} << original.inputs().size())
            : 64;
    for (std::size_t t = 0; t < trials; ++t) {
      std::vector<bool> pattern(original.inputs().size());
      for (std::size_t i = 0; i < pattern.size(); ++i)
        pattern[i] = original.inputs().size() <= 8 ? ((t >> i) & 1)
                                                   : rng.chance(0.5);
      const auto a = original.eval(pattern);
      const auto b = reread.eval(pattern);
      for (std::size_t o = 0; o < original.outputs().size(); ++o)
        ASSERT_EQ(a[original.outputs()[o]], b[reread.outputs()[o]])
            << original.name() << " trial " << t;
    }
  }
}

TEST(VerilogIo, WriterSanitizesNumericNames) {
  // c17's signals are numeric ("1", "22"): the writer must produce valid
  // identifiers that still parse back.
  std::ostringstream out;
  write_verilog(out, gen::c17());
  const std::string text = out.str();
  EXPECT_EQ(text.find("wire 1"), std::string::npos);
  EXPECT_NO_THROW(read_verilog_string(text));
}

TEST(VerilogIo, ConstantsRoundTrip) {
  Network n;
  const auto a = n.add_input("a");
  const auto c1 = n.add_const(true);
  n.add_output(n.add_gate(GateType::kAnd, {a, c1}), "y");
  std::ostringstream out;
  write_verilog(out, n);
  const Network reread = read_verilog_string(out.str());
  const std::vector<bool> hi = {true};
  const std::vector<bool> lo = {false};
  EXPECT_TRUE(reread.eval(hi)[reread.outputs()[0]]);
  EXPECT_FALSE(reread.eval(lo)[reread.outputs()[0]]);
}

TEST(VerilogIo, MissingFileThrows) {
  EXPECT_THROW(read_verilog_file("/nonexistent/x.v"), std::runtime_error);
}

}  // namespace
}  // namespace cwatpg::net
