#include <gtest/gtest.h>

#include <string>

#include "fault/atpg_circuit.hpp"
#include "gen/trees.hpp"
#include "sat/dimacs.hpp"
#include "sat/encode.hpp"
#include "sat/solver.hpp"
#include "util/rng.hpp"

namespace cwatpg::sat {
namespace {

TEST(Dimacs, ParsesBasicFormula) {
  const Cnf f = read_dimacs_string(R"(c a comment
p cnf 3 2
1 -2 0
2 3 0
)");
  EXPECT_EQ(f.num_vars(), 3u);
  EXPECT_EQ(f.num_clauses(), 2u);
  EXPECT_EQ(f.clause(0)[0], pos(0));
  EXPECT_EQ(f.clause(0)[1], neg(1));
}

TEST(Dimacs, ClausesMaySpanLines) {
  const Cnf f = read_dimacs_string("p cnf 4 1\n1 2\n3 4 0\n");
  EXPECT_EQ(f.num_clauses(), 1u);
  EXPECT_EQ(f.clause(0).size(), 4u);
}

TEST(Dimacs, MultipleClausesPerLine) {
  const Cnf f = read_dimacs_string("p cnf 2 2\n1 0 -2 0\n");
  EXPECT_EQ(f.num_clauses(), 2u);
}

TEST(Dimacs, CommentsAndPercentIgnored) {
  const Cnf f = read_dimacs_string(R"(c header comment
p cnf 1 1
c mid comment
1 0
%
)");
  EXPECT_EQ(f.num_clauses(), 1u);
}

TEST(Dimacs, TautologyDroppedCountsAgainstHeader) {
  // A tautological clause is read (counted) but not stored.
  const Cnf f = read_dimacs_string("p cnf 1 1\n1 -1 0\n");
  EXPECT_EQ(f.num_clauses(), 0u);
}

TEST(Dimacs, Errors) {
  EXPECT_THROW(read_dimacs_string("1 0\n"), DimacsError);  // no header
  EXPECT_THROW(read_dimacs_string("p cnf 1 1\np cnf 1 1\n1 0\n"),
               DimacsError);  // duplicate header
  EXPECT_THROW(read_dimacs_string("p dnf 1 1\n1 0\n"), DimacsError);
  EXPECT_THROW(read_dimacs_string("p cnf 1 1\n2 0\n"),
               DimacsError);  // literal out of range
  EXPECT_THROW(read_dimacs_string("p cnf 1 1\n0\n"), DimacsError);  // empty
  EXPECT_THROW(read_dimacs_string("p cnf 1 1\n1\n"),
               DimacsError);  // unterminated
  EXPECT_THROW(read_dimacs_string("p cnf 1 2\n1 0\n"),
               DimacsError);  // count mismatch
  EXPECT_THROW(read_dimacs_string("p cnf 1 1\n1 x 0\n"),
               DimacsError);  // garbage token
}

TEST(Dimacs, ErrorCarriesLine) {
  try {
    read_dimacs_string("p cnf 1 1\n3 0\n");
    FAIL();
  } catch (const DimacsError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

// Every diagnostic names the offending token, not just the line — the test
// greps the what() string for it.
std::string error_message(const std::string& text) {
  try {
    read_dimacs_string(text);
  } catch (const DimacsError& e) {
    return e.what();
  }
  return {};
}

TEST(Dimacs, ErrorMessagesCarryOffendingToken) {
  EXPECT_NE(error_message("p cnf 1 1\n-3 0\n")
                .find("literal -3 out of range (header declares 1 vars)"),
            std::string::npos);
  EXPECT_NE(error_message("p cnf 1 1\n1 x 0\n").find("unexpected token 'x'"),
            std::string::npos);
  EXPECT_NE(error_message("1 0\np cnf 1 1\n")
                .find("token '1' before the 'p cnf' header"),
            std::string::npos);
  EXPECT_NE(error_message("p dnf 1 1\n1 0\n").find("'p dnf 1 1'"),
            std::string::npos);
  EXPECT_NE(error_message("p dnf 1 1\n1 0\n")
                .find("expected 'p cnf <vars> <clauses>'"),
            std::string::npos);
  EXPECT_NE(error_message("p cnf 1 1\np cnf 1 1\n1 0\n")
                .find("duplicate header 'p cnf 1 1'"),
            std::string::npos);
  EXPECT_NE(error_message("p cnf 2 1\n-2\n")
                .find("unterminated clause (missing 0 after literal -2)"),
            std::string::npos);
  EXPECT_NE(error_message("p cnf 1 2\n1 0\n")
                .find("header says 2, file has 1"),
            std::string::npos);
  EXPECT_NE(error_message("p cnf 1 1\n0\n").find("bare '0'"),
            std::string::npos);
}

TEST(Dimacs, RoundTripWithWriter) {
  // Export a real ATPG-SAT instance, re-read it, solve both: identical
  // satisfiability and variable counts.
  const net::Network n = gen::c17();
  const fault::AtpgCircuit atpg = fault::build_atpg_circuit(
      n, {*n.find("11"), fault::StuckAtFault::kStem, true});
  const Cnf original = encode_circuit_sat(atpg.miter);
  const Cnf reread = read_dimacs_string(original.to_dimacs());
  EXPECT_EQ(reread.num_vars(), original.num_vars());
  EXPECT_EQ(reread.num_clauses(), original.num_clauses());
  EXPECT_EQ(solve_cnf(reread).status, solve_cnf(original).status);
}

TEST(Dimacs, RoundTripLiteralExact) {
  Cnf f(3);
  f.add_clause({pos(0), neg(2)});
  f.add_clause({neg(1)});
  const Cnf g = read_dimacs_string(f.to_dimacs());
  ASSERT_EQ(g.num_clauses(), 2u);
  for (std::size_t c = 0; c < 2; ++c) {
    ASSERT_EQ(g.clause(c).size(), f.clause(c).size());
    for (std::size_t i = 0; i < g.clause(c).size(); ++i)
      EXPECT_EQ(g.clause(c)[i], f.clause(c)[i]);
  }
}

// ---- fuzz hardening -------------------------------------------------------
// Contract under hostile input: parse or throw DimacsError with a 1-based
// line number — never crash, never allocate a giant Cnf from a lying
// header, never let a poisoned stream swallow garbage silently.

void expect_parses_or_dimacs_errors(const std::string& text,
                                    const char* what) {
  try {
    (void)read_dimacs_string(text);
  } catch (const DimacsError& e) {
    EXPECT_GE(e.line(), 1u) << what << ": error lost its line number: "
                            << e.what();
  }
}

TEST(DimacsFuzz, RandomGarbageNeverCrashes) {
  Rng rng(0xd1aca5e);
  const std::string alphabet = "pcnf 0123456789-\n\t%c \xfe";
  for (int round = 0; round < 300; ++round) {
    const std::size_t len = rng.below(300);
    std::string text;
    text.reserve(len);
    for (std::size_t i = 0; i < len; ++i)
      text += alphabet[rng.below(alphabet.size())];
    expect_parses_or_dimacs_errors(text, "garbage");
  }
}

TEST(DimacsFuzz, TruncationsAndBitFlipsOfAValidFileNeverCrash) {
  const std::string valid = "c fuzz base\np cnf 4 3\n1 -2 0\n2 3 -4 0\n4 0\n";
  for (std::size_t cut = 0; cut <= valid.size(); ++cut)
    expect_parses_or_dimacs_errors(valid.substr(0, cut), "truncation");
  Rng rng(0xf11b5);
  for (int round = 0; round < 300; ++round) {
    std::string text = valid;
    text[rng.below(text.size())] ^= static_cast<char>(1u << rng.below(7));
    expect_parses_or_dimacs_errors(text, "bit flip");
  }
}

TEST(DimacsFuzz, ImplausibleHeaderIsRejectedNotAllocated) {
  // A hostile header asking for 2^40 variables must be an error, not an
  // attempted terabyte allocation.
  try {
    (void)read_dimacs_string("p cnf 1099511627776 1\n1 0\n");
    FAIL() << "huge var count must be rejected";
  } catch (const DimacsError& e) {
    EXPECT_EQ(e.line(), 1u);
  }
  expect_parses_or_dimacs_errors("p cnf 999999999999999999999 1\n1 0\n",
                                 "overflowing header");
}

TEST(DimacsFuzz, OverflowingLiteralIsALineError) {
  // Pre-hardening, istream's failed `>> long` consumed the numeral and
  // could let the tail of the file vanish silently.
  try {
    (void)read_dimacs_string("p cnf 1 1\n1 0\n99999999999999999999\n");
    FAIL() << "overflowing literal must be rejected";
  } catch (const DimacsError& e) {
    EXPECT_EQ(e.line(), 3u);
  }
}

}  // namespace
}  // namespace cwatpg::sat
