// Heavier adversarial workloads for the CDCL solver and Algorithm 1:
// structured UNSAT families (pigeonhole, graph coloring), larger random
// formulas diff-tested across all three solvers (CDCL, Algorithm 1,
// 2-SAT where applicable), and end-to-end ATPG-SAT sweeps.
#include <gtest/gtest.h>

#include "fault/atpg_circuit.hpp"
#include "gen/structured.hpp"
#include "gen/trees.hpp"
#include "netlist/decompose.hpp"
#include "sat/cache_sat.hpp"
#include "sat/encode.hpp"
#include "sat/solver.hpp"
#include "util/rng.hpp"

namespace cwatpg::sat {
namespace {

Cnf pigeonhole(int pigeons, int holes) {
  Cnf f(static_cast<Var>(pigeons * holes));
  auto var = [&](int p, int h) { return static_cast<Var>(p * holes + h); };
  for (int p = 0; p < pigeons; ++p) {
    Clause c;
    for (int h = 0; h < holes; ++h) c.push_back(pos(var(p, h)));
    f.add_clause(c);
  }
  for (int h = 0; h < holes; ++h)
    for (int p1 = 0; p1 < pigeons; ++p1)
      for (int p2 = p1 + 1; p2 < pigeons; ++p2)
        f.add_clause({neg(var(p1, h)), neg(var(p2, h))});
  return f;
}

/// k-coloring of a cycle graph: SAT iff n even or k >= 3.
Cnf cycle_coloring(int n, int k) {
  Cnf f(static_cast<Var>(n * k));
  auto var = [&](int v, int c) { return static_cast<Var>(v * k + c); };
  for (int v = 0; v < n; ++v) {
    Clause c;
    for (int color = 0; color < k; ++color) c.push_back(pos(var(v, color)));
    f.add_clause(c);
    for (int c1 = 0; c1 < k; ++c1)
      for (int c2 = c1 + 1; c2 < k; ++c2)
        f.add_clause({neg(var(v, c1)), neg(var(v, c2))});
  }
  for (int v = 0; v < n; ++v)
    for (int color = 0; color < k; ++color)
      f.add_clause({neg(var(v, color)), neg(var((v + 1) % n, color))});
  return f;
}

TEST(SolverStress, PigeonholeFamily) {
  // PHP(n+1, n) requires exponential-size resolution proofs, so a CDCL
  // without symmetry breaking blows up fast; stay in the feasible range.
  for (int holes = 2; holes <= 4; ++holes) {
    EXPECT_EQ(solve_cnf(pigeonhole(holes + 1, holes)).status,
              SolveStatus::kUnsat)
        << holes;
    EXPECT_EQ(solve_cnf(pigeonhole(holes, holes)).status, SolveStatus::kSat);
  }
}

TEST(SolverStress, CycleColoring) {
  // Odd cycle, 2 colors: UNSAT. Even cycle, 2 colors: SAT. 3 colors: SAT.
  EXPECT_EQ(solve_cnf(cycle_coloring(9, 2)).status, SolveStatus::kUnsat);
  EXPECT_EQ(solve_cnf(cycle_coloring(10, 2)).status, SolveStatus::kSat);
  EXPECT_EQ(solve_cnf(cycle_coloring(9, 3)).status, SolveStatus::kSat);
  EXPECT_EQ(solve_cnf(cycle_coloring(25, 3)).status, SolveStatus::kSat);
}

TEST(SolverStress, CacheSatAgreesOnStructuredUnsat) {
  const Cnf php = pigeonhole(4, 3);
  const auto r = cache_sat(php, identity_order(php));
  EXPECT_EQ(r.status, SolveStatus::kUnsat);
  // The cache must be earning hits on this symmetric instance.
  EXPECT_GT(r.stats.cache_hits, 0u);
}

TEST(SolverStress, LargerRandomDiffTest) {
  cwatpg::Rng rng(42);
  int sat = 0, unsat = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const Var vars = 14;
    const std::size_t clauses = 30 + rng.below(35);
    Cnf f(vars);
    for (std::size_t c = 0; c < clauses; ++c) {
      Clause cl;
      for (int i = 0; i < 3; ++i)
        cl.push_back(Lit(static_cast<Var>(rng.below(vars)),
                         rng.chance(0.5)));
      std::sort(cl.begin(), cl.end());
      cl.erase(std::unique(cl.begin(), cl.end()), cl.end());
      f.add_clause(cl);
    }
    const auto cdcl = solve_cnf(f);
    const auto cached = cache_sat(f, identity_order(f));
    ASSERT_EQ(cdcl.status, cached.status) << "trial " << trial;
    (cdcl.status == SolveStatus::kSat ? sat : unsat)++;
    if (cdcl.status == SolveStatus::kSat) {
      EXPECT_TRUE(f.eval(cdcl.model));
      EXPECT_TRUE(f.eval(cached.model));
    }
  }
  EXPECT_GT(sat, 3);
  EXPECT_GT(unsat, 3);
}

TEST(SolverStress, AssumptionSweepOverPigeonhole) {
  // Assume pigeon 0 into each hole of a satisfiable instance: all SAT;
  // assume two pigeons into the same hole: UNSAT.
  const Cnf f = pigeonhole(4, 4);
  Solver solver(f);
  for (int h = 0; h < 4; ++h) {
    const Lit a[] = {pos(static_cast<Var>(h))};
    EXPECT_EQ(solver.solve(a), SolveStatus::kSat) << h;
  }
  const Lit clash[] = {pos(0), pos(static_cast<Var>(1 * 4 + 0))};
  EXPECT_EQ(solver.solve(clash), SolveStatus::kUnsat);
  EXPECT_EQ(solver.solve(), SolveStatus::kSat);
}

TEST(SolverStress, AtpgMitersAllFaultsAllEngines) {
  // Every collapsed fault of a mid-size circuit, three ways: CDCL,
  // Algorithm 1 (identity order), Algorithm 1 (exact-verify mode).
  const net::Network n = net::decompose(gen::comparator(3));
  for (const auto& fault : fault::collapsed_fault_list(n)) {
    const fault::AtpgCircuit atpg = fault::build_atpg_circuit(n, fault);
    Cnf f = encode_circuit_sat(atpg.miter);
    f.add_clause({Lit(atpg.good_fault_net, fault.stuck_value)});
    const auto cdcl = solve_cnf(f);
    const auto cached = cache_sat(f, identity_order(f));
    CacheSatConfig exact;
    exact.verify_exact = true;
    const auto verified = cache_sat(f, identity_order(f), exact);
    ASSERT_EQ(cdcl.status, cached.status) << fault::to_string(n, fault);
    ASSERT_EQ(cdcl.status, verified.status) << fault::to_string(n, fault);
    EXPECT_EQ(verified.stats.hash_collisions, 0u);
  }
}

TEST(SolverStress, RepeatedSolvesStable) {
  const Cnf f = pigeonhole(5, 4);
  Solver solver(f);
  for (int i = 0; i < 5; ++i)
    EXPECT_EQ(solver.solve(), SolveStatus::kUnsat);
}

class PhpSweep : public ::testing::TestWithParam<int> {};

TEST_P(PhpSweep, CacheSatHandlesSymmetricUnsat) {
  const int holes = GetParam();
  const Cnf f = pigeonhole(holes + 1, holes);
  CacheSatConfig cfg;
  cfg.max_nodes = 5'000'000;
  const auto r = cache_sat(f, identity_order(f), cfg);
  EXPECT_EQ(r.status, SolveStatus::kUnsat);
}

INSTANTIATE_TEST_SUITE_P(Holes, PhpSweep, ::testing::Values(2, 3, 4, 5));

}  // namespace
}  // namespace cwatpg::sat
