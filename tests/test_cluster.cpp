// The sharded cluster coordinator's contract (src/svc/cluster.*): a
// cwatpg.rpc/1 front end whose merged run_atpg responses are
// classification-identical to a single svc::Server — per-fault statuses,
// engines and solver stats, totals, and the test set itself — at any
// worker count, and stay identical when workers die mid-job (un-acked
// shards re-dispatched to survivors exactly once, nothing lost, nothing
// double-counted). Runs under TSan via the `tsan` ctest label: the
// reader thread, N worker threads and the drain handshake all cross here.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gen/structured.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/decompose.hpp"
#include "svc/cluster.hpp"
#include "svc/proto.hpp"
#include "svc/server.hpp"
#include "svc/transport.hpp"
#include "util/failpoint.hpp"

namespace cwatpg::svc {
namespace {

std::string bench_text(const net::Network& n) {
  std::ostringstream out;
  net::write_bench(out, n);
  return out.str();
}

/// Small enough to merge in milliseconds; hard enough (with a tiny
/// max_conflicts) that some faults abort and take the escalation ladder,
/// so the replay-merge must reproduce phase 3, not just phase 2.
net::Network test_circuit() {
  return net::decompose(gen::array_multiplier(3));
}

obs::Json request_json(std::uint64_t id, const char* kind,
                       obs::Json params = obs::Json::object()) {
  obs::Json j = obs::Json::object();
  j["schema"] = kRpcSchema;
  j["id"] = id;
  j["kind"] = kind;
  j["params"] = std::move(params);
  return j;
}

/// run_atpg params that force the full pipeline: a random phase, SAT
/// aborts (max_conflicts 6), and a two-rung escalation ladder.
obs::Json atpg_params(const std::string& key) {
  obs::Json params = obs::Json::object();
  params["circuit"] = key;
  params["seed"] = std::uint64_t(7);
  params["random_blocks"] = std::uint64_t(1);
  params["max_conflicts"] = std::uint64_t(6);
  params["escalation_rounds"] = std::uint64_t(2);
  params["raw_outcomes"] = true;
  return params;
}

/// Test-side client (same shape as test_svc's): sequences ids, writes
/// request frames, reads response frames.
struct TestClient {
  Transport* t;
  std::uint64_t next_id = 1;

  std::uint64_t send(const char* kind, obs::Json params = obs::Json::object()) {
    const std::uint64_t id = next_id++;
    t->write(request_json(id, kind, std::move(params)));
    return id;
  }

  obs::Json recv() {
    obs::Json frame;
    EXPECT_TRUE(t->read(frame)) << "transport closed while awaiting a frame";
    return frame;
  }

  obs::Json call(const char* kind, obs::Json params = obs::Json::object()) {
    const std::uint64_t id = send(kind, std::move(params));
    obs::Json resp = recv();
    EXPECT_EQ(resp.at("id").as_u64(), id);
    return resp;
  }
};

/// A Cluster over `workers` in-process Server daemons, each on its own
/// duplex pair and serve() thread — the spawned-process topology minus
/// the processes, so TSan sees every thread.
struct ClusterFixture {
  std::mutex pool_mutex;  ///< respawn factories run on cluster threads
  std::vector<std::unique_ptr<Server>> servers;
  std::vector<std::unique_ptr<Transport>> server_sides;
  std::vector<std::thread> server_loops;
  DuplexPair front = make_duplex();
  std::unique_ptr<Cluster> cluster;
  std::thread cluster_loop;
  TestClient client{front.client.get()};

  /// `supervised` attaches a respawn factory to every endpoint: a fresh
  /// in-process Server on a fresh duplex, the fixture-world equivalent of
  /// fork/exec'ing a replacement daemon.
  explicit ClusterFixture(std::size_t workers, ClusterOptions options = {},
                          bool supervised = false) {
    std::vector<Cluster::WorkerEndpoint> endpoints;
    for (std::size_t i = 0; i < workers; ++i) {
      Cluster::WorkerEndpoint e;
      e.transport = boot_server();
      e.name = "w" + std::to_string(i);
      if (supervised) {
        e.respawn = [this]() {
          Cluster::WorkerEndpoint::Respawned r;
          r.transport = boot_server();
          return r;
        };
      }
      endpoints.push_back(std::move(e));
    }
    cluster = std::make_unique<Cluster>(std::move(endpoints), options);
    cluster_loop = std::thread([this] { cluster->serve(*front.server); });
  }

  ~ClusterFixture() {
    front.client->close();  // implicit shutdown if the test didn't send one
    // serve() joins the cluster's worker threads before returning, so no
    // respawn factory can run past this join and the pool is stable.
    cluster_loop.join();
    for (std::thread& t : server_loops) t.join();
  }

  std::unique_ptr<Transport> boot_server() {
    DuplexPair pair = make_duplex();
    ServerOptions sopts;
    sopts.threads = 1;
    std::lock_guard<std::mutex> lock(pool_mutex);
    servers.push_back(std::make_unique<Server>(sopts));
    Server* server = servers.back().get();
    Transport* side = pair.server.get();
    server_sides.push_back(std::move(pair.server));
    server_loops.emplace_back([server, side] { server->serve(*side); });
    return std::move(pair.client);
  }

  /// Polls coordinator `status` until `done(result)` or ~5 s; returns the
  /// last status result either way.
  template <typename Pred>
  obs::Json await_status(Pred done) {
    obs::Json result;
    for (int i = 0; i < 500; ++i) {
      result = client.call("status").at("result");
      if (done(result)) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return result;
  }

  std::string load(const net::Network& n) {
    obs::Json params = obs::Json::object();
    params["name"] = n.name();
    params["text"] = bench_text(n);
    obs::Json resp = client.call("load_circuit", std::move(params));
    EXPECT_TRUE(resp.at("ok").as_bool()) << resp.dump();
    return resp.at("result").at("circuit").at("key").as_string();
  }
};

/// The single-node reference: the same job on one plain Server.
obs::Json single_node_result(const net::Network& n, obs::Json params) {
  DuplexPair pair = make_duplex();
  ServerOptions sopts;
  sopts.threads = 1;
  Server server(sopts);
  std::thread loop([&] { server.serve(*pair.server); });
  TestClient client{pair.client.get()};

  obs::Json load = obs::Json::object();
  load["name"] = n.name();
  load["text"] = bench_text(n);
  obs::Json loaded = client.call("load_circuit", std::move(load));
  EXPECT_TRUE(loaded.at("ok").as_bool()) << loaded.dump();
  params["circuit"] =
      loaded.at("result").at("circuit").at("key").as_string();
  obs::Json resp = client.call("run_atpg", std::move(params));
  EXPECT_TRUE(resp.at("ok").as_bool()) << resp.dump();
  pair.client->close();
  loop.join();
  return resp.at("result");
}

/// The determinism contract, field by field: identical classification
/// totals, identical per-fault records (status, engine, attempts, solver
/// stats, test attribution), identical test set.
void expect_same_classification(const obs::Json& single,
                                const obs::Json& cluster) {
  EXPECT_EQ(single.at("faults").as_u64(), cluster.at("faults").as_u64());
  EXPECT_EQ(single.at("num_detected").as_u64(),
            cluster.at("num_detected").as_u64());
  EXPECT_EQ(single.at("num_untestable").as_u64(),
            cluster.at("num_untestable").as_u64());
  EXPECT_EQ(single.at("num_aborted").as_u64(),
            cluster.at("num_aborted").as_u64());
  EXPECT_EQ(single.at("num_undetermined").as_u64(),
            cluster.at("num_undetermined").as_u64());
  EXPECT_EQ(single.at("tests").dump(), cluster.at("tests").dump());
  ASSERT_EQ(single.at("raw").size(), cluster.at("raw").size());
  // `ss` (per-solve wall seconds) is the one legitimately nondeterministic
  // field — it differs between two identical single-node runs too.
  const auto normalized = [](obs::Json record) {
    record["ss"] = 0.0;
    return record.dump();
  };
  for (std::size_t i = 0; i < single.at("raw").size(); ++i) {
    EXPECT_EQ(normalized(single.at("raw")[i]), normalized(cluster.at("raw")[i]))
        << "per-fault record " << i << " diverged";
  }
}

// ---- determinism: cluster == single node ----------------------------------

TEST(Cluster, MatchesSingleNodeAcrossWorkerCounts) {
  const net::Network n = test_circuit();
  const obs::Json single = single_node_result(n, atpg_params(""));
  for (const std::size_t workers : {std::size_t(1), std::size_t(2),
                                    std::size_t(4)}) {
    ClusterOptions options;
    options.shard_size = 7;  // deliberately unaligned with the fault count
    ClusterFixture fx(workers, options);
    const std::string key = fx.load(n);
    obs::Json resp = fx.client.call("run_atpg", atpg_params(key));
    ASSERT_TRUE(resp.at("ok").as_bool()) << resp.dump();
    const obs::Json& result = resp.at("result");
    EXPECT_EQ(result.at("engine").as_string(), "cluster");
    EXPECT_FALSE(result.at("interrupted").as_bool());
    EXPECT_GE(result.at("cluster").at("shards").as_u64(), workers);
    expect_same_classification(single, result);
  }
}

TEST(Cluster, ShardSizeDoesNotChangeTheResult) {
  const net::Network n = net::decompose(gen::comparator(3));
  const obs::Json single = single_node_result(n, atpg_params(""));
  for (const std::size_t shard_size : {std::size_t(1), std::size_t(3),
                                       std::size_t(1000)}) {
    ClusterOptions options;
    options.shard_size = shard_size;
    ClusterFixture fx(2, options);
    obs::Json resp = fx.client.call("run_atpg", atpg_params(fx.load(n)));
    ASSERT_TRUE(resp.at("ok").as_bool()) << resp.dump();
    expect_same_classification(single, resp.at("result"));
  }
}

// ---- failover -------------------------------------------------------------

TEST(Cluster, WorkerDeathMidJobRedispatchesAndStaysIdentical) {
  if (!fp::kEnabled) GTEST_SKIP() << "built with CWATPG_FAILPOINTS=OFF";
  const net::Network n = test_circuit();
  const obs::Json single = single_node_result(n, atpg_params(""));
  // One worker "dies" right after its first shard reply: the reply is
  // lost with it, the shard must be re-dispatched to the survivor.
  fp::ScheduleScope fps("cluster.worker.eof=once");
  ClusterOptions options;
  options.shard_size = 7;
  ClusterFixture fx(2, options);
  const std::string key = fx.load(n);
  obs::Json resp = fx.client.call("run_atpg", atpg_params(key));
  ASSERT_TRUE(resp.at("ok").as_bool()) << resp.dump();
  expect_same_classification(single, resp.at("result"));
  EXPECT_GE(resp.at("result").at("cluster").at("redispatched").as_u64(), 1u);

  const ClusterStats stats = fx.cluster->stats();
  EXPECT_EQ(stats.worker_deaths, 1u);
  EXPECT_EQ(stats.alive, 1u);
  EXPECT_GE(stats.redispatched, 1u);

  obs::Json status = fx.client.call("status");
  EXPECT_EQ(status.at("result").at("workers_alive").as_u64(), 1u);
  EXPECT_EQ(status.at("result").at("worker_deaths").as_u64(), 1u);
}

TEST(Cluster, DroppedDispatchIsRetriedWithoutKillingTheWorker) {
  if (!fp::kEnabled) GTEST_SKIP() << "built with CWATPG_FAILPOINTS=OFF";
  const net::Network n = net::decompose(gen::comparator(3));
  const obs::Json single = single_node_result(n, atpg_params(""));
  fp::ScheduleScope fps("cluster.dispatch.drop=once");
  ClusterOptions options;
  options.shard_size = 5;
  ClusterFixture fx(2, options);
  obs::Json resp = fx.client.call("run_atpg", atpg_params(fx.load(n)));
  ASSERT_TRUE(resp.at("ok").as_bool()) << resp.dump();
  expect_same_classification(single, resp.at("result"));
  const ClusterStats stats = fx.cluster->stats();
  EXPECT_EQ(stats.worker_deaths, 0u);
  EXPECT_EQ(stats.redispatched, 1u);
  EXPECT_EQ(stats.alive, 2u);
}

TEST(Cluster, TruncatedShardReplyIsCaughtAndRedispatched) {
  if (!fp::kEnabled) GTEST_SKIP() << "built with CWATPG_FAILPOINTS=OFF";
  const net::Network n = net::decompose(gen::comparator(3));
  const obs::Json single = single_node_result(n, atpg_params(""));
  // The merge sees half a shard's records once: the completeness check
  // must refuse the silent partial merge and route through redispatch.
  fp::ScheduleScope fps("cluster.merge.partial=once");
  ClusterOptions options;
  options.shard_size = 5;
  ClusterFixture fx(2, options);
  obs::Json resp = fx.client.call("run_atpg", atpg_params(fx.load(n)));
  ASSERT_TRUE(resp.at("ok").as_bool()) << resp.dump();
  expect_same_classification(single, resp.at("result"));
  EXPECT_EQ(fx.cluster->stats().redispatched, 1u);
  EXPECT_EQ(fx.cluster->stats().worker_deaths, 0u);
}

TEST(Cluster, SecondShardFailureFailsTheJobNotTheCluster) {
  if (!fp::kEnabled) GTEST_SKIP() << "built with CWATPG_FAILPOINTS=OFF";
  const net::Network n = net::decompose(gen::comparator(3));
  // Every dispatch of one unlucky shard is dropped: first the original,
  // then the one permitted redispatch — the job must fail `internal`,
  // and the cluster must stay serviceable.
  fp::ScheduleScope fps("cluster.dispatch.drop=always");
  ClusterOptions options;
  options.shard_size = 1000;  // one shard: its failure IS the job's
  ClusterFixture fx(2, options);
  const std::string key = fx.load(n);
  obs::Json resp = fx.client.call("run_atpg", atpg_params(key));
  ASSERT_FALSE(resp.at("ok").as_bool());
  EXPECT_EQ(resp.at("error").at("code").as_string(), "internal");
  fp::Registry::instance().disarm("cluster.dispatch.drop");
  // The same job id is reusable after its terminal, and succeeds now.
  obs::Json retry = fx.client.call("run_atpg", atpg_params(key));
  EXPECT_TRUE(retry.at("ok").as_bool()) << retry.dump();
}

// ---- supervision ----------------------------------------------------------

/// Supervisor knobs scaled for tests: near-instant respawns, a window
/// generous enough that deliberate kill storms never quarantine.
ClusterOptions supervised_options(std::size_t shard_size) {
  ClusterOptions options;
  options.shard_size = shard_size;
  options.supervisor.backoff.base_seconds = 0.0005;
  options.supervisor.backoff.max_seconds = 0.002;
  options.supervisor.max_respawns = 200;
  options.supervisor.respawn_window_seconds = 60.0;
  return options;
}

const obs::Json* pool_worker(const obs::Json& status, const std::string& name) {
  for (const obs::Json& w : status.at("worker_pool").items())
    if (w.at("name").as_string() == name) return &w;
  return nullptr;
}

TEST(Cluster, RespawnedWorkerRejoinsWithANewGenerationAndKeepsItsHistory) {
  if (!fp::kEnabled) GTEST_SKIP() << "built with CWATPG_FAILPOINTS=OFF";
  const net::Network n = test_circuit();
  const obs::Json single = single_node_result(n, atpg_params(""));
  ClusterFixture fx(2, supervised_options(7), /*supervised=*/true);
  const std::string key = fx.load(n);

  // An undisturbed job first, so both slots accumulate history the
  // respawn must NOT erase.
  obs::Json warm = fx.client.call("run_atpg", atpg_params(key));
  ASSERT_TRUE(warm.at("ok").as_bool()) << warm.dump();
  const obs::Json before = fx.client.call("status").at("result");

  {
    // One worker dies right after a shard reply; the supervisor respawns
    // it while the survivor absorbs the forfeited shard.
    fp::ScheduleScope fps("cluster.worker.eof=once");
    obs::Json resp = fx.client.call("run_atpg", atpg_params(key));
    ASSERT_TRUE(resp.at("ok").as_bool()) << resp.dump();
    expect_same_classification(single, resp.at("result"));
  }

  obs::Json status = fx.await_status([](const obs::Json& r) {
    return r.at("workers_alive").as_u64() == 2 &&
           r.at("respawns").as_u64() >= 1;
  });
  EXPECT_EQ(status.at("workers_alive").as_u64(), 2u) << status.dump();
  EXPECT_EQ(status.at("worker_deaths").as_u64(), 1u);
  EXPECT_EQ(status.at("respawns").as_u64(), 1u);
  EXPECT_EQ(status.at("workers_quarantined").as_u64(), 0u);
  std::size_t second_generation = 0;
  for (const obs::Json& w : status.at("worker_pool").items()) {
    const obs::Json* was = pool_worker(before, w.at("name").as_string());
    ASSERT_NE(was, nullptr);
    // Cumulative across generations: history never shrinks on respawn.
    EXPECT_GE(w.at("shards_completed").as_u64(),
              was->at("shards_completed").as_u64());
    if (w.at("generation").as_u64() == 2) {
      ++second_generation;
      EXPECT_EQ(w.at("restarts").as_u64(), 1u);
      EXPECT_EQ(w.at("last_exit").as_string(), "eof");
      EXPECT_TRUE(w.at("alive").as_bool());
    }
  }
  EXPECT_EQ(second_generation, 1u);

  // The restored pool serves the same job byte-identically: the fresh
  // generation re-replicated the circuit lazily by content hash.
  obs::Json again = fx.client.call("run_atpg", atpg_params(key));
  ASSERT_TRUE(again.at("ok").as_bool()) << again.dump();
  expect_same_classification(single, again.at("result"));
}

TEST(Cluster, EveryWorkerKilledOnEveryReplyStillCompletesIdentically) {
  if (!fp::kEnabled) GTEST_SKIP() << "built with CWATPG_FAILPOINTS=OFF";
  const net::Network n = net::decompose(gen::comparator(3));
  const obs::Json single = single_node_result(n, atpg_params(""));
  // The hardest drill: EVERY shard reply kills its worker, so no window
  // can ever complete on a worker. Each window's two deaths route it
  // through bisection down to width 1 and the in-process fallback — the
  // job must still complete with zero lost faults, byte-identical.
  fp::ScheduleScope fps("cluster.worker.eof=always");
  ClusterFixture fx(2, supervised_options(20), /*supervised=*/true);
  const std::string key = fx.load(n);
  obs::Json resp = fx.client.call("run_atpg", atpg_params(key));
  ASSERT_TRUE(resp.at("ok").as_bool()) << resp.dump();
  const obs::Json& result = resp.at("result");
  expect_same_classification(single, result);
  // Everything converged to the coordinator's own fallback path.
  EXPECT_EQ(result.at("cluster").at("inprocess_faults").as_u64(),
            result.at("faults").as_u64());
  EXPECT_GT(result.at("cluster").at("poison_windows").size(), 0u);

  // Both slots died at least once (a dead slot's forfeited window is
  // requeued before it starts its respawn backoff, so the sibling pops
  // the second dispatch) and were respawned; the last respawn may still
  // be in flight when the terminal lands, so poll.
  obs::Json status = fx.await_status([](const obs::Json& r) {
    for (const obs::Json& w : r.at("worker_pool").items())
      if (w.at("restarts").as_u64() < 1) return false;
    return true;
  });
  EXPECT_GE(status.at("worker_deaths").as_u64(), 2u);
  for (const obs::Json& w : status.at("worker_pool").items())
    EXPECT_GE(w.at("restarts").as_u64(), 1u) << w.dump();
}

TEST(Cluster, CrashLoopingSlotIsQuarantinedAndTheClusterStaysUp) {
  if (!fp::kEnabled) GTEST_SKIP() << "built with CWATPG_FAILPOINTS=OFF";
  const net::Network n = net::decompose(gen::comparator(3));
  const obs::Json single = single_node_result(n, atpg_params(""));
  // One death, then every respawn attempt fails: the slot's event window
  // (1 death + 2 failed attempts > max_respawns=2) is a crash loop and
  // must quarantine — loudly, without burning the survivor.
  fp::ScheduleScope fps(
      "cluster.worker.eof=once;cluster.respawn.fail=always");
  ClusterOptions options = supervised_options(5);
  options.supervisor.max_respawns = 2;
  ClusterFixture fx(2, options, /*supervised=*/true);
  const std::string key = fx.load(n);
  obs::Json resp = fx.client.call("run_atpg", atpg_params(key));
  ASSERT_TRUE(resp.at("ok").as_bool()) << resp.dump();
  expect_same_classification(single, resp.at("result"));

  obs::Json status = fx.await_status([](const obs::Json& r) {
    return r.at("workers_quarantined").as_u64() == 1;
  });
  EXPECT_EQ(status.at("workers_quarantined").as_u64(), 1u) << status.dump();
  EXPECT_EQ(status.at("workers_alive").as_u64(), 1u);
  EXPECT_EQ(status.at("workers_respawning").as_u64(), 0u);
  EXPECT_EQ(status.at("respawns").as_u64(), 0u);
  for (const obs::Json& w : status.at("worker_pool").items()) {
    if (!w.at("quarantined").as_bool()) continue;
    EXPECT_FALSE(w.at("alive").as_bool());
    EXPECT_EQ(w.at("generation").as_u64(), 1u);  // never came back
  }
  // The surviving worker keeps the cluster serviceable.
  obs::Json again = fx.client.call("run_atpg", atpg_params(key));
  ASSERT_TRUE(again.at("ok").as_bool()) << again.dump();
  expect_same_classification(single, again.at("result"));
}

TEST(Cluster, HeartbeatConvertsAWedgedWorkerIntoADeathAndRespawn) {
  if (!fp::kEnabled) GTEST_SKIP() << "built with CWATPG_FAILPOINTS=OFF";
  // A wedged-but-alive worker answers nothing: only the heartbeat can
  // tell. The stall failpoint wedges exactly one probe; the supervisor
  // must treat it as a death and bring the slot back.
  fp::ScheduleScope fps("cluster.heartbeat.stall=once");
  ClusterOptions options = supervised_options(5);
  options.supervisor.heartbeat_seconds = 0.005;
  options.supervisor.heartbeat_timeout_seconds = 0.5;
  ClusterFixture fx(2, options, /*supervised=*/true);

  obs::Json status = fx.await_status([](const obs::Json& r) {
    return r.at("respawns").as_u64() >= 1 &&
           r.at("workers_alive").as_u64() == 2;
  });
  EXPECT_EQ(status.at("workers_alive").as_u64(), 2u) << status.dump();
  EXPECT_GE(status.at("heartbeat_failures").as_u64(), 1u);
  EXPECT_EQ(status.at("worker_deaths").as_u64(), 1u);
  EXPECT_EQ(status.at("respawns").as_u64(), 1u);

  // The revived pool still computes: a real job across both workers.
  const net::Network n = net::decompose(gen::comparator(3));
  const obs::Json single = single_node_result(n, atpg_params(""));
  obs::Json resp = fx.client.call("run_atpg", atpg_params(fx.load(n)));
  ASSERT_TRUE(resp.at("ok").as_bool()) << resp.dump();
  expect_same_classification(single, resp.at("result"));
}

TEST(Cluster, PoisonFaultIsBisectedToWidthOneAndRunsInProcess) {
  if (!fp::kEnabled) GTEST_SKIP() << "built with CWATPG_FAILPOINTS=OFF";
  const net::Network n = test_circuit();
  const obs::Json single = single_node_result(n, atpg_params(""));
  // Fault 11 is poison: EVERY dispatch of a window containing it kills
  // the worker, respawned or not. The quarantine ladder must isolate
  // [11, 12) by bisection and run exactly that window in-process — the
  // job completes byte-identical, with the poison window named.
  fp::ScheduleScope fps("cluster.shard.poison=always@11");
  ClusterFixture fx(2, supervised_options(7), /*supervised=*/true);
  const std::string key = fx.load(n);
  obs::Json resp = fx.client.call("run_atpg", atpg_params(key));
  ASSERT_TRUE(resp.at("ok").as_bool()) << resp.dump();
  const obs::Json& result = resp.at("result");
  expect_same_classification(single, result);
  const obs::Json& poison = result.at("cluster").at("poison_windows");
  ASSERT_EQ(poison.size(), 1u) << poison.dump();
  EXPECT_EQ(poison[0][0].as_u64(), 11u);
  EXPECT_EQ(poison[0][1].as_u64(), 12u);
  EXPECT_EQ(result.at("cluster").at("inprocess_faults").as_u64(), 1u);

  // Respawns complete asynchronously after the job's terminal: poll.
  obs::Json status = fx.await_status([](const obs::Json& r) {
    return r.at("respawns").as_u64() >= 2;
  });
  EXPECT_EQ(status.at("poison_windows").as_u64(), 1u);
  EXPECT_EQ(status.at("inprocess_faults").as_u64(), 1u);
  EXPECT_GE(status.at("worker_deaths").as_u64(), 2u);
  EXPECT_GE(status.at("respawns").as_u64(), 2u);
}

TEST(Cluster, UnsupervisedFixtureKeepsTheShrinkBehavior) {
  if (!fp::kEnabled) GTEST_SKIP() << "built with CWATPG_FAILPOINTS=OFF";
  // No respawn factory: a death still permanently shrinks the pool (the
  // pre-supervision contract some embedders rely on).
  fp::ScheduleScope fps("cluster.worker.eof=once");
  const net::Network n = net::decompose(gen::comparator(3));
  ClusterFixture fx(2, supervised_options(5), /*supervised=*/false);
  obs::Json resp = fx.client.call("run_atpg", atpg_params(fx.load(n)));
  ASSERT_TRUE(resp.at("ok").as_bool()) << resp.dump();
  obs::Json status = fx.client.call("status").at("result");
  EXPECT_EQ(status.at("workers_alive").as_u64(), 1u);
  EXPECT_EQ(status.at("respawns").as_u64(), 0u);
  EXPECT_EQ(status.at("workers_respawning").as_u64(), 0u);
}

// ---- protocol parity ------------------------------------------------------

TEST(Cluster, LoadCircuitIsIdempotentByContentHash) {
  ClusterFixture fx(1);
  const net::Network n = net::decompose(gen::comparator(3));
  obs::Json params = obs::Json::object();
  params["name"] = n.name();
  params["text"] = bench_text(n);
  obs::Json first = fx.client.call("load_circuit", params);
  ASSERT_TRUE(first.at("ok").as_bool());
  EXPECT_FALSE(first.at("result").at("already_loaded").as_bool());
  // Same structure under a different name: same key, acked as already
  // loaded.
  params["name"] = "a_different_name";
  obs::Json second = fx.client.call("load_circuit", params);
  ASSERT_TRUE(second.at("ok").as_bool());
  EXPECT_TRUE(second.at("result").at("already_loaded").as_bool());
  EXPECT_EQ(first.at("result").at("circuit").at("key").as_string(),
            second.at("result").at("circuit").at("key").as_string());
}

TEST(Cluster, UnknownCircuitIsNotFound) {
  ClusterFixture fx(1);
  obs::Json params = obs::Json::object();
  params["circuit"] = "deadbeefdeadbeef";
  obs::Json resp = fx.client.call("run_atpg", std::move(params));
  ASSERT_FALSE(resp.at("ok").as_bool());
  EXPECT_EQ(resp.at("error").at("code").as_string(), "not_found");
}

TEST(Cluster, FsimIsForwardedWhole) {
  const net::Network n = net::decompose(gen::comparator(3));
  ClusterFixture fx(2);
  const std::string key = fx.load(n);
  obs::Json patterns = obs::Json::array();
  patterns.push_back(std::string(n.inputs().size(), '1'));
  patterns.push_back(std::string(n.inputs().size(), '0'));
  obs::Json params = obs::Json::object();
  params["circuit"] = key;
  params["patterns"] = std::move(patterns);
  obs::Json resp = fx.client.call("fsim", std::move(params));
  ASSERT_TRUE(resp.at("ok").as_bool()) << resp.dump();
  // The forwarded reply is re-addressed to the coordinator's job id.
  EXPECT_EQ(resp.at("result").at("job").as_u64(), resp.at("id").as_u64());
  EXPECT_GT(resp.at("result").at("detected").as_u64(), 0u);
}

TEST(Cluster, ClientFaultRangeIsForwardedWhole) {
  // A request that carries its own window is not re-sharded; the cluster
  // honors it via a single worker and returns the windowed counts.
  const net::Network n = net::decompose(gen::comparator(3));
  ClusterFixture fx(2);
  const std::string key = fx.load(n);
  obs::Json params = atpg_params(key);
  obs::Json range = obs::Json::array();
  range.push_back(std::uint64_t(0));
  range.push_back(std::uint64_t(5));
  params["fault_range"] = std::move(range);
  obs::Json resp = fx.client.call("run_atpg", std::move(params));
  ASSERT_TRUE(resp.at("ok").as_bool()) << resp.dump();
  EXPECT_EQ(resp.at("result").at("faults").as_u64(), 5u);
  EXPECT_EQ(resp.at("result").at("raw").size(), 5u);
}

TEST(Cluster, StatusTracksJobsAndCancelIsSafeAtAnyPhase) {
  const net::Network n = test_circuit();
  ClusterOptions options;
  options.shard_size = 4;
  ClusterFixture fx(2, options);
  const std::string key = fx.load(n);

  obs::Json unknown_params = obs::Json::object();
  unknown_params["job"] = std::uint64_t(999);
  obs::Json unknown = fx.client.call("cancel", unknown_params);
  EXPECT_EQ(unknown.at("result").at("state").as_string(), "unknown");

  // Submit, cancel immediately, then read frames until the job terminal:
  // whichever way the race lands, there is exactly one terminal, and an
  // interrupted partial merge reports stop == "cancelled".
  const std::uint64_t job = fx.client.send("run_atpg", atpg_params(key));
  obs::Json cancel_params = obs::Json::object();
  cancel_params["job"] = job;
  const std::uint64_t cancel_id = fx.client.send("cancel", cancel_params);
  obs::Json terminal;
  bool saw_cancel_ack = false;
  for (int i = 0; i < 2; ++i) {
    obs::Json frame = fx.client.recv();
    if (frame.at("id").as_u64() == cancel_id) {
      const std::string state =
          frame.at("result").at("state").as_string();
      EXPECT_TRUE(state == "cancelling" || state == "done") << state;
      saw_cancel_ack = true;
    } else {
      ASSERT_EQ(frame.at("id").as_u64(), job);
      terminal = std::move(frame);
    }
  }
  EXPECT_TRUE(saw_cancel_ack);
  ASSERT_TRUE(terminal.is_object()) << "no terminal for the cancelled job";
  if (terminal.at("ok").as_bool()) {
    const obs::Json& result = terminal.at("result");
    if (result.at("interrupted").as_bool()) {
      EXPECT_EQ(result.at("stop").as_string(), "cancelled");
    }
  } else {
    EXPECT_EQ(terminal.at("error").at("code").as_string(), "cancelled");
  }

  obs::Json done_params = obs::Json::object();
  done_params["job"] = job;
  obs::Json done = fx.client.call("status", done_params);
  EXPECT_EQ(done.at("result").at("state").as_string(), "done");
}

TEST(Cluster, CancelOfQueuedForwardedJobStillGetsATerminal) {
  // One worker, kept busy by a one-shard atpg job: a forwarded (fsim) job
  // queued behind it is cancelled while still queued. The cancel sweep
  // removes its whole-job shard from the queue, so its terminal must come
  // from the cancel path itself — a leak here means no terminal for the
  // fsim job and a drain deadlock in the fixture's implicit shutdown.
  const net::Network n = test_circuit();
  ClusterOptions options;
  options.shard_size = 100000;  // the atpg job is a single long shard
  ClusterFixture fx(1, options);
  const std::string key = fx.load(n);

  const std::uint64_t atpg_job = fx.client.send("run_atpg", atpg_params(key));
  obs::Json fsim_params = obs::Json::object();
  fsim_params["circuit"] = key;
  obs::Json patterns = obs::Json::array();
  patterns.push_back(std::string(n.inputs().size(), '1'));
  fsim_params["patterns"] = std::move(patterns);
  const std::uint64_t fsim_job = fx.client.send("fsim", std::move(fsim_params));
  obs::Json cancel_params = obs::Json::object();
  cancel_params["job"] = fsim_job;
  const std::uint64_t cancel_id = fx.client.send("cancel", cancel_params);

  bool saw_atpg = false, saw_fsim = false, saw_cancel_ack = false;
  for (int i = 0; i < 3; ++i) {
    obs::Json frame = fx.client.recv();
    const std::uint64_t id = frame.at("id").as_u64();
    if (id == atpg_job) {
      saw_atpg = true;
      EXPECT_TRUE(frame.at("ok").as_bool()) << frame.dump();
    } else if (id == fsim_job) {
      // Usually the coordinator's "cancelled while queued" error; if the
      // race landed after dispatch, the worker's terminal. Either way,
      // there IS a terminal — that is the contract under test.
      saw_fsim = true;
      if (!frame.at("ok").as_bool())
        EXPECT_EQ(frame.at("error").at("code").as_string(), "cancelled");
    } else {
      ASSERT_EQ(id, cancel_id) << frame.dump();
      saw_cancel_ack = true;
    }
  }
  EXPECT_TRUE(saw_atpg);
  EXPECT_TRUE(saw_fsim);
  EXPECT_TRUE(saw_cancel_ack);

  obs::Json done_params = obs::Json::object();
  done_params["job"] = fsim_job;
  obs::Json done = fx.client.call("status", done_params);
  EXPECT_EQ(done.at("result").at("state").as_string(), "done");
}

TEST(Cluster, ShutdownDrainsActiveJobsBeforeResponding) {
  const net::Network n = net::decompose(gen::comparator(3));
  ClusterOptions options;
  options.shard_size = 4;
  ClusterFixture fx(2, options);
  const std::string key = fx.load(n);
  // Job then shutdown, back to back: the job's terminal must arrive
  // FIRST — the shutdown response is the last frame the cluster writes.
  const std::uint64_t job = fx.client.send("run_atpg", atpg_params(key));
  const std::uint64_t shutdown = fx.client.send("shutdown");
  obs::Json first = fx.client.recv();
  EXPECT_EQ(first.at("id").as_u64(), job);
  EXPECT_TRUE(first.at("ok").as_bool()) << first.dump();
  obs::Json second = fx.client.recv();
  EXPECT_EQ(second.at("id").as_u64(), shutdown);
  EXPECT_TRUE(second.at("result").at("drained").as_bool());
  EXPECT_GE(second.at("result").at("jobs_completed").as_u64(), 1u);
}

TEST(Cluster, ShuttingDownRejectsNewJobs) {
  ClusterFixture fx(1);
  const std::string key = fx.load(net::decompose(gen::comparator(3)));
  // After the shutdown frame is READ the reader stops, so a later job
  // never gets a response; instead verify the admission-time rejection
  // by racing nothing: drain an empty cluster, then the transport closes
  // and recv on a fresh request would block forever. The cheap, reliable
  // probe: shutdown an idle cluster and check the response is terminal.
  obs::Json resp = fx.client.call("shutdown");
  ASSERT_TRUE(resp.at("ok").as_bool());
  EXPECT_TRUE(resp.at("result").at("drained").as_bool());
  obs::Json frame;
  EXPECT_FALSE(fx.client.t->read(frame))
      << "cluster kept the stream open after shutdown";
  (void)key;
}

}  // namespace
}  // namespace cwatpg::svc
