// Supervision primitives (src/svc/supervisor.*) and the process plumbing
// they drive (src/svc/spawn.*): the shared backoff schedule must be
// deterministic under a fixed seed, retry_with_backoff must sleep exactly
// the schedule between attempts, the SlotSupervisor crash-loop window must
// quarantine on sustained failure but forgive old deaths, and a kill -9'd
// child must be reaped at detection time — never left as a zombie. Listed
// under the `tsan` ctest label alongside the cluster tests that exercise
// these paths concurrently.
#include <gtest/gtest.h>

#include <csignal>
#include <cerrno>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "svc/proto.hpp"
#include "svc/spawn.hpp"
#include "svc/supervisor.hpp"
#include "svc/transport.hpp"

namespace cwatpg::svc {
namespace {

// ---- backoff_delay --------------------------------------------------------

TEST(Backoff, ScheduleIsDeterministicUnderAFixedSeed) {
  BackoffPolicy policy;
  policy.base_seconds = 0.1;
  policy.max_seconds = 1.0;
  policy.multiplier = 2.0;
  Rng a(42), b(42);
  for (std::size_t attempt = 1; attempt <= 8; ++attempt)
    EXPECT_EQ(backoff_delay(policy, a, attempt),
              backoff_delay(policy, b, attempt))
        << "attempt " << attempt;
}

TEST(Backoff, GrowsExponentiallyAndCapsWithJitterInHalfOpenRange) {
  BackoffPolicy policy;
  policy.base_seconds = 0.1;
  policy.max_seconds = 0.4;
  policy.multiplier = 2.0;
  Rng rng(7);
  // Un-jittered ladder: 0.1, 0.2, 0.4, 0.4 (capped), ... — jitter scales
  // each rung into [0.5, 1.0) of its nominal value, never to zero.
  const double nominal[] = {0.1, 0.2, 0.4, 0.4, 0.4};
  for (std::size_t i = 0; i < 5; ++i) {
    const double d = backoff_delay(policy, rng, i + 1);
    EXPECT_GE(d, nominal[i] * 0.5) << "attempt " << i + 1;
    EXPECT_LT(d, nominal[i]) << "attempt " << i + 1;
  }
}

// ---- retry_with_backoff ---------------------------------------------------

TEST(RetryWithBackoff, StopsAtFirstSuccessAndSleepsTheScheduleBetween) {
  RetryOptions options;
  options.max_attempts = 6;
  options.backoff.base_seconds = 0.1;
  options.backoff.max_seconds = 1.0;
  std::vector<double> slept;
  options.sleep_fn = [&](double s) { slept.push_back(s); };
  std::vector<std::size_t> attempts;
  const bool ok = retry_with_backoff(options, [&](std::size_t attempt) {
    attempts.push_back(attempt);
    return attempt == 3;
  });
  EXPECT_TRUE(ok);
  EXPECT_EQ(attempts, (std::vector<std::size_t>{1, 2, 3}));
  // One sleep between consecutive attempts; the recorded delays are the
  // seeded schedule, replayable exactly.
  ASSERT_EQ(slept.size(), 2u);
  Rng reference(options.jitter_seed);
  EXPECT_EQ(slept[0], backoff_delay(options.backoff, reference, 1));
  EXPECT_EQ(slept[1], backoff_delay(options.backoff, reference, 2));
}

TEST(RetryWithBackoff, ExhaustionReturnsFalseAfterExactlyMaxAttempts) {
  RetryOptions options;
  options.max_attempts = 4;
  options.sleep_fn = [](double) {};
  std::size_t calls = 0;
  EXPECT_FALSE(retry_with_backoff(options, [&](std::size_t) {
    ++calls;
    return false;
  }));
  EXPECT_EQ(calls, 4u);
}

TEST(RetryWithBackoff, ZeroMaxAttemptsStillTriesOnce) {
  RetryOptions options;
  options.max_attempts = 0;
  options.sleep_fn = [](double) {};
  std::size_t calls = 0;
  EXPECT_TRUE(retry_with_backoff(options, [&](std::size_t) {
    ++calls;
    return true;
  }));
  EXPECT_EQ(calls, 1u);
}

// ---- SlotSupervisor -------------------------------------------------------

/// A SlotSupervisor on an injectable clock.
struct ClockedSlot {
  double now = 0.0;
  SlotSupervisor slot;

  explicit ClockedSlot(SupervisorOptions options, std::uint64_t index = 0)
      : slot(options, index, [this] { return now; }) {}
};

TEST(SlotSupervisor, CrashLoopInsideTheWindowExhausts) {
  SupervisorOptions options;
  options.max_respawns = 2;
  options.respawn_window_seconds = 10.0;
  ClockedSlot s(options);
  EXPECT_FALSE(s.slot.exhausted());
  s.slot.note_death("signal 9");
  EXPECT_FALSE(s.slot.exhausted());  // 1 event <= 2
  s.now = 1.0;
  s.slot.note_respawn_failure();
  EXPECT_FALSE(s.slot.exhausted());  // 2 events <= 2
  s.now = 2.0;
  s.slot.note_death("signal 9");
  EXPECT_TRUE(s.slot.exhausted());  // 3 events > 2: crash loop
  EXPECT_EQ(s.slot.last_exit(), "signal 9");
}

TEST(SlotSupervisor, OldDeathsAgeOutOfTheWindow) {
  SupervisorOptions options;
  options.max_respawns = 1;
  options.respawn_window_seconds = 10.0;
  ClockedSlot s(options);
  s.slot.note_death("exit 1");
  EXPECT_FALSE(s.slot.exhausted());
  // The same slot dying again a minute later is a fresh incident, not a
  // crash loop: the first event has left the window.
  s.now = 60.0;
  s.slot.note_death("exit 1");
  EXPECT_FALSE(s.slot.exhausted());
  s.now = 61.0;
  s.slot.note_death("exit 1");
  EXPECT_TRUE(s.slot.exhausted());  // two inside one window
}

TEST(SlotSupervisor, ZeroMaxRespawnsQuarantinesOnFirstDeath) {
  SupervisorOptions options;
  options.max_respawns = 0;
  ClockedSlot s(options);
  s.slot.note_death("signal 9");
  EXPECT_TRUE(s.slot.exhausted());
}

TEST(SlotSupervisor, GenerationsCountRespawnsAndSiblingsDecorrelate) {
  SupervisorOptions options;
  options.backoff.base_seconds = 0.1;
  options.backoff.max_seconds = 1.0;
  ClockedSlot a(options, 0), b(options, 1);
  EXPECT_EQ(a.slot.generation(), 1u);
  a.slot.note_death("eof");
  b.slot.note_death("eof");
  // Sibling slots draw from split_seed'd jitter streams: their first
  // delays differ even though the options are identical.
  EXPECT_NE(a.slot.next_delay(), b.slot.next_delay());
  a.slot.note_respawned();
  EXPECT_EQ(a.slot.generation(), 2u);
  EXPECT_EQ(a.slot.restarts(), 1u);
  EXPECT_FALSE(a.slot.quarantined());
  a.slot.quarantine();
  EXPECT_TRUE(a.slot.quarantined());
  EXPECT_TRUE(a.slot.exhausted());  // quarantine implies exhausted
}

TEST(SlotSupervisor, ConsecutiveFailuresEscalateTheDelay) {
  SupervisorOptions options;
  options.backoff.base_seconds = 0.1;
  options.backoff.max_seconds = 100.0;  // no cap in range: growth visible
  options.max_respawns = 10;
  ClockedSlot s(options);
  s.slot.note_death("eof");
  const double first = s.slot.next_delay();
  s.slot.note_respawn_failure();
  s.slot.note_respawn_failure();
  s.slot.note_respawn_failure();
  // Four events in the window: nominal delay is 8x the single-event one;
  // jitter can halve either draw, so 2x is a safe strict bound.
  EXPECT_GT(s.slot.next_delay(), 2.0 * first);
}

// ---- child reaping --------------------------------------------------------

TEST(Spawn, Kill9LeavesNoZombieAndReportsTheSignal) {
  // A worker that blocks forever on stdin, like a wedged daemon.
  ChildProcess child = spawn_child({"/bin/cat"});
  ASSERT_GT(child.pid, 0);
  ASSERT_EQ(::kill(static_cast<pid_t>(child.pid), SIGKILL), 0);
  // Detection-time reap (what Cluster::on_worker_death does): the TRUE
  // termination status must come back — kill_first is a no-op on a
  // process that is already dead.
  const ChildExit exit = reap_child_exit(child.pid, /*kill_first=*/true);
  EXPECT_TRUE(exit.reaped);
  EXPECT_TRUE(exit.signaled);
  EXPECT_EQ(exit.code, SIGKILL);
  EXPECT_EQ(exit.describe(), "signal 9");
  // No zombie: the pid is fully gone — not reapable again, not even
  // signalable as a defunct process.
  EXPECT_EQ(::waitpid(static_cast<pid_t>(child.pid), nullptr, WNOHANG), -1);
  EXPECT_EQ(errno, ECHILD);
  EXPECT_EQ(::kill(static_cast<pid_t>(child.pid), 0), -1);
  EXPECT_EQ(errno, ESRCH);
}

TEST(Spawn, CleanExitIsReportedAsExitCode) {
  ChildProcess child = spawn_child({"/bin/true"});
  ASSERT_GT(child.pid, 0);
  const ChildExit exit = reap_child_exit(child.pid, /*kill_first=*/false);
  EXPECT_TRUE(exit.reaped);
  EXPECT_FALSE(exit.signaled);
  EXPECT_EQ(exit.code, 0);
  EXPECT_EQ(exit.describe(), "exit 0");
}

TEST(Spawn, FdTransportReadTimeoutThrowsTornSession) {
  // The heartbeat building block: a bounded read over a silent child's
  // pipe must throw the same ProtocolError shape a reset gives, within
  // the bound rather than hanging.
  ChildProcess child = spawn_child({"/bin/cat"});
  ASSERT_GT(child.pid, 0);
  ASSERT_TRUE(child.transport->set_read_timeout(0.05));
  obs::Json frame;
  EXPECT_THROW(child.transport->read(frame), ProtocolError);
  reap_child_exit(child.pid, /*kill_first=*/true);
}

}  // namespace
}  // namespace cwatpg::svc
