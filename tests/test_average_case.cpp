#include <gtest/gtest.h>

#include <cmath>

#include "fault/atpg_circuit.hpp"
#include "gen/structured.hpp"
#include "gen/trees.hpp"
#include "netlist/decompose.hpp"
#include "sat/average_case.hpp"
#include "sat/cache_sat.hpp"
#include "sat/encode.hpp"

namespace cwatpg::sat {
namespace {

TEST(AverageCase, MeasureParams) {
  Cnf f(4);
  f.add_clause({pos(0), pos(1)});
  f.add_clause({neg(2), pos(3), pos(0)});
  const InstanceParams p = measure_params(f);
  EXPECT_EQ(p.v, 4u);
  EXPECT_EQ(p.t, 2u);
  EXPECT_DOUBLE_EQ(p.mean_length, 2.5);
  EXPECT_DOUBLE_EQ(p.p, 2.5 / 8.0);
}

TEST(AverageCase, EmptyFormula) {
  Cnf f(3);
  const InstanceParams p = measure_params(f);
  EXPECT_DOUBLE_EQ(p.mean_length, 0.0);
  EXPECT_GE(log2_expected_nodes(p), 0.0);
}

TEST(AverageCase, NoClausesMeansFullTree) {
  // t = 0: every node is consistent, tree = 2^(v+1)-1 ~ 2^(v+1).
  const double e = log2_expected_nodes(10, 0, 0.1);
  EXPECT_NEAR(e, 11.0, 0.1);
}

TEST(AverageCase, ManyClausesPruneTree) {
  const double sparse = log2_expected_nodes(30, 10, 0.05);
  const double dense = log2_expected_nodes(30, 2000, 0.05);
  EXPECT_LT(dense, sparse);
}

TEST(AverageCase, LongClausesSurviveLonger) {
  // Bigger p (longer clauses) => clauses are harder to falsify => less
  // pruning => bigger trees for the same v, t.
  const double shorter = log2_expected_nodes(30, 100, 0.02);
  const double longer = log2_expected_nodes(30, 100, 0.2);
  EXPECT_GT(longer, shorter);
}

TEST(AverageCase, BoundedByFullTree) {
  for (std::size_t v : {5u, 20u, 60u}) {
    const double e = log2_expected_nodes(v, 3 * v, 3.0 / (2.0 * v));
    EXPECT_LE(e, static_cast<double>(v) + 1.01);
    EXPECT_GE(e, 0.0);
  }
}

TEST(AverageCase, MonotoneInV) {
  // Fixed clause/variable ratio and clause length: E grows with v.
  auto at = [](std::size_t v) {
    return log2_expected_nodes(v, static_cast<std::size_t>(2.5 * v),
                               2.7 / (2.0 * static_cast<double>(v)));
  };
  EXPECT_LT(at(20), at(80));
  EXPECT_LT(at(80), at(320));
}

TEST(AverageCase, FixedLengthFamiliesAreNotPolyAverage) {
  // The honest punchline behind the paper's §3.3 caveat: at ATPG-SAT's
  // parameters (t ~ 2.4 v, mean length ~ 2.7) the *random class* is not
  // polynomial on average — the scaling degree grows with the scale
  // factor (super-polynomial expectation). Average-case membership alone
  // therefore cannot explain ATPG's easiness; real instances beat the
  // model because of their structure (cut-width), not their parameters.
  InstanceParams p;
  p.v = 500;
  p.t = 1200;
  p.mean_length = 2.7;
  p.p = p.mean_length / (2.0 * static_cast<double>(p.v));
  const double d4 = average_case_degree(p, 4.0);
  const double d16 = average_case_degree(p, 16.0);
  EXPECT_GT(d4, 0.0);
  EXPECT_GT(d16, d4);  // degree keeps growing => not a fixed polynomial
}

TEST(AverageCase, ModelMispredictsRealInstancesBothWays) {
  // The random (v,t,p) model is a poor mirror of structured ATPG-SAT in
  // *both* directions: at ATPG's parameters a random formula contains an
  // empty clause with constant probability per clause, so the model's
  // expected tree is O(1) (root-level UNSAT dominates) — while a real
  // instance is never trivially UNSAT (the encoder emits no empty
  // clauses) and its tree is genuinely explored, yet still polynomial.
  const net::Network n = net::decompose(gen::ripple_carry_adder(4));
  const auto faults = fault::collapsed_fault_list(n);
  const fault::AtpgCircuit atpg =
      fault::build_atpg_circuit(n, faults[faults.size() / 2]);
  const Cnf f = encode_circuit_sat(atpg.miter);
  const double model = log2_expected_nodes(measure_params(f));
  EXPECT_LT(model, 8.0);  // trivial-UNSAT-dominated expectation
  const auto run = cache_sat(f, identity_order(f));
  EXPECT_EQ(run.status, SolveStatus::kSat);  // the real one is not trivial
  EXPECT_GT(run.stats.nodes, 2u);
  EXPECT_LT(run.stats.nodes, 1u << 20);  // ...but still easy
}

TEST(AverageCase, RealInstanceParamsInEasyShape) {
  // Measured parameters of real ATPG-SAT instances: short clauses
  // (~2.5-3), clause/var ratio ~2-3 — the shape §3.3 relies on.
  const net::Network n = net::decompose(gen::ripple_carry_adder(8));
  const auto faults = fault::collapsed_fault_list(n);
  for (std::size_t i = 0; i < faults.size(); i += 20) {
    const fault::AtpgCircuit atpg = fault::build_atpg_circuit(n, faults[i]);
    const Cnf f = encode_circuit_sat(atpg.miter);
    const InstanceParams p = measure_params(f);
    EXPECT_GT(p.mean_length, 2.0);
    EXPECT_LT(p.mean_length, 3.5);
    const double ratio =
        static_cast<double>(p.t) / static_cast<double>(p.v);
    EXPECT_GT(ratio, 1.0);
    EXPECT_LT(ratio, 4.0);
  }
}

class DegreeGrowth : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DegreeGrowth, ExpectationIsFiniteAndMonotone) {
  const std::size_t v = GetParam();
  InstanceParams p;
  p.v = v;
  p.t = static_cast<std::size_t>(2.4 * static_cast<double>(v));
  p.mean_length = 2.7;
  p.p = p.mean_length / (2.0 * static_cast<double>(v));
  const double e = log2_expected_nodes(p);
  EXPECT_GE(e, 0.0);
  EXPECT_LE(e, static_cast<double>(v) + 1.01);  // never above the full tree
}

INSTANTIATE_TEST_SUITE_P(Sizes, DegreeGrowth,
                         ::testing::Values(50, 200, 1000, 5000));

}  // namespace
}  // namespace cwatpg::sat
