#include <gtest/gtest.h>

#include "core/cutwidth.hpp"
#include "gen/structured.hpp"
#include "gen/trees.hpp"
#include "netlist/decompose.hpp"
#include "util/rng.hpp"

namespace cwatpg::core {
namespace {

TEST(CutWidth, PositionsOfValidates) {
  EXPECT_THROW(positions_of({0, 1}, 3), std::invalid_argument);
  EXPECT_THROW(positions_of({0, 0, 1}, 3), std::invalid_argument);
  EXPECT_THROW(positions_of({0, 1, 5}, 3), std::invalid_argument);
  const auto pos = positions_of({2, 0, 1}, 3);
  EXPECT_EQ(pos[2], 0u);
  EXPECT_EQ(pos[0], 1u);
  EXPECT_EQ(pos[1], 2u);
}

TEST(CutWidth, PathGraphProfile) {
  net::Hypergraph hg;
  hg.num_vertices = 4;
  hg.edges = {{0, 1}, {1, 2}, {2, 3}};
  const auto profile = cut_profile(hg, identity_ordering(4));
  ASSERT_EQ(profile.size(), 3u);
  EXPECT_EQ(profile[0], 1u);
  EXPECT_EQ(profile[1], 1u);
  EXPECT_EQ(profile[2], 1u);
  EXPECT_EQ(cut_width(hg, identity_ordering(4)), 1u);
}

TEST(CutWidth, BadOrderOnPathGraph) {
  net::Hypergraph hg;
  hg.num_vertices = 4;
  hg.edges = {{0, 1}, {1, 2}, {2, 3}};
  // Order 0,2,1,3: the gap between positions 1 and 2 is crossed by all
  // three edges ({0,1} spans 0..2, {1,2} spans 1..2, {2,3} spans 1..3).
  EXPECT_EQ(cut_width(hg, {0, 2, 1, 3}), 3u);
}

TEST(CutWidth, HyperedgeSpansMinToMax) {
  net::Hypergraph hg;
  hg.num_vertices = 5;
  hg.edges = {{0, 2, 4}};
  const auto profile = cut_profile(hg, identity_ordering(5));
  // One hyperedge open across every gap between positions 0 and 4.
  EXPECT_EQ(profile, (std::vector<std::uint32_t>{1, 1, 1, 1}));
}

TEST(CutWidth, StarGraph) {
  net::Hypergraph hg;
  hg.num_vertices = 5;
  hg.edges = {{0, 1}, {0, 2}, {0, 3}, {0, 4}};
  // Hub first: all 4 edges open after the hub.
  EXPECT_EQ(cut_width(hg, identity_ordering(5)), 4u);
  // Hub in the middle: at most 2 open either side.
  EXPECT_EQ(cut_width(hg, {1, 2, 0, 3, 4}), 2u);
}

TEST(CutWidth, TrivialGraphs) {
  net::Hypergraph empty;
  EXPECT_EQ(cut_width(empty, {}), 0u);
  net::Hypergraph one;
  one.num_vertices = 1;
  EXPECT_EQ(cut_width(one, {0}), 0u);
}

TEST(CutWidth, Fig4aOrderingAIsThree) {
  // The paper's Figure 6: ordering A gives cut-width 3.
  EXPECT_EQ(cut_width(gen::fig4a_hypergraph(), gen::fig4a_ordering_a()), 3u);
}

TEST(CutWidth, Fig4aOrderingBIsWorse) {
  const auto hg = gen::fig4a_hypergraph();
  const auto wa = cut_width(hg, gen::fig4a_ordering_a());
  const auto wb = cut_width(hg, gen::fig4a_ordering_b());
  EXPECT_GT(wb, wa);
  EXPECT_EQ(wb, 5u);
}

TEST(CutWidth, Fig4aCutZSingleNet) {
  // §4.2's Cut Z: after {b,c,f,a,h} only the h-i net crosses.
  const auto profile =
      cut_profile(gen::fig4a_hypergraph(), gen::fig4a_ordering_a());
  EXPECT_EQ(profile[4], 1u);  // gap after position 4 (h)
}

TEST(CutWidth, OrderIndependentOfEdgeOrder) {
  net::Hypergraph a, b;
  a.num_vertices = b.num_vertices = 4;
  a.edges = {{0, 1}, {2, 3}, {1, 2}};
  b.edges = {{1, 2}, {0, 1}, {2, 3}};
  EXPECT_EQ(cut_width(a, identity_ordering(4)),
            cut_width(b, identity_ordering(4)));
}

TEST(CutWidth, ReversedOrderingSameWidth) {
  // Cut-width is symmetric under order reversal.
  Rng rng(3);
  net::Hypergraph hg;
  hg.num_vertices = 20;
  for (int e = 0; e < 30; ++e) {
    const auto u = static_cast<net::NodeId>(rng.below(20));
    const auto v = static_cast<net::NodeId>(rng.below(20));
    if (u != v) hg.edges.push_back({std::min(u, v), std::max(u, v)});
  }
  Ordering fwd = identity_ordering(20);
  Ordering rev = fwd;
  std::reverse(rev.begin(), rev.end());
  EXPECT_EQ(cut_width(hg, fwd), cut_width(hg, rev));
}

TEST(CutWidth, NetworkOverloadMatchesHypergraph) {
  const net::Network n = net::decompose(gen::ripple_carry_adder(4));
  const auto order = identity_ordering(n.node_count());
  EXPECT_EQ(cut_width(n, order),
            cut_width(net::to_hypergraph(n), order));
}

TEST(CutWidth, ChainCircuitConstantWidth) {
  // An inverter chain has cut-width 1 under topological order.
  net::Network n;
  net::NodeId cur = n.add_input("a");
  for (int i = 0; i < 30; ++i)
    cur = n.add_gate(net::GateType::kNot, {cur});
  n.add_output(cur, "o");
  EXPECT_EQ(cut_width(n, identity_ordering(n.node_count())), 1u);
}

TEST(CutWidth, RippleAdderTopologicalWidthBounded) {
  // The construction order of a ripple adder keeps only the carry and the
  // not-yet-consumed operand bits open: width stays small but the operand
  // inputs are all declared first, so id order holds all 2n operand nets
  // open. This documents that naive topological order is NOT a good MLA.
  const net::Network n = net::decompose(gen::ripple_carry_adder(8));
  const auto w = cut_width(n, identity_ordering(n.node_count()));
  EXPECT_GE(w, 8u);
}

class ProfileConsistency : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProfileConsistency, WidthEqualsProfileMax) {
  Rng rng(GetParam());
  net::Hypergraph hg;
  hg.num_vertices = 15;
  for (int e = 0; e < 25; ++e) {
    std::vector<net::NodeId> edge;
    const int k = static_cast<int>(rng.range(2, 4));
    for (int i = 0; i < k; ++i)
      edge.push_back(static_cast<net::NodeId>(rng.below(15)));
    std::sort(edge.begin(), edge.end());
    edge.erase(std::unique(edge.begin(), edge.end()), edge.end());
    if (edge.size() >= 2) hg.edges.push_back(edge);
  }
  Ordering order = identity_ordering(15);
  for (std::size_t i = order.size(); i > 1; --i)
    std::swap(order[i - 1], order[rng.below(i)]);
  const auto profile = cut_profile(hg, order);
  std::uint32_t max_profile = 0;
  for (auto c : profile) max_profile = std::max(max_profile, c);
  EXPECT_EQ(max_profile, cut_width(hg, order));
  // Brute-force the profile gap by gap.
  const auto pos = positions_of(order, 15);
  for (std::size_t gap = 0; gap + 1 < 15; ++gap) {
    std::uint32_t count = 0;
    for (const auto& e : hg.edges) {
      std::uint32_t lo = 99, hi = 0;
      for (auto v : e) {
        lo = std::min(lo, pos[v]);
        hi = std::max(hi, pos[v]);
      }
      if (lo <= gap && gap < hi) ++count;
    }
    EXPECT_EQ(profile[gap], count) << "gap " << gap;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProfileConsistency,
                         ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace cwatpg::core
