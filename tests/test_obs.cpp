// Observability subsystem: JSON value/parser, metrics registry, trace
// sinks/spans, and the canonical RunReport — including the acceptance
// contracts: reports round-trip through JSON with totals matching the
// AtpgResult they summarize, StopReason attribution is exact under
// budgets, and serial vs parallel reports agree on every completed fault.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fault/parallel_atpg.hpp"
#include "fault/tegus.hpp"
#include "gen/structured.hpp"
#include "netlist/decompose.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "util/budget.hpp"

namespace cwatpg {
namespace {

// ---------------------------------------------------------------- Json --

TEST(Json, RoundTripsEveryValueKind) {
  obs::Json j = obs::Json::object();
  j["null"] = nullptr;
  j["truth"] = true;
  j["int"] = std::int64_t{-42};
  j["uint"] = std::uint64_t{18446744073709551615ull};  // 2^64-1: exact
  j["pi"] = 3.25;  // representable exactly in binary
  j["text"] = "quote \" backslash \\ newline \n tab \t unicode \x01";
  obs::Json arr = obs::Json::array();
  arr.push_back(1);
  arr.push_back("two");
  arr.push_back(obs::Json::object());
  j["arr"] = std::move(arr);

  for (int indent : {-1, 2}) {
    const obs::Json back = obs::Json::parse(j.dump(indent));
    EXPECT_EQ(back, j) << "indent=" << indent;
    EXPECT_EQ(back.at("uint").as_u64(), 18446744073709551615ull);
    EXPECT_EQ(back.at("int").as_i64(), -42);
    EXPECT_EQ(back.at("text").as_string(), j.at("text").as_string());
  }
}

TEST(Json, ObjectsPreserveInsertionOrder) {
  obs::Json j = obs::Json::object();
  j["zebra"] = 1;
  j["alpha"] = 2;
  j["mid"] = 3;
  const std::vector<std::string> want = {"zebra", "alpha", "mid"};
  EXPECT_EQ(j.keys(), want);
  EXPECT_EQ(obs::Json::parse(j.dump()).keys(), want);
}

TEST(Json, ParseAcceptsEscapesAndRejectsGarbage) {
  const obs::Json ok = obs::Json::parse(R"({"a":"é\n\"","b":[1,2]})");
  EXPECT_EQ(ok.at("a").as_string(), "\xc3\xa9\n\"");
  EXPECT_EQ(ok.at("b").size(), 2u);

  for (const char* bad : {"{\"a\":}", "[1,2", "\"unterminated", "{} trailing",
                          "nul", "1.2.3", ""}) {
    EXPECT_THROW(obs::Json::parse(bad), std::runtime_error) << bad;
  }
}

TEST(Json, ParseRejectsTrailingGarbageAfterAnyDocumentKind) {
  // One complete document per parse: anything after the top-level value is
  // an error, whatever that value was — a second value, a stray bracket,
  // or a lone identifier.
  for (const char* bad :
       {"{} x", "1 2", "[1]]", "true false", "\"done\"oops", "null,"}) {
    EXPECT_THROW(obs::Json::parse(bad), std::runtime_error) << bad;
  }
  // Trailing whitespace is not garbage.
  EXPECT_NO_THROW(obs::Json::parse("{\"a\":1}  \n\t"));
}

TEST(Json, ParseEnforcesNestingDepthLimit) {
  auto nested_array = [](std::size_t depth) {
    return std::string(depth, '[') + std::string(depth, ']');
  };
  // Exactly at the cap parses; one level beyond fails fast instead of
  // recursing the parser toward stack exhaustion.
  EXPECT_NO_THROW(
      obs::Json::parse(nested_array(obs::Json::kDefaultMaxDepth)));
  EXPECT_THROW(
      obs::Json::parse(nested_array(obs::Json::kDefaultMaxDepth + 1)),
      std::runtime_error);

  // Callers on a network edge can tighten the cap per call.
  EXPECT_NO_THROW(obs::Json::parse("[[]]", 2));
  EXPECT_THROW(obs::Json::parse("[[[]]]", 2), std::runtime_error);

  // Objects count toward the same limit as arrays, including when mixed.
  EXPECT_NO_THROW(obs::Json::parse(R"({"a":[{"b":[]}]})", 4));
  EXPECT_THROW(obs::Json::parse(R"({"a":[{"b":[]}]})", 3),
               std::runtime_error);

  // Closing a container releases its level: siblings at the same depth do
  // not accumulate, so breadth never triggers the depth cap.
  EXPECT_NO_THROW(obs::Json::parse("[[],[],[],[]]", 2));
}

TEST(Json, NumericAccessorsCheckRange) {
  EXPECT_THROW(obs::Json(std::int64_t{-1}).as_u64(), std::logic_error);
  EXPECT_THROW(obs::Json(1.5).as_u64(), std::logic_error);
  EXPECT_EQ(obs::Json(7.0).as_u64(), 7u);
  EXPECT_EQ(obs::Json(std::uint64_t{7}).as_double(), 7.0);
  EXPECT_THROW(obs::Json("x").as_double(), std::logic_error);
}

// ------------------------------------------------------------- Metrics --

TEST(Metrics, CountersGaugesHistogramsSnapshot) {
  obs::MetricsRegistry reg;
  reg.counter("solves").add(3);
  reg.counter("solves").add(2);
  reg.gauge("depth").set(4.0);
  reg.gauge("depth").max_in(2.0);  // lower: must not overwrite
  obs::Histogram& h = reg.histogram("ms", obs::solve_time_bounds_ms());
  h.observe(0.005);  // bucket 0 (<= 0.01)
  h.observe(5.0);    // bucket 3 (<= 10)
  h.observe(1e9);    // +inf bucket

  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("solves"), 5u);
  EXPECT_EQ(snap.gauges.at("depth"), 4.0);
  const obs::HistogramSnapshot& hs = snap.histograms.at("ms");
  ASSERT_EQ(hs.bounds.size(), 6u);
  ASSERT_EQ(hs.counts.size(), 7u);
  EXPECT_EQ(hs.counts[0], 1u);
  EXPECT_EQ(hs.counts[3], 1u);
  EXPECT_EQ(hs.counts[6], 1u);
  EXPECT_EQ(hs.total, 3u);
  EXPECT_DOUBLE_EQ(hs.sum, 0.005 + 5.0 + 1e9);
}

TEST(Metrics, HandlesAreStableAndConcurrencySafe) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("hits");
  obs::Histogram& h = reg.histogram("lat", obs::solve_time_bounds_ms());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&c, &h] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add(1);
        h.observe(0.5);
      }
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads * kPerThread));
  const obs::HistogramSnapshot hs = reg.snapshot().histograms.at("lat");
  EXPECT_EQ(hs.total, static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(Metrics, MergeAddsCountsAndKeepsMaxGauges) {
  obs::MetricsRegistry a, b;
  a.counter("n").add(2);
  b.counter("n").add(3);
  b.counter("only_b").add(1);
  a.gauge("peak").set(5.0);
  b.gauge("peak").set(3.0);
  a.histogram("ms", obs::solve_time_bounds_ms()).observe(0.5);
  b.histogram("ms", obs::solve_time_bounds_ms()).observe(0.5);

  a.merge(b.snapshot());
  const obs::MetricsSnapshot merged = a.snapshot();
  EXPECT_EQ(merged.counters.at("n"), 5u);
  EXPECT_EQ(merged.counters.at("only_b"), 1u);
  EXPECT_EQ(merged.gauges.at("peak"), 5.0);  // max, not last-write
  EXPECT_EQ(merged.histograms.at("ms").total, 2u);

  // Histograms only merge over identical bucket bounds.
  obs::HistogramSnapshot other;
  other.bounds = {1.0, 2.0};
  other.counts = {0, 0, 0};
  obs::MetricsSnapshot bad;
  bad.histograms["ms"] = other;
  obs::MetricsSnapshot base = merged;
  EXPECT_THROW(base += bad, std::logic_error);
}

TEST(Metrics, SnapshotJsonRoundTrip) {
  obs::MetricsRegistry reg;
  reg.counter("a").add(7);
  reg.gauge("g").set(1.5);
  reg.histogram("h", obs::solve_time_bounds_ms()).observe(3.0);
  const obs::MetricsSnapshot snap = reg.snapshot();
  const obs::MetricsSnapshot back = obs::MetricsSnapshot::from_json(
      obs::Json::parse(snap.to_json().dump()));
  EXPECT_EQ(back, snap);
}

// --------------------------------------------------------------- Trace --

TEST(Trace, JsonlSinkWritesParseableStampedLines) {
  std::ostringstream out;
  obs::JsonlSink sink(out);
  sink.event("first", {{"u", std::uint64_t{7}},
                       {"i", std::int64_t{-7}},
                       {"f", 0.5},
                       {"b", true},
                       {"s", "text"}});
  sink.event("second", std::initializer_list<obs::Field>{});
  EXPECT_EQ(sink.events_written(), 2u);

  std::istringstream lines(out.str());
  std::string line;
  std::vector<obs::Json> events;
  while (std::getline(lines, line)) events.push_back(obs::Json::parse(line));
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].at("name").as_string(), "first");
  EXPECT_EQ(events[0].at("u").as_u64(), 7u);
  EXPECT_EQ(events[0].at("i").as_i64(), -7);
  EXPECT_EQ(events[0].at("f").as_double(), 0.5);
  EXPECT_EQ(events[0].at("b").as_bool(), true);
  EXPECT_EQ(events[0].at("s").as_string(), "text");
  // Same thread: same dense tid, monotone timestamps.
  EXPECT_EQ(events[0].at("tid").as_u64(), events[1].at("tid").as_u64());
  EXPECT_LE(events[0].at("ts_ns").as_u64(), events[1].at("ts_ns").as_u64());
}

TEST(Trace, JsonlSinkAssignsDenseThreadIds) {
  std::ostringstream out;
  obs::JsonlSink sink(out);
  sink.event("main", std::initializer_list<obs::Field>{});
  std::thread other(
      [&sink] { sink.event("other", std::initializer_list<obs::Field>{}); });
  other.join();
  std::istringstream lines(out.str());
  std::string line;
  std::vector<std::uint64_t> tids;
  while (std::getline(lines, line))
    tids.push_back(obs::Json::parse(line).at("tid").as_u64());
  ASSERT_EQ(tids.size(), 2u);
  EXPECT_EQ(tids[0], 0u);
  EXPECT_EQ(tids[1], 1u);
}

TEST(Trace, SpanEmitsDurationAndNotes) {
  std::ostringstream out;
  obs::JsonlSink sink(out);
  {
    obs::Span span(&sink, "work");
    span.note({"items", std::uint64_t{3}});
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const obs::Json event = obs::Json::parse(out.str());
  EXPECT_EQ(event.at("name").as_string(), "work");
  EXPECT_EQ(event.at("items").as_u64(), 3u);
  EXPECT_GE(event.at("dur_ns").as_u64(), 1000000u);  // slept >= 1 ms
}

TEST(Trace, NullSinkAndNullSpanAreInert) {
  obs::NullSink null_sink;
  const obs::Field ignored_fields[] = {{"k", std::int64_t{1}}};
  null_sink.event("ignored", std::span<const obs::Field>(ignored_fields));
  obs::Span with_null_sink(nullptr, "nothing");
  with_null_sink.note({"k", 1});
  with_null_sink.finish();  // must all be no-ops, not crashes
  obs::Span span(&null_sink, "swallowed");
  span.finish();
  span.finish();  // idempotent
}

// ----------------------------------------------- engine instrumentation --

TEST(EngineObservability, RegistryAndTraceFillWithoutChangingResults) {
  const net::Network n = net::decompose(gen::array_multiplier(4));

  const fault::AtpgResult plain = fault::run_atpg(n, {});

  obs::MetricsRegistry reg;
  std::ostringstream trace_out;
  obs::JsonlSink sink(trace_out);
  fault::AtpgOptions opts;
  opts.metrics = &reg;
  opts.trace = &sink;
  const fault::AtpgResult observed = fault::run_atpg(n, opts);

  // Hooks never influence classification.
  ASSERT_EQ(observed.outcomes.size(), plain.outcomes.size());
  for (std::size_t i = 0; i < plain.outcomes.size(); ++i) {
    EXPECT_EQ(observed.outcomes[i].status, plain.outcomes[i].status);
    EXPECT_EQ(observed.outcomes[i].test_index, plain.outcomes[i].test_index);
  }
  EXPECT_EQ(observed.tests, plain.tests);

  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("atpg.faults"), observed.outcomes.size());
  EXPECT_GT(snap.counters.at("atpg.sat.solves"), 0u);
  EXPECT_GT(snap.counters.at("fsim.calls"), 0u);
  EXPECT_GT(snap.counters.at("fsim.node_evals"), 0u);
  std::uint64_t conflicts = 0;
  for (const fault::FaultOutcome& o : observed.outcomes)
    conflicts += o.solver_stats.conflicts;
  EXPECT_EQ(snap.counters.at("sat.conflicts"), conflicts);
  // Every committed solve observed into the solve-time histogram.
  std::uint64_t solved = 0;
  for (const fault::FaultOutcome& o : observed.outcomes)
    if (o.engine == fault::SolveEngine::kSat) ++solved;
  EXPECT_EQ(snap.counters.at("atpg.sat.solves"), solved);

  // The trace carries the run and phase spans plus per-solve events.
  EXPECT_GT(sink.events_written(), 0u);
  std::istringstream lines(trace_out.str());
  std::string line;
  bool saw_run = false, saw_solve = false;
  while (std::getline(lines, line)) {
    const obs::Json e = obs::Json::parse(line);  // every line parses
    const std::string& name = e.at("name").as_string();
    if (name == "atpg.run") {
      saw_run = true;
      EXPECT_GT(e.at("dur_ns").as_u64(), 0u);
    }
    if (name == "atpg.solve") saw_solve = true;
  }
  EXPECT_TRUE(saw_run);
  EXPECT_TRUE(saw_solve);
}

TEST(EngineObservability, ParallelEngineRecordsSchedulingMetrics) {
  const net::Network n = net::decompose(gen::array_multiplier(4));
  obs::MetricsRegistry reg;
  fault::ParallelAtpgOptions popts;
  popts.base.metrics = &reg;
  popts.base.random_blocks = 0;
  popts.num_threads = 2;
  fault::ParallelStats stats;
  const fault::AtpgResult r = fault::run_atpg_parallel(n, popts, &stats);
  ASSERT_GT(r.outcomes.size(), 0u);

  EXPECT_EQ(stats.workers.size(), 2u);
  EXPECT_GE(stats.dispatched, stats.committed);
  EXPECT_GT(stats.max_in_flight, 0u);

  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("parallel.dispatched"), stats.dispatched);
  EXPECT_EQ(snap.counters.at("parallel.committed"), stats.committed);
  EXPECT_EQ(snap.counters.at("parallel.wasted"), stats.wasted);
  EXPECT_EQ(snap.gauges.at("parallel.max_in_flight"),
            static_cast<double>(stats.max_in_flight));
  EXPECT_EQ(snap.gauges.at("parallel.workers"), 2.0);
}

// ----------------------------------------------------------- RunReport --

TEST(RunReport, RoundTripsAndTotalsMatchAtpgResult) {
  const net::Network n = net::decompose(gen::array_multiplier(4));
  fault::AtpgOptions opts;
  opts.solver.max_conflicts = 16;  // force some escalation-ladder activity
  const fault::AtpgResult r = fault::run_atpg(n, opts);

  obs::ReportOptions ropts;
  ropts.label = "unit";
  ropts.seed = opts.seed;
  const obs::RunReport report = obs::build_run_report(n, r, ropts);

  // ---- totals match the AtpgResult it summarizes ----
  EXPECT_EQ(report.circuit, n.name());
  EXPECT_EQ(report.faults, r.outcomes.size());
  std::uint64_t status_total = 0;
  for (const auto& [k, v] : report.status_counts) status_total += v;
  EXPECT_EQ(status_total, r.outcomes.size());
  EXPECT_EQ(report.status_counts.at("untestable"), r.num_untestable);
  EXPECT_EQ(report.status_counts.at("aborted"), r.num_aborted);
  EXPECT_EQ(report.status_counts.at("unreachable"), r.num_unreachable);
  EXPECT_EQ(report.status_counts.at("undetermined"), r.num_undetermined);
  EXPECT_EQ(report.status_counts.at("detected") +
                report.status_counts.at("dropped-sim") +
                report.status_counts.at("dropped-random"),
            r.num_detected);
  EXPECT_EQ(report.num_tests, r.tests.size());
  EXPECT_EQ(report.num_escalated, r.num_escalated);
  EXPECT_DOUBLE_EQ(report.fault_coverage, r.fault_coverage());
  EXPECT_DOUBLE_EQ(report.fault_efficiency, r.fault_efficiency());
  EXPECT_GT(report.wall_seconds, 0.0);  // stamped by the pipeline

  std::uint64_t attempts = 0, conflicts = 0;
  std::size_t max_vars = 0;
  for (const fault::FaultOutcome& o : r.outcomes) {
    attempts += o.attempts;
    conflicts += o.solver_stats.conflicts;
    if (o.sat_vars > max_vars) max_vars = o.sat_vars;
  }
  EXPECT_EQ(report.attempts, attempts);
  EXPECT_EQ(report.solver.conflicts, conflicts);
  EXPECT_EQ(report.max_sat_vars, max_vars);

  // ---- schema stability: every enum key present even at zero ----
  for (const char* key : {"detected", "untestable", "dropped-sim",
                          "dropped-random", "aborted", "unreachable",
                          "undetermined"})
    EXPECT_TRUE(report.status_counts.count(key)) << key;
  for (const char* key : {"none", "sat", "sat-retry", "podem"})
    EXPECT_TRUE(report.engine_counts.count(key)) << key;
  for (const char* key : {"none", "conflict-limit", "propagation-limit",
                          "deadline", "cancelled"})
    EXPECT_TRUE(report.stop_reasons.count(key)) << key;

  // ---- JSON round trip through text ----
  const obs::Json dumped = obs::Json::parse(report.to_json().dump(2));
  EXPECT_EQ(dumped.at("schema").as_string(), obs::kRunReportSchema);
  const obs::RunReport back = obs::RunReport::from_json(dumped);
  EXPECT_EQ(back, report);

  obs::Json wrong = report.to_json();
  wrong["schema"] = "cwatpg.run_report/999";
  EXPECT_THROW(obs::RunReport::from_json(wrong), std::runtime_error);
  EXPECT_THROW(obs::RunReport::from_json(obs::Json::object()),
               std::runtime_error);
}

TEST(RunReport, MergeRunsAddsCountsAndRecomputesRatios) {
  const net::Network a = net::decompose(gen::array_multiplier(3));
  const net::Network b = net::decompose(gen::array_multiplier(4));
  const fault::AtpgResult ra = fault::run_atpg(a, {});
  const fault::AtpgResult rb = fault::run_atpg(b, {});
  const obs::RunReport reports[] = {
      obs::build_run_report(a, ra),
      obs::build_run_report(b, rb),
  };
  const obs::RunReport merged = obs::merge_runs(reports);
  EXPECT_EQ(merged.faults, ra.outcomes.size() + rb.outcomes.size());
  EXPECT_EQ(merged.num_tests, ra.tests.size() + rb.tests.size());
  EXPECT_EQ(merged.circuit, "<2 circuits>");
  EXPECT_EQ(merged.solver.conflicts,
            reports[0].solver.conflicts + reports[1].solver.conflicts);
  const double cov = static_cast<double>(ra.num_detected + rb.num_detected) /
                     static_cast<double>(merged.faults);
  EXPECT_DOUBLE_EQ(merged.fault_coverage, cov);
  EXPECT_EQ(obs::merge_runs({}).faults, 0u);
}

namespace {

/// A synthetic report with distinct histogram shape per `salt`. All
/// doubles are dyadic (exactly representable sums), so merge order cannot
/// introduce floating-point drift and associativity can be EXPECT_EQ'd.
obs::RunReport synthetic_report(std::uint64_t salt) {
  obs::RunReport r;
  r.label = "shard";
  // One shared name: the "<N circuits>" placeholder a cross-circuit merge
  // writes is a lossy summary and deliberately NOT associative.
  r.circuit = "mix";
  r.gates = 10 * salt;
  r.inputs = salt;
  r.outputs = 1;
  r.threads = salt;
  r.faults = 8 * salt;
  r.status_counts["detected"] = 5 * salt;
  r.status_counts["untestable"] = salt;
  r.status_counts["aborted"] = salt;
  r.status_counts["undetermined"] = salt;
  // The ratio recompute reads these through operator[], materializing
  // zero entries; pre-populate so identity comparisons see equal maps.
  r.status_counts["dropped-sim"] = 0;
  r.status_counts["dropped-random"] = 0;
  r.status_counts["unreachable"] = 0;
  r.engine_counts["sat"] = 6 * salt;
  r.engine_counts["podem"] = salt;
  r.stop_reasons["none"] = 7 * salt;
  r.stop_reasons["conflict-limit"] = salt;
  r.num_tests = 4 * salt;
  r.num_escalated = salt;
  r.interrupted = salt == 2;
  r.solver.conflicts = 100 * salt;
  r.solver.decisions = 200 * salt;
  r.solver.propagations = 300 * salt;
  r.solver.reused_implications = 40 * salt;
  r.attempts = 9 * salt;
  r.sat_instances = 6 * salt;
  r.max_sat_vars = 50 + salt;
  r.max_sat_clauses = 500 + salt;
  r.solve_seconds = 0.25 * static_cast<double>(salt);
  r.wall_seconds = 0.5 * static_cast<double>(salt);
  return r;
}

}  // namespace

TEST(RunReport, MergeRunsEmptyAndSingleIdentities) {
  // Empty input: the default (all-zero) report, nothing invented.
  const obs::RunReport empty = obs::merge_runs({});
  EXPECT_EQ(empty, obs::RunReport{});

  // Single input: every additive field passes through unchanged; the
  // ratios are recomputed from the (unchanged) histograms, so they agree
  // with the input's own.
  obs::RunReport one = synthetic_report(3);
  one.fault_coverage = 5.0 / 8.0;       // 5·salt detected of 8·salt faults
  one.fault_efficiency = 6.0 / 8.0;     // + salt untestable
  const std::vector<obs::RunReport> single = {one};
  const obs::RunReport merged = obs::merge_runs(single);
  EXPECT_EQ(merged.status_counts, one.status_counts);
  EXPECT_EQ(merged.engine_counts, one.engine_counts);
  EXPECT_EQ(merged.stop_reasons, one.stop_reasons);
  EXPECT_EQ(merged.solver.reused_implications,
            one.solver.reused_implications);
  EXPECT_EQ(merged.faults, one.faults);
  EXPECT_EQ(merged.num_tests, one.num_tests);
  EXPECT_DOUBLE_EQ(merged.fault_coverage, one.fault_coverage);
  EXPECT_DOUBLE_EQ(merged.fault_efficiency, one.fault_efficiency);
}

TEST(RunReport, MergeRunsIsAssociative) {
  // Shard-merge order must not matter: ((a·b)·c), (a·(b·c)) and (a·b·c)
  // have to agree on every field — histograms, solver stats (including
  // reused_implications), histogram-derived ratios, interrupted OR,
  // max-reduced fields — or a cluster's merged report would depend on
  // reply arrival order.
  const obs::RunReport a = synthetic_report(1);
  const obs::RunReport b = synthetic_report(2);
  const obs::RunReport c = synthetic_report(3);

  const std::vector<obs::RunReport> ab = {a, b};
  const std::vector<obs::RunReport> bc = {b, c};
  const std::vector<obs::RunReport> left_args = {obs::merge_runs(ab), c};
  const std::vector<obs::RunReport> right_args = {a, obs::merge_runs(bc)};
  const std::vector<obs::RunReport> flat_args = {a, b, c};
  const obs::RunReport left = obs::merge_runs(left_args);
  const obs::RunReport right = obs::merge_runs(right_args);
  const obs::RunReport flat = obs::merge_runs(flat_args);

  EXPECT_EQ(left, right);
  EXPECT_EQ(left, flat);

  // Spot-check the merged content is the three-way sum, not just
  // self-consistent.
  EXPECT_EQ(flat.status_counts.at("detected"), 5u * (1 + 2 + 3));
  EXPECT_EQ(flat.engine_counts.at("podem"), 1u + 2 + 3);
  EXPECT_EQ(flat.stop_reasons.at("conflict-limit"), 1u + 2 + 3);
  EXPECT_EQ(flat.solver.reused_implications, 40u * (1 + 2 + 3));
  EXPECT_TRUE(flat.interrupted);  // b was interrupted: OR carries it
  EXPECT_EQ(flat.threads, 3u);    // max, not sum
  EXPECT_DOUBLE_EQ(flat.fault_coverage,
                   static_cast<double>(5 * 6) / (8 * 6));
}

TEST(RunReport, ConflictCapStopReasonsAttributeExactly) {
  // Deterministic budget scenario: a conflict cap of 1 with the ladder off
  // makes every hard fault abort with kConflictLimit — the report's
  // StopReason histogram must count exactly those outcomes.
  const net::Network n = net::decompose(gen::array_multiplier(5));
  fault::AtpgOptions opts;
  opts.random_blocks = 0;
  opts.solver.max_conflicts = 1;
  opts.escalation_rounds = 0;
  opts.podem_fallback = false;
  const fault::AtpgResult r = fault::run_atpg(n, opts);
  ASSERT_GT(r.num_aborted, 0u);

  const obs::RunReport report = obs::build_run_report(n, r);
  std::uint64_t conflict_limited = 0;
  for (const fault::FaultOutcome& o : r.outcomes)
    if (o.solver_stats.stop_reason == StopReason::kConflictLimit)
      ++conflict_limited;
  EXPECT_EQ(report.stop_reasons.at("conflict-limit"), conflict_limited);
  // With no deadline or cancellation, aborts can only come from the cap.
  EXPECT_EQ(report.stop_reasons.at("conflict-limit"), r.num_aborted);
  EXPECT_EQ(report.stop_reasons.at("deadline"), 0u);
  EXPECT_EQ(report.stop_reasons.at("cancelled"), 0u);
  // Ladder off: exactly one attempt per processed fault.
  EXPECT_EQ(report.engine_counts.at("sat-retry"), 0u);
  EXPECT_EQ(report.engine_counts.at("podem"), 0u);
}

TEST(RunReport, SerialAndParallelAgreeOnEveryCompletedFault) {
  // A mid-run deadline interrupts both engines at (generally) different
  // points. The contract: every fault BOTH runs completed — classified,
  // and not by the asynchronous deadline itself — carries the identical
  // outcome, because both prefixes come from the same deterministic commit
  // sequence. (At most one committed outcome per run can be
  // deadline-aborted: the commit loop stops at the next budget check.)
  const net::Network n = net::decompose(gen::array_multiplier(8));

  fault::AtpgOptions base;
  base.random_blocks = 0;  // all faults through SAT: far past the deadline

  // Sanitizer builds run an order of magnitude slower, so a fixed 50 ms
  // deadline can fire before EITHER engine classifies a single fault,
  // leaving nothing to compare. Grow the deadline until both runs have a
  // non-empty classified prefix; the agreement contract itself is
  // deadline-independent.
  fault::AtpgResult serial, parallel;
  fault::ParallelStats pstats;
  std::size_t compared = 0;
  for (double deadline = 0.05; deadline <= 16.0; deadline *= 4.0) {
    Budget serial_budget;
    serial_budget.set_deadline_after(deadline);
    fault::AtpgOptions sopts = base;
    sopts.budget = &serial_budget;
    serial = fault::run_atpg(n, sopts);

    Budget parallel_budget;
    parallel_budget.set_deadline_after(deadline);
    fault::ParallelAtpgOptions popts;
    popts.base = base;
    popts.base.budget = &parallel_budget;
    popts.num_threads = 4;
    pstats = {};
    parallel = fault::run_atpg_parallel(n, popts, &pstats);

    ASSERT_EQ(serial.outcomes.size(), parallel.outcomes.size());
    compared = 0;
    for (std::size_t i = 0; i < serial.outcomes.size(); ++i) {
      const fault::FaultOutcome& s = serial.outcomes[i];
      const fault::FaultOutcome& p = parallel.outcomes[i];
      if (s.status == fault::FaultStatus::kUndetermined ||
          p.status == fault::FaultStatus::kUndetermined)
        continue;
      if (s.solver_stats.stop_reason == StopReason::kDeadline ||
          p.solver_stats.stop_reason == StopReason::kDeadline)
        continue;
      ++compared;
      EXPECT_EQ(s.status, p.status) << "fault " << i;
      EXPECT_EQ(s.engine, p.engine) << "fault " << i;
      EXPECT_EQ(s.attempts, p.attempts) << "fault " << i;
      EXPECT_EQ(s.test_index, p.test_index) << "fault " << i;
      EXPECT_EQ(s.sat_vars, p.sat_vars) << "fault " << i;
    }
    if (compared > 0) break;
  }
  EXPECT_GT(compared, 0u);

  // Both reports stay internally consistent even when interrupted, and the
  // parallel one carries its scheduling telemetry.
  obs::ReportOptions propts;
  propts.engine = "parallel";
  propts.threads = 4;
  propts.parallel = &pstats;
  const obs::RunReport sr = obs::build_run_report(n, serial);
  const obs::RunReport pr = obs::build_run_report(n, parallel, propts);
  for (const obs::RunReport* rep : {&sr, &pr}) {
    std::uint64_t total = 0;
    for (const auto& [k, v] : rep->status_counts) total += v;
    EXPECT_EQ(total, rep->faults);
  }
  EXPECT_EQ(sr.status_counts.at("undetermined"), serial.num_undetermined);
  EXPECT_EQ(pr.status_counts.at("undetermined"), parallel.num_undetermined);
  EXPECT_EQ(pr.dispatched, pstats.dispatched);
  EXPECT_EQ(pr.committed, pstats.committed);
  EXPECT_EQ(pr.workers.size(), 4u);
  const obs::RunReport pr_back =
      obs::RunReport::from_json(obs::Json::parse(pr.to_json().dump()));
  EXPECT_EQ(pr_back, pr);
}

}  // namespace
}  // namespace cwatpg
