#include <gtest/gtest.h>

#include "fault/compact.hpp"
#include "fault/tegus.hpp"
#include "gen/structured.hpp"
#include "gen/trees.hpp"
#include "netlist/decompose.hpp"
#include "util/rng.hpp"

namespace cwatpg::fault {
namespace {

TEST(Compact, PreservesCoverage) {
  const net::Network n = net::decompose(gen::simple_alu(3));
  const auto faults = collapsed_fault_list(n);
  const AtpgResult atpg = run_atpg(n);
  const CompactionResult c = compact_tests(n, faults, atpg.tests);
  EXPECT_EQ(c.detected_after, c.detected_before);
  // Independent recheck.
  const double before = coverage(n, faults, atpg.tests);
  const double after = coverage(n, faults, c.tests);
  EXPECT_DOUBLE_EQ(before, after);
}

TEST(Compact, ShrinksRandomHeavySets) {
  const net::Network n = gen::c17();
  const auto faults = collapsed_fault_list(n);
  AtpgOptions opts;
  opts.random_blocks = 8;  // 512 random patterns, mostly redundant
  const AtpgResult atpg = run_atpg(n, opts);
  const CompactionResult c = compact_tests(n, faults, atpg.tests);
  EXPECT_LT(c.tests.size(), atpg.tests.size() / 4);
  EXPECT_GE(c.tests.size(), 1u);
}

TEST(Compact, EmptyInputs) {
  const net::Network n = gen::c17();
  const auto faults = collapsed_fault_list(n);
  const CompactionResult c = compact_tests(n, faults, {});
  EXPECT_TRUE(c.tests.empty());
  EXPECT_EQ(c.detected_before, 0u);

  const CompactionResult none = compact_tests(n, {}, {});
  EXPECT_EQ(none.detected_after, 0u);
}

TEST(Compact, SingleUsefulPatternKept) {
  const net::Network n = gen::c17();
  const auto faults = collapsed_fault_list(n);
  Rng rng(1);
  Pattern p(n.inputs().size());
  for (auto&& b : p) b = rng.chance(0.5);
  // Duplicate the same pattern 10 times: exactly one survives.
  std::vector<Pattern> tests(10, p);
  const CompactionResult c = compact_tests(n, faults, tests);
  EXPECT_EQ(c.tests.size(), 1u);
}

TEST(Compact, UselessPatternsDropped) {
  // A pattern detecting nothing (no fault list) contributes nothing.
  const net::Network n = gen::c17();
  std::vector<Pattern> tests = {Pattern(5, false), Pattern(5, true)};
  const CompactionResult c = compact_tests(n, {}, tests);
  EXPECT_TRUE(c.tests.empty());
}

TEST(Compact, KeptSetIsSubsetOfInput) {
  const net::Network n = net::decompose(gen::comparator(3));
  const auto faults = collapsed_fault_list(n);
  const AtpgResult atpg = run_atpg(n);
  const CompactionResult c = compact_tests(n, faults, atpg.tests);
  for (const Pattern& kept : c.tests) {
    EXPECT_NE(std::find(atpg.tests.begin(), atpg.tests.end(), kept),
              atpg.tests.end());
  }
}

class CompactFamilies : public ::testing::TestWithParam<int> {};

TEST_P(CompactFamilies, CoveragePreservedAcrossGenerators) {
  net::Network n;
  switch (GetParam()) {
    case 0: n = net::decompose(gen::ripple_carry_adder(5)); break;
    case 1: n = net::decompose(gen::parity_tree(10)); break;
    case 2: n = net::decompose(gen::decoder(3)); break;
    default: n = net::decompose(gen::cellular_array_1d(6)); break;
  }
  const auto faults = collapsed_fault_list(n);
  const AtpgResult atpg = run_atpg(n);
  const CompactionResult c = compact_tests(n, faults, atpg.tests);
  EXPECT_EQ(c.detected_after, c.detected_before);
  EXPECT_LE(c.tests.size(), atpg.tests.size());
}

INSTANTIATE_TEST_SUITE_P(Generators, CompactFamilies, ::testing::Range(0, 4));

}  // namespace
}  // namespace cwatpg::fault
